lib/cell/design_rules.mli: Device
