lib/cell/cell.ml: Array Design_rules Device
