lib/cell/characterize.ml: Array Cell Channel Complex Device Dm Float Gate List Sv
