lib/cell/design_rules.ml: Array Device Hashtbl List Printf String Union_find
