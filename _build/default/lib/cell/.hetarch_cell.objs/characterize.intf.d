lib/cell/characterize.mli: Cell Device Rng
