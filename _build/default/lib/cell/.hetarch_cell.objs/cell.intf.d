lib/cell/cell.mli: Design_rules Device
