type instance = { id : int; device : Device.t; readout : bool }

type t = {
  name : string;
  instances : instance array;
  couplings : (int * int) list;
  ports : (int * int) list;
  readout_budget : int;
}

type violation = { rule : int; message : string }

let find t id =
  match Array.find_opt (fun i -> i.id = id) t.instances with
  | Some i -> i
  | None -> invalid_arg (Printf.sprintf "%s: unknown device id %d" t.name id)

let internal_degree t id =
  List.fold_left
    (fun acc (a, b) -> if a = id || b = id then acc + 1 else acc)
    0 t.couplings

let port_count t id =
  List.fold_left (fun acc (d, n) -> if d = id then acc + n else acc) 0 t.ports

let degree t id = internal_degree t id + port_count t id

let check t =
  let violations = ref [] in
  let add rule fmt = Printf.ksprintf (fun message -> violations := { rule; message } :: !violations) fmt in
  (* structural sanity shared by the rules *)
  List.iter
    (fun (a, b) ->
      if a = b then add 3 "coupling from device %d to itself" a;
      ignore (find t a);
      ignore (find t b))
    t.couplings;
  let seen = Hashtbl.create 16 in
  List.iter
    (fun (a, b) ->
      let key = (min a b, max a b) in
      if Hashtbl.mem seen key then add 3 "duplicate coupling %d-%d" a b
      else Hashtbl.add seen key ())
    t.couplings;
  (* DR1: compute fan-out *)
  Array.iter
    (fun inst ->
      if inst.device.Device.role = Device.Compute then begin
        let d = degree t inst.id in
        if d > 4 then
          add 1 "compute device %d has degree %d > 4" inst.id d
      end)
    t.instances;
  (* DR2: storage isolation *)
  Array.iter
    (fun inst ->
      if inst.device.Device.role = Device.Storage then begin
        let d = internal_degree t inst.id + port_count t inst.id in
        if d <> 1 then add 2 "storage device %d has %d couplings (needs exactly 1)" inst.id d;
        List.iter
          (fun (a, b) ->
            if a = inst.id || b = inst.id then begin
              let other = if a = inst.id then b else a in
              if (find t other).device.Device.role <> Device.Compute then
                add 2 "storage device %d couples to non-compute device %d" inst.id other
            end)
          t.couplings;
        if port_count t inst.id > 0 then
          add 2 "storage device %d exposes outward ports" inst.id
      end)
    t.instances;
  (* DR3: connectivity reflects use — connected graph, no isolated devices *)
  if Array.length t.instances > 1 then begin
    let ids = Array.map (fun i -> i.id) t.instances in
    let idx id =
      let r = ref (-1) in
      Array.iteri (fun i x -> if x = id then r := i) ids;
      !r
    in
    let uf = Union_find.create (Array.length ids) in
    List.iter (fun (a, b) -> ignore (Union_find.union uf (idx a) (idx b))) t.couplings;
    if Union_find.count_sets uf > 1 then add 3 "cell graph is disconnected";
    Array.iter
      (fun inst ->
        if internal_degree t inst.id = 0 && port_count t inst.id = 0 then
          add 3 "device %d is isolated" inst.id)
      t.instances
  end;
  (* DR4: minimal readout *)
  let readouts =
    Array.fold_left (fun acc i -> if i.readout then acc + 1 else acc) 0 t.instances
  in
  if readouts > t.readout_budget then
    add 4 "%d readout devices exceed budget %d" readouts t.readout_budget;
  Array.iter
    (fun inst ->
      if inst.readout && inst.device.Device.role = Device.Storage then
        add 4 "storage device %d has readout" inst.id)
    t.instances;
  List.rev !violations

let assert_valid t =
  match check t with
  | [] -> ()
  | vs ->
      let msg =
        String.concat "; "
          (List.map (fun v -> Printf.sprintf "DR%d: %s" v.rule v.message) vs)
      in
      invalid_arg (Printf.sprintf "%s violates design rules: %s" t.name msg)

let footprint_mm2 t =
  Array.fold_left (fun acc i -> acc +. i.device.Device.footprint_mm2) 0. t.instances

let control_lines t =
  Array.fold_left
    (fun acc i ->
      acc + i.device.Device.control_lines + (if i.readout then 1 else 0)
      (* storage devices are driven through their compute port: one shared
         drive line per storage instance *)
      + match i.device.Device.role with Device.Storage -> 1 | Device.Compute -> 0)
    0 t.instances
