(** The quantum standard cells of Table 2.

    Each constructor assembles Table-1 devices into a design-rule-compliant
    cell graph.  Device choices default to the paper's: fixed-frequency
    (transmon-like) compute devices and 10-mode multimode resonators for
    storage — but any device can be substituted (the point of the cell layer)
    and the design rules are re-checked at construction. *)

type kind = Register | ParCheck | SeqOp | USC | USC_EXT

type t = {
  kind : kind;
  graph : Design_rules.t;
  storage : Device.t option;  (** the storage device used, if any *)
  compute : Device.t;
}

val register : ?storage:Device.t -> ?compute:Device.t -> unit -> t
(** One storage device behind one compute device; up to 3 outward ports from
    the compute (Table 2, Register). *)

val parcheck : ?compute:Device.t -> unit -> t
(** Two coupled compute devices, one with readout; 3 outward ports each
    (Table 2, ParCheck). *)

val seqop : ?storage:Device.t -> ?compute:Device.t -> unit -> t
(** Two Register subcells whose compute devices form a triangle with a
    readout compute for parity checks (Table 2, SeqOp). *)

val usc : ?storage:Device.t -> ?compute:Device.t -> unit -> t
(** Three Register subcells around a central readout ancilla compute
    (Table 2, USC). *)

val usc_ext : ?storage:Device.t -> ?compute:Device.t -> unit -> t
(** Two-Register extension cell chained to a USC (§4.2.2, USC-EXT). *)

val all : unit -> t list
(** One of each cell with default devices (Table 2 reproduction). *)

val name : t -> string
val capacity : t -> int
(** Total qubit capacity (storage modes + compute qubits). *)

val footprint_mm2 : t -> float
val control_lines : t -> int

val storage_exn : t -> Device.t
(** The storage device; raises for cells without storage. *)
