(** Standard-cell characterization by device-level density-matrix simulation
    (paper §3.2: "performance of a given standard cell is characterized
    through density matrix simulations at the device level ... then used to
    model each standard cell as a quantum channel").

    Each operation returns a {!perf} record — a channel abstraction of the
    cell (duration plus error probability) that module-level simulators
    consume without ever re-simulating the devices.  The number of density-
    matrix simulations this saves is what the DSE layer accounts for. *)

type perf = {
  duration : float;  (** seconds *)
  error : float;  (** process infidelity of the operation, in [0,1] *)
}

val fidelity : perf -> float
(** 1 - error. *)

type gate_times = {
  t1q : float;  (** single-qubit gate time (paper: 40 ns) *)
  t2q : float;  (** two-qubit gate and SWAP time between computes (100 ns) *)
  t_readout : float;  (** readout time (1 us) *)
}

val paper_times : gate_times

val register_load : ?times:gate_times -> Cell.t -> perf
(** Moving one qubit from the Register's compute device into storage: the
    storage SWAP gate's own error and duration, plus decoherence during it.
    Simulated exactly on a Choi (reference-entangled) state. *)

val register_retention : Cell.t -> dt:float -> perf
(** Error accumulated by a qubit idling in the storage device for [dt]. *)

val compute_idle : Device.t -> dt:float -> perf
(** Idling on a compute device. *)

val parity_check : ?times:gate_times -> Cell.t -> perf
(** ParCheck operation on two data qubits already in the cell: two CX into
    the readout device plus measurement; error is the probability the parity
    outcome is wrong or a data qubit is corrupted, averaged over the
    computational basis, from a 3-qubit density-matrix simulation. *)

val sequential_cnots : ?times:gate_times -> Cell.t -> count:int -> perf
(** SeqOp operation: [count] back-to-back CX gates between the two register
    compute devices (CAT-state growth), including load/unload from storage.
    Simulated on a 4-qubit Choi state (two system + two reference qubits). *)

val stabilizer_check :
  ?times:gate_times -> Cell.t -> weight:int -> serialized:bool -> perf
(** USC operation: one weight-[weight] stabilizer measurement with data
    qubits living in the registers.  With [serialized] = true each data qubit
    is swapped out of storage, gated with the ancilla, and swapped back, one
    after another (the UEC trade-off of §4.2.2); otherwise only the gates are
    serialized.  Composed from simulated primitives. *)

val retention_with_spectators :
  Cell.t -> modes:int -> dt:float -> trajectories:int -> Rng.t -> perf
(** Retention of one stored qubit while [modes - 1] other occupied modes of
    the same resonator idle alongside it, simulated on the full
    [modes + 1]-qubit statevector with Monte-Carlo noise trajectories.
    Validates the factorization assumption behind {!simulation_dimension}
    and the DSE burden accounting: the result must match
    {!register_retention} regardless of [modes] (asserted in the test
    suite). *)

val simulation_dimension : Cell.t -> int
(** Hilbert-space dimension a naive device-level simulation of the full cell
    would need — the denominator of the DSE burden-reduction accounting. *)
