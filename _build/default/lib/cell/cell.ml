type kind = Register | ParCheck | SeqOp | USC | USC_EXT

type t = {
  kind : kind;
  graph : Design_rules.t;
  storage : Device.t option;
  compute : Device.t;
}

let inst id device readout = { Design_rules.id; device; readout }

let make kind graph storage compute =
  Design_rules.assert_valid graph;
  { kind; graph; storage; compute }

let register ?(storage = Device.multimode_resonator_3d)
    ?(compute = Device.fixed_frequency_qubit) () =
  let graph =
    { Design_rules.name = "Register";
      instances = [| inst 0 storage false; inst 1 compute false |];
      couplings = [ (0, 1) ];
      ports = [ (1, 3) ];
      readout_budget = 0 }
  in
  make Register graph (Some storage) compute

let parcheck ?(compute = Device.fixed_frequency_qubit) () =
  let graph =
    { Design_rules.name = "ParCheck";
      instances = [| inst 0 compute false; inst 1 compute true |];
      couplings = [ (0, 1) ];
      ports = [ (0, 3); (1, 3) ];
      readout_budget = 1 }
  in
  make ParCheck graph None compute

let seqop ?(storage = Device.multimode_resonator_3d)
    ?(compute = Device.fixed_frequency_qubit) () =
  (* Devices: 0,1 storage; 2,3 their compute; 4 parity compute w/ readout.
     Triangle 2-3, 2-4, 3-4; up to two outward ports per register compute and
     an optional one from the parity compute. *)
  let graph =
    { Design_rules.name = "SeqOp";
      instances =
        [| inst 0 storage false; inst 1 storage false; inst 2 compute false;
           inst 3 compute false; inst 4 compute true |];
      couplings = [ (0, 2); (1, 3); (2, 3); (2, 4); (3, 4) ];
      ports = [ (2, 1); (3, 1); (4, 1) ];
      readout_budget = 1 }
  in
  make SeqOp graph (Some storage) compute

let usc ?(storage = Device.multimode_resonator_3d)
    ?(compute = Device.fixed_frequency_qubit) () =
  (* Three registers (storage 0,1,2 behind compute 3,4,5) around a central
     readout ancilla 6; one outward port from each register compute and the
     ancilla. *)
  let graph =
    { Design_rules.name = "USC";
      instances =
        [| inst 0 storage false; inst 1 storage false; inst 2 storage false;
           inst 3 compute false; inst 4 compute false; inst 5 compute false;
           inst 6 compute true |];
      couplings = [ (0, 3); (1, 4); (2, 5); (3, 6); (4, 6); (5, 6) ];
      ports = [ (3, 1); (4, 1); (5, 1); (6, 1) ];
      readout_budget = 1 }
  in
  make USC graph (Some storage) compute

let usc_ext ?(storage = Device.multimode_resonator_3d)
    ?(compute = Device.fixed_frequency_qubit) () =
  let graph =
    { Design_rules.name = "USC-EXT";
      instances =
        [| inst 0 storage false; inst 1 storage false; inst 2 compute false;
           inst 3 compute false; inst 4 compute true |];
      couplings = [ (0, 2); (1, 3); (2, 4); (3, 4) ];
      ports = [ (2, 1); (3, 1); (4, 2) ];
      readout_budget = 1 }
  in
  make USC_EXT graph (Some storage) compute

let all () = [ register (); parcheck (); seqop (); usc (); usc_ext () ]

let name t = t.graph.Design_rules.name

let capacity t =
  Array.fold_left
    (fun acc i -> acc + i.Design_rules.device.Device.capacity)
    0 t.graph.Design_rules.instances

let footprint_mm2 t = Design_rules.footprint_mm2 t.graph
let control_lines t = Design_rules.control_lines t.graph

let storage_exn t =
  match t.storage with
  | Some s -> s
  | None -> invalid_arg (name t ^ " has no storage device")
