(** Design rules for planar superconducting standard cells (paper §3.2).

    A cell is an abstract device graph: instances of Table-1 devices, the
    couplings between them, declared outward-facing ports, and readout
    capabilities.  The four empirically-motivated rules:

    DR1: compute devices couple to at most 4 other devices (ports included).
    DR2: storage devices couple to exactly one device, which must be compute.
    DR3: connectivity reflects intended use — no isolated devices, no
         coupling declared twice, and the graph is connected.
    DR4: readout-capable compute devices are minimal: exactly the declared
         number, and readout is never put on a storage device. *)

type instance = {
  id : int;
  device : Device.t;
  readout : bool;  (** coupled to a readout resonator *)
}

type t = {
  name : string;
  instances : instance array;
  couplings : (int * int) list;  (** undirected device-id pairs *)
  ports : (int * int) list;  (** (device id, number of outward connections) *)
  readout_budget : int;  (** how many readout devices this cell's operations need *)
}

type violation = {
  rule : int;  (** 1..4 *)
  message : string;
}

val check : t -> violation list
(** Empty list = compliant. *)

val degree : t -> int -> int
(** Internal couplings plus reserved outward ports of a device. *)

val assert_valid : t -> unit
(** Raise [Invalid_argument] listing violations, if any. *)

val footprint_mm2 : t -> float
(** Sum of device footprints (the cell inherits area from its devices). *)

val control_lines : t -> int
(** Total control overhead inherited from the devices plus one readout line
    per readout-flagged instance. *)
