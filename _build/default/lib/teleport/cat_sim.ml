type result = { accept_rate : float; error_given_accept : float; shots : int }

let circuit ~n ~p2 ~t_coh ~t_2q ~t_readout ~verify_checks =
  if n < 2 then invalid_arg "Cat_sim.circuit: need n >= 2";
  if verify_checks < 0 then invalid_arg "Cat_sim.circuit: verify_checks >= 0";
  let anc = n in
  let b = Circuit.builder (n + 1) in
  let idle_all dt =
    for q = 0 to n - 1 do
      Circuit.idle_noise b ~t1:t_coh ~t2:t_coh ~dt q
    done
  in
  (* Growth: |+> on the head, then a serial CNOT chain. *)
  Circuit.add b (Circuit.H 0);
  for i = 0 to n - 2 do
    Circuit.add b (Circuit.CX (i, i + 1));
    if p2 > 0. then Circuit.add b (Circuit.Depol2 { p = p2; a = i; b = i + 1 });
    idle_all t_2q
  done;
  (* Verification: parity checks on pairs spread across the CAT. *)
  let detectors = ref [] in
  for c = 0 to verify_checks - 1 do
    let a = c * (n - 1) / max 1 verify_checks in
    let b_ = min (n - 1) (a + (n / 2)) in
    let b_ = if b_ = a then a + 1 else b_ in
    Circuit.add b (Circuit.R anc);
    Circuit.add b (Circuit.CX (a, anc));
    if p2 > 0. then Circuit.add b (Circuit.Depol2 { p = p2; a; b = anc });
    Circuit.add b (Circuit.CX (b_, anc));
    if p2 > 0. then Circuit.add b (Circuit.Depol2 { p = p2; a = b_; b = anc });
    let m = Circuit.measure b anc in
    detectors := [ m ] :: !detectors;
    idle_all (t_2q +. t_2q +. t_readout)
  done;
  List.iter (fun d -> Circuit.add_detector b d) (List.rev !detectors);
  (* Final transversal Z measurement; the n-1 pairwise parities are the
     quality observables of the CAT. *)
  let meas = Array.init n (fun q -> Circuit.measure b q) in
  for i = 0 to n - 2 do
    Circuit.add_observable b [ meas.(i); meas.(i + 1) ]
  done;
  let c = Circuit.finish b in
  Circuit.validate c;
  c

let run ~n ~p2 ~t_coh ?(t_2q = 100e-9) ?(t_readout = 1e-6) ?(verify_checks = 2)
    ~shots rng =
  if shots < 1 then invalid_arg "Cat_sim.run: shots >= 1";
  let c = circuit ~n ~p2 ~t_coh ~t_2q ~t_readout ~verify_checks in
  let accepted = ref 0 and bad = ref 0 in
  for _ = 1 to shots do
    let s = Frame.sample_shot c rng in
    if Bitvec.is_zero s.Frame.detectors then begin
      incr accepted;
      if not (Bitvec.is_zero s.Frame.observables) then incr bad
    end
  done;
  { accept_rate = float_of_int !accepted /. float_of_int shots;
    error_given_accept =
      (if !accepted = 0 then 1. else float_of_int !bad /. float_of_int !accepted);
    shots }
