(** Circuit-level Monte-Carlo simulation of CAT-state generation (§4.3's CAT
    generator sub-module), upgrading the closed-form model in {!Teleport}.

    The GHZ state is grown by a chain of CNOTs in a SeqOp cell, then verified
    by ancilla parity checks; generation is accepted when every check reads
    even.  Sampling is by Pauli frames, so acceptance rate and the residual
    error of accepted states come from the same exact mechanism statistics as
    the QEC experiments. *)

type result = {
  accept_rate : float;  (** probability the verification accepts *)
  error_given_accept : float;
      (** probability an accepted CAT has a flipped pairwise ZZ correlation
          (an undetected X-type error) *)
  shots : int;
}

val circuit :
  n:int -> p2:float -> t_coh:float -> t_2q:float -> t_readout:float ->
  verify_checks:int -> Circuit.t
(** The generation + verification circuit: qubit 0 in |+>, CNOT chain,
    [verify_checks] ancilla parity checks on qubit pairs spread across the
    CAT, and a final transversal measurement whose pairwise parities are the
    observables. *)

val run :
  n:int -> p2:float -> t_coh:float -> ?t_2q:float -> ?t_readout:float ->
  ?verify_checks:int -> shots:int -> Rng.t -> result
(** Defaults: 100 ns CNOTs, 1 us readout, 2 verification checks. *)
