(** Code-teleportation (CT) module — §4.3, Figs. 10-12 and Table 4.

    A CT resource state |Phi+>_AB between logical code A and logical code B is
    prepared from: distilled EPs (entanglement-distillation sub-module),
    a CAT state of size |A| + |B| grown by sequential CNOTs (SeqOp cells)
    and entangled across the two halves through remote gates on the EPs,
    two logical |+> preparations (UEC sub-modules), the transversal
    CNOT between CAT and |+> states, a logical measurement, and correction.

    As in the paper, the module-level error is composed from independently
    characterized sub-module error rates (phenomenological analysis):
    sub-simulation results are combined as 1 - prod(1 - e_i). *)

type params = {
  uec : Uec.params;
  ep_rate_hz : float;  (** EP generation rate (paper: 1000 kHz) *)
  ep_target : float;  (** distillation target fidelity (0.995) *)
  cat_verify_checks : int;  (** parity checks verifying the CAT state *)
  distill_horizon : float;  (** simulated horizon for the EP sub-module *)
}

val default_params : params

type breakdown = {
  e_ep : float;  (** residual EP infidelity after distillation *)
  e_cat : float;  (** CAT growth + verification error *)
  e_plus_a : float;  (** logical |+> preparation error, code A *)
  e_plus_b : float;
  e_meas : float;  (** logical measurement (one more UEC round) *)
  total : float;  (** combined CT-state logical error probability *)
}

val heterogeneous :
  ?params:params -> code_a:Code.t -> code_b:Code.t -> ts:float -> shots:int ->
  Rng.t -> breakdown
(** Full heterogeneous CT module at storage coherence [ts]: EP fidelity from
    the discrete-event distillation simulation, CAT error from serialized
    SeqOp CNOTs with storage idling, |+> preparations from the heterogeneous
    UEC Monte Carlo. *)

val homogeneous :
  ?params:params -> code_a:Code.t -> code_b:Code.t -> shots:int -> Rng.t ->
  breakdown
(** Homogeneous baseline: compute-only memory for the EP sub-module, routed
    lattice for the transversal stage, homogeneous UEC preparations. *)

val fig12_point :
  ?params:params -> code_a:Code.t -> code_b:Code.t -> ts:float -> shots:int ->
  Rng.t -> float
(** Heterogeneous CT logical error probability (Fig. 12 y-value). *)

val table4 :
  ?params:params -> codes:Code.t list -> ts:float -> shots:int -> Rng.t ->
  (string * string * float * float) list
(** All ordered pairs (a, b, heterogeneous, homogeneous) of distinct codes —
    the upper and lower triangles of Table 4. *)
