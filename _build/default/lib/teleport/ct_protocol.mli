(** Timed execution of the six-step code-teleportation protocol (Fig. 10).

    {!Teleport} composes the CT state's *error*; this module composes its
    *time*: EPs arrive stochastically from the distillation sub-module, the
    CAT generators, the two UEC modules (logical |+> preparation) and the
    transversal/measurement stages each occupy their hardware for a
    characterized duration, and successive CT preparations pipeline through
    the module set.  Output: CT-state throughput and latency — the
    module-level performance metrics (execution time, concurrency) the
    paper's §2 says every module must expose. *)

type stage_times = {
  ep_period : float;  (** mean seconds between distilled-EP deliveries *)
  eps_needed : int;  (** EPs consumed per CT state (remote gate + verify) *)
  cat_time : float;  (** CAT growth + verification in the SeqOp cells *)
  plus_time_a : float;  (** logical |+> preparation on UEC A (2 rounds) *)
  plus_time_b : float;
  transversal_time : float;  (** CAT-to-code transversal CNOT stage *)
  meas_time : float;  (** logical measurement (one UEC round) *)
}

val characterize :
  ?params:Teleport.params -> code_a:Code.t -> code_b:Code.t -> ts:float ->
  Rng.t -> stage_times
(** Characterize each sub-module once (the DSE pattern): the EP period from
    a short calibration run of the distillation DES, everything else from
    the UEC schedule model. *)

type result = {
  produced : int;  (** CT states completed within the horizon *)
  mean_latency : float;  (** seconds from first EP request to completion *)
  max_latency : float;
  horizon : float;
}

val run : stage_times -> Rng.t -> horizon:float -> result
(** Pipelined discrete-event execution: a new preparation starts whenever
    the EP collector is idle; CAT generation and the two |+> preparations
    proceed in parallel once resources free up; the transversal stage joins
    them; measurement completes the state. *)

val throughput_per_ms : result -> float
