lib/teleport/cat_sim.mli: Circuit Rng
