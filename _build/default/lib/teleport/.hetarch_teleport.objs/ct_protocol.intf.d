lib/teleport/ct_protocol.mli: Code Rng Teleport
