lib/teleport/ct_protocol.ml: Code Des Distill_module Rng Teleport Uec
