lib/teleport/cat_sim.ml: Array Bitvec Circuit Frame List
