lib/teleport/teleport.mli: Code Rng Uec
