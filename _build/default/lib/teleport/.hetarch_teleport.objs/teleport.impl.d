lib/teleport/teleport.ml: Code Distill_module Grid List Rng Router Uec
