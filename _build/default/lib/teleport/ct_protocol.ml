type stage_times = {
  ep_period : float;
  eps_needed : int;
  cat_time : float;
  plus_time_a : float;
  plus_time_b : float;
  transversal_time : float;
  meas_time : float;
}

let characterize ?(params = Teleport.default_params) ~code_a ~code_b ~ts rng =
  (* EP period from a short calibration run of the distillation module. *)
  let dcfg =
    { (Distill_module.heterogeneous ~ts ~rate_hz:params.Teleport.ep_rate_hz ()) with
      Distill_module.target_fidelity = params.Teleport.ep_target }
  in
  let calib = Distill_module.run dcfg rng ~horizon:2e-3 in
  let ep_period =
    if calib.Distill_module.delivered = 0 then infinity
    else calib.Distill_module.horizon /. float_of_int calib.Distill_module.delivered
  in
  let u = params.Teleport.uec in
  let n_cat = code_a.Code.n + code_b.Code.n in
  let cat_time =
    (float_of_int (n_cat - 1) *. (u.Uec.t_2q +. (2. *. u.Uec.t_swap)))
    +. (float_of_int params.Teleport.cat_verify_checks
       *. ((2. *. u.Uec.t_2q) +. u.Uec.t_readout))
  in
  let round_time code =
    let prof = Uec.profile ~params:u (Uec.Het { ts }) code in
    prof.Uec.round_time
  in
  let plus_time code = 2. *. round_time code in
  let transversal_time =
    float_of_int n_cat *. ((2. *. u.Uec.t_swap) +. u.Uec.t_2q)
  in
  { ep_period;
    eps_needed = 1 + params.Teleport.cat_verify_checks;
    cat_time;
    plus_time_a = plus_time code_a;
    plus_time_b = plus_time code_b;
    transversal_time;
    meas_time = round_time code_a }

type result = {
  produced : int;
  mean_latency : float;
  max_latency : float;
  horizon : float;
}

(* Pipeline state per in-flight preparation. *)
type prep = {
  started : float;
  mutable eps : int;
  mutable cat_done : bool;
  mutable plus_a_done : bool;
  mutable plus_b_done : bool;
}

let run st rng ~horizon =
  if horizon <= 0. then invalid_arg "Ct_protocol.run: horizon must be positive";
  if st.ep_period = infinity then
    { produced = 0; mean_latency = 0.; max_latency = 0.; horizon }
  else begin
    let des = Des.create () in
    let produced = ref 0 in
    let latency_sum = ref 0. and latency_max = ref 0. in
    (* Module-set resources gate the pipeline: one CAT generator pair, one
       UEC pair, one transversal/measurement path. *)
    let rec start_prep des =
      if Des.now des <= horizon then begin
        let p =
          { started = Des.now des; eps = 0; cat_done = false; plus_a_done = false;
            plus_b_done = false }
        in
        (* Step 1: collect EPs (serial on the distillation module). *)
        let rec collect des =
          p.eps <- p.eps + 1;
          if p.eps < st.eps_needed then
            Des.schedule des ~delay:(Rng.exponential rng (1. /. st.ep_period)) collect
          else begin
            (* Steps 2-3 proceed in parallel: CAT growth (consuming the EPs
               via remote gates) and the two logical |+> preparations. *)
            Des.schedule des ~delay:st.cat_time (fun des ->
                p.cat_done <- true;
                join des);
            Des.schedule des ~delay:st.plus_time_a (fun des ->
                p.plus_a_done <- true;
                join des);
            Des.schedule des ~delay:st.plus_time_b (fun des ->
                p.plus_b_done <- true;
                join des);
            (* the distillation module is free again: pipeline the next
               preparation's EP collection *)
            Des.schedule des ~delay:(Rng.exponential rng (1. /. st.ep_period)) (fun des ->
                start_prep des)
          end
        and join des =
          (* Steps 4-6 once CAT and both |+> states exist. *)
          if p.cat_done && p.plus_a_done && p.plus_b_done then
            Des.schedule des ~delay:(st.transversal_time +. st.meas_time) (fun des ->
                let latency = Des.now des -. p.started in
                if Des.now des <= horizon then begin
                  incr produced;
                  latency_sum := !latency_sum +. latency;
                  if latency > !latency_max then latency_max := latency
                end)
        in
        Des.schedule des ~delay:(Rng.exponential rng (1. /. st.ep_period)) collect
      end
    in
    start_prep des;
    Des.run_until des horizon;
    { produced = !produced;
      mean_latency = (if !produced = 0 then 0. else !latency_sum /. float_of_int !produced);
      max_latency = !latency_max;
      horizon }
  end

let throughput_per_ms r = float_of_int r.produced /. (r.horizon *. 1e3)
