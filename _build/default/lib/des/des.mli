(** Discrete-event simulation engine.

    Drives the stochastic module-level simulations (probabilistic EP arrival,
    scheduler reactions) of the distillation and code-teleportation
    experiments.  Events are closures on a time-ordered heap; a handler may
    schedule further events. *)

type t

val create : unit -> t

val now : t -> float
(** Current simulation time, seconds. *)

val schedule : t -> delay:float -> (t -> unit) -> unit
(** Enqueue an event [delay] seconds from now ([delay >= 0]). *)

val schedule_at : t -> time:float -> (t -> unit) -> unit
(** Enqueue at an absolute time (must not be in the past). *)

val run_until : t -> float -> unit
(** Process events up to and including the given time; the clock ends at
    exactly that time. *)

val run : t -> unit
(** Process until the event queue is empty. *)

val pending : t -> int
val events_processed : t -> int
