(** Quantum-repeater chain built from HetArch distillation modules.

    The paper's conclusion points to networked quantum systems with
    "dedicated designs for both distillation modules and repeaters" as the
    natural extension of the distillation architecture; this module is that
    extension.  A chain of n_links elementary links generates EPs
    independently (Poisson, noisy); each intermediate node stores link pairs
    in Register memories (coherence Ts), distills them per link with DEJMPS
    when profitable, and performs entanglement swapping as soon as both of
    its links hold a pair at the swap threshold.  End-to-end pairs above the
    delivery threshold are counted at the chain ends. *)

type config = {
  n_links : int;  (** elementary links (n_links - 1 swapping nodes) *)
  link_rate_hz : float;  (** EP generation rate per link *)
  link_infidelity : float * float;  (** raw pair infidelity range *)
  ts : float;  (** memory coherence at every node *)
  tc : float;  (** compute coherence *)
  swap_threshold : float;  (** minimum link fidelity before swapping *)
  delivery_threshold : float;  (** end-to-end fidelity that counts *)
  gate_time_2q : float;
  gate_time_1q : float;
  readout_time : float;
  memory_per_link : int;  (** stored pairs per link direction *)
}

val default : ?ts:float -> n_links:int -> link_rate_hz:float -> unit -> config
(** Paper-style hardware: Ts = 12.5 ms (heterogeneous registers), Tc =
    0.5 ms, coherence-limited 100 ns gates, 1 us readout, swap threshold
    0.98, delivery threshold 0.95, 3 pairs of memory per link. *)

val homogeneous : n_links:int -> link_rate_hz:float -> unit -> config
(** Compute-only memory: Ts = Tc = 0.5 ms. *)

type result = {
  delivered : int;  (** end-to-end pairs above the delivery threshold *)
  delivered_fidelity_sum : float;  (** to compute the mean delivered fidelity *)
  swaps : int;
  link_distills : int;
  horizon : float;
}

val run : config -> Rng.t -> horizon:float -> result

val delivered_rate_per_ms : result -> float
val mean_delivered_fidelity : result -> float
