type config = {
  n_links : int;
  link_rate_hz : float;
  link_infidelity : float * float;
  ts : float;
  tc : float;
  swap_threshold : float;
  delivery_threshold : float;
  gate_time_2q : float;
  gate_time_1q : float;
  readout_time : float;
  memory_per_link : int;
}

let default ?(ts = 12.5e-3) ~n_links ~link_rate_hz () =
  if n_links < 1 then invalid_arg "Repeater.default: n_links >= 1";
  { n_links;
    link_rate_hz;
    link_infidelity = (0.01, 0.05);
    ts;
    tc = 0.5e-3;
    (* End-to-end infidelity is roughly the sum over links, so each link must
       be distilled to its share of the delivery budget before swapping. *)
    swap_threshold = Float.max 0.98 (1. -. (0.05 /. (float_of_int n_links +. 2.)));
    delivery_threshold = 0.95;
    gate_time_2q = 100e-9;
    gate_time_1q = 40e-9;
    readout_time = 1e-6;
    memory_per_link = 3 }

let homogeneous ~n_links ~link_rate_hz () =
  let cfg = default ~n_links ~link_rate_hz () in
  { cfg with ts = cfg.tc }

type result = {
  delivered : int;
  delivered_fidelity_sum : float;
  swaps : int;
  link_distills : int;
  horizon : float;
}

type stored = { mutable state : Bell_pair.t; mutable since : float; rounds : int }

(* A segment is an entangled pair spanning nodes [left, right]. *)
type segment = { left : int; right : int; mutable pair : stored }

type sim = {
  cfg : config;
  rng : Rng.t;
  links : stored list array;  (* per-link memory *)
  mutable segments : segment list;
  mutable delivered : int;
  mutable fidelity_sum : float;
  mutable swaps : int;
  mutable distills : int;
}

let refresh cfg now p =
  let dt = now -. p.since in
  if dt > 0. then begin
    p.state <- Bell_pair.decay p.state ~t1:cfg.ts ~t2:cfg.ts ~dt;
    p.since <- now
  end

let remove_phys l p = List.filter (fun q -> q != p) l

let worst pairs =
  match pairs with
  | [] -> None
  | hd :: tl ->
      Some
        (List.fold_left
           (fun acc p ->
             if Bell_pair.fidelity p.state < Bell_pair.fidelity acc.state then p else acc)
           hd tl)

(* One DEJMPS round on the link's compute qubits: gate-phase decay at Tc
   around the recurrence (the survivor is immediately re-stored). *)
let noisy_dejmps cfg a b =
  let gate_phase = cfg.gate_time_1q +. cfg.gate_time_2q +. cfg.gate_time_2q in
  let prep p = Bell_pair.decay p ~t1:cfg.tc ~t2:cfg.tc ~dt:gate_phase in
  Bell_pair.dejmps (prep a) (prep b)

(* Entanglement swap at a node: both halves ride compute qubits through the
   Bell measurement. *)
let noisy_swap cfg a b =
  let dt = cfg.gate_time_2q +. cfg.gate_time_1q +. cfg.readout_time in
  let a = Bell_pair.decay_one_sided a ~t1:cfg.tc ~t2:cfg.tc ~dt in
  let b = Bell_pair.decay_one_sided b ~t1:cfg.tc ~t2:cfg.tc ~dt in
  Bell_pair.swap a b

let best_same_round_pairing pairs =
  let arr = Array.of_list pairs in
  let best = ref None in
  for i = 0 to Array.length arr - 1 do
    for j = i + 1 to Array.length arr - 1 do
      if arr.(i).rounds = arr.(j).rounds then begin
        let pred = Bell_pair.dejmps_predicted_fidelity arr.(i).state arr.(j).state in
        match !best with
        | Some (p, _, _) when p >= pred -> ()
        | _ -> best := Some (pred, arr.(i), arr.(j))
      end
    done
  done;
  !best

let rec process_link sim now link =
  let cfg = sim.cfg in
  List.iter (refresh cfg now) sim.links.(link);
  (* Promote a threshold pair to a segment when this link has none. *)
  let has_segment =
    List.exists (fun s -> s.left = link && s.right = link + 1) sim.segments
  in
  let best =
    List.fold_left
      (fun acc p ->
        match acc with
        | Some b when Bell_pair.fidelity b.state >= Bell_pair.fidelity p.state -> acc
        | _ -> Some p)
      None sim.links.(link)
  in
  match best with
  | Some b when (not has_segment) && Bell_pair.fidelity b.state >= cfg.swap_threshold ->
      sim.links.(link) <- remove_phys sim.links.(link) b;
      if cfg.n_links = 1 then begin
        (* Single link: the distilled pair is already end to end. *)
        if Bell_pair.fidelity b.state >= cfg.delivery_threshold then begin
          sim.delivered <- sim.delivered + 1;
          sim.fidelity_sum <- sim.fidelity_sum +. Bell_pair.fidelity b.state
        end
      end
      else begin
        sim.segments <- { left = link; right = link + 1; pair = b } :: sim.segments;
        try_swaps sim now
      end
  | _ -> (
      (* Distill toward threshold. *)
      match best_same_round_pairing sim.links.(link) with
      | Some (pred, a, b)
        when pred > max (Bell_pair.fidelity a.state) (Bell_pair.fidelity b.state) ->
          sim.links.(link) <- remove_phys (remove_phys sim.links.(link) a) b;
          sim.distills <- sim.distills + 1;
          let p_succ, out = noisy_dejmps cfg a.state b.state in
          if Rng.bernoulli sim.rng p_succ then begin
            let pair = { state = out; since = now; rounds = max a.rounds b.rounds + 1 } in
            sim.links.(link) <- pair :: sim.links.(link)
          end;
          process_link sim now link
      | _ -> ())

and try_swaps sim now =
  let cfg = sim.cfg in
  (* Merge any two adjacent segments. *)
  let rec find_adjacent = function
    | [] -> None
    | s :: rest -> (
        match List.find_opt (fun t -> t.left = s.right) sim.segments with
        | Some t -> Some (s, t)
        | None -> find_adjacent rest)
  in
  match find_adjacent sim.segments with
  | Some (s, t) ->
      refresh cfg now s.pair;
      refresh cfg now t.pair;
      sim.segments <- List.filter (fun u -> u != s && u != t) sim.segments;
      sim.swaps <- sim.swaps + 1;
      let merged = noisy_swap cfg s.pair.state t.pair.state in
      let seg =
        { left = s.left; right = t.right;
          pair = { state = merged; since = now; rounds = 0 } }
      in
      if seg.left = 0 && seg.right = cfg.n_links then begin
        (* End-to-end pair. *)
        if Bell_pair.fidelity merged >= cfg.delivery_threshold then begin
          sim.delivered <- sim.delivered + 1;
          sim.fidelity_sum <- sim.fidelity_sum +. Bell_pair.fidelity merged
        end
      end
      else sim.segments <- seg :: sim.segments;
      try_swaps sim now
  | None -> ()

let store_arrival sim now link pair =
  let cfg = sim.cfg in
  List.iter (refresh cfg now) sim.links.(link);
  let fresh = { state = pair; since = now; rounds = 0 } in
  if List.length sim.links.(link) < cfg.memory_per_link then
    sim.links.(link) <- fresh :: sim.links.(link)
  else begin
    match worst sim.links.(link) with
    | Some w when Bell_pair.fidelity w.state < Bell_pair.fidelity pair ->
        sim.links.(link) <- fresh :: remove_phys sim.links.(link) w
    | _ -> ()
  end;
  process_link sim now link

let run cfg rng ~horizon =
  if horizon <= 0. then invalid_arg "Repeater.run: horizon must be positive";
  let lo, hi = cfg.link_infidelity in
  let source = Ep_source.create ~infidelity_lo:lo ~infidelity_hi:hi ~rate_hz:cfg.link_rate_hz () in
  let des = Des.create () in
  let sim =
    { cfg; rng;
      links = Array.make cfg.n_links [];
      segments = [];
      delivered = 0;
      fidelity_sum = 0.;
      swaps = 0;
      distills = 0 }
  in
  let rec arrival link des =
    if Des.now des <= horizon then begin
      store_arrival sim (Des.now des) link (Ep_source.sample_pair source sim.rng);
      Des.schedule des ~delay:(Ep_source.next_gap source sim.rng) (arrival link)
    end
  in
  for link = 0 to cfg.n_links - 1 do
    Des.schedule des ~delay:(Ep_source.next_gap source sim.rng) (arrival link)
  done;
  Des.run_until des horizon;
  { delivered = sim.delivered;
    delivered_fidelity_sum = sim.fidelity_sum;
    swaps = sim.swaps;
    link_distills = sim.distills;
    horizon }

let delivered_rate_per_ms (r : result) =
  float_of_int r.delivered /. (r.horizon *. 1e3)

let mean_delivered_fidelity (r : result) =
  if r.delivered = 0 then 0. else r.delivered_fidelity_sum /. float_of_int r.delivered
