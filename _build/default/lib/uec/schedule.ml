type op_kind = Swap_out of int | Swap_in of int | Cx of int | Readout

type op = {
  kind : op_kind;
  start : float;
  finish : float;
  resources : string list;
  label : string;
}

type t = { ops : op list; makespan : float }

let validate t =
  List.iter
    (fun op ->
      if op.finish <= op.start then
        invalid_arg (Printf.sprintf "Schedule.validate: op %s has no duration" op.label))
    t.ops;
  let by_resource = Hashtbl.create 8 in
  List.iter
    (fun op ->
      List.iter
        (fun r ->
          let prev = Option.value ~default:[] (Hashtbl.find_opt by_resource r) in
          Hashtbl.replace by_resource r (op :: prev))
        op.resources)
    t.ops;
  Hashtbl.iter
    (fun r ops ->
      let sorted = List.sort (fun a b -> compare a.start b.start) ops in
      let rec scan = function
        | a :: (b :: _ as rest) ->
            if b.start < a.finish -. 1e-15 then
              invalid_arg
                (Printf.sprintf "Schedule.validate: %s and %s overlap on %s" a.label
                   b.label r);
            scan rest
        | _ -> ()
      in
      scan sorted)
    by_resource

(* Interleave a check's qubits across registers: repeatedly take one qubit
   from the register with the most remaining, avoiding the previous register
   when possible — the ordering the closed-form pipelining model assumes. *)
let interleave assignment supp =
  let pools = Hashtbl.create 4 in
  Array.iter
    (fun q ->
      let r = assignment.(q) in
      Hashtbl.replace pools r (q :: Option.value ~default:[] (Hashtbl.find_opt pools r)))
    supp;
  let order = ref [] in
  let prev = ref (-1) in
  let remaining () = Hashtbl.fold (fun r l acc -> (List.length l, r) :: acc) pools [] in
  let total = Array.length supp in
  for _ = 1 to total do
    let candidates = List.sort (fun a b -> compare b a) (remaining ()) in
    let pick =
      match List.find_opt (fun (n, r) -> n > 0 && r <> !prev) candidates with
      | Some (_, r) -> r
      | None -> snd (List.hd (List.filter (fun (n, _) -> n > 0) candidates))
    in
    (match Hashtbl.find_opt pools pick with
    | Some (q :: rest) ->
        order := q :: !order;
        Hashtbl.replace pools pick rest;
        prev := pick
    | _ -> assert false)
  done;
  List.rev !order

let of_uec_round ?(params = Uec.default_params) (code : Code.t) ~assignment =
  if Array.length assignment <> code.Code.n then
    invalid_arg "Schedule.of_uec_round: assignment length mismatch";
  let reg q = Printf.sprintf "reg%d" assignment.(q) in
  let free : (string, float) Hashtbl.t = Hashtbl.create 8 in
  let avail r = Option.value ~default:0. (Hashtbl.find_opt free r) in
  let occupy r until = Hashtbl.replace free r until in
  let ops = ref [] in
  let emit kind start finish resources label =
    ops := { kind; start; finish; resources; label } :: !ops;
    List.iter (fun r -> occupy r finish) resources
  in
  let stabs =
    Array.to_list
      (Array.append
         (Array.mapi (fun i s -> (Printf.sprintf "Z%d" i, s)) code.Code.z_stabs)
         (Array.mapi (fun i s -> (Printf.sprintf "X%d" i, s)) code.Code.x_stabs))
  in
  List.iter
    (fun (label, supp) ->
      let order = interleave assignment supp in
      List.iter
        (fun q ->
          let r = reg q in
          (* swap the qubit out as soon as its port is free *)
          let so_start = avail r in
          let so_finish = so_start +. params.Uec.t_swap in
          emit (Swap_out q) so_start so_finish [ r ] label;
          (* CX when both the qubit is out and the ancilla is free *)
          let cx_start = max so_finish (avail "anc") in
          let cx_finish = cx_start +. params.Uec.t_2q in
          emit (Cx q) cx_start cx_finish [ r; "anc" ] label;
          (* swap straight back in *)
          emit (Swap_in q) cx_finish (cx_finish +. params.Uec.t_swap) [ r ] label)
        order;
      (* read the ancilla once every support qubit has been gated *)
      let ro_start = avail "anc" in
      emit Readout ro_start (ro_start +. params.Uec.t_readout) [ "anc" ] label)
    stabs;
  let ops = List.sort (fun a b -> compare (a.start, a.label) (b.start, b.label)) (List.rev !ops) in
  let makespan = List.fold_left (fun acc op -> max acc op.finish) 0. ops in
  let t = { ops; makespan } in
  validate t;
  t

let resources t =
  let seen = Hashtbl.create 8 in
  let order = ref [] in
  List.iter
    (fun op ->
      List.iter
        (fun r ->
          if not (Hashtbl.mem seen r) then begin
            Hashtbl.add seen r ();
            order := r :: !order
          end)
        op.resources)
    t.ops;
  List.rev !order

let busy_fraction t r =
  if t.makespan <= 0. then 0.
  else begin
    let busy =
      List.fold_left
        (fun acc op -> if List.mem r op.resources then acc +. (op.finish -. op.start) else acc)
        0. t.ops
    in
    busy /. t.makespan
  end

let glyph_of = function
  | Swap_out _ -> 'o'
  | Swap_in _ -> 'i'
  | Cx _ -> 'X'
  | Readout -> 'M'

let render ?(width = 72) t =
  let rs = resources t in
  let buf = Buffer.create 1024 in
  let scale = float_of_int (width - 1) /. max 1e-12 t.makespan in
  List.iter
    (fun r ->
      let row = Bytes.make width ' ' in
      List.iter
        (fun op ->
          if List.mem r op.resources then begin
            let a = int_of_float (op.start *. scale) in
            let b = max a (int_of_float (op.finish *. scale) - 1) in
            for c = a to min (width - 1) b do
              Bytes.set row c (glyph_of op.kind)
            done
          end)
        t.ops;
      Buffer.add_string buf (Printf.sprintf "%6s |%s|\n" r (Bytes.to_string row)))
    rs;
  Buffer.add_string buf
    (Printf.sprintf "%6s  o=swap-out i=swap-in X=cx M=readout; makespan %.2f us\n" ""
       (t.makespan *. 1e6));
  Buffer.contents buf

let to_csv t =
  let kind_str = function
    | Swap_out q -> Printf.sprintf "swap_out:%d" q
    | Swap_in q -> Printf.sprintf "swap_in:%d" q
    | Cx q -> Printf.sprintf "cx:%d" q
    | Readout -> "readout"
  in
  Tableio.csv
    ~header:[ "start"; "finish"; "kind"; "resources"; "label" ]
    (List.map
       (fun op ->
         [ Printf.sprintf "%.9f" op.start;
           Printf.sprintf "%.9f" op.finish;
           kind_str op.kind;
           String.concat "+" op.resources;
           op.label ])
       t.ops)
