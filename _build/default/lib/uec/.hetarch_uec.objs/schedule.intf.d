lib/uec/schedule.mli: Code Uec
