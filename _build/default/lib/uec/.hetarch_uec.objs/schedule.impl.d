lib/uec/schedule.ml: Array Buffer Bytes Code Hashtbl List Option Printf String Tableio Uec
