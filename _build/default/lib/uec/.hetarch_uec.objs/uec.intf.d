lib/uec/uec.mli: Code Rng
