lib/uec/uec.ml: Array Code Decoder_lookup Grid Hashtbl List Option Printf Rng Router
