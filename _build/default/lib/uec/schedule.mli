(** Explicit timed operation schedules for the serialized UEC round.

    {!Uec.profile}'s round time comes from a closed-form pipelining model;
    this module materializes the actual timeline — every SWAP, CX and
    readout with start/finish times and the devices it occupies — validated
    for resource conflicts (one register port, one ancilla) and renderable
    as a Gantt chart.  It is the quantum analogue of the timed netlist a
    VLSI flow hands to verification: the test suite asserts the closed form
    tracks this exact schedule to within one swap per check. *)

type op_kind =
  | Swap_out of int  (** data qubit leaves storage through its register port *)
  | Swap_in of int
  | Cx of int  (** data qubit gated with the central ancilla *)
  | Readout  (** ancilla measurement + reset *)

type op = {
  kind : op_kind;
  start : float;
  finish : float;
  resources : string list;  (** e.g. ["reg0"]; CX uses ["reg0"; "anc"] *)
  label : string;  (** the stabilizer this op serves, e.g. "Z3" *)
}

type t = { ops : op list; makespan : float }

val validate : t -> unit
(** Raises [Invalid_argument] on overlapping use of a resource or an op with
    [finish <= start]. *)

val of_uec_round : ?params:Uec.params -> Code.t -> assignment:int array -> t
(** One serialized round: for every stabilizer (Z checks then X checks),
    each support qubit is swapped out of its register, gated with the
    ancilla, and swapped back, greedily pipelining against port and ancilla
    availability; the check ends with an ancilla readout.  Qubits inside a
    check are ordered register-interleaved, mirroring the closed-form
    model's assumption. *)

val resources : t -> string list
(** Distinct resource names in first-use order. *)

val busy_fraction : t -> string -> float
(** Fraction of the makespan the resource is occupied. *)

val render : ?width:int -> t -> string
(** ASCII Gantt chart, one row per resource. *)

val to_csv : t -> string
