lib/util/tableio.mli:
