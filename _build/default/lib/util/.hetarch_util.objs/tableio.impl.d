lib/util/tableio.ml: Array Buffer List Printf String
