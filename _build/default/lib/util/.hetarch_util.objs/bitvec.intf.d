lib/util/bitvec.mli:
