lib/util/heap.mli:
