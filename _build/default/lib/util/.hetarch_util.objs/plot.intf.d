lib/util/plot.mli:
