lib/util/rng.mli:
