lib/util/stats.mli:
