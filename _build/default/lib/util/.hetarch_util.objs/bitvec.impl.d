lib/util/bitvec.ml: Array String
