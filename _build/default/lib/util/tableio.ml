type align = Left | Right

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else begin
    let fill = String.make (width - n) ' ' in
    match align with Left -> s ^ fill | Right -> fill ^ s
  end

let normalize ncols row =
  let len = List.length row in
  if len >= ncols then row else row @ List.init (ncols - len) (fun _ -> "")

let render ?(align = Right) ~header rows =
  let ncols = List.length header in
  let rows = List.map (normalize ncols) rows in
  let widths = Array.make ncols 0 in
  List.iter
    (fun row ->
      List.iteri (fun i cell -> widths.(i) <- max widths.(i) (String.length cell)) row)
    (header :: rows);
  let line row =
    String.concat "  " (List.mapi (fun i cell -> pad align widths.(i) cell) row)
  in
  let rule =
    String.concat "  " (Array.to_list (Array.map (fun w -> String.make w '-') widths))
  in
  String.concat "\n" (line header :: rule :: List.map line rows)

let print ?align ~header rows =
  print_endline (render ?align ~header rows)

let csv_field s =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') s then begin
    let b = Buffer.create (String.length s + 2) in
    Buffer.add_char b '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string b "\"\"" else Buffer.add_char b c)
      s;
    Buffer.add_char b '"';
    Buffer.contents b
  end
  else s

let csv ~header rows =
  let line row = String.concat "," (List.map csv_field row) in
  String.concat "\n" (line header :: List.map line rows)

let fmt_g x = Printf.sprintf "%.4g" x
let fmt_sci x = Printf.sprintf "%.3e" x
