let blocks = [| " "; "\xe2\x96\x81"; "\xe2\x96\x82"; "\xe2\x96\x83"; "\xe2\x96\x84";
                "\xe2\x96\x85"; "\xe2\x96\x86"; "\xe2\x96\x87"; "\xe2\x96\x88" |]

let spark values =
  match values with
  | [] -> ""
  | _ ->
      let lo = List.fold_left min infinity values in
      let hi = List.fold_left max neg_infinity values in
      let range = if hi -. lo <= 0. then 1. else hi -. lo in
      String.concat ""
        (List.map
           (fun v ->
             let level = int_of_float ((v -. lo) /. range *. 8.) in
             blocks.(max 0 (min 8 level)))
           values)

let glyphs = [| '*'; '+'; 'o'; 'x'; '#'; '@'; '%'; '&' |]

let lines ?(width = 64) ?(height = 16) ?(logy = false) ~series () =
  let clean =
    List.map
      (fun (name, pts) ->
        ( name,
          List.filter_map
            (fun (x, y) ->
              if Float.is_finite x && Float.is_finite y then
                if logy then if y > 0. then Some (x, log10 y) else None
                else Some (x, y)
              else None)
            pts ))
      series
  in
  let all = List.concat_map snd clean in
  match all with
  | [] -> "(no data)"
  | _ ->
      let xs = List.map fst all and ys = List.map snd all in
      let xlo = List.fold_left min infinity xs and xhi = List.fold_left max neg_infinity xs in
      let ylo = List.fold_left min infinity ys and yhi = List.fold_left max neg_infinity ys in
      let xr = if xhi -. xlo <= 0. then 1. else xhi -. xlo in
      let yr = if yhi -. ylo <= 0. then 1. else yhi -. ylo in
      let canvas = Array.make_matrix height width ' ' in
      List.iteri
        (fun si (_, pts) ->
          let glyph = glyphs.(si mod Array.length glyphs) in
          List.iter
            (fun (x, y) ->
              let col = int_of_float ((x -. xlo) /. xr *. float_of_int (width - 1)) in
              let row =
                height - 1
                - int_of_float ((y -. ylo) /. yr *. float_of_int (height - 1))
              in
              let col = max 0 (min (width - 1) col) in
              let row = max 0 (min (height - 1) row) in
              canvas.(row).(col) <- glyph)
            pts)
        clean;
      let buf = Buffer.create ((width + 4) * (height + 4)) in
      let ylabel v = if logy then Printf.sprintf "1e%.1f" v else Printf.sprintf "%.3g" v in
      Array.iteri
        (fun r row ->
          Buffer.add_string buf
            (if r = 0 then Printf.sprintf "%8s |" (ylabel yhi)
             else if r = height - 1 then Printf.sprintf "%8s |" (ylabel ylo)
             else Printf.sprintf "%8s |" "");
          Array.iter (Buffer.add_char buf) row;
          Buffer.add_char buf '\n')
        canvas;
      Buffer.add_string buf (Printf.sprintf "%8s +%s\n" "" (String.make width '-'));
      let left = Printf.sprintf "%.3g" xlo and right = Printf.sprintf "%.3g" xhi in
      let gap = max 1 (width - String.length left - String.length right) in
      Buffer.add_string buf
        (Printf.sprintf "%8s  %s%s%s\n" "" left (String.make gap ' ') right);
      List.iteri
        (fun si (name, _) ->
          Buffer.add_string buf
            (Printf.sprintf "%8s  %c = %s\n" "" glyphs.(si mod Array.length glyphs) name))
        clean;
      Buffer.contents buf
