(** Terminal plots for the figure-regeneration harness.

    The paper's figures are line charts; these helpers render the same
    series as unicode/ASCII art so `hetarch figN` output is readable without
    leaving the terminal. *)

val spark : float list -> string
(** One-line sparkline using block characters; empty input gives "". *)

val lines :
  ?width:int -> ?height:int -> ?logy:bool ->
  series:(string * (float * float) list) list -> unit -> string
(** Multi-series scatter/line chart on a character canvas (default 64x16).
    Each series gets a distinct glyph; a legend, y-range and x-range are
    appended.  Points with non-finite coordinates are skipped; [logy] plots
    log10 of positive y values. *)
