(** Mutable binary min-heap keyed by float priority.

    Used as the event queue of the discrete-event engine and as the frontier
    of shortest-path routing. *)

type 'a t

val create : unit -> 'a t
val is_empty : 'a t -> bool
val size : 'a t -> int

val push : 'a t -> float -> 'a -> unit
(** [push h priority value] inserts; smaller priorities pop first. *)

val pop : 'a t -> (float * 'a) option
(** Remove and return the minimum-priority element. *)

val peek : 'a t -> (float * 'a) option
val clear : 'a t -> unit
