(** Aligned text tables and CSV output for experiment harnesses. *)

type align = Left | Right

val render : ?align:align -> header:string list -> string list list -> string
(** Render rows under a header with column alignment and a rule line.
    Rows shorter than the header are padded with empty cells. *)

val print : ?align:align -> header:string list -> string list list -> unit

val csv : header:string list -> string list list -> string
(** RFC-4180-ish CSV (quotes fields containing commas/quotes/newlines). *)

val fmt_g : float -> string
(** Compact float rendering used across harness output (%.4g). *)

val fmt_sci : float -> string
(** Scientific rendering (%.3e). *)
