type 'a entry = { prio : float; value : 'a }
type 'a t = { mutable data : 'a entry array; mutable len : int }

let create () = { data = [||]; len = 0 }
let is_empty h = h.len = 0
let size h = h.len

let grow h e =
  let cap = Array.length h.data in
  if h.len = cap then begin
    let ncap = max 16 (2 * cap) in
    let nd = Array.make ncap e in
    Array.blit h.data 0 nd 0 h.len;
    h.data <- nd
  end

let rec sift_up h i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if h.data.(i).prio < h.data.(parent).prio then begin
      let tmp = h.data.(i) in
      h.data.(i) <- h.data.(parent);
      h.data.(parent) <- tmp;
      sift_up h parent
    end
  end

let rec sift_down h i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < h.len && h.data.(l).prio < h.data.(!smallest).prio then smallest := l;
  if r < h.len && h.data.(r).prio < h.data.(!smallest).prio then smallest := r;
  if !smallest <> i then begin
    let tmp = h.data.(i) in
    h.data.(i) <- h.data.(!smallest);
    h.data.(!smallest) <- tmp;
    sift_down h !smallest
  end

let push h prio value =
  let e = { prio; value } in
  grow h e;
  h.data.(h.len) <- e;
  h.len <- h.len + 1;
  sift_up h (h.len - 1)

let pop h =
  if h.len = 0 then None
  else begin
    let top = h.data.(0) in
    h.len <- h.len - 1;
    if h.len > 0 then begin
      h.data.(0) <- h.data.(h.len);
      sift_down h 0
    end;
    Some (top.prio, top.value)
  end

let peek h = if h.len = 0 then None else Some (h.data.(0).prio, h.data.(0).value)
let clear h = h.len <- 0
