(** Disjoint-set forest with path compression and union by rank. *)

type t

val create : int -> t
(** [create n] makes [n] singleton sets labelled [0 .. n-1]. *)

val find : t -> int -> int
(** Canonical representative of the set containing the element. *)

val union : t -> int -> int -> int
(** Merge two sets; returns the representative of the merged set. *)

val same : t -> int -> int -> bool
val size : t -> int -> int
(** Number of elements in the set containing the element. *)

val count_sets : t -> int
