type t = { parent : int array; rank : int array; sizes : int array; mutable sets : int }

let create n =
  { parent = Array.init n (fun i -> i);
    rank = Array.make n 0;
    sizes = Array.make n 1;
    sets = n }

let rec find t x =
  let p = t.parent.(x) in
  if p = x then x
  else begin
    let root = find t p in
    t.parent.(x) <- root;
    root
  end

let union t a b =
  let ra = find t a and rb = find t b in
  if ra = rb then ra
  else begin
    t.sets <- t.sets - 1;
    let ra, rb = if t.rank.(ra) < t.rank.(rb) then (rb, ra) else (ra, rb) in
    t.parent.(rb) <- ra;
    t.sizes.(ra) <- t.sizes.(ra) + t.sizes.(rb);
    if t.rank.(ra) = t.rank.(rb) then t.rank.(ra) <- t.rank.(ra) + 1;
    ra
  end

let same t a b = find t a = find t b
let size t x = t.sizes.(find t x)
let count_sets t = t.sets
