type t = { mutable s0 : int64; mutable s1 : int64; mutable s2 : int64; mutable s3 : int64 }

(* splitmix64: seed expander recommended by the xoshiro authors. *)
let splitmix64 state =
  let open Int64 in
  state := add !state 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let create seed =
  let state = ref (Int64.of_int seed) in
  let s0 = splitmix64 state in
  let s1 = splitmix64 state in
  let s2 = splitmix64 state in
  let s3 = splitmix64 state in
  { s0; s1; s2; s3 }

let rotl x k = Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

let bits64 t =
  let open Int64 in
  let result = mul (rotl (mul t.s1 5L) 7) 9L in
  let tmp = shift_left t.s1 17 in
  t.s2 <- logxor t.s2 t.s0;
  t.s3 <- logxor t.s3 t.s1;
  t.s1 <- logxor t.s1 t.s2;
  t.s0 <- logxor t.s0 t.s3;
  t.s2 <- logxor t.s2 tmp;
  t.s3 <- rotl t.s3 45;
  result

let split t =
  let seed = Int64.to_int (bits64 t) land max_int in
  create seed

let copy t = { s0 = t.s0; s1 = t.s1; s2 = t.s2; s3 = t.s3 }

let int t n =
  if n <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection-free for our purposes: 62 uniform bits mod n has negligible
     bias for n far below 2^62.  The mask keeps the OCaml int non-negative
     after the truncating Int64.to_int. *)
  let v = Int64.to_int (bits64 t) land max_int in
  v mod n

let uniform t =
  (* 53-bit mantissa from the top bits. *)
  let v = Int64.to_int (Int64.shift_right_logical (bits64 t) 11) in
  float_of_int v *. 0x1.0p-53

let float t x = uniform t *. x
let bool t = Int64.logand (bits64 t) 1L = 1L
let bernoulli t p = uniform t < p

let exponential t rate =
  if rate <= 0. then invalid_arg "Rng.exponential: rate must be positive";
  -.log (1. -. uniform t) /. rate

let gaussian t =
  let u1 = 1. -. uniform t and u2 = uniform t in
  sqrt (-2. *. log u1) *. cos (2. *. Float.pi *. u2)

let poisson t lambda =
  if lambda < 0. then invalid_arg "Rng.poisson: negative mean";
  if lambda > 500. then
    let x = (lambda +. (sqrt lambda *. gaussian t)) +. 0.5 in
    max 0 (int_of_float x)
  else begin
    (* Inversion by sequential search. *)
    let l = exp (-.lambda) in
    let k = ref 0 and p = ref 1.0 in
    let continue = ref true in
    while !continue do
      p := !p *. uniform t;
      if !p <= l then continue := false else incr k
    done;
    !k
  end

let categorical t w =
  let total = Array.fold_left ( +. ) 0. w in
  if total <= 0. then invalid_arg "Rng.categorical: weights must sum > 0";
  let x = float t total in
  let acc = ref 0. and idx = ref (Array.length w - 1) in
  (try
     Array.iteri
       (fun i wi ->
         acc := !acc +. wi;
         if x < !acc then begin
           idx := i;
           raise Exit
         end)
       w
   with Exit -> ());
  !idx

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let choose t a =
  if Array.length a = 0 then invalid_arg "Rng.choose: empty array";
  a.(int t (Array.length a))
