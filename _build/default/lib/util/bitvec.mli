(** Packed bit vectors over 63-bit words.

    The stabilizer tableau and Pauli-frame simulators store Pauli supports as
    bit vectors; xor-accumulation over whole words is the hot loop. *)

type t

val create : int -> t
(** [create n] is an all-zero vector of [n] bits. *)

val length : t -> int
val get : t -> int -> bool
val set : t -> int -> bool -> unit
val flip : t -> int -> unit
val clear : t -> unit
val copy : t -> t

val xor_into : dst:t -> t -> unit
(** [xor_into ~dst src] sets [dst <- dst xor src].  Lengths must match. *)

val and_popcount : t -> t -> int
(** Number of positions set in both vectors. *)

val popcount : t -> int
val is_zero : t -> bool
val equal : t -> t -> bool

val iter_set : t -> (int -> unit) -> unit
(** Iterate indices of set bits in increasing order. *)

val to_string : t -> string
(** "0110..." rendering, index 0 first. *)
