type t = { bits : int array; n : int }

let wordsize = 63
let words n = (n + wordsize - 1) / wordsize
let create n = { bits = Array.make (max 1 (words n)) 0; n }
let length t = t.n

let check t i =
  if i < 0 || i >= t.n then invalid_arg "Bitvec: index out of bounds"

let get t i =
  check t i;
  t.bits.(i / wordsize) land (1 lsl (i mod wordsize)) <> 0

let set t i b =
  check t i;
  let w = i / wordsize and m = 1 lsl (i mod wordsize) in
  if b then t.bits.(w) <- t.bits.(w) lor m else t.bits.(w) <- t.bits.(w) land lnot m

let flip t i =
  check t i;
  let w = i / wordsize in
  t.bits.(w) <- t.bits.(w) lxor (1 lsl (i mod wordsize))

let clear t = Array.fill t.bits 0 (Array.length t.bits) 0
let copy t = { bits = Array.copy t.bits; n = t.n }

let xor_into ~dst src =
  if dst.n <> src.n then invalid_arg "Bitvec.xor_into: length mismatch";
  for w = 0 to Array.length dst.bits - 1 do
    dst.bits.(w) <- dst.bits.(w) lxor src.bits.(w)
  done

(* Kernighan popcount: words are sparse in our workloads, and OCaml has no
   portable hardware popcount without C stubs. *)
let popcount_word w =
  let c = ref 0 and x = ref w in
  while !x <> 0 do
    x := !x land (!x - 1);
    incr c
  done;
  !c

let popcount t = Array.fold_left (fun acc w -> acc + popcount_word w) 0 t.bits

let and_popcount a b =
  if a.n <> b.n then invalid_arg "Bitvec.and_popcount: length mismatch";
  let acc = ref 0 in
  for w = 0 to Array.length a.bits - 1 do
    acc := !acc + popcount_word (a.bits.(w) land b.bits.(w))
  done;
  !acc

let is_zero t = Array.for_all (fun w -> w = 0) t.bits

let equal a b =
  a.n = b.n && Array.for_all2 (fun x y -> x = y) a.bits b.bits

let iter_set t f =
  for w = 0 to Array.length t.bits - 1 do
    let word = t.bits.(w) in
    if word <> 0 then
      for b = 0 to wordsize - 1 do
        if word land (1 lsl b) <> 0 then begin
          let i = (w * wordsize) + b in
          if i < t.n then f i
        end
      done
  done

let to_string t = String.init t.n (fun i -> if get t i then '1' else '0')
