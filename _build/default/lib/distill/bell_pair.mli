(** Bell-diagonal two-qubit states and the DEJMPS distillation step.

    Entangled pairs that undergo Pauli-twirled noise stay Bell-diagonal, so
    the module-level distillation simulation tracks just four probabilities —
    the paper's channel abstraction at work.  The algebra here is verified
    against full density-matrix simulation in the test suite. *)

type t = {
  phi_p : float;  (** weight of (|00>+|11>)/sqrt2 — the fidelity *)
  psi_p : float;  (** (|01>+|10>)/sqrt2: a bit-flip *)
  psi_m : float;  (** (|01>-|10>)/sqrt2: a bit+phase flip *)
  phi_m : float;  (** (|00>-|11>)/sqrt2: a phase flip *)
}

val werner : float -> t
(** [werner f]: fidelity [f], remaining weight split evenly. *)

val perfect : t

val fidelity : t -> float
val infidelity : t -> float

val validate : t -> unit
(** Probabilities non-negative and summing to 1 (within tolerance). *)

val normalize : t -> t

val apply_pauli_half : t -> px:float -> py:float -> pz:float -> t
(** Apply a single-qubit Pauli channel to one half of the pair. *)

val decay : t -> t1:float -> t2:float -> dt:float -> t
(** Both halves idle for [dt] on devices with the given coherence times
    (Pauli-twirled thermal noise). *)

val decay_one_sided : t -> t1:float -> t2:float -> dt:float -> t
(** Only one half decays (e.g. the remote half is already consumed). *)

val depolarize : t -> p:float -> t
(** Two-sided local depolarizing with total strength [p] per half — the gate
    error model for the local operations of a distillation round. *)

val dejmps : t -> t -> float * t
(** [dejmps a b] = (success probability, output pair given success).  The
    DEJMPS step: both pairs are rotated (phi- <-> psi-), a bilateral CNOT
    from [a] to [b] is applied, and [b] is measured in Z on both sides and
    kept on even parity.  The survivor is left in the rotated frame (still
    Bell-diagonal); the frame alternation across rounds is what makes the
    iteration converge. *)

val dejmps_predicted_fidelity : t -> t -> float
(** Fidelity of the success branch (scheduler's improvement test). *)

val swap : t -> t -> t
(** Entanglement swapping: a Bell measurement on the middle node of two
    chained pairs teleports the correlations, XOR-ing the error coordinates
    of the two inputs (deterministic up to the Pauli correction, which is
    tracked classically).  Verified against the exact BSM circuit in the
    test suite. *)

val to_probs : t -> float array
(** [phi_p; psi_p; psi_m; phi_m] as an array (testing). *)
