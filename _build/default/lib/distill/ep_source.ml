type t = { rate_hz : float; infidelity_lo : float; infidelity_hi : float }

let create ?(infidelity_lo = 0.01) ?(infidelity_hi = 0.05) ~rate_hz () =
  if rate_hz <= 0. then invalid_arg "Ep_source.create: rate must be positive";
  if infidelity_lo < 0. || infidelity_hi > 1. || infidelity_lo > infidelity_hi then
    invalid_arg "Ep_source.create: bad infidelity range";
  { rate_hz; infidelity_lo; infidelity_hi }

let next_gap t rng = Rng.exponential rng t.rate_hz

let sample_pair t rng =
  let infid =
    t.infidelity_lo +. Rng.float rng (t.infidelity_hi -. t.infidelity_lo)
  in
  Bell_pair.werner (1. -. infid)
