type t = { phi_p : float; psi_p : float; psi_m : float; phi_m : float }

let werner f =
  if f < 0. || f > 1. then invalid_arg "Bell_pair.werner";
  let rest = (1. -. f) /. 3. in
  { phi_p = f; psi_p = rest; psi_m = rest; phi_m = rest }

let perfect = { phi_p = 1.; psi_p = 0.; psi_m = 0.; phi_m = 0. }

let fidelity t = t.phi_p
let infidelity t = 1. -. t.phi_p

let total t = t.phi_p +. t.psi_p +. t.psi_m +. t.phi_m

let validate t =
  if t.phi_p < -1e-9 || t.psi_p < -1e-9 || t.psi_m < -1e-9 || t.phi_m < -1e-9 then
    invalid_arg "Bell_pair.validate: negative weight";
  if Float.abs (total t -. 1.) > 1e-6 then
    invalid_arg "Bell_pair.validate: weights do not sum to 1"

let normalize t =
  let s = total t in
  if s <= 0. then invalid_arg "Bell_pair.normalize: zero state";
  { phi_p = t.phi_p /. s; psi_p = t.psi_p /. s; psi_m = t.psi_m /. s; phi_m = t.phi_m /. s }

(* A single-qubit Pauli on either half permutes the Bell basis:
   X: phi+ <-> psi+, phi- <-> psi-;  Z: phi+ <-> phi-, psi+ <-> psi-;
   Y: phi+ <-> psi-, psi+ <-> phi-. *)
let apply_pauli_half t ~px ~py ~pz =
  let pi = 1. -. px -. py -. pz in
  if pi < -1e-12 then invalid_arg "Bell_pair.apply_pauli_half: probabilities exceed 1";
  { phi_p = (pi *. t.phi_p) +. (px *. t.psi_p) +. (py *. t.psi_m) +. (pz *. t.phi_m);
    psi_p = (pi *. t.psi_p) +. (px *. t.phi_p) +. (py *. t.phi_m) +. (pz *. t.psi_m);
    psi_m = (pi *. t.psi_m) +. (px *. t.phi_m) +. (py *. t.phi_p) +. (pz *. t.psi_p);
    phi_m = (pi *. t.phi_m) +. (px *. t.psi_m) +. (py *. t.psi_p) +. (pz *. t.phi_p) }

let twirl_probs ~t1 ~t2 ~dt =
  let p1 = (1. -. exp (-.dt /. t1)) /. 4. in
  let pz = max 0. (((1. -. exp (-.dt /. t2)) /. 2.) -. p1) in
  (p1, p1, pz)

let decay t ~t1 ~t2 ~dt =
  if dt <= 0. then t
  else begin
    let px, py, pz = twirl_probs ~t1 ~t2 ~dt in
    let once = apply_pauli_half t ~px ~py ~pz in
    apply_pauli_half once ~px ~py ~pz
  end

let decay_one_sided t ~t1 ~t2 ~dt =
  if dt <= 0. then t
  else begin
    let px, py, pz = twirl_probs ~t1 ~t2 ~dt in
    apply_pauli_half t ~px ~py ~pz
  end

let depolarize t ~p =
  let comp = p /. 3. in
  let once = apply_pauli_half t ~px:comp ~py:comp ~pz:comp in
  apply_pauli_half once ~px:comp ~py:comp ~pz:comp

(* (bit, phase) coordinates: phi+=(0,0), psi+=(1,0), phi-=(0,1), psi-=(1,1). *)
let to_bp t = [| [| t.phi_p; t.phi_m |]; [| t.psi_p; t.psi_m |] |]

let of_bp q =
  { phi_p = q.(0).(0); phi_m = q.(0).(1); psi_p = q.(1).(0); psi_m = q.(1).(1) }

(* The DEJMPS local rotations Rx(pi/2) (x) Rx(-pi/2) fix phi+ and psi+ and
   exchange phi- with psi-. *)
let rotate t = { t with phi_m = t.psi_m; psi_m = t.phi_m }

let dejmps a b =
  let a = rotate a and b = rotate b in
  let qa = to_bp a and qb = to_bp b in
  (* Bilateral CNOT a->b; measure pair b in ZZ; keep when the bit parities
     agree.  Surviving pair keeps a's bit and accumulates b's phase. *)
  let p_succ =
    ((qa.(0).(0) +. qa.(0).(1)) *. (qb.(0).(0) +. qb.(0).(1)))
    +. ((qa.(1).(0) +. qa.(1).(1)) *. (qb.(1).(0) +. qb.(1).(1)))
  in
  if p_succ <= 0. then (0., perfect)
  else begin
    let out = Array.make_matrix 2 2 0. in
    for bit = 0 to 1 do
      for p1 = 0 to 1 do
        for p2 = 0 to 1 do
          out.(bit).(p1 lxor p2) <-
            out.(bit).(p1 lxor p2) +. (qa.(bit).(p1) *. qb.(bit).(p2) /. p_succ)
        done
      done
    done;
    (* No rotate-back: the protocol leaves the survivor in the rotated frame
       (still Bell-diagonal), and the frame alternation across rounds is what
       lets phase errors be caught as bit errors every other round — without
       it the psi- component compounds and iteration diverges. *)
    (p_succ, of_bp out)
  end

(* Entanglement swapping: in (bit, phase) coordinates the output error is
   the XOR of the two links' errors. *)
let swap a b =
  let qa = to_bp a and qb = to_bp b in
  let out = Array.make_matrix 2 2 0. in
  for b1 = 0 to 1 do
    for p1 = 0 to 1 do
      for b2 = 0 to 1 do
        for p2 = 0 to 1 do
          out.(b1 lxor b2).(p1 lxor p2) <-
            out.(b1 lxor b2).(p1 lxor p2) +. (qa.(b1).(p1) *. qb.(b2).(p2))
        done
      done
    done
  done;
  of_bp out

let dejmps_predicted_fidelity a b = fidelity (snd (dejmps a b))

let to_probs t = [| t.phi_p; t.psi_p; t.psi_m; t.phi_m |]
