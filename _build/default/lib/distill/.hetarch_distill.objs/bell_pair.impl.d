lib/distill/bell_pair.ml: Array Float
