lib/distill/bell_pair.mli:
