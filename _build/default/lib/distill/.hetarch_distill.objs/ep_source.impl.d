lib/distill/ep_source.ml: Bell_pair Rng
