lib/distill/distill_module.ml: Array Bell_pair Des Ep_source List Rng
