lib/distill/ep_source.mli: Bell_pair Rng
