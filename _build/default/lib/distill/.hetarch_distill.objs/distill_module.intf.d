lib/distill/distill_module.mli: Ep_source Rng
