(** Probabilistic entangled-pair source.

    Models the paper's §4.1 setting — EP generation comparable to microwave-
    to-optical conversion: Poisson arrivals with mean period 1-100 us and raw
    infidelities of order 0.01-0.1 (10-1000x slower and 10-100x noisier than
    compute operations). *)

type t = {
  rate_hz : float;  (** mean generation rate *)
  infidelity_lo : float;
  infidelity_hi : float;  (** raw pair infidelity, uniform in [lo, hi] *)
}

val create : ?infidelity_lo:float -> ?infidelity_hi:float -> rate_hz:float -> unit -> t
(** Defaults: infidelity uniform in [0.01, 0.05]. *)

val next_gap : t -> Rng.t -> float
(** Exponential inter-arrival time, seconds. *)

val sample_pair : t -> Rng.t -> Bell_pair.t
(** A fresh Werner pair with sampled infidelity. *)
