(** Pauli operators on n qubits in symplectic (X|Z) representation.

    A Pauli is a pair of bit vectors: [x] marks qubits with an X component,
    [z] marks qubits with a Z component (both set = Y), together with a global
    phase exponent in {0,1,2,3} counting powers of i. *)

type t

val identity : int -> t
val nqubits : t -> int

val of_string : string -> t
(** Parse e.g. ["+XIZY"] or ["-ZZ"] or ["XX"] (implicit +). *)

val to_string : t -> string

val phase : t -> int
(** Power of i in the global phase, 0..3. *)

val x_bit : t -> int -> bool
val z_bit : t -> int -> bool

val set_x : t -> int -> bool -> unit
val set_z : t -> int -> bool -> unit

val copy : t -> t
val equal : t -> t -> bool
val equal_up_to_phase : t -> t -> bool

val weight : t -> int
(** Number of non-identity sites. *)

val commutes : t -> t -> bool
(** Whether the two Paulis commute (symplectic inner product = 0). *)

val mul : t -> t -> t
(** Product with correct phase tracking. *)

val neg : t -> t

val single : int -> int -> char -> t
(** [single n q p] is the n-qubit Pauli with [p] in {'X','Y','Z'} at site
    [q]. *)

val support : t -> int list
(** Indices of non-identity sites, ascending. *)
