(* Aaronson–Gottesman CHP tableau: rows 0..n-1 are destabilizers, rows
   n..2n-1 stabilizers, row 2n is scratch.  Each row is a Hermitian Pauli
   (site with x=z=1 denotes Y) with sign (-1)^r. *)

type t = {
  n : int;
  xs : Bitvec.t array;  (* 2n+1 rows *)
  zs : Bitvec.t array;
  r : int array;  (* 2n+1 phase exponents mod 4 (powers of i); stabilizer
                     rows only ever hold 0 or 2, but destabilizer rows pick
                     up +-i phases during measurement rowsums, which is why
                     one sign bit is not enough (as in CHP) *)
}

let create n =
  if n <= 0 then invalid_arg "Tableau.create";
  let rows = (2 * n) + 1 in
  let t =
    { n;
      xs = Array.init rows (fun _ -> Bitvec.create n);
      zs = Array.init rows (fun _ -> Bitvec.create n);
      r = Array.make rows 0 }
  in
  for i = 0 to n - 1 do
    Bitvec.set t.xs.(i) i true;
    (* destabilizer i = X_i *)
    Bitvec.set t.zs.(n + i) i true (* stabilizer i = Z_i *)
  done;
  t

let nqubits t = t.n

let copy t =
  { n = t.n;
    xs = Array.map Bitvec.copy t.xs;
    zs = Array.map Bitvec.copy t.zs;
    r = Array.copy t.r }

(* Phase contribution g(x1,z1,x2,z2) of multiplying site paulis, from the
   AG04 paper. *)
let g x1 z1 x2 z2 =
  match (x1, z1) with
  | false, false -> 0
  | true, true -> (if z2 then 1 else 0) - if x2 then 1 else 0
  | true, false -> if z2 then (if x2 then 1 else -1) else 0
  | false, true -> if x2 then (if z2 then -1 else 1) else 0

(* row_h := row_h * row_i with sign tracking. *)
let rowsum t h i =
  let acc = ref 0 in
  for j = 0 to t.n - 1 do
    acc :=
      !acc
      + g (Bitvec.get t.xs.(i) j) (Bitvec.get t.zs.(i) j) (Bitvec.get t.xs.(h) j)
          (Bitvec.get t.zs.(h) j)
  done;
  let total = ((t.r.(h) + t.r.(i) + !acc) mod 4 + 4) mod 4 in
  (* Stabilizer-row products are Hermitian (phase 0 or 2); destabilizer rows
     may legitimately carry +-i. *)
  if h >= t.n && h < 2 * t.n then assert (total = 0 || total = 2);
  t.r.(h) <- total;
  Bitvec.xor_into ~dst:t.xs.(h) t.xs.(i);
  Bitvec.xor_into ~dst:t.zs.(h) t.zs.(i)

let check_q t q = if q < 0 || q >= t.n then invalid_arg "Tableau: qubit out of range"

let h t q =
  check_q t q;
  for i = 0 to (2 * t.n) - 1 do
    let xi = Bitvec.get t.xs.(i) q and zi = Bitvec.get t.zs.(i) q in
    if xi && zi then t.r.(i) <- (t.r.(i) + 2) mod 4;
    Bitvec.set t.xs.(i) q zi;
    Bitvec.set t.zs.(i) q xi
  done

let s t q =
  check_q t q;
  for i = 0 to (2 * t.n) - 1 do
    let xi = Bitvec.get t.xs.(i) q and zi = Bitvec.get t.zs.(i) q in
    if xi && zi then t.r.(i) <- (t.r.(i) + 2) mod 4;
    Bitvec.set t.zs.(i) q (xi <> zi)
  done

let x t q =
  check_q t q;
  for i = 0 to (2 * t.n) - 1 do
    if Bitvec.get t.zs.(i) q then t.r.(i) <- (t.r.(i) + 2) mod 4
  done

let z t q =
  check_q t q;
  for i = 0 to (2 * t.n) - 1 do
    if Bitvec.get t.xs.(i) q then t.r.(i) <- (t.r.(i) + 2) mod 4
  done

let y t q =
  check_q t q;
  for i = 0 to (2 * t.n) - 1 do
    if Bitvec.get t.xs.(i) q <> Bitvec.get t.zs.(i) q then
      t.r.(i) <- (t.r.(i) + 2) mod 4
  done

let cx t a b =
  check_q t a;
  check_q t b;
  if a = b then invalid_arg "Tableau.cx: same qubit";
  for i = 0 to (2 * t.n) - 1 do
    let xa = Bitvec.get t.xs.(i) a
    and za = Bitvec.get t.zs.(i) a
    and xb = Bitvec.get t.xs.(i) b
    and zb = Bitvec.get t.zs.(i) b in
    if xa && zb && xb = za then t.r.(i) <- (t.r.(i) + 2) mod 4;
    Bitvec.set t.xs.(i) b (xb <> xa);
    Bitvec.set t.zs.(i) a (za <> zb)
  done

let cz t a b =
  h t b;
  cx t a b;
  h t b

let swap t a b =
  cx t a b;
  cx t b a;
  cx t a b

let find_anticommuting_stabilizer t q =
  let found = ref None in
  (try
     for i = t.n to (2 * t.n) - 1 do
       if Bitvec.get t.xs.(i) q then begin
         found := Some i;
         raise Exit
       end
     done
   with Exit -> ());
  !found

let zero_row t i =
  Bitvec.clear t.xs.(i);
  Bitvec.clear t.zs.(i);
  t.r.(i) <- 0

let copy_row t ~dst ~src =
  Bitvec.clear t.xs.(dst);
  Bitvec.clear t.zs.(dst);
  Bitvec.xor_into ~dst:t.xs.(dst) t.xs.(src);
  Bitvec.xor_into ~dst:t.zs.(dst) t.zs.(src);
  t.r.(dst) <- t.r.(src)

let deterministic_outcome t q =
  (* Scratch accumulation over destabilizers with X support on q. *)
  let scratch = 2 * t.n in
  zero_row t scratch;
  for i = 0 to t.n - 1 do
    if Bitvec.get t.xs.(i) q then rowsum t scratch (i + t.n)
  done;
  if t.r.(scratch) = 2 then 1 else 0

let measure t rng q =
  check_q t q;
  match find_anticommuting_stabilizer t q with
  | Some p ->
      for i = 0 to (2 * t.n) - 1 do
        if i <> p && Bitvec.get t.xs.(i) q then rowsum t i p
      done;
      copy_row t ~dst:(p - t.n) ~src:p;
      zero_row t p;
      Bitvec.set t.zs.(p) q true;
      let outcome = Rng.bool rng in
      t.r.(p) <- (if outcome then 2 else 0);
      if outcome then 1 else 0
  | None -> deterministic_outcome t q

let measure_deterministic t q =
  check_q t q;
  match find_anticommuting_stabilizer t q with
  | Some _ -> None
  | None -> Some (deterministic_outcome t q)

let reset t rng q =
  let outcome = measure t rng q in
  if outcome = 1 then x t q

let apply_pauli t p =
  if Pauli.nqubits p <> t.n then invalid_arg "Tableau.apply_pauli: size mismatch";
  (* Conjugating each row by the error flips its sign where they
     anticommute. *)
  for i = 0 to (2 * t.n) - 1 do
    let anti = ref 0 in
    for q = 0 to t.n - 1 do
      let row_x = Bitvec.get t.xs.(i) q and row_z = Bitvec.get t.zs.(i) q in
      let px = Pauli.x_bit p q and pz = Pauli.z_bit p q in
      if (row_x && pz) <> (row_z && px) then incr anti
    done;
    if !anti mod 2 = 1 then t.r.(i) <- (t.r.(i) + 2) mod 4
  done

(* A tableau row is a Hermitian Pauli: sites with x=z=1 are Y, sign (-1)^r.
   Build it through the string parser, which assigns the i-per-Y phase our
   representation requires. *)
let row_to_pauli t i =
  let str =
    String.init t.n (fun q ->
        match (Bitvec.get t.xs.(i) q, Bitvec.get t.zs.(i) q) with
        | false, false -> 'I'
        | true, false -> 'X'
        | false, true -> 'Z'
        | true, true -> 'Y')
  in
  let p = Pauli.of_string str in
  if t.r.(i) land 2 <> 0 then Pauli.neg p else p

let stabilizer_expectation t p =
  if Pauli.nqubits p <> t.n then invalid_arg "Tableau.stabilizer_expectation";
  (* Hermitian check: representation phase minus the i-per-Y bookkeeping must
     be real. *)
  let ys = ref 0 in
  for q = 0 to t.n - 1 do
    if Pauli.x_bit p q && Pauli.z_bit p q then incr ys
  done;
  if ((Pauli.phase p - !ys) mod 4 + 4) mod 4 land 1 = 1 then
    invalid_arg "Tableau.stabilizer_expectation: phase must be real";
  (* Not deterministic if it anticommutes with any stabilizer. *)
  let commutes_all = ref true in
  for i = t.n to (2 * t.n) - 1 do
    if not (Pauli.commutes (row_to_pauli t i) p) then commutes_all := false
  done;
  if not !commutes_all then None
  else begin
    (* P = ± prod of stabilizers S_i over the i whose destabilizer
       anticommutes with P; compare signs. *)
    let prod = ref (Pauli.identity t.n) in
    for i = 0 to t.n - 1 do
      if not (Pauli.commutes (row_to_pauli t i) p) then
        prod := Pauli.mul !prod (row_to_pauli t (i + t.n))
    done;
    if not (Pauli.equal_up_to_phase !prod p) then None
    else begin
      let dphase = ((Pauli.phase !prod - Pauli.phase p) mod 4 + 4) mod 4 in
      match dphase with
      | 0 -> Some 1
      | 2 -> Some (-1)
      | _ -> None
    end
  end

let run t rng (c : Circuit.t) =
  if c.Circuit.nqubits <> t.n then invalid_arg "Tableau.run: qubit count mismatch";
  let record = Bitvec.create (max 1 c.Circuit.nmeas) in
  let mi = ref 0 in
  Array.iter
    (fun (gate : Circuit.gate) ->
      match gate with
      | Circuit.H q -> h t q
      | Circuit.S q -> s t q
      | Circuit.X q -> x t q
      | Circuit.Y q -> y t q
      | Circuit.Z q -> z t q
      | Circuit.CX (a, b) -> cx t a b
      | Circuit.CZ (a, b) -> cz t a b
      | Circuit.SWAP (a, b) -> swap t a b
      | Circuit.M q ->
          let v = measure t rng q in
          Bitvec.set record !mi (v = 1);
          incr mi
      | Circuit.R q -> reset t rng q
      | Circuit.Noise1 { px; py; pz; q } ->
          let u = Rng.uniform rng in
          if u < px then x t q
          else if u < px +. py then y t q
          else if u < px +. py +. pz then z t q
      | Circuit.Depol2 { p; a; b } ->
          if Rng.bernoulli rng p then begin
            let which = 1 + Rng.int rng 15 in
            let pa = which lsr 2 and pb = which land 3 in
            let apply1 q = function
              | 1 -> x t q
              | 2 -> y t q
              | 3 -> z t q
              | _ -> ()
            in
            apply1 a pa;
            apply1 b pb
          end)
    c.Circuit.ops;
  record

let detector_values (c : Circuit.t) record =
  let parity idxs =
    Array.fold_left (fun acc m -> acc <> Bitvec.get record m) false idxs
  in
  let dets = Bitvec.create (max 1 (Array.length c.Circuit.detectors)) in
  Array.iteri (fun i d -> Bitvec.set dets i (parity d)) c.Circuit.detectors;
  let obs = Bitvec.create (max 1 (Array.length c.Circuit.observables)) in
  Array.iteri (fun i o -> Bitvec.set obs i (parity o)) c.Circuit.observables;
  (dets, obs)
