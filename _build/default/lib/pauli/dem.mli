(** Detector error model (DEM) extraction.

    Walks a noisy Clifford circuit backward, tracking for every qubit the set
    of detectors and observables sensitive to an X or Z error at the current
    position (Stim's detector-error-model pass).  Each stochastic noise
    component then maps to the detector/observable sets it flips, and
    components with identical signatures are merged by combining their
    probabilities.

    The result is the exact error hypergraph a decoder should operate on. *)

type mechanism = {
  p : float;  (** total probability of this error signature per shot *)
  detectors : int array;  (** sorted detector indices flipped *)
  obs_mask : int;  (** bit i set = observable i flipped *)
}

val of_circuit : Circuit.t -> mechanism list
(** Extract and merge all error mechanisms.  Mechanisms flipping nothing are
    dropped.  Probabilities of identical signatures combine as independent
    XOR-ed coins: p <- p1 (1-p2) + p2 (1-p1). *)

val check_graphlike : mechanism list -> bool
(** True when every mechanism flips at most two detectors (the matching-graph
    condition for surface-code memory experiments). *)
