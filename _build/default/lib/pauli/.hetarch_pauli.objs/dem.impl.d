lib/pauli/dem.ml: Array Bitvec Circuit Hashtbl List String
