lib/pauli/circuit.mli:
