lib/pauli/tableau.ml: Array Bitvec Circuit Pauli Rng String
