lib/pauli/frame.ml: Array Bitvec Bytes Circuit Rng
