lib/pauli/frame.mli: Bitvec Circuit Rng
