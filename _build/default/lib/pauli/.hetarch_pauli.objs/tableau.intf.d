lib/pauli/tableau.mli: Bitvec Circuit Pauli Rng
