lib/pauli/pauli.ml: Bitvec Buffer Printf String
