lib/pauli/pauli.mli:
