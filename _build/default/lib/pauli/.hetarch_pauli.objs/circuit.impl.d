lib/pauli/circuit.ml: Array List
