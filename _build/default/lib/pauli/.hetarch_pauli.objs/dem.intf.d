lib/pauli/dem.mli: Circuit
