type mechanism = { p : float; detectors : int array; obs_mask : int }

let combine p1 p2 = (p1 *. (1. -. p2)) +. (p2 *. (1. -. p1))

let of_circuit (c : Circuit.t) =
  let ndet = Array.length c.Circuit.detectors in
  let nobs = Array.length c.Circuit.observables in
  let width = ndet + nobs in
  if width = 0 then []
  else begin
    (* Which detectors/observables contain each measurement. *)
    let meas_sig = Array.init (max 1 c.Circuit.nmeas) (fun _ -> Bitvec.create width) in
    Array.iteri
      (fun di meas -> Array.iter (fun m -> Bitvec.flip meas_sig.(m) di) meas)
      c.Circuit.detectors;
    Array.iteri
      (fun oi meas -> Array.iter (fun m -> Bitvec.flip meas_sig.(m) (ndet + oi)) meas)
      c.Circuit.observables;
    let n = c.Circuit.nqubits in
    let sens_x = Array.init n (fun _ -> Bitvec.create width) in
    let sens_z = Array.init n (fun _ -> Bitvec.create width) in
    (* Accumulate raw components keyed by signature. *)
    let table : (string, float ref) Hashtbl.t = Hashtbl.create 1024 in
    let sigs : (string, int list * int) Hashtbl.t = Hashtbl.create 1024 in
    let record p sig_bits =
      if p > 0. && not (Bitvec.is_zero sig_bits) then begin
        let dets = ref [] and obs = ref 0 in
        Bitvec.iter_set sig_bits (fun i ->
            if i < ndet then dets := i :: !dets else obs := !obs lor (1 lsl (i - ndet)));
        let dets = List.rev !dets in
        let key =
          String.concat "," (List.map string_of_int dets) ^ "|" ^ string_of_int !obs
        in
        (match Hashtbl.find_opt table key with
        | Some r -> r := combine !r p
        | None ->
            Hashtbl.add table key (ref p);
            Hashtbl.add sigs key (dets, !obs))
      end
    in
    let xor_of a b =
      let v = Bitvec.copy a in
      Bitvec.xor_into ~dst:v b;
      v
    in
    let mi = ref c.Circuit.nmeas in
    (* Backward pass: sens_x.(q) is the signature an X error at the current
       position will flip. *)
    for i = Array.length c.Circuit.ops - 1 downto 0 do
      match c.Circuit.ops.(i) with
      | Circuit.H q ->
          let t = sens_x.(q) in
          sens_x.(q) <- sens_z.(q);
          sens_z.(q) <- t
      | Circuit.S q ->
          (* X before S acts as Y = X.Z after. *)
          Bitvec.xor_into ~dst:sens_x.(q) sens_z.(q)
      | Circuit.X _ | Circuit.Y _ | Circuit.Z _ -> ()
      | Circuit.CX (a, b) ->
          Bitvec.xor_into ~dst:sens_x.(a) sens_x.(b);
          Bitvec.xor_into ~dst:sens_z.(b) sens_z.(a)
      | Circuit.CZ (a, b) ->
          Bitvec.xor_into ~dst:sens_x.(a) sens_z.(b);
          Bitvec.xor_into ~dst:sens_x.(b) sens_z.(a)
      | Circuit.SWAP (a, b) ->
          let tx = sens_x.(a) and tz = sens_z.(a) in
          sens_x.(a) <- sens_x.(b);
          sens_z.(a) <- sens_z.(b);
          sens_x.(b) <- tx;
          sens_z.(b) <- tz
      | Circuit.M q ->
          decr mi;
          Bitvec.xor_into ~dst:sens_x.(q) meas_sig.(!mi)
      | Circuit.R q ->
          Bitvec.clear sens_x.(q);
          Bitvec.clear sens_z.(q)
      | Circuit.Noise1 { px; py; pz; q } ->
          record px sens_x.(q);
          record pz sens_z.(q);
          record py (xor_of sens_x.(q) sens_z.(q))
      | Circuit.Depol2 { p; a; b } ->
          let comp = p /. 15. in
          let sigs1 q = [| None; Some sens_x.(q); Some (xor_of sens_x.(q) sens_z.(q)); Some sens_z.(q) |] in
          let sa = sigs1 a and sb = sigs1 b in
          for pa = 0 to 3 do
            for pb = 0 to 3 do
              if pa <> 0 || pb <> 0 then begin
                let v =
                  match (sa.(pa), sb.(pb)) with
                  | None, None -> assert false
                  | Some x, None -> Bitvec.copy x
                  | None, Some y -> Bitvec.copy y
                  | Some x, Some y -> xor_of x y
                in
                record comp v
              end
            done
          done
    done;
    assert (!mi = 0);
    Hashtbl.fold
      (fun key pref acc ->
        let dets, obs_mask = Hashtbl.find sigs key in
        { p = !pref; detectors = Array.of_list dets; obs_mask } :: acc)
      table []
  end

let check_graphlike mechanisms =
  List.for_all (fun m -> Array.length m.detectors <= 2) mechanisms
