(** Clifford circuits with Pauli noise, measurements, detectors, and logical
    observables — the input language of both the stabilizer tableau simulator
    and the Pauli-frame Monte-Carlo sampler (the role Stim plays in the
    paper).

    A [detector] is a set of measurement indices whose parity is deterministic
    in the noiseless circuit; an [observable] is a set of measurement indices
    whose parity encodes a logical qubit's value. *)

type gate =
  | H of int
  | S of int
  | X of int
  | Y of int
  | Z of int
  | CX of int * int  (** control, target *)
  | CZ of int * int
  | SWAP of int * int
  | M of int  (** Z-basis measurement; appends one measurement record *)
  | R of int  (** reset to |0> *)
  | Noise1 of { px : float; py : float; pz : float; q : int }
      (** stochastic single-qubit Pauli error *)
  | Depol2 of { p : float; a : int; b : int }
      (** two-qubit depolarizing: one of the 15 non-identity Paulis w.p. p *)

type t = private {
  nqubits : int;
  ops : gate array;
  nmeas : int;
  detectors : int array array;
  observables : int array array;
}

type builder

val builder : int -> builder
(** [builder nqubits] starts an empty circuit. *)

val add : builder -> gate -> unit
(** Append a gate.  [M] gates should instead use {!measure} when the
    measurement index is needed. *)

val measure : builder -> int -> int
(** Append a measurement of the qubit; returns its measurement index. *)

val add_detector : builder -> int list -> unit
(** Declare that the parity of the given measurement indices is deterministic
    noiselessly. *)

val add_observable : builder -> int list -> unit

val finish : builder -> t

val nmeas_so_far : builder -> int

val idle_noise : builder -> t1:float -> t2:float -> dt:float -> int -> unit
(** Append the Pauli-twirled thermal idle error for duration [dt]:
    px = py = (1 - exp(-dt/t1))/4 and pz chosen so the total phase-flip
    probability matches exp(-dt/t2) coherence decay. *)

val count_gates : t -> int
(** Number of non-noise, non-measurement unitary gates. *)

val depth_events : t -> int
(** Total op count, a proxy for simulation cost. *)

val validate : t -> unit
(** Check all qubit and measurement indices are in range; raises
    [Invalid_argument] otherwise. *)
