(* Representation: value = i^phase * prod_q X_q^{x_q} Z_q^{z_q}.
   A Y at site q is stored as x=z=1 with a +1 contribution to phase,
   since Y = i X Z. *)

type t = { x : Bitvec.t; z : Bitvec.t; mutable phase : int; n : int }

let identity n = { x = Bitvec.create n; z = Bitvec.create n; phase = 0; n }
let nqubits t = t.n
let phase t = t.phase
let x_bit t q = Bitvec.get t.x q
let z_bit t q = Bitvec.get t.z q
let set_x t q b = Bitvec.set t.x q b
let set_z t q b = Bitvec.set t.z q b

let copy t = { x = Bitvec.copy t.x; z = Bitvec.copy t.z; phase = t.phase; n = t.n }

let equal a b = a.n = b.n && a.phase = b.phase && Bitvec.equal a.x b.x && Bitvec.equal a.z b.z

let equal_up_to_phase a b = a.n = b.n && Bitvec.equal a.x b.x && Bitvec.equal a.z b.z

let single n q p =
  let t = identity n in
  (match p with
  | 'X' -> Bitvec.set t.x q true
  | 'Z' -> Bitvec.set t.z q true
  | 'Y' ->
      Bitvec.set t.x q true;
      Bitvec.set t.z q true;
      t.phase <- 1
  | _ -> invalid_arg "Pauli.single: expected X, Y, or Z");
  t

let of_string s =
  let body, sign_phase =
    if String.length s = 0 then invalid_arg "Pauli.of_string: empty"
    else
      match s.[0] with
      | '+' -> (String.sub s 1 (String.length s - 1), 0)
      | '-' -> (String.sub s 1 (String.length s - 1), 2)
      | _ -> (s, 0)
  in
  let n = String.length body in
  if n = 0 then invalid_arg "Pauli.of_string: no sites";
  let t = identity n in
  String.iteri
    (fun q ch ->
      match ch with
      | 'I' -> ()
      | 'X' -> Bitvec.set t.x q true
      | 'Z' -> Bitvec.set t.z q true
      | 'Y' ->
          Bitvec.set t.x q true;
          Bitvec.set t.z q true;
          t.phase <- (t.phase + 1) mod 4
      | _ -> invalid_arg (Printf.sprintf "Pauli.of_string: bad char %c" ch))
    body;
  t.phase <- (t.phase + sign_phase) mod 4;
  t

let to_string t =
  let buf = Buffer.create (t.n + 1) in
  let y_count = ref 0 in
  let chars =
    String.init t.n (fun q ->
        match (Bitvec.get t.x q, Bitvec.get t.z q) with
        | false, false -> 'I'
        | true, false -> 'X'
        | false, true -> 'Z'
        | true, true ->
            incr y_count;
            'Y')
  in
  (* Remove the i per Y that the representation carries. *)
  let residual = ((t.phase - !y_count) mod 4 + 4) mod 4 in
  (match residual with
  | 0 -> Buffer.add_char buf '+'
  | 1 -> Buffer.add_string buf "+i"
  | 2 -> Buffer.add_char buf '-'
  | _ -> Buffer.add_string buf "-i");
  Buffer.add_string buf chars;
  Buffer.contents buf

let weight t =
  let w = ref 0 in
  for q = 0 to t.n - 1 do
    if Bitvec.get t.x q || Bitvec.get t.z q then incr w
  done;
  !w

let commutes a b =
  if a.n <> b.n then invalid_arg "Pauli.commutes: size mismatch";
  (Bitvec.and_popcount a.x b.z + Bitvec.and_popcount a.z b.x) mod 2 = 0

let mul a b =
  if a.n <> b.n then invalid_arg "Pauli.mul: size mismatch";
  (* Moving each Z in a past each X in b at the same site contributes -1. *)
  let anticomm = Bitvec.and_popcount a.z b.x in
  let x = Bitvec.copy a.x and z = Bitvec.copy a.z in
  Bitvec.xor_into ~dst:x b.x;
  Bitvec.xor_into ~dst:z b.z;
  { x; z; phase = (a.phase + b.phase + (2 * anticomm)) mod 4; n = a.n }

let neg t =
  let t = copy t in
  t.phase <- (t.phase + 2) mod 4;
  t

let support t =
  let acc = ref [] in
  for q = t.n - 1 downto 0 do
    if Bitvec.get t.x q || Bitvec.get t.z q then acc := q :: !acc
  done;
  !acc
