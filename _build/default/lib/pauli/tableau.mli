(** Aaronson–Gottesman CHP stabilizer tableau simulator.

    Exact simulation of Clifford circuits with measurement.  Used to verify
    code constructions (stabilizer commutation, deterministic detectors) and
    to cross-validate the Pauli-frame sampler; scales to hundreds of qubits. *)

type t

val create : int -> t
(** State |0...0⟩ of n qubits. *)

val nqubits : t -> int
val copy : t -> t

val h : t -> int -> unit
val s : t -> int -> unit
val x : t -> int -> unit
val y : t -> int -> unit
val z : t -> int -> unit
val cx : t -> int -> int -> unit
val cz : t -> int -> int -> unit
val swap : t -> int -> int -> unit

val measure : t -> Rng.t -> int -> int
(** Projective Z measurement; returns 0/1, collapsing the state. *)

val measure_deterministic : t -> int -> int option
(** [Some v] when the Z measurement outcome of the qubit is deterministic,
    [None] when it would be random. *)

val reset : t -> Rng.t -> int -> unit
(** Measure and flip to |0⟩ if needed. *)

val apply_pauli : t -> Pauli.t -> unit
(** Apply a (phaseless) Pauli error to the state. *)

val stabilizer_expectation : t -> Pauli.t -> int option
(** [Some 1] if the Pauli is in the stabilizer group with + sign, [Some (-1)]
    with − sign, [None] if the observable is not deterministic.  The Pauli's
    own phase must be ±1 (not ±i). *)

val run : t -> Rng.t -> Circuit.t -> Bitvec.t
(** Execute a circuit (sampling noise ops with the RNG) and return the raw
    measurement record. *)

val detector_values : Circuit.t -> Bitvec.t -> Bitvec.t * Bitvec.t
(** [detector_values circuit meas] computes (detector parities, observable
    parities) from a raw measurement record. *)
