type gate =
  | H of int
  | S of int
  | X of int
  | Y of int
  | Z of int
  | CX of int * int
  | CZ of int * int
  | SWAP of int * int
  | M of int
  | R of int
  | Noise1 of { px : float; py : float; pz : float; q : int }
  | Depol2 of { p : float; a : int; b : int }

type t = {
  nqubits : int;
  ops : gate array;
  nmeas : int;
  detectors : int array array;
  observables : int array array;
}

type builder = {
  n : int;
  mutable rev_ops : gate list;
  mutable meas_count : int;
  mutable rev_detectors : int array list;
  mutable rev_observables : int array list;
}

let builder n =
  if n <= 0 then invalid_arg "Circuit.builder: need at least one qubit";
  { n; rev_ops = []; meas_count = 0; rev_detectors = []; rev_observables = [] }

let add b g =
  (match g with M _ -> b.meas_count <- b.meas_count + 1 | _ -> ());
  b.rev_ops <- g :: b.rev_ops

let measure b q =
  let idx = b.meas_count in
  add b (M q);
  idx

let add_detector b meas = b.rev_detectors <- Array.of_list meas :: b.rev_detectors
let add_observable b meas = b.rev_observables <- Array.of_list meas :: b.rev_observables
let nmeas_so_far b = b.meas_count

let finish b =
  { nqubits = b.n;
    ops = Array.of_list (List.rev b.rev_ops);
    nmeas = b.meas_count;
    detectors = Array.of_list (List.rev b.rev_detectors);
    observables = Array.of_list (List.rev b.rev_observables) }

(* Pauli-twirled thermal relaxation: <Z> decays as exp(-dt/T1) via
   px = py = (1-exp(-dt/T1))/4, and <X> decays as exp(-dt/T2) via the
   residual pz. *)
let idle_noise b ~t1 ~t2 ~dt q =
  if dt > 0. then begin
    let p1 = (1. -. exp (-.dt /. t1)) /. 4. in
    let pz = ((1. -. exp (-.dt /. t2)) /. 2.) -. p1 in
    let pz = max 0. pz in
    add b (Noise1 { px = p1; py = p1; pz; q })
  end

let count_gates t =
  Array.fold_left
    (fun acc g ->
      match g with
      | H _ | S _ | X _ | Y _ | Z _ | CX _ | CZ _ | SWAP _ -> acc + 1
      | M _ | R _ | Noise1 _ | Depol2 _ -> acc)
    0 t.ops

let depth_events t = Array.length t.ops

let validate t =
  let check_q q = if q < 0 || q >= t.nqubits then invalid_arg "Circuit.validate: qubit out of range" in
  let check2 a b =
    check_q a;
    check_q b;
    if a = b then invalid_arg "Circuit.validate: two-qubit gate on same qubit"
  in
  let meas_seen = ref 0 in
  Array.iter
    (fun g ->
      match g with
      | H q | S q | X q | Y q | Z q | R q -> check_q q
      | M q ->
          check_q q;
          incr meas_seen
      | CX (a, b) | CZ (a, b) | SWAP (a, b) -> check2 a b
      | Noise1 { q; px; py; pz } ->
          check_q q;
          if px < 0. || py < 0. || pz < 0. || px +. py +. pz > 1. then
            invalid_arg "Circuit.validate: bad noise probabilities"
      | Depol2 { a; b; p } ->
          check2 a b;
          if p < 0. || p > 1. then invalid_arg "Circuit.validate: bad depol2 probability")
    t.ops;
  if !meas_seen <> t.nmeas then invalid_arg "Circuit.validate: measurement count mismatch";
  let check_meas_idx m =
    if m < 0 || m >= t.nmeas then invalid_arg "Circuit.validate: measurement index out of range"
  in
  Array.iter (Array.iter check_meas_idx) t.detectors;
  Array.iter (Array.iter check_meas_idx) t.observables
