(** Pure-state (statevector) simulator with Monte-Carlo noise trajectories.

    Complements {!Dm}: where the density-matrix simulator is exact but
    limited to ~8 qubits (4^n scaling), statevector trajectories scale to
    ~20 qubits (2^n) by sampling one Kraus branch per noise event, at the
    cost of needing many trajectories for expectation values.  Used to
    characterize larger cells (e.g. a full 10-mode register with its compute
    qubit) where the density matrix no longer fits. *)

type t

val create : int -> t
(** |0...0> on n qubits (n <= 24). *)

val nqubits : t -> int
val copy : t -> t

val amplitude : t -> int -> Complex.t
(** Amplitude of a computational basis state. *)

val norm : t -> float
(** Should stay 1 up to float error; exposed for tests. *)

val apply_unitary : t -> Cmat.t -> int list -> unit
(** Apply a small unitary (1-3 qubits) to the listed targets (first target =
    most significant bit of the matrix index, matching {!Dm}). *)

val apply_kraus_sampled : t -> Channel.t -> int list -> Rng.t -> int
(** Apply a channel by sampling one Kraus branch with the Born weights and
    renormalizing; returns the branch index (a quantum trajectory step). *)

val idle_trajectory : t -> t1:float -> t2:float -> dt:float -> int -> Rng.t -> unit
(** Thermal idle as a sampled trajectory step on one qubit. *)

val prob_one : t -> int -> float

val measure : t -> Rng.t -> int -> int
(** Projective Z measurement with collapse. *)

val fidelity_with : t -> t -> float
(** |<a|b>|^2. *)

val expectation_z : t -> int -> float

val to_dm : t -> Dm.t
(** Density matrix |psi><psi| (small n only). *)

val average_fidelity :
  prepare:(unit -> t) -> evolve:(t -> Rng.t -> unit) -> target:t ->
  trajectories:int -> Rng.t -> float
(** Monte-Carlo channel fidelity: average over noise trajectories of
    |<target|psi_final>|^2. *)
