(** Density-matrix state of an n-qubit register.

    This is the exact device-level simulator used to characterize standard
    cells.  Dimensions grow as 4^n so it is intended for n up to ~8, which
    covers every cell in the paper. *)

type t
(** Mutable simulator state. *)

val create : int -> t
(** [create n] starts in |0...0⟩⟨0...0|. *)

val nqubits : t -> int
val rho : t -> Cmat.t
(** The current density matrix (a copy is not taken; do not mutate). *)

val of_ket : Complex.t array -> t
(** Pure state from an amplitude vector of length [2^n] (normalized
    internally). *)

val bell_pair : unit -> t
(** Two-qubit (|00⟩+|11⟩)/√2. *)

val ghz : int -> t
(** n-qubit GHZ (CAT) state. *)

val copy : t -> t

val apply_unitary : t -> Cmat.t -> int list -> unit
(** [apply_unitary t u targets] conjugates the state by [u] lifted to the
    given qubits (first listed qubit = most significant bit of [u]). *)

val apply_channel : t -> Channel.t -> int list -> unit

val idle : t -> t1:float -> t2:float -> dt:float -> int list -> unit
(** Apply the thermal idle channel to each listed qubit. *)

val prob_one : t -> int -> float
(** Probability of reading 1 on a qubit (Z basis), without collapsing. *)

val measure : t -> Rng.t -> int -> int
(** Projective Z measurement with collapse; returns 0 or 1. *)

val postselect : t -> int -> int -> float
(** [postselect t q outcome] projects qubit [q] onto [outcome] and
    renormalizes; returns the probability of that branch.  Raises if the
    branch has (near-)zero probability. *)

val expectation : t -> string -> float
(** Expectation value of a Pauli string over all qubits (length must equal
    [nqubits]). *)

val fidelity_pure : t -> Complex.t array -> float
(** ⟨ψ|ρ|ψ⟩ against a pure target given as amplitudes. *)

val fidelity_bell : t -> float
(** Fidelity of a 2-qubit state against (|00⟩+|11⟩)/√2. *)

val purity : t -> float
(** Tr ρ². *)

val trace : t -> float

val ptrace : t -> keep:int list -> t
(** New simulator holding the reduced state of the kept qubits. *)
