lib/qsim/gate.mli: Cmat
