lib/qsim/channel.ml: Cmat Complex Float Gate List Printf
