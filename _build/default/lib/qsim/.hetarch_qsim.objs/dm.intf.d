lib/qsim/dm.mli: Channel Cmat Complex Rng
