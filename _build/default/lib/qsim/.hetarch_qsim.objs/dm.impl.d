lib/qsim/dm.ml: Array Channel Cmat Complex Float Gate List Rng String
