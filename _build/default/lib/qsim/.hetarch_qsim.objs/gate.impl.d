lib/qsim/gate.ml: Cmat Complex Float Printf String
