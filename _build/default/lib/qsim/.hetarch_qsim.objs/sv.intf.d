lib/qsim/sv.mli: Channel Cmat Complex Dm Rng
