lib/qsim/channel.mli: Cmat
