lib/qsim/sv.ml: Array Channel Cmat Complex Dm List Rng
