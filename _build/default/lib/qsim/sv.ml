type t = { n : int; re : float array; im : float array }

let create n =
  if n < 1 || n > 24 then invalid_arg "Sv.create: supported range is 1..24 qubits";
  let dim = 1 lsl n in
  let re = Array.make dim 0. and im = Array.make dim 0. in
  re.(0) <- 1.;
  { n; re; im }

let nqubits t = t.n
let copy t = { t with re = Array.copy t.re; im = Array.copy t.im }

let amplitude t i =
  if i < 0 || i >= 1 lsl t.n then invalid_arg "Sv.amplitude: out of range";
  { Complex.re = t.re.(i); im = t.im.(i) }

let norm t =
  let acc = ref 0. in
  for i = 0 to Array.length t.re - 1 do
    acc := !acc +. (t.re.(i) *. t.re.(i)) +. (t.im.(i) *. t.im.(i))
  done;
  sqrt !acc

(* Apply a 2^k unitary to target qubits.  Qubit 0 of the op = most
   significant bit, matching Cmat.embed_unitary; iterate over all basis
   states grouping the target-bit subspace. *)
let apply_op t (u : Cmat.t) targets =
  let k = List.length targets in
  let sub = 1 lsl k in
  if u.Cmat.rows <> sub || u.Cmat.cols <> sub then
    invalid_arg "Sv.apply_op: matrix size does not match targets";
  let targets = Array.of_list targets in
  Array.iter
    (fun q -> if q < 0 || q >= t.n then invalid_arg "Sv.apply_op: bad qubit")
    targets;
  let bits = Array.map (fun q -> t.n - 1 - q) targets in
  let dim = 1 lsl t.n in
  let mask = Array.fold_left (fun acc b -> acc lor (1 lsl b)) 0 bits in
  let scratch_re = Array.make sub 0. and scratch_im = Array.make sub 0. in
  let idx_of base s =
    (* insert sub-index bits s into base at target positions *)
    let acc = ref base in
    Array.iteri
      (fun pos b ->
        if (s lsr (k - 1 - pos)) land 1 = 1 then acc := !acc lor (1 lsl b))
      bits;
    !acc
  in
  for base = 0 to dim - 1 do
    if base land mask = 0 then begin
      for s = 0 to sub - 1 do
        let i = idx_of base s in
        scratch_re.(s) <- t.re.(i);
        scratch_im.(s) <- t.im.(i)
      done;
      for s = 0 to sub - 1 do
        let racc = ref 0. and iacc = ref 0. in
        for s' = 0 to sub - 1 do
          let ure = u.Cmat.re.((s * sub) + s') and uim = u.Cmat.im.((s * sub) + s') in
          racc := !racc +. (ure *. scratch_re.(s')) -. (uim *. scratch_im.(s'));
          iacc := !iacc +. (ure *. scratch_im.(s')) +. (uim *. scratch_re.(s'))
        done;
        let i = idx_of base s in
        t.re.(i) <- !racc;
        t.im.(i) <- !iacc
      done
    end
  done

let apply_unitary t u targets = apply_op t u targets

let renormalize t =
  let nrm = norm t in
  if nrm <= 1e-150 then invalid_arg "Sv.renormalize: zero state";
  let s = 1. /. nrm in
  for i = 0 to Array.length t.re - 1 do
    t.re.(i) <- t.re.(i) *. s;
    t.im.(i) <- t.im.(i) *. s
  done

let apply_kraus_sampled t ch targets rng =
  let branches = ch.Channel.kraus in
  (* Born weights: |K_i |psi>|^2; compute by applying to copies. *)
  let weighted =
    List.map
      (fun k ->
        let trial = copy t in
        apply_op trial k targets;
        let w = norm trial ** 2. in
        (w, trial))
      branches
  in
  let total = List.fold_left (fun acc (w, _) -> acc +. w) 0. weighted in
  let x = Rng.float rng total in
  let rec pick acc idx = function
    | [] -> invalid_arg "Sv.apply_kraus_sampled: empty channel"
    | [ (_, trial) ] -> (idx, trial)
    | (w, trial) :: rest ->
        if x < acc +. w then (idx, trial) else pick (acc +. w) (idx + 1) rest
  in
  let idx, chosen = pick 0. 0 weighted in
  Array.blit chosen.re 0 t.re 0 (Array.length t.re);
  Array.blit chosen.im 0 t.im 0 (Array.length t.im);
  renormalize t;
  idx

let idle_trajectory t ~t1 ~t2 ~dt q rng =
  if dt > 0. then
    ignore (apply_kraus_sampled t (Channel.idle ~t1 ~t2 ~dt) [ q ] rng)

let prob_one t q =
  if q < 0 || q >= t.n then invalid_arg "Sv.prob_one: bad qubit";
  let bit = t.n - 1 - q in
  let acc = ref 0. in
  for i = 0 to (1 lsl t.n) - 1 do
    if (i lsr bit) land 1 = 1 then
      acc := !acc +. (t.re.(i) *. t.re.(i)) +. (t.im.(i) *. t.im.(i))
  done;
  !acc

let measure t rng q =
  let p1 = prob_one t q in
  let outcome = if Rng.uniform rng < p1 then 1 else 0 in
  let bit = t.n - 1 - q in
  for i = 0 to (1 lsl t.n) - 1 do
    if (i lsr bit) land 1 <> outcome then begin
      t.re.(i) <- 0.;
      t.im.(i) <- 0.
    end
  done;
  renormalize t;
  outcome

let fidelity_with a b =
  if a.n <> b.n then invalid_arg "Sv.fidelity_with: size mismatch";
  let re = ref 0. and im = ref 0. in
  for i = 0 to Array.length a.re - 1 do
    (* conj(a_i) * b_i *)
    re := !re +. (a.re.(i) *. b.re.(i)) +. (a.im.(i) *. b.im.(i));
    im := !im +. (a.re.(i) *. b.im.(i)) -. (a.im.(i) *. b.re.(i))
  done;
  (!re *. !re) +. (!im *. !im)

let expectation_z t q = 1. -. (2. *. prob_one t q)

let to_dm t =
  if t.n > 10 then invalid_arg "Sv.to_dm: too many qubits for a density matrix";
  let amps = Array.init (1 lsl t.n) (fun i -> { Complex.re = t.re.(i); im = t.im.(i) }) in
  Dm.of_ket amps

let average_fidelity ~prepare ~evolve ~target ~trajectories rng =
  if trajectories < 1 then invalid_arg "Sv.average_fidelity: trajectories >= 1";
  let acc = ref 0. in
  for _ = 1 to trajectories do
    let psi = prepare () in
    evolve psi rng;
    acc := !acc +. fidelity_with target psi
  done;
  !acc /. float_of_int trajectories
