type t = { n : int; mutable rho : Cmat.t }

let create n =
  if n < 1 || n > 14 then invalid_arg "Dm.create: supported range is 1..14 qubits";
  let dim = 1 lsl n in
  let rho = Cmat.create dim dim in
  Cmat.set rho 0 0 Complex.one;
  { n; rho }

let nqubits t = t.n
let rho t = t.rho

let of_ket amps =
  let dim = Array.length amps in
  let n = int_of_float (Float.round (Float.log2 (float_of_int dim))) in
  if 1 lsl n <> dim then invalid_arg "Dm.of_ket: length must be a power of two";
  let norm2 =
    Array.fold_left
      (fun acc (a : Complex.t) -> acc +. (a.re *. a.re) +. (a.im *. a.im))
      0. amps
  in
  if norm2 <= 0. then invalid_arg "Dm.of_ket: zero vector";
  let s = 1. /. sqrt norm2 in
  let rho =
    Cmat.init dim dim (fun i j ->
        let ai = amps.(i) and aj = amps.(j) in
        (* a_i * conj(a_j) / norm2 *)
        { Complex.re = ((ai.re *. aj.re) +. (ai.im *. aj.im)) *. s *. s;
          im = ((ai.im *. aj.re) -. (ai.re *. aj.im)) *. s *. s })
  in
  { n; rho }

let bell_pair () =
  let a = 1. /. sqrt 2. in
  of_ket [| { Complex.re = a; im = 0. }; Complex.zero; Complex.zero; { Complex.re = a; im = 0. } |]

let ghz n =
  if n < 1 then invalid_arg "Dm.ghz";
  let dim = 1 lsl n in
  let amps = Array.make dim Complex.zero in
  let a = 1. /. sqrt 2. in
  amps.(0) <- { Complex.re = a; im = 0. };
  amps.(dim - 1) <- { Complex.re = a; im = 0. };
  of_ket amps

let copy t = { t with rho = Cmat.copy t.rho }

let apply_unitary t u targets =
  let full = Cmat.embed_unitary ~nqubits:t.n ~targets u in
  t.rho <- Cmat.sandwich full t.rho

let apply_channel t ch targets =
  t.rho <- Channel.apply ch ~targets ~nqubits:t.n t.rho

let idle t ~t1 ~t2 ~dt qubits =
  if dt > 0. then begin
    let ch = Channel.idle ~t1 ~t2 ~dt in
    List.iter (fun q -> apply_channel t ch [ q ]) qubits
  end

(* Probability that qubit q reads 1: sum of diagonal entries whose q-th bit
   (qubit 0 = most significant) is set. *)
let prob_one t q =
  if q < 0 || q >= t.n then invalid_arg "Dm.prob_one: bad qubit";
  let dim = 1 lsl t.n in
  let bit = t.n - 1 - q in
  let acc = ref 0. in
  for i = 0 to dim - 1 do
    if (i lsr bit) land 1 = 1 then acc := !acc +. (Cmat.get t.rho i i).Complex.re
  done;
  !acc

let project t q outcome =
  let dim = 1 lsl t.n in
  let bit = t.n - 1 - q in
  let proj =
    Cmat.init dim dim (fun i j ->
        if i = j && (i lsr bit) land 1 = outcome then Complex.one else Complex.zero)
  in
  Cmat.sandwich proj t.rho

let postselect t q outcome =
  if outcome <> 0 && outcome <> 1 then invalid_arg "Dm.postselect: outcome";
  let p = if outcome = 1 then prob_one t q else 1. -. prob_one t q in
  if p < 1e-12 then invalid_arg "Dm.postselect: branch probability ~ 0";
  let projected = project t q outcome in
  t.rho <- Cmat.scale_re (1. /. p) projected;
  p

let measure t rng q =
  let p1 = prob_one t q in
  let outcome = if Rng.uniform rng < p1 then 1 else 0 in
  ignore (postselect t q outcome);
  outcome

let expectation t pstring =
  if String.length pstring <> t.n then invalid_arg "Dm.expectation: length mismatch";
  let op = Gate.pauli_string pstring in
  (Cmat.trace (Cmat.mul op t.rho)).Complex.re

let fidelity_pure t amps =
  let dim = 1 lsl t.n in
  if Array.length amps <> dim then invalid_arg "Dm.fidelity_pure: length mismatch";
  (* <psi| rho |psi> = sum_ij conj(a_i) rho_ij a_j *)
  let acc = ref 0. in
  for i = 0 to dim - 1 do
    for j = 0 to dim - 1 do
      let ai = amps.(i) and aj = amps.(j) in
      let rij = Cmat.get t.rho i j in
      (* conj(ai) * rij * aj, real part *)
      let bre = (ai.Complex.re *. rij.Complex.re) +. (ai.Complex.im *. rij.Complex.im) in
      let bim = (ai.Complex.re *. rij.Complex.im) -. (ai.Complex.im *. rij.Complex.re) in
      acc := !acc +. (bre *. aj.Complex.re) -. (bim *. aj.Complex.im)
    done
  done;
  !acc

let fidelity_bell t =
  if t.n <> 2 then invalid_arg "Dm.fidelity_bell: need exactly 2 qubits";
  let a = 1. /. sqrt 2. in
  fidelity_pure t
    [| { Complex.re = a; im = 0. }; Complex.zero; Complex.zero; { Complex.re = a; im = 0. } |]

let purity t =
  (Cmat.trace (Cmat.mul t.rho t.rho)).Complex.re

let trace t = (Cmat.trace t.rho).Complex.re

let ptrace t ~keep =
  let reduced = Cmat.ptrace ~keep ~nqubits:t.n t.rho in
  { n = List.length keep; rho = reduced }
