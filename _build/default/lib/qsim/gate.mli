(** Standard gate matrices.

    All matrices are given in the computational basis with qubit 0 as the most
    significant index bit (matching {!Hetarch_linalg.Cmat.embed_unitary}). *)

val i2 : Cmat.t
val x : Cmat.t
val y : Cmat.t
val z : Cmat.t
val h : Cmat.t
val s : Cmat.t
val sdg : Cmat.t
val t : Cmat.t
val tdg : Cmat.t

val rx : float -> Cmat.t
val ry : float -> Cmat.t
val rz : float -> Cmat.t
val phase : float -> Cmat.t
(** diag(1, e^{iθ}). *)

val cx : Cmat.t
(** Control = qubit 0 (most significant), target = qubit 1. *)

val cz : Cmat.t
val swap : Cmat.t
val iswap : Cmat.t
val cphase : float -> Cmat.t

val pauli_of_char : char -> Cmat.t
(** 'I' | 'X' | 'Y' | 'Z'. *)

val pauli_string : string -> Cmat.t
(** Tensor product of single-qubit Paulis, left character = qubit 0. *)

val is_unitary : ?tol:float -> Cmat.t -> bool
