let c re im = { Complex.re; im }
let r x = c x 0.
let z0 = r 0.
let z1 = r 1.

let i2 = Cmat.of_lists [ [ z1; z0 ]; [ z0; z1 ] ]
let x = Cmat.of_lists [ [ z0; z1 ]; [ z1; z0 ] ]
let y = Cmat.of_lists [ [ z0; c 0. (-1.) ]; [ c 0. 1.; z0 ] ]
let z = Cmat.of_lists [ [ z1; z0 ]; [ z0; r (-1.) ] ]

let h =
  let s = 1. /. sqrt 2. in
  Cmat.of_lists [ [ r s; r s ]; [ r s; r (-.s) ] ]

let s = Cmat.of_lists [ [ z1; z0 ]; [ z0; c 0. 1. ] ]
let sdg = Cmat.of_lists [ [ z1; z0 ]; [ z0; c 0. (-1.) ] ]

let phase theta = Cmat.of_lists [ [ z1; z0 ]; [ z0; c (cos theta) (sin theta) ] ]
let t = phase (Float.pi /. 4.)
let tdg = phase (-.Float.pi /. 4.)

let rx theta =
  let ct = cos (theta /. 2.) and st = sin (theta /. 2.) in
  Cmat.of_lists [ [ r ct; c 0. (-.st) ]; [ c 0. (-.st); r ct ] ]

let ry theta =
  let ct = cos (theta /. 2.) and st = sin (theta /. 2.) in
  Cmat.of_lists [ [ r ct; r (-.st) ]; [ r st; r ct ] ]

let rz theta =
  let ct = cos (theta /. 2.) and st = sin (theta /. 2.) in
  Cmat.of_lists [ [ c ct (-.st); z0 ]; [ z0; c ct st ] ]

let cx =
  Cmat.of_real_lists
    [ [ 1.; 0.; 0.; 0. ]; [ 0.; 1.; 0.; 0. ]; [ 0.; 0.; 0.; 1. ]; [ 0.; 0.; 1.; 0. ] ]

let cz =
  Cmat.of_real_lists
    [ [ 1.; 0.; 0.; 0. ]; [ 0.; 1.; 0.; 0. ]; [ 0.; 0.; 1.; 0. ]; [ 0.; 0.; 0.; -1. ] ]

let swap =
  Cmat.of_real_lists
    [ [ 1.; 0.; 0.; 0. ]; [ 0.; 0.; 1.; 0. ]; [ 0.; 1.; 0.; 0. ]; [ 0.; 0.; 0.; 1. ] ]

let iswap =
  Cmat.of_lists
    [ [ z1; z0; z0; z0 ];
      [ z0; z0; c 0. 1.; z0 ];
      [ z0; c 0. 1.; z0; z0 ];
      [ z0; z0; z0; z1 ] ]

let cphase theta =
  Cmat.of_lists
    [ [ z1; z0; z0; z0 ];
      [ z0; z1; z0; z0 ];
      [ z0; z0; z1; z0 ];
      [ z0; z0; z0; c (cos theta) (sin theta) ] ]

let pauli_of_char = function
  | 'I' -> i2
  | 'X' -> x
  | 'Y' -> y
  | 'Z' -> z
  | ch -> invalid_arg (Printf.sprintf "Gate.pauli_of_char: %c" ch)

let pauli_string str =
  if String.length str = 0 then invalid_arg "Gate.pauli_string: empty";
  let acc = ref (pauli_of_char str.[0]) in
  String.iteri (fun i ch -> if i > 0 then acc := Cmat.kron !acc (pauli_of_char ch)) str;
  !acc

let is_unitary ?(tol = 1e-9) u =
  u.Cmat.rows = u.Cmat.cols
  && Cmat.approx_equal ~tol (Cmat.mul (Cmat.adjoint u) u) (Cmat.identity u.Cmat.rows)
