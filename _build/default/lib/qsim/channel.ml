type t = { name : string; kraus : Cmat.t list }

let nqubits t =
  match t.kraus with
  | [] -> invalid_arg "Channel.nqubits: empty channel"
  | k :: _ ->
      let d = k.Cmat.rows in
      let n = int_of_float (Float.round (Float.log2 (float_of_int d))) in
      if 1 lsl n <> d then invalid_arg "Channel.nqubits: non-power-of-two dim";
      n

let c re im = { Complex.re; im }
let r x = c x 0.
let z0 = r 0.

let identity n = { name = "id"; kraus = [ Cmat.identity (1 lsl n) ] }

let amplitude_damping gamma =
  if gamma < 0. || gamma > 1. then invalid_arg "Channel.amplitude_damping";
  { name = Printf.sprintf "amp_damp(%g)" gamma;
    kraus =
      [ Cmat.of_lists [ [ r 1.; z0 ]; [ z0; r (sqrt (1. -. gamma)) ] ];
        Cmat.of_lists [ [ z0; r (sqrt gamma) ]; [ z0; z0 ] ] ] }

let phase_damping lambda =
  if lambda < 0. || lambda > 1. then invalid_arg "Channel.phase_damping";
  { name = Printf.sprintf "phase_damp(%g)" lambda;
    kraus =
      [ Cmat.of_lists [ [ r 1.; z0 ]; [ z0; r (sqrt (1. -. lambda)) ] ];
        Cmat.of_lists [ [ z0; z0 ]; [ z0; r (sqrt lambda) ] ] ] }

let pauli1 ~px ~py ~pz =
  let pi = 1. -. px -. py -. pz in
  if pi < -1e-12 || px < 0. || py < 0. || pz < 0. then invalid_arg "Channel.pauli1";
  let pi = max 0. pi in
  { name = Printf.sprintf "pauli(%g,%g,%g)" px py pz;
    kraus =
      [ Cmat.scale_re (sqrt pi) Gate.i2;
        Cmat.scale_re (sqrt px) Gate.x;
        Cmat.scale_re (sqrt py) Gate.y;
        Cmat.scale_re (sqrt pz) Gate.z ] }

let dephasing p = { (pauli1 ~px:0. ~py:0. ~pz:p) with name = Printf.sprintf "dephase(%g)" p }
let bit_flip p = { (pauli1 ~px:p ~py:0. ~pz:0.) with name = Printf.sprintf "bitflip(%g)" p }

let depolarizing1 p =
  { (pauli1 ~px:(p /. 3.) ~py:(p /. 3.) ~pz:(p /. 3.)) with
    name = Printf.sprintf "depol1(%g)" p }

let depolarizing2 p =
  if p < 0. || p > 1. then invalid_arg "Channel.depolarizing2";
  let paulis = [ "II"; "IX"; "IY"; "IZ"; "XI"; "XX"; "XY"; "XZ";
                 "YI"; "YX"; "YY"; "YZ"; "ZI"; "ZX"; "ZY"; "ZZ" ] in
  let kraus =
    List.map
      (fun ps ->
        let weight = if ps = "II" then 1. -. p else p /. 15. in
        Cmat.scale_re (sqrt weight) (Gate.pauli_string ps))
      paulis
  in
  { name = Printf.sprintf "depol2(%g)" p; kraus }

let idle ~t1 ~t2 ~dt =
  if t1 <= 0. || t2 <= 0. || dt < 0. then invalid_arg "Channel.idle: bad times";
  if t2 > 2. *. t1 +. 1e-12 then
    invalid_arg "Channel.idle: unphysical T2 > 2*T1";
  let gamma = 1. -. exp (-.dt /. t1) in
  (* Total off-diagonal decay must be exp(-dt/t2); amplitude damping alone
     gives exp(-dt/(2 t1)), pure dephasing supplies the rest. *)
  let residual = (1. /. t2) -. (1. /. (2. *. t1)) in
  let lambda = 1. -. exp (-2. *. dt *. residual) in
  let lambda = max 0. lambda in
  let a = amplitude_damping gamma and p = phase_damping lambda in
  { name = Printf.sprintf "idle(t1=%g,t2=%g,dt=%g)" t1 t2 dt;
    kraus =
      List.concat_map (fun ka -> List.map (fun kp -> Cmat.mul kp ka) p.kraus) a.kraus }

let compose a b =
  { name = Printf.sprintf "%s;%s" a.name b.name;
    kraus =
      List.concat_map (fun ka -> List.map (fun kb -> Cmat.mul kb ka) b.kraus) a.kraus }

let of_unitary name u =
  if not (Gate.is_unitary u) then invalid_arg "Channel.of_unitary: not unitary";
  { name; kraus = [ u ] }

let is_cptp ?(tol = 1e-9) t =
  match t.kraus with
  | [] -> false
  | k :: _ ->
      let d = k.Cmat.rows in
      let acc =
        List.fold_left
          (fun acc ki -> Cmat.add acc (Cmat.mul (Cmat.adjoint ki) ki))
          (Cmat.create d d) t.kraus
      in
      Cmat.approx_equal ~tol acc (Cmat.identity d)

let apply t ~targets ~nqubits:n rho =
  let k = nqubits t in
  if List.length targets <> k then invalid_arg "Channel.apply: target count mismatch";
  let dim = 1 lsl n in
  List.fold_left
    (fun acc ki ->
      let full = Cmat.embed_unitary ~nqubits:n ~targets ki in
      Cmat.add acc (Cmat.sandwich full rho))
    (Cmat.create dim dim) t.kraus

let average_gate_fidelity_vs_identity t =
  match t.kraus with
  | [] -> 0.
  | k :: _ ->
      let d = float_of_int k.Cmat.rows in
      let sum =
        List.fold_left
          (fun acc ki ->
            let tr = Cmat.trace ki in
            acc +. (tr.Complex.re *. tr.Complex.re) +. (tr.Complex.im *. tr.Complex.im))
          0. t.kraus
      in
      ((sum /. d) +. 1.) /. (d +. 1.)
