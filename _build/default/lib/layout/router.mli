(** Greedy SWAP-routing scheduler for the homogeneous baseline.

    Stands in for the Qiskit transpiler at its highest optimization level
    (paper §4): two-qubit operations between non-adjacent lattice sites are
    routed along an L-shaped shortest path with SWAP chains (there and back),
    and operations are list-scheduled onto the lattice greedily, serializing
    whenever their paths share qubits.

    Costs are reported in two-qubit-gate units so callers can convert with
    their own gate times and error rates. *)

type op = { a : int; b : int }
(** A two-qubit operation between lattice node indices. *)

type schedule = {
  makespan : int;  (** completion time, in 2q-gate slots *)
  two_qubit_gates : int;  (** total CX/SWAP count including routing *)
  busy : int array;  (** per-node busy slots *)
  op_finish : int array;  (** finish slot per input op *)
}

val route_cost : Grid.t -> op -> int
(** 2q gates needed for one op: 2 * distance - 1 (SWAP chain in, the gate,
    SWAP chain back); 1 when already adjacent. *)

val schedule : Grid.t -> op list -> schedule
(** Greedy list scheduling in input order: an op starts when every node on
    its routing path is free and occupies the whole path for its duration. *)

val parallel_depth : Grid.t -> op list -> int
(** Convenience: makespan of {!schedule}. *)
