lib/layout/router.ml: Array Grid List
