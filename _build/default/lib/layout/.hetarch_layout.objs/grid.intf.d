lib/layout/grid.mli:
