lib/layout/grid.ml: Float List
