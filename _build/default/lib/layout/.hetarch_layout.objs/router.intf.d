lib/layout/router.mli: Grid
