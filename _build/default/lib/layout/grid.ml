type t = { side : int }

let create side =
  if side < 1 then invalid_arg "Grid.create: side >= 1";
  { side }

let side t = t.side
let size t = t.side * t.side

let of_min_qubits n =
  if n < 1 then invalid_arg "Grid.of_min_qubits";
  let s = int_of_float (Float.ceil (sqrt (float_of_int n))) in
  create s

let coords t i =
  if i < 0 || i >= size t then invalid_arg "Grid.coords: out of range";
  (i / t.side, i mod t.side)

let index t (r, c) =
  if r < 0 || r >= t.side || c < 0 || c >= t.side then
    invalid_arg "Grid.index: out of range";
  (r * t.side) + c

let manhattan t a b =
  let ra, ca = coords t a and rb, cb = coords t b in
  abs (ra - rb) + abs (ca - cb)

let neighbors t i =
  let r, c = coords t i in
  List.filter_map
    (fun (rr, cc) ->
      if rr >= 0 && rr < t.side && cc >= 0 && cc < t.side then Some (index t (rr, cc))
      else None)
    [ (r - 1, c); (r + 1, c); (r, c - 1); (r, c + 1) ]

let path t a b =
  let ra, ca = coords t a and rb, cb = coords t b in
  (* Walk rows first, then columns. *)
  let acc = ref [] in
  let r = ref ra and c = ref ca in
  acc := index t (!r, !c) :: !acc;
  while !r <> rb do
    r := !r + compare rb !r;
    acc := index t (!r, !c) :: !acc
  done;
  while !c <> cb do
    c := !c + compare cb !c;
    acc := index t (!r, !c) :: !acc
  done;
  List.rev !acc
