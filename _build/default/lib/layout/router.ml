type op = { a : int; b : int }

type schedule = {
  makespan : int;
  two_qubit_gates : int;
  busy : int array;
  op_finish : int array;
}

let route_cost grid { a; b } =
  if a = b then invalid_arg "Router.route_cost: same node";
  let d = Grid.manhattan grid a b in
  (2 * d) - 1

let schedule grid ops =
  let n = Grid.size grid in
  let free_at = Array.make n 0 in
  let busy = Array.make n 0 in
  let op_finish = Array.make (List.length ops) 0 in
  let makespan = ref 0 in
  let gates = ref 0 in
  List.iteri
    (fun i op ->
      if op.a = op.b then invalid_arg "Router.schedule: same node";
      let path = Grid.path grid op.a op.b in
      let dur = route_cost grid op in
      let start = List.fold_left (fun acc node -> max acc free_at.(node)) 0 path in
      let finish = start + dur in
      List.iter
        (fun node ->
          free_at.(node) <- finish;
          busy.(node) <- busy.(node) + dur)
        path;
      op_finish.(i) <- finish;
      gates := !gates + dur;
      if finish > !makespan then makespan := finish)
    ops;
  { makespan = !makespan; two_qubit_gates = !gates; busy; op_finish }

let parallel_depth grid ops = (schedule grid ops).makespan
