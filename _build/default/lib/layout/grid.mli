(** Square lattice of compute devices — the homogeneous "sea of qubits"
    baseline substrate (paper §4: a square lattice of compute-only devices,
    as large as needed for efficient transpilation). *)

type t

val create : int -> t
(** [create side] is a side x side lattice. *)

val side : t -> int
val size : t -> int

val of_min_qubits : int -> t
(** Smallest square lattice holding at least this many qubits. *)

val coords : t -> int -> int * int
(** Node index to (row, col). *)

val index : t -> int * int -> int

val manhattan : t -> int -> int -> int

val neighbors : t -> int -> int list
(** Degree <= 4 lattice adjacency (design rule DR1 holds by construction). *)

val path : t -> int -> int -> int list
(** An L-shaped shortest path between two nodes, inclusive of endpoints. *)
