type node = Module of { name : string; children : node list } | Cell_of of Cell.t

let distillation () =
  Module
    { name = "entanglement-distillation";
      children =
        [ Module
            { name = "input-memory";
              children = [ Cell_of (Cell.register ()); Cell_of (Cell.register ()) ] };
          Module { name = "distill"; children = [ Cell_of (Cell.parcheck ()) ] };
          Module { name = "output-memory"; children = [ Cell_of (Cell.register ()) ] } ] }

let surface_code_memory d =
  if d < 2 then invalid_arg "Hierarchy.surface_code_memory: d >= 2";
  let pairs = (d * d) - 1 in
  Module
    { name = Printf.sprintf "surface-code-memory-d%d" d;
      children =
        List.init pairs (fun _ -> Cell_of (Cell.parcheck ())) }

let universal_error_correction () =
  Module
    { name = "universal-error-correction";
      children = [ Cell_of (Cell.usc ()); Cell_of (Cell.usc_ext ()) ] }

let code_teleportation () =
  Module
    { name = "code-teleportation";
      children =
        [ distillation ();
          Module { name = "cat-generator-a"; children = [ Cell_of (Cell.seqop ()) ] };
          Module { name = "cat-generator-b"; children = [ Cell_of (Cell.seqop ()) ] };
          Module { name = "uec-a"; children = [ Cell_of (Cell.usc ()) ] };
          Module { name = "uec-b"; children = [ Cell_of (Cell.usc ()) ] } ] }

let rec cells = function
  | Cell_of c -> [ c ]
  | Module { children; _ } -> List.concat_map cells children

let device_count node =
  List.fold_left
    (fun acc c -> acc + Array.length c.Cell.graph.Design_rules.instances)
    0 (cells node)

let qubit_capacity node =
  List.fold_left (fun acc c -> acc + Cell.capacity c) 0 (cells node)

let footprint_mm2 node =
  List.fold_left (fun acc c -> acc +. Cell.footprint_mm2 c) 0. (cells node)

let control_lines node =
  List.fold_left (fun acc c -> acc + Cell.control_lines c) 0 (cells node)

let validate node =
  List.iter (fun c -> Design_rules.assert_valid c.Cell.graph) (cells node)

let render node =
  let buf = Buffer.create 256 in
  let rec go indent = function
    | Cell_of c ->
        Buffer.add_string buf
          (Printf.sprintf "%s- cell %s (capacity %d, %.0f mm^2)\n" indent (Cell.name c)
             (Cell.capacity c) (Cell.footprint_mm2 c))
    | Module { name; children } ->
        Buffer.add_string buf (Printf.sprintf "%s+ module %s\n" indent name);
        List.iter (go (indent ^ "  ")) children
  in
  go "" node;
  Buffer.contents buf
