let version = "1.0.0"

type experiment = { id : string; title : string; paper_claim : string }

let experiments =
  [ { id = "table1";
      title = "Device catalog";
      paper_claim = "Properties of near-term superconducting quantum devices" };
    { id = "table2";
      title = "Standard cells";
      paper_claim = "Register/ParCheck/SeqOp/USC assembled under DR1-DR4" };
    { id = "fig3";
      title = "Distillation infidelity over time";
      paper_claim =
        "Heterogeneous memory preserves distilled fidelity; homogeneous decays" };
    { id = "fig4";
      title = "Distilled-EP rate vs generation rate";
      paper_claim =
        "Ts >= 2.5 ms heterogeneous outperforms homogeneous 2x+; homogeneous fails at low rates" };
    { id = "fig6";
      title = "Surface-code logical error vs data/ancilla coherence (d=13)";
      paper_claim = "Scaling data coherence helps ~2.5x; ancilla coherence helps little" };
    { id = "fig7";
      title = "Logical error vs distance for Tcd/Tca ratios";
      paper_claim = "Raising the ratio moves the code below threshold; returns diminish past 5" };
    { id = "fig9";
      title = "UEC logical error vs storage coherence";
      paper_claim = "Serialized checks demand long Ts; non-planar codes benefit most" };
    { id = "table3";
      title = "UEC het vs hom per code";
      paper_claim = "RM/17QCC/ST improve 4.7x/3.5x/10.7x; surface codes favor homogeneous" };
    { id = "fig12";
      title = "Code-teleportation error vs Ts";
      paper_claim = "CT error drops with storage lifetime; large codes need Ts >= 50 ms" };
    { id = "table4";
      title = "CT error probabilities for all code pairs";
      paper_claim = "Heterogeneous wins every pair; 2.96x best, 2.33x average, 1.60x min" } ]

let find_experiment id = List.find_opt (fun e -> e.id = id) experiments
