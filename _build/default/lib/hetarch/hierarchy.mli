(** The HetArch design hierarchy (paper §2, Fig. 2): modules execute
    subroutines, standard cells execute operations, devices hold qubits.
    Modules may nest (sub-modules), and the three example architectures of
    §4 are provided as constructed trees. *)

type node =
  | Module of { name : string; children : node list }
  | Cell_of of Cell.t

val distillation : unit -> node
(** Fig. 1: input memory (2 Registers), distillation (ParCheck), output
    memory (1 Register). *)

val surface_code_memory : int -> node
(** Fig. 5: a distance-d planar surface code tiled from ParCheck cells. *)

val universal_error_correction : unit -> node
(** Fig. 8: a USC with one USC-EXT extension. *)

val code_teleportation : unit -> node
(** Fig. 11: entanglement distillation + two CAT generators (SeqOp) + two
    UEC sub-modules. *)

val cells : node -> Cell.t list
(** All cells in the tree, depth-first. *)

val device_count : node -> int
val qubit_capacity : node -> int
val footprint_mm2 : node -> float
val control_lines : node -> int

val validate : node -> unit
(** Re-check every cell's design rules. *)

val render : node -> string
(** ASCII tree for documentation and the quickstart example. *)
