(** HetArch public facade.

    The library family is flat (one OCaml library per subsystem, all
    unwrapped); this module provides the entry-point documentation, version,
    and the index of paper experiments with their parameters.

    {2 Layer map}

    - {!Device}: Table-1 superconducting device catalog.
    - {!Design_rules} / {!Cell}: standard cells and DR1-DR4 (Table 2).
    - {!Characterize}: density-matrix cell characterization (channels).
    - {!Code} / {!Codes} / {!Decoder_lookup} / {!Decoder_uf} / {!Threshold}:
      QEC codes and decoders.
    - {!Surface_circuit} / {!Frame} / {!Tableau} / {!Dem}: circuit-level
      simulation (the Stim role).
    - {!Distill_module} / {!Bell_pair} / {!Ep_source}: §4.1.
    - {!Uec}: §4.2.2.  {!Teleport}: §4.3.
    - {!Sweep} / {!Cache} / {!Burden}: design-space exploration.
    - {!Hierarchy}: module/cell/device trees (Fig. 2). *)

val version : string

type experiment = {
  id : string;  (** e.g. "fig3", "table4" *)
  title : string;
  paper_claim : string;  (** the headline the experiment reproduces *)
}

val experiments : experiment list
(** Every table and figure of the paper's evaluation, in order. *)

val find_experiment : string -> experiment option
