lib/hetarch/hierarchy.ml: Array Buffer Cell Design_rules List Printf
