lib/hetarch/hetarch.ml: List
