lib/hetarch/hetarch.mli:
