lib/hetarch/hierarchy.mli: Cell
