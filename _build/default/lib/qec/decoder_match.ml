type edge = { u : int; v : int; weight : int; logical : bool }

type t = {
  n : int;  (* vertex n is the boundary *)
  adj : (int * int * bool) list array;  (* vertex -> (other, weight, logical) *)
}

let create ~nodes ~edges =
  if nodes <= 0 then invalid_arg "Decoder_match.create: need nodes";
  let adj = Array.make (nodes + 1) [] in
  List.iter
    (fun (u, v, weight, logical) ->
      let v = if v = Decoder_uf.boundary then nodes else v in
      if u < 0 || u >= nodes || v < 0 || v > nodes || u = v then
        invalid_arg "Decoder_match.create: bad edge";
      if weight < 1 then invalid_arg "Decoder_match.create: weight >= 1";
      let e = { u; v; weight; logical } in
      adj.(u) <- (e.v, e.weight, e.logical) :: adj.(u);
      adj.(v) <- (e.u, e.weight, e.logical) :: adj.(v))
    edges;
  { n = nodes; adj }

let of_dem ?(scale = 2.0) ?(max_weight = 40) ~nodes mechanisms =
  (* Reuse the DEM->graph conversion, then strip into our adjacency form by
     regenerating the same edge list. *)
  let table : (int * int, (float * bool * float) ref) Hashtbl.t = Hashtbl.create 256 in
  let add u v p logical =
    let key = if u <= v then (u, v) else (v, u) in
    match Hashtbl.find_opt table key with
    | Some r ->
        let total, flag, best = !r in
        let total = (total *. (1. -. p)) +. (p *. (1. -. total)) in
        let flag, best = if p > best then (logical, p) else (flag, best) in
        r := (total, flag, best)
    | None -> Hashtbl.add table key (ref (p, logical, p))
  in
  List.iter
    (fun (m : Dem.mechanism) ->
      let logical = m.Dem.obs_mask <> 0 in
      match m.Dem.detectors with
      | [||] -> ()
      | [| d |] -> add d Decoder_uf.boundary m.Dem.p logical
      | [| a; b |] -> add a b m.Dem.p logical
      | many ->
          let k = Array.length many in
          let i = ref 0 in
          while !i + 1 < k do
            add many.(!i) many.(!i + 1) m.Dem.p (logical && !i = 0);
            i := !i + 2
          done;
          if k mod 2 = 1 then add many.(k - 1) Decoder_uf.boundary m.Dem.p false)
    mechanisms;
  let weight_of p =
    if p <= 0. then max_weight
    else if p >= 0.5 then 1
    else max 1 (min max_weight (int_of_float (Float.round (scale *. log ((1. -. p) /. p)))))
  in
  let edges =
    Hashtbl.fold
      (fun (u, v) r acc ->
        let p, logical, _ = !r in
        let u, v = if u = Decoder_uf.boundary then (v, u) else (u, v) in
        (u, v, weight_of p, logical) :: acc)
      table []
  in
  create ~nodes ~edges

(* Dijkstra from a source, returning distance and path logical parity to
   every vertex. *)
let dijkstra t src =
  let nv = t.n + 1 in
  let dist = Array.make nv max_int in
  let parity = Array.make nv false in
  let heap = Heap.create () in
  dist.(src) <- 0;
  Heap.push heap 0. src;
  let rec go () =
    match Heap.pop heap with
    | None -> ()
    | Some (d, v) ->
        let d = int_of_float d in
        if d <= dist.(v) then
          List.iter
            (fun (w, weight, logical) ->
              let nd = d + weight in
              if nd < dist.(w) then begin
                dist.(w) <- nd;
                parity.(w) <- parity.(v) <> logical;
                Heap.push heap (float_of_int nd) w
              end)
            t.adj.(v);
        go ()
  in
  go ();
  (dist, parity)

let decode t syndrome =
  let defects = ref [] in
  for i = t.n - 1 downto 0 do
    if Bitvec.get syndrome i then defects := i :: !defects
  done;
  match !defects with
  | [] -> false
  | defects ->
      let defects = Array.of_list defects in
      let k = Array.length defects in
      let info = Array.map (fun d -> dijkstra t d) defects in
      let matched = Array.make k false in
      let flip = ref false in
      (* Candidate pairings sorted by distance; boundary is a partner too. *)
      let candidates = ref [] in
      for i = 0 to k - 1 do
        let dist, parity = info.(i) in
        for j = i + 1 to k - 1 do
          candidates := (dist.(defects.(j)), 0, parity.(defects.(j)), i, Some j) :: !candidates
        done;
        (* boundary partners rank after defect partners at equal distance:
           matching two defects clears both, a boundary match clears one *)
        candidates := (dist.(t.n), 1, parity.(t.n), i, None) :: !candidates
      done;
      let sorted =
        List.sort
          (fun (a, ba, _, _, _) (b, bb, _, _, _) -> compare (a, ba) (b, bb))
          !candidates
      in
      List.iter
        (fun (_, _, parity, i, j) ->
          let j_free = match j with None -> true | Some j -> not matched.(j) in
          if (not matched.(i)) && j_free then begin
            matched.(i) <- true;
            (match j with Some j -> matched.(j) <- true | None -> ());
            if parity then flip := not !flip
          end)
        sorted;
      !flip
