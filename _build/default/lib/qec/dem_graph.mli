(** Convert a detector error model into a weighted matching graph for the
    union-find decoder.

    Mechanisms flipping two detectors become edges, one detector becomes a
    boundary edge, and the rare >2-detector mechanisms (certain hook-error
    configurations) are decomposed into chained pairs.  Parallel mechanisms
    merge by probability combination, keeping the likelier mechanism's
    logical flag.  Edge weights are quantized log-likelihoods
    round(scale * ln((1-p)/p)). *)

val build :
  ?scale:float -> ?max_weight:int -> nodes:int -> Dem.mechanism list ->
  Decoder_uf.graph
(** Defaults: scale = 2.0, max_weight = 40. *)

val non_graphlike_count : Dem.mechanism list -> int
(** Number of mechanisms with more than two detectors (diagnostic). *)
