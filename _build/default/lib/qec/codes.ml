let range n = Array.init n Fun.id

let repetition d =
  if d < 2 then invalid_arg "Codes.repetition: need d >= 2";
  { Code.name = Printf.sprintf "REP%d" d;
    n = d;
    k = 1;
    distance = d;
    x_stabs = [||];
    z_stabs = Array.init (d - 1) (fun i -> [| i; i + 1 |]);
    logical_x = [| range d |];
    logical_z = [| [| 0 |] |];
    planar = true }

let steane =
  let checks = [| [| 3; 4; 5; 6 |]; [| 1; 2; 5; 6 |]; [| 0; 2; 4; 6 |] |] in
  { Code.name = "ST";
    n = 7;
    k = 1;
    distance = 3;
    x_stabs = checks;
    z_stabs = checks;
    logical_x = [| range 7 |];
    logical_z = [| range 7 |];
    planar = false }

(* [[15,1,3]] punctured quantum Reed-Muller code: qubits are the nonzero
   4-bit vectors v (qubit q = v-1).  X checks are the four coordinate
   half-spaces {v : v_i = 1}; Z checks add the six pairwise intersections. *)
let reed_muller_15 =
  let coord i = Array.of_list (List.filter_map
    (fun v -> if (v lsr i) land 1 = 1 then Some (v - 1) else None)
    (List.init 15 (fun q -> q + 1)))
  in
  let pair i j = Array.of_list (List.filter_map
    (fun v ->
      if (v lsr i) land 1 = 1 && (v lsr j) land 1 = 1 then Some (v - 1) else None)
    (List.init 15 (fun q -> q + 1)))
  in
  let xs = Array.init 4 coord in
  let pairs = ref [] in
  for i = 0 to 3 do
    for j = i + 1 to 3 do
      pairs := pair i j :: !pairs
    done
  done;
  let zs = Array.append xs (Array.of_list (List.rev !pairs)) in
  { Code.name = "RM";
    n = 15;
    k = 1;
    distance = 3;
    x_stabs = xs;
    z_stabs = zs;
    logical_x = [| range 15 |];
    logical_z = [| range 15 |];
    planar = false }

(* [[17,1,5]] CSS code from the two binary quadratic-residue codes of length
   17: X checks span the dual of one QR code, Z checks the dual of the other
   (17 = 1 mod 8, so unlike Steane's length 7 the QR code does not contain
   its own dual and the two factors must be crossed).  Verified to have
   distance 5 and weight-6 checks; stands in for the paper's 4.8.8 17-qubit
   color code, whose exact face list the paper does not give. *)
let color_17 =
  let base_x = [| 0; 3; 4; 5; 6; 9 |] in
  let base_z = [| 0; 1; 3; 6; 8; 9 |] in
  let shifts base = Array.init 8 (fun s -> Array.map (fun q -> q + s) base) in
  { Code.name = "17QCC";
    n = 17;
    k = 1;
    distance = 5;
    x_stabs = shifts base_x;
    z_stabs = shifts base_z;
    logical_x = [| range 17 |];
    logical_z = [| range 17 |];
    planar = false }

let shor =
  let block b = Array.init 3 (fun i -> (3 * b) + i) in
  { Code.name = "SHOR";
    n = 9;
    k = 1;
    distance = 3;
    x_stabs = [| Array.append (block 0) (block 1); Array.append (block 1) (block 2) |];
    z_stabs =
      [| [| 0; 1 |]; [| 1; 2 |]; [| 3; 4 |]; [| 4; 5 |]; [| 6; 7 |]; [| 7; 8 |] |];
    logical_x = [| block 0 |];
    logical_z = [| [| 0; 3; 6 |] |];
    planar = false }

let surface d =
  if d < 2 then invalid_arg "Codes.surface: need d >= 2";
  let q r c = (r * d) + c in
  let in_grid r c = r >= 0 && r < d && c >= 0 && c < d in
  let xs = ref [] and zs = ref [] in
  for r = -1 to d - 1 do
    for c = -1 to d - 1 do
      let qubits =
        List.filter_map
          (fun (rr, cc) -> if in_grid rr cc then Some (q rr cc) else None)
          [ (r, c); (r, c + 1); (r + 1, c); (r + 1, c + 1) ]
      in
      let is_x = ((r + c) mod 2 + 2) mod 2 = 0 in
      let top_or_bottom = r = -1 || r = d - 1 in
      let left_or_right = c = -1 || c = d - 1 in
      match List.length qubits with
      | 4 ->
          if is_x then xs := Array.of_list qubits :: !xs
          else zs := Array.of_list qubits :: !zs
      | 2 ->
          (* Boundary checks: X on top/bottom, Z on left/right, at alternating
             positions given by the cell's checkerboard type. *)
          if top_or_bottom && is_x then xs := Array.of_list qubits :: !xs
          else if left_or_right && (not is_x) && not top_or_bottom then
            zs := Array.of_list qubits :: !zs
      | _ -> ()
    done
  done;
  { Code.name = Printf.sprintf "SC%d" d;
    n = d * d;
    k = 1;
    distance = d;
    x_stabs = Array.of_list (List.rev !xs);
    z_stabs = Array.of_list (List.rev !zs);
    logical_x = [| Array.init d (fun r -> q r 0) |];
    logical_z = [| Array.init d (fun c -> q 0 c) |];
    planar = true }

let by_name name =
  match name with
  | "RM" -> reed_muller_15
  | "17QCC" -> color_17
  | "ST" -> steane
  | "SHOR" -> shor
  | _ ->
      let parse prefix f =
        let pl = String.length prefix in
        if String.length name > pl && String.sub name 0 pl = prefix then
          match int_of_string_opt (String.sub name pl (String.length name - pl)) with
          | Some d -> Some (f d)
          | None -> None
        else None
      in
      (match parse "SC" surface with
      | Some c -> c
      | None -> (
          match parse "REP" repetition with
          | Some c -> c
          | None -> raise Not_found))

let paper_codes = [ reed_muller_15; color_17; steane; surface 3; surface 4 ]
