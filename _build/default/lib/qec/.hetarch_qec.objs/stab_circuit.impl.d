lib/qec/stab_circuit.ml: Array Bitvec Circuit Code Decoder_lookup Float Frame List
