lib/qec/decoder_match.mli: Bitvec Dem
