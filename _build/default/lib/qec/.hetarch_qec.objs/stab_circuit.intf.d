lib/qec/stab_circuit.mli: Circuit Code Rng
