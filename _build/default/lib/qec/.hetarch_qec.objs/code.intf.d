lib/qec/code.mli: Pauli
