lib/qec/codes.ml: Array Code Fun List Printf String
