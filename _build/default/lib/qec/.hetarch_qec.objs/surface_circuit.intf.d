lib/qec/surface_circuit.mli: Circuit Decoder_uf Rng
