lib/qec/decoder_lookup.ml: Array Code List
