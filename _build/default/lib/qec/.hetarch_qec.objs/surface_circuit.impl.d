lib/qec/surface_circuit.ml: Array Bitvec Circuit Decoder_uf Dem Dem_graph Frame List Option Rng
