lib/qec/decoder_uf.ml: Array Bitvec Hashtbl List Union_find
