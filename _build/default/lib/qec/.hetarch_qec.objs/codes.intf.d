lib/qec/codes.mli: Code
