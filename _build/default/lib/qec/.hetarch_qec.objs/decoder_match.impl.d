lib/qec/decoder_match.ml: Array Bitvec Decoder_uf Dem Float Hashtbl Heap List
