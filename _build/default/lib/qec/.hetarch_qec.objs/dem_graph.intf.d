lib/qec/dem_graph.mli: Decoder_uf Dem
