lib/qec/threshold.ml: Code Decoder_lookup Rng
