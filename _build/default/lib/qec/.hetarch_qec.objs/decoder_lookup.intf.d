lib/qec/decoder_lookup.mli: Code
