lib/qec/code.ml: Array List Pauli Printf
