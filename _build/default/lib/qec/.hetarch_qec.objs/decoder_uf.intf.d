lib/qec/decoder_uf.mli: Bitvec
