lib/qec/dem_graph.ml: Array Decoder_uf Dem Float Hashtbl List
