lib/qec/threshold.mli: Code Decoder_lookup Rng
