type edge = { u : int; v : int; weight : int; logical : bool }

type graph = {
  n : int;  (* real nodes; vertex n is the virtual boundary *)
  edges : edge array;
  incident : int list array;  (* vertex -> incident edge ids *)
}

let boundary = -1

let weighted_graph ~nodes ~edges =
  if nodes <= 0 then invalid_arg "Decoder_uf.graph: need nodes";
  let edges =
    Array.of_list
      (List.map
         (fun (u, v, weight, logical) ->
           let v = if v = boundary then nodes else v in
           if u < 0 || u >= nodes then invalid_arg "Decoder_uf.graph: bad endpoint";
           if v < 0 || v > nodes then invalid_arg "Decoder_uf.graph: bad endpoint";
           if u = v then invalid_arg "Decoder_uf.graph: self-loop";
           if weight < 1 then invalid_arg "Decoder_uf.graph: weight must be >= 1";
           { u; v; weight; logical })
         edges)
  in
  let incident = Array.make (nodes + 1) [] in
  Array.iteri
    (fun i e ->
      incident.(e.u) <- i :: incident.(e.u);
      incident.(e.v) <- i :: incident.(e.v))
    edges;
  { n = nodes; edges; incident }

let graph ~nodes ~edges =
  weighted_graph ~nodes ~edges:(List.map (fun (u, v, l) -> (u, v, 1, l)) edges)

let num_nodes g = g.n
let num_edges g = Array.length g.edges

(* One decoding pass: grow clusters from defects until each has even parity
   or touches the boundary, then peel a spanning forest for the correction. *)
let correction_edges g syndrome =
  let nv = g.n + 1 in
  let defect = Array.make nv false in
  let ndefects = ref 0 in
  for i = 0 to g.n - 1 do
    if Bitvec.get syndrome i then begin
      defect.(i) <- true;
      incr ndefects
    end
  done;
  if !ndefects = 0 then []
  else begin
    let uf = Union_find.create nv in
    let parity = Array.make nv 0 in
    let has_boundary = Array.make nv false in
    has_boundary.(g.n) <- true;
    for i = 0 to g.n - 1 do
      if defect.(i) then parity.(i) <- 1
    done;
    let border = Array.make nv [] in
    for v = 0 to nv - 1 do
      border.(v) <- g.incident.(v)
    done;
    let growth = Array.make (Array.length g.edges) 0 in
    let merge a b =
      let ra = Union_find.find uf a and rb = Union_find.find uf b in
      if ra <> rb then begin
        let p = parity.(ra) + parity.(rb) in
        let hb = has_boundary.(ra) || has_boundary.(rb) in
        let combined = List.rev_append border.(ra) border.(rb) in
        let r = Union_find.union uf a b in
        parity.(r) <- p mod 2;
        has_boundary.(r) <- hb;
        border.(r) <- combined
      end
    in
    let active_roots () =
      let seen = Hashtbl.create 16 in
      let acc = ref [] in
      for v = 0 to g.n - 1 do
        if defect.(v) then begin
          let r = Union_find.find uf v in
          if not (Hashtbl.mem seen r) then begin
            Hashtbl.add seen r ();
            if parity.(r) = 1 && not has_boundary.(r) then acc := r :: !acc
          end
        end
      done;
      !acc
    in
    let total_weight =
      Array.fold_left (fun acc e -> acc + e.weight) 1 g.edges
    in
    let rec grow_rounds guard =
      if guard > 4 * total_weight then
        failwith "Decoder_uf: growth failed to converge";
      match active_roots () with
      | [] -> ()
      | roots ->
          let to_merge = ref [] in
          List.iter
            (fun r ->
              (* The root may have been merged by an earlier growth in this
                 same round; re-check activity. *)
              let r = Union_find.find uf r in
              if parity.(r) = 1 && not has_boundary.(r) then begin
                let remaining = ref [] in
                List.iter
                  (fun eid ->
                    let full = 2 * g.edges.(eid).weight in
                    if growth.(eid) < full then begin
                      growth.(eid) <- growth.(eid) + 1;
                      if growth.(eid) >= full then to_merge := eid :: !to_merge
                      else remaining := eid :: !remaining
                    end)
                  border.(r);
                border.(r) <- !remaining
              end)
            roots;
          List.iter (fun eid -> merge g.edges.(eid).u g.edges.(eid).v) !to_merge;
          grow_rounds (guard + 1)
    in
    grow_rounds 0;
    (* Peel: spanning forest over full edges, boundary-first roots. *)
    let full_adj = Array.make nv [] in
    Array.iteri
      (fun eid e ->
        if growth.(eid) >= 2 * e.weight then begin
          full_adj.(e.u) <- (eid, e.v) :: full_adj.(e.u);
          full_adj.(e.v) <- (eid, e.u) :: full_adj.(e.v)
        end)
      g.edges;
    let visited = Array.make nv false in
    let parent_edge = Array.make nv (-1) in
    let parent = Array.make nv (-1) in
    let order = ref [] in
    let dfs root =
      let stack = ref [ root ] in
      visited.(root) <- true;
      while !stack <> [] do
        match !stack with
        | [] -> ()
        | v :: rest ->
            stack := rest;
            order := v :: !order;
            List.iter
              (fun (eid, w) ->
                if not visited.(w) then begin
                  visited.(w) <- true;
                  parent.(w) <- v;
                  parent_edge.(w) <- eid;
                  stack := w :: !stack
                end)
              full_adj.(v)
      done
    in
    (* Boundary vertex first so odd clusters peel into it. *)
    dfs g.n;
    for v = 0 to g.n - 1 do
      if not visited.(v) then dfs v
    done;
    (* !order has leaves last (reverse DFS discovery is a valid
       children-before-parents order for peeling only if we process in
       reverse discovery order). *)
    let correction = ref [] in
    List.iter
      (fun v ->
        if v <> g.n && defect.(v) && parent.(v) >= 0 then begin
          correction := parent_edge.(v) :: !correction;
          defect.(v) <- false;
          if parent.(v) <> g.n then defect.(parent.(v)) <- not defect.(parent.(v))
        end)
      !order;
    !correction
  end

let decode_correction g syndrome = correction_edges g syndrome

let decode g syndrome =
  List.fold_left
    (fun acc eid -> if g.edges.(eid).logical then not acc else acc)
    false (correction_edges g syndrome)
