let non_graphlike_count mechanisms =
  List.length (List.filter (fun m -> Array.length m.Dem.detectors > 2) mechanisms)

let build ?(scale = 2.0) ?(max_weight = 40) ~nodes mechanisms =
  (* Accumulate per-endpoint-pair: combined probability and the flag of the
     single likeliest contributing mechanism. *)
  let table : (int * int, (float * bool * float) ref) Hashtbl.t = Hashtbl.create 256 in
  let add u v p logical =
    let key = if u <= v then (u, v) else (v, u) in
    match Hashtbl.find_opt table key with
    | Some r ->
        let total, flag, best = !r in
        let total = (total *. (1. -. p)) +. (p *. (1. -. total)) in
        let flag, best = if p > best then (logical, p) else (flag, best) in
        r := (total, flag, best)
    | None -> Hashtbl.add table key (ref (p, logical, p))
  in
  List.iter
    (fun (m : Dem.mechanism) ->
      let logical = m.Dem.obs_mask <> 0 in
      match m.Dem.detectors with
      | [||] -> ()  (* undetectable; nothing a matcher can do *)
      | [| d |] -> add d Decoder_uf.boundary m.Dem.p logical
      | [| a; b |] -> add a b m.Dem.p logical
      | many ->
          (* Decompose into chained pairs; flag rides on the first link. *)
          let k = Array.length many in
          let i = ref 0 in
          while !i + 1 < k do
            add many.(!i) many.(!i + 1) m.Dem.p (logical && !i = 0);
            i := !i + 2
          done;
          if k mod 2 = 1 then add many.(k - 1) Decoder_uf.boundary m.Dem.p false)
    mechanisms;
  let weight_of p =
    if p <= 0. then max_weight
    else if p >= 0.5 then 1
    else max 1 (min max_weight (int_of_float (Float.round (scale *. log ((1. -. p) /. p)))))
  in
  let edges =
    Hashtbl.fold
      (fun (u, v) r acc ->
        let p, logical, _ = !r in
        let u, v = if u = Decoder_uf.boundary then (v, u) else (u, v) in
        (u, v, weight_of p, logical) :: acc)
      table []
  in
  Decoder_uf.weighted_graph ~nodes ~edges
