(** CSS stabilizer codes.

    Every code used in the paper (surface codes, Steane, the 17-qubit code,
    15-qubit Reed–Muller, repetition) is CSS, so stabilizers are stored as
    X-type and Z-type supports over the data qubits. *)

type t = {
  name : string;
  n : int;  (** data qubits *)
  k : int;  (** logical qubits *)
  distance : int;  (** claimed code distance (verified in the test suite) *)
  x_stabs : int array array;  (** supports of X-type stabilizers *)
  z_stabs : int array array;  (** supports of Z-type stabilizers *)
  logical_x : int array array;  (** length [k] *)
  logical_z : int array array;
  planar : bool;
      (** whether the check structure embeds in a planar square lattice
          (drives the homogeneous baseline's routing cost) *)
}

val validate : t -> unit
(** Check supports in range; X/Z stabilizers pairwise commute (even
    intersection); logicals commute with all stabilizers; [logical_x.(i)]
    anticommutes with [logical_z.(i)] and commutes with [logical_z.(j)].
    Raises [Invalid_argument] with a description on violation. *)

val num_stabs : t -> int

val x_stab_pauli : t -> int -> Pauli.t
val z_stab_pauli : t -> int -> Pauli.t
val logical_x_pauli : t -> int -> Pauli.t
val logical_z_pauli : t -> int -> Pauli.t

val syndrome_of_x_error : t -> int list -> int array
(** [syndrome_of_x_error code qubits] is the Z-stabilizer syndrome (one bit
    per Z stabilizer) triggered by X errors on the given qubits. *)

val syndrome_of_z_error : t -> int list -> int array
(** X-stabilizer syndrome triggered by Z errors. *)

val x_logical_flipped : t -> int -> int list -> bool
(** [x_logical_flipped code i qubits]: do X errors on [qubits] flip logical
    Z_i (odd overlap with its support)? *)

val z_logical_flipped : t -> int -> int list -> bool

val max_stab_weight : t -> int

val gf2_rank : int array array -> n:int -> int
(** Rank over GF(2) of supports viewed as rows of an [n]-column matrix
    (exposed for tests and the distance checker). *)

val brute_force_distance : t -> max_weight:int -> int option
(** Search for the minimum weight of a logical operator (X-type or Z-type) up
    to [max_weight]; [None] if none found (distance exceeds the bound).
    Exponential — tests only. *)
