(** Circuit-level memory experiments for arbitrary CSS codes on the
    serialized USC architecture — the detailed end of the paper's simulation
    hierarchy, used to validate the phenomenological module model of {!Uec}.

    One readout ancilla serially extracts every stabilizer each round (Z
    checks as CX(data->anc), X checks Hadamard-conjugated), data qubits
    idle at the storage coherence between their turns and at the compute
    coherence while swapped out, and each CX carries the configured
    depolarizing error.  Detectors compare consecutive ancilla readings; the
    experiment is memory-Z (prepared |0...0>, final transversal Z
    measurement, logical Z observable). *)

type params = {
  ts : float;  (** storage coherence while parked *)
  tc : float;  (** compute coherence while out for a check *)
  p2 : float;  (** CX depolarizing *)
  t_2q : float;
  t_swap : float;
  t_readout : float;
}

val default : ts:float -> params
(** Paper §4.2 settings with the given storage coherence. *)

val memory_z : ?params:params -> Code.t -> rounds:int -> Circuit.t
(** Build the full noisy circuit.  X-stabilizer ancilla readings are
    recorded but, being random in the |0> state, only their round-to-round
    differences form detectors; Z-stabilizer detectors start at round 0.
    Raises for codes whose first-round X extraction would make Z detectors
    nondeterministic only if construction fails validation. *)

val logical_z_error_rate :
  ?params:params -> Code.t -> rounds:int -> shots:int -> Rng.t -> float
(** Monte-Carlo logical-Z error per shot: frame-sample the circuit, fold the
    telescoping detector parities into the final-residual syndrome (ancilla
    measurement errors cancel), decode with the code's lookup table, and
    compare against the logical-Z observable. *)

val per_round : shot_rate:float -> rounds:int -> float
(** 1 - (1 - P)^(1/rounds). *)
