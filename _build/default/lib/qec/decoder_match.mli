(** Greedy minimum-weight matching decoder.

    An alternative to {!Decoder_uf} for ablation studies: defects are matched
    greedily in order of increasing weighted graph distance (Dijkstra), each
    to its nearest unmatched defect or to the boundary.  Slower than
    union-find (distances are computed per shot) but closer to minimum-weight
    perfect matching on sparse syndromes. *)

type t

val create : nodes:int -> edges:(int * int * int * bool) list -> t
(** Same edge format as {!Decoder_uf.weighted_graph}: [(u, v, weight,
    flips_logical)] with [v] possibly {!Decoder_uf.boundary}. *)

val of_dem : ?scale:float -> ?max_weight:int -> nodes:int -> Dem.mechanism list -> t
(** Build from a detector error model with the same conventions as
    {!Dem_graph.build}. *)

val decode : t -> Bitvec.t -> bool
(** Predicted logical flip for the given defect pattern. *)
