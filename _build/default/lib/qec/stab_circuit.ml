type params = {
  ts : float;
  tc : float;
  p2 : float;
  t_2q : float;
  t_swap : float;
  t_readout : float;
}

let default ~ts =
  { ts; tc = 0.5e-3; p2 = 1e-2; t_2q = 100e-9; t_swap = 100e-9; t_readout = 1e-6 }

(* Build the circuit plus, per Z stabilizer, the detector indices whose XOR
   telescopes to the final residual syndrome bit. *)
let build p (code : Code.t) ~rounds =
  if rounds < 1 then invalid_arg "Stab_circuit.memory_z: rounds >= 1";
  let n = code.Code.n in
  let anc = n in
  let b = Circuit.builder (n + 1) in
  let nz = Array.length code.Code.z_stabs in
  let nx = Array.length code.Code.x_stabs in
  let meas = Array.make_matrix rounds (nz + nx) 0 in
  let stab_kindsupp =
    Array.append
      (Array.map (fun s -> (`Z, s)) code.Code.z_stabs)
      (Array.map (fun s -> (`X, s)) code.Code.x_stabs)
  in
  for r = 0 to rounds - 1 do
    Array.iteri
      (fun k (kind, supp) ->
        let w = Array.length supp in
        let duration =
          (float_of_int w *. p.t_2q)
          +. (2. *. float_of_int w *. p.t_swap)
          +. p.t_readout
        in
        (* parked data idles in storage for the whole check *)
        for q = 0 to n - 1 do
          if not (Array.mem q supp) then
            Circuit.idle_noise b ~t1:p.ts ~t2:p.ts ~dt:duration q
        done;
        (* participants: storage idle for the rest of the check plus a
           compute excursion for their swaps and gate *)
        let excursion = (2. *. p.t_swap) +. p.t_2q in
        Array.iter
          (fun q ->
            Circuit.idle_noise b ~t1:p.ts ~t2:p.ts ~dt:(Float.max 0. (duration -. excursion)) q;
            Circuit.idle_noise b ~t1:p.tc ~t2:p.tc ~dt:excursion q)
          supp;
        Circuit.add b (Circuit.R anc);
        if kind = `X then Circuit.add b (Circuit.H anc);
        Array.iter
          (fun q ->
            (match kind with
            | `Z -> Circuit.add b (Circuit.CX (q, anc))
            | `X -> Circuit.add b (Circuit.CX (anc, q)));
            if p.p2 > 0. then Circuit.add b (Circuit.Depol2 { p = p.p2; a = q; b = anc }))
          supp;
        if kind = `X then Circuit.add b (Circuit.H anc);
        meas.(r).(k) <- Circuit.measure b anc)
      stab_kindsupp
  done;
  (* Detectors: Z checks compare with the deterministic |0...0> preparation
     at round 0; X checks only round-to-round. *)
  let z_dets = Array.make nz [] in
  let det_count = ref 0 in
  let add_det idxs =
    Circuit.add_detector b idxs;
    let d = !det_count in
    incr det_count;
    d
  in
  for r = 0 to rounds - 1 do
    for s = 0 to nz - 1 do
      let d =
        if r = 0 then add_det [ meas.(0).(s) ]
        else add_det [ meas.(r - 1).(s); meas.(r).(s) ]
      in
      z_dets.(s) <- d :: z_dets.(s)
    done;
    for x = 0 to nx - 1 do
      if r > 0 then
        ignore (add_det [ meas.(r - 1).(nz + x); meas.(r).(nz + x) ])
    done
  done;
  let data_meas = Array.init n (fun q -> Circuit.measure b q) in
  Array.iteri
    (fun s supp ->
      let d =
        add_det (meas.(rounds - 1).(s) :: Array.to_list (Array.map (fun q -> data_meas.(q)) supp))
      in
      z_dets.(s) <- d :: z_dets.(s))
    code.Code.z_stabs;
  Circuit.add_observable b
    (Array.to_list (Array.map (fun q -> data_meas.(q)) code.Code.logical_z.(0)));
  let circuit = Circuit.finish b in
  Circuit.validate circuit;
  (circuit, z_dets)

let memory_z ?params:(p = default ~ts:10e-3) code ~rounds = fst (build p code ~rounds)

let logical_z_error_rate ?params:(p = default ~ts:10e-3) code ~rounds ~shots rng =
  if shots < 1 then invalid_arg "Stab_circuit.logical_z_error_rate: shots >= 1";
  let circuit, z_dets = build p code ~rounds in
  let decoder = Decoder_lookup.create code in
  let failures = ref 0 in
  for _ = 1 to shots do
    let shot = Frame.sample_shot circuit rng in
    let syndrome =
      Array.map
        (fun dets ->
          let parity =
            List.fold_left
              (fun acc d -> if Bitvec.get shot.Frame.detectors d then 1 - acc else acc)
              0 dets
          in
          parity)
        z_dets
    in
    let correction = Decoder_lookup.decode_x decoder syndrome in
    let corr_flips =
      List.fold_left
        (fun acc q -> if Array.mem q code.Code.logical_z.(0) then not acc else acc)
        false correction
    in
    let actual_flip = Bitvec.get shot.Frame.observables 0 in
    if corr_flips <> actual_flip then incr failures
  done;
  float_of_int !failures /. float_of_int shots

let per_round ~shot_rate ~rounds =
  if shot_rate >= 1. then 1.
  else 1. -. ((1. -. shot_rate) ** (1. /. float_of_int rounds))
