(** Catalog of the QEC codes evaluated in the paper (§4.2.2, Table 3).

    All constructions are validated by {!Code.validate} and their distances
    brute-force checked in the test suite. *)

val repetition : int -> Code.t
(** Distance-d bit-flip repetition code [[d,1,d]] (Z-type checks only);
    protects against X errors. *)

val steane : Code.t
(** The [[7,1,3]] Steane code (ST in the paper). *)

val reed_muller_15 : Code.t
(** The [[15,1,3]] punctured quantum Reed–Muller code (RM).  Non-planar. *)

val color_17 : Code.t
(** A [[17,1,5]] CSS code standing in for the paper's 17-qubit color code
    (17QCC).  Built from the two length-17 binary quadratic-residue codes:
    X checks generate the dual of one QR code, Z checks the dual of the
    other.  Same parameters and non-planarity as the 4.8.8 color code, whose
    exact face list the paper does not specify. *)

val shor : Code.t
(** The [[9,1,3]] Shor code: six weight-2 Z checks (bit-flip blocks) and two
    weight-6 X checks (phase-flip outer code).  Useful as an asymmetric-noise
    ablation code. *)

val surface : int -> Code.t
(** Rotated surface code of odd or even distance d ([[d*d, 1, d]]): bulk
    weight-4 plaquettes in a checkerboard, weight-2 X checks on the top and
    bottom boundary, weight-2 Z checks on the left and right.  Logical Z is
    the top row, logical X the left column.  SC3/SC4 in the paper are
    [surface 3] / [surface 4]. *)

val by_name : string -> Code.t
(** Lookup with the paper's abbreviations: "RM", "17QCC", "ST", "SC3", "SC4",
    plus "SCd" for other distances, "REPd", and "SHOR".  Raises [Not_found]
    on unknown names. *)

val paper_codes : Code.t list
(** The five codes of Table 3, in the paper's order: RM, 17QCC, ST, SC3,
    SC4. *)
