type t = {
  name : string;
  n : int;
  k : int;
  distance : int;
  x_stabs : int array array;
  z_stabs : int array array;
  logical_x : int array array;
  logical_z : int array array;
  planar : bool;
}

let overlap a b =
  (* Supports are small; quadratic scan is fine. *)
  Array.fold_left (fun acc q -> if Array.mem q b then acc + 1 else acc) 0 a

let fail fmt = Printf.ksprintf invalid_arg fmt

let validate t =
  let check_support kind s =
    Array.iter
      (fun q -> if q < 0 || q >= t.n then fail "%s: qubit %d out of range in %s" t.name q kind)
      s;
    let sorted = Array.copy s in
    Array.sort compare sorted;
    for i = 1 to Array.length sorted - 1 do
      if sorted.(i) = sorted.(i - 1) then fail "%s: duplicate qubit in %s" t.name kind
    done
  in
  Array.iter (check_support "x stabilizer") t.x_stabs;
  Array.iter (check_support "z stabilizer") t.z_stabs;
  Array.iter (check_support "logical x") t.logical_x;
  Array.iter (check_support "logical z") t.logical_z;
  if Array.length t.logical_x <> t.k || Array.length t.logical_z <> t.k then
    fail "%s: need %d logical operator pairs" t.name t.k;
  Array.iteri
    (fun i sx ->
      Array.iteri
        (fun j sz ->
          if overlap sx sz mod 2 <> 0 then
            fail "%s: X stab %d anticommutes with Z stab %d" t.name i j)
        t.z_stabs)
    t.x_stabs;
  Array.iteri
    (fun i lx ->
      Array.iteri
        (fun j sz ->
          if overlap lx sz mod 2 <> 0 then
            fail "%s: logical X %d anticommutes with Z stab %d" t.name i j)
        t.z_stabs)
    t.logical_x;
  Array.iteri
    (fun i lz ->
      Array.iteri
        (fun j sx ->
          if overlap lz sx mod 2 <> 0 then
            fail "%s: logical Z %d anticommutes with X stab %d" t.name i j)
        t.x_stabs)
    t.logical_z;
  Array.iteri
    (fun i lx ->
      Array.iteri
        (fun j lz ->
          let parity = overlap lx lz mod 2 in
          if i = j && parity = 0 then
            fail "%s: logical X %d commutes with its logical Z" t.name i;
          if i <> j && parity = 1 then
            fail "%s: logical X %d anticommutes with logical Z %d" t.name i j)
        t.logical_z)
    t.logical_x

let num_stabs t = Array.length t.x_stabs + Array.length t.z_stabs

let support_pauli n kind s =
  let p = Pauli.identity n in
  Array.iter
    (fun q ->
      match kind with
      | `X -> Pauli.set_x p q true
      | `Z -> Pauli.set_z p q true)
    s;
  p

let x_stab_pauli t i = support_pauli t.n `X t.x_stabs.(i)
let z_stab_pauli t i = support_pauli t.n `Z t.z_stabs.(i)
let logical_x_pauli t i = support_pauli t.n `X t.logical_x.(i)
let logical_z_pauli t i = support_pauli t.n `Z t.logical_z.(i)

let syndrome_against stabs qubits =
  Array.map
    (fun s ->
      let c = List.fold_left (fun acc q -> if Array.mem q s then acc + 1 else acc) 0 qubits in
      c mod 2)
    stabs

let syndrome_of_x_error t qubits = syndrome_against t.z_stabs qubits
let syndrome_of_z_error t qubits = syndrome_against t.x_stabs qubits

let flipped support qubits =
  List.fold_left (fun acc q -> if Array.mem q support then not acc else acc) false qubits

let x_logical_flipped t i qubits = flipped t.logical_z.(i) qubits
let z_logical_flipped t i qubits = flipped t.logical_x.(i) qubits

let max_stab_weight t =
  Array.fold_left
    (fun acc s -> max acc (Array.length s))
    0
    (Array.append t.x_stabs t.z_stabs)

let rows_to_bits supports ~n =
  ignore n;
  Array.map (fun s -> Array.fold_left (fun acc q -> acc lor (1 lsl q)) 0 s) supports

let gf2_rank supports ~n =
  if n > 62 then invalid_arg "Code.gf2_rank: n too large for int rows";
  let rows = rows_to_bits supports ~n in
  let rank = ref 0 in
  let nrows = Array.length rows in
  for col = 0 to n - 1 do
    let piv = ref (-1) in
    (try
       for r = !rank to nrows - 1 do
         if rows.(r) lsr col land 1 = 1 then begin
           piv := r;
           raise Exit
         end
       done
     with Exit -> ());
    if !piv >= 0 then begin
      let tmp = rows.(!rank) in
      rows.(!rank) <- rows.(!piv);
      rows.(!piv) <- tmp;
      for r = 0 to nrows - 1 do
        if r <> !rank && rows.(r) lsr col land 1 = 1 then
          rows.(r) <- rows.(r) lxor rows.(!rank)
      done;
      incr rank
    end
  done;
  !rank

(* Reduced rows for membership tests. *)
let gf2_reduce supports ~n =
  let rows = rows_to_bits supports ~n in
  let rank = ref 0 in
  let nrows = Array.length rows in
  for col = 0 to n - 1 do
    let piv = ref (-1) in
    (try
       for r = !rank to nrows - 1 do
         if rows.(r) lsr col land 1 = 1 then begin
           piv := r;
           raise Exit
         end
       done
     with Exit -> ());
    if !piv >= 0 then begin
      let tmp = rows.(!rank) in
      rows.(!rank) <- rows.(!piv);
      rows.(!piv) <- tmp;
      for r = 0 to nrows - 1 do
        if r <> !rank && rows.(r) lsr col land 1 = 1 then
          rows.(r) <- rows.(r) lxor rows.(!rank)
      done;
      incr rank
    end
  done;
  Array.sub rows 0 !rank

let in_span reduced v =
  let v = ref v in
  Array.iter
    (fun r ->
      let low = r land -r in
      if !v land low <> 0 then v := !v lxor r)
    reduced;
  !v = 0

let brute_force_distance t ~max_weight =
  if t.n > 62 then invalid_arg "Code.brute_force_distance: n too large";
  let x_red = gf2_reduce t.x_stabs ~n:t.n in
  let z_red = gf2_reduce t.z_stabs ~n:t.n in
  let z_checks = rows_to_bits t.z_stabs ~n:t.n in
  let x_checks = rows_to_bits t.x_stabs ~n:t.n in
  let popcount v =
    let c = ref 0 and x = ref v in
    while !x <> 0 do
      x := !x land (!x - 1);
      incr c
    done;
    !c
  in
  (* An X-type logical: commutes with all Z stabilizers, not in the span of
     X stabilizers (and dually). *)
  let is_logical v ~checks ~own_red =
    Array.for_all (fun c -> popcount (v land c) mod 2 = 0) checks && not (in_span own_red v)
  in
  let found = ref None in
  (try
     for w = 1 to max_weight do
       (* Enumerate weight-w subsets via Gosper's hack. *)
       let v = ref ((1 lsl w) - 1) in
       let limit = 1 lsl t.n in
       while !v < limit do
         if is_logical !v ~checks:z_checks ~own_red:x_red
            || is_logical !v ~checks:x_checks ~own_red:z_red
         then begin
           found := Some w;
           raise Exit
         end;
         let c = !v land - !v in
         let r = !v + c in
         v := (((r lxor !v) lsr 2) / c) lor r
       done
     done
   with Exit -> ());
  !found
