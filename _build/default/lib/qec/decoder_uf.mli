(** Union-find decoder (Delfosse–Nickerson style) over a matching graph.

    Nodes are detectors; each edge is a possible error mechanism flipping its
    two endpoint detectors (or one detector and the boundary) and carries a
    flag saying whether that error flips the logical observable.  Clusters
    grow from defects in half-edge steps and merge until every cluster has
    even defect parity or touches the boundary; a spanning-forest peeling
    then extracts a correction, whose accumulated logical flags give the
    logical-flip prediction.

    This plays the role of PyMatching in the paper's Stim-based experiments;
    union-find achieves near-matching accuracy at near-linear cost. *)

type graph

val boundary : int
(** Pseudo-endpoint representing the open boundary (pass as [v]). *)

val graph : nodes:int -> edges:(int * int * bool) list -> graph
(** [graph ~nodes ~edges]: each edge is [(u, v, flips_logical)]; [v] may be
    {!boundary}.  Self-loops and out-of-range endpoints are rejected.  All
    edges have unit weight. *)

val weighted_graph : nodes:int -> edges:(int * int * int * bool) list -> graph
(** [(u, v, weight, flips_logical)]: clusters must grow [weight] half-steps
    from each side before the edge closes, so low-probability mechanisms
    (high weight) are matched across only when nothing cheaper exists.
    Weights must be >= 1. *)

val num_nodes : graph -> int
val num_edges : graph -> int

val decode : graph -> Bitvec.t -> bool
(** [decode g syndrome] returns the predicted logical flip for the defect
    pattern [syndrome] (one bit per node).  The syndrome must have even total
    parity or the excess is matched to the boundary. *)

val decode_correction : graph -> Bitvec.t -> int list
(** The chosen correction as edge indices (ordered as given to {!graph});
    exposed for tests. *)
