type t = { rows : int; cols : int; re : float array; im : float array }

let create rows cols =
  if rows < 0 || cols < 0 then invalid_arg "Cmat.create: negative dimension";
  { rows; cols; re = Array.make (rows * cols) 0.; im = Array.make (rows * cols) 0. }

let identity n =
  let m = create n n in
  for i = 0 to n - 1 do
    m.re.((i * n) + i) <- 1.
  done;
  m

let idx m i j = (i * m.cols) + j

let check_bounds m i j =
  if i < 0 || i >= m.rows || j < 0 || j >= m.cols then
    invalid_arg "Cmat: index out of bounds"

let get m i j =
  check_bounds m i j;
  { Complex.re = m.re.(idx m i j); im = m.im.(idx m i j) }

let set m i j (z : Complex.t) =
  check_bounds m i j;
  m.re.(idx m i j) <- z.re;
  m.im.(idx m i j) <- z.im

let init rows cols f =
  let m = create rows cols in
  for i = 0 to rows - 1 do
    for j = 0 to cols - 1 do
      let z = f i j in
      m.re.(idx m i j) <- z.Complex.re;
      m.im.(idx m i j) <- z.Complex.im
    done
  done;
  m

let of_lists rows =
  match rows with
  | [] -> create 0 0
  | first :: _ ->
      let nc = List.length first in
      let nr = List.length rows in
      if List.exists (fun r -> List.length r <> nc) rows then
        invalid_arg "Cmat.of_lists: ragged rows";
      let arr = Array.of_list (List.map Array.of_list rows) in
      init nr nc (fun i j -> arr.(i).(j))

let of_real_lists rows =
  of_lists (List.map (List.map (fun x -> { Complex.re = x; im = 0. })) rows)

let copy m = { m with re = Array.copy m.re; im = Array.copy m.im }

let same_shape a b = a.rows = b.rows && a.cols = b.cols

let add a b =
  if not (same_shape a b) then invalid_arg "Cmat.add: shape mismatch";
  let m = create a.rows a.cols in
  for k = 0 to Array.length a.re - 1 do
    m.re.(k) <- a.re.(k) +. b.re.(k);
    m.im.(k) <- a.im.(k) +. b.im.(k)
  done;
  m

let sub a b =
  if not (same_shape a b) then invalid_arg "Cmat.sub: shape mismatch";
  let m = create a.rows a.cols in
  for k = 0 to Array.length a.re - 1 do
    m.re.(k) <- a.re.(k) -. b.re.(k);
    m.im.(k) <- a.im.(k) -. b.im.(k)
  done;
  m

let scale (z : Complex.t) a =
  let m = create a.rows a.cols in
  for k = 0 to Array.length a.re - 1 do
    m.re.(k) <- (z.re *. a.re.(k)) -. (z.im *. a.im.(k));
    m.im.(k) <- (z.re *. a.im.(k)) +. (z.im *. a.re.(k))
  done;
  m

let scale_re x a =
  let m = create a.rows a.cols in
  for k = 0 to Array.length a.re - 1 do
    m.re.(k) <- x *. a.re.(k);
    m.im.(k) <- x *. a.im.(k)
  done;
  m

let mul a b =
  if a.cols <> b.rows then invalid_arg "Cmat.mul: dimension mismatch";
  let m = create a.rows b.cols in
  for i = 0 to a.rows - 1 do
    for k = 0 to a.cols - 1 do
      let are = a.re.((i * a.cols) + k) and aim = a.im.((i * a.cols) + k) in
      if are <> 0. || aim <> 0. then begin
        let boff = k * b.cols and moff = i * b.cols in
        for j = 0 to b.cols - 1 do
          let bre = b.re.(boff + j) and bim = b.im.(boff + j) in
          m.re.(moff + j) <- m.re.(moff + j) +. ((are *. bre) -. (aim *. bim));
          m.im.(moff + j) <- m.im.(moff + j) +. ((are *. bim) +. (aim *. bre))
        done
      end
    done
  done;
  m

let kron a b =
  let m = create (a.rows * b.rows) (a.cols * b.cols) in
  for ia = 0 to a.rows - 1 do
    for ja = 0 to a.cols - 1 do
      let are = a.re.((ia * a.cols) + ja) and aim = a.im.((ia * a.cols) + ja) in
      if are <> 0. || aim <> 0. then
        for ib = 0 to b.rows - 1 do
          let row = (ia * b.rows) + ib in
          for jb = 0 to b.cols - 1 do
            let col = (ja * b.cols) + jb in
            let bre = b.re.((ib * b.cols) + jb) and bim = b.im.((ib * b.cols) + jb) in
            m.re.((row * m.cols) + col) <- (are *. bre) -. (aim *. bim);
            m.im.((row * m.cols) + col) <- (are *. bim) +. (aim *. bre)
          done
        done
    done
  done;
  m

let transpose a =
  let m = create a.cols a.rows in
  for i = 0 to a.rows - 1 do
    for j = 0 to a.cols - 1 do
      m.re.((j * m.cols) + i) <- a.re.((i * a.cols) + j);
      m.im.((j * m.cols) + i) <- a.im.((i * a.cols) + j)
    done
  done;
  m

let conj a =
  let m = copy a in
  for k = 0 to Array.length m.im - 1 do
    m.im.(k) <- -.m.im.(k)
  done;
  m

let adjoint a = conj (transpose a)

let trace a =
  if a.rows <> a.cols then invalid_arg "Cmat.trace: non-square";
  let re = ref 0. and im = ref 0. in
  for i = 0 to a.rows - 1 do
    re := !re +. a.re.((i * a.cols) + i);
    im := !im +. a.im.((i * a.cols) + i)
  done;
  { Complex.re = !re; im = !im }

let frobenius_norm a =
  let acc = ref 0. in
  for k = 0 to Array.length a.re - 1 do
    acc := !acc +. (a.re.(k) *. a.re.(k)) +. (a.im.(k) *. a.im.(k))
  done;
  sqrt !acc

let max_abs_diff a b =
  if not (same_shape a b) then infinity
  else begin
    let m = ref 0. in
    for k = 0 to Array.length a.re - 1 do
      let dr = a.re.(k) -. b.re.(k) and di = a.im.(k) -. b.im.(k) in
      let d = sqrt ((dr *. dr) +. (di *. di)) in
      if d > !m then m := d
    done;
    !m
  end

let approx_equal ?(tol = 1e-9) a b = max_abs_diff a b <= tol

let is_hermitian ?(tol = 1e-9) a =
  a.rows = a.cols && max_abs_diff a (adjoint a) <= tol

let sandwich u rho = mul (mul u rho) (adjoint u)

(* Qubit 0 is the most significant bit: index i of a 2^n vector decomposes as
   bits b_0 b_1 ... b_{n-1} with b_0 = i >> (n-1). *)
let bit_of nqubits index q = (index lsr (nqubits - 1 - q)) land 1

let ptrace ~keep ~nqubits rho =
  let dim = 1 lsl nqubits in
  if rho.rows <> dim || rho.cols <> dim then
    invalid_arg "Cmat.ptrace: dimension does not match nqubits";
  List.iter
    (fun q -> if q < 0 || q >= nqubits then invalid_arg "Cmat.ptrace: bad qubit")
    keep;
  let keep = Array.of_list keep in
  let k = Array.length keep in
  let traced = List.filter (fun q -> not (Array.mem q keep)) (List.init nqubits Fun.id) in
  let traced = Array.of_list traced in
  let t = Array.length traced in
  let out = create (1 lsl k) (1 lsl k) in
  (* Reassemble a full-space index from kept-subspace and traced-subspace
     sub-indices. *)
  let full_index kept_idx traced_idx =
    let acc = ref 0 in
    Array.iteri
      (fun pos q ->
        let b = (kept_idx lsr (k - 1 - pos)) land 1 in
        acc := !acc lor (b lsl (nqubits - 1 - q)))
      keep;
    Array.iteri
      (fun pos q ->
        let b = (traced_idx lsr (t - 1 - pos)) land 1 in
        acc := !acc lor (b lsl (nqubits - 1 - q)))
      traced;
    !acc
  in
  for i = 0 to (1 lsl k) - 1 do
    for j = 0 to (1 lsl k) - 1 do
      let re = ref 0. and im = ref 0. in
      for e = 0 to (1 lsl t) - 1 do
        let fi = full_index i e and fj = full_index j e in
        re := !re +. rho.re.((fi * dim) + fj);
        im := !im +. rho.im.((fi * dim) + fj)
      done;
      out.re.((i * out.cols) + j) <- !re;
      out.im.((i * out.cols) + j) <- !im
    done
  done;
  out

let embed_unitary ~nqubits ~targets u =
  let k = List.length targets in
  let sub = 1 lsl k in
  if u.rows <> sub || u.cols <> sub then
    invalid_arg "Cmat.embed_unitary: operator size does not match targets";
  let targets = Array.of_list targets in
  Array.iter
    (fun q -> if q < 0 || q >= nqubits then invalid_arg "Cmat.embed_unitary: bad qubit")
    targets;
  let dim = 1 lsl nqubits in
  let out = create dim dim in
  (* For each full index pair, the operator entry is u[sub_i][sub_j] when the
     non-target bits agree, where sub indices collect the target bits. *)
  let sub_index full =
    let acc = ref 0 in
    Array.iteri
      (fun pos q -> acc := !acc lor (bit_of nqubits full q lsl (k - 1 - pos)))
      targets;
    !acc
  in
  let rest_mask =
    let m = ref 0 in
    for q = 0 to nqubits - 1 do
      if not (Array.mem q targets) then m := !m lor (1 lsl (nqubits - 1 - q))
    done;
    !m
  in
  for i = 0 to dim - 1 do
    let si = sub_index i and ri = i land rest_mask in
    for j = 0 to dim - 1 do
      if j land rest_mask = ri then begin
        let sj = sub_index j in
        out.re.((i * dim) + j) <- u.re.((si * sub) + sj);
        out.im.((i * dim) + j) <- u.im.((si * sub) + sj)
      end
    done
  done;
  out

let pp fmt m =
  Format.fprintf fmt "@[<v>";
  for i = 0 to m.rows - 1 do
    Format.fprintf fmt "@[<h>";
    for j = 0 to m.cols - 1 do
      let re = m.re.((i * m.cols) + j) and im = m.im.((i * m.cols) + j) in
      Format.fprintf fmt "%8.4f%+8.4fi  " re im
    done;
    Format.fprintf fmt "@]@,"
  done;
  Format.fprintf fmt "@]"
