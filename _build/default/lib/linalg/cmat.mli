(** Dense complex matrices (structure-of-arrays layout).

    Sized for standard-cell density matrices: a handful of qubits, i.e.
    dimensions up to a few hundred.  All operations allocate fresh results
    unless documented otherwise. *)

type t = private {
  rows : int;
  cols : int;
  re : float array;  (** row-major real parts *)
  im : float array;  (** row-major imaginary parts *)
}

val create : int -> int -> t
(** Zero matrix. *)

val identity : int -> t

val init : int -> int -> (int -> int -> Complex.t) -> t

val of_lists : Complex.t list list -> t
(** Rows as lists; all rows must have equal length. *)

val of_real_lists : float list list -> t

val get : t -> int -> int -> Complex.t
val set : t -> int -> int -> Complex.t -> unit
val copy : t -> t

val add : t -> t -> t
val sub : t -> t -> t
val scale : Complex.t -> t -> t
val scale_re : float -> t -> t
val mul : t -> t -> t
(** Matrix product; dimension mismatch raises [Invalid_argument]. *)

val kron : t -> t -> t
(** Kronecker (tensor) product. *)

val adjoint : t -> t
(** Conjugate transpose. *)

val transpose : t -> t
val conj : t -> t

val trace : t -> Complex.t

val frobenius_norm : t -> float

val max_abs_diff : t -> t -> float
(** Largest entrywise modulus of the difference; [infinity] on shape
    mismatch. *)

val approx_equal : ?tol:float -> t -> t -> bool
(** Entrywise comparison with tolerance (default [1e-9]). *)

val is_hermitian : ?tol:float -> t -> bool

val sandwich : t -> t -> t
(** [sandwich u rho] is [u * rho * u†] — the unitary/Kraus conjugation used
    throughout the density-matrix simulator. *)

val ptrace : keep:int list -> nqubits:int -> t -> t
(** [ptrace ~keep ~nqubits rho] traces out all qubits not in [keep] from a
    [2^nqubits] square density matrix.  Qubit 0 is the most significant bit of
    the index.  The result orders the kept qubits as listed. *)

val embed_unitary : nqubits:int -> targets:int list -> t -> t
(** [embed_unitary ~nqubits ~targets u] lifts a [2^k]-dim unitary acting on
    [targets] (in the given order; qubit 0 = most significant) to the full
    [2^nqubits] space. *)

val pp : Format.formatter -> t -> unit
