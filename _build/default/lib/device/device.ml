type role = Compute | Storage
type gate_set = Arbitrary | Swap_only

type t = {
  name : string;
  role : role;
  t1 : float;
  t2 : float;
  readout_time : float option;
  gate_set : gate_set;
  gate_error : float;
  gate_time : float;
  connectivity : int;
  capacity : int;
  control_lines : int;
  footprint_mm2 : float;
  notes : string;
}

let fixed_frequency_qubit =
  { name = "fixed-frequency qubit";
    role = Compute;
    t1 = 300e-6;
    t2 = 550e-6;
    readout_time = Some 1e-6;
    gate_set = Arbitrary;
    gate_error = 1e-3;
    gate_time = 100e-9;
    connectivity = 4;
    capacity = 1;
    control_lines = 1;  (* charge drive; readout line added per cell flag *)
    footprint_mm2 = 4.;
    notes = "e.g. transmon" }

let flux_tunable_qubit =
  { name = "flux-tunable qubit";
    role = Compute;
    t1 = 800e-6;
    t2 = 200e-6;
    readout_time = Some 1e-6;
    gate_set = Arbitrary;
    gate_error = 1e-3;
    gate_time = 100e-9;
    connectivity = 4;
    capacity = 1;
    control_lines = 2;  (* charge + flux; readout line added per cell flag *)
    footprint_mm2 = 4.;
    notes = "e.g. fluxonium" }

let memory_3d =
  { name = "3D quantum memory";
    role = Storage;
    t1 = 25e-3;
    t2 = 30e-3;
    readout_time = None;
    gate_set = Swap_only;
    gate_error = 1e-2;
    gate_time = 1e-6;
    connectivity = 1;
    capacity = 1;
    control_lines = 0;
    footprint_mm2 = 50. *. 0.5;
    notes = "requires 2D/3D integration" }

let multimode_resonator_3d =
  { name = "3D multimode resonator";
    role = Storage;
    t1 = 2e-3;
    t2 = 2.5e-3;
    readout_time = None;
    gate_set = Swap_only;
    gate_error = 1e-2;
    gate_time = 400e-9;
    connectivity = 1;
    capacity = 10;
    control_lines = 0;
    footprint_mm2 = 100. *. 100.;
    notes = "10 modes; requires 2D/3D integration" }

let on_chip_resonator =
  { name = "on-chip multimode resonator";
    role = Storage;
    t1 = 1e-3;
    t2 = 1e-3;
    readout_time = None;
    gate_set = Swap_only;
    gate_error = 1e-2;
    gate_time = 100e-9;
    connectivity = 1;
    capacity = 10;
    control_lines = 0;
    footprint_mm2 = 25.;
    notes = "projected; no demonstration yet" }

let catalog =
  [ fixed_frequency_qubit; flux_tunable_qubit; memory_3d; multimode_resonator_3d;
    on_chip_resonator ]

let compute_devices = List.filter (fun d -> d.role = Compute) catalog
let storage_devices = List.filter (fun d -> d.role = Storage) catalog

let with_coherence d ~t1 ~t2 = { d with t1; t2 }

let idle_error d ~dt =
  1. -. (exp (-.dt /. d.t1) *. exp (-.dt /. d.t2))

let validate d =
  if d.t1 <= 0. || d.t2 <= 0. then invalid_arg "Device.validate: non-positive coherence";
  if d.t2 > 2. *. d.t1 +. 1e-12 then invalid_arg "Device.validate: T2 > 2*T1";
  if d.gate_error < 0. || d.gate_error > 1. then invalid_arg "Device.validate: gate error";
  if d.gate_time <= 0. then invalid_arg "Device.validate: gate time";
  if d.connectivity < 1 then invalid_arg "Device.validate: connectivity";
  if d.capacity < 1 then invalid_arg "Device.validate: capacity";
  (match d.readout_time with
  | Some t when t <= 0. -> invalid_arg "Device.validate: readout time"
  | _ -> ());
  if d.footprint_mm2 <= 0. then invalid_arg "Device.validate: footprint"

let pp fmt d =
  Format.fprintf fmt "%s (%s): T1=%.3gms T2=%.3gms gate %.0fns@%.0e conn=%d cap=%d"
    d.name
    (match d.role with Compute -> "compute" | Storage -> "storage")
    (d.t1 *. 1e3) (d.t2 *. 1e3) (d.gate_time *. 1e9) d.gate_error d.connectivity
    d.capacity

let table_rows () =
  List.map
    (fun d ->
      [ d.name;
        Printf.sprintf "%g/%g ms" (d.t1 *. 1e3) (d.t2 *. 1e3);
        (match d.readout_time with
        | Some t -> Printf.sprintf "%g us" (t *. 1e6)
        | None -> "N/A");
        (match d.gate_set with Arbitrary -> "Arb. 1Q/2Q" | Swap_only -> "SWAP");
        Printf.sprintf "%.0e (%gns)" d.gate_error (d.gate_time *. 1e9);
        string_of_int d.connectivity;
        string_of_int d.capacity;
        string_of_int d.control_lines;
        Printf.sprintf "%g mm^2" d.footprint_mm2;
        d.notes ])
    catalog
