(** Superconducting device catalog (paper Table 1).

    Devices are the atomic layer of the HetArch hierarchy: each offers
    storage and/or gate operations characterized by coherence times, gate
    speed and fidelity, connectivity, control overhead, and footprint.
    Standard cells are assembled from these records and inherit their costs. *)

type role = Compute | Storage
(** The paper's central grouping: compute devices have fast high-fidelity
    gates and high connectivity; storage devices have long coherence and
    multi-qubit capacity behind a single port. *)

type gate_set = Arbitrary | Swap_only

type t = {
  name : string;
  role : role;
  t1 : float;  (** amplitude-damping time, seconds *)
  t2 : float;  (** phase coherence time, seconds *)
  readout_time : float option;  (** None: no direct readout (resonators) *)
  gate_set : gate_set;
  gate_error : float;  (** typical error of the native gate *)
  gate_time : float;  (** duration of the native (1Q/2Q or SWAP) gate *)
  connectivity : int;  (** maximum couplings (DR1/DR2 inputs) *)
  capacity : int;  (** qubits stored (modes); 1 for planar qubits *)
  control_lines : int;  (** control overhead: drive/flux/readout lines *)
  footprint_mm2 : float;  (** planar footprint in mm^2 *)
  notes : string;
}

val fixed_frequency_qubit : t
(** Transmon-like: 300 us / 550 us, 1 us readout, 1e-3 gates @ 100 ns,
    connectivity 4. *)

val flux_tunable_qubit : t
(** Fluxonium-like: 800 us / 200 us, extra flux line. *)

val memory_3d : t
(** 3D quantum memory: 25 ms / 30 ms, SWAP-only access. *)

val multimode_resonator_3d : t
(** 10-mode 3D resonator: 2 ms / 2.5 ms, 400 ns SWAP at 1e-2. *)

val on_chip_resonator : t
(** Projected on-chip multimode resonator: 1 ms / 1 ms, 100 ns SWAP. *)

val catalog : t list
(** The five rows of Table 1, in order. *)

val compute_devices : t list
val storage_devices : t list

val with_coherence : t -> t1:float -> t2:float -> t
(** Derived device with modified coherence (used by the DSE sweeps, which
    vary Ts and Tc around the catalog values). *)

val idle_error : t -> dt:float -> float
(** Probability that a stored qubit decoheres (either amplitude or phase
    channel fires) while idling for [dt]: 1 - exp(-dt/T1) * exp(-dt/T2). *)

val validate : t -> unit
(** Physicality checks (T2 <= 2 T1, non-negative fields). *)

val pp : Format.formatter -> t -> unit

val table_rows : unit -> string list list
(** Rows for the Table-1 reproduction harness. *)
