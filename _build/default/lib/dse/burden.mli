(** Hierarchical-vs-flat simulation burden accounting (paper §1/§2: the DSE
    framework "reduces the simulation burden by a factor of 10^4 or more").

    A flat device-level density-matrix simulation of a module costs
    (2^n)^3 in its total qubit count n; the hierarchical methodology pays
    only the sum of per-cell characterizations plus a module-level model
    whose cost is negligible in comparison. *)

val module_qubits : Cell.t list -> int
(** Total qubit capacity of a module's cells. *)

val flat_cost : Cell.t list -> float
(** (2^n)^3 for the whole module. *)

val active_qubits : Cell.t -> int
(** Dimension actually simulated when characterizing the cell: gate
    participants and Choi references; idle storage modes factor out. *)

val hierarchical_cost : Cell.t list -> float
(** Sum over cells of (2^active)^3 — one characterization each. *)

val reduction : Cell.t list -> float
(** flat / hierarchical. *)

val distillation_module : unit -> Cell.t list
(** The §4.1 module: two input Registers, one ParCheck, one output
    Register. *)

val uec_module : unit -> Cell.t list
(** The §4.2.2 module: one USC. *)

val ct_module : unit -> Cell.t list
(** The §4.3 module: distillation + two CAT generators (SeqOp) + two UECs. *)
