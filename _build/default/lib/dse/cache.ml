type 'v t = {
  table : (string, 'v) Hashtbl.t;
  mutable hits : int;
  mutable misses : int;
  mutable paid : float;
  mutable avoided : float;
}

let create () = { table = Hashtbl.create 64; hits = 0; misses = 0; paid = 0.; avoided = 0. }

let cube dim = float_of_int dim ** 3.

let find_or_compute t ~key ~dim f =
  match Hashtbl.find_opt t.table key with
  | Some v ->
      t.hits <- t.hits + 1;
      t.avoided <- t.avoided +. cube dim;
      v
  | None ->
      t.misses <- t.misses + 1;
      t.paid <- t.paid +. cube dim;
      let v = f () in
      Hashtbl.add t.table key v;
      v

let hits t = t.hits
let misses t = t.misses
let cost_paid t = t.paid
let cost_avoided t = t.avoided

let burden_reduction ~naive_dim t =
  if t.paid <= 0. then infinity else cube naive_dim /. t.paid
