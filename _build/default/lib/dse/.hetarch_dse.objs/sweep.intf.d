lib/dse/sweep.mli:
