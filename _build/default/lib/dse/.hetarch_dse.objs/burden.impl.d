lib/dse/burden.ml: Cell List
