lib/dse/burden.mli: Cell
