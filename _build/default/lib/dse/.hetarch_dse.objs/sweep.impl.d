lib/dse/sweep.ml: List
