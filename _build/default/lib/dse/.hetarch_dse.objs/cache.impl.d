lib/dse/cache.ml: Hashtbl
