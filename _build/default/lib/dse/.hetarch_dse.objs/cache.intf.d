lib/dse/cache.mli:
