test/test_layout.mli:
