test/test_repeater.ml: Alcotest Array Bell_pair Cmat Complex Dm Gate List Printf Repeater Rng
