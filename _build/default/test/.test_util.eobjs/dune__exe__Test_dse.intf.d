test/test_dse.mli:
