test/test_distill.ml: Alcotest Array Bell_pair Channel Cmat Complex Distill_module Dm Ep_source Float Gate List Printf QCheck QCheck_alcotest Rng
