test/test_device.ml: Alcotest Device Float List Printf
