test/test_teleport.mli:
