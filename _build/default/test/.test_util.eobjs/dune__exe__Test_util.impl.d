test/test_util.ml: Alcotest Array Bitvec Float Fun Gen Heap List Plot Printf QCheck QCheck_alcotest Rng Stats String Tableio Union_find
