test/test_uec.ml: Alcotest Array Code Codes Float List Printf Rng Schedule String Uec
