test/test_linalg.ml: Alcotest Cmat Complex Float Gate List QCheck QCheck_alcotest
