test/test_dem.mli:
