test/test_qsim.mli:
