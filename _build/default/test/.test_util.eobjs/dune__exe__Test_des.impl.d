test/test_des.ml: Alcotest Des List
