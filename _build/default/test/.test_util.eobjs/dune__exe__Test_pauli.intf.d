test/test_pauli.mli:
