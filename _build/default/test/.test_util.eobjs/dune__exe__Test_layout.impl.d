test/test_layout.ml: Alcotest Array Grid List QCheck QCheck_alcotest Router
