test/test_des.mli:
