test/test_uec.mli:
