test/test_qec.mli:
