test/test_dse.ml: Alcotest Burden Cache Cell Float List QCheck QCheck_alcotest Sweep
