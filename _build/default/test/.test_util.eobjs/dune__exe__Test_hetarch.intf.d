test/test_hetarch.mli:
