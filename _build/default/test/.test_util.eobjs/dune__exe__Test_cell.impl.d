test/test_cell.ml: Alcotest Array Cell Characterize Design_rules Device Float List Printf Rng
