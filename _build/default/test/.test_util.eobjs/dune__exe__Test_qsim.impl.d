test/test_qsim.ml: Alcotest Channel Cmat Complex Dm Float Gate List Printf QCheck QCheck_alcotest Rng Sv
