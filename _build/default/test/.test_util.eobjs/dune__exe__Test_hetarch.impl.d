test/test_hetarch.ml: Alcotest Hetarch Hierarchy List String
