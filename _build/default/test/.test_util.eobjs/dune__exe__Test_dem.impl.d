test/test_dem.ml: Alcotest Array Bitvec Circuit Dem Dem_graph Float Frame List Printf Rng Surface_circuit
