test/test_distill.mli:
