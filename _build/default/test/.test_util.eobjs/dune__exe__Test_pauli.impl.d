test/test_pauli.ml: Alcotest Array Bitvec Circuit Cmat Complex Dm Float Frame Gate List Pauli Printf QCheck QCheck_alcotest Rng String Tableau
