test/test_qec.ml: Alcotest Array Bitvec Circuit Code Codes Decoder_lookup Decoder_match Decoder_uf Dem Float Frame List Pauli Printf Rng Stab_circuit String Surface_circuit Tableau Threshold Uec
