test/test_repeater.mli:
