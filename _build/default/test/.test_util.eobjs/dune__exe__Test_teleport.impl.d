test/test_teleport.ml: Alcotest Cat_sim Codes Ct_protocol Float List Printf Rng Teleport
