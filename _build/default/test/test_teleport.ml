(* Tests for the code-teleportation module (§4.3). *)

let shots = 400

let test_breakdown_fields_sane () =
  let b =
    Teleport.heterogeneous ~code_a:(Codes.surface 3) ~code_b:Codes.steane ~ts:10e-3
      ~shots (Rng.create 1)
  in
  List.iter
    (fun (name, v) ->
      Alcotest.(check bool) (name ^ " in [0,1]") true (v >= 0. && v <= 1.))
    [ ("e_ep", b.Teleport.e_ep); ("e_cat", b.Teleport.e_cat);
      ("e_plus_a", b.Teleport.e_plus_a); ("e_plus_b", b.Teleport.e_plus_b);
      ("e_meas", b.Teleport.e_meas); ("total", b.Teleport.total) ];
  Alcotest.(check bool) "total >= largest component" true
    (b.Teleport.total >= b.Teleport.e_cat -. 1e-9)

let test_ep_target_met_heterogeneous () =
  let b =
    Teleport.heterogeneous ~code_a:(Codes.surface 3) ~code_b:(Codes.surface 4)
      ~ts:12.5e-3 ~shots (Rng.create 2)
  in
  Alcotest.(check bool)
    (Printf.sprintf "e_ep %.4f <= 0.005 at Ts=12.5ms" b.Teleport.e_ep)
    true
    (b.Teleport.e_ep <= 0.0051)

let test_total_decreases_with_ts () =
  let total ts =
    (Teleport.heterogeneous ~code_a:(Codes.surface 3) ~code_b:Codes.reed_muller_15
       ~ts ~shots (Rng.create 3))
      .Teleport.total
  in
  let low = total 1e-3 and high = total 50e-3 in
  Alcotest.(check bool)
    (Printf.sprintf "Ts=50ms (%.3f) < Ts=1ms (%.3f)" high low)
    true (high < low)

let test_het_beats_hom_every_pair () =
  (* Table 4's headline: heterogeneous wins every pair studied. *)
  let results =
    Teleport.table4
      ~codes:[ Codes.steane; Codes.surface 3 ]
      ~ts:50e-3 ~shots (Rng.create 4)
  in
  Alcotest.(check int) "two ordered pairs" 2 (List.length results);
  List.iter
    (fun (a, b, het, hom) ->
      Alcotest.(check bool)
        (Printf.sprintf "%s->%s het %.3f < hom %.3f" a b het hom)
        true (het < hom))
    results

let test_bigger_codes_cost_more () =
  let total code_b =
    (Teleport.heterogeneous ~code_a:(Codes.surface 3) ~code_b ~ts:50e-3 ~shots
       (Rng.create 5))
      .Teleport.total
  in
  let small = total Codes.steane in
  let large = total Codes.reed_muller_15 in
  Alcotest.(check bool)
    (Printf.sprintf "RM (%.3f) costs more than Steane (%.3f)" large small)
    true (large > small)

let test_table4_excludes_diagonal () =
  let results =
    Teleport.table4 ~codes:Codes.paper_codes ~ts:50e-3 ~shots:100 (Rng.create 6)
  in
  Alcotest.(check int) "20 ordered pairs" 20 (List.length results);
  List.iter
    (fun (a, b, _, _) -> Alcotest.(check bool) "no self pair" true (a <> b))
    results

let test_cat_sim_noiseless () =
  let r = Cat_sim.run ~n:6 ~p2:0. ~t_coh:1e6 ~shots:200 (Rng.create 7) in
  Alcotest.(check (float 1e-9)) "always accepts" 1. r.Cat_sim.accept_rate;
  Alcotest.(check (float 1e-9)) "never errs" 0. r.Cat_sim.error_given_accept

let test_cat_sim_noise_reduces_acceptance () =
  let noisy = Cat_sim.run ~n:12 ~p2:2e-2 ~t_coh:0.5e-3 ~shots:2000 (Rng.create 8) in
  Alcotest.(check bool) "acceptance drops" true (noisy.Cat_sim.accept_rate < 0.99);
  Alcotest.(check bool) "undetected errors exist" true
    (noisy.Cat_sim.error_given_accept > 0.)

let test_cat_sim_verification_helps () =
  let without = Cat_sim.run ~n:12 ~p2:1e-2 ~t_coh:0.5e-3 ~verify_checks:0 ~shots:4000 (Rng.create 9) in
  let with_v = Cat_sim.run ~n:12 ~p2:1e-2 ~t_coh:0.5e-3 ~verify_checks:3 ~shots:4000 (Rng.create 9) in
  Alcotest.(check bool)
    (Printf.sprintf "verified %.4f < unverified %.4f" with_v.Cat_sim.error_given_accept
       without.Cat_sim.error_given_accept)
    true
    (with_v.Cat_sim.error_given_accept < without.Cat_sim.error_given_accept)

let test_cat_sim_size_scaling () =
  let small = Cat_sim.run ~n:6 ~p2:1e-2 ~t_coh:0.5e-3 ~shots:3000 (Rng.create 10) in
  let large = Cat_sim.run ~n:24 ~p2:1e-2 ~t_coh:0.5e-3 ~shots:3000 (Rng.create 10) in
  Alcotest.(check bool) "bigger CAT errs more" true
    (large.Cat_sim.error_given_accept > small.Cat_sim.error_given_accept)

(* ------------------------------------------------------------- protocol *)

let test_protocol_characterize () =
  let st =
    Ct_protocol.characterize ~code_a:(Codes.surface 3) ~code_b:Codes.steane ~ts:12.5e-3
      (Rng.create 11)
  in
  Alcotest.(check bool) "ep period finite" true (st.Ct_protocol.ep_period < 1e-3);
  Alcotest.(check bool) "cat time positive" true (st.Ct_protocol.cat_time > 0.);
  Alcotest.(check int) "eps needed" 3 st.Ct_protocol.eps_needed;
  Alcotest.(check bool) "plus prep slower than cat" true
    (st.Ct_protocol.plus_time_a > st.Ct_protocol.cat_time)

let test_protocol_produces () =
  let st =
    Ct_protocol.characterize ~code_a:(Codes.surface 3) ~code_b:Codes.steane ~ts:12.5e-3
      (Rng.create 12)
  in
  let r = Ct_protocol.run st (Rng.create 13) ~horizon:5e-3 in
  Alcotest.(check bool) (Printf.sprintf "produced %d" r.Ct_protocol.produced) true
    (r.Ct_protocol.produced > 10);
  Alcotest.(check bool) "latency sane" true
    (r.Ct_protocol.mean_latency > 0. && r.Ct_protocol.mean_latency <= r.Ct_protocol.max_latency)

let test_protocol_latency_exceeds_stage_sum () =
  (* Latency must cover at least the critical path. *)
  let st =
    Ct_protocol.characterize ~code_a:(Codes.surface 3) ~code_b:(Codes.surface 4)
      ~ts:12.5e-3 (Rng.create 14)
  in
  let r = Ct_protocol.run st (Rng.create 15) ~horizon:5e-3 in
  let critical =
    Float.max st.Ct_protocol.cat_time
      (Float.max st.Ct_protocol.plus_time_a st.Ct_protocol.plus_time_b)
    +. st.Ct_protocol.transversal_time +. st.Ct_protocol.meas_time
  in
  Alcotest.(check bool)
    (Printf.sprintf "mean latency %.1fus >= critical path %.1fus"
       (r.Ct_protocol.mean_latency *. 1e6) (critical *. 1e6))
    true
    (r.Ct_protocol.mean_latency >= critical)

let test_protocol_dead_ep_source () =
  let st =
    { Ct_protocol.ep_period = infinity; eps_needed = 2; cat_time = 1e-6;
      plus_time_a = 1e-6; plus_time_b = 1e-6; transversal_time = 1e-6;
      meas_time = 1e-6 }
  in
  let r = Ct_protocol.run st (Rng.create 16) ~horizon:1e-3 in
  Alcotest.(check int) "nothing produced" 0 r.Ct_protocol.produced

let () =
  Alcotest.run "teleport"
    [ ( "module",
        [ Alcotest.test_case "breakdown sane" `Quick test_breakdown_fields_sane;
          Alcotest.test_case "EP target met" `Slow test_ep_target_met_heterogeneous;
          Alcotest.test_case "Ts trend" `Slow test_total_decreases_with_ts;
          Alcotest.test_case "het beats hom" `Slow test_het_beats_hom_every_pair;
          Alcotest.test_case "code size cost" `Slow test_bigger_codes_cost_more;
          Alcotest.test_case "table4 pairs" `Slow test_table4_excludes_diagonal ] );
      ( "cat sim",
        [ Alcotest.test_case "noiseless" `Quick test_cat_sim_noiseless;
          Alcotest.test_case "noise reduces acceptance" `Quick test_cat_sim_noise_reduces_acceptance;
          Alcotest.test_case "verification helps" `Slow test_cat_sim_verification_helps;
          Alcotest.test_case "size scaling" `Slow test_cat_sim_size_scaling ] );
      ( "protocol",
        [ Alcotest.test_case "characterize" `Quick test_protocol_characterize;
          Alcotest.test_case "produces" `Quick test_protocol_produces;
          Alcotest.test_case "latency bound" `Quick test_protocol_latency_exceeds_stage_sum;
          Alcotest.test_case "dead source" `Quick test_protocol_dead_ep_source ] ) ]
