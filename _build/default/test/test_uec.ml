(* Tests for the universal error-correction module (§4.2.2). *)

let shots = 800

let test_het_profile_shapes () =
  let code = Codes.steane in
  let prof = Uec.profile (Uec.Het { ts = 10e-3 }) code in
  Alcotest.(check int) "assignment per qubit" code.Code.n
    (Array.length prof.Uec.assignment);
  Array.iter
    (fun r -> Alcotest.(check bool) "register id valid" true (r = 0 || r = 1))
    prof.Uec.assignment;
  Alcotest.(check bool) "round time positive" true (prof.Uec.round_time > 0.);
  (* serialized: round time at least nstabs * readout *)
  Alcotest.(check bool) "serialization dominates" true
    (prof.Uec.round_time >= float_of_int (Code.num_stabs code) *. 1e-6)

let test_het_respects_register_capacity () =
  let code = Codes.color_17 in
  let prof = Uec.profile (Uec.Het { ts = 10e-3 }) code in
  let count r = Array.fold_left (fun acc x -> if x = r then acc + 1 else acc) 0 prof.Uec.assignment in
  Alcotest.(check bool) "register 0 within capacity" true (count 0 <= 10);
  Alcotest.(check bool) "register 1 within capacity" true (count 1 <= 10)

let test_hom_planar_fast_round () =
  let het = Uec.profile (Uec.Het { ts = 10e-3 }) (Codes.surface 3) in
  let hom = Uec.profile Uec.Hom (Codes.surface 3) in
  Alcotest.(check bool) "hom parallel round much shorter" true
    (hom.Uec.round_time < het.Uec.round_time /. 4.)

let test_hom_nonplanar_pays_routing () =
  let planar = Uec.profile Uec.Hom (Codes.surface 3) in
  let nonplanar = Uec.profile Uec.Hom Codes.reed_muller_15 in
  let total_gates p = Array.fold_left ( + ) 0 p.Uec.gates_2q in
  (* RM has 88 check incidences vs SC3's 24; routing should inflate well
     beyond that ratio. *)
  Alcotest.(check bool) "routing inflates gate count" true
    (total_gates nonplanar > 3 * total_gates planar)

let test_gate_counts_het () =
  let code = Codes.steane in
  let prof = Uec.profile (Uec.Het { ts = 10e-3 }) code in
  (* each qubit participates once per check containing it *)
  Array.iteri
    (fun q g ->
      let expected =
        Array.fold_left
          (fun acc s -> if Array.mem q s then acc + 1 else acc)
          0
          (Array.append code.Code.z_stabs code.Code.x_stabs)
      in
      Alcotest.(check int) (Printf.sprintf "qubit %d" q) expected g)
    prof.Uec.gates_2q

let test_logical_rate_zero_noise () =
  let params =
    { Uec.default_params with p2 = 0.; tc = 1e6 }
  in
  let prof = Uec.profile ~params (Uec.Het { ts = 1e6 }) Codes.steane in
  let rate = Uec.logical_error_rate ~params prof ~rounds:5 ~shots:200 (Rng.create 1) in
  Alcotest.(check (float 1e-9)) "no noise, no failures" 0. rate

let test_logical_rate_monotone_in_p2 () =
  let rate p2 =
    let params = { Uec.default_params with p2 } in
    let prof = Uec.profile ~params (Uec.Het { ts = 50e-3 }) Codes.steane in
    Uec.logical_error_rate ~params prof ~rounds:3 ~shots:2000 (Rng.create 2)
  in
  let r1 = rate 2e-3 and r2 = rate 2e-2 in
  Alcotest.(check bool) (Printf.sprintf "monotone (%.4f < %.4f)" r1 r2) true (r1 < r2)

let test_fig9_improves_with_ts () =
  let code = Codes.color_17 in
  let low = Uec.fig9_point ~code ~ts:0.5e-3 ~shots (Rng.create 3) in
  let high = Uec.fig9_point ~code ~ts:50e-3 ~shots (Rng.create 3) in
  Alcotest.(check bool)
    (Printf.sprintf "Ts=50ms (%.4f) beats Ts=0.5ms (%.4f)" high low)
    true (high < low)

let test_table3_nonplanar_reduction () =
  List.iter
    (fun code ->
      let het, hom, red = Uec.table3_row ~code ~ts:50e-3 ~shots (Rng.create 4) in
      Alcotest.(check bool)
        (Printf.sprintf "%s: het %.4f hom %.4f" code.Code.name het hom)
        true
        (red > 1.5))
    [ Codes.reed_muller_15; Codes.color_17; Codes.steane ]

let test_table3_surface_no_big_win () =
  (* The paper's surface codes favor the homogeneous lattice; at minimum the
     heterogeneous module must show no large advantage. *)
  let _, _, red = Uec.table3_row ~code:(Codes.surface 3) ~ts:50e-3 ~shots (Rng.create 5) in
  Alcotest.(check bool) (Printf.sprintf "reduction %.2f <= 1.5" red) true (red <= 1.5)

let test_two_registers_pipeline_faster () =
  List.iter
    (fun code ->
      let t1 = Uec.round_time_with_registers code ~registers:1 in
      let t2 = Uec.round_time_with_registers code ~registers:2 in
      Alcotest.(check bool)
        (Printf.sprintf "%s: %.1fus vs %.1fus" code.Code.name (t1 *. 1e6) (t2 *. 1e6))
        true (t2 < t1))
    Codes.paper_codes

let test_usc_ext_three_registers () =
  (* Codes beyond 20 qubits chain a USC-EXT: SC5's 25 data qubits spread over
     three 10-mode registers (paper §4.2.2: 1D-partitionable codes). *)
  let code = Codes.surface 5 in
  let prof = Uec.profile (Uec.Het { ts = 50e-3 }) code in
  let max_reg = Array.fold_left max 0 prof.Uec.assignment in
  Alcotest.(check int) "three registers" 2 max_reg;
  let counts = Array.make 3 0 in
  Array.iter (fun r -> counts.(r) <- counts.(r) + 1) prof.Uec.assignment;
  Array.iter (fun c -> Alcotest.(check bool) "capacity" true (c <= 10)) counts;
  let rate = Uec.logical_error_rate prof ~rounds:3 ~shots:400 (Rng.create 21) in
  Alcotest.(check bool) (Printf.sprintf "rate %.4f sane" rate) true
    (rate > 0. && rate < 0.5)

let test_bias_favors_shor () =
  (* Under X-dominated noise the Shor code's six bit-flip checks beat the
     Steane code; the ordering flips nowhere near unbiased noise. *)
  let rate code eta =
    let params = { Uec.default_params with eta } in
    let prof = Uec.profile ~params (Uec.Het { ts = 50e-3 }) code in
    Uec.logical_error_rate ~params prof ~rounds:3 ~shots:4000 (Rng.create 31)
  in
  let shor_x = rate Codes.shor 0.1 and steane_x = rate Codes.steane 0.1 in
  Alcotest.(check bool)
    (Printf.sprintf "X-biased: shor %.4f < steane %.4f" shor_x steane_x)
    true (shor_x < steane_x)

let test_bias_split_conserves () =
  (* eta only redistributes the error budget. *)
  let total eta =
    let params = { Uec.default_params with eta } in
    let prof = Uec.profile ~params (Uec.Het { ts = 50e-3 }) Codes.steane in
    ignore prof;
    ()
  in
  total 0.5;
  total 2.0

let test_rejects_bad_args () =
  let prof = Uec.profile (Uec.Het { ts = 1e-3 }) Codes.steane in
  Alcotest.(check bool) "rounds >= 1" true
    (try
       ignore (Uec.logical_error_rate prof ~rounds:0 ~shots:1 (Rng.create 1));
       false
     with Invalid_argument _ -> true)

(* -------------------------------------------------------------- schedule *)

let test_schedule_validates_and_tracks_analytic () =
  List.iter
    (fun code ->
      let prof = Uec.profile (Uec.Het { ts = 10e-3 }) code in
      let s = Schedule.of_uec_round code ~assignment:prof.Uec.assignment in
      Schedule.validate s;
      let slack =
        float_of_int (Code.num_stabs code) *. 2. *. Uec.default_params.Uec.t_swap
      in
      Alcotest.(check bool)
        (Printf.sprintf "%s: schedule %.2fus vs analytic %.2fus" code.Code.name
           (s.Schedule.makespan *. 1e6) (prof.Uec.round_time *. 1e6))
        true
        (Float.abs (s.Schedule.makespan -. prof.Uec.round_time) <= slack))
    Codes.paper_codes

let test_schedule_op_counts () =
  let code = Codes.steane in
  let prof = Uec.profile (Uec.Het { ts = 10e-3 }) code in
  let s = Schedule.of_uec_round code ~assignment:prof.Uec.assignment in
  let count pred = List.length (List.filter pred s.Schedule.ops) in
  let incidences =
    Array.fold_left (fun acc st -> acc + Array.length st) 0
      (Array.append code.Code.z_stabs code.Code.x_stabs)
  in
  Alcotest.(check int) "one CX per incidence" incidences
    (count (fun op -> match op.Schedule.kind with Schedule.Cx _ -> true | _ -> false));
  Alcotest.(check int) "one readout per check" (Code.num_stabs code)
    (count (fun op -> op.Schedule.kind = Schedule.Readout));
  Alcotest.(check int) "swap out = swap in" 
    (count (fun op -> match op.Schedule.kind with Schedule.Swap_out _ -> true | _ -> false))
    (count (fun op -> match op.Schedule.kind with Schedule.Swap_in _ -> true | _ -> false))

let test_schedule_ancilla_is_bottleneck () =
  let code = Codes.color_17 in
  let prof = Uec.profile (Uec.Het { ts = 10e-3 }) code in
  let s = Schedule.of_uec_round code ~assignment:prof.Uec.assignment in
  let anc = Schedule.busy_fraction s "anc" in
  List.iter
    (fun r ->
      if r <> "anc" then
        Alcotest.(check bool)
          (Printf.sprintf "anc (%.2f) busier than %s (%.2f)" anc r
             (Schedule.busy_fraction s r))
          true
          (anc > Schedule.busy_fraction s r))
    (Schedule.resources s)

let test_schedule_validate_rejects_overlap () =
  let bad =
    { Schedule.ops =
        [ { Schedule.kind = Schedule.Readout; start = 0.; finish = 2.;
            resources = [ "anc" ]; label = "a" };
          { Schedule.kind = Schedule.Readout; start = 1.; finish = 3.;
            resources = [ "anc" ]; label = "b" } ];
      makespan = 3. }
  in
  Alcotest.(check bool) "overlap rejected" true
    (try
       Schedule.validate bad;
       false
     with Invalid_argument _ -> true)

let test_schedule_render_and_csv () =
  let code = Codes.surface 3 in
  let prof = Uec.profile (Uec.Het { ts = 10e-3 }) code in
  let s = Schedule.of_uec_round code ~assignment:prof.Uec.assignment in
  Alcotest.(check bool) "render nonempty" true (String.length (Schedule.render s) > 100);
  let csv = Schedule.to_csv s in
  Alcotest.(check int) "csv rows = ops + header"
    (List.length s.Schedule.ops + 1)
    (List.length (String.split_on_char '\n' csv))

let () =
  Alcotest.run "uec"
    [ ( "profiles",
        [ Alcotest.test_case "het shapes" `Quick test_het_profile_shapes;
          Alcotest.test_case "register capacity" `Quick test_het_respects_register_capacity;
          Alcotest.test_case "hom planar round" `Quick test_hom_planar_fast_round;
          Alcotest.test_case "hom routing cost" `Quick test_hom_nonplanar_pays_routing;
          Alcotest.test_case "gate counts" `Quick test_gate_counts_het ] );
      ( "monte carlo",
        [ Alcotest.test_case "zero noise" `Quick test_logical_rate_zero_noise;
          Alcotest.test_case "monotone in p2" `Slow test_logical_rate_monotone_in_p2;
          Alcotest.test_case "fig9 Ts trend" `Slow test_fig9_improves_with_ts;
          Alcotest.test_case "table3 nonplanar" `Slow test_table3_nonplanar_reduction;
          Alcotest.test_case "table3 surface" `Slow test_table3_surface_no_big_win;
          Alcotest.test_case "bad args" `Quick test_rejects_bad_args;
          Alcotest.test_case "register pipelining" `Quick test_two_registers_pipeline_faster;
          Alcotest.test_case "usc-ext three registers" `Slow test_usc_ext_three_registers;
          Alcotest.test_case "bias favors shor" `Slow test_bias_favors_shor;
          Alcotest.test_case "bias split" `Quick test_bias_split_conserves ] );
      ( "schedule",
        [ Alcotest.test_case "validates + tracks analytic" `Quick
            test_schedule_validates_and_tracks_analytic;
          Alcotest.test_case "op counts" `Quick test_schedule_op_counts;
          Alcotest.test_case "ancilla bottleneck" `Quick test_schedule_ancilla_is_bottleneck;
          Alcotest.test_case "rejects overlap" `Quick test_schedule_validate_rejects_overlap;
          Alcotest.test_case "render + csv" `Quick test_schedule_render_and_csv ] ) ]
