(* Tests for the facade: module hierarchies and the experiment index. *)

let test_hierarchies_validate () =
  List.iter Hierarchy.validate
    [ Hierarchy.distillation ();
      Hierarchy.surface_code_memory 3;
      Hierarchy.universal_error_correction ();
      Hierarchy.code_teleportation () ]

let test_distillation_structure () =
  let t = Hierarchy.distillation () in
  Alcotest.(check int) "four cells" 4 (List.length (Hierarchy.cells t));
  Alcotest.(check int) "device count" 8 (Hierarchy.device_count t);
  (* 3 registers x 11 + parcheck x 2 *)
  Alcotest.(check int) "qubit capacity" 35 (Hierarchy.qubit_capacity t)

let test_surface_memory_structure () =
  let t = Hierarchy.surface_code_memory 3 in
  (* d^2 - 1 ParCheck cells *)
  Alcotest.(check int) "8 parcheck cells" 8 (List.length (Hierarchy.cells t))

let test_ct_structure () =
  let t = Hierarchy.code_teleportation () in
  (* distillation (4) + 2 seqop + 2 usc *)
  Alcotest.(check int) "eight cells" 8 (List.length (Hierarchy.cells t));
  Alcotest.(check bool) "capacity covers 30-qubit codes twice" true
    (Hierarchy.qubit_capacity t >= 60)

let test_footprint_and_control () =
  let t = Hierarchy.distillation () in
  Alcotest.(check bool) "positive footprint" true (Hierarchy.footprint_mm2 t > 0.);
  Alcotest.(check bool) "control lines counted" true (Hierarchy.control_lines t >= 4)

let test_render () =
  let s = Hierarchy.render (Hierarchy.distillation ()) in
  Alcotest.(check bool) "mentions module" true
    (String.length s > 0
    && String.split_on_char '\n' s |> List.exists (fun l ->
           String.length l > 0 && l.[0] = '+'))

let test_bad_distance_rejected () =
  Alcotest.(check bool) "d=1 rejected" true
    (try
       ignore (Hierarchy.surface_code_memory 1);
       false
     with Invalid_argument _ -> true)

let test_experiment_index () =
  Alcotest.(check int) "ten experiments" 10 (List.length Hetarch.experiments);
  List.iter
    (fun id ->
      match Hetarch.find_experiment id with
      | Some e -> Alcotest.(check string) "id round-trips" id e.Hetarch.id
      | None -> Alcotest.failf "experiment %s missing" id)
    [ "table1"; "table2"; "fig3"; "fig4"; "fig6"; "fig7"; "fig9"; "table3";
      "fig12"; "table4" ];
  Alcotest.(check bool) "unknown is None" true (Hetarch.find_experiment "fig99" = None)

let test_version () =
  Alcotest.(check bool) "semver-ish" true (String.length Hetarch.version >= 5)

let () =
  Alcotest.run "hetarch"
    [ ( "hierarchy",
        [ Alcotest.test_case "validate" `Quick test_hierarchies_validate;
          Alcotest.test_case "distillation" `Quick test_distillation_structure;
          Alcotest.test_case "surface memory" `Quick test_surface_memory_structure;
          Alcotest.test_case "code teleportation" `Quick test_ct_structure;
          Alcotest.test_case "footprint/control" `Quick test_footprint_and_control;
          Alcotest.test_case "render" `Quick test_render;
          Alcotest.test_case "bad distance" `Quick test_bad_distance_rejected ] );
      ( "experiments",
        [ Alcotest.test_case "index" `Quick test_experiment_index;
          Alcotest.test_case "version" `Quick test_version ] ) ]
