(* Tests for the QEC substrate: code catalog validity (including brute-force
   distance verification), decoders, the circuit-level surface-code memory
   experiment, and pseudothresholds. *)

(* ---------------------------------------------------------------- codes *)

let all_named_codes =
  [ Codes.steane; Codes.reed_muller_15; Codes.color_17; Codes.shor;
    Codes.surface 2; Codes.surface 3; Codes.surface 4; Codes.surface 5;
    Codes.repetition 3; Codes.repetition 5 ]

let test_codes_validate () =
  List.iter (fun c -> Code.validate c) all_named_codes

let test_code_parameters () =
  let check c n k stabs =
    Alcotest.(check int) (c.Code.name ^ " n") n c.Code.n;
    Alcotest.(check int) (c.Code.name ^ " k") k c.Code.k;
    Alcotest.(check int) (c.Code.name ^ " stab count") stabs (Code.num_stabs c)
  in
  check Codes.steane 7 1 6;
  check Codes.reed_muller_15 15 1 14;
  check Codes.color_17 17 1 16;
  check (Codes.surface 3) 9 1 8;
  check (Codes.surface 4) 16 1 15;
  check (Codes.surface 5) 25 1 24

let test_code_ranks () =
  (* n - k independent checks for each code. *)
  List.iter
    (fun c ->
      if not (String.length c.Code.name >= 3 && String.sub c.Code.name 0 3 = "REP") then begin
        let rx = Code.gf2_rank c.Code.x_stabs ~n:c.Code.n in
        let rz = Code.gf2_rank c.Code.z_stabs ~n:c.Code.n in
        Alcotest.(check int) (c.Code.name ^ " rank") (c.Code.n - c.Code.k) (rx + rz)
      end)
    all_named_codes

let test_code_distances () =
  List.iter
    (fun c ->
      match Code.brute_force_distance c ~max_weight:(c.Code.distance - 1) with
      | Some w ->
          Alcotest.failf "%s: found logical of weight %d < distance %d" c.Code.name w
            c.Code.distance
      | None -> (
          match Code.brute_force_distance c ~max_weight:c.Code.distance with
          | Some w -> Alcotest.(check int) (c.Code.name ^ " distance") c.Code.distance w
          | None -> Alcotest.failf "%s: no logical at claimed distance" c.Code.name))
    [ Codes.steane; Codes.reed_muller_15; Codes.color_17; Codes.shor;
      Codes.surface 2; Codes.surface 3; Codes.surface 4; Codes.surface 5 ]

let test_color17_weights () =
  let c = Codes.color_17 in
  Array.iter
    (fun s -> Alcotest.(check int) "weight 6 x" 6 (Array.length s))
    c.Code.x_stabs;
  Array.iter
    (fun s -> Alcotest.(check int) "weight 6 z" 6 (Array.length s))
    c.Code.z_stabs

let test_surface_planar_flags () =
  Alcotest.(check bool) "surface planar" true (Codes.surface 3).Code.planar;
  Alcotest.(check bool) "steane nonplanar" false Codes.steane.Code.planar;
  Alcotest.(check bool) "rm nonplanar" false Codes.reed_muller_15.Code.planar;
  Alcotest.(check bool) "17qcc nonplanar" false Codes.color_17.Code.planar

let test_by_name () =
  List.iter
    (fun (name, n) ->
      Alcotest.(check int) name n (Codes.by_name name).Code.n)
    [ ("RM", 15); ("17QCC", 17); ("ST", 7); ("SC3", 9); ("SC4", 16); ("SC7", 49);
      ("REP5", 5) ];
  Alcotest.check_raises "unknown" Not_found (fun () -> ignore (Codes.by_name "XYZ"))

let test_syndromes () =
  let c = Codes.steane in
  let s = Code.syndrome_of_x_error c [ 0 ] in
  (* qubit 0 appears only in the third check {0,2,4,6} *)
  Alcotest.(check (array int)) "single X error syndrome" [| 0; 0; 1 |] s;
  let s2 = Code.syndrome_of_x_error c [ 0; 0 ] in
  Alcotest.(check (array int)) "double error cancels" [| 0; 0; 0 |] s2

let test_stabilizers_stabilize_codewords () =
  (* Prepare logical |0> of the Steane code in the tableau simulator by
     measuring all stabilizers and correcting, then check every stabilizer
     is deterministically +1. *)
  let code = Codes.steane in
  let rng = Rng.create 7 in
  let t = Tableau.create code.Code.n in
  (* Project onto the codespace: measure each X stabilizer via ancilla-free
     trick — apply the stabilizer measurement by measuring the Pauli through
     stabilizer_expectation after projecting with H/CX circuits is complex;
     instead measure data in Z (already +1 for Z stabs) and fix X stabs by
     measuring them indirectly: use a fresh tableau of n+1 qubits with an
     ancilla. *)
  ignore t;
  let n = code.Code.n in
  let t = Tableau.create (n + 1) in
  let anc = n in
  Array.iter
    (fun supp ->
      Tableau.reset t rng anc;
      Tableau.h t anc;
      Array.iter (fun q -> Tableau.cx t anc q) supp;
      Tableau.h t anc;
      let m = Tableau.measure t rng anc in
      if m = 1 then
        (* Apply a Z correction anticommuting with this X stabilizer:
           flip the sign using any qubit in the support. *)
        Tableau.z t supp.(0))
    code.Code.x_stabs;
  (* After forcing +1 eigenvalues (up to Z corrections that may disturb
     other X stabs, repeat twice for convergence) *)
  Array.iter
    (fun supp ->
      Tableau.reset t rng anc;
      Tableau.h t anc;
      Array.iter (fun q -> Tableau.cx t anc q) supp;
      Tableau.h t anc;
      let m = Tableau.measure t rng anc in
      Alcotest.(check int) "x stabilizer +1 on second pass" 0 m)
    code.Code.x_stabs;
  Array.iteri
    (fun i _ ->
      let p = Code.z_stab_pauli code i in
      let pfull = Pauli.identity (n + 1) in
      Array.iter (fun q -> Pauli.set_z pfull q true) code.Code.z_stabs.(i);
      ignore p;
      Alcotest.(check (option int)) "z stabilizer +1" (Some 1)
        (Tableau.stabilizer_expectation t pfull))
    code.Code.z_stabs

(* -------------------------------------------------------------- decoders *)

let test_lookup_corrects_single_errors () =
  List.iter
    (fun code ->
      let dec = Decoder_lookup.create code in
      for q = 0 to code.Code.n - 1 do
        if code.Code.distance >= 3 then begin
          Alcotest.(check bool)
            (Printf.sprintf "%s X on %d" code.Code.name q)
            false
            (Decoder_lookup.logical_x_error_after_correction dec ~actual:[ q ]);
          Alcotest.(check bool)
            (Printf.sprintf "%s Z on %d" code.Code.name q)
            false
            (Decoder_lookup.logical_z_error_after_correction dec ~actual:[ q ])
        end
      done)
    [ Codes.steane; Codes.reed_muller_15; Codes.color_17; Codes.surface 3 ]

let test_lookup_corrects_double_errors_d5 () =
  let code = Codes.color_17 in
  let dec = Decoder_lookup.create code in
  for a = 0 to code.Code.n - 1 do
    for b = a + 1 to code.Code.n - 1 do
      Alcotest.(check bool)
        (Printf.sprintf "17QCC X on %d,%d" a b)
        false
        (Decoder_lookup.logical_x_error_after_correction dec ~actual:[ a; b ])
    done
  done

let test_lookup_trivial_syndrome () =
  let dec = Decoder_lookup.create Codes.steane in
  Alcotest.(check (list int)) "no error" []
    (Decoder_lookup.decode_x dec [| 0; 0; 0 |])

let test_uf_single_defect_pair () =
  (* Line graph: 0-1-2 with boundary at both ends; logical on edge 0-b. *)
  let g =
    Decoder_uf.graph ~nodes:3
      ~edges:
        [ (0, Decoder_uf.boundary, true);
          (0, 1, false);
          (1, 2, false);
          (2, Decoder_uf.boundary, false) ]
  in
  (* Defects at 0 and 1: matched through middle edge -> no logical. *)
  let s = Bitvec.create 3 in
  Bitvec.set s 0 true;
  Bitvec.set s 1 true;
  Alcotest.(check bool) "internal match no flip" false (Decoder_uf.decode g s)

let test_uf_boundary_match_flips () =
  let g =
    Decoder_uf.graph ~nodes:3
      ~edges:
        [ (0, Decoder_uf.boundary, true);
          (0, 1, false);
          (1, 2, false);
          (2, Decoder_uf.boundary, false) ]
  in
  let s = Bitvec.create 3 in
  Bitvec.set s 0 true;
  Alcotest.(check bool) "boundary match flips" true (Decoder_uf.decode g s)

let test_uf_empty_syndrome () =
  let g = Decoder_uf.graph ~nodes:2 ~edges:[ (0, 1, false) ] in
  let s = Bitvec.create 2 in
  Alcotest.(check bool) "quiet" false (Decoder_uf.decode g s);
  Alcotest.(check (list int)) "no correction" [] (Decoder_uf.decode_correction g s)

let test_uf_far_defect_matches_near_boundary () =
  (* 5-node path, boundary at both ends; single defect at node 0 should
     reach its nearest boundary, which carries the logical flag. *)
  let edges =
    (0, Decoder_uf.boundary, true)
    :: (4, Decoder_uf.boundary, false)
    :: List.init 4 (fun i -> (i, i + 1, false))
  in
  let g = Decoder_uf.graph ~nodes:5 ~edges in
  let s = Bitvec.create 5 in
  Bitvec.set s 0 true;
  Alcotest.(check bool) "nearest boundary" true (Decoder_uf.decode g s)

let test_uf_rejects_bad_graph () =
  Alcotest.check_raises "self loop" (Invalid_argument "Decoder_uf.graph: self-loop")
    (fun () -> ignore (Decoder_uf.graph ~nodes:2 ~edges:[ (1, 1, false) ]))

(* ------------------------------------------------- surface code circuit *)

let test_surface_circuit_shapes () =
  let exp = Surface_circuit.build (Surface_circuit.default ~distance:3) in
  Alcotest.(check int) "qubits = data + ancilla" 17 exp.Surface_circuit.n_qubits;
  Alcotest.(check int) "z stabs" 4 exp.Surface_circuit.n_z_stabs;
  let c = exp.Surface_circuit.circuit in
  (* detectors: 4 per round x 3 rounds + 4 final *)
  Alcotest.(check int) "detectors" 16 (Array.length c.Circuit.detectors);
  Alcotest.(check int) "observables" 1 (Array.length c.Circuit.observables)

let test_surface_circuit_detectors_deterministic () =
  (* Noiseless circuit: every detector must be quiet under the tableau
     simulator (which samples the X-ancilla randomness for real). *)
  let p =
    { (Surface_circuit.default ~distance:3) with
      p2 = 0.;
      t_data = 1e9;
      t_anc = 1e9 }
  in
  let exp = Surface_circuit.build p in
  let rng = Rng.create 17 in
  for _ = 1 to 20 do
    let t = Tableau.create exp.Surface_circuit.n_qubits in
    let record = Tableau.run t rng exp.Surface_circuit.circuit in
    let dets, obs = Tableau.detector_values exp.Surface_circuit.circuit record in
    Alcotest.(check bool) "detectors quiet" true (Bitvec.is_zero dets);
    Alcotest.(check bool) "observable quiet" true (Bitvec.is_zero obs)
  done

let test_surface_circuit_noiseless_frame () =
  let p =
    { (Surface_circuit.default ~distance:3) with
      p2 = 0.;
      t_data = 1e9;
      t_anc = 1e9 }
  in
  let exp = Surface_circuit.build p in
  let rng = Rng.create 18 in
  let rate = Surface_circuit.logical_error_rate exp rng ~shots:50 in
  Alcotest.(check (float 0.0)) "no logical errors without noise" 0.0 rate

let test_surface_logical_rate_reasonable () =
  (* d=3 with paper noise: logical error per shot should be well below 50%
     and above 0. *)
  let exp = Surface_circuit.build (Surface_circuit.default ~distance:3) in
  let rng = Rng.create 19 in
  let rate = Surface_circuit.logical_error_rate exp rng ~shots:400 in
  Alcotest.(check bool) "rate in sane band" true (rate > 0.0 && rate < 0.4)

let test_surface_distance_scaling_below_threshold () =
  (* With mild noise (0.2% CX error, good coherence), d=5 must beat d=3. *)
  let mk d =
    { (Surface_circuit.default ~distance:d) with p2 = 2e-3; t_data = 5e-4; t_anc = 5e-4 }
  in
  let rng3 = Rng.create 20 and rng5 = Rng.create 21 in
  let r3 = Surface_circuit.logical_error_rate (Surface_circuit.build (mk 3)) rng3 ~shots:1500 in
  let r5 = Surface_circuit.logical_error_rate (Surface_circuit.build (mk 5)) rng5 ~shots:1500 in
  Alcotest.(check bool)
    (Printf.sprintf "below threshold: d5 (%.4f) < d3 (%.4f)" r5 r3)
    true (r5 < r3 +. 0.01)

let test_per_cycle_rate () =
  let p = Surface_circuit.per_cycle_rate ~shot_rate:0.5 ~rounds:1 in
  Alcotest.(check (float 1e-9)) "single round identity" 0.5 p;
  let p13 = Surface_circuit.per_cycle_rate ~shot_rate:0.2 ~rounds:13 in
  Alcotest.(check bool) "per-cycle smaller" true (p13 < 0.2 && p13 > 0.)

(* ------------------------------------------- serialized memory circuits *)

let test_stab_circuit_noiseless_deterministic () =
  (* The generalized serialized-USC memory circuit must have quiet detectors
     noiselessly for every code — checked with the exact tableau simulator,
     which samples the X-check randomness for real. *)
  let p0 = { (Stab_circuit.default ~ts:1e9) with tc = 1e9; p2 = 0. } in
  List.iter
    (fun code ->
      let c = Stab_circuit.memory_z ~params:p0 code ~rounds:2 in
      let rng = Rng.create 1 in
      for _ = 1 to 5 do
        let t = Tableau.create (code.Code.n + 1) in
        let record = Tableau.run t rng c in
        let dets, obs = Tableau.detector_values c record in
        Alcotest.(check bool) (code.Code.name ^ " detectors quiet") true
          (Bitvec.is_zero dets);
        Alcotest.(check bool) (code.Code.name ^ " observable quiet") true
          (Bitvec.is_zero obs)
      done)
    [ Codes.steane; Codes.shor; Codes.surface 3; Codes.color_17 ]

let test_stab_circuit_validates_phenomenological_model () =
  (* Simulation-hierarchy cross-check: the circuit-level logical-Z rate and
     the phenomenological Uec rate must agree within a small factor. *)
  List.iter
    (fun code ->
      let ts = 50e-3 in
      let circ =
        Stab_circuit.logical_z_error_rate ~params:(Stab_circuit.default ~ts) code
          ~rounds:3 ~shots:3000 (Rng.create 2)
      in
      let circ_round = Stab_circuit.per_round ~shot_rate:circ ~rounds:3 in
      let phen = Uec.fig9_point ~code ~ts ~shots:3000 (Rng.create 3) in
      let ratio = Float.max (circ_round /. phen) (phen /. circ_round) in
      Alcotest.(check bool)
        (Printf.sprintf "%s: circuit %.4f vs model %.4f (x%.2f)" code.Code.name
           circ_round phen ratio)
        true (ratio < 3.))
    [ Codes.steane; Codes.surface 3; Codes.color_17 ]

let test_stab_circuit_noise_scaling () =
  let rate p2 =
    Stab_circuit.logical_z_error_rate
      ~params:{ (Stab_circuit.default ~ts:50e-3) with p2 }
      Codes.steane ~rounds:2 ~shots:3000 (Rng.create 4)
  in
  Alcotest.(check bool) "monotone in p2" true (rate 2e-3 < rate 2e-2)

(* --------------------------------------------------------------- threshold *)

let test_shor_structure () =
  let c = Codes.shor in
  Alcotest.(check int) "two X checks" 2 (Array.length c.Code.x_stabs);
  Alcotest.(check int) "six Z checks" 6 (Array.length c.Code.z_stabs);
  Alcotest.(check string) "by name" "SHOR" (Codes.by_name "SHOR").Code.name

let test_match_decoder_basics () =
  let edges =
    [ (0, Decoder_uf.boundary, 1, true);
      (0, 1, 1, false);
      (1, 2, 1, false);
      (2, Decoder_uf.boundary, 1, false) ]
  in
  let m = Decoder_match.create ~nodes:3 ~edges in
  let s = Bitvec.create 3 in
  Alcotest.(check bool) "empty quiet" false (Decoder_match.decode m s);
  Bitvec.set s 0 true;
  Alcotest.(check bool) "single defect to near boundary" true (Decoder_match.decode m s);
  Bitvec.set s 1 true;
  Alcotest.(check bool) "pair matches internally" false (Decoder_match.decode m s)

let test_match_decoder_weighted_preference () =
  (* Heavy direct edge vs cheap two-hop detour to boundary on both sides. *)
  let edges =
    [ (0, 1, 10, true);
      (0, Decoder_uf.boundary, 1, false);
      (1, Decoder_uf.boundary, 1, false) ]
  in
  let m = Decoder_match.create ~nodes:2 ~edges in
  let s = Bitvec.create 2 in
  Bitvec.set s 0 true;
  Bitvec.set s 1 true;
  (* boundary matches (cost 1 each) beat the weight-10 logical edge *)
  Alcotest.(check bool) "avoids heavy logical edge" false (Decoder_match.decode m s)

let test_match_decoder_on_surface_code () =
  let exp = Surface_circuit.build { (Surface_circuit.default ~distance:3) with p2 = 2e-3 } in
  let dem = Dem.of_circuit exp.Surface_circuit.circuit in
  let m =
    Decoder_match.of_dem
      ~nodes:(Array.length exp.Surface_circuit.circuit.Circuit.detectors)
      dem
  in
  let rate =
    Frame.logical_error_rate exp.Surface_circuit.circuit (Rng.create 41) ~shots:400
      ~decode:(fun dets ->
        let out = Bitvec.create 1 in
        Bitvec.set out 0 (Decoder_match.decode m dets);
        out)
  in
  Alcotest.(check bool) (Printf.sprintf "decodes better than chance (%.3f)" rate)
    true (rate < 0.25)

let test_build_varied () =
  let p = Surface_circuit.default ~distance:3 in
  let exp = Surface_circuit.build_varied ~sigma:0.5 (Rng.create 42) p in
  let rate = Surface_circuit.logical_error_rate exp (Rng.create 43) ~shots:200 in
  Alcotest.(check bool) "still decodes" true (rate < 0.4);
  Alcotest.(check bool) "sigma 0 equals nominal ops" true
    (Circuit.depth_events
       (Surface_circuit.build_varied ~sigma:0. (Rng.create 1) p).Surface_circuit.circuit
    = Circuit.depth_events (Surface_circuit.build p).Surface_circuit.circuit)

let test_logical_rate_zero_noise () =
  let code = Codes.steane in
  let dec = Decoder_lookup.create code in
  let rng = Rng.create 30 in
  Alcotest.(check (float 0.)) "no noise no errors" 0.
    (Threshold.logical_rate code dec ~p:0. ~shots:200 rng)

let test_logical_rate_monotone () =
  let code = Codes.steane in
  let dec = Decoder_lookup.create code in
  let rng = Rng.create 31 in
  let r1 = Threshold.logical_rate code dec ~p:0.01 ~shots:20_000 rng in
  let r2 = Threshold.logical_rate code dec ~p:0.05 ~shots:20_000 rng in
  Alcotest.(check bool) "monotone in p" true (r1 < r2)

let test_pseudothreshold_steane () =
  (* Steane pseudothreshold under this noise model should be around 10%,
     certainly inside [0.02, 0.3]. *)
  let rng = Rng.create 32 in
  let pt = Threshold.pseudothreshold ~shots:8_000 Codes.steane rng in
  Alcotest.(check bool)
    (Printf.sprintf "Steane PT = %.4f in band" pt)
    true
    (pt > 0.02 && pt < 0.3)

let test_pseudothreshold_ordering () =
  (* The RM code has the lowest pseudothreshold of the three non-planar
     codes in Table 3. *)
  let rng = Rng.create 33 in
  let pt_rm = Threshold.pseudothreshold ~shots:6_000 Codes.reed_muller_15 rng in
  let pt_st = Threshold.pseudothreshold ~shots:6_000 Codes.steane rng in
  Alcotest.(check bool)
    (Printf.sprintf "PT(RM)=%.4f < PT(ST)=%.4f" pt_rm pt_st)
    true (pt_rm < pt_st)

let () =
  Alcotest.run "qec"
    [ ( "codes",
        [ Alcotest.test_case "validate" `Quick test_codes_validate;
          Alcotest.test_case "parameters" `Quick test_code_parameters;
          Alcotest.test_case "ranks" `Quick test_code_ranks;
          Alcotest.test_case "distances (brute force)" `Slow test_code_distances;
          Alcotest.test_case "17QCC weights" `Quick test_color17_weights;
          Alcotest.test_case "planar flags" `Quick test_surface_planar_flags;
          Alcotest.test_case "by_name" `Quick test_by_name;
          Alcotest.test_case "syndromes" `Quick test_syndromes;
          Alcotest.test_case "shor" `Quick test_shor_structure;
          Alcotest.test_case "stabilize codewords" `Quick test_stabilizers_stabilize_codewords ] );
      ( "decoders",
        [ Alcotest.test_case "lookup single errors" `Quick test_lookup_corrects_single_errors;
          Alcotest.test_case "lookup double errors d5" `Slow test_lookup_corrects_double_errors_d5;
          Alcotest.test_case "lookup trivial" `Quick test_lookup_trivial_syndrome;
          Alcotest.test_case "uf pair match" `Quick test_uf_single_defect_pair;
          Alcotest.test_case "uf boundary match" `Quick test_uf_boundary_match_flips;
          Alcotest.test_case "uf empty" `Quick test_uf_empty_syndrome;
          Alcotest.test_case "uf nearest boundary" `Quick test_uf_far_defect_matches_near_boundary;
          Alcotest.test_case "uf bad graph" `Quick test_uf_rejects_bad_graph;
          Alcotest.test_case "match basics" `Quick test_match_decoder_basics;
          Alcotest.test_case "match weighted" `Quick test_match_decoder_weighted_preference;
          Alcotest.test_case "match on surface" `Slow test_match_decoder_on_surface_code ] );
      ( "surface circuit",
        [ Alcotest.test_case "shapes" `Quick test_surface_circuit_shapes;
          Alcotest.test_case "deterministic detectors" `Quick
            test_surface_circuit_detectors_deterministic;
          Alcotest.test_case "noiseless frame" `Quick test_surface_circuit_noiseless_frame;
          Alcotest.test_case "noisy rate sane" `Quick test_surface_logical_rate_reasonable;
          Alcotest.test_case "distance scaling" `Slow test_surface_distance_scaling_below_threshold;
          Alcotest.test_case "varied coherence" `Quick test_build_varied;
          Alcotest.test_case "per-cycle conversion" `Quick test_per_cycle_rate ] );
      ( "serialized memory",
        [ Alcotest.test_case "noiseless deterministic" `Quick
            test_stab_circuit_noiseless_deterministic;
          Alcotest.test_case "validates model" `Slow
            test_stab_circuit_validates_phenomenological_model;
          Alcotest.test_case "noise scaling" `Slow test_stab_circuit_noise_scaling ] );
      ( "threshold",
        [ Alcotest.test_case "zero noise" `Quick test_logical_rate_zero_noise;
          Alcotest.test_case "monotone" `Quick test_logical_rate_monotone;
          Alcotest.test_case "steane PT" `Slow test_pseudothreshold_steane;
          Alcotest.test_case "PT ordering" `Slow test_pseudothreshold_ordering ] ) ]
