(* Tests for the discrete-event simulation engine. *)

let test_event_order () =
  let des = Des.create () in
  let log = ref [] in
  Des.schedule des ~delay:3. (fun _ -> log := 3 :: !log);
  Des.schedule des ~delay:1. (fun _ -> log := 1 :: !log);
  Des.schedule des ~delay:2. (fun _ -> log := 2 :: !log);
  Des.run des;
  Alcotest.(check (list int)) "time order" [ 1; 2; 3 ] (List.rev !log)

let test_clock_advances () =
  let des = Des.create () in
  let seen = ref 0. in
  Des.schedule des ~delay:5. (fun d -> seen := Des.now d);
  Des.run des;
  Alcotest.(check (float 1e-12)) "clock at event time" 5. !seen

let test_cascading_events () =
  let des = Des.create () in
  let count = ref 0 in
  let rec tick d =
    incr count;
    if !count < 10 then Des.schedule d ~delay:1. tick
  in
  Des.schedule des ~delay:1. tick;
  Des.run des;
  Alcotest.(check int) "all ticks" 10 !count;
  Alcotest.(check (float 1e-12)) "final clock" 10. (Des.now des);
  Alcotest.(check int) "processed" 10 (Des.events_processed des)

let test_run_until_horizon () =
  let des = Des.create () in
  let fired = ref [] in
  List.iter
    (fun t -> Des.schedule des ~delay:t (fun _ -> fired := t :: !fired))
    [ 1.; 2.; 3.; 4. ];
  Des.run_until des 2.5;
  Alcotest.(check (list (float 1e-12))) "only events before horizon" [ 1.; 2. ]
    (List.rev !fired);
  Alcotest.(check (float 1e-12)) "clock at horizon" 2.5 (Des.now des);
  Alcotest.(check int) "two pending" 2 (Des.pending des)

let test_schedule_at () =
  let des = Des.create () in
  let seen = ref [] in
  Des.schedule_at des ~time:2. (fun _ -> seen := 2 :: !seen);
  Des.schedule_at des ~time:1. (fun _ -> seen := 1 :: !seen);
  Des.run des;
  Alcotest.(check (list int)) "absolute times" [ 1; 2 ] (List.rev !seen)

let test_rejects_past () =
  let des = Des.create () in
  Des.schedule des ~delay:1. (fun d ->
      Alcotest.(check bool) "past rejected" true
        (try
           Des.schedule_at d ~time:0.5 (fun _ -> ());
           false
         with Invalid_argument _ -> true));
  Des.run des

let test_rejects_negative_delay () =
  let des = Des.create () in
  Alcotest.(check bool) "negative delay" true
    (try
       Des.schedule des ~delay:(-1.) (fun _ -> ());
       false
     with Invalid_argument _ -> true)

let test_simultaneous_events_all_fire () =
  let des = Des.create () in
  let count = ref 0 in
  for _ = 1 to 5 do
    Des.schedule des ~delay:1. (fun _ -> incr count)
  done;
  Des.run des;
  Alcotest.(check int) "all five" 5 !count

let () =
  Alcotest.run "des"
    [ ( "engine",
        [ Alcotest.test_case "event order" `Quick test_event_order;
          Alcotest.test_case "clock" `Quick test_clock_advances;
          Alcotest.test_case "cascading" `Quick test_cascading_events;
          Alcotest.test_case "run_until" `Quick test_run_until_horizon;
          Alcotest.test_case "schedule_at" `Quick test_schedule_at;
          Alcotest.test_case "rejects past" `Quick test_rejects_past;
          Alcotest.test_case "rejects negative" `Quick test_rejects_negative_delay;
          Alcotest.test_case "simultaneous" `Quick test_simultaneous_events_all_fire ] ) ]
