(* Tests for Pauli algebra, the CHP tableau simulator, and the Pauli-frame
   sampler, including a statistical cross-validation between the two
   simulators on a noisy circuit. *)

(* ---------------------------------------------------------------- Pauli *)

let test_pauli_parse_print () =
  List.iter
    (fun s -> Alcotest.(check string) s s (Pauli.to_string (Pauli.of_string s)))
    [ "+XIZY"; "-ZZ"; "+III"; "-YYX"; "+X" ]

let test_pauli_implicit_plus () =
  Alcotest.(check string) "implicit sign" "+XZ" (Pauli.to_string (Pauli.of_string "XZ"))

let test_pauli_mul_identities () =
  let p = Pauli.of_string and str = Pauli.to_string in
  Alcotest.(check string) "X*X=I" "+II" (str (Pauli.mul (p "XI") (p "XI")));
  Alcotest.(check string) "X*Y=iZ" "+iZ" (str (Pauli.mul (p "X") (p "Y")));
  Alcotest.(check string) "Y*X=-iZ" "-iZ" (str (Pauli.mul (p "Y") (p "X")));
  Alcotest.(check string) "Z*X=iY" "+iY" (str (Pauli.mul (p "Z") (p "X")));
  Alcotest.(check string) "Z*Y=-iX" "-iX" (str (Pauli.mul (p "Z") (p "Y")))

let test_pauli_mul_xz_zx () =
  (* (X kron Z)(Z kron X) = (XZ) kron (ZX) = (-iY) kron (iY) = Y kron Y *)
  let prod = Pauli.mul (Pauli.of_string "XZ") (Pauli.of_string "ZX") in
  Alcotest.(check string) "product" "+YY" (Pauli.to_string prod)

let test_pauli_commutes () =
  let c a b = Pauli.commutes (Pauli.of_string a) (Pauli.of_string b) in
  Alcotest.(check bool) "X,Z anticommute" false (c "X" "Z");
  Alcotest.(check bool) "X,X commute" true (c "X" "X");
  Alcotest.(check bool) "XX,ZZ commute" true (c "XX" "ZZ");
  Alcotest.(check bool) "XI,ZZ anticommute" false (c "XI" "ZZ");
  Alcotest.(check bool) "Y,Y commute" true (c "Y" "Y");
  Alcotest.(check bool) "XYZ,ZIX" true (c "XYZ" "ZIX")

let test_pauli_weight_support () =
  let p = Pauli.of_string "XIYZI" in
  Alcotest.(check int) "weight" 3 (Pauli.weight p);
  Alcotest.(check (list int)) "support" [ 0; 2; 3 ] (Pauli.support p)

let test_pauli_neg () =
  let p = Pauli.of_string "XZ" in
  Alcotest.(check string) "neg" "-XZ" (Pauli.to_string (Pauli.neg p));
  Alcotest.(check bool) "equal up to phase" true (Pauli.equal_up_to_phase p (Pauli.neg p));
  Alcotest.(check bool) "not equal" false (Pauli.equal p (Pauli.neg p))

let prop_pauli_mul_associative =
  let arb =
    QCheck.make
      QCheck.Gen.(
        map
          (fun cs -> Pauli.of_string (String.init 4 (fun i -> List.nth cs i)))
          (list_size (return 4) (oneofl [ 'I'; 'X'; 'Y'; 'Z' ])))
  in
  QCheck.Test.make ~name:"pauli mul associative" ~count:200 (QCheck.triple arb arb arb)
    (fun (a, b, c) ->
      Pauli.equal (Pauli.mul (Pauli.mul a b) c) (Pauli.mul a (Pauli.mul b c)))

let prop_pauli_commute_consistent_with_mul =
  let arb =
    QCheck.make
      QCheck.Gen.(
        map
          (fun cs -> Pauli.of_string (String.init 3 (fun i -> List.nth cs i)))
          (list_size (return 3) (oneofl [ 'I'; 'X'; 'Y'; 'Z' ])))
  in
  QCheck.Test.make ~name:"commutes iff ab = ba" ~count:200 (QCheck.pair arb arb)
    (fun (a, b) ->
      let ab = Pauli.mul a b and ba = Pauli.mul b a in
      Pauli.commutes a b = Pauli.equal ab ba)

(* -------------------------------------------------------------- Tableau *)

let test_tableau_initial_measure_zero () =
  let t = Tableau.create 3 in
  let rng = Rng.create 1 in
  for q = 0 to 2 do
    Alcotest.(check int) "starts in |0>" 0 (Tableau.measure t rng q)
  done

let test_tableau_x_flips () =
  let t = Tableau.create 2 in
  let rng = Rng.create 1 in
  Tableau.x t 1;
  Alcotest.(check int) "q0 unchanged" 0 (Tableau.measure t rng 0);
  Alcotest.(check int) "q1 flipped" 1 (Tableau.measure t rng 1)

let test_tableau_h_random () =
  let rng = Rng.create 2 in
  let ones = ref 0 in
  let n = 1000 in
  for _ = 1 to n do
    let t = Tableau.create 1 in
    Tableau.h t 0;
    if Tableau.measure t rng 0 = 1 then incr ones
  done;
  let p = float_of_int !ones /. float_of_int n in
  Alcotest.(check bool) "~uniform" true (Float.abs (p -. 0.5) < 0.06)

let test_tableau_bell_correlations () =
  let rng = Rng.create 3 in
  for _ = 1 to 50 do
    let t = Tableau.create 2 in
    Tableau.h t 0;
    Tableau.cx t 0 1;
    let a = Tableau.measure t rng 0 in
    let b = Tableau.measure t rng 1 in
    Alcotest.(check int) "bell correlated" a b
  done

let test_tableau_ghz_parity () =
  let rng = Rng.create 4 in
  for _ = 1 to 50 do
    let t = Tableau.create 3 in
    Tableau.h t 0;
    Tableau.cx t 0 1;
    Tableau.cx t 1 2;
    let a = Tableau.measure t rng 0 in
    let b = Tableau.measure t rng 1 in
    let c = Tableau.measure t rng 2 in
    Alcotest.(check int) "ghz ab" a b;
    Alcotest.(check int) "ghz bc" b c
  done

let test_tableau_deterministic_detection () =
  let t = Tableau.create 1 in
  Alcotest.(check (option int)) "fresh |0> deterministic" (Some 0)
    (Tableau.measure_deterministic t 0);
  Tableau.x t 0;
  Alcotest.(check (option int)) "|1> deterministic" (Some 1)
    (Tableau.measure_deterministic t 0);
  Tableau.h t 0;
  Alcotest.(check (option int)) "|-> random" None (Tableau.measure_deterministic t 0)

let test_tableau_stabilizer_expectation () =
  let t = Tableau.create 2 in
  Tableau.h t 0;
  Tableau.cx t 0 1;
  (* Bell state: stabilized by +XX, +ZZ, -YY. *)
  Alcotest.(check (option int)) "XX" (Some 1)
    (Tableau.stabilizer_expectation t (Pauli.of_string "XX"));
  Alcotest.(check (option int)) "ZZ" (Some 1)
    (Tableau.stabilizer_expectation t (Pauli.of_string "ZZ"));
  Alcotest.(check (option int)) "YY" (Some (-1))
    (Tableau.stabilizer_expectation t (Pauli.of_string "YY"));
  Alcotest.(check (option int)) "ZI random" None
    (Tableau.stabilizer_expectation t (Pauli.of_string "ZI"))

let test_tableau_s_gate () =
  (* S|+> = |+i>, stabilized by +Y. *)
  let t = Tableau.create 1 in
  Tableau.h t 0;
  Tableau.s t 0;
  Alcotest.(check (option int)) "Y stabilizer" (Some 1)
    (Tableau.stabilizer_expectation t (Pauli.of_string "Y"))

let test_tableau_swap () =
  let rng = Rng.create 5 in
  let t = Tableau.create 2 in
  Tableau.x t 0;
  Tableau.swap t 0 1;
  Alcotest.(check int) "q0" 0 (Tableau.measure t rng 0);
  Alcotest.(check int) "q1" 1 (Tableau.measure t rng 1)

let test_tableau_cz () =
  (* CZ between |+>|1> flips the phase: X stabilizer of q0 becomes -X after
     conjugation ... verify via H basis measurement. *)
  let t = Tableau.create 2 in
  Tableau.h t 0;
  Tableau.x t 1;
  Tableau.cz t 0 1;
  (* state = |-> |1>; stabilizers: -X0, -Z1... check -X on qubit 0. *)
  Alcotest.(check (option int)) "-X0" (Some (-1))
    (Tableau.stabilizer_expectation t (Pauli.of_string "XI"))

let test_tableau_reset () =
  let rng = Rng.create 6 in
  let t = Tableau.create 1 in
  Tableau.h t 0;
  Tableau.reset t rng 0;
  Alcotest.(check (option int)) "reset to |0>" (Some 0) (Tableau.measure_deterministic t 0)

let test_tableau_apply_pauli_error () =
  let rng = Rng.create 7 in
  let t = Tableau.create 2 in
  Tableau.apply_pauli t (Pauli.of_string "XI");
  Alcotest.(check int) "error flipped qubit" 1 (Tableau.measure t rng 0)

(* ---------------------------------------------------------------- Frame *)

(* A 3-qubit repetition-code style circuit with deterministic detectors:
   measure ZZ parities via two ancillas, twice, then measure data. *)
let repetition_circuit ~p =
  let b = Circuit.builder 5 in
  (* data 0,1,2; ancilla 3,4 *)
  let round () =
    Circuit.add b (Circuit.R 3);
    Circuit.add b (Circuit.R 4);
    Circuit.add b (Circuit.CX (0, 3));
    Circuit.add b (Circuit.CX (1, 3));
    Circuit.add b (Circuit.CX (1, 4));
    Circuit.add b (Circuit.CX (2, 4));
    if p > 0. then begin
      Circuit.add b (Circuit.Noise1 { px = p; py = 0.; pz = 0.; q = 0 });
      Circuit.add b (Circuit.Noise1 { px = p; py = 0.; pz = 0.; q = 1 });
      Circuit.add b (Circuit.Noise1 { px = p; py = 0.; pz = 0.; q = 2 })
    end;
    let m1 = Circuit.measure b 3 in
    let m2 = Circuit.measure b 4 in
    (m1, m2)
  in
  let a1, a2 = round () in
  let b1, b2 = round () in
  Circuit.add_detector b [ a1 ];
  Circuit.add_detector b [ a2 ];
  Circuit.add_detector b [ a1; b1 ];
  Circuit.add_detector b [ a2; b2 ];
  let d0 = Circuit.measure b 0 in
  let d1 = Circuit.measure b 1 in
  let d2 = Circuit.measure b 2 in
  Circuit.add_detector b [ b1; d0; d1 ];
  Circuit.add_detector b [ b2; d1; d2 ];
  Circuit.add_observable b [ d0 ];
  Circuit.finish b

let test_frame_noiseless_detectors_quiet () =
  let c = repetition_circuit ~p:0. in
  Circuit.validate c;
  let rng = Rng.create 11 in
  for _ = 1 to 200 do
    let shot = Frame.sample_shot c rng in
    Alcotest.(check bool) "no detector fires" true (Bitvec.is_zero shot.Frame.detectors);
    Alcotest.(check bool) "no observable flip" true (Bitvec.is_zero shot.Frame.observables)
  done

let test_tableau_detectors_deterministic () =
  (* The tableau simulator must agree that noiseless detectors never fire,
     even though raw ancilla outcomes could vary. *)
  let c = repetition_circuit ~p:0. in
  let rng = Rng.create 12 in
  for _ = 1 to 100 do
    let t = Tableau.create 5 in
    let record = Tableau.run t rng c in
    let dets, obs = Tableau.detector_values c record in
    Alcotest.(check bool) "tableau detectors quiet" true (Bitvec.is_zero dets);
    Alcotest.(check bool) "tableau observable quiet" true (Bitvec.is_zero obs)
  done

let test_frame_matches_tableau_statistics () =
  (* With X noise on data qubits, detector firing rates from the frame
     sampler must match the tableau simulator within Monte-Carlo error. *)
  let p = 0.15 in
  let c = repetition_circuit ~p in
  let shots = 4000 in
  let frame_rng = Rng.create 21 and tab_rng = Rng.create 22 in
  let ndet = Array.length c.Circuit.detectors in
  let frame_counts = Array.make ndet 0 in
  for _ = 1 to shots do
    let shot = Frame.sample_shot c frame_rng in
    for i = 0 to ndet - 1 do
      if Bitvec.get shot.Frame.detectors i then
        frame_counts.(i) <- frame_counts.(i) + 1
    done
  done;
  let tab_counts = Array.make ndet 0 in
  for _ = 1 to shots do
    let t = Tableau.create 5 in
    let record = Tableau.run t tab_rng c in
    let dets, _ = Tableau.detector_values c record in
    for i = 0 to ndet - 1 do
      if Bitvec.get dets i then tab_counts.(i) <- tab_counts.(i) + 1
    done
  done;
  for i = 0 to ndet - 1 do
    let fp = float_of_int frame_counts.(i) /. float_of_int shots in
    let tp = float_of_int tab_counts.(i) /. float_of_int shots in
    if Float.abs (fp -. tp) >= 0.03 then
      Alcotest.failf "detector %d rates diverge: frame %.3f vs tableau %.3f" i fp tp
  done

let test_frame_observable_flip_rate () =
  (* Single qubit, X error p, measure: flip rate must equal p. *)
  let p = 0.23 in
  let b = Circuit.builder 1 in
  Circuit.add b (Circuit.Noise1 { px = p; py = 0.; pz = 0.; q = 0 });
  let m = Circuit.measure b 0 in
  Circuit.add_observable b [ m ];
  let c = Circuit.finish b in
  let rng = Rng.create 31 in
  let counts = Frame.sample_flip_counts c rng ~shots:20_000 in
  let rate = float_of_int counts.(0) /. 20_000. in
  Alcotest.(check bool) "flip rate matches p" true (Float.abs (rate -. p) < 0.01)

let test_frame_z_noise_invisible_in_z_basis () =
  let b = Circuit.builder 1 in
  Circuit.add b (Circuit.Noise1 { px = 0.; py = 0.; pz = 0.5; q = 0 });
  let m = Circuit.measure b 0 in
  Circuit.add_observable b [ m ];
  let c = Circuit.finish b in
  let rng = Rng.create 32 in
  let counts = Frame.sample_flip_counts c rng ~shots:5_000 in
  Alcotest.(check int) "Z errors don't flip Z measurement" 0 counts.(0)

let test_frame_h_converts_z_to_x () =
  (* Z error then H: becomes X, visible in Z basis. *)
  let b = Circuit.builder 1 in
  Circuit.add b (Circuit.Noise1 { px = 0.; py = 0.; pz = 1.0; q = 0 });
  Circuit.add b (Circuit.H 0);
  let m = Circuit.measure b 0 in
  Circuit.add_observable b [ m ];
  let c = Circuit.finish b in
  let rng = Rng.create 33 in
  let counts = Frame.sample_flip_counts c rng ~shots:1_000 in
  Alcotest.(check int) "always flips" 1_000 counts.(0)

let test_frame_cx_propagates_x () =
  (* X on control propagates to target through CX. *)
  let b = Circuit.builder 2 in
  Circuit.add b (Circuit.Noise1 { px = 1.0; py = 0.; pz = 0.; q = 0 });
  Circuit.add b (Circuit.CX (0, 1));
  let m = Circuit.measure b 1 in
  Circuit.add_observable b [ m ];
  let c = Circuit.finish b in
  let rng = Rng.create 34 in
  let counts = Frame.sample_flip_counts c rng ~shots:500 in
  Alcotest.(check int) "X propagated to target" 500 counts.(0)

let test_frame_idle_noise_rates () =
  (* idle_noise X-flip probability must follow (1 - exp(-dt/T1))/4 within MC
     error (Y also flips Z-basis measurements, so total visible = px+py). *)
  let t1 = 100e-6 and t2 = 120e-6 and dt = 30e-6 in
  let b = Circuit.builder 1 in
  Circuit.idle_noise b ~t1 ~t2 ~dt 0;
  let m = Circuit.measure b 0 in
  Circuit.add_observable b [ m ];
  let c = Circuit.finish b in
  let rng = Rng.create 35 in
  let shots = 40_000 in
  let counts = Frame.sample_flip_counts c rng ~shots in
  let expected = (1. -. exp (-.dt /. t1)) /. 2. in
  let rate = float_of_int counts.(0) /. float_of_int shots in
  Alcotest.(check bool) "idle flip rate" true (Float.abs (rate -. expected) < 0.01)

let test_tableau_random_circuits_match_dm () =
  (* Strong cross-validation: for random Clifford circuits on 3 qubits, the
     tableau's sampled final-measurement distribution must match the exact
     density-matrix diagonal.  (This class of test caught a real phase bug:
     destabilizer rows acquire +-i phases during measurement rowsums, so one
     sign bit per row is not enough.) *)
  let gen_rng = Rng.create 123 in
  for _ = 1 to 12 do
    let ops =
      List.init 14 (fun _ ->
          match Rng.int gen_rng 4 with
          | 0 -> `H (Rng.int gen_rng 3)
          | 1 -> `S (Rng.int gen_rng 3)
          | 2 ->
              let a = Rng.int gen_rng 3 in
              let b = (a + 1 + Rng.int gen_rng 2) mod 3 in
              `CX (a, b)
          | _ -> `M (Rng.int gen_rng 3))
    in
    (* exact probabilities by running the Dm with every measurement branch
       tracked is complex; instead compare P(outcome of a final full
       measurement) for circuits WITHOUT mid-circuit measurement *)
    let unitary_ops = List.filter (function `M _ -> false | _ -> true) ops in
    let dm = Dm.create 3 in
    List.iter
      (fun op ->
        match op with
        | `H q -> Dm.apply_unitary dm Gate.h [ q ]
        | `S q -> Dm.apply_unitary dm Gate.s [ q ]
        | `CX (a, b) -> Dm.apply_unitary dm Gate.cx [ a; b ]
        | `M _ -> ())
      unitary_ops;
    let exact =
      Array.init 8 (fun i -> (Cmat.get (Dm.rho dm) i i).Complex.re)
    in
    let counts = Array.make 8 0 in
    let samp_rng = Rng.create 456 in
    let shots = 3000 in
    for _ = 1 to shots do
      let t = Tableau.create 3 in
      List.iter
        (fun op ->
          match op with
          | `H q -> Tableau.h t q
          | `S q -> Tableau.s t q
          | `CX (a, b) -> Tableau.cx t a b
          | `M _ -> ())
        unitary_ops;
      let outcome = ref 0 in
      for q = 0 to 2 do
        outcome := (!outcome lsl 1) lor Tableau.measure t samp_rng q
      done;
      counts.(!outcome) <- counts.(!outcome) + 1
    done;
    Array.iteri
      (fun i p ->
        let freq = float_of_int counts.(i) /. float_of_int shots in
        if Float.abs (freq -. p) >= 0.04 then
          Alcotest.failf "outcome %d: tableau %.3f vs exact %.3f" i freq p)
      exact
  done

let test_tableau_mid_circuit_measurement_conditioning () =
  (* ZZ parity measurement then X-type check (the pattern that triggered the
     phase bug): both simulators must agree the X check is uniformly
     random and subsequent ZZ remeasurement is consistent. *)
  let rng = Rng.create 99 in
  let xs = ref 0 in
  let n = 2000 in
  for _ = 1 to n do
    let t = Tableau.create 3 in
    Tableau.cx t 0 2;
    Tableau.cx t 1 2;
    let z1 = Tableau.measure t rng 2 in
    Alcotest.(check int) "zz deterministic" 0 z1;
    Tableau.reset t rng 2;
    Tableau.h t 2;
    Tableau.cx t 2 0;
    Tableau.cx t 2 1;
    Tableau.h t 2;
    let x = Tableau.measure t rng 2 in
    if x = 1 then incr xs;
    (* remeasuring ZZ must still be deterministic 0: XX commutes with ZZ *)
    let t2 = Tableau.copy t in
    Tableau.reset t2 rng 2;
    Tableau.cx t2 0 2;
    Tableau.cx t2 1 2;
    Alcotest.(check int) "zz still deterministic" 0 (Tableau.measure t2 rng 2)
  done;
  let p = float_of_int !xs /. float_of_int n in
  Alcotest.(check bool) (Printf.sprintf "x check uniform (%.3f)" p) true
    (Float.abs (p -. 0.5) < 0.04)

let test_circuit_validate_catches_bad_qubit () =
  let b = Circuit.builder 2 in
  Circuit.add b (Circuit.H 5);
  let c = Circuit.finish b in
  Alcotest.check_raises "bad qubit"
    (Invalid_argument "Circuit.validate: qubit out of range")
    (fun () -> Circuit.validate c)

let test_circuit_counts () =
  let c = repetition_circuit ~p:0.01 in
  Alcotest.(check int) "measurements" 7 c.Circuit.nmeas;
  Alcotest.(check bool) "gates counted" true (Circuit.count_gates c = 8);
  Alcotest.(check bool) "events counted" true (Circuit.depth_events c > 8)

let () =
  let qc = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "pauli"
    [ ( "pauli",
        [ Alcotest.test_case "parse/print" `Quick test_pauli_parse_print;
          Alcotest.test_case "implicit plus" `Quick test_pauli_implicit_plus;
          Alcotest.test_case "mul identities" `Quick test_pauli_mul_identities;
          Alcotest.test_case "XZ*ZX" `Quick test_pauli_mul_xz_zx;
          Alcotest.test_case "commutation" `Quick test_pauli_commutes;
          Alcotest.test_case "weight/support" `Quick test_pauli_weight_support;
          Alcotest.test_case "negation" `Quick test_pauli_neg ] );
      ( "tableau",
        [ Alcotest.test_case "initial zeros" `Quick test_tableau_initial_measure_zero;
          Alcotest.test_case "x flips" `Quick test_tableau_x_flips;
          Alcotest.test_case "h randomizes" `Quick test_tableau_h_random;
          Alcotest.test_case "bell correlations" `Quick test_tableau_bell_correlations;
          Alcotest.test_case "ghz parity" `Quick test_tableau_ghz_parity;
          Alcotest.test_case "determinism detection" `Quick test_tableau_deterministic_detection;
          Alcotest.test_case "stabilizer expectation" `Quick test_tableau_stabilizer_expectation;
          Alcotest.test_case "s gate" `Quick test_tableau_s_gate;
          Alcotest.test_case "swap" `Quick test_tableau_swap;
          Alcotest.test_case "cz" `Quick test_tableau_cz;
          Alcotest.test_case "reset" `Quick test_tableau_reset;
          Alcotest.test_case "pauli error" `Quick test_tableau_apply_pauli_error;
          Alcotest.test_case "random circuits vs dm" `Slow test_tableau_random_circuits_match_dm;
          Alcotest.test_case "mid-circuit conditioning" `Quick
            test_tableau_mid_circuit_measurement_conditioning ] );
      ( "frame",
        [ Alcotest.test_case "noiseless quiet" `Quick test_frame_noiseless_detectors_quiet;
          Alcotest.test_case "tableau detectors quiet" `Quick test_tableau_detectors_deterministic;
          Alcotest.test_case "frame vs tableau stats" `Slow test_frame_matches_tableau_statistics;
          Alcotest.test_case "observable flip rate" `Quick test_frame_observable_flip_rate;
          Alcotest.test_case "z noise invisible" `Quick test_frame_z_noise_invisible_in_z_basis;
          Alcotest.test_case "h converts z to x" `Quick test_frame_h_converts_z_to_x;
          Alcotest.test_case "cx propagates" `Quick test_frame_cx_propagates_x;
          Alcotest.test_case "idle noise rate" `Quick test_frame_idle_noise_rates;
          Alcotest.test_case "validate bad qubit" `Quick test_circuit_validate_catches_bad_qubit;
          Alcotest.test_case "circuit counts" `Quick test_circuit_counts ] );
      ( "properties",
        qc [ prop_pauli_mul_associative; prop_pauli_commute_consistent_with_mul ] ) ]
