(* Tests for the square-lattice grid and the SWAP-routing scheduler. *)

let test_grid_basics () =
  let g = Grid.create 4 in
  Alcotest.(check int) "size" 16 (Grid.size g);
  Alcotest.(check int) "side" 4 (Grid.side g);
  Alcotest.(check (pair int int)) "coords" (1, 2) (Grid.coords g 6);
  Alcotest.(check int) "index" 6 (Grid.index g (1, 2))

let test_grid_of_min_qubits () =
  Alcotest.(check int) "9 -> 3x3" 3 (Grid.side (Grid.of_min_qubits 9));
  Alcotest.(check int) "10 -> 4x4" 4 (Grid.side (Grid.of_min_qubits 10));
  Alcotest.(check int) "1 -> 1x1" 1 (Grid.side (Grid.of_min_qubits 1))

let test_manhattan () =
  let g = Grid.create 5 in
  Alcotest.(check int) "adjacent" 1 (Grid.manhattan g 0 1);
  Alcotest.(check int) "diagonal corner" 8 (Grid.manhattan g 0 24);
  Alcotest.(check int) "self" 0 (Grid.manhattan g 7 7)

let test_neighbors_degree () =
  let g = Grid.create 3 in
  Alcotest.(check int) "corner degree 2" 2 (List.length (Grid.neighbors g 0));
  Alcotest.(check int) "edge degree 3" 3 (List.length (Grid.neighbors g 1));
  Alcotest.(check int) "center degree 4" 4 (List.length (Grid.neighbors g 4))

let test_path_is_shortest () =
  let g = Grid.create 6 in
  let check a b =
    let p = Grid.path g a b in
    Alcotest.(check int) "length = dist + 1" (Grid.manhattan g a b + 1) (List.length p);
    Alcotest.(check int) "starts at a" a (List.hd p);
    Alcotest.(check int) "ends at b" b (List.nth p (List.length p - 1));
    (* consecutive nodes adjacent *)
    let rec adjacent = function
      | x :: y :: rest ->
          Alcotest.(check int) "step of 1" 1 (Grid.manhattan g x y);
          adjacent (y :: rest)
      | _ -> ()
    in
    adjacent p
  in
  check 0 35;
  check 7 22;
  check 3 3

let test_route_cost () =
  let g = Grid.create 5 in
  Alcotest.(check int) "adjacent op costs 1" 1 (Router.route_cost g { Router.a = 0; b = 1 });
  Alcotest.(check int) "distance 3 costs 5" 5 (Router.route_cost g { Router.a = 0; b = 3 })

let test_schedule_serializes_conflicts () =
  let g = Grid.create 3 in
  (* two ops sharing qubit 1 must serialize *)
  let s = Router.schedule g [ { Router.a = 0; b = 1 }; { Router.a = 1; b = 2 } ] in
  Alcotest.(check int) "makespan 2" 2 s.Router.makespan;
  Alcotest.(check int) "two gates" 2 s.Router.two_qubit_gates

let test_schedule_parallel_ops () =
  let g = Grid.create 4 in
  (* disjoint adjacent ops run in parallel *)
  let s = Router.schedule g [ { Router.a = 0; b = 1 }; { Router.a = 2; b = 3 } ] in
  Alcotest.(check int) "makespan 1" 1 s.Router.makespan

let test_schedule_busy_accounting () =
  let g = Grid.create 3 in
  let s = Router.schedule g [ { Router.a = 0; b = 2 } ] in
  (* path 0-1-2, dist 2, cost 3 on all three nodes *)
  Alcotest.(check int) "gates" 3 s.Router.two_qubit_gates;
  Alcotest.(check int) "node 1 busy" 3 s.Router.busy.(1)

let test_planar_code_routes_free () =
  (* All ops adjacent -> total gates equals op count. *)
  let g = Grid.create 4 in
  let ops = List.init 12 (fun i -> { Router.a = i; b = i + 4 }) in
  let s = Router.schedule g ops in
  Alcotest.(check int) "no routing overhead" 12 s.Router.two_qubit_gates

let test_nonlocal_costs_more () =
  let g = Grid.create 6 in
  let local = Router.schedule g [ { Router.a = 0; b = 1 } ] in
  let remote = Router.schedule g [ { Router.a = 0; b = 35 } ] in
  Alcotest.(check bool) "remote pays swaps" true
    (remote.Router.two_qubit_gates > local.Router.two_qubit_gates)

let prop_route_cost_symmetric =
  QCheck.Test.make ~name:"route cost symmetric" ~count:100
    QCheck.(pair (int_bound 24) (int_bound 24))
    (fun (a, b) ->
      QCheck.assume (a <> b);
      let g = Grid.create 5 in
      Router.route_cost g { Router.a; b } = Router.route_cost g { Router.a = b; b = a })

let () =
  Alcotest.run "layout"
    [ ( "grid",
        [ Alcotest.test_case "basics" `Quick test_grid_basics;
          Alcotest.test_case "of_min_qubits" `Quick test_grid_of_min_qubits;
          Alcotest.test_case "manhattan" `Quick test_manhattan;
          Alcotest.test_case "neighbors" `Quick test_neighbors_degree;
          Alcotest.test_case "path shortest" `Quick test_path_is_shortest ] );
      ( "router",
        [ Alcotest.test_case "route cost" `Quick test_route_cost;
          Alcotest.test_case "conflicts serialize" `Quick test_schedule_serializes_conflicts;
          Alcotest.test_case "parallel ops" `Quick test_schedule_parallel_ops;
          Alcotest.test_case "busy accounting" `Quick test_schedule_busy_accounting;
          Alcotest.test_case "planar free" `Quick test_planar_code_routes_free;
          Alcotest.test_case "nonlocal cost" `Quick test_nonlocal_costs_more ] );
      ("properties", List.map QCheck_alcotest.to_alcotest [ prop_route_cost_symmetric ]) ]
