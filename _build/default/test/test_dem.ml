(* Tests for detector-error-model extraction: mechanism signatures must match
   both hand-derived propagation and the frame sampler's statistics. *)

let find_mechanism mechanisms ~detectors ~obs =
  List.find_opt
    (fun m ->
      m.Dem.detectors = Array.of_list detectors && m.Dem.obs_mask = obs)
    mechanisms

let test_single_qubit_x_before_measure () =
  let b = Circuit.builder 1 in
  Circuit.add b (Circuit.Noise1 { px = 0.1; py = 0.; pz = 0.; q = 0 });
  let m = Circuit.measure b 0 in
  Circuit.add_detector b [ m ];
  Circuit.add_observable b [ m ];
  let c = Circuit.finish b in
  let dem = Dem.of_circuit c in
  Alcotest.(check int) "one mechanism" 1 (List.length dem);
  match dem with
  | [ m ] ->
      Alcotest.(check (float 1e-12)) "probability" 0.1 m.Dem.p;
      Alcotest.(check (array int)) "flips detector 0" [| 0 |] m.Dem.detectors;
      Alcotest.(check int) "flips observable" 1 m.Dem.obs_mask
  | _ -> Alcotest.fail "unexpected DEM"

let test_z_noise_invisible () =
  let b = Circuit.builder 1 in
  Circuit.add b (Circuit.Noise1 { px = 0.; py = 0.; pz = 0.3; q = 0 });
  let m = Circuit.measure b 0 in
  Circuit.add_detector b [ m ];
  let c = Circuit.finish b in
  Alcotest.(check int) "no visible mechanism" 0 (List.length (Dem.of_circuit c))

let test_h_conjugation () =
  (* Z before H acts as X at the measurement. *)
  let b = Circuit.builder 1 in
  Circuit.add b (Circuit.Noise1 { px = 0.; py = 0.; pz = 0.2; q = 0 });
  Circuit.add b (Circuit.H 0);
  let m = Circuit.measure b 0 in
  Circuit.add_detector b [ m ];
  let c = Circuit.finish b in
  let dem = Dem.of_circuit c in
  Alcotest.(check int) "one mechanism" 1 (List.length dem);
  Alcotest.(check bool) "flips the detector" true
    (find_mechanism dem ~detectors:[ 0 ] ~obs:0 <> None)

let test_cx_propagation () =
  (* X on the control before CX flips both final measurements. *)
  let b = Circuit.builder 2 in
  Circuit.add b (Circuit.Noise1 { px = 0.05; py = 0.; pz = 0.; q = 0 });
  Circuit.add b (Circuit.CX (0, 1));
  let m0 = Circuit.measure b 0 in
  let m1 = Circuit.measure b 1 in
  Circuit.add_detector b [ m0 ];
  Circuit.add_detector b [ m1 ];
  let c = Circuit.finish b in
  let dem = Dem.of_circuit c in
  Alcotest.(check bool) "double detector signature" true
    (find_mechanism dem ~detectors:[ 0; 1 ] ~obs:0 <> None)

let test_reset_erases () =
  let b = Circuit.builder 1 in
  Circuit.add b (Circuit.Noise1 { px = 0.4; py = 0.; pz = 0.; q = 0 });
  Circuit.add b (Circuit.R 0);
  let m = Circuit.measure b 0 in
  Circuit.add_detector b [ m ];
  let c = Circuit.finish b in
  Alcotest.(check int) "reset erases the error" 0 (List.length (Dem.of_circuit c))

let test_merging_probabilities () =
  (* Two independent X sources on the same qubit merge into one mechanism
     with XOR-combined probability. *)
  let b = Circuit.builder 1 in
  Circuit.add b (Circuit.Noise1 { px = 0.1; py = 0.; pz = 0.; q = 0 });
  Circuit.add b (Circuit.Noise1 { px = 0.2; py = 0.; pz = 0.; q = 0 });
  let m = Circuit.measure b 0 in
  Circuit.add_detector b [ m ];
  let c = Circuit.finish b in
  let dem = Dem.of_circuit c in
  Alcotest.(check int) "merged" 1 (List.length dem);
  match dem with
  | [ m ] ->
      Alcotest.(check (float 1e-12)) "p1(1-p2)+p2(1-p1)"
        ((0.1 *. (1. -. 0.2)) +. (0.2 *. (1. -. 0.1)))
        m.Dem.p
  | _ -> Alcotest.fail "unexpected"

let test_depol2_components () =
  let b = Circuit.builder 2 in
  Circuit.add b (Circuit.Depol2 { p = 0.15; a = 0; b = 1 });
  let m0 = Circuit.measure b 0 in
  let m1 = Circuit.measure b 1 in
  Circuit.add_detector b [ m0 ];
  Circuit.add_detector b [ m1 ];
  let c = Circuit.finish b in
  let dem = Dem.of_circuit c in
  (* Visible signatures: {d0}, {d1}, {d0,d1} — X/Y components on either or
     both qubits; Z-only components are invisible. *)
  Alcotest.(check int) "three signatures" 3 (List.length dem);
  (* each signature collects 4 of the 15 components — e.g. {d0} gets
     (X|Y on 0) x (I|Z on 1) — XOR-combined, not summed *)
  let xor_combine p q = (p *. (1. -. q)) +. (q *. (1. -. p)) in
  let expected =
    let comp = 0.15 /. 15. in
    List.fold_left xor_combine 0. [ comp; comp; comp; comp ]
  in
  List.iter
    (fun m -> Alcotest.(check (float 1e-9)) "4 components combined" expected m.Dem.p)
    dem

let test_dem_matches_frame_statistics () =
  (* Detector marginals predicted by the DEM must match frame sampling on a
     small noisy circuit (single-detector mechanisms only). *)
  let b = Circuit.builder 2 in
  Circuit.add b (Circuit.Noise1 { px = 0.08; py = 0.; pz = 0.; q = 0 });
  Circuit.add b (Circuit.CX (0, 1));
  Circuit.add b (Circuit.Noise1 { px = 0.12; py = 0.; pz = 0.; q = 1 });
  let m0 = Circuit.measure b 0 in
  let m1 = Circuit.measure b 1 in
  Circuit.add_detector b [ m0 ];
  Circuit.add_detector b [ m1 ];
  let c = Circuit.finish b in
  let dem = Dem.of_circuit c in
  (* detector 1 fires when: X(q0) (propagates to both) xor X(q1).
     P(d1) = p0(1-p1) + p1(1-p0) *)
  let p_d1_pred = (0.08 *. 0.88) +. (0.12 *. 0.92) in
  let rng = Rng.create 9 in
  let shots = 40_000 in
  let fires = ref 0 in
  for _ = 1 to shots do
    let s = Frame.sample_shot c rng in
    if Bitvec.get s.Frame.detectors 1 then incr fires
  done;
  let measured = float_of_int !fires /. float_of_int shots in
  Alcotest.(check bool)
    (Printf.sprintf "frame %.4f vs dem-predicted %.4f" measured p_d1_pred)
    true
    (Float.abs (measured -. p_d1_pred) < 0.01);
  Alcotest.(check bool) "graphlike" true (Dem.check_graphlike dem)

let test_surface_code_dem_mostly_graphlike () =
  let exp = Surface_circuit.build (Surface_circuit.default ~distance:3) in
  let dem = Dem.of_circuit exp.Surface_circuit.circuit in
  let bad = Dem_graph.non_graphlike_count dem in
  let total = List.length dem in
  Alcotest.(check bool)
    (Printf.sprintf "%d of %d mechanisms non-graphlike" bad total)
    true
    (float_of_int bad < 0.12 *. float_of_int total)

let test_surface_code_dem_probabilities_positive () =
  let exp = Surface_circuit.build (Surface_circuit.default ~distance:3) in
  let dem = Dem.of_circuit exp.Surface_circuit.circuit in
  List.iter
    (fun m ->
      Alcotest.(check bool) "p in (0, 0.5]" true (m.Dem.p > 0. && m.Dem.p <= 0.5))
    dem

let () =
  Alcotest.run "dem"
    [ ( "mechanisms",
        [ Alcotest.test_case "x before measure" `Quick test_single_qubit_x_before_measure;
          Alcotest.test_case "z invisible" `Quick test_z_noise_invisible;
          Alcotest.test_case "h conjugation" `Quick test_h_conjugation;
          Alcotest.test_case "cx propagation" `Quick test_cx_propagation;
          Alcotest.test_case "reset erases" `Quick test_reset_erases;
          Alcotest.test_case "merging" `Quick test_merging_probabilities;
          Alcotest.test_case "depol2 components" `Quick test_depol2_components ] );
      ( "integration",
        [ Alcotest.test_case "matches frame stats" `Slow test_dem_matches_frame_statistics;
          Alcotest.test_case "surface DEM graphlike" `Quick test_surface_code_dem_mostly_graphlike;
          Alcotest.test_case "surface DEM probs" `Quick test_surface_code_dem_probabilities_positive ] ) ]
