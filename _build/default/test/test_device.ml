(* Tests for the Table-1 device catalog. *)

let test_catalog_size () =
  Alcotest.(check int) "five devices" 5 (List.length Device.catalog)

let test_catalog_valid () = List.iter Device.validate Device.catalog

let test_roles () =
  Alcotest.(check int) "two compute" 2 (List.length Device.compute_devices);
  Alcotest.(check int) "three storage" 3 (List.length Device.storage_devices)

let test_transmon_values () =
  let d = Device.fixed_frequency_qubit in
  Alcotest.(check bool) "T1 300us" true (Float.abs (d.Device.t1 -. 300e-6) < 1e-9);
  Alcotest.(check bool) "T2 550us" true (Float.abs (d.Device.t2 -. 550e-6) < 1e-9);
  Alcotest.(check int) "connectivity 4" 4 d.Device.connectivity;
  Alcotest.(check int) "capacity 1" 1 d.Device.capacity;
  Alcotest.(check bool) "has readout" true (d.Device.readout_time <> None)

let test_resonator_values () =
  let d = Device.multimode_resonator_3d in
  Alcotest.(check int) "10 modes" 10 d.Device.capacity;
  Alcotest.(check int) "single port" 1 d.Device.connectivity;
  Alcotest.(check bool) "no readout" true (d.Device.readout_time = None);
  Alcotest.(check bool) "swap only" true (d.Device.gate_set = Device.Swap_only)

let test_storage_outlives_compute () =
  List.iter
    (fun s ->
      List.iter
        (fun c ->
          Alcotest.(check bool)
            (Printf.sprintf "%s outlives %s" s.Device.name c.Device.name)
            true
            (s.Device.t1 > c.Device.t1))
        Device.compute_devices)
    Device.storage_devices

let test_idle_error_monotone () =
  let d = Device.fixed_frequency_qubit in
  let e1 = Device.idle_error d ~dt:1e-6 in
  let e2 = Device.idle_error d ~dt:10e-6 in
  Alcotest.(check bool) "monotone in dt" true (e1 < e2);
  Alcotest.(check bool) "small for short idles" true (e1 < 0.01);
  Alcotest.(check bool) "zero at zero" true (Device.idle_error d ~dt:0. = 0.)

let test_idle_error_storage_beats_compute () =
  let dt = 100e-6 in
  Alcotest.(check bool) "resonator idles better" true
    (Device.idle_error Device.multimode_resonator_3d ~dt
    < Device.idle_error Device.fixed_frequency_qubit ~dt)

let test_with_coherence () =
  let d = Device.with_coherence Device.fixed_frequency_qubit ~t1:1e-3 ~t2:1e-3 in
  Alcotest.(check bool) "t1 updated" true (d.Device.t1 = 1e-3);
  Alcotest.(check string) "name preserved" "fixed-frequency qubit" d.Device.name

let test_validate_rejects_unphysical () =
  let bad = Device.with_coherence Device.fixed_frequency_qubit ~t1:1e-6 ~t2:1e-3 in
  Alcotest.(check bool) "T2 > 2T1 rejected" true
    (try
       Device.validate bad;
       false
     with Invalid_argument _ -> true)

let test_table_rows () =
  let rows = Device.table_rows () in
  Alcotest.(check int) "five rows" 5 (List.length rows);
  List.iter (fun r -> Alcotest.(check int) "ten columns" 10 (List.length r)) rows

let () =
  Alcotest.run "device"
    [ ( "catalog",
        [ Alcotest.test_case "size" `Quick test_catalog_size;
          Alcotest.test_case "valid" `Quick test_catalog_valid;
          Alcotest.test_case "roles" `Quick test_roles;
          Alcotest.test_case "transmon" `Quick test_transmon_values;
          Alcotest.test_case "resonator" `Quick test_resonator_values;
          Alcotest.test_case "storage coherence" `Quick test_storage_outlives_compute;
          Alcotest.test_case "table rows" `Quick test_table_rows ] );
      ( "derived",
        [ Alcotest.test_case "idle error monotone" `Quick test_idle_error_monotone;
          Alcotest.test_case "storage idles better" `Quick test_idle_error_storage_beats_compute;
          Alcotest.test_case "with_coherence" `Quick test_with_coherence;
          Alcotest.test_case "unphysical rejected" `Quick test_validate_rejects_unphysical ] ) ]
