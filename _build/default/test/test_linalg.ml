(* Tests for the dense complex matrix substrate. *)

let c re im = { Complex.re; im }
let r x = c x 0.

let mat = Alcotest.testable Cmat.pp (Cmat.approx_equal ~tol:1e-9)

let test_identity_mul () =
  let a = Cmat.of_real_lists [ [ 1.; 2. ]; [ 3.; 4. ] ] in
  Alcotest.check mat "I*a = a" a (Cmat.mul (Cmat.identity 2) a);
  Alcotest.check mat "a*I = a" a (Cmat.mul a (Cmat.identity 2))

let test_mul_known () =
  let a = Cmat.of_real_lists [ [ 1.; 2. ]; [ 3.; 4. ] ] in
  let b = Cmat.of_real_lists [ [ 5.; 6. ]; [ 7.; 8. ] ] in
  let expected = Cmat.of_real_lists [ [ 19.; 22. ]; [ 43.; 50. ] ] in
  Alcotest.check mat "2x2 product" expected (Cmat.mul a b)

let test_mul_complex () =
  (* (i) * (i) = -1 as 1x1 matrices *)
  let i1 = Cmat.of_lists [ [ c 0. 1. ] ] in
  let expected = Cmat.of_lists [ [ r (-1.) ] ] in
  Alcotest.check mat "i*i = -1" expected (Cmat.mul i1 i1)

let test_mul_shape_mismatch () =
  let a = Cmat.create 2 3 and b = Cmat.create 2 3 in
  Alcotest.check_raises "shape" (Invalid_argument "Cmat.mul: dimension mismatch")
    (fun () -> ignore (Cmat.mul a b))

let test_add_sub () =
  let a = Cmat.of_real_lists [ [ 1.; 2. ]; [ 3.; 4. ] ] in
  let b = Cmat.of_real_lists [ [ 4.; 3. ]; [ 2.; 1. ] ] in
  let sum = Cmat.of_real_lists [ [ 5.; 5. ]; [ 5.; 5. ] ] in
  Alcotest.check mat "add" sum (Cmat.add a b);
  Alcotest.check mat "sub recovers" a (Cmat.sub sum b)

let test_scale () =
  let a = Cmat.of_real_lists [ [ 1.; 0. ]; [ 0.; 1. ] ] in
  let ia = Cmat.scale (c 0. 1.) a in
  Alcotest.check mat "scale by i twice = -1"
    (Cmat.scale_re (-1.) a)
    (Cmat.scale (c 0. 1.) ia)

let test_kron_dims_and_values () =
  let a = Cmat.of_real_lists [ [ 1.; 2. ] ] in
  let b = Cmat.of_real_lists [ [ 0.; 1. ]; [ 1.; 0. ] ] in
  let k = Cmat.kron a b in
  Alcotest.(check int) "rows" 2 k.Cmat.rows;
  Alcotest.(check int) "cols" 4 k.Cmat.cols;
  let expected = Cmat.of_real_lists [ [ 0.; 1.; 0.; 2. ]; [ 1.; 0.; 2.; 0. ] ] in
  Alcotest.check mat "values" expected k

let test_kron_mixed_product () =
  (* (A kron B)(C kron D) = AC kron BD *)
  let a = Cmat.of_real_lists [ [ 1.; 2. ]; [ 0.; 1. ] ] in
  let b = Cmat.of_real_lists [ [ 0.; 1. ]; [ 1.; 0. ] ] in
  let cm = Cmat.of_real_lists [ [ 2.; 0. ]; [ 1.; 1. ] ] in
  let d = Cmat.of_real_lists [ [ 1.; 1. ]; [ 0.; 2. ] ] in
  let lhs = Cmat.mul (Cmat.kron a b) (Cmat.kron cm d) in
  let rhs = Cmat.kron (Cmat.mul a cm) (Cmat.mul b d) in
  Alcotest.check mat "mixed product" rhs lhs

let test_adjoint () =
  let a = Cmat.of_lists [ [ c 1. 2.; c 3. 4. ]; [ c 5. 6.; c 7. 8. ] ] in
  let adj = Cmat.adjoint a in
  Alcotest.(check bool) "entry (0,1)" true
    (Complex.norm (Complex.sub (Cmat.get adj 0 1) (c 5. (-6.))) < 1e-12);
  Alcotest.check mat "double adjoint" a (Cmat.adjoint adj)

let test_trace () =
  let a = Cmat.of_lists [ [ c 1. 1.; r 9. ]; [ r 9.; c 2. (-3.) ] ] in
  let tr = Cmat.trace a in
  Alcotest.(check bool) "trace value" true (Complex.norm (Complex.sub tr (c 3. (-2.))) < 1e-12)

let test_hermitian_check () =
  let herm = Cmat.of_lists [ [ r 1.; c 0. 1. ]; [ c 0. (-1.); r 2. ] ] in
  Alcotest.(check bool) "hermitian" true (Cmat.is_hermitian herm);
  let non = Cmat.of_lists [ [ r 1.; c 0. 1. ]; [ c 0. 1.; r 2. ] ] in
  Alcotest.(check bool) "not hermitian" false (Cmat.is_hermitian non)

let test_ptrace_product_state () =
  (* rho = |0><0| kron |1><1|; tracing out either qubit leaves the other. *)
  let q0 = Cmat.of_real_lists [ [ 1.; 0. ]; [ 0.; 0. ] ] in
  let q1 = Cmat.of_real_lists [ [ 0.; 0. ]; [ 0.; 1. ] ] in
  let rho = Cmat.kron q0 q1 in
  Alcotest.check mat "keep qubit 0" q0 (Cmat.ptrace ~keep:[ 0 ] ~nqubits:2 rho);
  Alcotest.check mat "keep qubit 1" q1 (Cmat.ptrace ~keep:[ 1 ] ~nqubits:2 rho)

let test_ptrace_bell_is_mixed () =
  let a = 1. /. sqrt 2. in
  let bell =
    Cmat.init 4 4 (fun i j ->
        let amp k = if k = 0 || k = 3 then a else 0. in
        r (amp i *. amp j))
  in
  let reduced = Cmat.ptrace ~keep:[ 0 ] ~nqubits:2 bell in
  let mixed = Cmat.scale_re 0.5 (Cmat.identity 2) in
  Alcotest.check mat "maximally mixed" mixed reduced

let test_ptrace_keep_order () =
  (* |01>: keep [1;0] should give |10>-ordered state. *)
  let q0 = Cmat.of_real_lists [ [ 1.; 0. ]; [ 0.; 0. ] ] in
  let q1 = Cmat.of_real_lists [ [ 0.; 0. ]; [ 0.; 1. ] ] in
  let rho = Cmat.kron q0 q1 in
  let swapped = Cmat.ptrace ~keep:[ 1; 0 ] ~nqubits:2 rho in
  Alcotest.check mat "order respected" (Cmat.kron q1 q0) swapped

let test_embed_unitary_on_target () =
  (* X on qubit 1 of 2: |00> -> |01>. *)
  let full = Cmat.embed_unitary ~nqubits:2 ~targets:[ 1 ] Gate.x in
  let input = Cmat.of_real_lists [ [ 1. ]; [ 0. ]; [ 0. ]; [ 0. ] ] in
  let output = Cmat.mul full input in
  Alcotest.(check bool) "amplitude moved to |01>" true
    (Complex.norm (Complex.sub (Cmat.get output 1 0) Complex.one) < 1e-12)

let test_embed_unitary_reversed_targets () =
  (* CX with control=qubit1, target=qubit0: |01> -> |11>. *)
  let full = Cmat.embed_unitary ~nqubits:2 ~targets:[ 1; 0 ] Gate.cx in
  let input = Cmat.of_real_lists [ [ 0. ]; [ 1. ]; [ 0. ]; [ 0. ] ] in
  let output = Cmat.mul full input in
  Alcotest.(check bool) "flips qubit 0" true
    (Complex.norm (Complex.sub (Cmat.get output 3 0) Complex.one) < 1e-12)

let test_embed_unitary_is_unitary () =
  let full = Cmat.embed_unitary ~nqubits:3 ~targets:[ 2; 0 ] Gate.cx in
  Alcotest.(check bool) "lifted CX unitary" true (Gate.is_unitary full)

let test_sandwich () =
  (* X |0><0| X = |1><1| *)
  let rho0 = Cmat.of_real_lists [ [ 1.; 0. ]; [ 0.; 0. ] ] in
  let rho1 = Cmat.of_real_lists [ [ 0.; 0. ]; [ 0.; 1. ] ] in
  Alcotest.check mat "X conjugation" rho1 (Cmat.sandwich Gate.x rho0)

let test_frobenius () =
  let a = Cmat.of_real_lists [ [ 3.; 0. ]; [ 0.; 4. ] ] in
  Alcotest.(check bool) "norm 5" true (Float.abs (Cmat.frobenius_norm a -. 5.) < 1e-12)

let test_of_lists_ragged () =
  Alcotest.check_raises "ragged" (Invalid_argument "Cmat.of_lists: ragged rows")
    (fun () -> ignore (Cmat.of_real_lists [ [ 1. ]; [ 1.; 2. ] ]))

(* Gate sanity lives here because gates are pure matrices. *)

let test_gates_unitary () =
  List.iter
    (fun (name, g) ->
      Alcotest.(check bool) (name ^ " unitary") true (Gate.is_unitary g))
    [ ("x", Gate.x); ("y", Gate.y); ("z", Gate.z); ("h", Gate.h); ("s", Gate.s);
      ("t", Gate.t); ("cx", Gate.cx); ("cz", Gate.cz); ("swap", Gate.swap);
      ("iswap", Gate.iswap); ("rx", Gate.rx 0.7); ("ry", Gate.ry 1.1);
      ("rz", Gate.rz 2.3); ("cphase", Gate.cphase 0.9) ]

let test_gate_identities () =
  Alcotest.check mat "HH = I" (Cmat.identity 2) (Cmat.mul Gate.h Gate.h);
  Alcotest.check mat "SS = Z" Gate.z (Cmat.mul Gate.s Gate.s);
  Alcotest.check mat "TT = S" Gate.s (Cmat.mul Gate.t Gate.t);
  Alcotest.check mat "XYX = -Y" (Cmat.scale_re (-1.) Gate.y)
    (Cmat.mul (Cmat.mul Gate.x Gate.y) Gate.x);
  Alcotest.check mat "HXH = Z" Gate.z (Cmat.mul (Cmat.mul Gate.h Gate.x) Gate.h);
  Alcotest.check mat "CX^2 = I" (Cmat.identity 4) (Cmat.mul Gate.cx Gate.cx);
  Alcotest.check mat "SWAP^2 = I" (Cmat.identity 4) (Cmat.mul Gate.swap Gate.swap)

let test_pauli_string () =
  Alcotest.check mat "XZ = X kron Z" (Cmat.kron Gate.x Gate.z) (Gate.pauli_string "XZ");
  Alcotest.check mat "single" Gate.y (Gate.pauli_string "Y")

let prop_kron_associative =
  let gen_small =
    QCheck.Gen.(
      map
        (fun entries -> Cmat.of_real_lists [ [ List.nth entries 0; List.nth entries 1 ];
                                             [ List.nth entries 2; List.nth entries 3 ] ])
        (list_size (return 4) (float_bound_inclusive 5.)))
  in
  let arb = QCheck.make gen_small in
  QCheck.Test.make ~name:"kron associativity" ~count:50 (QCheck.triple arb arb arb)
    (fun (a, b, c) ->
      Cmat.approx_equal ~tol:1e-6
        (Cmat.kron (Cmat.kron a b) c)
        (Cmat.kron a (Cmat.kron b c)))

let prop_trace_cyclic =
  let gen_small =
    QCheck.Gen.(
      map
        (fun entries -> Cmat.of_real_lists [ [ List.nth entries 0; List.nth entries 1 ];
                                             [ List.nth entries 2; List.nth entries 3 ] ])
        (list_size (return 4) (float_bound_inclusive 3.)))
  in
  let arb = QCheck.make gen_small in
  QCheck.Test.make ~name:"trace(AB) = trace(BA)" ~count:100 (QCheck.pair arb arb)
    (fun (a, b) ->
      let tab = Cmat.trace (Cmat.mul a b) and tba = Cmat.trace (Cmat.mul b a) in
      Complex.norm (Complex.sub tab tba) < 1e-6)

let () =
  let qc = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "linalg"
    [ ( "matrix",
        [ Alcotest.test_case "identity mul" `Quick test_identity_mul;
          Alcotest.test_case "known product" `Quick test_mul_known;
          Alcotest.test_case "complex product" `Quick test_mul_complex;
          Alcotest.test_case "shape mismatch" `Quick test_mul_shape_mismatch;
          Alcotest.test_case "add/sub" `Quick test_add_sub;
          Alcotest.test_case "scale" `Quick test_scale;
          Alcotest.test_case "kron" `Quick test_kron_dims_and_values;
          Alcotest.test_case "kron mixed product" `Quick test_kron_mixed_product;
          Alcotest.test_case "adjoint" `Quick test_adjoint;
          Alcotest.test_case "trace" `Quick test_trace;
          Alcotest.test_case "hermitian" `Quick test_hermitian_check;
          Alcotest.test_case "frobenius" `Quick test_frobenius;
          Alcotest.test_case "ragged input" `Quick test_of_lists_ragged;
          Alcotest.test_case "sandwich" `Quick test_sandwich ] );
      ( "ptrace/embed",
        [ Alcotest.test_case "ptrace product" `Quick test_ptrace_product_state;
          Alcotest.test_case "ptrace bell" `Quick test_ptrace_bell_is_mixed;
          Alcotest.test_case "ptrace order" `Quick test_ptrace_keep_order;
          Alcotest.test_case "embed target" `Quick test_embed_unitary_on_target;
          Alcotest.test_case "embed reversed" `Quick test_embed_unitary_reversed_targets;
          Alcotest.test_case "embed unitary" `Quick test_embed_unitary_is_unitary ] );
      ( "gates",
        [ Alcotest.test_case "unitarity" `Quick test_gates_unitary;
          Alcotest.test_case "identities" `Quick test_gate_identities;
          Alcotest.test_case "pauli string" `Quick test_pauli_string ] );
      ("properties", qc [ prop_kron_associative; prop_trace_cyclic ]) ]
