(* Tests for the distillation stack: Bell-diagonal algebra cross-validated
   against the exact density-matrix simulator, the DEJMPS recurrence
   cross-validated against the full 4-qubit protocol circuit, the EP source,
   and the module-level discrete-event simulation. *)

let bell_vec which =
  let a = 1. /. sqrt 2. in
  match which with
  | 0 -> [| a; 0.; 0.; a |] (* phi+ *)
  | 1 -> [| 0.; a; a; 0. |] (* psi+ *)
  | 2 -> [| 0.; a; -.a; 0. |] (* psi- *)
  | _ -> [| a; 0.; 0.; -.a |] (* phi- *)

(* Density matrix of a Bell-diagonal state. *)
let rho_of_pair (p : Bell_pair.t) =
  let w = Bell_pair.to_probs p in
  let acc = ref (Cmat.create 4 4) in
  Array.iteri
    (fun i wi ->
      let v = bell_vec i in
      let amps = Array.map (fun x -> { Complex.re = x; im = 0. }) v in
      let dm = Dm.of_ket amps in
      acc := Cmat.add !acc (Cmat.scale_re wi (Dm.rho dm)))
    w;
  !acc

let component rho which =
  let v = bell_vec which in
  let acc = ref 0. in
  for i = 0 to 3 do
    for j = 0 to 3 do
      acc := !acc +. (v.(i) *. v.(j) *. (Cmat.get rho i j).Complex.re)
    done
  done;
  !acc

(* ------------------------------------------------------ algebra vs dm *)

let test_werner_components () =
  let p = Bell_pair.werner 0.85 in
  Bell_pair.validate p;
  Alcotest.(check (float 1e-12)) "fidelity" 0.85 (Bell_pair.fidelity p);
  Alcotest.(check (float 1e-12)) "infidelity" 0.15 (Bell_pair.infidelity p)

let test_pauli_half_against_dm () =
  (* Apply an X channel to one half and compare all four components. *)
  let p0 = Bell_pair.werner 0.9 in
  let px = 0.2 in
  let predicted = Bell_pair.apply_pauli_half p0 ~px ~py:0. ~pz:0. in
  let rho = rho_of_pair p0 in
  let rho' = Channel.apply (Channel.bit_flip px) ~targets:[ 1 ] ~nqubits:2 rho in
  let pred = Bell_pair.to_probs predicted in
  List.iteri
    (fun i which ->
      Alcotest.(check (float 1e-9))
        (Printf.sprintf "component %d" i)
        pred.(i) (component rho' which))
    [ 0; 1; 2; 3 ]

let test_decay_against_dm () =
  (* Two-sided thermal decay vs the exact (untwirled) idle channel on both
     qubits.  The Bell-diagonal model is the Pauli-twirled channel, so the
     comparison bounds the twirl approximation error: every Bell weight must
     agree with the exact channel's to well within the total decay strength
     (~5% here), and the dominant weight to a few permille. *)
  let p0 = Bell_pair.werner 0.92 in
  let t1 = 0.5e-3 and t2 = 0.5e-3 and dt = 50e-6 in
  let predicted = Bell_pair.decay p0 ~t1 ~t2 ~dt in
  let rho = rho_of_pair p0 in
  let rho = Channel.apply (Channel.idle ~t1 ~t2 ~dt) ~targets:[ 0 ] ~nqubits:2 rho in
  let rho = Channel.apply (Channel.idle ~t1 ~t2 ~dt) ~targets:[ 1 ] ~nqubits:2 rho in
  let pred = Bell_pair.to_probs predicted in
  List.iteri
    (fun i which ->
      Alcotest.(check (float 5e-3))
        (Printf.sprintf "twirl approximation, component %d" i)
        pred.(i) (component rho which))
    [ 0; 1; 2; 3 ];
  Alcotest.(check (float 3e-3)) "fidelity approximation" pred.(0) (component rho 0)

let test_depolarize_reduces_fidelity () =
  let p = Bell_pair.depolarize (Bell_pair.werner 0.98) ~p:0.03 in
  Alcotest.(check bool) "fidelity drops" true (Bell_pair.fidelity p < 0.98);
  Bell_pair.validate p

(* -------------------------------------------- DEJMPS vs exact circuit *)

let dejmps_circuit pa pb =
  (* qubits: a1 b1 a2 b2; pair 1 on (0,1), pair 2 on (2,3) *)
  let rho =
    ref
      (Cmat.kron (rho_of_pair pa) (rho_of_pair pb))
  in
  let apply u targets = rho := Cmat.sandwich (Cmat.embed_unitary ~nqubits:4 ~targets u) !rho in
  apply (Gate.rx (Float.pi /. 2.)) [ 0 ];
  apply (Gate.rx (-.Float.pi /. 2.)) [ 1 ];
  apply (Gate.rx (Float.pi /. 2.)) [ 2 ];
  apply (Gate.rx (-.Float.pi /. 2.)) [ 3 ];
  apply Gate.cx [ 0; 2 ];
  apply Gate.cx [ 1; 3 ];
  (* keep the even-parity branch of measuring qubits 2,3 *)
  let proj =
    Cmat.init 16 16 (fun i j ->
        if i = j && (i lsr 1) land 1 = i land 1 then Complex.one else Complex.zero)
  in
  let kept = Cmat.mul (Cmat.mul proj !rho) proj in
  let p_succ = (Cmat.trace kept).Complex.re in
  let red = Cmat.ptrace ~keep:[ 0; 1 ] ~nqubits:4 (Cmat.scale_re (1. /. p_succ) kept) in
  (p_succ, red)

let test_dejmps_matches_circuit () =
  List.iter
    (fun (pa, pb) ->
      let p_pred, out = Bell_pair.dejmps pa pb in
      let p_sim, red = dejmps_circuit pa pb in
      Alcotest.(check (float 1e-9)) "success probability" p_sim p_pred;
      let probs = Bell_pair.to_probs out in
      List.iteri
        (fun i which ->
          Alcotest.(check (float 1e-9))
            (Printf.sprintf "output component %d" i)
            (component red which) probs.(i))
        [ 0; 1; 2; 3 ])
    [ (Bell_pair.werner 0.9, Bell_pair.werner 0.85);
      (Bell_pair.werner 0.75, Bell_pair.werner 0.75);
      ( { Bell_pair.phi_p = 0.8; psi_p = 0.1; psi_m = 0.04; phi_m = 0.06 },
        { Bell_pair.phi_p = 0.7; psi_p = 0.05; psi_m = 0.15; phi_m = 0.10 } ) ]

let test_dejmps_iteration_converges () =
  let p = ref (Bell_pair.werner 0.97) in
  for _ = 1 to 5 do
    let _, out = Bell_pair.dejmps !p !p in
    p := out
  done;
  Alcotest.(check bool) "converges to near-perfect" true (Bell_pair.fidelity !p > 0.9999)

let test_dejmps_improves_above_half () =
  let p = Bell_pair.werner 0.7 in
  let _, out = Bell_pair.dejmps p p in
  Alcotest.(check bool) "improves" true (Bell_pair.fidelity out > 0.7)

let prop_dejmps_output_normalized =
  QCheck.Test.make ~name:"dejmps output is a valid state" ~count:200
    QCheck.(pair (float_range 0.55 1.) (float_range 0.55 1.))
    (fun (fa, fb) ->
      let _, out = Bell_pair.dejmps (Bell_pair.werner fa) (Bell_pair.werner fb) in
      Bell_pair.validate out;
      true)

let prop_decay_keeps_valid =
  QCheck.Test.make ~name:"decay preserves validity" ~count:200
    QCheck.(pair (float_range 0.5 1.) (float_range 1e-7 1e-3))
    (fun (f, dt) ->
      let p = Bell_pair.decay (Bell_pair.werner f) ~t1:0.5e-3 ~t2:0.5e-3 ~dt in
      Bell_pair.validate p;
      Bell_pair.fidelity p <= f +. 1e-9)

(* -------------------------------------------------------------- source *)

let test_source_rate () =
  let src = Ep_source.create ~rate_hz:1e6 () in
  let rng = Rng.create 3 in
  let n = 20_000 in
  let acc = ref 0. in
  for _ = 1 to n do
    acc := !acc +. Ep_source.next_gap src rng
  done;
  let mean = !acc /. float_of_int n in
  Alcotest.(check bool) "mean gap ~ 1us" true (Float.abs (mean -. 1e-6) < 5e-8)

let test_source_infidelity_range () =
  let src = Ep_source.create ~infidelity_lo:0.02 ~infidelity_hi:0.08 ~rate_hz:1e6 () in
  let rng = Rng.create 4 in
  for _ = 1 to 500 do
    let p = Ep_source.sample_pair src rng in
    let infid = Bell_pair.infidelity p in
    Alcotest.(check bool) "in range" true (infid >= 0.0199 && infid <= 0.0801)
  done

let test_source_rejects_bad () =
  Alcotest.(check bool) "negative rate" true
    (try
       ignore (Ep_source.create ~rate_hz:(-1.) ());
       false
     with Invalid_argument _ -> true)

(* -------------------------------------------------------------- module *)

let test_module_delivers_het () =
  let cfg = Distill_module.heterogeneous ~rate_hz:1e6 () in
  let r = Distill_module.run cfg (Rng.create 7) ~horizon:1e-3 in
  Alcotest.(check bool) "delivers pairs" true (r.Distill_module.delivered > 50);
  Alcotest.(check bool) "successes <= attempts" true
    (r.Distill_module.distill_successes <= r.Distill_module.distill_attempts)

let test_module_het_beats_hom_at_low_rate () =
  let rate_hz = 2e5 in
  let het =
    Distill_module.run (Distill_module.heterogeneous ~rate_hz ()) (Rng.create 9)
      ~horizon:3e-3
  in
  let hom =
    Distill_module.run (Distill_module.homogeneous ~rate_hz ()) (Rng.create 9)
      ~horizon:3e-3
  in
  Alcotest.(check bool)
    (Printf.sprintf "het (%d) > 2x hom (%d)" het.Distill_module.delivered
       hom.Distill_module.delivered)
    true
    (het.Distill_module.delivered > 2 * hom.Distill_module.delivered)

let test_module_rate_monotone_in_ts () =
  let rate_hz = 3e5 in
  let run ts =
    (Distill_module.run
       (Distill_module.heterogeneous ~ts ~rate_hz ())
       (Rng.create 10) ~horizon:3e-3)
      .Distill_module.delivered
  in
  let r1 = run 1e-3 and r5 = run 5e-3 in
  Alcotest.(check bool) (Printf.sprintf "Ts=5ms (%d) >= Ts=1ms (%d)" r5 r1) true (r5 >= r1)

let test_module_trace_present () =
  let cfg = Distill_module.heterogeneous ~rate_hz:1e6 () in
  let r = Distill_module.run ~trace_dt:10e-6 cfg (Rng.create 11) ~horizon:200e-6 in
  Alcotest.(check bool) "trace sampled" true (List.length r.Distill_module.trace >= 15);
  let last = List.nth r.Distill_module.trace (List.length r.Distill_module.trace - 1) in
  (match last.Distill_module.best_output_infidelity with
  | Some i -> Alcotest.(check bool) "reaches low infidelity" true (i < 0.01)
  | None -> Alcotest.fail "output empty after 200us at 1MHz")

let test_module_output_fidelity_at_target () =
  let cfg = Distill_module.heterogeneous ~rate_hz:1e6 () in
  let r = Distill_module.run cfg (Rng.create 13) ~horizon:1e-3 in
  Alcotest.(check bool) "rate conversion" true
    (Float.abs
       (Distill_module.delivered_rate_per_ms r
       -. float_of_int r.Distill_module.delivered)
    < 1e-9)

let () =
  let qc = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "distill"
    [ ( "bell algebra",
        [ Alcotest.test_case "werner" `Quick test_werner_components;
          Alcotest.test_case "pauli half vs dm" `Quick test_pauli_half_against_dm;
          Alcotest.test_case "decay vs dm" `Quick test_decay_against_dm;
          Alcotest.test_case "depolarize" `Quick test_depolarize_reduces_fidelity ] );
      ( "dejmps",
        [ Alcotest.test_case "matches exact circuit" `Quick test_dejmps_matches_circuit;
          Alcotest.test_case "iteration converges" `Quick test_dejmps_iteration_converges;
          Alcotest.test_case "improves above 1/2" `Quick test_dejmps_improves_above_half ] );
      ( "source",
        [ Alcotest.test_case "rate" `Quick test_source_rate;
          Alcotest.test_case "infidelity range" `Quick test_source_infidelity_range;
          Alcotest.test_case "rejects bad" `Quick test_source_rejects_bad ] );
      ( "module",
        [ Alcotest.test_case "delivers" `Quick test_module_delivers_het;
          Alcotest.test_case "het beats hom" `Slow test_module_het_beats_hom_at_low_rate;
          Alcotest.test_case "monotone in Ts" `Slow test_module_rate_monotone_in_ts;
          Alcotest.test_case "trace" `Quick test_module_trace_present;
          Alcotest.test_case "rate conversion" `Quick test_module_output_fidelity_at_target ] );
      ("properties", qc [ prop_dejmps_output_normalized; prop_decay_keeps_valid ]) ]
