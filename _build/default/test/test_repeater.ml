(* Tests for the repeater-chain extension: entanglement swapping algebra
   (cross-validated against the exact Bell-measurement circuit) and the
   chain-level discrete-event simulation. *)

(* ------------------------------------------------------ swap vs circuit *)

let bell_vec which =
  let a = 1. /. sqrt 2. in
  match which with
  | 0 -> [| a; 0.; 0.; a |]
  | 1 -> [| 0.; a; a; 0. |]
  | 2 -> [| 0.; a; -.a; 0. |]
  | _ -> [| a; 0.; 0.; -.a |]

let rho_of_pair (p : Bell_pair.t) =
  let w = Bell_pair.to_probs p in
  let acc = ref (Cmat.create 4 4) in
  Array.iteri
    (fun i wi ->
      let amps = Array.map (fun x -> { Complex.re = x; im = 0. }) (bell_vec i) in
      acc := Cmat.add !acc (Cmat.scale_re wi (Dm.rho (Dm.of_ket amps))))
    w;
  !acc

let component rho which =
  let v = bell_vec which in
  let acc = ref 0. in
  for i = 0 to 3 do
    for j = 0 to 3 do
      acc := !acc +. (v.(i) *. v.(j) *. (Cmat.get rho i j).Complex.re)
    done
  done;
  !acc

(* Exact entanglement swapping: pairs (a,b1) and (b2,c); Bell-measure
   (b1,b2); accumulate the corrected (a,c) state over all four outcomes. *)
let swap_circuit pa pb =
  (* qubits: a=0, b1=1, b2=2, c=3 *)
  let rho = ref (Cmat.kron (rho_of_pair pa) (rho_of_pair pb)) in
  let apply u targets = rho := Cmat.sandwich (Cmat.embed_unitary ~nqubits:4 ~targets u) !rho in
  apply Gate.cx [ 1; 2 ];
  apply Gate.h [ 1 ];
  (* Outcome (m1, m2): correction on c: Z^m1 X^m2. *)
  let acc = ref (Cmat.create 4 4) in
  for m1 = 0 to 1 do
    for m2 = 0 to 1 do
      let proj =
        Cmat.init 16 16 (fun i j ->
            let b1 = (i lsr 2) land 1 and b2 = (i lsr 1) land 1 in
            if i = j && b1 = m1 && b2 = m2 then Complex.one else Complex.zero)
      in
      let branch = Cmat.mul (Cmat.mul proj !rho) proj in
      let p_branch = (Cmat.trace branch).Complex.re in
      if p_branch > 1e-12 then begin
        let red = Cmat.ptrace ~keep:[ 0; 3 ] ~nqubits:4 branch in
        let fix u = Cmat.sandwich (Cmat.embed_unitary ~nqubits:2 ~targets:[ 1 ] u) in
        let red = if m2 = 1 then fix Gate.x red else red in
        let red = if m1 = 1 then fix Gate.z red else red in
        acc := Cmat.add !acc red
      end
    done
  done;
  !acc

let test_swap_matches_circuit () =
  List.iter
    (fun (pa, pb) ->
      let predicted = Bell_pair.to_probs (Bell_pair.swap pa pb) in
      let rho = swap_circuit pa pb in
      List.iteri
        (fun i which ->
          Alcotest.(check (float 1e-9))
            (Printf.sprintf "component %d" i)
            predicted.(i) (component rho which))
        [ 0; 1; 2; 3 ])
    [ (Bell_pair.werner 0.95, Bell_pair.werner 0.9);
      ( { Bell_pair.phi_p = 0.85; psi_p = 0.05; psi_m = 0.02; phi_m = 0.08 },
        Bell_pair.werner 0.97 ) ]

let test_swap_perfect_inputs () =
  let out = Bell_pair.swap Bell_pair.perfect Bell_pair.perfect in
  Alcotest.(check (float 1e-12)) "perfect swap" 1. (Bell_pair.fidelity out)

let test_swap_infidelity_accumulates () =
  let p = Bell_pair.werner 0.98 in
  let once = Bell_pair.swap p p in
  Alcotest.(check bool) "worse than either input" true
    (Bell_pair.fidelity once < 0.98);
  Alcotest.(check bool) "roughly additive" true
    (Bell_pair.infidelity once < 2.2 *. Bell_pair.infidelity p)

(* ---------------------------------------------------------------- chain *)

let test_single_link_delivers () =
  let cfg = Repeater.default ~n_links:1 ~link_rate_hz:1e6 () in
  let r = Repeater.run cfg (Rng.create 3) ~horizon:2e-3 in
  Alcotest.(check bool) "delivers" true (r.Repeater.delivered > 100);
  Alcotest.(check int) "no swaps on one link" 0 r.Repeater.swaps;
  Alcotest.(check bool) "fidelity above threshold" true
    (Repeater.mean_delivered_fidelity r >= cfg.Repeater.delivery_threshold)

let test_chain_swaps_and_delivers () =
  let cfg = Repeater.default ~n_links:4 ~link_rate_hz:1e6 () in
  let r = Repeater.run cfg (Rng.create 4) ~horizon:3e-3 in
  Alcotest.(check bool) "delivers end to end" true (r.Repeater.delivered > 20);
  Alcotest.(check bool) "swapping happened" true (r.Repeater.swaps > r.Repeater.delivered);
  Alcotest.(check bool) "fidelity above threshold" true
    (Repeater.mean_delivered_fidelity r >= cfg.Repeater.delivery_threshold)

let test_het_beats_hom_on_long_chain () =
  let horizon = 3e-3 in
  let het =
    Repeater.run (Repeater.default ~n_links:6 ~link_rate_hz:1e6 ()) (Rng.create 5)
      ~horizon
  in
  let hom =
    Repeater.run (Repeater.homogeneous ~n_links:6 ~link_rate_hz:1e6 ()) (Rng.create 5)
      ~horizon
  in
  Alcotest.(check bool)
    (Printf.sprintf "het %d > 2x hom %d" het.Repeater.delivered hom.Repeater.delivered)
    true
    (het.Repeater.delivered > 2 * hom.Repeater.delivered)

let test_rate_decreases_with_length () =
  let run n =
    (Repeater.run (Repeater.default ~n_links:n ~link_rate_hz:1e6 ()) (Rng.create 6)
       ~horizon:2e-3)
      .Repeater.delivered
  in
  let r2 = run 2 and r8 = run 8 in
  Alcotest.(check bool) (Printf.sprintf "2 links %d >= 8 links %d" r2 r8) true (r2 >= r8)

let test_rejects_bad_config () =
  Alcotest.(check bool) "n_links >= 1" true
    (try
       ignore (Repeater.default ~n_links:0 ~link_rate_hz:1e6 ());
       false
     with Invalid_argument _ -> true)

let () =
  Alcotest.run "repeater"
    [ ( "swap algebra",
        [ Alcotest.test_case "matches exact circuit" `Quick test_swap_matches_circuit;
          Alcotest.test_case "perfect inputs" `Quick test_swap_perfect_inputs;
          Alcotest.test_case "infidelity accumulates" `Quick test_swap_infidelity_accumulates ] );
      ( "chain",
        [ Alcotest.test_case "single link" `Quick test_single_link_delivers;
          Alcotest.test_case "swaps and delivers" `Quick test_chain_swaps_and_delivers;
          Alcotest.test_case "het beats hom" `Slow test_het_beats_hom_on_long_chain;
          Alcotest.test_case "length penalty" `Slow test_rate_decreases_with_length;
          Alcotest.test_case "bad config" `Quick test_rejects_bad_config ] ) ]
