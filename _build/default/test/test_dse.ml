(* Tests for the design-space-exploration layer: sweeps, the
   characterization cache, and the burden accounting. *)

let feq ?(eps = 1e-9) a b = Float.abs (a -. b) <= eps

(* ---------------------------------------------------------------- sweep *)

let test_linspace () =
  let xs = Sweep.linspace ~lo:0. ~hi:1. ~n:5 in
  Alcotest.(check int) "count" 5 (List.length xs);
  Alcotest.(check bool) "endpoints" true
    (feq (List.hd xs) 0. && feq (List.nth xs 4) 1.);
  Alcotest.(check bool) "spacing" true (feq (List.nth xs 1) 0.25)

let test_logspace () =
  let xs = Sweep.logspace ~lo:1. ~hi:100. ~n:3 in
  Alcotest.(check bool) "geometric middle" true (feq ~eps:1e-9 (List.nth xs 1) 10.);
  Alcotest.(check bool) "rejects nonpositive" true
    (try
       ignore (Sweep.logspace ~lo:0. ~hi:1. ~n:3);
       false
     with Invalid_argument _ -> true)

let test_sweep_and_grid () =
  let s = Sweep.sweep [ 1; 2; 3 ] ~f:(fun x -> x * x) in
  Alcotest.(check (list (pair int int))) "sweep" [ (1, 1); (2, 4); (3, 9) ] s;
  let g = Sweep.grid [ 1; 2 ] [ 10; 20 ] ~f:( + ) in
  Alcotest.(check int) "grid size" 4 (List.length g);
  Alcotest.(check bool) "row major" true (List.hd g = (1, 10, 11))

let test_argmin_argmax () =
  let pts = [ ("a", 3.); ("b", 1.); ("c", 2.) ] in
  Alcotest.(check string) "argmin" "b" (fst (Sweep.argmin pts));
  Alcotest.(check string) "argmax" "a" (fst (Sweep.argmax pts));
  Alcotest.(check bool) "empty raises" true
    (try
       ignore (Sweep.argmin ([] : (int * float) list));
       false
     with Invalid_argument _ -> true)

let test_pareto () =
  let pts = [ ("a", 1., 5.); ("b", 2., 2.); ("c", 5., 1.); ("d", 3., 3.) ] in
  let front = Sweep.pareto pts in
  let names = List.map (fun (n, _, _) -> n) front in
  Alcotest.(check (list string)) "dominated d removed" [ "a"; "b"; "c" ] names

(* ---------------------------------------------------------------- cache *)

let test_cache_hit_miss () =
  let cache = Cache.create () in
  let calls = ref 0 in
  let get () =
    Cache.find_or_compute cache ~key:"register" ~dim:4 (fun () ->
        incr calls;
        42)
  in
  Alcotest.(check int) "first" 42 (get ());
  Alcotest.(check int) "second" 42 (get ());
  Alcotest.(check int) "computed once" 1 !calls;
  Alcotest.(check int) "hits" 1 (Cache.hits cache);
  Alcotest.(check int) "misses" 1 (Cache.misses cache)

let test_cache_cost_accounting () =
  let cache = Cache.create () in
  let get key = Cache.find_or_compute cache ~key ~dim:8 (fun () -> 0) in
  ignore (get "a");
  ignore (get "a");
  ignore (get "a");
  ignore (get "b");
  Alcotest.(check bool) "paid two cubes" true (feq (Cache.cost_paid cache) (2. *. 512.));
  Alcotest.(check bool) "avoided two cubes" true
    (feq (Cache.cost_avoided cache) (2. *. 512.));
  Alcotest.(check bool) "burden reduction" true
    (Cache.burden_reduction ~naive_dim:64 cache > 100.)

(* --------------------------------------------------------------- burden *)

let test_burden_modules () =
  List.iter
    (fun cells ->
      Alcotest.(check bool) "reduction exceeds paper's 1e4" true
        (Burden.reduction cells > 1e4))
    [ Burden.distillation_module (); Burden.uec_module (); Burden.ct_module () ]

let test_burden_qubits () =
  Alcotest.(check int) "distillation module qubits" 35
    (Burden.module_qubits (Burden.distillation_module ()));
  Alcotest.(check int) "uec module qubits" 34
    (Burden.module_qubits (Burden.uec_module ()))

let test_active_dimensions () =
  Alcotest.(check int) "register active" 2 (Burden.active_qubits (Cell.register ()));
  Alcotest.(check int) "usc active" 5 (Burden.active_qubits (Cell.usc ()))

let prop_pareto_front_undominated =
  QCheck.Test.make ~name:"pareto front has no dominated points" ~count:100
    QCheck.(list_of_size (QCheck.Gen.int_range 1 20)
              (pair (float_bound_inclusive 10.) (float_bound_inclusive 10.)))
    (fun pts ->
      let labelled = List.mapi (fun i (a, b) -> (i, a, b)) pts in
      let front = Sweep.pareto labelled in
      List.for_all
        (fun (_, a1, a2) ->
          not
            (List.exists
               (fun (_, b1, b2) -> b1 <= a1 && b2 <= a2 && (b1 < a1 || b2 < a2))
               front))
        front)

let () =
  Alcotest.run "dse"
    [ ( "sweep",
        [ Alcotest.test_case "linspace" `Quick test_linspace;
          Alcotest.test_case "logspace" `Quick test_logspace;
          Alcotest.test_case "sweep/grid" `Quick test_sweep_and_grid;
          Alcotest.test_case "argmin/argmax" `Quick test_argmin_argmax;
          Alcotest.test_case "pareto" `Quick test_pareto ] );
      ( "cache",
        [ Alcotest.test_case "hit/miss" `Quick test_cache_hit_miss;
          Alcotest.test_case "cost accounting" `Quick test_cache_cost_accounting ] );
      ( "burden",
        [ Alcotest.test_case "paper modules" `Quick test_burden_modules;
          Alcotest.test_case "qubit counts" `Quick test_burden_qubits;
          Alcotest.test_case "active dims" `Quick test_active_dimensions ] );
      ("properties", List.map QCheck_alcotest.to_alcotest [ prop_pareto_front_undominated ]) ]
