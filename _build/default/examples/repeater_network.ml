(* Scenario: a metropolitan entanglement-distribution backbone.

   End-to-end entanglement across a chain of repeater nodes, each node built
   from HetArch distillation hardware (Register memories + ParCheck cells)
   and performing entanglement swapping — the networked-systems direction
   the paper's conclusion sketches.  We compare resonator-backed nodes
   against compute-only nodes as the chain grows.

   Run with: dune exec examples/repeater_network.exe *)

let () =
  let horizon = 4e-3 in
  let rate = 1e6 in
  Printf.printf
    "repeater chains at %.0f kHz/link over %.0f ms (delivery target F >= 0.95)\n\n"
    (rate /. 1e3) (horizon *. 1e3);
  Printf.printf "%7s  %26s  %26s\n" "links" "het (Ts = 12.5 ms)" "hom (Ts = 0.5 ms)";
  List.iter
    (fun n_links ->
      let run mk =
        let r = Repeater.run (mk ~n_links ~link_rate_hz:rate ()) (Rng.create 9) ~horizon in
        (Repeater.delivered_rate_per_ms r, Repeater.mean_delivered_fidelity r)
      in
      let het_rate, het_f =
        run (fun ~n_links ~link_rate_hz () -> Repeater.default ~n_links ~link_rate_hz ())
      in
      let hom_rate, hom_f = run Repeater.homogeneous in
      Printf.printf "%7d  %13.1f/ms  F=%.4f  %13.1f/ms  F=%.4f\n" n_links het_rate het_f
        hom_rate hom_f)
    [ 1; 2; 3; 4; 6; 8 ];
  print_newline ();
  (* What one node costs in HetArch hardware. *)
  let node = Hierarchy.distillation () in
  Printf.printf
    "per-node hardware (one distillation module): %d devices, %d qubits, %d control lines\n"
    (Hierarchy.device_count node) (Hierarchy.qubit_capacity node)
    (Hierarchy.control_lines node);
  print_endline
    "Longer chains need each link distilled to a tighter budget before swapping;\n\
     compute-only memories cannot hold pairs through that pipeline, which is\n\
     why the homogeneous backbone collapses first."
