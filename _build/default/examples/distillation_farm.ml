(* Scenario: sizing a distillation farm for a networked quantum computer.

   A remote microwave-to-optical link produces noisy EPs at a rate set by
   the transducer.  We must sustain 20 distilled pairs per millisecond at
   99.5% fidelity.  Question: what storage coherence does the distillation
   module need, and when does a better resonator stop paying off?

   Run with: dune exec examples/distillation_farm.exe *)

let target_rate_per_ms = 20.

let delivered ts rate_hz =
  let cfg = Distill_module.heterogeneous ~ts ~rate_hz () in
  let r = Distill_module.run cfg (Rng.create 11) ~horizon:5e-3 in
  Distill_module.delivered_rate_per_ms r

let () =
  Printf.printf "target: %.0f distilled EP/ms at F >= 0.995\n\n" target_rate_per_ms;
  let ts_points = Sweep.logspace ~lo:0.5e-3 ~hi:50e-3 ~n:7 in
  let rates = [ 2e5; 5e5; 1e6 ] in
  List.iter
    (fun rate ->
      Printf.printf "EP generation %.0f kHz:\n" (rate /. 1e3);
      let results = Sweep.sweep ts_points ~f:(fun ts -> delivered ts rate) in
      List.iter
        (fun (ts, r) ->
          Printf.printf "  Ts = %6.2f ms -> %6.1f EP/ms %s\n" (ts *. 1e3) r
            (if r >= target_rate_per_ms then "MEETS TARGET" else ""))
        results;
      (match List.find_opt (fun (_, r) -> r >= target_rate_per_ms) results with
      | Some (ts, _) ->
          Printf.printf "  minimum storage coherence: Ts ~ %.2f ms\n" (ts *. 1e3)
      | None -> print_endline "  target unreachable at this generation rate");
      print_newline ())
    rates;
  (* Control overhead of the farm versus a homogeneous buffer of equal
     capacity: one drive line per resonator vs one per transmon. *)
  let module_cells = Burden.distillation_module () in
  let capacity = Burden.module_qubits module_cells in
  let het_lines =
    List.fold_left (fun acc c -> acc + Cell.control_lines c) 0 module_cells
  in
  Printf.printf
    "control overhead for %d stored qubits: heterogeneous %d lines, homogeneous %d lines\n"
    capacity het_lines capacity
