(* Scenario: planning a fault-tolerant T gate via code teleportation.

   Computation runs in a planar surface code (cheap Cliffords); magic states
   live in a 15-qubit Reed-Muller block (transversal T).  A code-
   teleportation module bridges the two.  We break the CT-state preparation
   error into its sub-module contributions and watch how each responds to
   storage coherence — reproducing the §4.3 design-space walk.

   Run with: dune exec examples/code_switching.exe *)

let () =
  let sc3 = Codes.surface 3 in
  let rm = Codes.reed_muller_15 in
  Printf.printf "code teleportation between %s and %s\n\n" sc3.Code.name rm.Code.name;
  Printf.printf "%8s %8s %8s %8s %8s %8s %8s\n" "Ts(ms)" "e_ep" "e_cat" "e_plus_A"
    "e_plus_B" "e_meas" "TOTAL";
  List.iter
    (fun ts ->
      let b =
        Teleport.heterogeneous ~code_a:sc3 ~code_b:rm ~ts ~shots:800 (Rng.create 5)
      in
      Printf.printf "%8g %8.4f %8.4f %8.4f %8.4f %8.4f %8.4f\n" (ts *. 1e3)
        b.Teleport.e_ep b.Teleport.e_cat b.Teleport.e_plus_a b.Teleport.e_plus_b
        b.Teleport.e_meas b.Teleport.total)
    [ 1e-3; 2e-3; 5e-3; 10e-3; 25e-3; 50e-3 ];
  print_newline ();
  let hom = Teleport.homogeneous ~code_a:sc3 ~code_b:rm ~shots:800 (Rng.create 5) in
  Printf.printf "homogeneous baseline: total %.4f (e_cat %.4f, e_plus %.4f/%.4f)\n"
    hom.Teleport.total hom.Teleport.e_cat hom.Teleport.e_plus_a hom.Teleport.e_plus_b;
  let het50 =
    Teleport.heterogeneous ~code_a:sc3 ~code_b:rm ~ts:50e-3 ~shots:800 (Rng.create 5)
  in
  Printf.printf "heterogeneous at Ts = 50 ms reduces CT error by %.2fx\n"
    (hom.Teleport.total /. het50.Teleport.total);
  (* The CT module's physical footprint, from the hierarchy. *)
  let tree = Hierarchy.code_teleportation () in
  Printf.printf "\nmodule inventory: %d devices, %d qubit capacity, %.1f cm^2\n"
    (Hierarchy.device_count tree) (Hierarchy.qubit_capacity tree)
    (Hierarchy.footprint_mm2 tree /. 100.)
