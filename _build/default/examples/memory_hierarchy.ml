(* Scenario: choosing a QEC code for an error-corrected quantum memory.

   A universal error-correction module must protect one logical qubit using
   whatever storage technology the fab can deliver.  For each available
   resonator (Table 1) we sweep the paper's five codes on the UEC module and
   pick the code with the lowest logical error rate per round, then compare
   against a homogeneous sea-of-qubits running the same code.

   Run with: dune exec examples/memory_hierarchy.exe *)

let shots = 1500

let () =
  let storages =
    [ ("3D multimode resonator", Device.multimode_resonator_3d);
      ("on-chip resonator (projected)", Device.on_chip_resonator);
      ("3D quantum memory", Device.memory_3d) ]
  in
  List.iter
    (fun (label, dev) ->
      let ts = dev.Device.t1 in
      Printf.printf "storage: %s (Ts = %g ms)\n" label (ts *. 1e3);
      let evaluated =
        List.map
          (fun code ->
            let rate = Uec.fig9_point ~code ~ts ~shots (Rng.create 3) in
            (code, rate))
          Codes.paper_codes
      in
      List.iter
        (fun ((code : Code.t), rate) ->
          Printf.printf "  %-6s [[%d,%d,%d]]%s  logical error/round %.4f\n"
            code.Code.name code.Code.n code.Code.k code.Code.distance
            (if code.Code.planar then " (planar)" else "          ")
            rate)
        evaluated;
      let best_code, best_rate = Sweep.argmin evaluated in
      let hom_prof = Uec.profile Uec.Hom best_code in
      let hom_rate = Uec.logical_error_rate hom_prof ~rounds:3 ~shots (Rng.create 3) in
      Printf.printf "  -> pick %s: %.4f/round (homogeneous baseline %.4f, %s)\n\n"
        best_code.Code.name best_rate hom_rate
        (if best_rate < hom_rate then "heterogeneous wins" else "homogeneous wins");
      ())
    storages;
  (* How much of the design space did the cell cache let us skip? *)
  let cache = Cache.create () in
  List.iter
    (fun (_, _dev) ->
      List.iter
        (fun code ->
          ignore
            (Cache.find_or_compute cache
               ~key:(Printf.sprintf "usc/%s" code.Code.name)
               ~dim:32
               (fun () -> Code.num_stabs code))
          (* the per-code USC characterization is shared across storages *))
        Codes.paper_codes)
    storages;
  Printf.printf "cell-characterization cache: %d simulations paid, %d avoided\n"
    (Cache.misses cache) (Cache.hits cache)
