examples/memory_hierarchy.ml: Cache Code Codes Device List Printf Rng Sweep Uec
