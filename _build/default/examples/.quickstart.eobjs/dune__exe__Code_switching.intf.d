examples/code_switching.mli:
