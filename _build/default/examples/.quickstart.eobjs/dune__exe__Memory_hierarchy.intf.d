examples/memory_hierarchy.mli:
