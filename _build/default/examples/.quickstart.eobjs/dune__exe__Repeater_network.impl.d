examples/repeater_network.ml: Hierarchy List Printf Repeater Rng
