examples/code_switching.ml: Code Codes Hierarchy List Printf Rng Teleport
