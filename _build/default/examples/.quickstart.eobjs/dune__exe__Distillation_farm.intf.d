examples/distillation_farm.mli:
