examples/repeater_network.mli:
