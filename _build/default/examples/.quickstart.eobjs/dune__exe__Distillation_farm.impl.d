examples/distillation_farm.ml: Burden Cell Distill_module List Printf Rng Sweep
