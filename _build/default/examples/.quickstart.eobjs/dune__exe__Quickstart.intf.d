examples/quickstart.mli:
