examples/quickstart.ml: Cell Characterize Design_rules Device Distill_module Format Hierarchy List Printf Rng
