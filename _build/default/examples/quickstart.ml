(* Quickstart: the HetArch flow in one page.

   1. pick devices from the Table-1 catalog,
   2. assemble them into a standard cell and check the design rules,
   3. characterize the cell by density-matrix simulation,
   4. compose cells into a module hierarchy,
   5. simulate the module and compare against a homogeneous baseline.

   Run with: dune exec examples/quickstart.exe *)

let () =
  (* 1. Devices. *)
  let resonator = Device.multimode_resonator_3d in
  let transmon = Device.fixed_frequency_qubit in
  Format.printf "storage device: %a@." Device.pp resonator;
  Format.printf "compute device: %a@." Device.pp transmon;

  (* 2. A Register cell: resonator behind a transmon, DR-checked. *)
  let register = Cell.register ~storage:resonator ~compute:transmon () in
  (match Design_rules.check register.Cell.graph with
  | [] -> print_endline "Register cell: design rules DR1-DR4 satisfied"
  | vs ->
      List.iter
        (fun v -> Printf.printf "DR%d violated: %s\n" v.Design_rules.rule v.Design_rules.message)
        vs);

  (* 3. Characterize it: load fidelity and retention, straight from the
     density-matrix simulator. *)
  let load = Characterize.register_load register in
  Printf.printf "load a qubit into storage: %.0f ns, error %.4f\n"
    (load.Characterize.duration *. 1e9) load.Characterize.error;
  List.iter
    (fun dt ->
      let r = Characterize.register_retention register ~dt in
      Printf.printf "  retention over %5.0f us: error %.5f\n" (dt *. 1e6)
        r.Characterize.error)
    [ 1e-6; 10e-6; 100e-6 ];

  (* 4. The full distillation module of Fig. 1. *)
  let tree = Hierarchy.distillation () in
  Hierarchy.validate tree;
  print_newline ();
  print_string (Hierarchy.render tree);

  (* 5. Simulate it against the homogeneous baseline. *)
  let rate_hz = 1e6 in
  let horizon = 1e-3 in
  let run cfg = Distill_module.run cfg (Rng.create 7) ~horizon in
  let het = run (Distill_module.heterogeneous ~rate_hz ()) in
  let hom = run (Distill_module.homogeneous ~rate_hz ()) in
  Printf.printf
    "\nEP distillation over %.1f ms at %.0f kHz generation:\n" (horizon *. 1e3)
    (rate_hz /. 1e3);
  Printf.printf "  heterogeneous (Ts = 12.5 ms): %d pairs at F >= 0.995\n"
    het.Distill_module.delivered;
  Printf.printf "  homogeneous   (Ts = 0.5 ms):  %d pairs at F >= 0.995\n"
    hom.Distill_module.delivered
