(* Benchmark harness: one Bechamel test per paper table/figure kernel, plus a
   headline-reproduction pass that prints the comparative numbers the paper
   reports.  `dune exec bench/main.exe` runs both; `-- --quick` runs a
   fast smoke pass (short quota, no headline).  Either way the measured
   ns/run per kernel land in BENCH_hetarch.json together with the seed and
   an observability snapshot, so the perf trajectory is machine-readable. *)

open Bechamel
open Toolkit

(* Every kernel draws its RNG stream from this one knob so a bench run is
   reproducible end to end and the seed can be recorded in the JSON. *)
let seed = 2023

let quick = Array.exists (String.equal "--quick") Sys.argv

(* ------------------------------------------------------- kernels ------- *)

let kernel_table1 () =
  List.iter Device.validate Device.catalog;
  Device.table_rows ()

let kernel_table2 () =
  List.map (fun c -> Design_rules.check c.Cell.graph) (Cell.all ())

let kernel_fig3 () =
  let cfg = Distill_module.heterogeneous ~rate_hz:1e6 () in
  Distill_module.run cfg (Rng.create seed) ~horizon:100e-6

let kernel_fig4 () =
  let cfg = Distill_module.heterogeneous ~ts:2.5e-3 ~rate_hz:1e6 () in
  Distill_module.run cfg (Rng.create seed) ~horizon:500e-6

(* Sub-threshold operating point (p2 = 1e-3): the regime fig. 6 curves are
   actually estimated in, where logical errors are rare and per-shot decode
   work is light.  The default p2 = 1e-2 sits at the code threshold — ~9.5
   error events per d=7 shot — which benchmarks the decoder on saturated
   syndromes rather than the estimation pipeline. *)
let fig6_exp =
  lazy
    (Surface_circuit.build
       { (Surface_circuit.default ~distance:7) with t_data = 5e-4; p2 = 1e-3 })

let kernel_fig6 () =
  Surface_circuit.logical_error_rate (Lazy.force fig6_exp) (Rng.create seed) ~shots:10

let fig7_exp = lazy (Surface_circuit.build (Surface_circuit.default ~distance:5))

let kernel_fig7 () =
  Surface_circuit.logical_error_rate (Lazy.force fig7_exp) (Rng.create seed) ~shots:10

(* Scalar-vs-batch sampler pair: identical work (sample [pair_shots] shots
   of the d=7 surface circuit, count observable flips), one via the per-shot
   reference sampler and one via the bit-parallel batch sampler.  The pair is
   recorded in BENCH_hetarch.json so the batching speedup is tracked. *)
let pair_shots = 126

let kernel_sample_scalar () =
  let c = (Lazy.force fig6_exp).Surface_circuit.circuit in
  let rng = Rng.create seed in
  let flips = ref 0 in
  for _ = 1 to pair_shots do
    let shot = Frame.sample_shot c rng in
    if Bitvec.get shot.Frame.observables 0 then incr flips
  done;
  !flips

let kernel_sample_batch () =
  let c = (Lazy.force fig6_exp).Surface_circuit.circuit in
  (Frame_batch.flip_counts (Frame_batch.sample c (Rng.create seed) ~nshots:pair_shots)).(0)

(* Fused sample->decode pair: identical work (estimate the d=7 logical error
   count over [pair_shots] shots), once via the batch circuit sampler with a
   per-shot transpose + scalar union-find decode — the pre-fusion pipeline —
   and once via the fused path: DEM-direct sampling straight into detector
   bit-planes, batch-decoded on the reusable arena.  check_bench enforces
   the pair's min_speedup floor, so the fusion payoff is a hard CI gate. *)
let kernel_sample_decode_scalar () =
  let exp = Lazy.force fig6_exp in
  let b =
    Frame_batch.sample exp.Surface_circuit.circuit (Rng.create seed)
      ~nshots:pair_shots
  in
  let errors = ref 0 in
  for s = 0 to pair_shots - 1 do
    let detectors, observables = Frame_batch.shot b s in
    if Decoder_uf.decode exp.Surface_circuit.graph detectors
       <> Bitvec.get observables 0
    then incr errors
  done;
  !errors

let kernel_sample_decode_batch () =
  let exp = Lazy.force fig6_exp in
  let b =
    Dem_sampler.sample exp.Surface_circuit.sampler (Rng.create seed)
      ~nshots:pair_shots
  in
  Decoder_uf.decode_batch_count exp.Surface_circuit.graph
    ~detectors:b.Frame_batch.detectors
    ~observable:b.Frame_batch.observables.(0) ~nshots:pair_shots

(* Steady-state batch decode: detectors sampled once, output row reused, so
   the kernel is the pure arena decode loop.  Its zero-alloc contract
   (max_minor_words_per_run = 0) is the hard CI gate proving the decode hot
   path stays allocation-free. *)
let steady_decode =
  lazy
    (let exp = Lazy.force fig6_exp in
     let b =
       Dem_sampler.sample exp.Surface_circuit.sampler (Rng.create seed)
         ~nshots:pair_shots
     in
     (exp.Surface_circuit.graph, b.Frame_batch.detectors,
      Bitvec.create pair_shots))

let kernel_decode_steady () =
  let g, detectors, out = Lazy.force steady_decode in
  Decoder_uf.decode_batch_into g ~detectors ~nshots:pair_shots ~out

(* Cold-vs-warm characterization pair: identical workload — the charsweep
   alpha sweep's storage-cell operations — once paying density-matrix
   simulation per run (cold: fresh memory cache, no store) and once served
   entirely from a pre-populated persistent store (warm: fresh memory cache
   per run, so every characterization is a disk hit).  The recorded ratio is
   the cross-process warm-start speedup the store buys; check_bench enforces
   a floor on it. *)
let char_points =
  lazy
    (List.concat_map
       (fun alpha ->
         let base = Device.multimode_resonator_3d in
         let storage =
           Device.with_coherence base ~t1:(alpha *. base.Device.t1)
             ~t2:(alpha *. base.Device.t2)
         in
         (* Only the density-matrix-heavy operations: the cheap analytic
            ones (load, retention) would pad the warm side's constant
            per-op store overhead without adding meaningful cold work,
            understating the warm-start payoff. *)
         [ (Cell.seqop ~storage (), Characterize.Seq_cnots { count = 5 });
           (Cell.usc ~storage (),
            Characterize.Stabilizer { weight = 4; serialized = true }) ])
       [ 1.; 2.; 3.; 4.; 5. ])

let memo_with ?disk cache =
  { Characterize.memoize =
      (fun ~kind ~fields ~dim f ->
        Cache.find_or_compute ?disk cache ~key:(Store.key ~kind ~fields) ~dim f) }

let char_run memo =
  List.iter
    (fun (cell, op) -> ignore (Characterize.characterize_op ~memo cell op))
    (Lazy.force char_points)

let char_store_dir =
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "hetarch_bench_store.%d" (Unix.getpid ()))

(* Opening the store populates it once (a single cold pass with write-back),
   so the warm kernel measures the pure disk-hit path. *)
let char_store =
  lazy
    (let s = Store.open_dir char_store_dir in
     char_run (memo_with ~disk:(s, Char_store.codec) (Cache.create ()));
     s)

let kernel_char_cold () = char_run (memo_with (Cache.create ()))

let kernel_char_warm () =
  char_run
    (memo_with ~disk:(Lazy.force char_store, Char_store.codec) (Cache.create ()))

let kernel_fig9 () =
  Uec.fig9_point ~code:Codes.steane ~ts:10e-3 ~shots:100 (Rng.create seed)

let kernel_table3 () =
  Uec.table3_row ~code:Codes.steane ~ts:50e-3 ~shots:100 (Rng.create seed)

let kernel_fig12 () =
  Teleport.fig12_point ~code_a:(Codes.surface 3) ~code_b:(Codes.surface 4) ~ts:10e-3
    ~shots:50 (Rng.create seed)

let kernel_table4 () =
  let b =
    Teleport.homogeneous ~code_a:Codes.steane ~code_b:(Codes.surface 3) ~shots:50
      (Rng.create seed)
  in
  b.Teleport.total

let kernel_repeater () =
  Repeater.run (Repeater.default ~n_links:4 ~link_rate_hz:1e6 ()) (Rng.create seed)
    ~horizon:200e-6

(* Ledger-append throughput: one batch record through the JSONL writer
   (format + write + flush), the per-batch bookkeeping cost a collect
   campaign pays on top of sampling. *)
let ledger_path = Filename.concat (Filename.get_temp_dir_name ()) "hetarch_bench_ledger.jsonl"

let ledger_writer = lazy (Collect.Ledger.open_writer ledger_path)

let kernel_ledger_append () =
  Collect.Ledger.append (Lazy.force ledger_writer)
    { Collect.Ledger.task_id = "0123456789abcdef"; shots = 1024; errors = 17;
      seconds = 0.25; jobs = 1; seed }

(* Observability overhead kernels: one traced span (timing + path/totals
   bookkeeping) and one forced telemetry record (counter deltas, GC
   snapshot, JSON format + flush) against a /dev/null sink.  These bound the
   cost of always-on instrumentation; check_bench requires both so the
   overhead trend stays machine-readable. *)
let kernel_span_record () = Obs.Trace.with_span "bench.span" (fun () -> ())

let telemetry_sink = lazy (Obs.Telemetry.enable ~path:"/dev/null" ~interval_s:1e9)

let kernel_telemetry_snapshot () =
  Lazy.force telemetry_sink;
  Obs.Telemetry.tick ~force:true ()

(* Fleet-observability kernels: one full snapshot capture + atomic write —
   the fixed cost every registry-recording run pays at exit — and one 3-way
   fleet merge + serialization, the per-merge cost of `hetarch obs merge`.
   check_bench requires both so the snapshot-path overhead trend stays
   machine-readable. *)
let snapshot_path =
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "hetarch_bench_snapshot.%d.json" (Unix.getpid ()))

let kernel_snapshot_write () =
  Obs.Snapshot.write ~path:snapshot_path (Obs.Snapshot.capture ())

let merge_sources =
  lazy
    (let base = Obs.Snapshot.capture () in
     List.map
       (fun i -> { base with Obs.Snapshot.run_id = Printf.sprintf "%016x" i })
       [ 1; 2; 3 ])

let kernel_obs_merge () =
  Obs.Json.to_string
    (Obs.Merge.to_json (Obs.Merge.of_snapshots (Lazy.force merge_sources)))

(* One `obs monitor --once` refresh over a synthetic 4-stream fleet (32
   records per stream, realistic record shape): directory scan, torn-tail
   JSONL fold to each last record, row derivation, JSON render.  This is
   the polling cost the live monitor pays every --interval, so check_bench
   requires it to keep the refresh trend machine-readable. *)
let monitor_fixture =
  lazy
    (let dir =
       Filename.concat (Filename.get_temp_dir_name ())
         (Printf.sprintf "hetarch_bench_monitor.%d" (Unix.getpid ()))
     in
     let td = Filename.concat dir "telemetry" in
     List.iter (fun p -> try Sys.mkdir p 0o755 with Sys_error _ -> ()) [ dir; td ];
     for s = 0 to 3 do
       let run_id = Printf.sprintf "%016x" (0xbe40 + s) in
       let oc = open_out (Filename.concat td (run_id ^ ".jsonl")) in
       for seq = 0 to 31 do
         let record =
           Obs.Json.Obj
             [ ("schema", Obs.Json.String "hetarch.telemetry/4");
               ( "run",
                 Obs.Json.Obj
                   [ ("id", Obs.Json.String run_id);
                     ("shard", Obs.Json.String (Printf.sprintf "shard%d/4" s));
                     ("trace_id", Obs.Json.String "00000000000be400");
                     ("span_id", Obs.Json.String run_id);
                     ("parent_span_id", Obs.Json.String "00000000000be4ff") ] );
               ("seq", Obs.Json.Int seq);
               ("elapsed_s", Obs.Json.Float (0.5 *. float_of_int seq));
               ("dt_s", Obs.Json.Float 0.5);
               ("interval_s", Obs.Json.Float 0.5);
               ( "campaign",
                 Obs.Json.Obj
                   [ ("shots", Obs.Json.Int (1024 * (seq + 1)));
                     ("shots_per_s", Obs.Json.Float 2048.);
                     ("eta_s", Obs.Json.Float 12.5);
                     ("tasks_done", Obs.Json.Int (seq / 8));
                     ("tasks", Obs.Json.Int 6);
                     ( "task_progress",
                       Obs.Json.List
                         (List.init 6 (fun t ->
                              Obs.Json.Obj
                                [ ("done", Obs.Json.Bool (t < seq / 8));
                                  ( "rel_halfwidth",
                                    Obs.Json.Float (0.05 /. float_of_int (t + 1))
                                  ) ])) ) ] );
               ("gc", Obs.Json.Obj [ ("minor_words_delta", Obs.Json.Int 80_000) ]);
               ( "parallel",
                 Obs.Json.Obj
                   [ ("queue_depth", Obs.Json.Int 3);
                     ("busy_domains", Obs.Json.Int 2) ] ) ]
         in
         output_string oc (Obs.Json.to_string record);
         output_char oc '\n'
       done;
       close_out oc
     done;
     dir)

let kernel_obs_monitor_once () =
  Obs.Monitor.scan ~dir:(Lazy.force monitor_fixture) ()
  |> List.map (fun r -> Obs.Json.to_string (Obs.Monitor.row_json r))

let kernel_burden () =
  List.map Burden.reduction
    [ Burden.distillation_module (); Burden.uec_module (); Burden.ct_module () ]

(* `hetarch serve` steady-state request path: parse one request line,
   normalize and content-hash it, and answer from the warm in-memory
   response tier — the per-request cost of a warm daemon, excluding socket
   I/O.  check_bench requires this kernel WITH its minor-words floor: the
   warm path is the daemon's hot loop, and letting its allocation creep
   turns a busy server into GC pressure. *)
let serve_request_line = {|{"kind":"threshold","distance":3,"shots":1024,"seed":1}|}

let serve_fixture =
  lazy
    (match Serve.parse_request serve_request_line with
    | Ok (Serve.Query q) ->
        Serve.cache_response q (Serve.compute_answer q);
        q
    | _ -> assert false)

let kernel_serve_request_warm () =
  ignore (Lazy.force serve_fixture);
  match Serve.parse_request serve_request_line with
  | Ok (Serve.Query q) -> (
      match Serve.warm_answer q with
      | Some body -> body
      | None -> assert false)
  | _ -> assert false

let tests =
  Test.make_grouped ~name:"hetarch" ~fmt:"%s %s"
    [ Test.make ~name:"table1-devices" (Staged.stage kernel_table1);
      Test.make ~name:"table2-cells-drc" (Staged.stage kernel_table2);
      Test.make ~name:"fig3-distill-trace" (Staged.stage kernel_fig3);
      Test.make ~name:"fig4-distill-rate-point" (Staged.stage kernel_fig4);
      Test.make ~name:"fig6-surface-d7" (Staged.stage kernel_fig6);
      Test.make ~name:"fig6-sample-d7-scalar" (Staged.stage kernel_sample_scalar);
      Test.make ~name:"fig6-sample-d7-batch" (Staged.stage kernel_sample_batch);
      Test.make ~name:"fig6-sample-decode-d7-scalar"
        (Staged.stage kernel_sample_decode_scalar);
      Test.make ~name:"fig6-sample-decode-d7-batch"
        (Staged.stage kernel_sample_decode_batch);
      Test.make ~name:"fig6-decode-d7-batch-steady"
        (Staged.stage kernel_decode_steady);
      Test.make ~name:"fig7-surface-d5" (Staged.stage kernel_fig7);
      Test.make ~name:"char-sweep-cold" (Staged.stage kernel_char_cold);
      Test.make ~name:"char-sweep-warm" (Staged.stage kernel_char_warm);
      Test.make ~name:"fig9-uec-point" (Staged.stage kernel_fig9);
      Test.make ~name:"table3-uec-row" (Staged.stage kernel_table3);
      Test.make ~name:"fig12-ct-point" (Staged.stage kernel_fig12);
      Test.make ~name:"table4-ct-pair" (Staged.stage kernel_table4);
      Test.make ~name:"ext-repeater-chain" (Staged.stage kernel_repeater);
      Test.make ~name:"collect-ledger-append" (Staged.stage kernel_ledger_append);
      Test.make ~name:"span-record" (Staged.stage kernel_span_record);
      Test.make ~name:"telemetry-snapshot" (Staged.stage kernel_telemetry_snapshot);
      Test.make ~name:"obs-snapshot-write" (Staged.stage kernel_snapshot_write);
      Test.make ~name:"obs-merge" (Staged.stage kernel_obs_merge);
      Test.make ~name:"obs-monitor-once" (Staged.stage kernel_obs_monitor_once);
      Test.make ~name:"serve-request-warm" (Staged.stage kernel_serve_request_warm);
      Test.make ~name:"dse-burden" (Staged.stage kernel_burden) ]

(* Kernels whose pair carries a min_speedup floor are a *hard* CI gate, and
   a single OLS estimate from the 0.25 s quick-mode quota is too fragile for
   that: one scheduler preemption or major-GC slice landing on a sub-ms
   kernel inflates its estimate 2x and trips the floor on noise alone.
   System noise is strictly additive, so the minimum over independent
   repetitions is the robust per-run estimate — re-measure the gated kernels
   directly and let the minimum override the OLS number in the JSON. *)
let gated_kernels =
  [ ("hetarch fig6-sample-decode-d7-scalar", kernel_sample_decode_scalar);
    ("hetarch fig6-sample-decode-d7-batch", kernel_sample_decode_batch) ]

(* ------------------------------------------- allocation accounting ----- *)

(* Minor-heap words allocated by one run of [f].  The [Gc.minor_words]
   result is a boxed float allocated just after the counter is read — inside
   the measured window — so an empty window calibrates that constant out.
   Minor words are a pure function of the allocation sequence (collections
   never reset the cumulative counter), so for deterministic kernels the
   per-run number is exact; the minimum over trials guards against a rare
   lazy-force or domain event landing in one window. *)
let alloc_words f =
  let c0 = Gc.minor_words () in
  let c1 = Gc.minor_words () in
  let overhead = c1 -. c0 in
  let a = Gc.minor_words () in
  f ();
  let b = Gc.minor_words () in
  int_of_float (b -. a -. overhead)

let robust_words f =
  f ();
  (* warm lazies, arena pools, stores *)
  let best = ref max_int in
  for _ = 1 to 3 do
    let w = alloc_words f in
    if w < !best then best := w
  done;
  max 0 !best

(* Unit-thunk view of every kernel, for the allocation pass.  Keys are the
   Bechamel display names ("hetarch <kernel>"), matching the estimates. *)
let kernel_thunks : (string * (unit -> unit)) list =
  [ ("hetarch table1-devices", fun () -> ignore (kernel_table1 ()));
    ("hetarch table2-cells-drc", fun () -> ignore (kernel_table2 ()));
    ("hetarch fig3-distill-trace", fun () -> ignore (kernel_fig3 ()));
    ("hetarch fig4-distill-rate-point", fun () -> ignore (kernel_fig4 ()));
    ("hetarch fig6-surface-d7", fun () -> ignore (kernel_fig6 ()));
    ("hetarch fig6-sample-d7-scalar", fun () -> ignore (kernel_sample_scalar ()));
    ("hetarch fig6-sample-d7-batch", fun () -> ignore (kernel_sample_batch ()));
    ( "hetarch fig6-sample-decode-d7-scalar",
      fun () -> ignore (kernel_sample_decode_scalar ()) );
    ( "hetarch fig6-sample-decode-d7-batch",
      fun () -> ignore (kernel_sample_decode_batch ()) );
    ("hetarch fig6-decode-d7-batch-steady", kernel_decode_steady);
    ("hetarch fig7-surface-d5", fun () -> ignore (kernel_fig7 ()));
    ("hetarch char-sweep-cold", kernel_char_cold);
    ("hetarch char-sweep-warm", kernel_char_warm);
    ("hetarch fig9-uec-point", fun () -> ignore (kernel_fig9 ()));
    ("hetarch table3-uec-row", fun () -> ignore (kernel_table3 ()));
    ("hetarch fig12-ct-point", fun () -> ignore (kernel_fig12 ()));
    ("hetarch table4-ct-pair", fun () -> ignore (kernel_table4 ()));
    ("hetarch ext-repeater-chain", fun () -> ignore (kernel_repeater ()));
    ("hetarch collect-ledger-append", kernel_ledger_append);
    ("hetarch span-record", kernel_span_record);
    ("hetarch telemetry-snapshot", kernel_telemetry_snapshot);
    ("hetarch obs-snapshot-write", kernel_snapshot_write);
    ("hetarch obs-merge", fun () -> ignore (kernel_obs_merge ()));
    ("hetarch obs-monitor-once", fun () -> ignore (kernel_obs_monitor_once ()));
    ( "hetarch serve-request-warm",
      fun () -> ignore (kernel_serve_request_warm ()) );
    ("hetarch dse-burden", fun () -> ignore (kernel_burden ())) ]

(* Per-kernel allocation floors — the zero-alloc CI gate.  check_bench
   fails the build when a floor-gated kernel's measured minor_words_per_run
   exceeds its bound.  The steady-state decode loop must allocate nothing;
   the fused sample+decode pipeline is budgeted at 64 words per shot. *)
let alloc_floors =
  [ ("hetarch fig6-decode-d7-batch-steady", 0);
    ("hetarch fig6-sample-decode-d7-batch", 64 * pair_shots);
    (* parse + normalize + hash + memory-tier lookup for one request line;
       the JSON tree and normalized field list dominate *)
    ("hetarch serve-request-warm", 2048) ]

let robust_ns f =
  ignore (Sys.opaque_identity (f ()));
  Gc.major ();
  (* Size each sample to ~10 ms so timer granularity is negligible. *)
  let t0 = Unix.gettimeofday () in
  ignore (Sys.opaque_identity (f ()));
  let once = Unix.gettimeofday () -. t0 in
  let reps = max 1 (min 10_000 (int_of_float (0.01 /. Float.max 1e-6 once))) in
  let best = ref infinity in
  for _ = 1 to 7 do
    let t0 = Unix.gettimeofday () in
    for _ = 1 to reps do
      ignore (Sys.opaque_identity (f ()))
    done;
    let per = (Unix.gettimeofday () -. t0) /. float_of_int reps in
    if per < !best then best := per
  done;
  !best *. 1e9

let run_benchmarks () =
  print_endline "=== Bechamel micro-benchmarks (one kernel per table/figure) ===";
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    (* Quick mode still needs enough samples per kernel for the ns_per_run
       estimate to be stable run-to-run: at 0.02 s the ms-scale kernels get
       single-digit runs and jitter past the CI perf-gate threshold on noise
       alone; 0.25 s keeps the whole pass a few seconds while giving every
       sub-ms kernel hundreds of runs. *)
    Benchmark.cfg ~limit:2000
      ~quota:(Time.second (if quick then 0.25 else 0.5))
      ~kde:(Some 1000) ~stabilize:false ()
  in
  let raw = Benchmark.all cfg instances tests in
  let results =
    List.map (fun instance -> Analyze.all ols instance raw) instances
  in
  let results = Analyze.merge ols instances results in
  let estimates = ref [] in
  Hashtbl.iter
    (fun measure tbl ->
      if measure = Measure.label Instance.monotonic_clock then
        Hashtbl.iter
          (fun name ols_result ->
            match Analyze.OLS.estimates ols_result with
            | Some (est :: _) ->
                estimates := (name, est) :: !estimates;
                Printf.printf "%-32s %12.3f us/run\n" name (est /. 1e3)
            | _ -> Printf.printf "%-32s (no estimate)\n" name)
          tbl)
    results;
  let estimates =
    List.map
      (fun (name, ns) ->
        match List.assoc_opt name gated_kernels with
        | None -> (name, ns)
        | Some f ->
            let ns = robust_ns f in
            Printf.printf "%-32s %12.3f us/run (floor-gated, min of 7)\n" name
              (ns /. 1e3);
            (name, ns))
      !estimates
  in
  List.sort compare estimates

(* Scalar/batch kernel pairs: each entry names two kernels doing identical
   work with the two pipelines, so the recorded speedup is apples-to-apples.
   check_bench validates that both sides exist and, when a pair carries a
   min_speedup floor, that the measured scalar/batch ratio clears it. *)
let kernel_pairs =
  [ ("fig6-sample-d7", "hetarch fig6-sample-d7-scalar",
     "hetarch fig6-sample-d7-batch", None);
    ("fig6-sample-decode-d7", "hetarch fig6-sample-decode-d7-scalar",
     "hetarch fig6-sample-decode-d7-batch", Some 5.0) ]

(* Cold/warm kernel pairs: both sides run the identical characterization
   workload, the warm side against a pre-populated persistent store.
   check_bench validates that both sides exist and that the cold/warm ratio
   clears [min_speedup]. *)
let warm_pairs =
  [ ("char-sweep-warm-start", "hetarch char-sweep-cold", "hetarch char-sweep-warm", 5.0) ]

(* One JSON document per bench run: kernel name -> ns/run and minor
   words/run, the seed every kernel drew its RNG from, the job count the run
   executed with, the scalar-vs-batch pairs, and the observability snapshot
   accumulated while measuring (DES events, shots, cache traffic, ...). *)
let write_bench_json kernels ~words =
  let doc =
    Obs.Json.Obj
      [ ("schema", Obs.Json.String "hetarch.bench/3");
        ("seed", Obs.Json.Int seed);
        ("quick", Obs.Json.Bool quick);
        ("jobs", Obs.Json.Int (Parallel.jobs ()));
        ( "kernels",
          Obs.Json.List
            (List.map
               (fun (name, ns) ->
                 Obs.Json.Obj
                   ([ ("name", Obs.Json.String name);
                      ("ns_per_run", Obs.Json.Float ns) ]
                   @ (match List.assoc_opt name words with
                     | Some w ->
                         [ ("minor_words_per_run", Obs.Json.Int w) ]
                     | None -> [])
                   @ (match List.assoc_opt name alloc_floors with
                     | Some floor ->
                         [ ("max_minor_words_per_run", Obs.Json.Int floor) ]
                     | None -> [])
                   @ [ ("seed", Obs.Json.Int seed) ]))
               kernels) );
        ( "pairs",
          Obs.Json.List
            (List.map
               (fun (name, scalar, batch, min_speedup) ->
                 Obs.Json.Obj
                   ([ ("name", Obs.Json.String name);
                      ("scalar", Obs.Json.String scalar);
                      ("batch", Obs.Json.String batch) ]
                   @
                   match min_speedup with
                   | Some floor -> [ ("min_speedup", Obs.Json.Float floor) ]
                   | None -> []))
               kernel_pairs) );
        ( "warm_pairs",
          Obs.Json.List
            (List.map
               (fun (name, cold, warm, min_speedup) ->
                 Obs.Json.Obj
                   [ ("name", Obs.Json.String name);
                     ("cold", Obs.Json.String cold);
                     ("warm", Obs.Json.String warm);
                     ("min_speedup", Obs.Json.Float min_speedup) ])
               warm_pairs) );
        ("metrics", Obs.Report.to_json ()) ]
  in
  let oc = open_out "BENCH_hetarch.json" in
  output_string oc (Obs.Json.to_string doc);
  output_char oc '\n';
  close_out oc

(* ------------------------------------------ headline reproduction ------ *)

let shots =
  match Sys.getenv_opt "HETARCH_SHOTS" with
  | Some s -> (try max 100 (int_of_string s) with _ -> 1000)
  | None -> 1000

let headline () =
  Printf.printf "\n=== Headline reproduction (shots=%d; HETARCH_SHOTS to scale) ===\n" shots;
  (* Fig 3/4: distillation *)
  let het =
    Distill_module.run (Distill_module.heterogeneous ~rate_hz:3e5 ()) (Rng.create seed)
      ~horizon:5e-3
  in
  let hom =
    Distill_module.run (Distill_module.homogeneous ~rate_hz:3e5 ()) (Rng.create seed)
      ~horizon:5e-3
  in
  let rh = Distill_module.delivered_rate_per_ms het in
  let rm = Distill_module.delivered_rate_per_ms hom in
  Printf.printf
    "distillation @300kHz: het %.1f EP/ms vs hom %.1f EP/ms -> %.1fx (paper: >= 2x, 2.6x error reduction)\n"
    rh rm (rh /. max rm 0.01);
  (* Fig 6: d=13 heterogeneous surface code *)
  let d13 t_data t_anc =
    let exp = Surface_circuit.build { (Surface_circuit.default ~distance:13) with t_data; t_anc } in
    let r = Surface_circuit.logical_error_rate exp (Rng.create seed) ~shots:(max 200 (shots / 2)) in
    Surface_circuit.per_cycle_rate ~shot_rate:r ~rounds:13
  in
  let hom13 = d13 1e-4 1e-4 in
  let het13 = d13 5e-4 1e-4 in
  let anc13 = d13 1e-4 5e-4 in
  Printf.printf
    "surface d=13: hom %.4f/cycle; Tcd x5 -> %.4f (%.1fx better); Tca x5 -> %.4f (paper: ~2.5x from data coherence)\n"
    hom13 het13 (hom13 /. het13) anc13;
  (* Table 3: UEC *)
  List.iter
    (fun code ->
      let h, m, red = Uec.table3_row ~code ~ts:50e-3 ~shots (Rng.create seed) in
      Printf.printf "UEC %-6s het %.4f hom %.4f -> %.1fx (paper: RM 4.7x, 17QCC 3.5x, ST 10.7x; SC favors hom)\n"
        code.Code.name h m red)
    Codes.paper_codes;
  (* Table 4: CT *)
  let ct =
    Teleport.table4
      ~codes:[ Codes.reed_muller_15; Codes.steane; Codes.surface 3 ]
      ~ts:50e-3 ~shots:(max 200 (shots / 2)) (Rng.create seed)
  in
  let ratios = List.map (fun (_, _, h, m) -> m /. h) ct in
  Printf.printf "CT pairs: mean reduction %.2fx, max %.2fx (paper: mean 2.33x, max 2.96x)\n"
    (List.fold_left ( +. ) 0. ratios /. float_of_int (List.length ratios))
    (List.fold_left max 0. ratios);
  (* DSE burden *)
  Printf.printf "DSE burden reduction: distillation %.1e, UEC %.1e (paper: >= 1e4)\n"
    (Burden.reduction (Burden.distillation_module ()))
    (Burden.reduction (Burden.uec_module ()))

let () =
  let kernels = run_benchmarks () in
  (* Allocation pass: exact minor words per run for every kernel (min over
     trials), printed for the floor-gated ones so a gate trip is visible in
     the bench log, not just in check_bench. *)
  let words =
    List.map (fun (name, f) -> (name, robust_words f)) kernel_thunks
  in
  List.iter
    (fun (name, floor) ->
      match List.assoc_opt name words with
      | Some w ->
          Printf.printf "%-32s %12d minor words/run (floor %d)\n" name w floor
      | None -> ())
    alloc_floors;
  List.iter
    (fun (name, scalar, batch, _) ->
      match (List.assoc_opt scalar kernels, List.assoc_opt batch kernels) with
      | Some s, Some b when b > 0. ->
          Printf.printf "%-32s batch pipeline %.1fx faster than scalar\n" name (s /. b)
      | _ -> ())
    kernel_pairs;
  List.iter
    (fun (name, cold, warm, _) ->
      match (List.assoc_opt cold kernels, List.assoc_opt warm kernels) with
      | Some c, Some w when w > 0. ->
          Printf.printf "%-32s warm start %.1fx faster than cold\n" name (c /. w)
      | _ -> ())
    warm_pairs;
  (* The warm kernel's store lives under the system temp dir; drop it. *)
  if Lazy.is_val char_store then begin
    let rec rm path =
      if Sys.is_directory path then begin
        Array.iter (fun e -> rm (Filename.concat path e)) (Sys.readdir path);
        Unix.rmdir path
      end
      else Sys.remove path
    in
    (try rm char_store_dir with Sys_error _ | Unix.Unix_error _ -> ())
  end;
  if not quick then headline ();
  if Lazy.is_val ledger_writer then begin
    Collect.Ledger.close (Lazy.force ledger_writer);
    try Sys.remove ledger_path with Sys_error _ -> ()
  end;
  if Lazy.is_val telemetry_sink then Obs.Telemetry.disable ();
  (try Sys.remove snapshot_path with Sys_error _ -> ());
  write_bench_json kernels ~words;
  Printf.printf "\nwrote BENCH_hetarch.json (%d kernels, seed %d, jobs %d)\n"
    (List.length kernels) seed (Parallel.jobs ())
