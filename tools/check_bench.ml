(* CI gate: validate that BENCH_hetarch.json exists and has the shape the
   perf-tracking tooling expects — one entry per kernel with a name, a
   numeric ns/run, a minor-words/run allocation measurement, and the RNG
   seed — and that every floor-gated kernel honors its
   max_minor_words_per_run bound (the zero-alloc gate).  Exits nonzero
   (with a reason) on any violation, so `make ci` fails when the bench
   stops producing it. *)

let fail fmt = Printf.ksprintf (fun m -> prerr_endline ("check_bench: " ^ m); exit 1) fmt

let () =
  let path = if Array.length Sys.argv > 1 then Sys.argv.(1) else "BENCH_hetarch.json" in
  let contents =
    try In_channel.with_open_text path In_channel.input_all
    with Sys_error e -> fail "cannot read %s: %s" path e
  in
  let doc =
    try Obs.Json.parse contents with Failure e -> fail "malformed JSON: %s" e
  in
  (match Obs.Json.member "schema" doc with
  | Some (Obs.Json.String "hetarch.bench/3") -> ()
  | Some (Obs.Json.String s) -> fail "unexpected schema %s (want hetarch.bench/3)" s
  | _ -> fail "missing or unexpected schema field");
  (match Obs.Json.member "jobs" doc with
  | Some (Obs.Json.Int j) when j >= 1 -> ()
  | Some _ -> fail "jobs must be a positive integer"
  | None -> fail "missing jobs field");
  let seed =
    match Obs.Json.member "seed" doc with
    | Some (Obs.Json.Int s) -> s
    | _ -> fail "missing integer seed"
  in
  let kernels =
    match Obs.Json.member "kernels" doc with
    | Some (Obs.Json.List ks) -> ks
    | _ -> fail "missing kernels array"
  in
  if kernels = [] then fail "kernels array is empty";
  List.iter
    (fun k ->
      let name =
        match Obs.Json.member "name" k with
        | Some (Obs.Json.String n) when n <> "" -> n
        | _ -> fail "kernel entry without a name"
      in
      (match Obs.Json.member "ns_per_run" k with
      | Some v ->
          let ns = try Obs.Json.to_float v with Failure _ -> fail "%s: ns_per_run not numeric" name in
          if not (Float.is_finite ns) || ns < 0. then
            fail "%s: ns_per_run %g out of range" name ns
      | None -> fail "%s: missing ns_per_run" name);
      (* Allocation accounting is part of the v3 contract: every kernel
         records its measured minor words per run, and a kernel carrying a
         max_minor_words_per_run floor must honor it. *)
      let measured_words =
        match Obs.Json.member "minor_words_per_run" k with
        | Some (Obs.Json.Int w) when w >= 0 -> w
        | Some _ -> fail "%s: minor_words_per_run must be a non-negative integer" name
        | None -> fail "%s: missing minor_words_per_run" name
      in
      (match Obs.Json.member "max_minor_words_per_run" k with
      | Some (Obs.Json.Int floor) ->
          if floor < 0 then
            fail "%s: max_minor_words_per_run must be non-negative" name;
          if measured_words > floor then
            fail "%s: allocated %d minor words/run, exceeding the floor of %d"
              name measured_words floor
      | Some _ -> fail "%s: max_minor_words_per_run must be an integer" name
      | None -> ());
      match Obs.Json.member "seed" k with
      | Some (Obs.Json.Int s) when s = seed -> ()
      | _ -> fail "%s: missing or mismatched seed" name)
    kernels;
  (* Kernels the perf trajectory depends on must keep being recorded. *)
  let required =
    [ "hetarch collect-ledger-append";
      "hetarch span-record";
      "hetarch telemetry-snapshot";
      "hetarch obs-snapshot-write";
      "hetarch obs-merge";
      "hetarch obs-monitor-once";
      "hetarch serve-request-warm" ]
  in
  let recorded =
    List.filter_map
      (fun k ->
        match Obs.Json.member "name" k with
        | Some (Obs.Json.String n) -> Some n
        | _ -> None)
      kernels
  in
  List.iter
    (fun r -> if not (List.mem r recorded) then fail "missing required kernel %s" r)
    required;
  (* The zero-alloc contract: these kernels must keep being recorded WITH
     their allocation floor, or the gate silently evaporates. *)
  let alloc_gated =
    [ "hetarch fig6-decode-d7-batch-steady";
      "hetarch fig6-sample-decode-d7-batch";
      "hetarch serve-request-warm" ]
  in
  List.iter
    (fun r ->
      let entry =
        List.find_opt
          (fun k ->
            match Obs.Json.member "name" k with
            | Some (Obs.Json.String n) -> n = r
            | _ -> false)
          kernels
      in
      match entry with
      | None -> fail "missing alloc-gated kernel %s" r
      | Some k ->
          if Obs.Json.member "max_minor_words_per_run" k = None then
            fail "alloc-gated kernel %s lost its max_minor_words_per_run floor" r)
    alloc_gated;
  (* Scalar-vs-batch pairs: both sides must name recorded kernels, and a
     pair carrying a min_speedup floor must actually clear it — the fused
     sample->decode pipeline has to stay faster than the per-shot baseline. *)
  let kernel_names =
    List.filter_map
      (fun k ->
        match Obs.Json.member "name" k with
        | Some (Obs.Json.String n) -> Some n
        | _ -> None)
      kernels
  in
  let ns_of name =
    List.find_map
      (fun k ->
        match (Obs.Json.member "name" k, Obs.Json.member "ns_per_run" k) with
        | Some (Obs.Json.String n), Some v when n = name ->
            (try Some (Obs.Json.to_float v) with Failure _ -> None)
        | _ -> None)
      kernels
  in
  let gated_pairs = ref [] in
  let npairs =
    match Obs.Json.member "pairs" doc with
    | Some (Obs.Json.List ps) ->
        List.iter
          (fun p ->
            let str field =
              match Obs.Json.member field p with
              | Some (Obs.Json.String s) when s <> "" -> s
              | _ -> fail "pair entry missing %s" field
            in
            let name = str "name" in
            List.iter
              (fun side ->
                let k = str side in
                if not (List.mem k kernel_names) then
                  fail "pair %s: %s kernel %s not in kernels" name side k)
              [ "scalar"; "batch" ];
            match Obs.Json.member "min_speedup" p with
            | None -> ()
            | Some v ->
                let floor =
                  try Obs.Json.to_float v
                  with Failure _ -> fail "pair %s: min_speedup not numeric" name
                in
                gated_pairs := name :: !gated_pairs;
                let side field =
                  let k = str field in
                  match ns_of k with
                  | Some ns when Float.is_finite ns && ns > 0. -> ns
                  | _ ->
                      fail "pair %s: %s kernel %s has no usable ns_per_run"
                        name field k
                in
                let scalar = side "scalar" and batch = side "batch" in
                let speedup = scalar /. batch in
                if speedup < floor then
                  fail "pair %s: batch only %.2fx faster than scalar (floor %gx)"
                    name speedup floor)
          ps;
        List.length ps
    | _ -> fail "missing pairs array"
  in
  (* The fused sample->decode pair is the perf contract of the DEM pipeline:
     it must keep being recorded with its floor. *)
  if not (List.mem "fig6-sample-decode-d7" !gated_pairs) then
    fail "missing gated pair fig6-sample-decode-d7 (with min_speedup)";
  (* Cold/warm warm-start pairs: both sides must be recorded and the
     measured cold/warm ratio must clear the pair's min_speedup floor —
     the persistent characterization store has to actually pay off. *)
  let nwarm =
    match Obs.Json.member "warm_pairs" doc with
    | Some (Obs.Json.List ps) ->
        List.iter
          (fun p ->
            let str field =
              match Obs.Json.member field p with
              | Some (Obs.Json.String s) when s <> "" -> s
              | _ -> fail "warm_pair entry missing %s" field
            in
            let name = str "name" in
            let floor =
              match Obs.Json.member "min_speedup" p with
              | Some v ->
                  (try Obs.Json.to_float v
                   with Failure _ -> fail "warm_pair %s: min_speedup not numeric" name)
              | None -> fail "warm_pair %s: missing min_speedup" name
            in
            let side field =
              let k = str field in
              match ns_of k with
              | Some ns when Float.is_finite ns && ns > 0. -> ns
              | Some _ -> fail "warm_pair %s: %s kernel %s has no usable ns_per_run" name field k
              | None -> fail "warm_pair %s: %s kernel %s not in kernels" name field k
            in
            let cold = side "cold" and warm = side "warm" in
            let speedup = cold /. warm in
            if speedup < floor then
              fail "warm_pair %s: warm start only %.2fx faster than cold (floor %gx)"
                name speedup floor)
          ps;
        List.length ps
    | _ -> fail "missing warm_pairs array"
  in
  if Obs.Json.member "metrics" doc = None then fail "missing metrics snapshot";
  Printf.printf "%s OK: %d kernels, %d pairs, %d warm pairs, seed %d\n" path
    (List.length kernels) npairs nwarm seed
