# Developer and CI entry points.  `make ci` is the smoke gate: full build,
# the whole test suite, a quick bench pass, a structural check that the
# bench produced a well-formed BENCH_hetarch.json, and a determinism check
# that --jobs does not change any output for a fixed seed.

DUNE ?= dune

.PHONY: all build test bench ci jobs-smoke collect-smoke obs-smoke clean

all: build

build:
	$(DUNE) build @all

test:
	$(DUNE) runtest

bench:
	$(DUNE) exec bench/main.exe

# The Parallel determinism contract, end to end: the same seed must produce
# byte-identical stdout whether the Monte-Carlo fan-out runs on one domain
# or two.
jobs-smoke: build
	@for sub in fig6 table3; do \
	  $(DUNE) exec bin/main.exe -- $$sub --shots 200 --seed 7 --jobs 1 > /tmp/hetarch_j1.out || exit 1; \
	  $(DUNE) exec bin/main.exe -- $$sub --shots 200 --seed 7 --jobs 2 > /tmp/hetarch_j2.out || exit 1; \
	  diff -u /tmp/hetarch_j1.out /tmp/hetarch_j2.out \
	    || { echo "jobs-smoke: $$sub output depends on --jobs"; exit 1; }; \
	  echo "jobs-smoke: $$sub deterministic across --jobs 1/2"; \
	done

# The campaign resume contract, end to end: a tiny threshold campaign run
# to completion must produce a byte-identical merged CSV to the same
# campaign halted mid-run (--halt-after, the deterministic stand-in for a
# kill) and finished under --resume against its ledger.
COLLECT_FLAGS = threshold --seed 7 --max-shots 2048 --rel-ci 0.3 --min-shots 256 --batch 256
collect-smoke: build
	@rm -f /tmp/hetarch_collect.jsonl
	$(DUNE) exec bin/main.exe -- collect $(COLLECT_FLAGS) --csv /tmp/hetarch_ref.csv > /dev/null
	$(DUNE) exec bin/main.exe -- collect $(COLLECT_FLAGS) --ledger /tmp/hetarch_collect.jsonl --halt-after 3 > /dev/null
	$(DUNE) exec bin/main.exe -- collect $(COLLECT_FLAGS) --ledger /tmp/hetarch_collect.jsonl --resume --csv /tmp/hetarch_resumed.csv > /dev/null
	@diff -u /tmp/hetarch_ref.csv /tmp/hetarch_resumed.csv \
	  || { echo "collect-smoke: resumed CSV differs from uninterrupted run"; exit 1; }
	@echo "collect-smoke: killed+resumed campaign CSV byte-identical to uninterrupted run"

# The observability contract, end to end: a traced+telemetered campaign
# must leave artifacts every `obs` subcommand can analyze, and the profile
# (count-weighted folded stacks) must be byte-identical whether the
# campaign ran on one domain or two.
OBS_FLAGS = threshold --seed 7 --max-shots 1024 --batch 256
obs-smoke: build
	$(DUNE) exec bin/main.exe -- collect $(OBS_FLAGS) --jobs 1 \
	  --trace /tmp/hetarch_obs1.trace.jsonl \
	  --telemetry /tmp/hetarch_obs.telemetry.jsonl --telemetry-interval 0 \
	  --metrics /tmp/hetarch_obs.metrics.json > /dev/null
	$(DUNE) exec bin/main.exe -- collect $(OBS_FLAGS) --jobs 2 \
	  --trace /tmp/hetarch_obs2.trace.jsonl > /dev/null
	$(DUNE) exec bin/main.exe -- obs report /tmp/hetarch_obs.metrics.json > /dev/null
	$(DUNE) exec bin/main.exe -- obs tail /tmp/hetarch_obs.telemetry.jsonl > /dev/null
	$(DUNE) exec bin/main.exe -- obs top /tmp/hetarch_obs1.trace.jsonl > /dev/null
	$(DUNE) exec bin/main.exe -- obs diff /tmp/hetarch_obs.metrics.json \
	  /tmp/hetarch_obs.metrics.json > /dev/null
	$(DUNE) exec bin/main.exe -- obs flame --counts /tmp/hetarch_obs1.trace.jsonl \
	  > /tmp/hetarch_obs1.folded
	$(DUNE) exec bin/main.exe -- obs flame --counts /tmp/hetarch_obs2.trace.jsonl \
	  > /tmp/hetarch_obs2.folded
	@diff -u /tmp/hetarch_obs1.folded /tmp/hetarch_obs2.folded \
	  || { echo "obs-smoke: folded stacks depend on --jobs"; exit 1; }
	@echo "obs-smoke: artifacts analyzable; folded stacks byte-identical across --jobs 1/2"

ci: build test jobs-smoke collect-smoke obs-smoke
	$(DUNE) exec bench/main.exe -- --quick
	$(DUNE) exec tools/check_bench.exe -- BENCH_hetarch.json
	@$(DUNE) exec bin/main.exe -- obs diff BENCH_baseline.json BENCH_hetarch.json --threshold 25 \
	  || echo "ci: perf trend vs committed baseline regressed (warn-only, machines differ)"

clean:
	$(DUNE) clean
	rm -f BENCH_hetarch.json
