# Developer and CI entry points.  `make ci` is the smoke gate: full build,
# the whole test suite, a quick bench pass, a structural check that the
# bench produced a well-formed BENCH_hetarch.json, a determinism check
# that --jobs does not change any output for a fixed seed, and a
# warm-start check that the persistent characterization store serves a
# second sweep from disk without changing a byte of output.
#
# Every smoke target works in its own `mktemp -d` scratch directory and
# removes it on exit (success or failure), so parallel checkouts and CI
# runners never collide on shared /tmp paths.  When SMOKE_ARTIFACTS is set
# (GitHub CI sets it), a failing obs-/cache-smoke copies its scratch dir —
# telemetry, traces, metrics, the store — there before cleanup, so the
# workflow can upload the evidence.

DUNE ?= dune
SMOKE_ARTIFACTS ?=

.PHONY: all build test bench ci jobs-smoke collect-smoke obs-smoke obs-merge-smoke monitor-smoke cache-smoke decode-smoke alloc-smoke serve-smoke clean

all: build

build:
	$(DUNE) build @all

test:
	$(DUNE) runtest

bench:
	$(DUNE) exec bench/main.exe

# The Parallel determinism contract, end to end: the same seed must produce
# byte-identical stdout whether the Monte-Carlo fan-out runs on one domain
# or two.
jobs-smoke: build
	@d=$$(mktemp -d) && trap 'rm -rf "$$d"' EXIT && \
	for sub in fig6 table3; do \
	  $(DUNE) exec bin/main.exe -- $$sub --shots 200 --seed 7 --jobs 1 > $$d/j1.out || exit 1; \
	  $(DUNE) exec bin/main.exe -- $$sub --shots 200 --seed 7 --jobs 2 > $$d/j2.out || exit 1; \
	  diff -u $$d/j1.out $$d/j2.out \
	    || { echo "jobs-smoke: $$sub output depends on --jobs"; exit 1; }; \
	  echo "jobs-smoke: $$sub deterministic across --jobs 1/2"; \
	done

# The campaign resume contract, end to end: a tiny threshold campaign run
# to completion must produce a byte-identical merged CSV to the same
# campaign halted mid-run (--halt-after, the deterministic stand-in for a
# kill) and finished under --resume against its ledger.
COLLECT_FLAGS = threshold --seed 7 --max-shots 2048 --rel-ci 0.3 --min-shots 256 --batch 256
collect-smoke: build
	@d=$$(mktemp -d) && trap 'rm -rf "$$d"' EXIT && \
	$(DUNE) exec bin/main.exe -- collect $(COLLECT_FLAGS) --csv $$d/ref.csv > /dev/null && \
	$(DUNE) exec bin/main.exe -- collect $(COLLECT_FLAGS) --ledger $$d/collect.jsonl --halt-after 3 > /dev/null && \
	$(DUNE) exec bin/main.exe -- collect $(COLLECT_FLAGS) --ledger $$d/collect.jsonl --resume --csv $$d/resumed.csv > /dev/null && \
	{ diff -u $$d/ref.csv $$d/resumed.csv \
	  || { echo "collect-smoke: resumed CSV differs from uninterrupted run"; exit 1; }; } && \
	echo "collect-smoke: killed+resumed campaign CSV byte-identical to uninterrupted run"

# The observability contract, end to end: a traced+telemetered campaign
# must leave artifacts every `obs` subcommand can analyze, and the profile
# (count-weighted folded stacks) must be byte-identical whether the
# campaign ran on one domain or two.
OBS_FLAGS = threshold --seed 7 --max-shots 1024 --batch 256
obs-smoke: build
	@d=$$(mktemp -d) && \
	trap 'rc=$$?; if [ $$rc -ne 0 ] && [ -n "$(SMOKE_ARTIFACTS)" ]; then \
	       mkdir -p "$(SMOKE_ARTIFACTS)" && cp -r "$$d" "$(SMOKE_ARTIFACTS)/obs-smoke"; fi; \
	     rm -rf "$$d"; exit $$rc' EXIT && \
	$(DUNE) exec bin/main.exe -- collect $(OBS_FLAGS) --jobs 1 \
	  --trace $$d/obs1.trace.jsonl \
	  --telemetry $$d/obs.telemetry.jsonl --telemetry-interval 0 \
	  --metrics $$d/obs.metrics.json > /dev/null && \
	$(DUNE) exec bin/main.exe -- collect $(OBS_FLAGS) --jobs 2 \
	  --trace $$d/obs2.trace.jsonl > /dev/null && \
	$(DUNE) exec bin/main.exe -- obs report $$d/obs.metrics.json > /dev/null && \
	$(DUNE) exec bin/main.exe -- obs tail $$d/obs.telemetry.jsonl > /dev/null && \
	$(DUNE) exec bin/main.exe -- obs top $$d/obs1.trace.jsonl > /dev/null && \
	$(DUNE) exec bin/main.exe -- obs diff $$d/obs.metrics.json \
	  $$d/obs.metrics.json > /dev/null && \
	$(DUNE) exec bin/main.exe -- obs flame --counts $$d/obs1.trace.jsonl \
	  > $$d/obs1.folded && \
	$(DUNE) exec bin/main.exe -- obs flame --counts $$d/obs2.trace.jsonl \
	  > $$d/obs2.folded && \
	{ diff -u $$d/obs1.folded $$d/obs2.folded \
	  || { echo "obs-smoke: folded stacks depend on --jobs"; exit 1; }; } && \
	echo "obs-smoke: artifacts analyzable; folded stacks byte-identical across --jobs 1/2"

# The fleet-observability contract, end to end: three CONCURRENT
# shard-labelled collect processes (different --jobs each) record snapshots
# into a shared run registry; merging them must be byte-identical whether
# the sources are given as file paths in forward order or registry run-id
# prefixes in reverse order, with counters summing exactly (6 tasks x 1024
# shots).  The registry lists all three runs with their shard labels, and
# the trend watchdog judges a fresh run against registry history — warn-only
# here, hard gate in GitHub CI via TREND_GATE=--gate.  Also covers `obs
# tail` on empty and mid-record-truncated telemetry streams.
#
# Runs the built binary directly: three concurrent `dune exec` invocations
# would race on the build lock.
MERGE_FLAGS = threshold --seed 7 --max-shots 1024 --batch 256
TREND_GATE ?=
obs-merge-smoke: build
	@d=$$(mktemp -d); \
	trap 'rc=$$?; if [ $$rc -ne 0 ] && [ -n "$(SMOKE_ARTIFACTS)" ]; then \
	       mkdir -p "$(SMOKE_ARTIFACTS)" && cp -r "$$d" "$(SMOKE_ARTIFACTS)/obs-merge-smoke"; fi; \
	     rm -rf "$$d"; exit $$rc' EXIT; \
	bin=$$PWD/_build/default/bin/main.exe; \
	$$bin collect $(MERGE_FLAGS) --shards 3 --shard 0 --jobs 2 --obs-dir $$d/reg > /dev/null & p0=$$!; \
	$$bin collect $(MERGE_FLAGS) --shards 3 --shard 1 --jobs 1 --obs-dir $$d/reg > /dev/null & p1=$$!; \
	$$bin collect $(MERGE_FLAGS) --shards 3 --shard 2 --jobs 3 --obs-dir $$d/reg > /dev/null & p2=$$!; \
	wait $$p0 && wait $$p1 && wait $$p2 && \
	{ test $$(ls $$d/reg/snapshots | wc -l) -eq 3 \
	  || { echo "obs-merge-smoke: expected 3 snapshots"; exit 1; }; } && \
	$$bin obs merge -o $$d/fleet_fwd.json $$d/reg/snapshots/*.json && \
	$$bin obs merge --obs-dir $$d/reg -o $$d/fleet_rev.json \
	  $$(ls $$d/reg/snapshots | sed 's/\.json//' | sort -r) && \
	{ cmp -s $$d/fleet_fwd.json $$d/fleet_rev.json \
	  || { echo "obs-merge-smoke: fleet view depends on merge order"; exit 1; }; } && \
	{ grep -q '"collect.shots_total":6144' $$d/fleet_fwd.json \
	  || { echo "obs-merge-smoke: merged shot counter is not 6*1024"; exit 1; }; } && \
	for s in shard0/3 shard1/3 shard2/3; do \
	  $$bin obs runs --obs-dir $$d/reg | grep -q $$s \
	    || { echo "obs-merge-smoke: registry misses $$s"; exit 1; }; \
	done && \
	$$bin obs show --obs-dir $$d/reg $$d/fleet_fwd.json > /dev/null && \
	for i in 1 2 3; do \
	  $$bin collect $(MERGE_FLAGS) --obs-dir $$d/trendreg > /dev/null \
	    || { echo "obs-merge-smoke: trend-history run $$i failed"; exit 1; }; \
	done && \
	$$bin obs compare --obs-dir $$d/trendreg --last 2 \
	  --threshold 50 --noise-floor-ns 1000000 $(TREND_GATE) && \
	printf '' > $$d/empty.jsonl && \
	{ $$bin obs tail $$d/empty.jsonl | grep -q empty \
	  || { echo "obs-merge-smoke: obs tail chokes on an empty stream"; exit 1; }; } && \
	$$bin collect $(MERGE_FLAGS) --telemetry $$d/tel.jsonl --telemetry-interval 0 > /dev/null && \
	head -c $$(($$(wc -c < $$d/tel.jsonl) - 37)) $$d/tel.jsonl > $$d/torn.jsonl && \
	$$bin obs tail $$d/torn.jsonl > /dev/null && \
	echo "obs-merge-smoke: 3-shard fleet view order-insensitive, counters exact, trend watchdog ran"

# Distributed tracing + fleet monitor, end to end: one `collect --shards 2`
# coordinator forks two shard processes; all three must stream telemetry
# into the registry's sink, carry one fleet-wide trace id, and show up in
# `obs monitor --once` with nonzero shard throughput.  Parent resolution is
# proven by `obs trace-merge --check`: the full fleet merges with no orphan
# parents (exit 0) while the shards without their coordinator do not (exit
# 1) — and the merged timeline is byte-identical for any input order.  Also
# covers the stall detector (a stream with an old mtime and no final record
# flags "stalled") and `obs runs --prune` compaction of dangling entries.
MONITOR_FLAGS = threshold --seed 7 --max-shots 2048 --batch 256
monitor-smoke: build
	@d=$$(mktemp -d); \
	trap 'rc=$$?; if [ $$rc -ne 0 ] && [ -n "$(SMOKE_ARTIFACTS)" ]; then \
	       mkdir -p "$(SMOKE_ARTIFACTS)" && cp -r "$$d" "$(SMOKE_ARTIFACTS)/monitor-smoke"; fi; \
	     rm -rf "$$d"; exit $$rc' EXIT; \
	bin=$$PWD/_build/default/bin/main.exe; \
	$$bin collect $(MONITOR_FLAGS) --shards 2 --obs-dir $$d/reg \
	  --trace $$d/trace.jsonl --telemetry-interval 0 > /dev/null && \
	{ test $$(ls $$d/reg/telemetry | wc -l) -eq 3 \
	  || { echo "monitor-smoke: expected 3 telemetry streams (coordinator + 2 shards)"; exit 1; }; } && \
	$$bin obs monitor --obs-dir $$d/reg --once > $$d/mon.jsonl && \
	{ test $$(wc -l < $$d/mon.jsonl) -eq 3 \
	  || { echo "monitor-smoke: monitor --once misses streams"; exit 1; }; } && \
	{ test $$(grep -o '"trace_id":"[0-9a-f]*"' $$d/mon.jsonl | sort -u | wc -l) -eq 1 \
	  || { echo "monitor-smoke: fleet does not share one trace id"; exit 1; }; } && \
	for s in shard0/2 shard1/2; do \
	  grep '"shard":"'$$s'"' $$d/mon.jsonl | grep -q '"status":"done"' \
	    || { echo "monitor-smoke: $$s not reported done"; exit 1; }; \
	  grep '"shard":"'$$s'"' $$d/mon.jsonl | grep -vq '"shots_per_s":0.0,' \
	    || { echo "monitor-smoke: $$s reports zero throughput"; exit 1; }; \
	done && \
	$$bin obs trace-merge --check -o $$d/m_fwd.jsonl \
	  $$d/trace.jsonl $$d/trace.jsonl.shard0 $$d/trace.jsonl.shard1 && \
	$$bin obs trace-merge -o $$d/m_rev.jsonl \
	  $$d/trace.jsonl.shard1 $$d/trace.jsonl.shard0 $$d/trace.jsonl && \
	{ cmp -s $$d/m_fwd.jsonl $$d/m_rev.jsonl \
	  || { echo "monitor-smoke: merged timeline depends on input order"; exit 1; }; } && \
	{ ! $$bin obs trace-merge --check -o /dev/null \
	      $$d/trace.jsonl.shard0 $$d/trace.jsonl.shard1 2> /dev/null \
	  || { echo "monitor-smoke: orphaned shard parents not detected"; exit 1; }; } && \
	mkdir -p $$d/stall/telemetry && \
	head -n -1 $$(ls $$d/reg/telemetry/*.jsonl | head -1) > $$d/stall/telemetry/run.jsonl && \
	touch -d '1 hour ago' $$d/stall/telemetry/run.jsonl && \
	{ $$bin obs monitor --obs-dir $$d/stall --once | grep -q '"status":"stalled"' \
	  || { echo "monitor-smoke: silent stream not flagged as stalled"; exit 1; }; } && \
	rm $$(ls $$d/reg/snapshots/*.json | head -1) && \
	{ $$bin obs runs --obs-dir $$d/reg | grep -q MISSING \
	  || { echo "monitor-smoke: dangling registry entry not marked"; exit 1; }; } && \
	{ $$bin obs runs --obs-dir $$d/reg --prune | grep -q 'pruned 1' \
	  || { echo "monitor-smoke: prune did not drop the dangling entry"; exit 1; }; } && \
	{ ! $$bin obs runs --obs-dir $$d/reg | grep -q MISSING \
	  || { echo "monitor-smoke: dangling entry survives --prune"; exit 1; }; } && \
	echo "monitor-smoke: 2-shard fleet traced under one id, monitor live, merge canonical, stall + prune verified"

# The warm-start contract, end to end: a characterization sweep against a
# fresh --cache-dir (cold: every point pays density-matrix simulation,
# write-back to the store) must produce byte-identical stdout to the same
# sweep re-run against the populated store (warm: nonzero disk hits, zero
# simulations) — including across --jobs — and a deliberately truncated
# store entry must degrade to a recomputed miss, never an error or a
# changed byte of output.
cache-smoke: build
	@d=$$(mktemp -d) && \
	trap 'rc=$$?; if [ $$rc -ne 0 ] && [ -n "$(SMOKE_ARTIFACTS)" ]; then \
	       mkdir -p "$(SMOKE_ARTIFACTS)" && cp -r "$$d" "$(SMOKE_ARTIFACTS)/cache-smoke"; fi; \
	     rm -rf "$$d"; exit $$rc' EXIT && \
	$(DUNE) exec bin/main.exe -- charsweep --cache-dir $$d/store \
	  > $$d/cold.out 2> $$d/cold.err && \
	$(DUNE) exec bin/main.exe -- charsweep --cache-dir $$d/store --jobs 2 \
	  --metrics $$d/warm.metrics.json > $$d/warm.out 2> $$d/warm.err && \
	{ diff -u $$d/cold.out $$d/warm.out \
	  || { echo "cache-smoke: warm sweep output differs from cold"; exit 1; }; } && \
	{ grep -Eq '[1-9][0-9]* disk hits' $$d/warm.err \
	  || { echo "cache-smoke: warm sweep hit the disk store 0 times"; \
	       cat $$d/warm.err; exit 1; }; } && \
	{ grep -Eq '"dse.cache_disk_hits":[1-9]' $$d/warm.metrics.json \
	  || { echo "cache-smoke: metrics manifest records no disk hits"; exit 1; }; } && \
	grep 'burden reduction' $$d/warm.err && \
	entry=$$(find $$d/store -name '*.chan' | sort | head -n 1) && \
	head -c 10 "$$entry" > "$$entry.trunc" && mv "$$entry.trunc" "$$entry" && \
	$(DUNE) exec bin/main.exe -- charsweep --cache-dir $$d/store \
	  > $$d/corrupt.out 2> $$d/corrupt.err && \
	{ diff -u $$d/cold.out $$d/corrupt.out \
	  || { echo "cache-smoke: output changed after store corruption"; exit 1; }; } && \
	{ grep -Eq '[1-9][0-9]* misses' $$d/corrupt.err \
	  || { echo "cache-smoke: truncated entry did not degrade to a miss"; \
	       cat $$d/corrupt.err; exit 1; }; } && \
	echo "cache-smoke: warm start from disk, byte-identical output, corruption degrades to miss"

# The fused decode contract, end to end: `decode-check` proves the batch
# arena decoder agrees shot-for-shot with per-shot scalar decoding, its
# stdout must be byte-identical across --jobs 1/4, and a compiled-DEM
# store (--cache-dir) must serve the second run from disk (nonzero
# qec.dem_store_hits_total) without changing a byte of output.
decode-smoke: build
	@d=$$(mktemp -d) && \
	trap 'rc=$$?; if [ $$rc -ne 0 ] && [ -n "$(SMOKE_ARTIFACTS)" ]; then \
	       mkdir -p "$(SMOKE_ARTIFACTS)" && cp -r "$$d" "$(SMOKE_ARTIFACTS)/decode-smoke"; fi; \
	     rm -rf "$$d"; exit $$rc' EXIT && \
	$(DUNE) exec bin/main.exe -- decode-check --shots 512 --seed 7 --jobs 1 \
	  > $$d/j1.out && \
	$(DUNE) exec bin/main.exe -- decode-check --shots 512 --seed 7 --jobs 4 \
	  > $$d/j4.out && \
	{ diff -u $$d/j1.out $$d/j4.out \
	  || { echo "decode-smoke: decode-check output depends on --jobs"; exit 1; }; } && \
	$(DUNE) exec bin/main.exe -- decode-check --shots 512 --seed 7 \
	  --cache-dir $$d/store --metrics $$d/cold.metrics.json > $$d/cold.out && \
	$(DUNE) exec bin/main.exe -- decode-check --shots 512 --seed 7 \
	  --cache-dir $$d/store --metrics $$d/warm.metrics.json > $$d/warm.out && \
	{ diff -u $$d/cold.out $$d/warm.out \
	  || { echo "decode-smoke: warm compiled-DEM run output differs from cold"; exit 1; }; } && \
	{ diff -u $$d/j1.out $$d/cold.out \
	  || { echo "decode-smoke: --cache-dir changed decode-check output"; exit 1; }; } && \
	{ grep -Eq '"qec.dem_store_misses_total":[1-9]' $$d/cold.metrics.json \
	  || { echo "decode-smoke: cold run recorded no compiled-DEM misses"; exit 1; }; } && \
	{ grep -Eq '"qec.dem_store_hits_total":[1-9]' $$d/warm.metrics.json \
	  || { echo "decode-smoke: warm run served no compiled DEMs from disk"; exit 1; }; } && \
	echo "decode-smoke: batch==scalar decode, byte-identical across --jobs and compiled-DEM warm start"

# The allocation contract, end to end: `decode-check --alloc-budget` proves
# the warm batch decoder allocates exactly zero minor words up to d=9 and
# the fused sample+decode path stays within its per-shot budget; the
# alloc-weighted flamegraph must be byte-identical across --jobs (word
# counters are exact and domain-local, so a sequential workload folds
# identically no matter how many domains are idle); and the flamegraph's
# root total must reconcile with the manifest's process-level minor-word
# counter to within 1% — proving span attribution accounts for essentially
# every word the process allocates.
alloc-smoke: build
	@d=$$(mktemp -d) && \
	trap 'rc=$$?; if [ $$rc -ne 0 ] && [ -n "$(SMOKE_ARTIFACTS)" ]; then \
	       mkdir -p "$(SMOKE_ARTIFACTS)" && cp -r "$$d" "$(SMOKE_ARTIFACTS)/alloc-smoke"; fi; \
	     rm -rf "$$d"; exit $$rc' EXIT && \
	$(DUNE) exec bin/main.exe -- decode-check --shots 512 --seed 7 --dmax 9 \
	  --alloc-budget 64 --jobs 1 --trace $$d/a1.trace.jsonl \
	  --metrics $$d/a1.metrics.json > $$d/j1.out && \
	$(DUNE) exec bin/main.exe -- decode-check --shots 512 --seed 7 --dmax 9 \
	  --alloc-budget 64 --jobs 2 --trace $$d/a2.trace.jsonl > $$d/j2.out && \
	{ diff -u $$d/j1.out $$d/j2.out \
	  || { echo "alloc-smoke: decode-check output depends on --jobs"; exit 1; }; } && \
	$(DUNE) exec bin/main.exe -- obs flame --alloc $$d/a1.trace.jsonl \
	  > $$d/a1.folded && \
	$(DUNE) exec bin/main.exe -- obs flame --alloc $$d/a2.trace.jsonl \
	  > $$d/a2.folded && \
	{ diff -u $$d/a1.folded $$d/a2.folded \
	  || { echo "alloc-smoke: alloc flamegraph depends on --jobs"; exit 1; }; } && \
	{ test -s $$d/a1.folded \
	  || { echo "alloc-smoke: alloc flamegraph is empty"; exit 1; }; } && \
	root=$$(awk '{ s += $$NF } END { printf "%d", s }' $$d/a1.folded) && \
	proc=$$(grep -o '"minor_words":[0-9]*' $$d/a1.metrics.json | head -n1 | cut -d: -f2) && \
	gap=$$(( root > proc ? root - proc : proc - root )) && \
	{ test $$(( gap * 100 )) -le $$proc \
	  || { echo "alloc-smoke: flame root total $$root vs process minor words $$proc: off by >1%"; exit 1; }; } && \
	echo "alloc-smoke: zero-alloc decode proven to d=9; alloc flamegraph jobs-invariant, reconciles within 1% ($$root vs $$proc words)"

# The serve daemon contract, end to end: 8 concurrent clients over 3
# distinct queries must coalesce (single-flight dedup counter > 0), a
# second wave must be answered from the warm response store (warm-hit
# counters > 0), and identical requests must receive byte-identical
# response bodies — within a wave, across waves, and recomputed cold by a
# daemon running at a different --jobs.  Shutdown is exercised both ways
# (the shutdown control query and SIGTERM), and both daemons must leave
# valid registry artifacts: one snapshot each, telemetry streams closed
# with exactly one final record.  Clients run the built binary directly:
# concurrent `dune exec` processes race on the build lock.
serve-smoke: build
	@d=$$(mktemp -d) && \
	trap 'rc=$$?; [ -n "$$spid" ] && kill $$spid 2>/dev/null; \
	     if [ $$rc -ne 0 ] && [ -n "$(SMOKE_ARTIFACTS)" ]; then \
	       mkdir -p "$(SMOKE_ARTIFACTS)" && cp -r "$$d" "$(SMOKE_ARTIFACTS)/serve-smoke"; fi; \
	     rm -rf "$$d"; exit $$rc' EXIT && \
	bin=$$PWD/_build/default/bin/main.exe && \
	q0='{"kind":"threshold","distance":5,"shots":80000,"seed":7}' && \
	q1='{"kind":"uec","code":"SC3","shots":100000,"seed":7}' && \
	q2='{"kind":"distill","shots":4000,"seed":7}' && \
	{ $$bin serve --socket $$d/serve.sock --cache-dir $$d/cache --obs-dir $$d/obs \
	    --jobs 2 2> $$d/serve.err & spid=$$!; } && \
	pids= && \
	for i in 0 1 2 3 4 5 6 7; do \
	  case $$((i % 3)) in 0) q="$$q0";; 1) q="$$q1";; *) q="$$q2";; esac; \
	  $$bin query --socket $$d/serve.sock --retry-for 15 "$$q" > $$d/w1.$$i & \
	  pids="$$pids $$!"; \
	done; \
	for p in $$pids; do wait $$p \
	  || { echo "serve-smoke: wave-1 client failed"; exit 1; }; done && \
	$$bin query --socket $$d/serve.sock '{"kind":"stats"}' > $$d/stats1.json && \
	co=$$(grep -o '"serve.coalesced_total":[0-9]*' $$d/stats1.json | cut -d: -f2) && \
	{ [ "$$co" -gt 0 ] \
	  || { echo "serve-smoke: no coalesced requests (single-flight dedup never fired)"; \
	       cat $$d/stats1.json; exit 1; }; } && \
	pids= && \
	for i in 0 1 2 3 4 5 6 7; do \
	  case $$((i % 3)) in 0) q="$$q0";; 1) q="$$q1";; *) q="$$q2";; esac; \
	  $$bin query --socket $$d/serve.sock "$$q" > $$d/w2.$$i & \
	  pids="$$pids $$!"; \
	done; \
	for p in $$pids; do wait $$p \
	  || { echo "serve-smoke: wave-2 client failed"; exit 1; }; done && \
	$$bin query --socket $$d/serve.sock '{"kind":"stats"}' > $$d/stats2.json && \
	wm=$$(grep -o '"serve.warm_memory_hits_total":[0-9]*' $$d/stats2.json | cut -d: -f2) && \
	{ [ "$$wm" -gt 0 ] \
	  || { echo "serve-smoke: second wave produced no warm-store hits"; \
	       cat $$d/stats2.json; exit 1; }; } && \
	for k in 0 1 2; do \
	  files=; for i in 0 1 2 3 4 5 6 7; do \
	    [ $$((i % 3)) -eq $$k ] && files="$$files $$d/w1.$$i $$d/w2.$$i"; done; \
	  n=$$(cat $$files | sort -u | wc -l); \
	  [ "$$n" -eq 1 ] \
	    || { echo "serve-smoke: query $$k bodies not byte-identical across clients/waves"; exit 1; }; \
	done && \
	$$bin query --socket $$d/serve.sock '{"kind":"shutdown"}' > /dev/null && \
	{ wait $$spid \
	  || { echo "serve-smoke: daemon exited nonzero after shutdown query"; exit 1; }; } && \
	spid= && \
	{ $$bin serve --socket $$d/serve2.sock --obs-dir $$d/obs --jobs 1 \
	    2>> $$d/serve.err & spid=$$!; } && \
	for k in 0 1 2; do \
	  case $$k in 0) q="$$q0";; 1) q="$$q1";; *) q="$$q2";; esac; \
	  $$bin query --socket $$d/serve2.sock --retry-for 15 "$$q" > $$d/cold.$$k \
	    || { echo "serve-smoke: cold recompute client failed"; exit 1; }; \
	  diff -u $$d/w1.$$k $$d/cold.$$k > /dev/null \
	    || { echo "serve-smoke: --jobs 1 cold recompute differs from --jobs 2 body (query $$k)"; \
	         diff -u $$d/w1.$$k $$d/cold.$$k; exit 1; }; \
	done && \
	kill -TERM $$spid && \
	{ wait $$spid \
	  || { echo "serve-smoke: daemon exited nonzero on SIGTERM"; exit 1; }; } && \
	spid= && \
	{ [ "$$(wc -l < $$d/obs/index.jsonl)" -eq 2 ] \
	  || { echo "serve-smoke: expected 2 registry entries (one per daemon)"; \
	       cat $$d/obs/index.jsonl; exit 1; }; } && \
	{ [ "$$(cat $$d/obs/telemetry/*.jsonl | grep -c '"final":true')" -eq 2 ] \
	  || { echo "serve-smoke: telemetry streams not closed exactly once each"; exit 1; }; } && \
	echo "serve-smoke: $$co coalesced, $$wm warm hits; bodies byte-identical across 8 clients, 2 waves, --jobs 1/2; both shutdown paths left valid registry artifacts"

ci: build test jobs-smoke collect-smoke obs-smoke obs-merge-smoke monitor-smoke cache-smoke decode-smoke alloc-smoke serve-smoke
	$(DUNE) exec bench/main.exe -- --quick
	$(DUNE) exec tools/check_bench.exe -- BENCH_hetarch.json
	@$(DUNE) exec bin/main.exe -- obs diff BENCH_baseline.json BENCH_hetarch.json \
	  --threshold 25 --normalize --noise-floor-ns 20000 \
	  || echo "ci: perf trend vs committed baseline regressed (warn-only locally; hard gate in GitHub CI)"

clean:
	$(DUNE) clean
	rm -f BENCH_hetarch.json
