# Developer and CI entry points.  `make ci` is the smoke gate: full build,
# the whole test suite, a quick bench pass, and a structural check that the
# bench produced a well-formed BENCH_hetarch.json.

DUNE ?= dune

.PHONY: all build test bench ci clean

all: build

build:
	$(DUNE) build @all

test:
	$(DUNE) runtest

bench:
	$(DUNE) exec bench/main.exe

ci: build test
	$(DUNE) exec bench/main.exe -- --quick
	$(DUNE) exec tools/check_bench.exe -- BENCH_hetarch.json

clean:
	$(DUNE) clean
	rm -f BENCH_hetarch.json
