(* hetarch: command-line harness regenerating every table and figure of the
   paper's evaluation.  Each subcommand prints the same rows/series the paper
   reports; shot counts scale with --shots (or HETARCH_SHOTS). *)

let default_shots =
  match Sys.getenv_opt "HETARCH_SHOTS" with
  | Some s -> (try max 50 (int_of_string s) with _ -> 2000)
  | None -> 2000

let g = Tableio.fmt_g

(* ------------------------------------------------------------- devices *)

let run_devices () =
  print_endline "Table 1: near-term superconducting quantum devices";
  Tableio.print ~align:Tableio.Left
    ~header:
      [ "Device"; "T1/T2"; "Readout"; "Gates"; "Gate error (time)"; "Conn.";
        "Capacity"; "Control"; "Footprint"; "Notes" ]
    (Device.table_rows ());
  List.iter Device.validate Device.catalog;
  print_endline "\nAll catalog entries pass physicality validation."

(* --------------------------------------------------------------- cells *)

let run_cells () =
  print_endline "Table 2: quantum standard cells (design rules DR1-DR4)";
  let rows =
    List.map
      (fun c ->
        let violations = Design_rules.check c.Cell.graph in
        [ Cell.name c;
          string_of_int (Array.length c.Cell.graph.Design_rules.instances);
          string_of_int (Cell.capacity c);
          string_of_int (Cell.control_lines c);
          Printf.sprintf "%.0f" (Cell.footprint_mm2 c);
          (if violations = [] then "compliant" else "VIOLATIONS") ])
      (Cell.all ())
  in
  Tableio.print ~align:Tableio.Left
    ~header:[ "Cell"; "Devices"; "Capacity"; "Control lines"; "Footprint mm^2"; "DRC" ]
    rows;
  print_endline "\nCharacterized operations (density-matrix simulation):";
  let reg = Cell.register () in
  let pc = Cell.parcheck () in
  let so = Cell.seqop () in
  let uc = Cell.usc () in
  (* Routed through the memo hook: with --cache-dir the second run serves
     these from the persistent store; the table bytes are identical either
     way because the codec round-trips bit-exactly. *)
  let memo = Char_store.memo () in
  let ch cell op = (Characterize.characterize_op ~memo cell op).Characterize.perf in
  let load = ch reg Characterize.Load in
  let ret = ch reg (Characterize.Retention { dt = 10e-6 }) in
  let par = ch pc Characterize.Parity_check in
  let seq = ch so (Characterize.Seq_cnots { count = 5 }) in
  let stab = ch uc (Characterize.Stabilizer { weight = 4; serialized = true }) in
  Tableio.print ~align:Tableio.Left
    ~header:[ "Operation"; "Duration (us)"; "Error" ]
    [ [ "Register load (SWAP in)"; g (load.Characterize.duration *. 1e6); g load.Characterize.error ];
      [ "Register retention (10 us)"; g (ret.Characterize.duration *. 1e6); g ret.Characterize.error ];
      [ "ParCheck parity check"; g (par.Characterize.duration *. 1e6); g par.Characterize.error ];
      [ "SeqOp 5 sequential CNOTs"; g (seq.Characterize.duration *. 1e6); g seq.Characterize.error ];
      [ "USC weight-4 stabilizer (serial)"; g (stab.Characterize.duration *. 1e6); g stab.Characterize.error ] ]

(* ---------------------------------------------------------------- fig3 *)

let run_fig3 seed =
  print_endline "Fig 3: best output-register EP infidelity over time (1 MHz generation)";
  let horizon = 100e-6 in
  let run cfg = Distill_module.run ~trace_dt:5e-6 cfg (Rng.create seed) ~horizon in
  let het = run (Distill_module.heterogeneous ~rate_hz:1e6 ()) in
  let hom = run (Distill_module.homogeneous ~rate_hz:1e6 ()) in
  let fmt r t =
    let nearest =
      List.fold_left
        (fun acc s ->
          match acc with
          | Some best
            when Float.abs (best.Distill_module.time -. t)
                 <= Float.abs (s.Distill_module.time -. t) -> acc
          | _ -> Some s)
        None r.Distill_module.trace
    in
    match nearest with
    | Some { Distill_module.best_output_infidelity = Some i; _ } -> g i
    | _ -> "-"
  in
  let times = List.init 11 (fun i -> float_of_int i *. 10e-6) in
  Tableio.print
    ~header:[ "t (us)"; "het infidelity (Ts=12.5ms)"; "hom infidelity (Ts=0.5ms)" ]
    (List.map (fun t -> [ g (t *. 1e6); fmt het t; fmt hom t ]) times);
  Printf.printf "\ndelivered: het %d, hom %d (target fidelity 0.995)\n"
    het.Distill_module.delivered hom.Distill_module.delivered

(* ---------------------------------------------------------------- fig4 *)

let run_fig4 seed =
  print_endline "Fig 4: distilled-EP rate (F >= 0.995) vs generation rate and Ts";
  let rates = [ 1e5; 2e5; 5e5; 1e6; 2e6; 5e6; 1e7 ] in
  let configs =
    [ ("Ts=0.5ms (hom)", fun rate -> Distill_module.homogeneous ~rate_hz:rate ());
      ("Ts=1.0ms", fun rate -> Distill_module.heterogeneous ~ts:1e-3 ~rate_hz:rate ());
      ("Ts=2.5ms", fun rate -> Distill_module.heterogeneous ~ts:2.5e-3 ~rate_hz:rate ());
      ("Ts=5.0ms", fun rate -> Distill_module.heterogeneous ~ts:5e-3 ~rate_hz:rate ());
      ("Ts=12.5ms", fun rate -> Distill_module.heterogeneous ~ts:12.5e-3 ~rate_hz:rate ()) ]
  in
  let rows =
    List.map
      (fun rate ->
        string_of_float (rate /. 1e3)
        :: List.map
             (fun (_, mk) ->
               let r = Distill_module.run (mk rate) (Rng.create seed) ~horizon:5e-3 in
               g (Distill_module.delivered_rate_per_ms r))
             configs)
      rates
  in
  Tableio.print
    ~header:("gen rate (kHz)" :: List.map fst configs)
    rows

(* ---------------------------------------------------------------- fig6 *)

let run_fig6 shots seed =
  print_endline
    "Fig 6: d=13 surface-code logical error per cycle vs coherence scaling alpha";
  let base = 1e-4 in
  let point ~t_data ~t_anc =
    let p = { (Surface_circuit.default ~distance:13) with t_data; t_anc } in
    let exp = Surface_circuit.build p in
    let rate = Surface_circuit.logical_error_rate exp (Rng.create seed) ~shots in
    Surface_circuit.per_cycle_rate ~shot_rate:rate ~rounds:p.Surface_circuit.rounds
  in
  let alphas = [ 1.; 2.; 3.; 4.; 5. ] in
  let rows =
    List.map
      (fun a ->
        [ g a;
          g (point ~t_data:(a *. base) ~t_anc:base);
          g (point ~t_data:base ~t_anc:(a *. base)) ])
      alphas
  in
  Tableio.print
    ~header:[ "alpha"; "Tcd = a*100us (Tca=100us)"; "Tca = a*100us (Tcd=100us)" ]
    rows;
  print_endline "(alpha = 1 in either column is the homogeneous system)"

(* ---------------------------------------------------------------- fig7 *)

let run_fig7 shots seed full =
  print_endline "Fig 7: logical error per cycle vs distance for Tcd/Tca ratios";
  let base = 1e-4 in
  let distances = if full then [ 5; 7; 9; 11; 13; 15 ] else [ 5; 7; 9; 11 ] in
  let ratios = [ 1.; 2.; 3.; 5.; 8. ] in
  let rows =
    List.map
      (fun d ->
        string_of_int d
        :: List.map
             (fun r ->
               let p =
                 { (Surface_circuit.default ~distance:d) with
                   t_data = r *. base;
                   t_anc = base }
               in
               let exp = Surface_circuit.build p in
               let rate = Surface_circuit.logical_error_rate exp (Rng.create seed) ~shots in
               g (Surface_circuit.per_cycle_rate ~shot_rate:rate ~rounds:d))
             ratios)
      distances
  in
  Tableio.print
    ~header:("d" :: List.map (fun r -> Printf.sprintf "Tcd/Tca=%g" r) ratios)
    rows;
  print_endline "(ratio 1 is the homogeneous system; growing ratios move below threshold)"

(* ---------------------------------------------------------------- fig9 *)

let run_fig9 shots seed =
  print_endline "Fig 9: UEC logical error rate per round vs storage coherence Ts";
  let ts_list = [ 0.5e-3; 1e-3; 2e-3; 5e-3; 10e-3; 20e-3; 50e-3 ] in
  let data =
    List.map
      (fun code ->
        ( code.Code.name,
          List.map
            (fun ts -> (ts, Uec.fig9_point ~code ~ts ~shots (Rng.create seed)))
            ts_list ))
      Codes.paper_codes
  in
  Tableio.print
    ~header:("code" :: List.map (fun ts -> Printf.sprintf "Ts=%gms" (ts *. 1e3)) ts_list)
    (List.map (fun (name, pts) -> name :: List.map (fun (_, v) -> g v) pts) data);
  print_newline ();
  print_string
    (Plot.lines ~logy:true
       ~series:(List.map (fun (n, pts) -> (n, List.map (fun (t, v) -> (t *. 1e3, v)) pts)) data)
       ());
  print_endline "(x: Ts in ms; y: log10 logical error rate per round)" 

(* -------------------------------------------------------------- table3 *)

let run_table3 shots seed =
  print_endline "Table 3: pseudothreshold and UEC logical error rates (Ts = 50 ms)";
  let rows =
    List.map
      (fun code ->
        let rng = Rng.create seed in
        let pt =
          if code.Code.planar then "-"
          else g (Threshold.pseudothreshold ~shots:(max 2000 (shots / 2)) code rng)
        in
        let het, hom, red = Uec.table3_row ~code ~ts:50e-3 ~shots rng in
        [ code.Code.name; pt; g het; g hom; Printf.sprintf "%.1fx" red ])
      Codes.paper_codes
  in
  Tableio.print ~header:[ "Code"; "PT"; "Het."; "Hom."; "Red." ] rows

(* --------------------------------------------------------------- fig12 *)

let run_fig12 shots seed =
  print_endline "Fig 12: code-teleportation logical error probability vs Ts";
  let pairs =
    [ (Codes.surface 3, Codes.reed_muller_15);
      (Codes.surface 3, Codes.surface 4);
      (Codes.color_17, Codes.surface 4) ]
  in
  let ts_list = [ 1e-3; 5e-3; 10e-3; 25e-3; 50e-3 ] in
  let rows =
    List.map
      (fun (a, b) ->
        Printf.sprintf "%s & %s" a.Code.name b.Code.name
        :: List.map
             (fun ts ->
               g (Teleport.fig12_point ~code_a:a ~code_b:b ~ts ~shots (Rng.create seed)))
             ts_list)
      pairs
  in
  Tableio.print
    ~header:("codes" :: List.map (fun ts -> Printf.sprintf "Ts=%gms" (ts *. 1e3)) ts_list)
    rows;
  print_endline "(EP generation 1000 kHz, distillation target 99.5%)"

(* -------------------------------------------------------------- table4 *)

let run_table4 shots seed =
  print_endline "Table 4: CT logical error probabilities, heterogeneous vs homogeneous";
  let results =
    Teleport.table4 ~codes:Codes.paper_codes ~ts:50e-3 ~shots (Rng.create seed)
  in
  Tableio.print ~align:Tableio.Left
    ~header:[ "Code A"; "Code B"; "Het."; "Hom."; "Red." ]
    (List.map
       (fun (a, b, het, hom) ->
         [ a; b; g het; g hom; Printf.sprintf "%.2fx" (hom /. het) ])
       results);
  let ratios = List.map (fun (_, _, het, hom) -> hom /. het) results in
  let n = float_of_int (List.length ratios) in
  Printf.printf "\nreduction: mean %.2fx, min %.2fx, max %.2fx\n"
    (List.fold_left ( +. ) 0. ratios /. n)
    (List.fold_left min infinity ratios)
    (List.fold_left max 0. ratios)

(* -------------------------------------------------------------- burden *)

let run_burden () =
  print_endline "DSE simulation-burden reduction (hierarchical vs flat density matrix)";
  let rows =
    List.map
      (fun (name, cells) ->
        [ name;
          string_of_int (Burden.module_qubits cells);
          Printf.sprintf "%.1e" (Burden.flat_cost cells);
          Printf.sprintf "%.1e" (Burden.hierarchical_cost cells);
          Printf.sprintf "%.1e" (Burden.reduction cells) ])
      [ ("entanglement distillation", Burden.distillation_module ());
        ("universal error correction", Burden.uec_module ());
        ("code teleportation", Burden.ct_module ()) ]
  in
  Tableio.print ~align:Tableio.Left
    ~header:[ "Module"; "Qubits"; "Flat cost"; "Hierarchical"; "Reduction" ]
    rows;
  print_endline "\n(The paper's claim: reduction by a factor of 10^4 or more.)"

(* ----------------------------------------------------------- charsweep *)

(* Characterization sweep over storage-coherence scaling: every point
   re-characterizes the storage-bearing cells by density-matrix simulation,
   which is exactly the workload the persistent store (--cache-dir)
   warm-starts.  The stdout table depends only on the characterized values,
   so it is byte-identical cold, warm, half-warm, or with no store at all;
   cache statistics go to stderr (and the --metrics manifest) only. *)
let run_charsweep n =
  print_endline
    "Characterization sweep: storage-cell operations vs coherence scaling alpha";
  let memo = Char_store.memo () in
  let alphas = Sweep.linspace ~lo:1. ~hi:5. ~n in
  let point alpha =
    let base = Device.multimode_resonator_3d in
    let storage =
      Device.with_coherence base ~t1:(alpha *. base.Device.t1)
        ~t2:(alpha *. base.Device.t2)
    in
    let ch cell op = (Characterize.characterize_op ~memo cell op).Characterize.perf in
    let load = ch (Cell.register ~storage ()) Characterize.Load in
    let ret =
      ch (Cell.register ~storage ()) (Characterize.Retention { dt = 10e-6 })
    in
    let seq =
      ch (Cell.seqop ~storage ()) (Characterize.Seq_cnots { count = 5 })
    in
    let stab =
      ch (Cell.usc ~storage ())
        (Characterize.Stabilizer { weight = 4; serialized = true })
    in
    [ g alpha; g load.Characterize.error; g ret.Characterize.error;
      g seq.Characterize.error; g stab.Characterize.error ]
  in
  let rows = List.map snd (Sweep.sweep ?store:(Char_store.store ()) alphas ~f:point) in
  Tableio.print
    ~header:
      [ "alpha"; "load err"; "retention err (10us)"; "seqop err (5 CX)";
        "USC w4 err" ]
    rows;
  print_endline "(alpha scales storage T1/T2; characterized via density-matrix simulation)";
  let paid = Cache.cost_paid Char_store.cache
  and avoided = Cache.cost_avoided Char_store.cache in
  Printf.eprintf "%s\n" (Char_store.stats ());
  if paid > 0. then
    Printf.eprintf "burden reduction vs recompute: %.2fx\n"
      ((paid +. avoided) /. paid)
  else if avoided > 0. then
    Printf.eprintf "burden reduction vs recompute: inf (all served from cache)\n"

(* ----------------------------------------------------------- ablations *)

let run_ablations shots seed =
  print_endline "Ablations of DESIGN.md design choices\n";
  (* 1. Decoder: weighted union-find vs greedy matching on d=5 circuits. *)
  print_endline "1. Decoder choice (d=5 surface code, paper noise):";
  let exp = Surface_circuit.build (Surface_circuit.default ~distance:5) in
  let dem = Dem.of_circuit exp.Surface_circuit.circuit in
  let matcher =
    Decoder_match.of_dem
      ~nodes:(Array.length exp.Surface_circuit.circuit.Circuit.detectors)
      dem
  in
  let uf_rate =
    Surface_circuit.logical_error_rate exp (Rng.create seed) ~shots
  in
  let match_rate =
    Frame.logical_error_rate exp.Surface_circuit.circuit (Rng.create seed) ~shots
      ~decode:(fun dets ->
        let out = Bitvec.create 1 in
        Bitvec.set out 0 (Decoder_match.decode matcher dets);
        out)
  in
  Printf.printf "   weighted union-find: %.4f/shot   greedy matching: %.4f/shot\n\n"
    uf_rate match_rate;
  (* 2. USC register count: swap pipelining from the 2-register layout. *)
  print_endline "2. USC register count (serialized round time):";
  List.iter
    (fun code ->
      let t1 = Uec.round_time_with_registers code ~registers:1 in
      let t2 = Uec.round_time_with_registers code ~registers:2 in
      Printf.printf "   %-6s 1 register: %6.2f us   2 registers: %6.2f us (%.0f%% saved)\n"
        code.Code.name (t1 *. 1e6) (t2 *. 1e6)
        (100. *. (t1 -. t2) /. t1))
    Codes.paper_codes;
  print_newline ();
  (* 3. Fabrication variability (paper §5: p-cells). *)
  print_endline "3. Coherence variability on the d=5 surface code (log-normal sigma):";
  List.iter
    (fun sigma ->
      let exp =
        Surface_circuit.build_varied ~sigma (Rng.create seed)
          { (Surface_circuit.default ~distance:5) with t_data = 3e-4; t_anc = 3e-4 }
      in
      let r = Surface_circuit.logical_error_rate exp (Rng.create (seed + 1)) ~shots in
      Printf.printf "   sigma = %.1f -> %.4f/shot\n" sigma r)
    [ 0.0; 0.3; 0.6; 1.0 ];
  print_newline ();
  (* 4. Noise bias (tailored codes): the Shor code's dense bit-flip checks
     pay off exactly when X errors dominate. *)
  print_endline "4. Noise bias eta = pz/px on the heterogeneous UEC (Ts = 50 ms):";
  List.iter
    (fun eta ->
      Printf.printf "   eta = %4.1f:" eta;
      List.iter
        (fun code ->
          let params = { Uec.default_params with eta } in
          let prof = Uec.profile ~params (Uec.Het { ts = 50e-3 }) code in
          let r = Uec.logical_error_rate ~params prof ~rounds:3 ~shots (Rng.create seed) in
          Printf.printf "  %s %.4f" code.Code.name r)
        [ Codes.shor; Codes.steane; Codes.surface 3 ];
      print_newline ())
    [ 0.1; 1.0; 10.0 ];
  print_newline ();
  (* 5. CAT generation: closed-form model vs circuit-level Monte Carlo. *)
  print_endline "5. CAT generator model (n = 24, 1% CX, Tc = 0.5 ms):";
  let mc = Cat_sim.run ~n:24 ~p2:1e-2 ~t_coh:0.5e-3 ~shots (Rng.create seed) in
  Printf.printf
    "   monte carlo: accept %.3f, undetected error %.4f  (closed-form e_cat uses all-error upper bound)\n"
    mc.Cat_sim.accept_rate mc.Cat_sim.error_given_accept

(* ------------------------------------------------------------ protocol *)

let run_protocol () =
  print_endline
    "Timed six-step CT protocol (Fig 10): throughput and latency vs Ts\n";
  List.iter
    (fun (a, b) ->
      Printf.printf "%s & %s:\n" a.Code.name b.Code.name;
      List.iter
        (fun ts ->
          let st = Ct_protocol.characterize ~code_a:a ~code_b:b ~ts (Rng.create 2023) in
          let r = Ct_protocol.run st (Rng.create 2024) ~horizon:5e-3 in
          Printf.printf
            "  Ts=%5.1fms: %.1f CT/ms, latency mean %.1f us (EP period %.2f us)\n"
            (ts *. 1e3)
            (Ct_protocol.throughput_per_ms r)
            (r.Ct_protocol.mean_latency *. 1e6)
            (st.Ct_protocol.ep_period *. 1e6))
        [ 2.5e-3; 12.5e-3; 50e-3 ];
      print_newline ())
    [ (Codes.surface 3, Codes.steane); (Codes.surface 3, Codes.reed_muller_15) ]

(* ------------------------------------------------------------ schedule *)

let run_schedule () =
  print_endline "Serialized UEC round schedules (one Gantt per code):\n";
  List.iter
    (fun code ->
      let prof = Uec.profile (Uec.Het { ts = 10e-3 }) code in
      let s = Schedule.of_uec_round code ~assignment:prof.Uec.assignment in
      Printf.printf "%s  [[%d,%d,%d]]  analytic %.2f us, scheduled %.2f us\n"
        code.Code.name code.Code.n code.Code.k code.Code.distance
        (prof.Uec.round_time *. 1e6) (s.Schedule.makespan *. 1e6);
      print_string (Schedule.render s);
      List.iter
        (fun r ->
          Printf.printf "  %s busy %.0f%%" r (100. *. Schedule.busy_fraction s r))
        (Schedule.resources s);
      print_newline ();
      print_newline ())
    [ Codes.steane; Codes.color_17 ];
  print_endline
    "The readout-dominated ancilla is the serialization bottleneck the USC\n\
     trades for topology freedom; registers idle in storage meanwhile."

(* ---------------------------------------------------------- decode-check *)

(* Fused-pipeline self-check used by `make decode-smoke`: for d=3 and d=5
   surface experiments, sample one DEM-direct batch and verify the batch
   arena decoder agrees shot-for-shot with the per-shot scalar decoder, then
   print the fused logical-error counts.  Stdout depends only on the seed —
   byte-identical at any --jobs (deterministic chunking) and with or
   without --cache-dir (a warm run decodes on a deserialized graph that
   must behave identically to the cold build). *)
(* Minor-heap words allocated by [f ()].  The [Gc.minor_words] result is a
   boxed float allocated just after the counter is read — i.e. inside the
   measured window — so an empty window calibrates that constant out.  Minor
   words are a pure function of the allocation sequence (collections don't
   reset the cumulative counter), so for a deterministic [f] the result is
   byte-identical on every run at any --jobs. *)
let alloc_words f =
  let c0 = Gc.minor_words () in
  let c1 = Gc.minor_words () in
  let overhead = c1 -. c0 in
  let a = Gc.minor_words () in
  f ();
  let b = Gc.minor_words () in
  int_of_float (b -. a -. overhead)

let run_decode_check shots seed dmax alloc_budget =
  print_endline "Fused decode self-check: batch arena decoder vs per-shot scalar";
  let ok = ref true in
  let distances = List.filter (fun d -> d <= max 3 dmax) [ 3; 5; 7; 9 ] in
  List.iter
    (fun d ->
      let exp =
        Surface_circuit.build
          { (Surface_circuit.default ~distance:d) with t_data = 5e-4 }
      in
      let nshots = max 64 (min shots 4096) in
      let b =
        Dem_sampler.sample exp.Surface_circuit.sampler (Rng.create seed) ~nshots
      in
      let batch =
        Decoder_uf.decode_batch exp.Surface_circuit.graph
          ~detectors:b.Frame_batch.detectors ~nshots
      in
      let mismatches = ref 0 in
      for s = 0 to nshots - 1 do
        let detectors, _ = Frame_batch.shot b s in
        if Decoder_uf.decode exp.Surface_circuit.graph detectors
           <> Bitvec.get batch s
        then incr mismatches
      done;
      (* jobs:1 on purpose: GC allocation counters are domain-local, so
         work fanned out to worker domains escapes the enclosing
         cmd.decode-check span's window.  Keeping the cross-check on the
         recording domain is what lets alloc-smoke reconcile the alloc
         flamegraph's root total against the manifest's process counter and
         demand byte-identical folded output at any --jobs.  Jobs
         determinism of this estimator is covered by test_fused's pinned
         seed vectors at jobs 1 vs 4. *)
      let errors =
        Surface_circuit.logical_error_count ~jobs:1 exp (Rng.create seed)
          ~shots:nshots
      in
      Printf.printf "d=%d: %d shots, batch/scalar mismatches %d, logical errors %d\n"
        d nshots !mismatches errors;
      (* Steady-state allocation proof: with the arena pool and the output
         row warm, a batch decode must allocate nothing at all; the full
         sample+decode pipeline is budgeted in words per shot. *)
      let graph = exp.Surface_circuit.graph in
      let out = Bitvec.create nshots in
      Decoder_uf.decode_batch_into graph ~detectors:b.Frame_batch.detectors
        ~nshots ~out;
      let decode_words =
        alloc_words (fun () ->
            Decoder_uf.decode_batch_into graph
              ~detectors:b.Frame_batch.detectors ~nshots ~out)
      in
      let fused_words =
        alloc_words (fun () ->
            let b2 =
              Dem_sampler.sample exp.Surface_circuit.sampler (Rng.create seed)
                ~nshots
            in
            Decoder_uf.decode_batch_into graph
              ~detectors:b2.Frame_batch.detectors ~nshots ~out)
      in
      let fused_per_shot = (fused_words + nshots - 1) / nshots in
      Printf.printf
        "d=%d: steady decode %d words, sample+decode %d words/shot\n" d
        decode_words fused_per_shot;
      (match alloc_budget with
      | Some budget ->
          if decode_words > 0 then begin
            Printf.eprintf
              "d=%d: warm decode_batch_into allocated %d words (want 0)\n" d
              decode_words;
            ok := false
          end;
          if fused_per_shot > budget then begin
            Printf.eprintf
              "d=%d: sample+decode %d words/shot exceeds budget %d\n" d
              fused_per_shot budget;
            ok := false
          end
      | None -> ());
      if !mismatches > 0 then ok := false)
    distances;
  if !ok then print_endline "decode-check OK"
  else begin
    prerr_endline
      "decode-check FAILED: batch/scalar disagreement or allocation budget \
       exceeded";
    exit 1
  end

(* ------------------------------------------------------------ hierarchy *)

let run_hierarchy () =
  print_endline "HetArch module hierarchies (Figs. 1, 5, 8, 11):\n";
  List.iter
    (fun n ->
      Hierarchy.validate n;
      print_string (Hierarchy.render n);
      Printf.printf "  -> %d devices, %d qubits, %.0f mm^2, %d control lines\n\n"
        (Hierarchy.device_count n) (Hierarchy.qubit_capacity n)
        (Hierarchy.footprint_mm2 n) (Hierarchy.control_lines n))
    [ Hierarchy.distillation ();
      Hierarchy.universal_error_correction ();
      Hierarchy.code_teleportation () ]

(* -------------------------------------------------------------- collect *)

(* Campaign definitions: each is a list of Collect tasks over the paper's
   experiment code.  Kept small enough for CI yet large enough that adaptive
   stopping visibly saves shots (the cheap low-distance points hit --rel-ci
   early; the rare-event d=7 points run to --max-shots). *)
let rec campaign_tasks = function
  | "threshold" ->
      (* d = 3/5/7 surface-code memory at two data coherences. *)
      List.concat_map
        (fun t_data ->
          List.map
            (fun d ->
              Surface_circuit.collect_task
                { (Surface_circuit.default ~distance:d) with t_data })
            [ 3; 5; 7 ])
        [ 1e-4; 5e-4 ]
  | "uec" ->
      (* Het (Ts = 50 ms) vs hom for the three small paper codes. *)
      List.concat_map
        (fun code ->
          [ Uec.collect_task (Uec.Het { ts = 50e-3 }) code ~rounds:3;
            Uec.collect_task Uec.Hom code ~rounds:3 ])
        [ Codes.shor; Codes.steane; Codes.color_17 ]
  | "distill" ->
      (* Probability of delivering no target-fidelity pair in 100 us. *)
      [ Distill_module.collect_task
          (Distill_module.heterogeneous ~rate_hz:1e6 ())
          ~horizon:100e-6 ~min_delivered:1;
        Distill_module.collect_task
          (Distill_module.homogeneous ~rate_hz:1e6 ())
          ~horizon:100e-6 ~min_delivered:1 ]
  | "all" -> List.concat_map campaign_tasks [ "threshold"; "uec"; "distill" ]
  | other ->
      Printf.eprintf
        "hetarch collect: unknown campaign %S (expected threshold, uec, \
         distill or all)\n"
        other;
      exit 2

(* Coordinator mode: `collect --shards N` with no explicit --shard forks N
   child processes of this same executable, one per shard, each inheriting
   the coordinator's trace context via HETARCH_TRACE_PARENT — so the whole
   fleet shares one trace_id and `obs trace-merge` / `obs monitor` see the
   shard runs parented under this process.  Per-path output flags
   (--ledger/--csv/--trace/...) are suffixed ".shard<i>" per child. *)
let run_collect_coordinator campaign shards =
  let all_tasks = campaign_tasks campaign in
  if Obs.Run.shard () = "" then
    Obs.Run.set_shard (Printf.sprintf "coord/%d" shards);
  let ctx = Obs.Context.current () in
  Printf.printf "campaign %s: coordinating %d shard process(es), trace %s\n"
    campaign shards ctx.Obs.Context.trace_id;
  List.iter
    (fun shard ->
      Printf.printf "  shard %d/%d: %d task(s)\n" shard shards
        (List.length (Collect.shard_filter ~shards ~shard all_tasks)))
    (List.init shards Fun.id);
  let codes =
    Obs.Trace.with_span "collect.coordinate" (fun () ->
        Collect.Fleet.spawn_shards ~shards
          ~trace_parent:(Obs.Context.to_string ctx) Sys.argv)
  in
  List.iteri
    (fun shard code ->
      Printf.printf "  shard %d/%d: %s\n" shard shards
        (if code = 0 then "ok" else Printf.sprintf "exit %d" code))
    codes;
  if List.exists (fun c -> c <> 0) codes then begin
    Printf.eprintf "hetarch collect: %d shard(s) failed\n"
      (List.length (List.filter (fun c -> c <> 0) codes));
    exit 1
  end

let run_collect campaign seed shards shard_opt ledger resume progress max_shots
    max_errors rel_ci min_shots batch halt_after csv_path =
  if shards > 1 && shard_opt = None then run_collect_coordinator campaign shards
  else begin
  let shard = Option.value ~default:0 shard_opt in
  let all_tasks = campaign_tasks campaign in
  let tasks =
    if shards = 1 && shard = 0 then all_tasks
    else begin
      (* Content-hash partitioning: every process of the fleet computes the
         same split from the task descriptions alone, no coordination. *)
      (match Collect.shard_filter ~shards ~shard all_tasks with
      | filtered ->
          if Obs.Run.shard () = "" then
            Obs.Run.set_shard (Printf.sprintf "shard%d/%d" shard shards);
          filtered
      | exception Invalid_argument msg ->
          Printf.eprintf "hetarch collect: %s\n" msg;
          exit 2)
    end
  in
  let stop =
    { Collect.max_shots; max_errors; rel_ci; min_shots; batch }
  in
  let outcome =
    Collect.run ?ledger ~resume ~progress ~stop ?halt_after ~seed tasks
  in
  (* Deterministic summary: counts and rates only, no wall-clock numbers, so
     resumed and uninterrupted runs print identical tables. *)
  Printf.printf "campaign %s: %d tasks, seed %d%s%s\n" campaign
    (List.length tasks) seed
    (if shards > 1 then
       Printf.sprintf " (shard %d/%d of %d tasks)" shard shards
         (List.length all_tasks)
     else "")
    (if outcome.Collect.halted then " [halted]" else "");
  Tableio.print ~align:Tableio.Left
    ~header:[ "task"; "kind"; "shots"; "errors"; "rate"; "95% CI"; "stop" ]
    (List.map
       (fun (s : Collect.stat) ->
         let rate =
           if s.Collect.shots = 0 then 0.
           else float_of_int s.Collect.errors /. float_of_int s.Collect.shots
         in
         let lo, hi =
           Stats.wilson_interval ~successes:s.Collect.errors
             ~trials:(max 1 s.Collect.shots) ~z:Collect.wilson_z
         in
         [ s.Collect.id;
           Collect.Task.kind s.Collect.task;
           string_of_int s.Collect.shots;
           string_of_int s.Collect.errors;
           Printf.sprintf "%.3e" rate;
           Printf.sprintf "[%.2e, %.2e]" lo hi;
           Collect.reason_string s.Collect.reason ])
       outcome.Collect.stats);
  let total_shots =
    List.fold_left (fun a (s : Collect.stat) -> a + s.Collect.shots) 0
      outcome.Collect.stats
  in
  let fixed_shots = List.length tasks * max_shots in
  let saved_pct =
    if fixed_shots = 0 then 0.
    else 100. *. (1. -. (float_of_int total_shots /. float_of_int fixed_shots))
  in
  Printf.printf
    "shots: %d merged (%d new this run) vs %d at a fixed --max-shots \
     budget (%.0f%% saved by adaptive stopping)\n"
    total_shots outcome.Collect.new_shots fixed_shots saved_pct;
  Obs.Gauge.set (Obs.Gauge.create "collect.campaign_shots_saved_pct") saved_pct;
  Option.iter
    (fun path ->
      Collect.write_csv ~path outcome.Collect.stats;
      Printf.printf "csv: %s\n" path)
    csv_path
  end

(* ----------------------------------------------------------------- obs *)

(* Offline analysis of the observability artifacts the other subcommands
   emit: run manifests (--metrics), Chrome-trace spans (--trace), telemetry
   streams (--telemetry), and bench JSON.  Pure readers — no simulation. *)

let load_json path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> Obs.Json.parse (really_input_string ic (in_channel_length ic)))

(* Torn-tail tolerant: skips blank and unparsable lines — the truncated
   final record a killed writer leaves behind — mirroring the collect
   ledger's replay, so `obs tail` and `obs flame` work on the artifacts of
   a run that died mid-append.  The same reader backs the fleet monitor. *)
let fold_jsonl = Obs.fold_jsonl

let jfloat j = Obs.Json.to_float j
let jint j = int_of_float (Obs.Json.to_float j)

let jstring = function Obs.Json.String s -> Some s | _ -> None

(* [None] both on a missing field and a non-numeric one (eta_s and
   rel_halfwidth are JSON null until defined). *)
let jnum = function
  | Obs.Json.Int i -> Some (float_of_int i)
  | Obs.Json.Float f -> Some f
  | _ -> None

let mem_float name j = Option.bind (Obs.Json.member name j) jnum
let mem_int name j = Option.map int_of_float (mem_float name j)

let mem_string name j = Option.bind (Obs.Json.member name j) jstring

let obj_fields = function Obs.Json.Obj kvs -> kvs | _ -> []

let schema_of doc = Option.value ~default:"?" (mem_string "schema" doc)

(* Re-aggregate an exported trace into (path, count, total_ns, minor_w,
   promoted_w, major_w) totals — the same shape Trace.by_path returns
   in-process.  Durations in the file are integer microseconds (the
   Chrome-trace unit), so totals re-read from disk are µs-granular; counts,
   allocation words, and tree structure are exact.  Traces written before
   the allocation-attribution schema carry no alloc args and re-read as
   zeros. *)
let trace_totals path =
  let tbl : (string, int * int64 * int * int * int) Hashtbl.t =
    Hashtbl.create 256
  in
  fold_jsonl path
    (fun () ev ->
      match mem_string "ph" ev with
      | Some ph when ph <> "X" -> () (* metadata events carry no duration *)
      | _ ->
      let name = Option.value ~default:"?" (mem_string "name" ev) in
      let args = Obs.Json.member "args" ev in
      let span_path =
        match Option.bind args (mem_string "path") with
        | Some p -> p
        | None -> name
      in
      let dur_ns =
        match mem_float "dur" ev with
        | Some us -> Int64.of_float (us *. 1e3)
        | None -> 0L
      in
      let words field =
        Option.value ~default:0 (Option.bind args (mem_int field))
      in
      let c, t, mw, pw, jw =
        Option.value ~default:(0, 0L, 0, 0, 0) (Hashtbl.find_opt tbl span_path)
      in
      Hashtbl.replace tbl span_path
        ( c + 1, Int64.add t dur_ns, mw + words "minor_w",
          pw + words "promoted_w", jw + words "major_w" ))
    ();
  Hashtbl.fold (fun p (c, t, mw, pw, jw) acc -> (p, c, t, mw, pw, jw) :: acc)
    tbl []
  |> List.sort compare

let run_obs_flame file counts alloc =
  (if counts && alloc then begin
     Printf.eprintf "hetarch obs flame: --counts and --alloc are exclusive\n";
     exit 2
   end);
  let weight =
    if alloc then `Self_alloc else if counts then `Count else `Self_ns
  in
  print_string (Obs.Profile.folded ~weight (Obs.Profile.of_totals (trace_totals file)))

let run_obs_top file limit sort =
  print_string
    (Obs.Profile.top_table ~sort ~limit
       (Obs.Profile.of_totals (trace_totals file)))

let render_manifest doc =
  Option.iter
    (fun p ->
      (* Snapshots keep wall time in the run section, manifests in the
         process section — accept either. *)
      let wall =
        match mem_float "wall_seconds" p with
        | Some s -> Some s
        | None ->
            Option.bind (Obs.Json.member "run" doc) (mem_float "wall_seconds")
      in
      Printf.printf "process: wall %ss, GC minor/major/compact %d/%d/%d, peak heap %d words\n"
        (match wall with Some s -> Printf.sprintf "%.3f" s | None -> "?")
        (Option.value ~default:0 (mem_int "minor_collections" p))
        (Option.value ~default:0 (mem_int "major_collections" p))
        (Option.value ~default:0 (mem_int "compactions" p))
        (Option.value ~default:0 (mem_int "top_heap_words" p)))
    (Obs.Json.member "process" doc);
  let section title header rows =
    if rows <> [] then begin
      Printf.printf "\n%s:\n" title;
      Tableio.print ~align:Tableio.Left ~header rows
    end
  in
  section "counters" [ "counter"; "value" ]
    (List.map
       (fun (k, v) -> [ k; string_of_int (jint v) ])
       (obj_fields (Option.value ~default:Obs.Json.Null (Obs.Json.member "counters" doc))));
  section "gauges" [ "gauge"; "value" ]
    (List.map
       (fun (k, v) -> [ k; g (jfloat v) ])
       (obj_fields (Option.value ~default:Obs.Json.Null (Obs.Json.member "gauges" doc))));
  section "histograms" [ "histogram"; "count"; "mean"; "p50"; "p99"; "max" ]
    (List.map
       (fun (k, h) ->
         let f name = match mem_float name h with Some v -> g v | None -> "-" in
         [ k; string_of_int (Option.value ~default:0 (mem_int "count" h));
           f "mean"; f "p50"; f "p99"; f "max" ])
       (obj_fields (Option.value ~default:Obs.Json.Null (Obs.Json.member "histograms" doc))));
  section "spans" [ "span"; "count"; "total ms"; "mean us"; "minor words" ]
    (List.map
       (fun (k, s) ->
         let count = Option.value ~default:0 (mem_int "count" s) in
         let total_ns = Option.value ~default:0. (mem_float "total_ns" s) in
         [ k; string_of_int count;
           Printf.sprintf "%.3f" (total_ns /. 1e6);
           (if count = 0 then "-"
            else Printf.sprintf "%.1f" (total_ns /. 1e3 /. float_of_int count));
           (* pre-alloc-attribution manifests have no minor_w field *)
           (match mem_int "minor_w" s with
            | Some w -> string_of_int w
            | None -> "-") ])
       (obj_fields (Option.value ~default:Obs.Json.Null (Obs.Json.member "spans" doc))))

let run_obs_report file =
  let doc = load_json file in
  let schema = schema_of doc in
  Printf.printf "%s  (schema %s)\n" file schema;
  if String.length schema >= 14 && String.sub schema 0 14 = "hetarch.bench/" then begin
    Printf.printf "bench: seed %d, jobs %d%s\n"
      (Option.value ~default:0 (mem_int "seed" doc))
      (Option.value ~default:1 (mem_int "jobs" doc))
      (match Obs.Json.member "quick" doc with
       | Some (Obs.Json.Bool true) -> ", quick"
       | _ -> "");
    let kernels =
      match Obs.Json.member "kernels" doc with
      | Some (Obs.Json.List ks) -> ks
      | _ -> []
    in
    Printf.printf "\nkernels:\n";
    Tableio.print ~align:Tableio.Left
      ~header:[ "kernel"; "ns/run" ]
      (List.map
         (fun k ->
           [ Option.value ~default:"?" (mem_string "name" k);
             (match mem_float "ns_per_run" k with Some v -> g v | None -> "-") ])
         kernels);
    (* Allocation summary: the floor-gated kernels and their measured
       steady-state minor words per run.  Pre-v3 bench files recorded no
       allocation data at all. *)
    let recorded =
      List.exists (fun k -> mem_float "minor_words_per_run" k <> None) kernels
    in
    if not recorded then
      print_endline "\nallocation: (not recorded — pre-v3 bench file)"
    else begin
      let gated =
        List.filter
          (fun k -> mem_float "max_minor_words_per_run" k <> None)
          kernels
      in
      Printf.printf "\nallocation (floor-gated kernels):\n";
      if gated = [] then print_endline "  (no floor-gated kernels)"
      else
        Tableio.print ~align:Tableio.Left
          ~header:[ "kernel"; "minor words/run"; "max allowed" ]
          (List.map
             (fun k ->
               [ Option.value ~default:"?" (mem_string "name" k);
                 (match mem_float "minor_words_per_run" k with
                  | Some v -> g v
                  | None -> "(not recorded)");
                 (match mem_float "max_minor_words_per_run" k with
                  | Some v -> g v
                  | None -> "-") ])
             gated)
    end;
    Option.iter render_manifest (Obs.Json.member "metrics" doc)
  end
  else render_manifest doc

let run_obs_tail file =
  let records = List.rev (fold_jsonl file (fun acc r -> r :: acc) []) in
  match records with
  | [] -> print_endline "telemetry stream is empty"
  | _ ->
      let campaign r = Obs.Json.member "campaign" r in
      Tableio.print
        ~header:[ "seq"; "t(s)"; "dt(s)"; "gc minor"; "words/s"; "shots"; "shots/s"; "done"; "eta(s)" ]
        (List.map
           (fun r ->
             let c = campaign r in
             let ci name =
               match Option.bind c (mem_int name) with
               | Some v -> string_of_int v
               | None -> "-"
             in
             [ string_of_int (Option.value ~default:0 (mem_int "seq" r));
               Printf.sprintf "%.2f" (Option.value ~default:0. (mem_float "elapsed_s" r));
               Printf.sprintf "%.2f" (Option.value ~default:0. (mem_float "dt_s" r));
               (match Option.bind (Obs.Json.member "gc" r) (mem_int "minor_delta") with
                | Some v -> string_of_int v
                | None -> "-");
               (* allocation rate: minor words per second over the record's
                  interval, clamped >= 0 like the GC deltas; "-" on pre-/3
                  streams that carried no minor_words_delta *)
               (match
                  ( Option.bind (Obs.Json.member "gc" r)
                      (mem_float "minor_words_delta"),
                    mem_float "dt_s" r )
                with
                | Some w, Some dt when dt > 0. ->
                    Printf.sprintf "%.0f" (Float.max 0. (w /. dt))
                | Some _, _ -> "0"
                | None, _ -> "-");
               ci "shots";
               (match Option.bind c (mem_float "shots_per_s") with
                | Some v -> Printf.sprintf "%.0f" (Float.max 0. v)
                | None -> "-");
               (match (Option.bind c (mem_int "tasks_done"), Option.bind c (mem_int "tasks")) with
                | Some d, Some t -> Printf.sprintf "%d/%d" d t
                | _ -> "-");
               (match Option.bind c (mem_float "eta_s") with
                | Some v -> Printf.sprintf "%.1f" (Float.max 0. v)
                | None -> "-") ])
           records);
      let last = List.nth records (List.length records - 1) in
      Printf.printf "\nlast record (seq %d, t=%.2fs):\n"
        (Option.value ~default:0 (mem_int "seq" last))
        (Option.value ~default:0. (mem_float "elapsed_s" last));
      let deltas =
        obj_fields (Option.value ~default:Obs.Json.Null (Obs.Json.member "deltas" last))
        |> List.filter (fun (_, v) -> jint v > 0)
      in
      List.iter
        (fun (name, v) -> Printf.printf "  %s +%d\n" name (jint v))
        deltas;
      Option.iter
        (fun c ->
          List.iter
            (fun t ->
              Printf.printf "  task %s %s: %d shots, %d errors%s%s\n"
                (Option.value ~default:"?" (mem_string "id" t))
                (Option.value ~default:"?" (mem_string "kind" t))
                (Option.value ~default:0 (mem_int "shots" t))
                (Option.value ~default:0 (mem_int "errors" t))
                (match mem_float "rel_halfwidth" t with
                 | Some w -> Printf.sprintf ", ci %.3f" w
                 | None -> "")
                (match Obs.Json.member "done" t with
                 | Some (Obs.Json.Bool true) -> " [done]"
                 | _ -> ""))
            (match Obs.Json.member "task_progress" c with
             | Some (Obs.Json.List ts) -> ts
             | _ -> []))
        (campaign last);
      (* Stream status from evidence, not the embedded rate: a quiet stream
         keeps reporting its last shots/s forever, so staleness must come
         from the file's mtime vs the stream's own declared heartbeat
         interval — the same detector `obs monitor` uses. *)
      let final =
        match Obs.Json.member "final" last with
        | Some (Obs.Json.Bool true) -> true
        | _ -> false
      in
      let interval_s = Option.value ~default:1.0 (mem_float "interval_s" last) in
      let age =
        Float.max 0. (Unix.gettimeofday () -. (Unix.stat file).Unix.st_mtime)
      in
      let threshold =
        Obs.Monitor.stall_threshold
          ~stall_factor:Obs.Monitor.default_stall_factor ~interval_s
      in
      if final then print_endline "stream: complete (final record present)"
      else if age > threshold then
        Printf.printf
          "stream: STALLED (no heartbeat for %.1fs; threshold %.1fs at a \
           %.1fs interval)\n"
          age threshold interval_s
      else Printf.printf "stream: live (last write %.1fs ago)\n" age

let run_obs_diff file_a file_b threshold noise_floor normalize =
  let doc_a = load_json file_a and doc_b = load_json file_b in
  let r =
    try
      Obs.Diff.compare_docs ?threshold_pct:threshold
        ?noise_floor_ns:noise_floor ~normalize doc_a doc_b
    with Failure msg ->
      Printf.eprintf "hetarch obs diff: %s\n" msg;
      exit 2
  in
  let thr = Option.value ~default:Obs.Diff.default_threshold_pct threshold in
  Printf.printf "diff %s -> %s (threshold %g%%%s%s)\n" file_a file_b thr
    (match noise_floor with
     | Some f -> Printf.sprintf ", noise floor %g ns" f
     | None -> "")
    (if normalize then
       Printf.sprintf ", current normalized by /%.3f (median machine ratio)"
         r.Obs.Diff.scale
     else "");
  Tableio.print ~align:Tableio.Left
    ~header:[ "metric"; "baseline"; "current"; "delta" ]
    (List.map
       (fun (e : Obs.Diff.entry) ->
         [ e.Obs.Diff.metric; g e.Obs.Diff.a; g e.Obs.Diff.b;
           Printf.sprintf "%+.1f%%%s" e.Obs.Diff.pct
             (if e.Obs.Diff.regression then "  REGRESSION" else "") ])
       r.Obs.Diff.entries);
  if r.Obs.Diff.only_a <> [] then
    Printf.printf "only in baseline: %s\n" (String.concat ", " r.Obs.Diff.only_a);
  if r.Obs.Diff.only_b <> [] then
    Printf.printf "only in current: %s\n" (String.concat ", " r.Obs.Diff.only_b);
  match r.Obs.Diff.regressions with
  | [] -> Printf.printf "no regressions past %g%% (%d metrics compared)\n" thr (List.length r.Obs.Diff.entries)
  | regs ->
      Printf.printf "%d regression(s) past %g%%, worst %s (%+.1f%%)\n"
        (List.length regs) thr
        (List.hd regs).Obs.Diff.metric (List.hd regs).Obs.Diff.pct;
      exit 1

(* ------------------------------------------------- obs fleet commands *)

let obs_fail fmt =
  Printf.ksprintf
    (fun msg ->
      Printf.eprintf "hetarch obs: %s\n" msg;
      exit 2)
    fmt

let utc_stamp unix =
  let tm = Unix.gmtime unix in
  Printf.sprintf "%04d-%02d-%02dT%02d:%02d:%02dZ" (tm.Unix.tm_year + 1900)
    (tm.Unix.tm_mon + 1) tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min
    tm.Unix.tm_sec

(* A snapshot reference on the command line is either a file path or a
   run-id prefix resolved through the registry. *)
let resolve_snapshot_ref arg =
  if Sys.file_exists arg then `Doc (load_json arg)
  else
    match (try Obs.Registry.find arg with Failure msg -> obs_fail "%s" msg) with
    | Some e -> `Snap (Obs.Registry.load e)
    | None -> (
        match Obs.Registry.dir () with
        | None ->
            obs_fail
              "%s: no such file, and no run registry is configured (set \
               HETARCH_OBS_DIR or pass --obs-dir)"
              arg
        | Some d -> obs_fail "%s: no such file or run-id prefix in %s" arg d)

let run_obs_runs limit prune =
  match Obs.Registry.dir () with
  | None ->
      obs_fail
        "no run registry configured (set HETARCH_OBS_DIR or pass --obs-dir)"
  | Some d ->
      if prune then begin
        let kept, dropped = Obs.Registry.prune () in
        Printf.printf "pruned %d dangling entr%s (%d kept)\n" dropped
          (if dropped = 1 then "y" else "ies")
          kept
      end;
      let all = Obs.Registry.entries () in
      let shown =
        if limit > 0 && List.length all > limit then
          (* keep the most recent [limit] entries, preserving index order *)
          List.filteri (fun i _ -> i >= List.length all - limit) all
        else all
      in
      Printf.printf "registry %s: %d run(s)%s\n" d (List.length all)
        (if List.length shown < List.length all then
           Printf.sprintf " (last %d shown)" (List.length shown)
         else "");
      (* Mark-and-skip rather than error: a hand-deleted snapshot leaves a
         dangling index line behind, and listing must keep working. *)
      let missing = ref 0 in
      if shown <> [] then
        Tableio.print ~align:Tableio.Left
          ~header:[ "run"; "started (UTC)"; "cmd"; "shard"; "hash"; "snapshot" ]
          (List.map
             (fun (e : Obs.Registry.entry) ->
               let ok = Obs.Registry.snapshot_exists e in
               if not ok then incr missing;
               [ e.Obs.Registry.e_run_id;
                 utc_stamp e.Obs.Registry.e_unix;
                 e.Obs.Registry.e_cmd;
                 (if e.Obs.Registry.e_shard = "" then "-"
                  else e.Obs.Registry.e_shard);
                 String.sub e.Obs.Registry.e_hash 0 12;
                 (if ok then "ok" else "MISSING") ])
             shown);
      if !missing > 0 then
        Printf.printf
          "%d entr%s point at deleted snapshot files; run `hetarch obs runs \
           --prune` to compact the index\n"
          !missing
          (if !missing = 1 then "y" else "ies")

let render_snapshot_doc doc =
  (match Obs.Json.member "run" doc with
  | Some run ->
      Printf.printf "run %s%s: %s\n  started %s, wall %.3fs, jobs %d\n"
        (Option.value ~default:"?" (mem_string "id" run))
        (match mem_string "shard" run with
        | Some s when s <> "" -> Printf.sprintf " [%s]" s
        | _ -> "")
        (String.concat " "
           (match Obs.Json.member "argv" run with
           | Some (Obs.Json.List vs) -> List.filter_map jstring vs
           | _ -> []))
        (match mem_float "started_unix" run with
        | Some t -> utc_stamp t
        | None -> "?")
        (Option.value ~default:0. (mem_float "wall_seconds" run))
        (Option.value ~default:1 (mem_int "jobs" run))
  | None -> ());
  Option.iter
    (fun h -> Printf.printf "  content hash %s\n" h)
    (mem_string "content_hash" doc);
  render_manifest doc

let render_fleet_doc doc =
  Printf.printf "fleet view: %d run(s)\n"
    (Option.value ~default:0 (mem_int "runs" doc));
  Option.iter
    (fun w ->
      match (mem_float "started_unix" w, mem_float "wall_span_seconds" w) with
      | Some t0, Some span ->
          Printf.printf
            "window: started %s, wall span %.3fs, total wall %.3fs\n"
            (utc_stamp t0) span
            (Option.value ~default:0. (mem_float "total_wall_seconds" w))
      | _ -> ())
    (Obs.Json.member "window" doc);
  (match Obs.Json.member "attribution" doc with
  | Some (Obs.Json.List srcs) when srcs <> [] ->
      Printf.printf "\nattribution:\n";
      Tableio.print ~align:Tableio.Left
        ~header:[ "run"; "shard"; "started (UTC)"; "wall s"; "jobs" ]
        (List.map
           (fun s ->
             [ Option.value ~default:"?" (mem_string "run" s);
               (match mem_string "shard" s with
               | Some sh when sh <> "" -> sh
               | _ -> "-");
               (match mem_float "started_unix" s with
               | Some t -> utc_stamp t
               | None -> "?");
               Printf.sprintf "%.3f"
                 (Option.value ~default:0. (mem_float "wall_seconds" s));
               string_of_int (Option.value ~default:1 (mem_int "jobs" s)) ])
           srcs)
  | _ -> ());
  let section title header rows =
    if rows <> [] then begin
      Printf.printf "\n%s:\n" title;
      Tableio.print ~align:Tableio.Left ~header rows
    end
  in
  let fields name =
    obj_fields
      (Option.value ~default:Obs.Json.Null (Obs.Json.member name doc))
  in
  section "counters (summed)" [ "counter"; "value" ]
    (List.map (fun (k, v) -> [ k; string_of_int (jint v) ]) (fields "counters"));
  (* Fleet gauges are per-source aggregates, not scalars. *)
  section "gauges" [ "gauge"; "n"; "min"; "max"; "sum" ]
    (List.map
       (fun (k, v) ->
         let f name = match mem_float name v with Some x -> g x | None -> "-" in
         [ k; string_of_int (Option.value ~default:0 (mem_int "n" v));
           f "min"; f "max"; f "sum" ])
       (fields "gauges"));
  section "histograms (bucket-merged)"
    [ "histogram"; "count"; "mean"; "min"; "max" ]
    (List.map
       (fun (k, h) ->
         let f name = match mem_float name h with Some v -> g v | None -> "-" in
         [ k; string_of_int (Option.value ~default:0 (mem_int "count" h));
           f "mean"; f "min"; f "max" ])
       (fields "histograms"));
  section "spans (summed)" [ "span"; "count"; "total ms"; "minor words" ]
    (List.map
       (fun (k, s) ->
         [ k; string_of_int (Option.value ~default:0 (mem_int "count" s));
           Printf.sprintf "%.3f"
             (Option.value ~default:0. (mem_float "total_ns" s) /. 1e6);
           (match mem_int "minor_w" s with
            | Some w -> string_of_int w
            | None -> "-") ])
       (fields "spans"))

let run_obs_show ref_ =
  let doc =
    match resolve_snapshot_ref ref_ with
    | `Doc d -> d
    | `Snap s -> Obs.Snapshot.to_json s
  in
  match schema_of doc with
  | s
    when List.mem s
           [ Obs.Snapshot.schema; Obs.Snapshot.schema_v2; Obs.Snapshot.schema_v1 ]
    -> render_snapshot_doc doc
  | s
    when List.mem s
           [ Obs.Merge.schema; Obs.Merge.schema_v2; Obs.Merge.schema_v1 ]
    -> render_fleet_doc doc
  | s -> obs_fail "%s: unsupported schema %s (want %s or %s)" ref_ s
           Obs.Snapshot.schema Obs.Merge.schema

let run_obs_merge refs out =
  let merge_of arg =
    match resolve_snapshot_ref arg with
    | `Doc doc -> (
        try Obs.Merge.of_json doc
        with Failure msg -> obs_fail "%s: %s" arg msg)
    | `Snap s -> Obs.Merge.of_snapshots [ s ]
  in
  let merged =
    List.fold_left
      (fun acc r -> Obs.Merge.union acc (merge_of r))
      (Obs.Merge.of_snapshots []) refs
  in
  let text = Obs.Json.to_string (Obs.Merge.to_json merged) ^ "\n" in
  match out with
  | None -> print_string text
  | Some path ->
      Out_channel.with_open_bin path (fun oc ->
          Out_channel.output_string oc text);
      Printf.printf "fleet view: %d run(s) -> %s\n"
        (List.length (Obs.Merge.sources merged))
        path

let run_obs_trace_merge files out check =
  let texts =
    List.map (fun f -> In_channel.with_open_bin f In_channel.input_all) files
  in
  let merged, stats =
    try Obs.Trace_merge.merge texts with Failure msg -> obs_fail "%s" msg
  in
  if stats.Obs.Trace_merge.orphans <> [] then
    Printf.eprintf
      "hetarch obs trace-merge: warning: %d parent span id(s) missing from \
       the merge (shard traces without their coordinator?): %s\n"
      (List.length stats.Obs.Trace_merge.orphans)
      (String.concat ", " stats.Obs.Trace_merge.orphans);
  (match out with
  | None -> print_string merged
  | Some path ->
      Out_channel.with_open_bin path (fun oc ->
          Out_channel.output_string oc merged);
      Printf.printf "trace merge: %d source(s), %d event(s) -> %s\n"
        stats.Obs.Trace_merge.sources stats.Obs.Trace_merge.events path);
  if check && stats.Obs.Trace_merge.orphans <> [] then exit 1

let render_monitor_rows rows =
  if rows = [] then print_endline "no telemetry streams"
  else begin
    Tableio.print ~align:Tableio.Left
      ~header:
        [ "run"; "shard"; "status"; "shots"; "shots/s"; "ci"; "eta(s)";
          "done"; "words/s"; "queue"; "busy"; "age(s)" ]
      (List.map
         (fun (r : Obs.Monitor.row) ->
           [ r.Obs.Monitor.m_run_id;
             (if r.Obs.Monitor.m_shard = "" then "-" else r.Obs.Monitor.m_shard);
             (let s = Obs.Monitor.status_string r.Obs.Monitor.m_status in
              if r.Obs.Monitor.m_status = Obs.Monitor.Stalled then
                String.uppercase_ascii s
              else s);
             string_of_int r.Obs.Monitor.m_shots;
             Printf.sprintf "%.0f" r.Obs.Monitor.m_rate;
             (if Float.is_nan r.Obs.Monitor.m_rel_halfwidth then "-"
              else Printf.sprintf "%.3f" r.Obs.Monitor.m_rel_halfwidth);
             (match r.Obs.Monitor.m_eta_s with
             | Some e -> Printf.sprintf "%.1f" (Float.max 0. e)
             | None -> "-");
             Printf.sprintf "%d/%d" r.Obs.Monitor.m_tasks_done
               r.Obs.Monitor.m_tasks;
             Printf.sprintf "%.0f" r.Obs.Monitor.m_alloc_w_per_s;
             string_of_int r.Obs.Monitor.m_queue_depth;
             string_of_int r.Obs.Monitor.m_busy_domains;
             Printf.sprintf "%.1f" r.Obs.Monitor.m_age_s ])
         rows);
    let count st =
      List.length
        (List.filter (fun (r : Obs.Monitor.row) -> r.Obs.Monitor.m_status = st) rows)
    in
    Printf.printf "%d stream(s): %d live, %d stalled, %d done\n"
      (List.length rows) (count Obs.Monitor.Live) (count Obs.Monitor.Stalled)
      (count Obs.Monitor.Done)
  end

let run_obs_monitor once interval stall_factor =
  match Obs.Registry.dir () with
  | None ->
      obs_fail
        "no run registry configured (set HETARCH_OBS_DIR or pass --obs-dir)"
  | Some d ->
      let scan () = Obs.Monitor.scan ~stall_factor ~dir:d () in
      if once then
        (* Machine-readable: one hetarch.monitor/1 JSON object per line. *)
        List.iter
          (fun r -> print_endline (Obs.Json.to_string (Obs.Monitor.row_json r)))
          (scan ())
      else if not (Unix.isatty Unix.stdout) then render_monitor_rows (scan ())
      else begin
        (* Throttled live view: clear, redraw, sleep; leave once every
           stream is done so scripted invocations terminate. *)
        let rec loop () =
          let rows = scan () in
          print_string "\027[H\027[2J";
          Printf.printf "fleet monitor %s (refresh %.1fs, ctrl-c to quit)\n\n"
            d interval;
          render_monitor_rows rows;
          flush stdout;
          if
            rows = []
            || List.exists
                 (fun (r : Obs.Monitor.row) ->
                   r.Obs.Monitor.m_status <> Obs.Monitor.Done)
                 rows
          then begin
            Unix.sleepf interval;
            loop ()
          end
        in
        loop ()
      end

let run_obs_compare current_ref last nmad min_pct noise_floor gate =
  if Obs.Registry.dir () = None then
    obs_fail
      "no run registry configured (set HETARCH_OBS_DIR or pass --obs-dir)";
  let entries = Obs.Registry.entries () in
  let current =
    match current_ref with
    | Some arg -> (
        if Sys.file_exists arg then
          try Obs.Snapshot.of_json (load_json arg)
          with Failure msg -> obs_fail "%s: %s" arg msg
        else
          match
            (try Obs.Registry.find arg with Failure msg -> obs_fail "%s" msg)
          with
          | Some e -> Obs.Registry.load e
          | None -> obs_fail "%s: no such file or run-id prefix" arg)
    | None -> (
        match List.rev entries with
        | [] ->
            obs_fail
              "registry is empty; record runs first (any hetarch command \
               with --obs-dir or HETARCH_OBS_DIR set)"
        | e :: _ -> Obs.Registry.load e)
  in
  let cur_hash = Obs.Snapshot.content_hash current in
  let cur_cmd = Obs.Registry.cmd_of_argv current.Obs.Snapshot.argv in
  let cur_shard = current.Obs.Snapshot.shard in
  (* History = the last K other runs of the same command and shard. *)
  let history_entries =
    List.filter
      (fun (e : Obs.Registry.entry) ->
        e.Obs.Registry.e_cmd = cur_cmd
        && e.Obs.Registry.e_shard = cur_shard
        && e.Obs.Registry.e_hash <> cur_hash)
      entries
  in
  let history_entries =
    let n = List.length history_entries in
    if last > 0 && n > last then
      List.filteri (fun i _ -> i >= n - last) history_entries
    else history_entries
  in
  let history =
    List.filter_map
      (fun e ->
        try Some (Obs.Diff.metrics_of (Obs.Snapshot.to_json (Obs.Registry.load e)))
        with Failure _ | Sys_error _ -> None)
      history_entries
  in
  let current_metrics = Obs.Diff.metrics_of (Obs.Snapshot.to_json current) in
  let verdicts =
    Obs.Trend.judge ?nmad ?min_pct ?noise_floor_ns:noise_floor
      ~history current_metrics
  in
  Printf.printf
    "trend: run %s (%s%s) vs median of last %d same-command run(s)\n"
    current.Obs.Snapshot.run_id cur_cmd
    (if cur_shard = "" then "" else Printf.sprintf ", shard %s" cur_shard)
    (List.length history);
  Tableio.print ~align:Tableio.Left
    ~header:[ "metric"; "current"; "median"; "mad"; "limit"; "status" ]
    (List.map
       (fun (v : Obs.Trend.verdict) ->
         [ v.Obs.Trend.v_metric;
           g v.Obs.Trend.v_current;
           g v.Obs.Trend.v_median;
           g v.Obs.Trend.v_mad;
           (if v.Obs.Trend.v_limit = infinity then "-"
            else g v.Obs.Trend.v_limit);
           (if v.Obs.Trend.v_regression then "REGRESSION"
            else if v.Obs.Trend.v_samples < 2 then
              Printf.sprintf "thin history (%d)" v.Obs.Trend.v_samples
            else "ok") ])
       verdicts);
  let regressions =
    List.filter (fun (v : Obs.Trend.verdict) -> v.Obs.Trend.v_regression)
      verdicts
  in
  match regressions with
  | [] ->
      Printf.printf "no trend regressions (%d metrics, history depth %d)\n"
        (List.length verdicts) (List.length history)
  | worst :: _ ->
      Printf.printf "%d trend regression(s), worst %s (%s > limit %s)\n"
        (List.length regressions) worst.Obs.Trend.v_metric
        (g worst.Obs.Trend.v_current) (g worst.Obs.Trend.v_limit);
      if gate then exit 1
      else print_endline "warn-only: pass --gate to fail on trend regressions"

(* ----------------------------------------------------------------- CLI *)

open Cmdliner

let shots_arg =
  Arg.(value & opt int default_shots & info [ "shots" ] ~doc:"Monte-Carlo shots per point")

let seed_arg = Arg.(value & opt int 2023 & info [ "seed" ] ~doc:"RNG seed")
let full_arg = Arg.(value & flag & info [ "full" ] ~doc:"Run the full (slow) sweep")

let jobs_arg =
  Arg.(
    value
    & opt int (Parallel.jobs ())
    & info [ "jobs"; "j" ] ~docv:"N"
        ~doc:
          "Worker domains for Monte-Carlo fan-out.  Defaults to \
           $(b,HETARCH_JOBS) (or 1).  Output is bit-identical for a given \
           seed at any job count.")

let cache_dir_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "cache-dir" ] ~docv:"DIR"
        ~doc:
          "Persistent characterization store: serve cell characterizations \
           from the content-addressed store in $(docv) instead of re-running \
           density-matrix simulation, writing new results back (crash-safe: \
           temp file + atomic rename; corrupt entries degrade to misses).  \
           Output is byte-identical with the store cold, warm, or absent, \
           at any $(b,--jobs).")

let metrics_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics" ] ~docv:"FILE"
        ~doc:"Write a JSON metrics/run-manifest snapshot to $(docv) on exit")

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:"Write Chrome-trace-compatible JSONL spans to $(docv) on exit")

let telemetry_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "telemetry" ] ~docv:"FILE"
        ~doc:
          "Stream live JSONL telemetry records (schema hetarch.telemetry/4) \
           to $(docv) while the command runs; inspect with $(b,hetarch obs \
           tail).  With a run registry configured, recorded runs stream to \
           <obs-dir>/telemetry/<run_id>.jsonl automatically; this flag \
           overrides that path")

let obs_dir_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "obs-dir" ] ~docv:"DIR"
        ~doc:
          "Run registry directory (defaults to $(b,HETARCH_OBS_DIR)): on \
           exit the run's obs snapshot is written under $(docv)/snapshots \
           and indexed in $(docv)/index.jsonl; inspect with $(b,hetarch obs \
           runs/show/merge/compare)")

let shard_label_arg =
  Arg.(
    value & opt string ""
    & info [ "shard-label" ] ~docv:"LABEL"
        ~doc:
          "Shard label stamped into every observability artifact of this \
           run (manifest, telemetry, trace metadata, snapshot) for \
           fleet-merge attribution")

let snapshot_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "snapshot" ] ~docv:"FILE"
        ~doc:
          "Write the run's obs snapshot (schema hetarch.snapshot/3) to \
           $(docv) on exit, independent of the run registry")

let telemetry_interval_arg =
  Arg.(
    value & opt float 1.0
    & info [ "telemetry-interval" ] ~docv:"SEC"
        ~doc:
          "Minimum seconds between telemetry records (0 records every \
           heartbeat); only meaningful with $(b,--telemetry)")

let trace_parent_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-parent" ] ~docv:"CTX"
        ~doc:
          "Parent trace context as $(i,trace_id)-$(i,span_id) (two 16-hex \
           halves, as printed by a coordinator or taken from \
           $(b,HETARCH_TRACE_PARENT), which this flag overrides): this run \
           keeps the parent's trace_id and records its span_id as \
           parent_span_id, so fleet tooling can assemble the process tree")

(* Every subcommand runs under a root span; the exporters only fire when the
   flags are given, so the stdout of an uninstrumented invocation is
   untouched.  Telemetry streams while the command runs (ticks come from
   Parallel chunk boundaries and Collect batches — no background thread);
   the final forced record is written on the way out.

   Finalization (telemetry flush, metrics/trace export, snapshot capture +
   registry record) runs exactly once, both on the normal path — where a
   write failure exits 1 — and via [at_exit], so early [exit] paths (obs
   diff/compare gates, collect validation) and killed-early runs still
   leave complete artifacts.  [record=false] keeps the pure-reader obs
   analysis subcommands from polluting the run registry. *)
let cmd ?(record = true) name doc term =
  let wrap jobs cache_dir obs_dir shard trace_parent metrics trace telemetry
      interval snapshot f =
    Parallel.set_jobs jobs;
    (try Char_store.set_dir cache_dir
     with Invalid_argument msg | Sys_error msg ->
       Printf.eprintf "hetarch: cannot open --cache-dir: %s\n" msg;
       exit 1);
    Option.iter (fun d -> Obs.Registry.set_dir (Some d)) obs_dir;
    if shard <> "" then Obs.Run.set_shard shard;
    (* Must precede anything that stamps a document (telemetry enable
       writes the baseline record): the context is computed once, on first
       use. *)
    Option.iter Obs.Context.set_parent trace_parent;
    (* With a registry configured, recorded runs stream a live heartbeat
       into <obs-dir>/telemetry/<run_id>.jsonl even without an explicit
       --telemetry — that directory is what `hetarch obs monitor`
       watches.  Explicit --telemetry takes precedence. *)
    let telemetry =
      match telemetry with
      | Some _ as t -> t
      | None when record -> Obs.Registry.telemetry_sink (Obs.Run.id ())
      | None -> None
    in
    (try
       Option.iter
         (fun path -> Obs.Telemetry.enable ~path ~interval_s:interval)
         telemetry
     with Sys_error msg ->
       Printf.eprintf "hetarch: cannot open telemetry sink: %s\n" msg;
       exit 1);
    let finalized = ref false in
    let finalize () =
      if not !finalized then begin
        finalized := true;
        Obs.Telemetry.disable ();
        Option.iter (fun path -> Obs.Report.write ~path) metrics;
        Option.iter (fun path -> Obs.Trace.export ~path) trace;
        if snapshot <> None || (record && Obs.Registry.dir () <> None) then begin
          let snap = Obs.Snapshot.capture () in
          Option.iter (fun path -> Obs.Snapshot.write ~path snap) snapshot;
          if record then ignore (Obs.Registry.record snap)
        end
      end
    in
    at_exit (fun () ->
        (* never [exit] inside an at_exit handler — warn and carry on *)
        try finalize ()
        with Sys_error msg ->
          Printf.eprintf "hetarch: cannot write observability output: %s\n"
            msg);
    Obs.Trace.with_span ("cmd." ^ name) f;
    try finalize ()
    with Sys_error msg ->
      Printf.eprintf "hetarch: cannot write observability output: %s\n" msg;
      exit 1
  in
  Cmd.v (Cmd.info name ~doc)
    Term.(
      const wrap $ jobs_arg $ cache_dir_arg $ obs_dir_arg $ shard_label_arg
      $ trace_parent_arg $ metrics_arg $ trace_arg $ telemetry_arg
      $ telemetry_interval_arg $ snapshot_arg $ term)

let collect_term =
  let campaign =
    Arg.(
      value
      & pos 0 string "threshold"
      & info [] ~docv:"CAMPAIGN"
          ~doc:"Campaign to run: threshold, uec, distill, or all")
  in
  let shards =
    Arg.(
      value & opt int 1
      & info [ "shards" ] ~docv:"N"
          ~doc:
            "Partition the campaign across $(docv) cooperating processes by \
             task content hash.  Without $(b,--shard) this process becomes \
             the fleet coordinator: it forks $(docv) children of itself \
             (one per shard, per-path output flags suffixed .shardI), hands \
             each its trace context, and waits; the fleet is merged with \
             $(b,hetarch obs merge) / $(b,obs trace-merge) and watched live \
             with $(b,obs monitor)")
  in
  let shard =
    Arg.(
      value
      & opt (some int) None
      & info [ "shard" ] ~docv:"I"
          ~doc:
            "Run only this shard index in [0, shards) in-process (no \
             coordinator fork).  Also sets the run's shard label (shardI/N) \
             unless $(b,--shard-label) is given.")
  in
  let ledger =
    Arg.(
      value
      & opt (some string) None
      & info [ "ledger" ] ~docv:"FILE"
          ~doc:"Append batch records to this JSONL ledger (crash-safe)")
  in
  let resume =
    Arg.(
      value & flag
      & info [ "resume" ]
          ~doc:"Replay the ledger first and only sample the remaining shots")
  in
  let progress =
    Arg.(
      value & flag
      & info [ "progress" ]
          ~doc:
            "Live single-line status on stderr (auto-disabled when stderr \
             is not a TTY)")
  in
  let max_shots =
    Arg.(
      value & opt int 20_000
      & info [ "max-shots" ] ~docv:"N" ~doc:"Per-task shot ceiling")
  in
  let max_errors =
    Arg.(
      value & opt int 0
      & info [ "max-errors" ] ~docv:"N"
          ~doc:"Stop a task after this many errors (0 disables)")
  in
  let rel_ci =
    Arg.(
      value & opt float 0.
      & info [ "rel-ci" ] ~docv:"W"
          ~doc:
            "Stop a task when the relative 95% Wilson half-width reaches \
             $(docv) (0 disables; never fires at zero errors)")
  in
  let min_shots =
    Arg.(
      value & opt int 1000
      & info [ "min-shots" ] ~docv:"N"
          ~doc:"Do not evaluate --rel-ci below this many shots")
  in
  let batch =
    Arg.(
      value & opt int 1024
      & info [ "batch" ] ~docv:"N"
          ~doc:"Shots per scheduling batch (= one ledger record)")
  in
  let halt_after =
    Arg.(
      value
      & opt (some int) None
      & info [ "halt-after" ] ~docv:"N"
          ~doc:
            "Stop the campaign cleanly after $(docv) ledger appends \
             (deterministic stand-in for a mid-run kill; used by CI)")
  in
  let csv =
    Arg.(
      value
      & opt (some string) None
      & info [ "csv" ] ~docv:"FILE"
          ~doc:"Write merged per-task statistics to $(docv)")
  in
  Term.(
    const (fun campaign seed shards shard ledger resume progress max_shots
               max_errors rel_ci min_shots batch halt_after csv () ->
        run_collect campaign seed shards shard ledger resume progress
          max_shots max_errors rel_ci min_shots batch halt_after csv)
    $ campaign $ seed_arg $ shards $ shard $ ledger $ resume $ progress
    $ max_shots $ max_errors $ rel_ci $ min_shots $ batch $ halt_after $ csv)

(* Offline analysis command group over observability artifacts.  The leaves
   go through the same [cmd] wrapper as the experiments so that every
   subcommand accepts --jobs/--metrics/--trace/--telemetry uniformly. *)
let obs_cmd =
  let trace_pos =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"TRACE" ~doc:"Trace JSONL file written by --trace")
  in
  let counts_flag =
    Arg.(
      value & flag
      & info [ "counts" ]
          ~doc:
            "Weight folded stacks by span count instead of self nanoseconds \
             — byte-identical across --jobs settings for a deterministic \
             workload")
  in
  let limit_arg =
    Arg.(
      value & opt int 20
      & info [ "n"; "limit" ] ~docv:"N" ~doc:"Rows to show")
  in
  let threshold_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "threshold" ] ~docv:"PCT"
          ~doc:"Regression threshold in percent (default 20)")
  in
  let noise_floor_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "noise-floor-ns" ] ~docv:"NS"
          ~doc:
            "Never flag metrics whose baseline and current values are both \
             below $(docv) nanoseconds — relative thresholds are \
             meaningless under scheduling noise")
  in
  let normalize_arg =
    Arg.(
      value & flag
      & info [ "normalize" ]
          ~doc:
            "Divide current values by the median current/baseline ratio \
             before comparing, cancelling a uniform machine-speed \
             difference (gate CI runners against a baseline from different \
             hardware)")
  in
  let manifest_pos =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"FILE"
          ~doc:"Run manifest (--metrics) or bench JSON document")
  in
  let baseline_pos =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"BASELINE" ~doc:"Baseline manifest or bench JSON")
  in
  let current_pos =
    Arg.(
      required
      & pos 1 (some file) None
      & info [] ~docv:"CURRENT" ~doc:"Current manifest or bench JSON")
  in
  let telemetry_pos =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"TELEMETRY"
          ~doc:"Telemetry JSONL stream written by --telemetry")
  in
  let run_ref_pos =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"RUN"
          ~doc:
            "Snapshot/fleet JSON file, or a run-id prefix resolved through \
             the registry")
  in
  let current_opt_pos =
    Arg.(
      value
      & pos 0 (some string) None
      & info [] ~docv:"RUN"
          ~doc:
            "Snapshot file or run-id prefix to judge (default: the latest \
             registry run)")
  in
  let merge_refs_pos =
    Arg.(
      non_empty
      & pos_all string []
      & info [] ~docv:"RUN"
          ~doc:"Snapshot/fleet JSON files or registry run-id prefixes")
  in
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE"
          ~doc:"Write the fleet view to $(docv) instead of stdout")
  in
  let last_arg =
    Arg.(
      value & opt int 10
      & info [ "last" ] ~docv:"K"
          ~doc:"History depth: the most recent $(docv) same-command runs")
  in
  let nmad_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "nmad" ] ~docv:"N"
          ~doc:"MAD multiplier of the trend noise band (default 5)")
  in
  let gate_arg =
    Arg.(
      value & flag
      & info [ "gate" ]
          ~doc:
            "Exit 1 on trend regressions (CI hard gate); the default is \
             warn-only for local runs")
  in
  (* Analysis leaves are pure readers — [~record:false] keeps them out of
     the run registry they inspect. *)
  let cmd = cmd ~record:false in
  Cmd.group
    (Cmd.info "obs"
       ~doc:
         "Analyze observability artifacts: manifests, traces, telemetry, \
          bench JSON, run snapshots, fleet views")
    [ cmd "report" "Summarize a run manifest or bench JSON document"
        Term.(const (fun file () -> run_obs_report file) $ manifest_pos);
      cmd "flame" "Render a trace as folded stacks (flamegraph.pl input)"
        Term.(
          const (fun file counts alloc () -> run_obs_flame file counts alloc)
          $ trace_pos $ counts_flag
          $ Arg.(
              value & flag
              & info [ "alloc" ]
                  ~doc:
                    "Weight folded stacks by self minor-heap words instead \
                     of self nanoseconds — an allocation flamegraph, \
                     byte-identical across --jobs settings for a \
                     deterministic workload"));
      cmd "top" "Rank call paths by self time, cumulative time, count, or allocation"
        Term.(
          const (fun file limit sort () -> run_obs_top file limit sort)
          $ trace_pos $ limit_arg
          $ Arg.(
              value
              & opt
                  (enum
                     [ ("self", `Self); ("cum", `Cum); ("count", `Count);
                       ("alloc", `Alloc) ])
                  `Self
              & info [ "sort" ] ~docv:"KEY"
                  ~doc:
                    "Ranking key: $(b,self) (self ns), $(b,cum) (cumulative \
                     ns), $(b,count) (span count), or $(b,alloc) (self \
                     minor-heap words)"));
      cmd "tail" "Rate-over-time table and last-record status of a telemetry stream"
        Term.(const (fun file () -> run_obs_tail file) $ telemetry_pos);
      cmd "diff"
        "Compare two manifests or bench documents; exit 1 on perf regressions"
        Term.(
          const (fun a b thr floor norm () -> run_obs_diff a b thr floor norm)
          $ baseline_pos $ current_pos $ threshold_arg $ noise_floor_arg
          $ normalize_arg);
      cmd "runs" "List the run registry (--obs-dir / HETARCH_OBS_DIR)"
        Term.(
          const (fun limit prune () -> run_obs_runs limit prune)
          $ limit_arg
          $ Arg.(
              value & flag
              & info [ "prune" ]
                  ~doc:
                    "First compact index.jsonl down to entries whose \
                     snapshot file still exists (hand-deleted snapshots \
                     leave dangling lines); the rewrite is atomic"));
      cmd "trace-merge"
        "Union per-process Chrome-trace JSONL files into one clock-aligned \
         timeline (order-independent, idempotent)"
        Term.(
          const (fun files out check () -> run_obs_trace_merge files out check)
          $ Arg.(
              non_empty & pos_all file []
              & info [] ~docv:"TRACE"
                  ~doc:"Trace JSONL files written by --trace")
          $ out_arg
          $ Arg.(
              value & flag
              & info [ "check" ]
                  ~doc:
                    "Exit 1 when any merged trace references a parent span \
                     that is not among the merged sources (an incomplete \
                     fleet)"));
      cmd "monitor"
        "Live fleet view: tail every run's telemetry stream under the \
         registry with rate/ETA/stall detection"
        Term.(
          const (fun once interval stall () -> run_obs_monitor once interval stall)
          $ Arg.(
              value & flag
              & info [ "once" ]
                  ~doc:
                    "Render one scan as machine-readable JSON (one \
                     hetarch.monitor/1 object per line) and exit")
          $ Arg.(
              value & opt float 2.0
              & info [ "interval" ] ~docv:"SEC"
                  ~doc:"Refresh period of the live view (default 2)")
          $ Arg.(
              value
              & opt float Obs.Monitor.default_stall_factor
              & info [ "stall-factor" ] ~docv:"K"
                  ~doc:
                    "Flag a stream as stalled after K x its own telemetry \
                     interval without a heartbeat (default 5)"));
      cmd "show" "Render a run snapshot or merged fleet view"
        Term.(const (fun r () -> run_obs_show r) $ run_ref_pos);
      cmd "merge"
        "Merge run snapshots into one fleet view (order-insensitive, \
         byte-deterministic)"
        Term.(
          const (fun refs out () -> run_obs_merge refs out)
          $ merge_refs_pos $ out_arg);
      cmd "compare"
        "Judge a run against the registry trend (median + MAD of last K); \
         warn-only unless --gate"
        Term.(
          const (fun cur last nmad thr floor gate () ->
              run_obs_compare cur last nmad thr floor gate)
          $ current_opt_pos $ last_arg $ nmad_arg $ threshold_arg
          $ noise_floor_arg $ gate_arg) ]

(* --------------------------------------------------------------- serve *)

(* Endpoint flags shared by the daemon and the client: a Unix-domain
   socket path (the default transport) or a loopback-only TCP port, which
   takes precedence when both are given. *)
let serve_socket_arg =
  Arg.(
    value
    & opt string "hetarch.sock"
    & info [ "socket" ] ~docv:"PATH"
        ~doc:"Unix-domain socket path (default $(b,hetarch.sock))")

let serve_port_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "port" ] ~docv:"PORT"
        ~doc:"Listen on loopback TCP $(docv) instead of a Unix socket")

let serve_endpoint socket port =
  match port with Some p -> Serve.Tcp p | None -> Serve.Unix_path socket

let run_serve socket port max_queue =
  if max_queue < 1 then begin
    prerr_endline "hetarch serve: --max-queue must be >= 1";
    exit 1
  end;
  let endpoint = serve_endpoint socket port in
  (match endpoint with
  | Serve.Unix_path path -> Printf.eprintf "hetarch serve: listening on %s\n%!" path
  | Serve.Tcp p -> Printf.eprintf "hetarch serve: listening on 127.0.0.1:%d\n%!" p);
  try Serve.run ~max_queue endpoint
  with Unix.Unix_error (e, fn, arg) ->
    Printf.eprintf "hetarch serve: %s(%s): %s\n" fn arg (Unix.error_message e);
    exit 1

let run_query socket port retry_for body =
  match Serve.request ~retry_for (serve_endpoint socket port) body with
  | response -> print_endline response
  | exception Unix.Unix_error (e, fn, arg) ->
      Printf.eprintf "hetarch query: %s(%s): %s\n" fn arg (Unix.error_message e);
      exit 1
  | exception Failure msg ->
      Printf.eprintf "hetarch query: %s\n" msg;
      exit 1

let serve_term =
  Term.(
    const (fun socket port max_queue () -> run_serve socket port max_queue)
    $ serve_socket_arg $ serve_port_arg
    $ Arg.(
        value & opt int 64
        & info [ "max-queue" ] ~docv:"N"
            ~doc:
              "Admission limit: past $(docv) pending unique requests the \
               daemon answers a structured 429-style rejection instead of \
               queueing (duplicates of an in-flight request always attach \
               to it and do not count)"))

let query_term =
  Term.(
    const (fun socket port retry body () -> run_query socket port retry body)
    $ serve_socket_arg $ serve_port_arg
    $ Arg.(
        value & opt float 0.
        & info [ "retry-for" ] ~docv:"SEC"
            ~doc:
              "Retry a refused or not-yet-bound socket for up to $(docv) \
               seconds before failing — absorbs the daemon-startup race in \
               scripts (default 0: fail fast)")
    $ Arg.(
        required
        & pos 0 (some string) None
        & info [] ~docv:"JSON"
            ~doc:
              "Request body: one JSON object with a $(b,kind) field \
               (threshold, uec, distill, dse, ping, stats, shutdown)"))

let commands =
  [ cmd "devices" "Table 1: device catalog" Term.(const run_devices);
    cmd "serve"
      "Long-running estimation daemon: newline-delimited JSON queries over \
       a Unix/TCP socket, warm-store answers, single-flight dedup"
      serve_term;
    cmd ~record:false "query"
      "Send one request line to a running hetarch serve daemon and print \
       the response"
      query_term;
    cmd "collect"
      "Resumable sample-collection campaign with adaptive stopping"
      collect_term;
    obs_cmd;
    cmd "cells" "Table 2: standard cells and characterization"
      Term.(const run_cells);
    cmd "fig3" "Fig 3: distillation fidelity over time"
      Term.(const (fun seed () -> run_fig3 seed) $ seed_arg);
    cmd "fig4" "Fig 4: distilled-EP rate sweep"
      Term.(const (fun seed () -> run_fig4 seed) $ seed_arg);
    cmd "fig6" "Fig 6: d=13 surface code coherence scaling"
      Term.(const (fun shots seed () -> run_fig6 shots seed) $ shots_arg $ seed_arg);
    cmd "fig7" "Fig 7: distance sweep vs Tcd/Tca"
      Term.(
        const (fun shots seed full () -> run_fig7 shots seed full)
        $ shots_arg $ seed_arg $ full_arg);
    cmd "fig9" "Fig 9: UEC vs storage coherence"
      Term.(const (fun shots seed () -> run_fig9 shots seed) $ shots_arg $ seed_arg);
    cmd "table3" "Table 3: UEC het vs hom"
      Term.(const (fun shots seed () -> run_table3 shots seed) $ shots_arg $ seed_arg);
    cmd "fig12" "Fig 12: code teleportation vs Ts"
      Term.(const (fun shots seed () -> run_fig12 shots seed) $ shots_arg $ seed_arg);
    cmd "table4" "Table 4: CT for all code pairs"
      Term.(const (fun shots seed () -> run_table4 shots seed) $ shots_arg $ seed_arg);
    cmd "ablations" "Design-choice ablations (decoder, registers, variability, CAT model)"
      Term.(const (fun shots seed () -> run_ablations shots seed) $ shots_arg $ seed_arg);
    cmd "decode-check"
      "Fused decode self-check: batch arena decoder vs per-shot scalar, \
       plus steady-state allocation accounting (byte-identical stdout at \
       any --jobs and across --cache-dir warm starts)"
      Term.(
        const (fun shots seed dmax budget () ->
            run_decode_check shots seed dmax budget)
        $ shots_arg $ seed_arg
        $ Arg.(
            value & opt int 5
            & info [ "dmax" ] ~docv:"D"
                ~doc:
                  "Largest surface-code distance to check (3, 5, or 7; \
                   default 5)")
        $ Arg.(
            value
            & opt (some int) None
            & info [ "alloc-budget" ] ~docv:"WORDS"
                ~doc:
                  "Fail unless the warm batch decode allocates exactly 0 \
                   minor words and the fused sample+decode stays within \
                   $(docv) minor words per shot"));
    cmd "schedule" "Explicit timed UEC round schedules (Gantt)"
      Term.(const run_schedule);
    cmd "protocol" "Timed six-step CT protocol: throughput and latency"
      Term.(const run_protocol);
    cmd "burden" "DSE simulation-burden accounting" Term.(const run_burden);
    cmd "charsweep"
      "Characterization sweep over storage coherence (warm-startable via \
       --cache-dir)"
      Term.(
        const (fun n () -> run_charsweep n)
        $ Arg.(
            value & opt int 5
            & info [ "n" ] ~docv:"N" ~doc:"Number of alpha points (>= 2)"));
    cmd "hierarchy" "Module hierarchy trees" Term.(const run_hierarchy) ]

let default =
  Term.(
    const (fun () ->
        print_endline "hetarch: HetArch paper reproduction harness";
        print_endline "Experiments:";
        List.iter
          (fun e ->
            Printf.printf "  %-8s %s\n" e.Hetarch.id e.Hetarch.title)
          Hetarch.experiments;
        print_endline "Run `hetarch <experiment>`; see --help.")
    $ const ())

let () =
  exit
    (Cmd.eval
       (Cmd.group ~default (Cmd.info "hetarch" ~version:Hetarch.version) commands))
