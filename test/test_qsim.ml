(* Tests for the density-matrix simulator: channels and state evolution. *)

let close ?(eps = 1e-9) a b = Float.abs (a -. b) <= eps

let check_close name ?(eps = 1e-9) expected actual =
  if not (close ~eps expected actual) then
    Alcotest.failf "%s: expected %.12g, got %.12g" name expected actual

(* -------------------------------------------------------------- Channel *)

let all_channels =
  [ ("identity", Channel.identity 1);
    ("amp_damp 0.3", Channel.amplitude_damping 0.3);
    ("phase_damp 0.2", Channel.phase_damping 0.2);
    ("dephasing 0.1", Channel.dephasing 0.1);
    ("bitflip 0.25", Channel.bit_flip 0.25);
    ("pauli", Channel.pauli1 ~px:0.1 ~py:0.05 ~pz:0.2);
    ("depol1 0.15", Channel.depolarizing1 0.15);
    ("depol2 0.1", Channel.depolarizing2 0.1);
    ("idle", Channel.idle ~t1:100e-6 ~t2:150e-6 ~dt:1e-6);
    ("idle t2=2t1", Channel.idle ~t1:100e-6 ~t2:200e-6 ~dt:5e-6);
    ("composed", Channel.compose (Channel.amplitude_damping 0.1) (Channel.dephasing 0.05)) ]

let test_channels_cptp () =
  List.iter
    (fun (name, ch) ->
      Alcotest.(check bool) (name ^ " is CPTP") true (Channel.is_cptp ch))
    all_channels

let test_idle_unphysical () =
  Alcotest.check_raises "T2 > 2 T1 rejected"
    (Invalid_argument "Channel.idle: unphysical T2 > 2*T1")
    (fun () -> ignore (Channel.idle ~t1:1e-6 ~t2:3e-6 ~dt:1e-7))

let test_amplitude_damping_decay () =
  (* |1><1| decays toward |0><0| with rate gamma. *)
  let dm = Dm.create 1 in
  Dm.apply_unitary dm Gate.x [ 0 ];
  Dm.apply_channel dm (Channel.amplitude_damping 0.3) [ 0 ];
  check_close "p1 after damping" 0.7 (Dm.prob_one dm 0)

let test_idle_t1_decay_curve () =
  (* After idling |1> for time dt, p1 = exp(-dt/T1). *)
  let t1 = 50e-6 and t2 = 60e-6 in
  List.iter
    (fun dt ->
      let dm = Dm.create 1 in
      Dm.apply_unitary dm Gate.x [ 0 ];
      Dm.idle dm ~t1 ~t2 ~dt [ 0 ];
      check_close ~eps:1e-9 (Printf.sprintf "p1 at dt=%g" dt) (exp (-.dt /. t1))
        (Dm.prob_one dm 0))
    [ 1e-6; 10e-6; 50e-6 ]

let test_idle_t2_coherence_decay () =
  (* |+> idles: <X> = exp(-dt/T2). *)
  let t1 = 100e-6 and t2 = 70e-6 and dt = 20e-6 in
  let dm = Dm.create 1 in
  Dm.apply_unitary dm Gate.h [ 0 ];
  Dm.idle dm ~t1 ~t2 ~dt [ 0 ];
  check_close ~eps:1e-9 "X expectation" (exp (-.dt /. t2)) (Dm.expectation dm "X")

let test_depolarizing_shrinks_bloch () =
  let p = 0.3 in
  let dm = Dm.create 1 in
  Dm.apply_unitary dm Gate.h [ 0 ];
  Dm.apply_channel dm (Channel.depolarizing1 p) [ 0 ];
  (* depolarizing: <X> -> (1 - 4p/3) <X> *)
  check_close "bloch shrink" (1. -. (4. *. p /. 3.)) (Dm.expectation dm "X")

let test_gate_fidelity_of_depolarizing () =
  (* F_avg of 1q depolarizing with prob p: 1 - 2p/3. *)
  let p = 0.06 in
  let f = Channel.average_gate_fidelity_vs_identity (Channel.depolarizing1 p) in
  check_close ~eps:1e-9 "avg fidelity" (1. -. (2. *. p /. 3.)) f

let test_channel_nqubits () =
  Alcotest.(check int) "1q" 1 (Channel.nqubits (Channel.dephasing 0.1));
  Alcotest.(check int) "2q" 2 (Channel.nqubits (Channel.depolarizing2 0.1))

(* ------------------------------------------------------------------- Dm *)

let test_initial_state () =
  let dm = Dm.create 3 in
  check_close "trace" 1.0 (Dm.trace dm);
  check_close "purity" 1.0 (Dm.purity dm);
  check_close "p1 q0" 0.0 (Dm.prob_one dm 0)

let test_x_flips () =
  let dm = Dm.create 2 in
  Dm.apply_unitary dm Gate.x [ 1 ];
  check_close "q0 stays" 0.0 (Dm.prob_one dm 0);
  check_close "q1 flips" 1.0 (Dm.prob_one dm 1)

let test_bell_state_construction () =
  let dm = Dm.create 2 in
  Dm.apply_unitary dm Gate.h [ 0 ];
  Dm.apply_unitary dm Gate.cx [ 0; 1 ];
  check_close "fidelity with Bell" 1.0 (Dm.fidelity_bell dm);
  check_close "ZZ correlation" 1.0 (Dm.expectation dm "ZZ");
  check_close "XX correlation" 1.0 (Dm.expectation dm "XX")

let test_bell_pair_helper () =
  let dm = Dm.bell_pair () in
  check_close "helper matches circuit" 1.0 (Dm.fidelity_bell dm)

let test_ghz_state () =
  let dm = Dm.ghz 3 in
  check_close "trace" 1.0 (Dm.trace dm);
  check_close "ZZI" 1.0 (Dm.expectation dm "ZZI");
  check_close "IZZ" 1.0 (Dm.expectation dm "IZZ");
  check_close "XXX" 1.0 (Dm.expectation dm "XXX");
  (* GHZ circuit equivalent *)
  let circ = Dm.create 3 in
  Dm.apply_unitary circ Gate.h [ 0 ];
  Dm.apply_unitary circ Gate.cx [ 0; 1 ];
  Dm.apply_unitary circ Gate.cx [ 1; 2 ];
  check_close "circuit GHZ XXX" 1.0 (Dm.expectation circ "XXX")

let test_measurement_statistics () =
  let rng = Rng.create 99 in
  let ones = ref 0 in
  let n = 2_000 in
  for _ = 1 to n do
    let dm = Dm.create 1 in
    Dm.apply_unitary dm Gate.h [ 0 ];
    if Dm.measure dm rng 0 = 1 then incr ones
  done;
  let p = float_of_int !ones /. float_of_int n in
  Alcotest.(check bool) "~50%" true (Float.abs (p -. 0.5) < 0.03)

let test_measurement_collapse () =
  let rng = Rng.create 5 in
  let dm = Dm.create 2 in
  Dm.apply_unitary dm Gate.h [ 0 ];
  Dm.apply_unitary dm Gate.cx [ 0; 1 ];
  let m0 = Dm.measure dm rng 0 in
  let m1 = Dm.measure dm rng 1 in
  Alcotest.(check int) "Bell correlations" m0 m1;
  check_close "post-measure purity" 1.0 (Dm.purity dm)

let test_postselect () =
  let dm = Dm.create 1 in
  Dm.apply_unitary dm Gate.h [ 0 ];
  let p = Dm.postselect dm 0 1 in
  check_close "branch prob" 0.5 p;
  check_close "collapsed" 1.0 (Dm.prob_one dm 0)

let test_postselect_impossible () =
  let dm = Dm.create 1 in
  Alcotest.check_raises "zero branch"
    (Invalid_argument "Dm.postselect: branch probability ~ 0")
    (fun () -> ignore (Dm.postselect dm 0 1))

let test_ptrace_of_bell () =
  let dm = Dm.bell_pair () in
  let half = Dm.ptrace dm ~keep:[ 0 ] in
  check_close "reduced purity 1/2" 0.5 (Dm.purity half);
  check_close "p1 = 1/2" 0.5 (Dm.prob_one half 0)

let test_channel_vs_manual_kraus () =
  (* Applying amplitude damping via channel equals the explicit Kraus sum. *)
  let gamma = 0.2 in
  let dm = Dm.create 1 in
  Dm.apply_unitary dm Gate.h [ 0 ];
  let rho = Cmat.copy (Dm.rho dm) in
  Dm.apply_channel dm (Channel.amplitude_damping gamma) [ 0 ];
  let ch = Channel.amplitude_damping gamma in
  let manual =
    List.fold_left
      (fun acc k -> Cmat.add acc (Cmat.sandwich k rho))
      (Cmat.create 2 2) ch.Channel.kraus
  in
  Alcotest.(check bool) "kraus sum matches" true
    (Cmat.approx_equal ~tol:1e-12 manual (Dm.rho dm))

(* ------------------------------------------------- channel serialization *)

(* Bit-exact equality: the persistent characterization store requires that
   a deserialized channel reproduce the serialized one float-for-float, so
   warm-start runs are byte-identical to cold ones. *)
let channel_bits_equal a b =
  a.Channel.name = b.Channel.name
  && List.length a.Channel.kraus = List.length b.Channel.kraus
  && List.for_all2
       (fun (ka : Cmat.t) (kb : Cmat.t) ->
         ka.Cmat.rows = kb.Cmat.rows
         && ka.Cmat.cols = kb.Cmat.cols
         && (let eq = ref true in
             for i = 0 to ka.Cmat.rows - 1 do
               for j = 0 to ka.Cmat.cols - 1 do
                 let x = Cmat.get ka i j and y = Cmat.get kb i j in
                 if
                   Int64.bits_of_float x.Complex.re
                   <> Int64.bits_of_float y.Complex.re
                   || Int64.bits_of_float x.Complex.im
                      <> Int64.bits_of_float y.Complex.im
                 then eq := false
               done
             done;
             !eq))
       a.Channel.kraus b.Channel.kraus

let test_channel_serialization_roundtrip () =
  List.iter
    (fun (name, ch) ->
      match Channel.of_bytes (Channel.to_bytes ch) with
      | None -> Alcotest.failf "%s: round trip failed to decode" name
      | Some ch' ->
          Alcotest.(check bool) (name ^ " bit-exact round trip") true
            (channel_bits_equal ch ch'))
    all_channels

let test_channel_deserialization_rejects_garbage () =
  let bytes = Channel.to_bytes (Channel.depolarizing1 0.1) in
  Alcotest.(check bool) "empty" true (Channel.of_bytes "" = None);
  Alcotest.(check bool) "truncated" true
    (Channel.of_bytes (String.sub bytes 0 (String.length bytes - 3)) = None);
  Alcotest.(check bool) "trailing junk" true
    (Channel.of_bytes (bytes ^ "x") = None);
  (* Flipping the leading codec-version byte must read as version skew,
     never a crash. *)
  let skewed = Bytes.of_string bytes in
  Bytes.set skewed 0 '\xff';
  Alcotest.(check bool) "version skew" true
    (Channel.of_bytes (Bytes.to_string skewed) = None);
  Alcotest.(check bool) "random junk" true
    (Channel.of_bytes (String.make 64 '\x7f') = None)

let test_swap_gate_moves_state () =
  let dm = Dm.create 2 in
  Dm.apply_unitary dm Gate.x [ 0 ];
  Dm.apply_unitary dm Gate.swap [ 0; 1 ];
  check_close "q0 cleared" 0.0 (Dm.prob_one dm 0);
  check_close "q1 set" 1.0 (Dm.prob_one dm 1)

let test_noisy_bell_fidelity_decreases () =
  let dm = Dm.bell_pair () in
  Dm.apply_channel dm (Channel.depolarizing1 0.1) [ 0 ];
  let f = Dm.fidelity_bell dm in
  Alcotest.(check bool) "fidelity dropped below 1" true (f < 1.0);
  Alcotest.(check bool) "still above mixed floor" true (f > 0.5)

let test_of_ket_normalizes () =
  let dm = Dm.of_ket [| { Complex.re = 2.; im = 0. }; { Complex.re = 0.; im = 2. } |] in
  check_close "trace normalized" 1.0 (Dm.trace dm);
  check_close "p1" 0.5 (Dm.prob_one dm 0)

(* ------------------------------------------------------------------ Sv *)

let test_sv_initial () =
  let sv = Sv.create 3 in
  check_close "norm" 1.0 (Sv.norm sv);
  check_close "amp |000>" 1.0 (Complex.norm (Sv.amplitude sv 0));
  check_close "p1" 0.0 (Sv.prob_one sv 0)

let test_sv_matches_dm_on_circuit () =
  (* Same Clifford+T circuit in both simulators; compare via to_dm. *)
  let sv = Sv.create 3 in
  let dm = Dm.create 3 in
  let ops = [ (Gate.h, [ 0 ]); (Gate.cx, [ 0; 1 ]); (Gate.t, [ 1 ]);
              (Gate.cx, [ 1; 2 ]); (Gate.ry 0.7, [ 2 ]); (Gate.swap, [ 0; 2 ]) ]
  in
  List.iter
    (fun (u, targets) ->
      Sv.apply_unitary sv u targets;
      Dm.apply_unitary dm u targets)
    ops;
  Alcotest.(check bool) "density matrices agree" true
    (Cmat.approx_equal ~tol:1e-9 (Dm.rho (Sv.to_dm sv)) (Dm.rho dm))

let test_sv_ghz () =
  let sv = Sv.create 10 in
  Sv.apply_unitary sv Gate.h [ 0 ];
  for q = 0 to 8 do
    Sv.apply_unitary sv Gate.cx [ q; q + 1 ]
  done;
  check_close "norm" 1.0 (Sv.norm sv);
  check_close ~eps:1e-9 "amp |0..0>" 0.5
    (Complex.norm2 (Sv.amplitude sv 0));
  check_close ~eps:1e-9 "amp |1..1>" 0.5
    (Complex.norm2 (Sv.amplitude sv ((1 lsl 10) - 1)))

let test_sv_measure_ghz_correlated () =
  let rng = Rng.create 77 in
  for _ = 1 to 30 do
    let sv = Sv.create 4 in
    Sv.apply_unitary sv Gate.h [ 0 ];
    for q = 0 to 2 do
      Sv.apply_unitary sv Gate.cx [ q; q + 1 ]
    done;
    let m0 = Sv.measure sv rng 0 in
    for q = 1 to 3 do
      Alcotest.(check int) "ghz correlated" m0 (Sv.measure sv rng q)
    done
  done

let test_sv_trajectories_match_dm () =
  (* Average of trajectories over amplitude damping = exact Dm evolution:
     P(1) after damping |1> must match within Monte-Carlo error. *)
  let rng = Rng.create 78 in
  let gamma = 0.3 in
  let trials = 4000 in
  let ones = ref 0. in
  for _ = 1 to trials do
    let sv = Sv.create 1 in
    Sv.apply_unitary sv Gate.x [ 0 ];
    ignore (Sv.apply_kraus_sampled sv (Channel.amplitude_damping gamma) [ 0 ] rng);
    ones := !ones +. Sv.prob_one sv 0
  done;
  let mean = !ones /. float_of_int trials in
  Alcotest.(check bool)
    (Printf.sprintf "trajectory mean %.3f ~ %.3f" mean (1. -. gamma))
    true
    (Float.abs (mean -. (1. -. gamma)) < 0.02)

let test_sv_average_fidelity_idle () =
  (* Channel fidelity of idling |+> for dt: exact value from Dm. *)
  let t1 = 100e-6 and t2 = 150e-6 and dt = 30e-6 in
  let target = Sv.create 1 in
  Sv.apply_unitary target Gate.h [ 0 ];
  let rng = Rng.create 79 in
  let f =
    Sv.average_fidelity
      ~prepare:(fun () ->
        let s = Sv.create 1 in
        Sv.apply_unitary s Gate.h [ 0 ];
        s)
      ~evolve:(fun s rng -> Sv.idle_trajectory s ~t1 ~t2 ~dt 0 rng)
      ~target ~trajectories:4000 rng
  in
  let dm = Dm.create 1 in
  Dm.apply_unitary dm Gate.h [ 0 ];
  Dm.idle dm ~t1 ~t2 ~dt [ 0 ];
  let a = 1. /. sqrt 2. in
  let exact = Dm.fidelity_pure dm [| { Complex.re = a; im = 0. }; { Complex.re = a; im = 0. } |] in
  Alcotest.(check bool)
    (Printf.sprintf "trajectories %.4f ~ exact %.4f" f exact)
    true
    (Float.abs (f -. exact) < 0.01)

let test_sv_large_register () =
  (* An 11-qubit register cell (10 modes + compute) is out of Dm reach but
     fine here. *)
  let sv = Sv.create 11 in
  Sv.apply_unitary sv Gate.h [ 10 ];
  Sv.apply_unitary sv Gate.cx [ 10; 0 ];
  check_close "norm" 1.0 (Sv.norm sv);
  check_close ~eps:1e-9 "entangled" 0.5 (Sv.prob_one sv 0)

(* Property tests *)

let prop_trace_preserved_by_channels =
  QCheck.Test.make ~name:"channels preserve trace" ~count:50
    QCheck.(pair (float_bound_inclusive 1.) (int_bound 2))
    (fun (p, which) ->
      let dm = Dm.create 2 in
      Dm.apply_unitary dm Gate.h [ 0 ];
      Dm.apply_unitary dm Gate.cx [ 0; 1 ];
      let ch =
        match which with
        | 0 -> Channel.depolarizing1 p
        | 1 -> Channel.amplitude_damping p
        | _ -> Channel.phase_damping p
      in
      Dm.apply_channel dm ch [ 1 ];
      Float.abs (Dm.trace dm -. 1.0) < 1e-9)

let prop_unitaries_preserve_purity =
  QCheck.Test.make ~name:"unitaries preserve purity" ~count:50
    QCheck.(triple (float_bound_inclusive 6.28) (float_bound_inclusive 6.28)
              (float_bound_inclusive 6.28))
    (fun (a, b, c) ->
      let dm = Dm.create 2 in
      Dm.apply_unitary dm (Gate.rx a) [ 0 ];
      Dm.apply_unitary dm (Gate.ry b) [ 1 ];
      Dm.apply_unitary dm Gate.cx [ 0; 1 ];
      Dm.apply_unitary dm (Gate.rz c) [ 0 ];
      Float.abs (Dm.purity dm -. 1.0) < 1e-9)

let prop_fidelity_bounded =
  QCheck.Test.make ~name:"fidelity in [0,1]" ~count:50
    QCheck.(pair (float_bound_inclusive 0.5) (float_bound_inclusive 6.28))
    (fun (p, theta) ->
      let dm = Dm.bell_pair () in
      Dm.apply_unitary dm (Gate.rz theta) [ 0 ];
      Dm.apply_channel dm (Channel.depolarizing1 p) [ 1 ];
      let f = Dm.fidelity_bell dm in
      f >= -1e-9 && f <= 1. +. 1e-9)

let () =
  let qc = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "qsim"
    [ ( "channels",
        [ Alcotest.test_case "all CPTP" `Quick test_channels_cptp;
          Alcotest.test_case "unphysical idle" `Quick test_idle_unphysical;
          Alcotest.test_case "amplitude damping" `Quick test_amplitude_damping_decay;
          Alcotest.test_case "T1 curve" `Quick test_idle_t1_decay_curve;
          Alcotest.test_case "T2 coherence" `Quick test_idle_t2_coherence_decay;
          Alcotest.test_case "depolarizing bloch" `Quick test_depolarizing_shrinks_bloch;
          Alcotest.test_case "avg gate fidelity" `Quick test_gate_fidelity_of_depolarizing;
          Alcotest.test_case "nqubits" `Quick test_channel_nqubits;
          Alcotest.test_case "serialization round trip" `Quick
            test_channel_serialization_roundtrip;
          Alcotest.test_case "deserialization rejects garbage" `Quick
            test_channel_deserialization_rejects_garbage ] );
      ( "states",
        [ Alcotest.test_case "initial" `Quick test_initial_state;
          Alcotest.test_case "x flips" `Quick test_x_flips;
          Alcotest.test_case "bell circuit" `Quick test_bell_state_construction;
          Alcotest.test_case "bell helper" `Quick test_bell_pair_helper;
          Alcotest.test_case "ghz" `Quick test_ghz_state;
          Alcotest.test_case "swap" `Quick test_swap_gate_moves_state;
          Alcotest.test_case "of_ket" `Quick test_of_ket_normalizes;
          Alcotest.test_case "noisy bell" `Quick test_noisy_bell_fidelity_decreases;
          Alcotest.test_case "channel vs kraus" `Quick test_channel_vs_manual_kraus ] );
      ( "measurement",
        [ Alcotest.test_case "statistics" `Quick test_measurement_statistics;
          Alcotest.test_case "collapse" `Quick test_measurement_collapse;
          Alcotest.test_case "postselect" `Quick test_postselect;
          Alcotest.test_case "postselect impossible" `Quick test_postselect_impossible;
          Alcotest.test_case "ptrace bell" `Quick test_ptrace_of_bell ] );
      ( "statevector",
        [ Alcotest.test_case "initial" `Quick test_sv_initial;
          Alcotest.test_case "matches dm" `Quick test_sv_matches_dm_on_circuit;
          Alcotest.test_case "ghz 10 qubits" `Quick test_sv_ghz;
          Alcotest.test_case "ghz measurement" `Quick test_sv_measure_ghz_correlated;
          Alcotest.test_case "trajectories vs dm" `Slow test_sv_trajectories_match_dm;
          Alcotest.test_case "average fidelity" `Slow test_sv_average_fidelity_idle;
          Alcotest.test_case "11-qubit register" `Quick test_sv_large_register ] );
      ( "properties",
        qc
          [ prop_trace_preserved_by_channels;
            prop_unitaries_preserve_purity;
            prop_fidelity_bounded ] ) ]
