(* Tests for the sample-collection campaign layer: content-hash task
   identity, crash-safe ledger replay, adaptive stopping, and — the property
   the whole design exists for — byte-identical merged statistics whether a
   campaign runs uninterrupted or is killed and resumed. *)

let with_tmp f =
  let path = Filename.temp_file "hetarch_collect" ".jsonl" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ()) (fun () -> f path)

(* A synthetic Bernoulli(p) task: deterministic in the batch RNG, chunked
   through Parallel so the campaign is exercised exactly like a real
   Monte-Carlo estimator (jobs-stable included). *)
let bernoulli_task ?(kind = "test.bernoulli") ~p () =
  Collect.Task.create ~kind
    ~fields:[ ("p", Printf.sprintf "%.17g" p); ("model", "bernoulli") ]
    ~sample:(fun rng shots ->
      Parallel.monte_carlo_count ~rng ~shots (fun chunk_rng n ->
          let errs = ref 0 in
          for _ = 1 to n do
            if Rng.bernoulli chunk_rng p then incr errs
          done;
          !errs))

(* ------------------------------------------------------------- identity *)

let test_task_id_field_order () =
  let mk fields =
    Collect.Task.create ~kind:"k" ~fields ~sample:(fun _ _ -> 0)
  in
  let a = mk [ ("x", "1"); ("y", "2"); ("z", "3") ] in
  let b = mk [ ("z", "3"); ("x", "1"); ("y", "2") ] in
  Alcotest.(check string) "field order irrelevant" (Collect.Task.id a)
    (Collect.Task.id b);
  let c = mk [ ("x", "1"); ("y", "2"); ("z", "4") ] in
  Alcotest.(check bool) "value change changes id" true
    (Collect.Task.id a <> Collect.Task.id c);
  let d =
    Collect.Task.create ~kind:"k2"
      ~fields:[ ("x", "1"); ("y", "2"); ("z", "3") ]
      ~sample:(fun _ _ -> 0)
  in
  Alcotest.(check bool) "kind change changes id" true
    (Collect.Task.id a <> Collect.Task.id d);
  (* Length-prefixed canonicalization: gluing key/value boundaries
     differently must not collide. *)
  let e = mk [ ("xy", "12") ] and f = mk [ ("x", "y12") ] in
  Alcotest.(check bool) "boundary-gluing does not collide" true
    (Collect.Task.id e <> Collect.Task.id f);
  Alcotest.(check int) "id is 16 hex digits" 16 (String.length (Collect.Task.id a));
  String.iter
    (fun ch ->
      Alcotest.(check bool) "hex digit" true
        ((ch >= '0' && ch <= '9') || (ch >= 'a' && ch <= 'f')))
    (Collect.Task.id a)

let test_task_id_stable_value () =
  (* Pin a concrete hash: any change to the canonicalization or hash
     function is a ledger-compatibility break and must be deliberate. *)
  let t =
    Collect.Task.create ~kind:"qec.threshold"
      ~fields:[ ("code", "steane"); ("p", "0.01") ]
      ~sample:(fun _ _ -> 0)
  in
  Alcotest.(check string) "hash pinned across releases" "624f160fc897f6e3"
    (Collect.Task.id t);
  Alcotest.(check string) "id is the canonical-string hash"
    (Collect.hash_hex (Collect.Task.canonical t))
    (Collect.Task.id t)

(* --------------------------------------------------------------- ledger *)

let test_ledger_roundtrip () =
  with_tmp (fun path ->
      let r1 =
        { Collect.Ledger.task_id = "aaaa"; shots = 100; errors = 3;
          seconds = 0.5; jobs = 2; seed = 7 }
      in
      let r2 = { r1 with Collect.Ledger.task_id = "bbbb"; shots = 50; errors = 0 } in
      let r3 = { r1 with Collect.Ledger.shots = 10; errors = 1; seconds = 0.1 } in
      let w = Collect.Ledger.open_writer path in
      List.iter (Collect.Ledger.append w) [ r1; r2; r3 ];
      Collect.Ledger.close w;
      (* Record-level JSON round-trip. *)
      Alcotest.(check bool) "record json round-trip" true
        (Collect.Ledger.record_of_json (Collect.Ledger.record_to_json r1) = Some r1);
      (* Replay merges per task. *)
      let totals = Collect.Ledger.replay path in
      let a = Hashtbl.find totals "aaaa" in
      Alcotest.(check int) "merged shots" 110 a.Collect.Ledger.t_shots;
      Alcotest.(check int) "merged errors" 4 a.Collect.Ledger.t_errors;
      Alcotest.(check int) "merged records" 2 a.Collect.Ledger.t_records;
      let b = Hashtbl.find totals "bbbb" in
      Alcotest.(check int) "other task isolated" 50 b.Collect.Ledger.t_shots;
      (* Appending to an existing file accumulates instead of truncating. *)
      let w = Collect.Ledger.open_writer path in
      Collect.Ledger.append w { r2 with Collect.Ledger.shots = 25 };
      Collect.Ledger.close w;
      let totals = Collect.Ledger.replay path in
      Alcotest.(check int) "append mode accumulates" 75
        (Hashtbl.find totals "bbbb").Collect.Ledger.t_shots)

let test_ledger_truncated_tail () =
  with_tmp (fun path ->
      let r =
        { Collect.Ledger.task_id = "aaaa"; shots = 100; errors = 3;
          seconds = 0.5; jobs = 1; seed = 7 }
      in
      let w = Collect.Ledger.open_writer path in
      Collect.Ledger.append w r;
      Collect.Ledger.append w r;
      Collect.Ledger.close w;
      (* Simulate a kill mid-append: chop the last line in half. *)
      let contents = In_channel.with_open_text path In_channel.input_all in
      let oc = open_out path in
      output_string oc (String.sub contents 0 (String.length contents - 20));
      close_out oc;
      let totals = Collect.Ledger.replay path in
      Alcotest.(check int) "truncated tail skipped" 100
        (Hashtbl.find totals "aaaa").Collect.Ledger.t_shots;
      (* A missing file is an empty ledger, not an error. *)
      Alcotest.(check int) "missing file empty" 0
        (Hashtbl.length (Collect.Ledger.replay (path ^ ".does_not_exist"))))

let test_ledger_rejects_inconsistent () =
  let open Obs.Json in
  let base =
    [ ("task_id", String "aaaa"); ("shots", Int 10); ("errors", Int 2);
      ("seconds", Float 0.1); ("jobs", Int 1); ("seed", Int 3) ]
  in
  let without k = Obj (List.remove_assoc k base) in
  let with_ k v = Obj ((k, v) :: List.remove_assoc k base) in
  Alcotest.(check bool) "valid accepted" true
    (Collect.Ledger.record_of_json (Obj base) <> None);
  List.iter
    (fun (label, doc) ->
      Alcotest.(check bool) label true (Collect.Ledger.record_of_json doc = None))
    [ ("missing task_id", without "task_id");
      ("missing shots", without "shots");
      ("errors > shots", with_ "errors" (Int 11));
      ("negative shots", with_ "shots" (Int (-1)));
      ("negative errors", with_ "errors" (Int (-1)));
      ("non-integer shots", with_ "shots" (String "10")) ]

(* ------------------------------------------------------------- stopping *)

let stop ~max_shots = { Collect.default_stop with Collect.max_shots }

let test_stop_max_shots () =
  let t = bernoulli_task ~p:0.5 () in
  let o =
    Collect.run ~stop:{ (stop ~max_shots:1000) with Collect.batch = 256 }
      ~seed:1 [ t ]
  in
  let s = List.hd o.Collect.stats in
  Alcotest.(check int) "exactly max_shots sampled" 1000 s.Collect.shots;
  Alcotest.(check bool) "reason" true (s.Collect.reason = Collect.Max_shots)

let test_stop_max_errors () =
  let t = bernoulli_task ~p:1.0 () in
  (* Every shot errs: the first batch already exceeds max_errors. *)
  let o =
    Collect.run
      ~stop:{ (stop ~max_shots:100_000) with Collect.max_errors = 5; batch = 64 }
      ~seed:1 [ t ]
  in
  let s = List.hd o.Collect.stats in
  Alcotest.(check bool) "reason" true (s.Collect.reason = Collect.Max_errors);
  Alcotest.(check int) "stopped after one batch" 64 s.Collect.shots

let test_stop_rel_ci () =
  let t = bernoulli_task ~p:0.5 () in
  let o =
    Collect.run
      ~stop:
        { Collect.max_shots = 1_000_000; max_errors = 0; rel_ci = 0.2;
          min_shots = 100; batch = 128 }
      ~seed:1 [ t ]
  in
  let s = List.hd o.Collect.stats in
  Alcotest.(check bool) "reason" true (s.Collect.reason = Collect.Rel_ci);
  Alcotest.(check bool) "far below max_shots" true (s.Collect.shots < 10_000);
  Alcotest.(check bool) "interval satisfied" true
    (Stats.wilson_rel_halfwidth ~successes:s.Collect.errors
       ~trials:s.Collect.shots ~z:Collect.wilson_z
    <= 0.2)

let test_rel_ci_never_fires_at_zero_errors () =
  let t = bernoulli_task ~p:0.0 () in
  let o =
    Collect.run
      ~stop:
        { Collect.max_shots = 2000; max_errors = 0; rel_ci = 0.2;
          min_shots = 100; batch = 500 }
      ~seed:1 [ t ]
  in
  let s = List.hd o.Collect.stats in
  Alcotest.(check bool) "rare-event task runs to max_shots" true
    (s.Collect.reason = Collect.Max_shots && s.Collect.shots = 2000)

let test_rejects_bad_inputs () =
  let t = bernoulli_task ~p:0.5 () in
  let raises f = try f (); false with Invalid_argument _ -> true in
  Alcotest.(check bool) "duplicate task ids rejected" true
    (raises (fun () -> ignore (Collect.run ~seed:1 [ t; bernoulli_task ~p:0.5 () ])));
  Alcotest.(check bool) "bad batch rejected" true
    (raises (fun () ->
         ignore
           (Collect.run ~stop:{ Collect.default_stop with Collect.batch = 0 }
              ~seed:1 [ t ])));
  Alcotest.(check bool) "sampler out of range rejected" true
    (raises (fun () ->
         let bad =
           Collect.Task.create ~kind:"bad" ~fields:[]
             ~sample:(fun _ shots -> shots + 1)
         in
         ignore
           (Collect.run ~stop:(stop ~max_shots:100) ~seed:1 [ bad ])))

(* ---------------------------------------------------------------- resume *)

let campaign_tasks () = [ bernoulli_task ~p:0.3 (); bernoulli_task ~kind:"test.other" ~p:0.05 () ]

let resume_stop =
  { Collect.max_shots = 4096; max_errors = 0; rel_ci = 0.15; min_shots = 256;
    batch = 256 }

let test_kill_resume_equivalence () =
  (* Reference: one uninterrupted run. *)
  let reference =
    Collect.csv (Collect.run ~stop:resume_stop ~seed:11 (campaign_tasks ())).Collect.stats
  in
  (* Halt after every possible number of appends, resume, and compare. *)
  with_tmp (fun path ->
      let halted =
        Collect.run ~ledger:path ~stop:resume_stop ~halt_after:3 ~seed:11
          (campaign_tasks ())
      in
      Alcotest.(check bool) "halt_after reports halted" true halted.Collect.halted;
      Alcotest.(check bool) "some task still unfinished" true
        (List.exists
           (fun s -> s.Collect.reason = Collect.Halted)
           halted.Collect.stats);
      let resumed =
        Collect.run ~ledger:path ~resume:true ~stop:resume_stop ~seed:11
          (campaign_tasks ())
      in
      Alcotest.(check bool) "resume run completes" true
        (not resumed.Collect.halted);
      Alcotest.(check bool) "resumed shots replayed" true
        (List.exists (fun s -> s.Collect.resumed_shots > 0) resumed.Collect.stats);
      Alcotest.(check string) "killed+resumed CSV byte-identical to reference"
        reference
        (Collect.csv resumed.Collect.stats);
      (* Resuming a finished campaign samples nothing new. *)
      let again =
        Collect.run ~ledger:path ~resume:true ~stop:resume_stop ~seed:11
          (campaign_tasks ())
      in
      Alcotest.(check int) "idempotent resume" 0 again.Collect.new_shots;
      Alcotest.(check string) "and still identical" reference
        (Collect.csv again.Collect.stats))

let test_resume_ignores_ledger_without_flag () =
  with_tmp (fun path ->
      let first = Collect.run ~ledger:path ~stop:resume_stop ~seed:11 (campaign_tasks ()) in
      (* Without --resume the ledger is append-only history, not state. *)
      let second = Collect.run ~ledger:path ~stop:resume_stop ~seed:11 (campaign_tasks ()) in
      Alcotest.(check int) "full resample without resume"
        first.Collect.new_shots second.Collect.new_shots;
      Alcotest.(check bool) "resamples" true (second.Collect.new_shots > 0))

let test_jobs_determinism () =
  let run () = Collect.csv (Collect.run ~stop:resume_stop ~seed:5 (campaign_tasks ())).Collect.stats in
  let saved = Parallel.jobs () in
  Fun.protect
    ~finally:(fun () -> Parallel.set_jobs saved)
    (fun () ->
      Parallel.set_jobs 1;
      let one = run () in
      Parallel.set_jobs 3;
      let three = run () in
      Alcotest.(check string) "jobs=1 and jobs=3 byte-identical" one three)

let test_csv_shape () =
  let o = Collect.run ~stop:(stop ~max_shots:256) ~seed:2 [ bernoulli_task ~p:0.5 () ] in
  let text = Collect.csv o.Collect.stats in
  match String.split_on_char '\n' (String.trim text) with
  | [ header; row ] ->
      Alcotest.(check string) "header" Collect.csv_header header;
      Alcotest.(check int) "column count" 9
        (List.length (String.split_on_char ',' row));
      let s = List.hd o.Collect.stats in
      Alcotest.(check bool) "row carries the task id" true
        (String.length row > 16 && String.sub row 0 16 = s.Collect.id)
  | lines -> Alcotest.failf "expected header + 1 row, got %d lines" (List.length lines)

let () =
  Alcotest.run "collect"
    [ ( "identity",
        [ Alcotest.test_case "field order" `Quick test_task_id_field_order;
          Alcotest.test_case "pinned hash" `Quick test_task_id_stable_value ] );
      ( "ledger",
        [ Alcotest.test_case "round-trip" `Quick test_ledger_roundtrip;
          Alcotest.test_case "truncated tail" `Quick test_ledger_truncated_tail;
          Alcotest.test_case "inconsistent records" `Quick
            test_ledger_rejects_inconsistent ] );
      ( "stopping",
        [ Alcotest.test_case "max shots" `Quick test_stop_max_shots;
          Alcotest.test_case "max errors" `Quick test_stop_max_errors;
          Alcotest.test_case "rel ci" `Quick test_stop_rel_ci;
          Alcotest.test_case "zero errors never stops early" `Quick
            test_rel_ci_never_fires_at_zero_errors;
          Alcotest.test_case "input validation" `Quick test_rejects_bad_inputs ] );
      ( "resume",
        [ Alcotest.test_case "kill + resume equivalence" `Quick
            test_kill_resume_equivalence;
          Alcotest.test_case "no resume without flag" `Quick
            test_resume_ignores_ledger_without_flag;
          Alcotest.test_case "jobs determinism" `Quick test_jobs_determinism;
          Alcotest.test_case "csv shape" `Quick test_csv_shape ] ) ]
