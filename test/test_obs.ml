(* Tests for the observability layer: metric semantics, span nesting and
   timing, JSON/JSONL round-trips, and the Dse.Cache gauge regression. *)

let feq ?(eps = 1e-9) a b = Float.abs (a -. b) <= eps

(* -------------------------------------------------------------- counters *)

let test_counter () =
  Obs.reset ();
  let c = Obs.Counter.create "test.counter_total" in
  Alcotest.(check int) "starts at zero" 0 (Obs.Counter.value c);
  Obs.Counter.incr c;
  Obs.Counter.add c 41;
  Alcotest.(check int) "incr + add" 42 (Obs.Counter.value c);
  let c' = Obs.Counter.create "test.counter_total" in
  Obs.Counter.incr c';
  Alcotest.(check int) "interned by name" 43 (Obs.Counter.value c);
  Alcotest.(check string) "name" "test.counter_total" (Obs.Counter.name c)

let test_gauge () =
  Obs.reset ();
  let g = Obs.Gauge.create "test.gauge" in
  Obs.Gauge.set g 2.5;
  Obs.Gauge.add g 0.5;
  Alcotest.(check bool) "set/add" true (feq (Obs.Gauge.value g) 3.);
  Obs.Gauge.set_max g 1.;
  Alcotest.(check bool) "set_max keeps larger" true (feq (Obs.Gauge.value g) 3.);
  Obs.Gauge.set_max g 7.;
  Alcotest.(check bool) "set_max takes larger" true (feq (Obs.Gauge.value g) 7.)

(* ------------------------------------------------------------ histograms *)

let test_histogram () =
  Obs.reset ();
  let h = Obs.Histogram.create ~buckets:[| 1.; 10.; 100. |] "test.hist" in
  List.iter (Obs.Histogram.observe h) [ 0.5; 1.0; 5.; 50.; 500. ];
  Alcotest.(check int) "count" 5 (Obs.Histogram.count h);
  let buckets = Obs.Histogram.bucket_counts h in
  Alcotest.(check (list (pair (float 1e-9) int)))
    "bucket placement (le semantics, clamped below)"
    [ (1., 2); (10., 1); (100., 1) ]
    (Array.to_list buckets);
  Alcotest.(check int) "overflow" 1 (Obs.Histogram.overflow h);
  Alcotest.(check bool) "mean matches Welford" true
    (feq ~eps:1e-9 (Obs.Histogram.mean h) ((0.5 +. 1. +. 5. +. 50. +. 500.) /. 5.));
  Alcotest.(check bool) "min/max" true
    (feq (Obs.Histogram.min_value h) 0.5 && feq (Obs.Histogram.max_value h) 500.);
  (* variance against the two-pass Stats implementation *)
  let xs = [| 0.5; 1.0; 5.; 50.; 500. |] in
  Alcotest.(check bool) "variance matches Stats.variance" true
    (feq ~eps:1e-6 (Obs.Histogram.variance h) (Stats.variance xs))

let test_histogram_quantile () =
  Obs.reset ();
  let h = Obs.Histogram.create ~buckets:[| 10.; 20.; 30. |] "test.quant" in
  Alcotest.(check bool) "empty -> nan" true
    (Float.is_nan (Obs.Histogram.quantile h 0.5));
  (* 100 samples uniform over (0, 30]: bucket counts 33/33/34. *)
  for i = 1 to 100 do
    Obs.Histogram.observe h (float_of_int i *. 0.3)
  done;
  (* Interpolated median must land in the middle bucket, near 15. *)
  let p50 = Obs.Histogram.quantile h 0.5 in
  Alcotest.(check bool) "median in middle bucket" true (p50 > 10. && p50 <= 20.);
  Alcotest.(check bool) "median near 15" true (Float.abs (p50 -. 15.) < 2.);
  (* Extremes clamp to the observed range, not the bucket edges. *)
  Alcotest.(check bool) "q=0 is min" true (feq (Obs.Histogram.quantile h 0.) 0.3);
  Alcotest.(check bool) "q=1 is max" true (feq (Obs.Histogram.quantile h 1.) 30.);
  Alcotest.(check bool) "monotone" true
    (Obs.Histogram.quantile h 0.9 >= Obs.Histogram.quantile h 0.5);
  Alcotest.(check bool) "rejects q out of range" true
    (try
       ignore (Obs.Histogram.quantile h 1.5);
       false
     with Invalid_argument _ -> true);
  (* Overflow-bucket quantiles interpolate toward the observed max. *)
  let o = Obs.Histogram.create ~buckets:[| 1. |] "test.quant_overflow" in
  List.iter (Obs.Histogram.observe o) [ 5.; 6.; 7.; 8. ];
  let q = Obs.Histogram.quantile o 0.5 in
  Alcotest.(check bool) "overflow quantile within observed range" true
    (q > 1. && q <= 8.)

let test_histogram_quantile_exact_when_degenerate () =
  Obs.reset ();
  (* One sample: every quantile is that exact value, not a bucket-edge
     interpolation. *)
  let h = Obs.Histogram.create ~buckets:[| 10.; 20. |] "test.quant_single" in
  Obs.Histogram.observe h 12.5;
  List.iter
    (fun q ->
      Alcotest.(check bool)
        (Printf.sprintf "single sample exact at q=%g" q)
        true
        (feq (Obs.Histogram.quantile h q) 12.5))
    [ 0.; 0.25; 0.5; 0.9; 1. ];
  (* Many identical samples (min = max) collapse the same way. *)
  let d = Obs.Histogram.create ~buckets:[| 10.; 20. |] "test.quant_flat" in
  for _ = 1 to 7 do
    Obs.Histogram.observe d 15.
  done;
  Alcotest.(check bool) "min = max exact" true
    (feq (Obs.Histogram.quantile d 0.5) 15.)

let test_histogram_rejects_bad_buckets () =
  Obs.reset ();
  Alcotest.(check bool) "non-increasing rejected" true
    (try
       ignore (Obs.Histogram.create ~buckets:[| 1.; 1. |] "test.bad_hist");
       false
     with Invalid_argument _ -> true)

(* ----------------------------------------------------------------- spans *)

let test_span_nesting_and_timing () =
  Obs.reset ();
  let sleep () = ignore (Sys.opaque_identity (Array.init 1000 (fun i -> i * i))) in
  let result =
    Obs.Trace.with_span "outer" (fun () ->
        Obs.Trace.with_span ~attrs:[ ("k", "v") ] "inner" (fun () ->
            sleep ();
            17))
  in
  Alcotest.(check int) "value passes through" 17 result;
  match Obs.Trace.spans () with
  | [ inner; outer ] ->
      (* children complete (and are recorded) before their parent *)
      Alcotest.(check string) "inner first" "inner" inner.Obs.Trace.name;
      Alcotest.(check string) "outer second" "outer" outer.Obs.Trace.name;
      Alcotest.(check int) "outer depth" 0 outer.Obs.Trace.depth;
      Alcotest.(check int) "inner depth" 1 inner.Obs.Trace.depth;
      Alcotest.(check (list (pair string string)))
        "attrs kept" [ ("k", "v") ] inner.Obs.Trace.attrs;
      Alcotest.(check bool) "durations nonnegative" true
        (inner.Obs.Trace.dur_ns >= 0L && outer.Obs.Trace.dur_ns >= 0L);
      Alcotest.(check bool) "inner starts after outer" true
        (inner.Obs.Trace.start_ns >= outer.Obs.Trace.start_ns);
      Alcotest.(check bool) "outer contains inner" true
        (outer.Obs.Trace.dur_ns >= inner.Obs.Trace.dur_ns)
  | spans ->
      Alcotest.failf "expected exactly 2 spans, got %d" (List.length spans)

let test_span_exception_still_recorded () =
  Obs.reset ();
  (try Obs.Trace.with_span "boom" (fun () -> failwith "x") with Failure _ -> ());
  Alcotest.(check int) "span recorded on exception" 1 (Obs.Trace.recorded ());
  (* depth counter must unwind so later spans are roots again *)
  Obs.Trace.with_span "after" (fun () -> ());
  match Obs.Trace.spans () with
  | [ _; after ] -> Alcotest.(check int) "depth unwound" 0 after.Obs.Trace.depth
  | _ -> Alcotest.fail "expected 2 spans"

let test_span_ring_eviction () =
  Obs.reset ();
  Obs.Trace.set_capacity 4;
  for i = 1 to 10 do
    Obs.Trace.with_span (Printf.sprintf "s%d" i) (fun () -> ())
  done;
  Alcotest.(check int) "all recorded" 10 (Obs.Trace.recorded ());
  let retained = List.map (fun s -> s.Obs.Trace.name) (Obs.Trace.spans ()) in
  Alcotest.(check (list string)) "ring keeps newest" [ "s7"; "s8"; "s9"; "s10" ] retained;
  let summaries = Obs.Trace.summaries () in
  Alcotest.(check int) "summaries survive eviction" 10 (List.length summaries);
  Obs.Trace.set_capacity 65536

(* ------------------------------------------------------------ round-trip *)

let test_json_roundtrip () =
  let open Obs.Json in
  let doc =
    Obj
      [ ("s", String "he\"llo\n");
        ("i", Int (-42));
        ("f", Float 3.25);
        ("b", Bool true);
        ("n", Null);
        ("l", List [ Int 1; Float 0.1; String "x" ]);
        ("o", Obj [ ("nested", Bool false) ]) ]
  in
  Alcotest.(check bool) "parse inverts to_string" true
    (parse (to_string doc) = doc);
  Alcotest.(check bool) "rejects garbage" true
    (try
       ignore (parse "{\"a\": }");
       false
     with Failure _ -> true);
  Alcotest.(check bool) "rejects trailing" true
    (try
       ignore (parse "1 2");
       false
     with Failure _ -> true)

let test_json_unicode_escapes () =
  let open Obs.Json in
  (* BMP escape decodes to UTF-8. *)
  Alcotest.(check bool) "\\u00e9 -> UTF-8" true
    (parse "\"\\u00e9\"" = String "\xc3\xa9");
  Alcotest.(check bool) "\\u2603 -> 3-byte UTF-8" true
    (parse "\"\\u2603\"" = String "\xe2\x98\x83");
  (* Surrogate pair combines to one 4-byte code point, not CESU-8. *)
  Alcotest.(check bool) "surrogate pair -> 4-byte UTF-8" true
    (parse "\"\\ud83d\\ude00\"" = String "\xf0\x9f\x98\x80");
  (* Strict hex: int_of_string-isms like underscores must not sneak in. *)
  Alcotest.(check bool) "underscore in hex rejected" true
    (try
       ignore (parse "\"\\u1_23\"");
       false
     with Failure _ -> true);
  Alcotest.(check bool) "truncated escape rejected" true
    (try
       ignore (parse "\"\\u12\"");
       false
     with Failure _ -> true);
  (* A lone high surrogate still parses (kept as its own code point). *)
  Alcotest.(check bool) "lone surrogate tolerated" true
    (match parse "\"\\ud83dx\"" with String s -> String.length s = 4 | _ -> false)

(* Fuzz: to_string/parse must round-trip any byte string we can emit,
   including control characters, quotes, backslashes, and high bytes. *)
let test_json_string_fuzz_roundtrip =
  QCheck.Test.make ~count:500 ~name:"json string round-trip"
    QCheck.(string_of_size Gen.(0 -- 64))
    (fun s ->
      let open Obs.Json in
      parse (to_string (String s)) = String s
      && parse (to_string (Obj [ (s, Int 1) ])) = Obj [ (s, Int 1) ])

let test_report_process_section () =
  Obs.reset ();
  ignore (Sys.opaque_identity (Array.init 10_000 (fun i -> float_of_int i)));
  let doc = Obs.Json.parse (Obs.Json.to_string (Obs.Report.to_json ())) in
  Alcotest.(check bool) "schema v5" true
    (Obs.Json.member "schema" doc = Some (Obs.Json.String "hetarch.obs/5"));
  (* every manifest carries the run stamp for fleet attribution *)
  let run = Option.get (Obs.Json.member "run" doc) in
  Alcotest.(check bool) "run id is 16 hex digits" true
    (match Obs.Json.member "id" run with
    | Some (Obs.Json.String id) ->
        String.length id = 16
        && String.for_all (function '0' .. '9' | 'a' .. 'f' -> true | _ -> false) id
    | _ -> false);
  let proc = Option.get (Obs.Json.member "process" doc) in
  let f name = Obs.Json.to_float (Option.get (Obs.Json.member name proc)) in
  Alcotest.(check bool) "wall clock nonnegative" true (f "wall_seconds" >= 0.);
  Alcotest.(check bool) "minor words counted" true (f "minor_words" > 0.);
  Alcotest.(check bool) "heap words positive" true (f "heap_words" > 0.);
  Alcotest.(check bool) "top heap >= heap" true
    (f "top_heap_words" >= f "heap_words" || f "top_heap_words" = 0.);
  Alcotest.(check bool) "collections nonnegative" true
    (f "minor_collections" >= 0. && f "major_collections" >= 0.)

let test_report_quantiles () =
  Obs.reset ();
  let h = Obs.Histogram.create ~buckets:[| 1.; 10. |] "rq.hist" in
  List.iter (Obs.Histogram.observe h) [ 0.5; 2.; 3.; 4.; 20. ];
  Obs.Trace.with_span "rq.span" (fun () -> ());
  let doc = Obs.Json.parse (Obs.Json.to_string (Obs.Report.to_json ())) in
  let hist =
    Option.get
      (Obs.Json.member "rq.hist" (Option.get (Obs.Json.member "histograms" doc)))
  in
  List.iter
    (fun q ->
      match Obs.Json.member q hist with
      | Some v ->
          let x = Obs.Json.to_float v in
          Alcotest.(check bool) (q ^ " within range") true (x >= 0.5 && x <= 20.)
      | None -> Alcotest.failf "histogram summary missing %s" q)
    [ "p50"; "p90"; "p99" ];
  let span =
    Option.get
      (Obs.Json.member "rq.span" (Option.get (Obs.Json.member "spans" doc)))
  in
  List.iter
    (fun q ->
      match Obs.Json.member q span with
      | Some v -> Alcotest.(check bool) (q ^ " nonnegative") true (Obs.Json.to_float v >= 0.)
      | None -> Alcotest.failf "span summary missing %s" q)
    [ "p50_ns"; "p90_ns"; "p99_ns" ]

let test_report_roundtrip () =
  Obs.reset ();
  let c = Obs.Counter.create "rt.events_total" in
  Obs.Counter.add c 7;
  let g = Obs.Gauge.create "rt.gauge" in
  Obs.Gauge.set g 1.5;
  let h = Obs.Histogram.create ~buckets:[| 1.; 2. |] "rt.hist" in
  Obs.Histogram.observe h 0.5;
  Obs.Trace.with_span "rt.span" (fun () -> ());
  let doc = Obs.Json.parse (Obs.Json.to_string (Obs.Report.to_json ())) in
  let counters = Option.get (Obs.Json.member "counters" doc) in
  Alcotest.(check bool) "counter value" true
    (Obs.Json.member "rt.events_total" counters = Some (Obs.Json.Int 7));
  let gauges = Option.get (Obs.Json.member "gauges" doc) in
  Alcotest.(check bool) "gauge value" true
    (feq 1.5 (Obs.Json.to_float (Option.get (Obs.Json.member "rt.gauge" gauges))));
  let hists = Option.get (Obs.Json.member "histograms" doc) in
  let hist = Option.get (Obs.Json.member "rt.hist" hists) in
  Alcotest.(check bool) "hist count" true
    (Obs.Json.member "count" hist = Some (Obs.Json.Int 1));
  let spans = Option.get (Obs.Json.member "spans" doc) in
  let span = Option.get (Obs.Json.member "rt.span" spans) in
  Alcotest.(check bool) "span count" true
    (Obs.Json.member "count" span = Some (Obs.Json.Int 1))

let test_trace_export_jsonl () =
  Obs.reset ();
  Obs.Trace.with_span "a" (fun () -> Obs.Trace.with_span "b" (fun () -> ()));
  let path = Filename.temp_file "hetarch_obs" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Obs.Trace.export ~path;
      let all_lines =
        In_channel.with_open_text path In_channel.input_lines
        |> List.filter (fun l -> String.trim l <> "")
      in
      (* The first record is a ph:"M" metadata event carrying run identity;
         span aggregation must only ever count ph:"X" events. *)
      (match all_lines with
      | meta :: _ ->
          let m = Obs.Json.parse meta in
          Alcotest.(check bool) "run metadata event first" true
            (Obs.Json.member "ph" m = Some (Obs.Json.String "M")
            && Obs.Json.member "name" m = Some (Obs.Json.String "hetarch.run")
            && Option.bind (Obs.Json.member "args" m) (Obs.Json.member "id")
               <> None)
      | [] -> Alcotest.fail "empty trace export");
      let lines =
        List.filter
          (fun l ->
            Obs.Json.member "ph" (Obs.Json.parse l)
            = Some (Obs.Json.String "X"))
          all_lines
      in
      Alcotest.(check int) "one line per span" 2 (List.length lines);
      List.iter
        (fun line ->
          let obj = Obs.Json.parse line in
          Alcotest.(check bool) "has chrome-trace fields" true
            (Obs.Json.member "name" obj <> None
            && Obs.Json.member "ph" obj = Some (Obs.Json.String "X")
            && Obs.Json.member "ts" obj <> None
            && Obs.Json.member "dur" obj <> None
            && Obs.Json.member "args" obj <> None))
        lines;
      let names =
        List.map
          (fun l -> Option.get (Obs.Json.member "name" (Obs.Json.parse l)))
          lines
      in
      Alcotest.(check bool) "completion order" true
        (names = [ Obs.Json.String "b"; Obs.Json.String "a" ]);
      (* Chrome-trace mapping: tid is the recording domain (one Perfetto
         track per domain), pid is 0, and depth/path travel in args. *)
      let inner = Obs.Json.parse (List.hd lines) in
      Alcotest.(check bool) "pid 0" true
        (Obs.Json.member "pid" inner = Some (Obs.Json.Int 0));
      Alcotest.(check bool) "tid is the recording domain" true
        (Obs.Json.member "tid" inner
        = Some (Obs.Json.Int (Domain.self () :> int)));
      let args = Option.get (Obs.Json.member "args" inner) in
      Alcotest.(check bool) "depth in args" true
        (Obs.Json.member "depth" args = Some (Obs.Json.Int 1));
      Alcotest.(check bool) "path in args" true
        (Obs.Json.member "path" args = Some (Obs.Json.String "a;b")))

(* -------------------------------------------------- cache gauge regression *)

let test_cache_gauges_match_accessors () =
  Obs.reset ();
  let cache = Cache.create () in
  let touch key dim = ignore (Cache.find_or_compute cache ~key ~dim (fun () -> 0)) in
  (* mixed workload: repeats at several dims, some singletons *)
  touch "reg" 4;
  touch "reg" 4;
  touch "reg" 4;
  touch "usc" 32;
  touch "usc" 32;
  touch "par" 8;
  let gauge name = Obs.Gauge.value (Obs.Gauge.create name) in
  Alcotest.(check bool) "hits gauge" true
    (feq (gauge "dse.cache_hits") (float_of_int (Cache.hits cache)));
  Alcotest.(check bool) "misses gauge" true
    (feq (gauge "dse.cache_misses") (float_of_int (Cache.misses cache)));
  Alcotest.(check bool) "cost_paid gauge" true
    (feq (gauge "dse.cache_cost_paid") (Cache.cost_paid cache));
  Alcotest.(check bool) "cost_avoided gauge" true
    (feq (gauge "dse.cache_cost_avoided") (Cache.cost_avoided cache))

let test_cache_reset_and_stats () =
  Obs.reset ();
  let cache = Cache.create () in
  let calls = ref 0 in
  let touch () =
    ignore
      (Cache.find_or_compute cache ~key:"k" ~dim:4 (fun () ->
           incr calls;
           !calls))
  in
  touch ();
  touch ();
  Alcotest.(check int) "one compute before reset" 1 !calls;
  let s = Cache.stats cache in
  Alcotest.(check bool) "stats mentions hit/miss" true
    (feq (Cache.cost_paid cache) 64.
    && String.length s > 0
    && String.sub s 0 6 = "cache:");
  Cache.reset cache;
  Alcotest.(check int) "counters cleared" 0 (Cache.hits cache + Cache.misses cache);
  Alcotest.(check bool) "costs cleared" true
    (feq (Cache.cost_paid cache) 0. && feq (Cache.cost_avoided cache) 0.);
  touch ();
  Alcotest.(check int) "entries dropped, recomputes" 2 !calls

let () =
  Alcotest.run "obs"
    [ ( "metrics",
        [ Alcotest.test_case "counter" `Quick test_counter;
          Alcotest.test_case "gauge" `Quick test_gauge;
          Alcotest.test_case "histogram" `Quick test_histogram;
          Alcotest.test_case "histogram quantile" `Quick test_histogram_quantile;
          Alcotest.test_case "histogram degenerate quantile" `Quick
            test_histogram_quantile_exact_when_degenerate;
          Alcotest.test_case "histogram bad buckets" `Quick
            test_histogram_rejects_bad_buckets ] );
      ( "trace",
        [ Alcotest.test_case "nesting and timing" `Quick test_span_nesting_and_timing;
          Alcotest.test_case "exception safety" `Quick test_span_exception_still_recorded;
          Alcotest.test_case "ring eviction" `Quick test_span_ring_eviction ] );
      ( "roundtrip",
        [ Alcotest.test_case "json" `Quick test_json_roundtrip;
          Alcotest.test_case "json unicode escapes" `Quick test_json_unicode_escapes;
          QCheck_alcotest.to_alcotest test_json_string_fuzz_roundtrip;
          Alcotest.test_case "report" `Quick test_report_roundtrip;
          Alcotest.test_case "report process section" `Quick
            test_report_process_section;
          Alcotest.test_case "report quantiles" `Quick test_report_quantiles;
          Alcotest.test_case "trace jsonl" `Quick test_trace_export_jsonl ] );
      ( "cache",
        [ Alcotest.test_case "gauges match accessors" `Quick
            test_cache_gauges_match_accessors;
          Alcotest.test_case "reset and stats" `Quick test_cache_reset_and_stats ] ) ]
