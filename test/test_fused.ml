(* Fused DEM sample->decode pipeline: cross-validation of the DEM-direct
   sampler against the circuit batch sampler, batch-vs-scalar decode
   agreement, pinned seed vectors for the fused logical-error estimator,
   compiled-DEM store round-trip/corruption discipline, and the jobs
   determinism of the pseudothreshold bisection.

   The DEM sampler draws each merged mechanism as an INDEPENDENT coin while
   the circuit sampler draws mutually-exclusive categorical noise per site;
   the two distributions agree to O(p^2) per site, so shot-for-shot
   comparison is only possible on noiseless circuits.  On noisy circuits we
   check Wilson-interval overlap of the estimated flip rates at fixed
   seeds. *)

(* ------------------------------------------------------------ noiseless *)

let test_noiseless_exact () =
  (* A noiseless circuit compiles to an empty mechanism list: every sampled
     bit-plane must be zero, exactly like the circuit sampler's. *)
  let b = Circuit.builder 4 in
  Circuit.add b (Circuit.H 0);
  Circuit.add b (Circuit.CX (0, 1));
  Circuit.add b (Circuit.CZ (1, 2));
  Circuit.add b (Circuit.SWAP (2, 3));
  ignore (Circuit.measure b 1);
  ignore (Circuit.measure b 3);
  Circuit.add_detector b [ 0 ];
  Circuit.add_detector b [ 0; 1 ];
  Circuit.add_observable b [ 1 ];
  let c = Circuit.finish b in
  let sampler = Dem_sampler.compile c in
  Alcotest.(check int) "no mechanisms" 0
    (Array.length (Dem_sampler.mechanisms sampler));
  let batch = Dem_sampler.sample sampler (Rng.create 5) ~nshots:200 in
  Array.iteri
    (fun i row ->
      Alcotest.(check int)
        (Printf.sprintf "detector %d clean" i)
        0 (Bitvec.popcount row))
    batch.Frame_batch.detectors;
  Array.iteri
    (fun i row ->
      Alcotest.(check int)
        (Printf.sprintf "observable %d clean" i)
        0 (Bitvec.popcount row))
    batch.Frame_batch.observables;
  let circuit_batch = Frame_batch.sample c (Rng.create 5) ~nshots:200 in
  Array.iteri
    (fun i row ->
      Alcotest.(check int)
        (Printf.sprintf "circuit detector %d clean" i)
        0 (Bitvec.popcount row))
    circuit_batch.Frame_batch.detectors

(* ------------------------------------------- noisy cross-validation ----- *)

(* Wilson 95%-interval overlap (z inflated to 4 sigma: the samplers draw
   different streams AND slightly different distributions, so this is a
   coarse agreement check, not an identity). *)
let intervals_overlap ~n1 ~k1 ~n2 ~k2 =
  let lo1, hi1 = Stats.wilson_interval ~successes:k1 ~trials:n1 ~z:4.0 in
  let lo2, hi2 = Stats.wilson_interval ~successes:k2 ~trials:n2 ~z:4.0 in
  lo1 <= hi2 && lo2 <= hi1

let test_surface_flip_rates_agree distance jobs () =
  let exp =
    Surface_circuit.build
      { (Surface_circuit.default ~distance) with t_data = 5e-4 }
  in
  let c = exp.Surface_circuit.circuit in
  let shots = if distance >= 5 then 4000 else 12_000 in
  let dem =
    (Dem_sampler.sample_flip_counts ~jobs exp.Surface_circuit.sampler
       (Rng.create 31) ~shots).(0)
  in
  let circuit =
    (Frame_batch.sample_flip_counts ~jobs c (Rng.create 31) ~shots).(0)
  in
  Alcotest.(check bool)
    (Printf.sprintf "d=%d jobs=%d: DEM %d/%d vs circuit %d/%d overlap" distance
       jobs dem shots circuit shots)
    true
    (intervals_overlap ~n1:shots ~k1:dem ~n2:shots ~k2:circuit)

let test_dem_jobs_determinism () =
  let exp = Surface_circuit.build (Surface_circuit.default ~distance:3) in
  let counts jobs =
    Dem_sampler.sample_flip_counts ~jobs exp.Surface_circuit.sampler
      (Rng.create 41) ~shots:1500
  in
  let c1 = counts 1 in
  Alcotest.(check (array int)) "dem flip counts jobs=1 vs jobs=4" c1 (counts 4)

(* ------------------------------------------------- batch decode ---------- *)

let test_decode_batch_matches_scalar distance () =
  let exp =
    Surface_circuit.build
      { (Surface_circuit.default ~distance) with t_data = 5e-4 }
  in
  let nshots = 700 in
  let b =
    Dem_sampler.sample exp.Surface_circuit.sampler (Rng.create 53) ~nshots
  in
  let batch =
    Decoder_uf.decode_batch exp.Surface_circuit.graph
      ~detectors:b.Frame_batch.detectors ~nshots
  in
  let mismatches = ref 0 in
  for s = 0 to nshots - 1 do
    let detectors, _ = Frame_batch.shot b s in
    if Decoder_uf.decode exp.Surface_circuit.graph detectors
       <> Bitvec.get batch s
    then incr mismatches
  done;
  Alcotest.(check int)
    (Printf.sprintf "d=%d batch vs scalar decode" distance)
    0 !mismatches;
  (* decode_batch_count is exactly popcount(prediction xor observable). *)
  let obs = b.Frame_batch.observables.(0) in
  let expected = ref 0 in
  for s = 0 to nshots - 1 do
    if Bitvec.get batch s <> Bitvec.get obs s then incr expected
  done;
  Alcotest.(check int) "decode_batch_count" !expected
    (Decoder_uf.decode_batch_count exp.Surface_circuit.graph
       ~detectors:b.Frame_batch.detectors ~observable:obs ~nshots)

(* ------------------------------------------- zero-alloc steady decode --- *)

(* Calibrated minor-word window: reading [Gc.minor_words] itself boxes a
   float AFTER the counter is sampled, so an empty window measures a small
   constant; subtracting it makes "exactly zero" observable. *)
let alloc_words f =
  let base0 = Gc.minor_words () in
  let base1 = Gc.minor_words () in
  let overhead = int_of_float (base1 -. base0) in
  let before = Gc.minor_words () in
  f ();
  let after = Gc.minor_words () in
  int_of_float (after -. before) - overhead

let test_decode_batch_steady_zero_alloc () =
  (* The CI gate in miniature: once the arena pool and output row are warm,
     [decode_batch_into] must allocate exactly nothing — not amortized-few,
     zero minor words — across repeated batches. *)
  let exp = Surface_circuit.build (Surface_circuit.default ~distance:5) in
  let nshots = 256 in
  let b =
    Dem_sampler.sample exp.Surface_circuit.sampler (Rng.create 9) ~nshots
  in
  let g = exp.Surface_circuit.graph in
  let out = Bitvec.create nshots in
  let run () =
    Decoder_uf.decode_batch_into g ~detectors:b.Frame_batch.detectors ~nshots
      ~out
  in
  run ();
  (* warms the arena pool *)
  for i = 1 to 5 do
    Alcotest.(check int)
      (Printf.sprintf "warm decode_batch_into #%d allocates zero words" i)
      0 (alloc_words run)
  done

(* Pinned seed vector: the fused estimator's exact counts for a fixed seed,
   at one and four domains.  Any change to mechanism canonicalization, RNG
   consumption order, chunk layout, or decoder tie-breaks shows up here. *)
let test_pinned_seed_vector () =
  let count d jobs =
    let exp = Surface_circuit.build (Surface_circuit.default ~distance:d) in
    Surface_circuit.logical_error_count ~jobs exp (Rng.create 2023)
      ~shots:2000
  in
  List.iter
    (fun (d, pinned) ->
      Alcotest.(check int)
        (Printf.sprintf "d=%d jobs=1 pinned" d)
        pinned (count d 1);
      Alcotest.(check int)
        (Printf.sprintf "d=%d jobs=4 pinned" d)
        pinned (count d 4))
    [ (3, 125); (5, 191) ]

(* -------------------------------- satellite: multi-detector decomposition *)

let test_dem_graph_three_detector_flag () =
  (* A 3-detector mechanism decomposes into the chained pair (d0,d1) plus the
     boundary tail (d2, boundary); the observable flag must ride exactly one
     link of the chain (the first), so the full syndrome still predicts the
     flip and no double-counting cancels it. *)
  let g =
    Dem_graph.build ~nodes:3
      [ { Dem.p = 0.01; detectors = [| 0; 1; 2 |]; obs_mask = 1 } ]
  in
  let edges = Decoder_uf.edge_list g in
  Alcotest.(check int) "two edges" 2 (Array.length edges);
  let logical_flags =
    Array.to_list edges |> List.map (fun (_, _, _, l) -> l)
  in
  Alcotest.(check int) "exactly one flagged link" 1
    (List.length (List.filter Fun.id logical_flags));
  let pair_flag =
    Array.to_list edges
    |> List.find_map (fun (u, v, _, l) ->
           if u = 0 && v = 1 then Some l else None)
  in
  Alcotest.(check (option bool)) "flag rides the (d0,d1) link" (Some true)
    pair_flag;
  let tail_flag =
    Array.to_list edges
    |> List.find_map (fun (u, v, _, l) ->
           if u = 2 && v = Decoder_uf.boundary then Some l else None)
  in
  Alcotest.(check (option bool)) "boundary tail unflagged" (Some false)
    tail_flag;
  (* Functionally: the mechanism's own syndrome must decode to a logical
     flip (both links used, flags XOR to true). *)
  let syndrome = Bitvec.create 3 in
  Bitvec.set syndrome 0 true;
  Bitvec.set syndrome 1 true;
  Bitvec.set syndrome 2 true;
  Alcotest.(check bool) "full syndrome predicts flip" true
    (Decoder_uf.decode g syndrome)

(* --------------------------------------------- compiled-DEM store ------- *)

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
    Sys.rmdir path
  end
  else Sys.remove path

let with_store_dir f =
  let dir = Filename.temp_file "hetarch_dem_store_test" "" in
  Sys.remove dir;
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

let small_exp = lazy (Surface_circuit.build (Surface_circuit.default ~distance:3))

let test_pinned_circuit_key () =
  (* The store key of the default d=3 circuit, pinned: any unintended change
     to the canonical circuit encoding (or the key discipline) silently
     orphans every existing store entry — this fails loudly instead. *)
  let key =
    Dem_store.circuit_key (Lazy.force small_exp).Surface_circuit.circuit
  in
  Alcotest.(check string) "pinned d=3 circuit key" "498b22aa90d1c07e" key;
  (* Any noise-parameter change must move the key. *)
  let varied =
    Surface_circuit.build
      { (Surface_circuit.default ~distance:3) with t_data = 1.0000001e-4 }
  in
  Alcotest.(check bool) "key sensitive to noise params" false
    (Dem_store.circuit_key varied.Surface_circuit.circuit = key)

let same_graph g1 g2 = Decoder_uf.edge_list g1 = Decoder_uf.edge_list g2

let test_store_roundtrip () =
  let exp = Lazy.force small_exp in
  let payload =
    Dem_store.encode exp.Surface_circuit.sampler exp.Surface_circuit.graph
  in
  match Dem_store.decode payload with
  | None -> Alcotest.fail "decode of fresh encode failed"
  | Some (sampler, graph) ->
      Alcotest.(check int) "ndet" (Dem_sampler.ndet exp.Surface_circuit.sampler)
        (Dem_sampler.ndet sampler);
      Alcotest.(check int) "nobs" (Dem_sampler.nobs exp.Surface_circuit.sampler)
        (Dem_sampler.nobs sampler);
      Alcotest.(check bool) "mechanisms identical" true
        (Dem_sampler.mechanisms sampler
        = Dem_sampler.mechanisms exp.Surface_circuit.sampler);
      Alcotest.(check bool) "graph edges identical" true
        (same_graph graph exp.Surface_circuit.graph);
      (* The deserialized pair must behave bit-identically: same sampling
         stream, same decode on the sampled batch. *)
      let b1 =
        Dem_sampler.sample exp.Surface_circuit.sampler (Rng.create 61)
          ~nshots:300
      in
      let b2 = Dem_sampler.sample sampler (Rng.create 61) ~nshots:300 in
      Array.iteri
        (fun i row ->
          Alcotest.(check bool)
            (Printf.sprintf "detector row %d identical" i)
            true
            (Bitvec.equal row b2.Frame_batch.detectors.(i)))
        b1.Frame_batch.detectors;
      Alcotest.(check bool) "observable row identical" true
        (Bitvec.equal b1.Frame_batch.observables.(0)
           b2.Frame_batch.observables.(0));
      Alcotest.(check bool) "decode identical on warm graph" true
        (Bitvec.equal
           (Decoder_uf.decode_batch exp.Surface_circuit.graph
              ~detectors:b1.Frame_batch.detectors ~nshots:300)
           (Decoder_uf.decode_batch graph
              ~detectors:b2.Frame_batch.detectors ~nshots:300))

let test_store_malformed_payloads () =
  let exp = Lazy.force small_exp in
  let payload =
    Dem_store.encode exp.Surface_circuit.sampler exp.Surface_circuit.graph
  in
  (* Truncations at every framing boundary degrade to None, never raise. *)
  List.iter
    (fun len ->
      Alcotest.(check bool)
        (Printf.sprintf "truncated to %d bytes -> miss" len)
        true
        (Dem_store.decode (String.sub payload 0 len) = None))
    [ 0; 3; 6; 8; 20; String.length payload - 1 ];
  (* Trailing garbage is rejected (silent extra bytes would mask version
     skew). *)
  Alcotest.(check bool) "trailing byte -> miss" true
    (Dem_store.decode (payload ^ "\x00") = None);
  (* Version bump in the payload header -> miss. *)
  let bumped = Bytes.of_string payload in
  Bytes.set_uint16_le bumped (String.length "QECDEM")
    (Dem_store.format_version + 1);
  Alcotest.(check bool) "version mismatch -> miss" true
    (Dem_store.decode (Bytes.to_string bumped) = None);
  (* Wrong magic -> miss. *)
  let magicless = Bytes.of_string payload in
  Bytes.set magicless 0 'X';
  Alcotest.(check bool) "bad magic -> miss" true
    (Dem_store.decode (Bytes.to_string magicless) = None)

let test_store_corruption_heals () =
  with_store_dir (fun dir ->
      let exp = Lazy.force small_exp in
      let circuit = exp.Surface_circuit.circuit in
      let store = Store.open_dir dir in
      Alcotest.(check bool) "fresh store misses" true
        (Dem_store.find store circuit = None);
      Dem_store.put store circuit exp.Surface_circuit.sampler
        exp.Surface_circuit.graph;
      (match Dem_store.find store circuit with
      | Some (_, graph) ->
          Alcotest.(check bool) "hit decodes the stored graph" true
            (same_graph graph exp.Surface_circuit.graph)
      | None -> Alcotest.fail "stored entry missed");
      (* Truncate the entry in place: the next find must degrade to a miss
         (not raise), and a re-put must heal it. *)
      let path = Store.entry_path store (Dem_store.circuit_key circuit) in
      let full = In_channel.with_open_bin path In_channel.input_all in
      Out_channel.with_open_bin path (fun oc ->
          Out_channel.output_string oc (String.sub full 0 10));
      Alcotest.(check bool) "truncated entry -> miss" true
        (Dem_store.find store circuit = None);
      Dem_store.put store circuit exp.Surface_circuit.sampler
        exp.Surface_circuit.graph;
      Alcotest.(check bool) "re-put heals" true
        (Dem_store.find store circuit <> None))

let test_compile_cached_warm_identical () =
  with_store_dir (fun dir ->
      (* With an ambient store installed, the second build must be served
         from disk (hit counter moves) and still estimate bit-identically. *)
      Char_store.with_store (Store.open_dir dir) (fun () ->
          let count () =
            let exp =
              Surface_circuit.build (Surface_circuit.default ~distance:3)
            in
            Surface_circuit.logical_error_count ~jobs:1 exp (Rng.create 71)
              ~shots:500
          in
          let hits0 = Obs.Counter.value Dem_store.hits_total in
          let cold = count () in
          let hits1 = Obs.Counter.value Dem_store.hits_total in
          let warm = count () in
          let hits2 = Obs.Counter.value Dem_store.hits_total in
          Alcotest.(check int) "cold build does not hit" hits0 hits1;
          Alcotest.(check bool) "warm build hits the store" true (hits2 > hits1);
          Alcotest.(check int) "warm count identical to cold" cold warm))

(* ------------------------------------------------ threshold jobs -------- *)

let test_pseudothreshold_jobs_determinism () =
  let pt jobs =
    Threshold.pseudothreshold ~jobs ~shots:3000 Codes.steane (Rng.create 47)
  in
  let p1 = pt 1 in
  Alcotest.(check (float 0.)) "pseudothreshold jobs=1 vs jobs=4" p1 (pt 4);
  Alcotest.(check bool) "pseudothreshold in (0, 0.45)" true
    (p1 > 0. && p1 < 0.45)

let () =
  Alcotest.run "fused"
    [ ( "dem sampler",
        [ Alcotest.test_case "noiseless exact" `Quick test_noiseless_exact;
          Alcotest.test_case "d=3 rates jobs=1" `Quick
            (test_surface_flip_rates_agree 3 1);
          Alcotest.test_case "d=3 rates jobs=4" `Quick
            (test_surface_flip_rates_agree 3 4);
          Alcotest.test_case "d=5 rates jobs=1" `Slow
            (test_surface_flip_rates_agree 5 1);
          Alcotest.test_case "d=5 rates jobs=4" `Slow
            (test_surface_flip_rates_agree 5 4);
          Alcotest.test_case "jobs determinism" `Quick
            test_dem_jobs_determinism ] );
      ( "batch decode",
        [ Alcotest.test_case "d=3 batch = scalar" `Quick
            (test_decode_batch_matches_scalar 3);
          Alcotest.test_case "d=5 batch = scalar" `Slow
            (test_decode_batch_matches_scalar 5);
          Alcotest.test_case "steady path zero-alloc" `Quick
            test_decode_batch_steady_zero_alloc;
          Alcotest.test_case "pinned seed vector" `Quick
            test_pinned_seed_vector;
          Alcotest.test_case "3-detector flag placement" `Quick
            test_dem_graph_three_detector_flag ] );
      ( "dem store",
        [ Alcotest.test_case "pinned circuit key" `Quick
            test_pinned_circuit_key;
          Alcotest.test_case "round trip" `Quick test_store_roundtrip;
          Alcotest.test_case "malformed payloads" `Quick
            test_store_malformed_payloads;
          Alcotest.test_case "corruption heals" `Quick
            test_store_corruption_heals;
          Alcotest.test_case "warm start identical" `Quick
            test_compile_cached_warm_identical ] );
      ( "threshold",
        [ Alcotest.test_case "pseudothreshold jobs=1 vs 4" `Slow
            test_pseudothreshold_jobs_determinism ] ) ]
