(* Tests for the call-tree profiler, the telemetry heartbeat, and the
   manifest/bench diff gate: tree structure and the self-time telescoping
   identity, path integrity on exception exits, folded-stack determinism
   across --jobs, delta arithmetic across Obs.reset, and regression
   detection on crafted documents. *)

let spin () = ignore (Sys.opaque_identity (Array.init 2000 (fun i -> i * i)))

let rec fold_nodes f acc nodes =
  List.fold_left
    (fun acc (n : Obs.Profile.node) -> fold_nodes f (f acc n) n.Obs.Profile.children)
    acc nodes

let names nodes = List.map (fun (n : Obs.Profile.node) -> n.Obs.Profile.name) nodes

let contains hay needle =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

(* ------------------------------------------------------------------ tree *)

let test_tree_structure () =
  Obs.reset ();
  Obs.Trace.with_span "root" (fun () ->
      spin ();
      Obs.Trace.with_span "a" (fun () -> spin ());
      Obs.Trace.with_span "b" (fun () ->
          spin ();
          Obs.Trace.with_span "c" (fun () -> spin ()));
      Obs.Trace.with_span "a" (fun () -> spin ()));
  match Obs.Profile.tree () with
  | [ root ] ->
      Alcotest.(check string) "root name" "root" root.Obs.Profile.name;
      Alcotest.(check string) "root path" "root" root.Obs.Profile.path;
      Alcotest.(check int) "root count" 1 root.Obs.Profile.count;
      Alcotest.(check (list string))
        "children sorted by name" [ "a"; "b" ]
        (names root.Obs.Profile.children);
      let a = List.nth root.Obs.Profile.children 0 in
      let b = List.nth root.Obs.Profile.children 1 in
      Alcotest.(check int) "sibling calls aggregate" 2 a.Obs.Profile.count;
      Alcotest.(check (list string)) "nested child" [ "c" ] (names b.Obs.Profile.children);
      Alcotest.(check string) "full path" "root;b;c"
        (List.hd b.Obs.Profile.children).Obs.Profile.path;
      (* Self times are nonnegative and bounded by cumulative time. *)
      fold_nodes
        (fun () (n : Obs.Profile.node) ->
          Alcotest.(check bool)
            (n.Obs.Profile.path ^ " self within [0, cum]")
            true
            (n.Obs.Profile.self_ns >= 0L && n.Obs.Profile.self_ns <= n.Obs.Profile.cum_ns))
        () [ root ];
      (* The telescoping identity: self times summed over the whole tree
         equal the root's cumulative time (within 1% for clamping). *)
      let self_sum =
        fold_nodes
          (fun acc (n : Obs.Profile.node) -> Int64.add acc n.Obs.Profile.self_ns)
          0L [ root ]
      in
      let cum = Int64.to_float root.Obs.Profile.cum_ns in
      Alcotest.(check bool) "self times telescope to root cum" true
        (Float.abs (Int64.to_float self_sum -. cum) <= 0.01 *. cum)
  | roots -> Alcotest.failf "expected 1 root, got %d" (List.length roots)

let test_exception_exit_paths () =
  Obs.reset ();
  Obs.Trace.with_span "outer" (fun () ->
      (try Obs.Trace.with_span "boom" (fun () -> failwith "x")
       with Failure _ -> ());
      (* The path stack must unwind on the exception exit: this sibling is a
         child of outer, not of outer;boom. *)
      Obs.Trace.with_span "next" (fun () -> ()));
  let paths = List.map (fun (p, _, _, _, _, _) -> p) (Obs.Trace.by_path ()) in
  Alcotest.(check (list string))
    "paths unwound past the raising span"
    [ "outer"; "outer;boom"; "outer;next" ]
    paths

let test_of_totals_implicit_parent () =
  (* A path whose parent never completed a span of its own (e.g. evicted or
     filtered input) gets an implicit zero-count interior node. *)
  let nodes =
    Obs.Profile.of_totals
      [ ("p;q", 3, 300L, 90, 0, 0); ("p;q;r", 2, 100L, 40, 0, 0) ]
  in
  match nodes with
  | [ p ] ->
      Alcotest.(check int) "implicit node count" 0 p.Obs.Profile.count;
      Alcotest.(check int64) "implicit self clamps to zero" 0L p.Obs.Profile.self_ns;
      let q = List.hd p.Obs.Profile.children in
      Alcotest.(check int64) "child self = cum - grandchild" 200L q.Obs.Profile.self_ns;
      Alcotest.(check int) "alloc telescopes too" 50 q.Obs.Profile.self_w;
      (* Folded output skips zero-weight lines under all weightings. *)
      Alcotest.(check string) "folded self_ns" "p;q 200\np;q;r 100\n"
        (Obs.Profile.folded nodes);
      Alcotest.(check string) "folded counts" "p;q 3\np;q;r 2\n"
        (Obs.Profile.folded ~weight:`Count nodes);
      Alcotest.(check string) "folded self alloc" "p;q 50\np;q;r 40\n"
        (Obs.Profile.folded ~weight:`Self_alloc nodes)
  | _ -> Alcotest.fail "expected a single root"

let test_top_ranking () =
  let nodes =
    Obs.Profile.of_totals
      [ ("r", 1, 1000L, 2000, 0, 0);
        ("r;cheap", 5, 100L, 1800, 0, 0);
        ("r;hot", 5, 700L, 50, 0, 0) ]
  in
  let paths ns = List.map (fun (n : Obs.Profile.node) -> n.Obs.Profile.path) ns in
  let top = Obs.Profile.top ~limit:2 nodes in
  Alcotest.(check (list string))
    "ranked by self time, descending" [ "r;hot"; "r" ] (paths top);
  (* The alloc sort key surfaces a different leader: [r;cheap] is cheap in
     time but dominates self minor words. *)
  Alcotest.(check (list string))
    "ranked by self alloc, descending" [ "r;cheap"; "r" ]
    (paths (Obs.Profile.top ~sort:`Alloc ~limit:2 nodes));
  Alcotest.(check (list string))
    "ranked by cumulative time" [ "r"; "r;hot" ]
    (paths (Obs.Profile.top ~sort:`Cum ~limit:2 nodes));
  let table = Obs.Profile.top_table nodes in
  Alcotest.(check bool) "table mentions the hot path" true (contains table "r;hot")

(* --------------------------------------------------------- determinism *)

let folded_run jobs =
  Obs.reset ();
  Obs.Trace.with_span "driver" (fun () ->
      ignore
        (Parallel.run ~jobs
           (Array.init 8 (fun i ->
                fun () -> Obs.Trace.with_span "task" (fun () -> i * i)))));
  Obs.Profile.folded ~weight:`Count (Obs.Profile.tree ())

let test_folded_identical_across_jobs () =
  let f1 = folded_run 1 in
  let f2 = folded_run 2 in
  let f4 = folded_run 4 in
  Alcotest.(check string) "folded stacks byte-identical at --jobs 1 vs 2" f1 f2;
  Alcotest.(check string) "folded stacks byte-identical at --jobs 1 vs 4" f1 f4;
  (* Worker-domain spans must inherit the submitting caller's path. *)
  Alcotest.(check string) "workers nest under the caller"
    "driver 1\ndriver;task 8\n" f2

(* --------------------------------------------------------- allocation *)

(* Allocate ~n minor-heap words in 100-word chunks: blocks past
   Max_young_wosize go straight to the major heap and would never move the
   minor-words counter this test attributes. *)
let alloc_n n =
  for _ = 1 to n / 100 do
    ignore (Sys.opaque_identity (Array.make 99 0))
  done

let test_span_alloc_attribution () =
  Obs.reset ();
  Obs.Trace.with_span "outer" (fun () ->
      alloc_n 1000;
      Obs.Trace.with_span "inner" (fun () -> alloc_n 5000));
  match Obs.Profile.tree () with
  | [ root ] -> (
      match root.Obs.Profile.children with
      | [ inner ] ->
          (* The 5000-word array belongs to inner's self-allocation; outer's
             self must exclude it but still see its own 1000-word array. *)
          Alcotest.(check bool) "inner self_w sees its array" true
            (inner.Obs.Profile.self_w >= 5000);
          Alcotest.(check bool) "outer self excludes inner's words" true
            (root.Obs.Profile.self_w < 5000);
          Alcotest.(check bool) "outer self sees its own words" true
            (root.Obs.Profile.self_w >= 1000);
          (* Self words telescope exactly: root cum = root self + child cum. *)
          Alcotest.(check int) "alloc telescoping identity"
            root.Obs.Profile.cum_w
            (root.Obs.Profile.self_w + inner.Obs.Profile.cum_w)
      | cs -> Alcotest.failf "expected one child, got %d" (List.length cs))
  | roots -> Alcotest.failf "expected 1 root, got %d" (List.length roots)

let test_self_alloc_deterministic_sequential () =
  (* Minor words are a pure function of the allocation sequence, so a
     sequential workload folds to byte-identical `Self_alloc output on
     every run. *)
  let run () =
    Obs.reset ();
    Obs.Trace.with_span "seq" (fun () ->
        for _ = 1 to 4 do
          Obs.Trace.with_span "work" (fun () -> alloc_n 512)
        done);
    Obs.Profile.folded ~weight:`Self_alloc (Obs.Profile.tree ())
  in
  let a = run () in
  let b = run () in
  Alcotest.(check string) "self-alloc folded byte-identical across runs" a b;
  Alcotest.(check bool) "work rows carry positive weight" true
    (contains a "seq;work ")

(* ------------------------------------------------------------ telemetry *)

let read_records path =
  In_channel.with_open_text path In_channel.input_lines
  |> List.filter (fun l -> String.trim l <> "")
  |> List.map Obs.Json.parse

let delta_of name record =
  match Option.bind (Obs.Json.member "deltas" record) (Obs.Json.member name) with
  | Some (Obs.Json.Int d) -> d
  | _ -> Alcotest.failf "record missing delta for %s" name

let test_telemetry_deltas_across_reset () =
  Obs.reset ();
  let c = Obs.Counter.create "telemetry_test.events_total" in
  let path = Filename.temp_file "hetarch_telemetry" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Obs.Telemetry.enable ~path ~interval_s:0.;
      Alcotest.(check bool) "enabled" true (Obs.Telemetry.enabled ());
      Obs.Counter.add c 10;
      Obs.Telemetry.tick ~force:true ();
      (* Zeroing every metric must also forget the delta baseline: the next
         record reports +3, not 3 - 10 = -7 (or a clamped 0). *)
      Obs.reset ();
      Obs.Counter.add c 3;
      Obs.Telemetry.tick ~force:true ();
      Obs.Telemetry.disable ();
      Alcotest.(check bool) "disabled" false (Obs.Telemetry.enabled ());
      match read_records path with
      | [ baseline; first; after_reset; final ] ->
          List.iteri
            (fun i r ->
              Alcotest.(check bool)
                (Printf.sprintf "record %d schema" i)
                true
                (Obs.Json.member "schema" r
                = Some (Obs.Json.String "hetarch.telemetry/4"));
              Alcotest.(check bool)
                (Printf.sprintf "record %d run stamp" i)
                true
                (Option.bind (Obs.Json.member "run" r) (Obs.Json.member "id")
                <> None);
              Alcotest.(check bool)
                (Printf.sprintf "record %d seq" i)
                true
                (Obs.Json.member "seq" r = Some (Obs.Json.Int i)))
            [ baseline; first; after_reset; final ];
          Alcotest.(check int) "baseline delta zero" 0
            (delta_of "telemetry_test.events_total" baseline);
          Alcotest.(check int) "first tick sees +10" 10
            (delta_of "telemetry_test.events_total" first);
          Alcotest.(check int) "post-reset tick sees +3, not -7" 3
            (delta_of "telemetry_test.events_total" after_reset);
          Alcotest.(check int) "final record delta zero" 0
            (delta_of "telemetry_test.events_total" final)
      | records -> Alcotest.failf "expected 4 records, got %d" (List.length records))

let test_telemetry_tick_noop_when_disabled () =
  Obs.reset ();
  (* Must not raise or write anywhere. *)
  Obs.Telemetry.tick ();
  Obs.Telemetry.tick ~force:true ();
  Obs.Telemetry.disable ();
  Alcotest.(check bool) "still disabled" false (Obs.Telemetry.enabled ())

(* ----------------------------------------------------------------- diff *)

let bench_doc kernels =
  Obs.Json.Obj
    [ ("schema", Obs.Json.String "hetarch.bench/3");
      ( "kernels",
        Obs.Json.List
          (List.map
             (fun (name, ns) ->
               Obs.Json.Obj
                 [ ("name", Obs.Json.String name);
                   ("ns_per_run", Obs.Json.Float ns) ])
             kernels) ) ]

let test_diff_detects_regression () =
  let a = bench_doc [ ("k1", 100.); ("k2", 50.); ("gone", 10.) ] in
  let b = bench_doc [ ("k1", 150.); ("k2", 51.); ("new", 10.) ] in
  let r = Obs.Diff.compare_docs ~threshold_pct:20. a b in
  Alcotest.(check int) "two shared metrics" 2 (List.length r.Obs.Diff.entries);
  (match r.Obs.Diff.regressions with
  | [ e ] ->
      Alcotest.(check string) "k1 flagged" "kernel:k1" e.Obs.Diff.metric;
      Alcotest.(check bool) "pct is +50" true (Float.abs (e.Obs.Diff.pct -. 50.) < 1e-9)
  | regs -> Alcotest.failf "expected 1 regression, got %d" (List.length regs));
  Alcotest.(check (list string)) "only_a" [ "kernel:gone" ] r.Obs.Diff.only_a;
  Alcotest.(check (list string)) "only_b" [ "kernel:new" ] r.Obs.Diff.only_b;
  (* A looser threshold accepts the same pair. *)
  let loose = Obs.Diff.compare_docs ~threshold_pct:60. a b in
  Alcotest.(check int) "no regressions at 60%" 0
    (List.length loose.Obs.Diff.regressions)

let test_diff_manifest_metrics () =
  Obs.reset ();
  let h = Obs.Histogram.create ~buckets:[| 1.; 10. |] "diff_test.hist" in
  Obs.Histogram.observe h 4.;
  Obs.Trace.with_span "diff_test.span" (fun () -> ());
  let doc = Obs.Report.to_json () in
  let metrics = Obs.Diff.metrics_of doc in
  Alcotest.(check bool) "histogram mean extracted" true
    (List.mem_assoc "hist:diff_test.hist.mean" metrics);
  Alcotest.(check bool) "span total extracted" true
    (List.mem_assoc "span:diff_test.span" metrics);
  (* Identical documents never regress. *)
  let r = Obs.Diff.compare_docs doc doc in
  Alcotest.(check int) "self-compare clean" 0 (List.length r.Obs.Diff.regressions);
  Alcotest.(check bool) "unknown schema rejected" true
    (try
       ignore (Obs.Diff.metrics_of (Obs.Json.Obj [ ("schema", Obs.Json.String "x/1") ]));
       false
     with Failure _ -> true)

let () =
  Alcotest.run "profile"
    [ ( "tree",
        [ Alcotest.test_case "structure and telescoping" `Quick test_tree_structure;
          Alcotest.test_case "exception exit paths" `Quick test_exception_exit_paths;
          Alcotest.test_case "implicit parents" `Quick test_of_totals_implicit_parent;
          Alcotest.test_case "top ranking" `Quick test_top_ranking ] );
      ( "determinism",
        [ Alcotest.test_case "folded identical across jobs" `Quick
            test_folded_identical_across_jobs ] );
      ( "allocation",
        [ Alcotest.test_case "span alloc attribution" `Quick
            test_span_alloc_attribution;
          Alcotest.test_case "sequential self-alloc determinism" `Quick
            test_self_alloc_deterministic_sequential ] );
      ( "telemetry",
        [ Alcotest.test_case "deltas across reset" `Quick
            test_telemetry_deltas_across_reset;
          Alcotest.test_case "tick no-op when disabled" `Quick
            test_telemetry_tick_noop_when_disabled ] );
      ( "diff",
        [ Alcotest.test_case "regression detection" `Quick test_diff_detects_regression;
          Alcotest.test_case "manifest metrics" `Quick test_diff_manifest_metrics ] ) ]
