(* Distributed trace-context propagation: pinned mint vectors, wire-form
   parsing, parent/child linkage — in-process and across a real forked
   `collect --shards 2` coordinator — and the canonical trace-merge
   algebra (order-invariance, dedup idempotence, orphan detection).

   The merge law is checked on the serialized bytes: `obs trace-merge`
   from any input order must produce byte-identical timelines, which is
   the property CI's monitor-smoke relies on. *)

(* Install an inherited parent before anything forces the lazy context:
   this test process itself plays the child half of the env-var
   inheritance round trip. *)
let wire_parent = "00112233445566aa-8899aabbccddeeff"
let () = Unix.putenv Obs.Context.env_var wire_parent

let is_hex_id s =
  String.length s = 16
  && String.for_all (function '0' .. '9' | 'a' .. 'f' -> true | _ -> false) s

(* ------------------------------------------------------- mint and wire *)

(* Pinned vectors: the context is derived by content hash from the run id,
   so a changed derivation breaks every recorded parent/child linkage —
   these fail loudly on drift. *)
let test_pinned_mint () =
  let c = Obs.Context.mint ~run_id:"00000000000000aa" in
  Alcotest.(check string) "pinned trace id" "212a48ba9008d48e"
    c.Obs.Context.trace_id;
  Alcotest.(check string) "pinned span id" "d8250e735ea5bacc"
    c.Obs.Context.span_id;
  Alcotest.(check string) "root has no parent" "" c.Obs.Context.parent_span_id

let test_wire_roundtrip () =
  let c = Obs.Context.mint ~run_id:"00000000000000ab" in
  match Obs.Context.of_string (Obs.Context.to_string c) with
  | Some p ->
      Alcotest.(check string) "trace id survives" c.Obs.Context.trace_id
        p.Obs.Context.trace_id;
      Alcotest.(check string) "span id survives" c.Obs.Context.span_id
        p.Obs.Context.span_id;
      Alcotest.(check string) "wire form carries no parent" ""
        p.Obs.Context.parent_span_id
  | None -> Alcotest.fail "minted context does not re-parse"

let test_wire_malformed () =
  List.iter
    (fun s ->
      Alcotest.(check bool)
        (Printf.sprintf "%S rejected" s)
        true
        (Obs.Context.of_string s = None))
    [ "";
      "zz";
      "00112233445566aa";
      "00112233445566aa+8899aabbccddeeff";
      "00112233445566AA-8899aabbccddeeff";
      "00112233445566aa-8899aabbccddeef";
      "00112233445566aa-8899aabbccddeeffe";
      "0011223344556-6aa8899aabbccddeeff" ]

let test_child_linkage () =
  let parent = Obs.Context.mint ~run_id:"00000000000000aa" in
  let child = Obs.Context.child parent ~run_id:"00000000000000ab" in
  Alcotest.(check string) "trace id inherited" parent.Obs.Context.trace_id
    child.Obs.Context.trace_id;
  Alcotest.(check string) "parent span recorded" parent.Obs.Context.span_id
    child.Obs.Context.parent_span_id;
  Alcotest.(check bool) "own span is fresh" true
    (child.Obs.Context.span_id <> parent.Obs.Context.span_id
    && is_hex_id child.Obs.Context.span_id)

let test_env_inheritance () =
  let c = Obs.Context.current () in
  Alcotest.(check string) "trace id from HETARCH_TRACE_PARENT"
    "00112233445566aa" c.Obs.Context.trace_id;
  Alcotest.(check string) "parent span from HETARCH_TRACE_PARENT"
    "8899aabbccddeeff" c.Obs.Context.parent_span_id;
  Alcotest.(check bool) "own span minted fresh" true
    (is_hex_id c.Obs.Context.span_id
    && c.Obs.Context.span_id <> "8899aabbccddeeff");
  (* every observability stamp carries all three fields *)
  match Obs.Context.stamp () with
  | Obs.Json.Obj kvs ->
      List.iter
        (fun k ->
          Alcotest.(check bool) (k ^ " stamped") true (List.mem_assoc k kvs))
        [ "id"; "shard"; "trace_id"; "span_id"; "parent_span_id" ]
  | _ -> Alcotest.fail "stamp is not an object"

(* ------------------------------------------------- child command lines *)

let test_shard_argv_rewrite () =
  let argv =
    [| "hetarch"; "collect"; "threshold"; "--trace"; "t.jsonl";
       "--csv=out.csv"; "--shards"; "2"; "--seed"; "7" |]
  in
  Alcotest.(check (list string)) "path flags suffixed, shard appended"
    [ "hetarch"; "collect"; "threshold"; "--trace"; "t.jsonl.shard1";
      "--csv=out.csv.shard1"; "--shards"; "2"; "--seed"; "7"; "--shard"; "1" ]
    (Collect.Fleet.shard_argv ~shard:1 argv)

let test_child_env () =
  let env =
    [| "PATH=/usr/bin"; "HETARCH_RUN_ID=00000000000000aa";
       "HETARCH_TRACE_PARENT=old-parent"; "HOME=/root" |]
  in
  Alcotest.(check (list string))
    "run-id pin and stale parent dropped, new parent appended"
    [ "PATH=/usr/bin"; "HOME=/root"; "HETARCH_TRACE_PARENT=" ^ wire_parent ]
    (Array.to_list (Collect.Fleet.child_env ~trace_parent:wire_parent env))

(* ------------------------------- forked coordinator, end to end *)

let with_tmp_dir f =
  let dir = Filename.temp_file "hetarch_ctx" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  let rec rm path =
    if Sys.is_directory path then begin
      Array.iter (fun e -> rm (Filename.concat path e)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path
  in
  Fun.protect ~finally:(fun () -> try rm dir with Sys_error _ -> ()) (fun () -> f dir)

(* The CLI binary is a declared dependency of this test (see test/dune)
   and lives next to the test executable in the build tree — resolve it
   from there so both `dune runtest` and `dune exec` find it. *)
let hetarch_bin =
  Filename.concat
    (Filename.dirname (Filename.dirname Sys.executable_name))
    (Filename.concat "bin" "main.exe")

(* Spawn the real coordinator with a clean context (the putenv above must
   not leak in, or the coordinator itself would parent under our synthetic
   wire_parent and the orphan assertions below would shift). *)
let run_coordinator ~trace =
  let argv =
    [| hetarch_bin; "collect"; "threshold"; "--seed"; "7"; "--max-shots";
       "256"; "--batch"; "128"; "--shards"; "2"; "--trace"; trace |]
  in
  let env =
    Unix.environment () |> Array.to_list
    |> List.filter (fun b ->
           not
             (String.length b >= 21
             && String.sub b 0 21 = "HETARCH_TRACE_PARENT="))
    |> Array.of_list
  in
  let devnull = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0o644 in
  let pid =
    Fun.protect
      ~finally:(fun () -> Unix.close devnull)
      (fun () ->
        Unix.create_process_env hetarch_bin argv env Unix.stdin devnull
          Unix.stderr)
  in
  match Unix.waitpid [] pid with
  | _, Unix.WEXITED 0 -> ()
  | _ -> Alcotest.fail "collect --shards 2 coordinator failed"

let run_meta path =
  let meta =
    Obs.fold_jsonl path
      (fun acc j ->
        match acc with
        | Some _ -> acc
        | None -> (
            match (Obs.Json.member "ph" j, Obs.Json.member "name" j) with
            | Some (Obs.Json.String "M"), Some (Obs.Json.String "hetarch.run")
              ->
                Obs.Json.member "args" j
            | _ -> acc))
      None
  in
  match meta with
  | Some args -> args
  | None -> Alcotest.fail ("no hetarch.run metadata event in " ^ path)

let meta_field name args =
  match Obs.Json.member name args with
  | Some (Obs.Json.String s) -> s
  | _ -> ""

let read_file path = In_channel.with_open_bin path In_channel.input_all

let test_forked_shards_and_merge () =
  with_tmp_dir (fun dir ->
      let trace = Filename.concat dir "trace.jsonl" in
      run_coordinator ~trace;
      let coord = run_meta trace in
      let s0 = run_meta (trace ^ ".shard0") in
      let s1 = run_meta (trace ^ ".shard1") in
      let coord_span = meta_field "span_id" coord in
      (* one trace id fleet-wide, shard spans parent under the coordinator *)
      Alcotest.(check string) "coordinator is a root" ""
        (meta_field "parent_span_id" coord);
      List.iteri
        (fun i s ->
          let lbl n = Printf.sprintf "shard%d %s" i n in
          Alcotest.(check string) (lbl "trace id")
            (meta_field "trace_id" coord)
            (meta_field "trace_id" s);
          Alcotest.(check string) (lbl "parent span") coord_span
            (meta_field "parent_span_id" s))
        [ s0; s1 ];
      Alcotest.(check bool) "shard spans distinct" true
        (meta_field "span_id" s0 <> meta_field "span_id" s1
        && meta_field "span_id" s0 <> coord_span);
      (* canonical merge: any input order, and re-merging duplicates,
         produces the same bytes *)
      let texts =
        List.map read_file [ trace; trace ^ ".shard0"; trace ^ ".shard1" ]
      in
      let fwd, stats = Obs.Trace_merge.merge texts in
      let rev, _ = Obs.Trace_merge.merge (List.rev texts) in
      let dup, _ = Obs.Trace_merge.merge (texts @ [ List.nth texts 1 ]) in
      Alcotest.(check string) "merge is order-invariant (bytes)" fwd rev;
      Alcotest.(check string) "merge deduplicates by content (bytes)" fwd dup;
      Alcotest.(check int) "three sources" 3 stats.Obs.Trace_merge.sources;
      Alcotest.(check (list string)) "full fleet has no orphans" []
        stats.Obs.Trace_merge.orphans;
      (* shards merged without their coordinator orphan its span id *)
      let _, partial = Obs.Trace_merge.merge (List.tl texts) in
      Alcotest.(check (list string)) "missing coordinator is an orphan"
        [ coord_span ] partial.Obs.Trace_merge.orphans)

let () =
  Alcotest.run "context"
    [ ( "context",
        [ Alcotest.test_case "pinned mint vectors" `Quick test_pinned_mint;
          Alcotest.test_case "wire round trip" `Quick test_wire_roundtrip;
          Alcotest.test_case "malformed wire forms" `Quick test_wire_malformed;
          Alcotest.test_case "child linkage" `Quick test_child_linkage;
          Alcotest.test_case "env-var inheritance" `Quick test_env_inheritance
        ] );
      ( "fleet",
        [ Alcotest.test_case "shard argv rewrite" `Quick
            test_shard_argv_rewrite;
          Alcotest.test_case "child env" `Quick test_child_env;
          Alcotest.test_case "forked shards + trace merge" `Quick
            test_forked_shards_and_merge ] ) ]
