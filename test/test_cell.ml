(* Tests for design rules, the standard-cell catalog, and cell
   characterization. *)

let test_all_cells_compliant () =
  List.iter
    (fun c ->
      Alcotest.(check (list Alcotest.reject))
        (Cell.name c ^ " DRC")
        []
        (List.map (fun _ -> ()) (Design_rules.check c.Cell.graph)))
    (Cell.all ())

let inst id device readout = { Design_rules.id; device; readout }

let test_dr1_overloaded_compute () =
  let compute = Device.fixed_frequency_qubit in
  let g =
    { Design_rules.name = "bad-dr1";
      instances = Array.init 6 (fun i -> inst i compute false);
      couplings = [ (0, 1); (0, 2); (0, 3); (0, 4); (0, 5) ];
      ports = [];
      readout_budget = 0 }
  in
  let vs = Design_rules.check g in
  Alcotest.(check bool) "DR1 violation found" true
    (List.exists (fun v -> v.Design_rules.rule = 1) vs)

let test_dr1_counts_ports () =
  let compute = Device.fixed_frequency_qubit in
  let g =
    { Design_rules.name = "ports-count";
      instances = [| inst 0 compute false; inst 1 compute false |];
      couplings = [ (0, 1) ];
      ports = [ (0, 4) ];
      readout_budget = 0 }
  in
  Alcotest.(check bool) "internal + ports > 4 flagged" true
    (List.exists (fun v -> v.Design_rules.rule = 1) (Design_rules.check g))

let test_dr2_storage_isolation () =
  let s = Device.multimode_resonator_3d and c = Device.fixed_frequency_qubit in
  let two_links =
    { Design_rules.name = "bad-dr2";
      instances = [| inst 0 s false; inst 1 c false; inst 2 c false |];
      couplings = [ (0, 1); (0, 2); (1, 2) ];
      ports = [];
      readout_budget = 0 }
  in
  Alcotest.(check bool) "storage with 2 couplings flagged" true
    (List.exists (fun v -> v.Design_rules.rule = 2) (Design_rules.check two_links));
  let to_storage =
    { Design_rules.name = "bad-dr2b";
      instances = [| inst 0 s false; inst 1 s false; inst 2 c false |];
      couplings = [ (0, 1); (1, 2) ];
      ports = [];
      readout_budget = 0 }
  in
  Alcotest.(check bool) "storage-storage coupling flagged" true
    (List.exists (fun v -> v.Design_rules.rule = 2) (Design_rules.check to_storage))

let test_dr3_disconnected () =
  let c = Device.fixed_frequency_qubit in
  let g =
    { Design_rules.name = "bad-dr3";
      instances = [| inst 0 c false; inst 1 c false; inst 2 c false; inst 3 c false |];
      couplings = [ (0, 1); (2, 3) ];
      ports = [];
      readout_budget = 0 }
  in
  Alcotest.(check bool) "disconnected graph flagged" true
    (List.exists (fun v -> v.Design_rules.rule = 3) (Design_rules.check g))

let test_dr4_excess_readout () =
  let c = Device.fixed_frequency_qubit in
  let g =
    { Design_rules.name = "bad-dr4";
      instances = [| inst 0 c true; inst 1 c true |];
      couplings = [ (0, 1) ];
      ports = [];
      readout_budget = 1 }
  in
  Alcotest.(check bool) "excess readout flagged" true
    (List.exists (fun v -> v.Design_rules.rule = 4) (Design_rules.check g))

let test_assert_valid_raises () =
  let c = Device.fixed_frequency_qubit in
  let g =
    { Design_rules.name = "invalid";
      instances = [| inst 0 c true; inst 1 c true |];
      couplings = [ (0, 1) ];
      ports = [];
      readout_budget = 0 }
  in
  Alcotest.(check bool) "raises" true
    (try
       Design_rules.assert_valid g;
       false
     with Invalid_argument _ -> true)

let test_cell_shapes () =
  let check cell devices capacity =
    Alcotest.(check int)
      (Cell.name cell ^ " devices")
      devices
      (Array.length cell.Cell.graph.Design_rules.instances);
    Alcotest.(check int) (Cell.name cell ^ " capacity") capacity (Cell.capacity cell)
  in
  check (Cell.register ()) 2 11;
  check (Cell.parcheck ()) 2 2;
  check (Cell.seqop ()) 5 23;
  check (Cell.usc ()) 7 34;
  check (Cell.usc_ext ()) 5 23

let test_cell_device_substitution () =
  (* The point of the cell layer: swap the storage device and stay valid. *)
  let c = Cell.register ~storage:Device.memory_3d () in
  Alcotest.(check int) "capacity drops to 2" 2 (Cell.capacity c);
  let c2 = Cell.usc ~storage:Device.on_chip_resonator () in
  Alcotest.(check int) "still 34 modes" 34 (Cell.capacity c2)

let test_footprint_positive () =
  List.iter
    (fun c ->
      Alcotest.(check bool) (Cell.name c ^ " footprint") true (Cell.footprint_mm2 c > 0.);
      Alcotest.(check bool) (Cell.name c ^ " control") true (Cell.control_lines c > 0))
    (Cell.all ())

let test_storage_exn () =
  Alcotest.(check bool) "parcheck has no storage" true
    (try
       ignore (Cell.storage_exn (Cell.parcheck ()));
       false
     with Invalid_argument _ -> true)

(* ---------------------------------------------------- characterization *)

let test_register_load_perf () =
  let p = Characterize.register_load (Cell.register ()) in
  Alcotest.(check bool) "duration = swap time" true
    (Float.abs (p.Characterize.duration -. 400e-9) < 1e-12);
  (* dominated by the 1e-2 swap depolarizing *)
  Alcotest.(check bool) "error near swap error" true
    (p.Characterize.error > 0.004 && p.Characterize.error < 0.02)

let test_retention_matches_coherence () =
  let cell = Cell.register () in
  let dt = 100e-6 in
  let p = Characterize.register_retention cell ~dt in
  (* entanglement fidelity of twirled idle at T1=2ms,T2=2.5ms for 100us:
     error ~ (1/2)(1-e^-dt/T1)/2 + ... just bound it *)
  Alcotest.(check bool) "small but nonzero" true
    (p.Characterize.error > 1e-3 && p.Characterize.error < 0.1);
  let p2 = Characterize.register_retention cell ~dt:(2. *. dt) in
  Alcotest.(check bool) "monotone" true (p2.Characterize.error > p.Characterize.error)

let test_retention_beats_compute_idle () =
  let cell = Cell.register () in
  let dt = 50e-6 in
  let stored = Characterize.register_retention cell ~dt in
  let on_compute = Characterize.compute_idle Device.fixed_frequency_qubit ~dt in
  Alcotest.(check bool) "storage wins" true
    (stored.Characterize.error < on_compute.Characterize.error)

let test_parity_check_perf () =
  let p = Characterize.parity_check (Cell.parcheck ()) in
  Alcotest.(check bool) "duration includes readout" true (p.Characterize.duration >= 1e-6);
  Alcotest.(check bool) "error small" true
    (p.Characterize.error > 0. && p.Characterize.error < 0.05)

let test_sequential_cnots_scaling () =
  let cell = Cell.seqop () in
  let p1 = Characterize.sequential_cnots cell ~count:1 in
  let p5 = Characterize.sequential_cnots cell ~count:5 in
  Alcotest.(check bool) "error grows with count" true
    (p5.Characterize.error > p1.Characterize.error);
  Alcotest.(check bool) "duration grows" true
    (p5.Characterize.duration > p1.Characterize.duration)

let test_stabilizer_check_serialization_cost () =
  let cell = Cell.usc () in
  let serial = Characterize.stabilizer_check cell ~weight:4 ~serialized:true in
  let parallel = Characterize.stabilizer_check cell ~weight:4 ~serialized:false in
  Alcotest.(check bool) "serialized slower" true
    (serial.Characterize.duration > parallel.Characterize.duration)

let test_spectator_modes_factor_out () =
  (* The DSE burden accounting assumes idle modes factor out of cell
     characterization; verify on the full statevector that per-qubit
     retention is independent of how many other modes are occupied. *)
  let cell = Cell.register () in
  let dt = 200e-6 in
  let exact = Characterize.register_retention cell ~dt in
  (* Monte-Carlo estimate: at 4000 trajectories the standard error is just
     under 0.005, so a 0.02 band separates cleanly from any real mode
     dependence (compute-grade idling would sit at ~0.3). *)
  List.iter
    (fun modes ->
      let rng = Rng.create 71 in
      let p = Characterize.retention_with_spectators cell ~modes ~dt ~trajectories:4000 rng in
      Alcotest.(check bool)
        (Printf.sprintf "modes=%d: %.4f vs exact %.4f" modes p.Characterize.error
           exact.Characterize.error)
        true
        (Float.abs (p.Characterize.error -. exact.Characterize.error) < 0.02))
    [ 1; 3; 6 ]

let test_simulation_dimension () =
  Alcotest.(check int) "register dim" (1 lsl 11)
    (Characterize.simulation_dimension (Cell.register ()))

(* ---------------------------------------------------- op characterization *)

(* The op-based entry point must agree exactly with the legacy per-function
   entry points: characterize_op is the same computation routed through the
   memo hook, so a store-served warm run can only be byte-identical to a
   cold one if this equality is float-for-float. *)
let test_characterize_op_matches_legacy () =
  let check name (expected : Characterize.perf) cell op =
    let got = (Characterize.characterize_op cell op).Characterize.perf in
    Alcotest.(check bool)
      (name ^ " duration bit-equal") true
      (Int64.bits_of_float got.Characterize.duration
      = Int64.bits_of_float expected.Characterize.duration);
    Alcotest.(check bool)
      (name ^ " error bit-equal") true
      (Int64.bits_of_float got.Characterize.error
      = Int64.bits_of_float expected.Characterize.error)
  in
  let reg = Cell.register () in
  check "load" (Characterize.register_load reg) reg Characterize.Load;
  check "retention"
    (Characterize.register_retention reg ~dt:5e-6)
    reg
    (Characterize.Retention { dt = 5e-6 });
  let pc = Cell.parcheck () in
  check "parity" (Characterize.parity_check pc) pc Characterize.Parity_check;
  let so = Cell.seqop () in
  check "seq cnots"
    (Characterize.sequential_cnots so ~count:3)
    so
    (Characterize.Seq_cnots { count = 3 });
  let uc = Cell.usc () in
  check "stabilizer"
    (Characterize.stabilizer_check uc ~weight:4 ~serialized:true)
    uc
    (Characterize.Stabilizer { weight = 4; serialized = true })

let test_characterize_op_memo_and_channel () =
  let reg = Cell.register () in
  let calls = ref 0 in
  let memo =
    { Characterize.memoize =
        (fun ~kind ~fields ~dim f ->
          incr calls;
          Alcotest.(check string) "kind" "cell_char" kind;
          Alcotest.(check bool) "fields content-complete" true
            (List.mem_assoc "cell" fields
            && List.mem_assoc "topology" fields
            && List.mem_assoc "storage.t1" fields
            && List.mem_assoc "compute.t1" fields
            && List.assoc_opt "op" fields = Some "load");
          Alcotest.(check int) "dim matches op_dim" (Characterize.op_dim Characterize.Load) dim;
          f ()) }
  in
  let c = Characterize.characterize_op ~memo reg Characterize.Load in
  Alcotest.(check int) "memo hook consulted" 1 !calls;
  Alcotest.(check bool) "channel is CPTP" true (Channel.is_cptp c.Characterize.channel)

let test_key_fields_sensitivity () =
  let reg = Cell.register () in
  let kf cell op = Characterize.key_fields cell op in
  Alcotest.(check bool) "op parameter changes fields" true
    (kf reg (Characterize.Retention { dt = 1e-6 })
    <> kf reg (Characterize.Retention { dt = 2e-6 }));
  let slow = Device.with_coherence Device.multimode_resonator_3d ~t1:1. ~t2:1. in
  Alcotest.(check bool) "storage device changes fields" true
    (kf reg Characterize.Load <> kf (Cell.register ~storage:slow ()) Characterize.Load);
  let times = { Characterize.paper_times with Characterize.t2q = 123e-9 } in
  Alcotest.(check bool) "gate times change fields" true
    (Characterize.key_fields ~times reg Characterize.Load <> kf reg Characterize.Load);
  Alcotest.(check bool) "same input same fields" true
    (kf reg Characterize.Load = kf (Cell.register ()) Characterize.Load)

let () =
  Alcotest.run "cell"
    [ ( "design rules",
        [ Alcotest.test_case "catalog compliant" `Quick test_all_cells_compliant;
          Alcotest.test_case "DR1 degree" `Quick test_dr1_overloaded_compute;
          Alcotest.test_case "DR1 ports" `Quick test_dr1_counts_ports;
          Alcotest.test_case "DR2 storage" `Quick test_dr2_storage_isolation;
          Alcotest.test_case "DR3 connectivity" `Quick test_dr3_disconnected;
          Alcotest.test_case "DR4 readout" `Quick test_dr4_excess_readout;
          Alcotest.test_case "assert_valid" `Quick test_assert_valid_raises ] );
      ( "cells",
        [ Alcotest.test_case "shapes" `Quick test_cell_shapes;
          Alcotest.test_case "device substitution" `Quick test_cell_device_substitution;
          Alcotest.test_case "footprint/control" `Quick test_footprint_positive;
          Alcotest.test_case "storage_exn" `Quick test_storage_exn ] );
      ( "characterization",
        [ Alcotest.test_case "register load" `Quick test_register_load_perf;
          Alcotest.test_case "retention" `Quick test_retention_matches_coherence;
          Alcotest.test_case "storage beats compute" `Quick test_retention_beats_compute_idle;
          Alcotest.test_case "parity check" `Quick test_parity_check_perf;
          Alcotest.test_case "sequential cnots" `Quick test_sequential_cnots_scaling;
          Alcotest.test_case "serialization cost" `Quick test_stabilizer_check_serialization_cost;
          Alcotest.test_case "simulation dimension" `Quick test_simulation_dimension;
          Alcotest.test_case "spectators factor out" `Slow test_spectator_modes_factor_out ] );
      ( "op characterization",
        [ Alcotest.test_case "matches legacy entry points" `Quick
            test_characterize_op_matches_legacy;
          Alcotest.test_case "memo hook and channel" `Quick
            test_characterize_op_memo_and_channel;
          Alcotest.test_case "key fields sensitivity" `Quick
            test_key_fields_sensitivity ] ) ]
