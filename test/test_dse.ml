(* Tests for the design-space-exploration layer: sweeps, the
   characterization cache, and the burden accounting. *)

let feq ?(eps = 1e-9) a b = Float.abs (a -. b) <= eps

(* ---------------------------------------------------------------- sweep *)

let test_linspace () =
  let xs = Sweep.linspace ~lo:0. ~hi:1. ~n:5 in
  Alcotest.(check int) "count" 5 (List.length xs);
  Alcotest.(check bool) "endpoints" true
    (feq (List.hd xs) 0. && feq (List.nth xs 4) 1.);
  Alcotest.(check bool) "spacing" true (feq (List.nth xs 1) 0.25)

let test_logspace () =
  let xs = Sweep.logspace ~lo:1. ~hi:100. ~n:3 in
  Alcotest.(check bool) "geometric middle" true (feq ~eps:1e-9 (List.nth xs 1) 10.);
  Alcotest.(check bool) "rejects nonpositive" true
    (try
       ignore (Sweep.logspace ~lo:0. ~hi:1. ~n:3);
       false
     with Invalid_argument _ -> true)

let test_sweep_and_grid () =
  let s = Sweep.sweep [ 1; 2; 3 ] ~f:(fun x -> x * x) in
  Alcotest.(check (list (pair int int))) "sweep" [ (1, 1); (2, 4); (3, 9) ] s;
  let g = Sweep.grid [ 1; 2 ] [ 10; 20 ] ~f:( + ) in
  Alcotest.(check int) "grid size" 4 (List.length g);
  Alcotest.(check bool) "row major" true (List.hd g = (1, 10, 11))

let test_argmin_argmax () =
  let pts = [ ("a", 3.); ("b", 1.); ("c", 2.) ] in
  Alcotest.(check string) "argmin" "b" (fst (Sweep.argmin pts));
  Alcotest.(check string) "argmax" "a" (fst (Sweep.argmax pts));
  Alcotest.(check bool) "empty raises" true
    (try
       ignore (Sweep.argmin ([] : (int * float) list));
       false
     with Invalid_argument _ -> true)

let test_pareto () =
  let pts = [ ("a", 1., 5.); ("b", 2., 2.); ("c", 5., 1.); ("d", 3., 3.) ] in
  let front = Sweep.pareto pts in
  let names = List.map (fun (n, _, _) -> n) front in
  Alcotest.(check (list string)) "dominated d removed" [ "a"; "b"; "c" ] names

(* ---------------------------------------------------------------- cache *)

let test_cache_hit_miss () =
  let cache = Cache.create () in
  let calls = ref 0 in
  let get () =
    Cache.find_or_compute cache ~key:"register" ~dim:4 (fun () ->
        incr calls;
        42)
  in
  Alcotest.(check int) "first" 42 (get ());
  Alcotest.(check int) "second" 42 (get ());
  Alcotest.(check int) "computed once" 1 !calls;
  Alcotest.(check int) "hits" 1 (Cache.hits cache);
  Alcotest.(check int) "misses" 1 (Cache.misses cache)

let test_cache_cost_accounting () =
  let cache = Cache.create () in
  let get key = Cache.find_or_compute cache ~key ~dim:8 (fun () -> 0) in
  ignore (get "a");
  ignore (get "a");
  ignore (get "a");
  ignore (get "b");
  Alcotest.(check bool) "paid two cubes" true (feq (Cache.cost_paid cache) (2. *. 512.));
  Alcotest.(check bool) "avoided two cubes" true
    (feq (Cache.cost_avoided cache) (2. *. 512.));
  Alcotest.(check bool) "burden reduction" true
    (Cache.burden_reduction ~naive_dim:64 cache > 100.)

(* ---------------------------------------------------------------- store *)

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path

let with_store_dir f =
  let dir = Filename.temp_file "hetarch_store_test" "" in
  Sys.remove dir;
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

let test_store_roundtrip () =
  with_store_dir (fun dir ->
      let s = Store.open_dir dir in
      let key = Store.key ~kind:"test.op" ~fields:[ ("a", "1"); ("b", "2") ] in
      Alcotest.(check bool) "fresh store misses" true (Store.find s key = None);
      (* Arbitrary bytes, including NUL and high bits, survive exactly. *)
      let payload = "\x00\xffchannel bytes\x01\x7f" ^ String.make 100 '\x42' in
      Store.put s key payload;
      Alcotest.(check bool) "round trip exact" true
        (Store.find s key = Some payload);
      (* A second open of the same directory sees the entry: the warm-start
         across process restarts, minus the process restart. *)
      let s2 = Store.open_dir dir in
      Alcotest.(check bool) "reopened store hits" true
        (Store.find s2 key = Some payload))

let test_store_key_discipline () =
  (* Field order must not matter (sorted canonicalization); every input
     component — kind, field values, version tag — must change the key. *)
  let k ~kind fields = Store.key ~kind ~fields in
  Alcotest.(check string) "field order canonical"
    (k ~kind:"op" [ ("a", "1"); ("b", "2") ])
    (k ~kind:"op" [ ("b", "2"); ("a", "1") ]);
  Alcotest.(check bool) "kind distinguishes" true
    (k ~kind:"op1" [ ("a", "1") ] <> k ~kind:"op2" [ ("a", "1") ]);
  Alcotest.(check bool) "value distinguishes" true
    (k ~kind:"op" [ ("a", "1") ] <> k ~kind:"op" [ ("a", "2") ]);
  (* Pin a concrete key: a silent change to the canonicalization, hash, or
     version tag would orphan every store on disk — make it loud instead.
     Bump Store.version_tag when the characterization pipeline changes
     meaning, and re-pin here. *)
  Alcotest.(check string) "pinned key" "146e8e121dc2951b"
    (k ~kind:"test.op" [ ("b", "2"); ("a", "1") ])

let test_store_corruption_degrades_to_miss () =
  with_store_dir (fun dir ->
      let s = Store.open_dir dir in
      let put name payload =
        let key = Store.key ~kind:"corrupt" ~fields:[ ("n", name) ] in
        Store.put s key payload;
        key
      in
      let k1 = put "trunc" "payload one" in
      let k2 = put "flip" "payload two" in
      let k3 = put "garbage" "payload three" in
      let path_of k = Store.entry_path s k in
      (* Truncate one entry mid-record. *)
      let truncate path n =
        let contents = In_channel.with_open_bin path In_channel.input_all in
        Out_channel.with_open_bin path (fun oc ->
            Out_channel.output_string oc (String.sub contents 0 n))
      in
      truncate (path_of k1) 10;
      (* Flip a byte inside another entry's payload: framing intact, checksum
         trailer must catch it. *)
      let flip path =
        let contents = Bytes.of_string (In_channel.with_open_bin path In_channel.input_all) in
        let i = Bytes.length contents - 12 in
        Bytes.set contents i (Char.chr (Char.code (Bytes.get contents i) lxor 0xff));
        Out_channel.with_open_bin path (fun oc -> Out_channel.output_bytes oc contents)
      in
      flip (path_of k2);
      (* Replace a third with outright garbage. *)
      Out_channel.with_open_bin (path_of k3) (fun oc ->
          Out_channel.output_string oc "not a HETSTORE record");
      Alcotest.(check bool) "truncated entry is a miss" true (Store.find s k1 = None);
      Alcotest.(check bool) "bit-flipped entry is a miss" true (Store.find s k2 = None);
      Alcotest.(check bool) "garbage entry is a miss" true (Store.find s k3 = None);
      let st = Store.stats s in
      Alcotest.(check bool) "corruption counted" true (st.Store.corrupt >= 3);
      (* A put over a corrupt entry heals it. *)
      Store.put s k1 "payload one";
      Alcotest.(check bool) "healed after rewrite" true
        (Store.find s k1 = Some "payload one"))

let test_cache_disk_tier () =
  with_store_dir (fun dir ->
      let s = Store.open_dir dir in
      let codec =
        { Cache.encode = string_of_int;
          decode = (fun b -> int_of_string_opt b) }
      in
      let calls = ref 0 in
      let get cache =
        Cache.find_or_compute ~disk:(s, codec) cache ~key:"k" ~dim:4 (fun () ->
            incr calls;
            7)
      in
      let c1 = Cache.create () in
      Alcotest.(check int) "cold computes" 7 (get c1);
      Alcotest.(check int) "memory hit on second call" 7 (get c1);
      Alcotest.(check int) "one compute" 1 !calls;
      Alcotest.(check int) "no disk hits yet" 0 (Cache.disk_hits c1);
      (* Fresh memory tier, same store: the disk tier serves it. *)
      let c2 = Cache.create () in
      Alcotest.(check int) "warm from disk" 7 (get c2);
      Alcotest.(check int) "still one compute" 1 !calls;
      Alcotest.(check int) "disk hit counted" 1 (Cache.disk_hits c2);
      Alcotest.(check int) "promoted to memory" 7 (get c2);
      Alcotest.(check int) "memory hit after promotion" 1 (Cache.hits c2);
      Alcotest.(check bool) "disk hit counts as avoided cost" true
        (Cache.cost_avoided c2 >= 2. *. 64.))

(* Cold, warm, and half-warm sweeps must agree to the last bit, at any job
   count — the persistent store is an invisible accelerator, never a
   semantic change. *)
let char_sweep ~jobs store =
  let memo = Char_store.memo () in
  Sweep.sweep ~jobs ?store
    [ 1.; 2.; 3. ]
    ~f:(fun alpha ->
      let base = Device.multimode_resonator_3d in
      let storage =
        Device.with_coherence base ~t1:(alpha *. base.Device.t1)
          ~t2:(alpha *. base.Device.t2)
      in
      let c =
        Characterize.characterize_op ~memo (Cell.register ~storage ())
          (Characterize.Retention { dt = 10e-6 })
      in
      (c.Characterize.perf.Characterize.duration,
       c.Characterize.perf.Characterize.error))

let test_cold_warm_determinism () =
  with_store_dir (fun dir ->
      (* Baseline with no store at all. *)
      let plain = char_sweep ~jobs:2 None in
      let s = Store.open_dir dir in
      Cache.reset Char_store.cache;
      let cold = char_sweep ~jobs:2 (Some s) in
      Alcotest.(check bool) "cold wrote entries" true ((Store.stats s).Store.writes > 0);
      (* Half-warm: drop one entry from the store, keep the rest. *)
      let entries = ref [] in
      let rec walk p =
        if Sys.is_directory p then Array.iter (fun e -> walk (Filename.concat p e)) (Sys.readdir p)
        else if Filename.check_suffix p ".chan" then entries := p :: !entries
      in
      walk dir;
      Alcotest.(check bool) "store has entries on disk" true (List.length !entries >= 3);
      Sys.remove (List.hd (List.sort compare !entries));
      Cache.reset Char_store.cache;
      let half = char_sweep ~jobs:2 (Some s) in
      (* Fully warm. *)
      Cache.reset Char_store.cache;
      let warm = char_sweep ~jobs:2 (Some s) in
      Alcotest.(check bool) "warm run hit the disk tier" true
        (Cache.disk_hits Char_store.cache > 0);
      (* Polymorphic equality on float pairs is bit-exact here: no NaNs. *)
      Alcotest.(check bool) "cold = no-store baseline" true (cold = plain);
      Alcotest.(check bool) "half-warm = cold" true (half = cold);
      Alcotest.(check bool) "warm = cold" true (warm = cold);
      Cache.reset Char_store.cache)

(* --------------------------------------------------------------- burden *)

let test_burden_modules () =
  List.iter
    (fun cells ->
      Alcotest.(check bool) "reduction exceeds paper's 1e4" true
        (Burden.reduction cells > 1e4))
    [ Burden.distillation_module (); Burden.uec_module (); Burden.ct_module () ]

let test_burden_qubits () =
  Alcotest.(check int) "distillation module qubits" 35
    (Burden.module_qubits (Burden.distillation_module ()));
  Alcotest.(check int) "uec module qubits" 34
    (Burden.module_qubits (Burden.uec_module ()))

let test_active_dimensions () =
  Alcotest.(check int) "register active" 2 (Burden.active_qubits (Cell.register ()));
  Alcotest.(check int) "usc active" 5 (Burden.active_qubits (Cell.usc ()))

let prop_pareto_front_undominated =
  QCheck.Test.make ~name:"pareto front has no dominated points" ~count:100
    QCheck.(list_of_size (QCheck.Gen.int_range 1 20)
              (pair (float_bound_inclusive 10.) (float_bound_inclusive 10.)))
    (fun pts ->
      let labelled = List.mapi (fun i (a, b) -> (i, a, b)) pts in
      let front = Sweep.pareto labelled in
      List.for_all
        (fun (_, a1, a2) ->
          not
            (List.exists
               (fun (_, b1, b2) -> b1 <= a1 && b2 <= a2 && (b1 < a1 || b2 < a2))
               front))
        front)

let () =
  Alcotest.run "dse"
    [ ( "sweep",
        [ Alcotest.test_case "linspace" `Quick test_linspace;
          Alcotest.test_case "logspace" `Quick test_logspace;
          Alcotest.test_case "sweep/grid" `Quick test_sweep_and_grid;
          Alcotest.test_case "argmin/argmax" `Quick test_argmin_argmax;
          Alcotest.test_case "pareto" `Quick test_pareto ] );
      ( "cache",
        [ Alcotest.test_case "hit/miss" `Quick test_cache_hit_miss;
          Alcotest.test_case "cost accounting" `Quick test_cache_cost_accounting;
          Alcotest.test_case "disk tier" `Quick test_cache_disk_tier ] );
      ( "store",
        [ Alcotest.test_case "round trip" `Quick test_store_roundtrip;
          Alcotest.test_case "key discipline" `Quick test_store_key_discipline;
          Alcotest.test_case "corruption degrades to miss" `Quick
            test_store_corruption_degrades_to_miss;
          Alcotest.test_case "cold/warm determinism" `Quick
            test_cold_warm_determinism ] );
      ( "burden",
        [ Alcotest.test_case "paper modules" `Quick test_burden_modules;
          Alcotest.test_case "qubit counts" `Quick test_burden_qubits;
          Alcotest.test_case "active dims" `Quick test_active_dimensions ] );
      ("properties", List.map QCheck_alcotest.to_alcotest [ prop_pareto_front_undominated ]) ]
