(* Snapshot serialization, fleet-merge algebra, the run registry, and the
   trend watchdog.

   The merge laws (commutativity / associativity / idempotence) are checked
   on the serialized bytes, not on abstract values: `hetarch obs merge` from
   any process order must produce byte-identical fleet views, which is the
   property CI's obs-merge-smoke relies on. *)

let to_string snap = Obs.Json.to_string (Obs.Snapshot.to_json snap)
let fleet_string m = Obs.Json.to_string (Obs.Merge.to_json m)

(* ------------------------------------------------- synthetic snapshots *)

let proc0 =
  { Obs.Snapshot.p_minor_collections = 3;
    p_major_collections = 1;
    p_compactions = 0;
    p_minor_words = 1000.5;
    p_promoted_words = 10.;
    p_major_words = 50.25;
    p_heap_words = 4096;
    p_top_heap_words = 8192 }

(* values [2.; 4.]: count 2, mean 3, M2 2 *)
let hist_a =
  { Obs.Snapshot.h_bounds = [| 1.; 10. |];
    h_counts = [| 0; 2 |];
    h_overflow = 0;
    h_count = 2;
    h_mean = 3.;
    h_m2 = 2.;
    h_min = 2.;
    h_max = 4. }

(* values [6.]: count 1, mean 6, M2 0 *)
let hist_b =
  { Obs.Snapshot.h_bounds = [| 1.; 10. |];
    h_counts = [| 0; 1 |];
    h_overflow = 0;
    h_count = 1;
    h_mean = 6.;
    h_m2 = 0.;
    h_min = 6.;
    h_max = 6. }

let snap ?(run_id = "00000000000000aa") ?(shard = "") ?(counters = [])
    ?(gauges = []) ?(histograms = []) ?(spans = []) () =
  { Obs.Snapshot.run_id;
    shard;
    trace_id = "0123456789abcdef";
    span_id = "fedcba9876543210";
    parent_span_id = "";
    argv = [ "hetarch"; "collect"; "threshold"; "--seed"; "7" ];
    started_unix = 1723100000.;
    wall_seconds = 1.5;
    jobs = 2;
    counters;
    gauges;
    histograms;
    spans;
    paths =
      List.map
        (fun (n, c, t, mw, pw, jw) -> ("root;" ^ n, c, t, mw, pw, jw))
        spans;
    process = proc0 }

let fixed =
  snap
    ~counters:[ ("a.total", 2); ("b.total", 7) ]
    ~gauges:[ ("g.x", 1.5) ]
    ~histograms:[ ("h.lat", hist_a) ]
    ~spans:[ ("s.run", 3, 900L, 450, 30, 12) ]
    ()

(* --------------------------------------------------------- round trip *)

let test_roundtrip_bit_equal () =
  let bytes = to_string fixed in
  let reread = Obs.Snapshot.of_json (Obs.Json.parse bytes) in
  Alcotest.(check string) "re-serialize is bit-equal" bytes (to_string reread);
  Alcotest.(check string) "content hash survives round trip"
    (Obs.Snapshot.content_hash fixed)
    (Obs.Snapshot.content_hash reread)

let test_capture_roundtrip () =
  Obs.reset ();
  Obs.Counter.add (Obs.Counter.create "snapcap.events_total") 5;
  Obs.Gauge.set (Obs.Gauge.create "snapcap.gauge") 2.25;
  let h = Obs.Histogram.create ~buckets:[| 1.; 2. |] "snapcap.hist" in
  List.iter (Obs.Histogram.observe h) [ 0.5; 1.5; 3. ];
  Obs.Trace.with_span "snapcap.span" (fun () -> ());
  let s = Obs.Snapshot.capture () in
  let bytes = to_string s in
  let reread = Obs.Snapshot.of_json (Obs.Json.parse bytes) in
  Alcotest.(check string) "live capture round-trips bit-equal" bytes
    (to_string reread);
  Alcotest.(check bool) "counter captured" true
    (List.mem ("snapcap.events_total", 5) s.Obs.Snapshot.counters)

let test_write_load () =
  let path = Filename.temp_file "hetarch_snap" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Obs.Snapshot.write ~path fixed;
      let reread = Obs.Snapshot.load path in
      Alcotest.(check string) "write/load round trip" (to_string fixed)
        (to_string reread))

(* Pinned vectors: a serialization or hash change must be a deliberate
   schema bump, not an accident — these fail loudly on drift. *)
let test_pinned_content_hash () =
  Alcotest.(check string) "pinned content hash" "ba6040ca0402385d"
    (Obs.Snapshot.content_hash fixed);
  let empty = snap ~run_id:"00000000000000bb" () in
  Alcotest.(check string) "pinned empty-snapshot hash" "c916c79e831f0b30"
    (Obs.Snapshot.content_hash empty)

(* Older snapshots must still parse.  v2 predates trace-context propagation
   (no trace_id/span_id/parent_span_id in the run section); v1 additionally
   predates allocation accounting (no minor_w/promoted_w/major_w in the
   span/path aggregates).  Missing members default to ""/0. *)
let replace ~sub ~by s =
  let buf = Buffer.create (String.length s) in
  let n = String.length sub in
  let i = ref 0 in
  while !i <= String.length s - n do
    if String.sub s !i n = sub then begin
      Buffer.add_string buf by;
      i := !i + n
    end
    else begin
      Buffer.add_char buf s.[!i];
      incr i
    end
  done;
  Buffer.add_substring buf s !i (String.length s - !i);
  Buffer.contents buf

let strip_trace =
  replace
    ~sub:
      "\"trace_id\":\"0123456789abcdef\",\"span_id\":\"fedcba9876543210\",\"parent_span_id\":\"\","
    ~by:""

let test_v2_parse_defaults_trace () =
  let v2 =
    to_string fixed
    |> replace ~sub:"\"hetarch.snapshot/3\"" ~by:"\"hetarch.snapshot/2\""
    |> strip_trace
  in
  let s = Obs.Snapshot.of_json (Obs.Json.parse v2) in
  Alcotest.(check string) "v2 trace_id defaults to empty" ""
    s.Obs.Snapshot.trace_id;
  Alcotest.(check string) "v2 span_id defaults to empty" ""
    s.Obs.Snapshot.span_id;
  Alcotest.(check bool) "v2 spans parse with alloc intact" true
    (s.Obs.Snapshot.spans = [ ("s.run", 3, 900L, 450, 30, 12) ])

let test_v1_parse_defaults_alloc () =
  let v1 =
    to_string fixed
    |> replace ~sub:"\"hetarch.snapshot/3\"" ~by:"\"hetarch.snapshot/1\""
    |> strip_trace
    |> replace ~sub:",\"major_w\":12" ~by:""
    |> replace ~sub:"\"minor_w\":450," ~by:""
    |> replace ~sub:",\"promoted_w\":30" ~by:""
  in
  let s = Obs.Snapshot.of_json (Obs.Json.parse v1) in
  Alcotest.(check bool) "v1 spans parse, alloc defaults to 0" true
    (s.Obs.Snapshot.spans = [ ("s.run", 3, 900L, 0, 0, 0) ]);
  Alcotest.(check bool) "v1 paths parse, alloc defaults to 0" true
    (s.Obs.Snapshot.paths = [ ("root;s.run", 3, 900L, 0, 0, 0) ])

(* -------------------------------------------------------- merge algebra *)

let test_merge_sums_and_attribution () =
  let s1 =
    snap ~run_id:"0000000000000001" ~shard:"shard0/2"
      ~counters:[ ("x.total", 2) ]
      ~gauges:[ ("g", 1.) ]
      ~histograms:[ ("h", hist_a) ]
      ~spans:[ ("s", 1, 100L, 40, 3, 1) ]
      ()
  in
  let s2 =
    snap ~run_id:"0000000000000002" ~shard:"shard1/2"
      ~counters:[ ("x.total", 3); ("y.total", 5) ]
      ~gauges:[ ("g", 3.) ]
      ~histograms:[ ("h", hist_b) ]
      ~spans:[ ("s", 2, 250L, 60, 7, 9) ]
      ()
  in
  let doc =
    Obs.Json.parse (fleet_string (Obs.Merge.of_snapshots [ s1; s2 ]))
  in
  let mem path =
    List.fold_left
      (fun acc name -> Option.bind acc (Obs.Json.member name))
      (Some doc) path
  in
  Alcotest.(check bool) "counters sum" true
    (mem [ "counters"; "x.total" ] = Some (Obs.Json.Int 5)
    && mem [ "counters"; "y.total" ] = Some (Obs.Json.Int 5));
  Alcotest.(check bool) "span counts and totals sum" true
    (mem [ "spans"; "s"; "count" ] = Some (Obs.Json.Int 3)
    && mem [ "spans"; "s"; "total_ns" ] = Some (Obs.Json.Int 350));
  (* allocation aggregates re-fold under the same sum rule *)
  Alcotest.(check bool) "span alloc words sum" true
    (mem [ "spans"; "s"; "minor_w" ] = Some (Obs.Json.Int 100)
    && mem [ "spans"; "s"; "promoted_w" ] = Some (Obs.Json.Int 10)
    && mem [ "spans"; "s"; "major_w" ] = Some (Obs.Json.Int 10));
  Alcotest.(check bool) "path alloc words sum" true
    (mem [ "paths"; "root;s"; "minor_w" ] = Some (Obs.Json.Int 100));
  (* gauges keep per-source values, never a meaningless cross-process sum
     presented as one reading *)
  Alcotest.(check bool) "gauge n/min/max" true
    (mem [ "gauges"; "g"; "n" ] = Some (Obs.Json.Int 2)
    && mem [ "gauges"; "g"; "min" ] = Some (Obs.Json.Float 1.)
    && mem [ "gauges"; "g"; "max" ] = Some (Obs.Json.Float 3.));
  (* histogram buckets add; count/mean/M2 follow Chan's pairwise Welford:
     [2;4] + [6] -> count 3, mean 4, M2 8 *)
  let hf name = Option.map Obs.Json.to_float (mem [ "histograms"; "h"; name ]) in
  Alcotest.(check bool) "histogram bucket-merge" true
    (hf "count" = Some 3. && hf "mean" = Some 4. && hf "m2" = Some 8.
    && hf "min" = Some 2. && hf "max" = Some 6.);
  Alcotest.(check int) "two attributed runs" 2
    (match Obs.Json.member "attribution" doc with
    | Some (Obs.Json.List l) -> List.length l
    | _ -> -1)

let test_merge_bounds_mismatch_rejected () =
  let s1 = snap ~run_id:"0000000000000001" ~histograms:[ ("h", hist_a) ] () in
  let s2 =
    snap ~run_id:"0000000000000002"
      ~histograms:
        [ ("h", { hist_b with Obs.Snapshot.h_bounds = [| 5. |]; h_counts = [| 1 |] }) ]
      ()
  in
  Alcotest.check_raises "incompatible bucket bounds"
    (Failure "Obs.Merge: histogram h bucket bounds differ across snapshots")
    (fun () -> ignore (fleet_string (Obs.Merge.of_snapshots [ s1; s2 ])))

let test_merge_of_json_flattens_fleet () =
  let s1 = snap ~run_id:"0000000000000001" ~counters:[ ("c", 1) ] () in
  let s2 = snap ~run_id:"0000000000000002" ~counters:[ ("c", 2) ] () in
  let s3 = snap ~run_id:"0000000000000003" ~counters:[ ("c", 4) ] () in
  (* merge(merge(1,2), 3) via re-parsed fleet JSON = merge(1,2,3) *)
  let partial =
    Obs.Json.parse (fleet_string (Obs.Merge.of_snapshots [ s1; s2 ]))
  in
  let via_doc =
    Obs.Merge.union (Obs.Merge.of_json partial) (Obs.Merge.of_snapshots [ s3 ])
  in
  Alcotest.(check string) "fleet docs merge exactly"
    (fleet_string (Obs.Merge.of_snapshots [ s1; s2; s3 ]))
    (fleet_string via_doc)

(* qcheck: serialized-bytes merge laws on random snapshot triples.  Bucket
   bounds are fixed per histogram name so random snapshots are mergeable. *)
let gen_snapshot =
  let open QCheck.Gen in
  let name pool = oneofl pool in
  let counters =
    list_size (0 -- 3)
      (pair (name [ "c.a"; "c.b"; "c.c" ]) (0 -- 1000))
  in
  let gauges =
    list_size (0 -- 2)
      (pair (name [ "g.a"; "g.b" ]) (float_bound_inclusive 100.))
  in
  let hist bounds =
    let n = Array.length bounds in
    let* counts = array_size (return n) (0 -- 50) in
    let* overflow = 0 -- 10 in
    let total = Array.fold_left ( + ) overflow counts in
    let* mean = float_bound_inclusive 50. in
    let* m2 = float_bound_inclusive 10. in
    return
      { Obs.Snapshot.h_bounds = bounds;
        h_counts = counts;
        h_overflow = overflow;
        h_count = total;
        h_mean = (if total = 0 then 0. else mean);
        h_m2 = (if total = 0 then 0. else m2);
        h_min = (if total = 0 then infinity else 0.5);
        h_max = (if total = 0 then neg_infinity else mean +. 1.) }
  in
  let histograms =
    let* ha = hist [| 1.; 10. |] and* hb = hist [| 5. |] in
    oneofl [ []; [ ("h.a", ha) ]; [ ("h.a", ha); ("h.b", hb) ] ]
  in
  let spans =
    list_size (0 -- 3)
      (let* n = name [ "s.a"; "s.b" ]
       and* c = 1 -- 100
       and* t = 0 -- 100000
       and* mw = 0 -- 5000
       and* pw = 0 -- 200
       and* jw = 0 -- 100 in
       return (n, c, Int64.of_int t, mw, pw, jw))
  in
  let* id = int_range 1 0xfffff
  and* shard = oneofl [ ""; "shard0/2"; "shard1/2" ]
  and* counters = counters
  and* gauges = gauges
  and* histograms = histograms
  and* spans = spans in
  return
    (snap
       ~run_id:(Printf.sprintf "%016x" id)
       ~shard
       ~counters:(List.sort_uniq compare counters)
       ~gauges:(List.sort_uniq compare gauges)
       ~histograms ~spans ())

let arb_snapshot = QCheck.make ~print:to_string gen_snapshot

let one s = Obs.Merge.of_snapshots [ s ]

let qcheck_merge_commutative =
  QCheck.Test.make ~count:100 ~name:"merge commutative (bytes)"
    (QCheck.pair arb_snapshot arb_snapshot)
    (fun (a, b) ->
      fleet_string (Obs.Merge.union (one a) (one b))
      = fleet_string (Obs.Merge.union (one b) (one a)))

let qcheck_merge_associative =
  QCheck.Test.make ~count:100 ~name:"merge associative (bytes)"
    (QCheck.triple arb_snapshot arb_snapshot arb_snapshot)
    (fun (a, b, c) ->
      fleet_string
        (Obs.Merge.union (Obs.Merge.union (one a) (one b)) (one c))
      = fleet_string
          (Obs.Merge.union (one a) (Obs.Merge.union (one b) (one c))))

let qcheck_merge_idempotent =
  QCheck.Test.make ~count:100 ~name:"merge idempotent (dedup by hash)"
    arb_snapshot
    (fun a ->
      fleet_string (Obs.Merge.union (one a) (one a)) = fleet_string (one a))

(* ------------------------------------------------------------ registry *)

let with_tmp_dir f =
  let dir = Filename.temp_file "hetarch_reg" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  let rec rm path =
    if Sys.is_directory path then begin
      Array.iter (fun e -> rm (Filename.concat path e)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path
  in
  Fun.protect ~finally:(fun () -> try rm dir with Sys_error _ -> ()) (fun () -> f dir)

let test_registry_record_find_load () =
  with_tmp_dir (fun dir ->
      let s1 = snap ~run_id:"00000000000000aa" ~counters:[ ("c", 1) ] () in
      let s2 = snap ~run_id:"00000000000000ab" ~counters:[ ("c", 2) ] () in
      (match Obs.Registry.record ~dir s1 with
      | Some e ->
          Alcotest.(check string) "entry id" "00000000000000aa"
            e.Obs.Registry.e_run_id;
          Alcotest.(check string) "entry cmd" "collect threshold"
            e.Obs.Registry.e_cmd
      | None -> Alcotest.fail "record returned None with a directory");
      ignore (Obs.Registry.record ~dir s2);
      let entries = Obs.Registry.entries ~dir () in
      Alcotest.(check int) "two entries, append order" 2 (List.length entries);
      (* unambiguous prefix resolves, ambiguous raises, unknown is None *)
      (match Obs.Registry.find ~dir "00000000000000ab" with
      | Some e ->
          let reread = Obs.Registry.load ~dir e in
          Alcotest.(check string) "load round trip" (to_string s2)
            (to_string reread)
      | None -> Alcotest.fail "exact id not found");
      Alcotest.(check bool) "unknown prefix is None" true
        (Obs.Registry.find ~dir "ffff" = None);
      Alcotest.(check bool) "ambiguous prefix raises" true
        (match Obs.Registry.find ~dir "000000000000" with
        | exception Failure _ -> true
        | _ -> false))

let test_registry_torn_index_tail () =
  with_tmp_dir (fun dir ->
      let s1 = snap ~run_id:"00000000000000aa" () in
      ignore (Obs.Registry.record ~dir s1);
      (* a writer killed mid-append leaves a truncated final line *)
      let oc =
        open_out_gen [ Open_append ]
          0o644
          (Filename.concat dir "index.jsonl")
      in
      output_string oc "{\"run_id\":\"00000000000000ab\",\"sha";
      close_out oc;
      Alcotest.(check int) "torn tail skipped" 1
        (List.length (Obs.Registry.entries ~dir ())))

(* ------------------------------------------------------ trend watchdog *)

let test_trend_judge () =
  let history = [ [ ("m", 10.); ("n", 1.) ]; [ ("m", 12.) ]; [ ("m", 11.) ] ] in
  let verdicts =
    Obs.Trend.judge ~history [ ("m", 30.); ("n", 5.) ]
  in
  (match List.find (fun v -> v.Obs.Trend.v_metric = "m") verdicts with
  | v ->
      Alcotest.(check bool) "median of history" true (v.Obs.Trend.v_median = 11.);
      Alcotest.(check int) "sample count" 3 v.Obs.Trend.v_samples;
      Alcotest.(check bool) "excursion past median+MAD band flagged" true
        v.Obs.Trend.v_regression);
  (match List.find (fun v -> v.Obs.Trend.v_metric = "n") verdicts with
  | v ->
      Alcotest.(check bool) "thin history never flags" true
        ((not v.Obs.Trend.v_regression) && v.Obs.Trend.v_limit = infinity))

let test_trend_min_pct_floor () =
  (* identical history -> MAD 0; the min_pct floor keeps harmless jitter
     below median*(1+pct/100) from flagging *)
  let history = [ [ ("m", 100.) ]; [ ("m", 100.) ]; [ ("m", 100.) ] ] in
  let judge cur =
    (List.hd (Obs.Trend.judge ~min_pct:10. ~history [ ("m", cur) ]))
      .Obs.Trend.v_regression
  in
  Alcotest.(check bool) "within floor" false (judge 105.);
  Alcotest.(check bool) "past floor" true (judge 115.)

let test_trend_noise_floor () =
  let history = [ [ ("m", 100.) ]; [ ("m", 100.) ] ] in
  let v =
    List.hd
      (Obs.Trend.judge ~noise_floor_ns:1e6 ~history [ ("m", 500.) ])
  in
  Alcotest.(check bool) "sub-floor metrics never flag" false
    v.Obs.Trend.v_regression

let () =
  Alcotest.run "snapshot"
    [ ( "roundtrip",
        [ Alcotest.test_case "bit-equal reserialization" `Quick
            test_roundtrip_bit_equal;
          Alcotest.test_case "live capture" `Quick test_capture_roundtrip;
          Alcotest.test_case "write/load" `Quick test_write_load;
          Alcotest.test_case "pinned hashes" `Quick test_pinned_content_hash;
          Alcotest.test_case "v2 parse leniency" `Quick
            test_v2_parse_defaults_trace;
          Alcotest.test_case "v1 parse leniency" `Quick
            test_v1_parse_defaults_alloc ] );
      ( "merge",
        [ Alcotest.test_case "sums and attribution" `Quick
            test_merge_sums_and_attribution;
          Alcotest.test_case "bounds mismatch" `Quick
            test_merge_bounds_mismatch_rejected;
          Alcotest.test_case "fleet docs flatten" `Quick
            test_merge_of_json_flattens_fleet;
          QCheck_alcotest.to_alcotest qcheck_merge_commutative;
          QCheck_alcotest.to_alcotest qcheck_merge_associative;
          QCheck_alcotest.to_alcotest qcheck_merge_idempotent ] );
      ( "registry",
        [ Alcotest.test_case "record/find/load" `Quick
            test_registry_record_find_load;
          Alcotest.test_case "torn index tail" `Quick
            test_registry_torn_index_tail ] );
      ( "trend",
        [ Alcotest.test_case "median + MAD judgement" `Quick test_trend_judge;
          Alcotest.test_case "min-pct floor" `Quick test_trend_min_pct_floor;
          Alcotest.test_case "noise floor" `Quick test_trend_noise_floor ] ) ]
