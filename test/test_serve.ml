(* Serve daemon: request codec (malformed input -> structured errors, never
   a crash or hang), pinned request-hash wire vectors, warm-tier byte
   identity at any --jobs, and the end-to-end daemon contract — split
   socket reads, oversized bodies, and SIGTERM shutdown that leaves valid
   registry artifacts exactly once. *)

let parse_err line =
  match Serve.parse_request line with
  | Error e -> e
  | Ok _ -> Alcotest.failf "expected a parse error for %S" line

let parse_query line =
  match Serve.parse_request line with
  | Ok (Serve.Query q) -> q
  | Ok (Serve.Control _) -> Alcotest.failf "expected a query for %S" line
  | Error e -> Alcotest.failf "unexpected error %d (%s) for %S" e.Serve.code e.Serve.message line

(* ------------------------------------------------------ codec errors *)

let test_codec_errors () =
  let code line = (parse_err line).Serve.code in
  Alcotest.(check int) "malformed JSON" 400 (code "{nope");
  Alcotest.(check int) "trailing garbage" 400 (code "{\"kind\":\"ping\"} {}");
  Alcotest.(check int) "non-object body" 400 (code "[1,2,3]");
  Alcotest.(check int) "missing kind" 400 (code "{}");
  Alcotest.(check int) "non-string kind" 400 (code "{\"kind\":3}");
  Alcotest.(check int) "unknown kind" 404 (code "{\"kind\":\"frobnicate\"}");
  Alcotest.(check int) "unknown field" 400
    (code "{\"kind\":\"threshold\",\"distence\":5}");
  Alcotest.(check int) "wrong type" 400
    (code "{\"kind\":\"threshold\",\"distance\":\"five\"}");
  Alcotest.(check int) "out of range" 400
    (code "{\"kind\":\"threshold\",\"distance\":99}");
  Alcotest.(check int) "unknown code name" 400
    (code "{\"kind\":\"uec\",\"code\":\"NOPE\"}");
  Alcotest.(check int) "control kind with stray field" 400
    (code "{\"kind\":\"ping\",\"x\":1}");
  let oversized =
    Printf.sprintf "{\"kind\":\"threshold\",\"pad\":\"%s\"}"
      (String.make Serve.max_request_bytes 'x')
  in
  Alcotest.(check int) "oversized body" 413 (code oversized);
  (* error bodies are themselves parseable one-line JSON *)
  let body = Serve.error_body { Serve.code = 429; message = "queue full" } in
  (match Obs.Json.member "error" (Obs.Json.parse body) with
  | Some e ->
      Alcotest.(check int) "error code round-trips" 429
        (Obs.Json.to_int (Option.get (Obs.Json.member "code" e)))
  | None -> Alcotest.fail "error body without error object");
  Alcotest.(check bool) "error body is one line" false
    (String.contains body '\n')

(* ------------------------------------------------- request identity *)

let test_pinned_hashes () =
  (* Wire-compatibility vectors: these hashes key persisted responses, so
     a change here invalidates every warm store in the fleet.  Bump the
     protocol version tag when the identity scheme must change. *)
  List.iter
    (fun (line, expect) ->
      Alcotest.(check string) line expect (parse_query line).Serve.hash)
    [ ("{\"kind\":\"threshold\",\"shots\":16,\"seed\":1}", "7b1a24fa9b5a045b");
      ("{\"kind\":\"dse\"}", "4c5ff39bcead6a4c");
      ("{\"kind\":\"uec\",\"shots\":16}", "344c5ba2d5a97e4b");
      ("{\"kind\":\"distill\",\"shots\":16}", "3245442b42eda244") ]

let test_normalization () =
  let h line = (parse_query line).Serve.hash in
  Alcotest.(check string) "field order is irrelevant"
    (h "{\"kind\":\"threshold\",\"shots\":16,\"seed\":1}")
    (h "{\"kind\":\"threshold\",\"seed\":1,\"shots\":16}");
  Alcotest.(check string) "explicit defaults hash like omitted ones"
    (h "{\"kind\":\"threshold\",\"shots\":16,\"seed\":1}")
    (h "{\"kind\":\"threshold\",\"shots\":16,\"seed\":1,\"distance\":3,\"t_data\":1e-4}");
  Alcotest.(check string) "number spelling is canonicalized"
    (h "{\"kind\":\"uec\",\"ts\":0.05}")
    (h "{\"kind\":\"uec\",\"ts\":5e-2}");
  Alcotest.(check bool) "different parameters, different identity" false
    (h "{\"kind\":\"threshold\",\"shots\":16,\"seed\":1}"
    = h "{\"kind\":\"threshold\",\"shots\":16,\"seed\":2}")

(* ------------------------------------------- deterministic answers *)

let test_answer_bytes_jobs_invariant () =
  let q = parse_query "{\"kind\":\"threshold\",\"shots\":512,\"seed\":9}" in
  let saved = Parallel.jobs () in
  Parallel.set_jobs 1;
  let one = Serve.compute_answer q in
  Parallel.set_jobs 2;
  let two = Serve.compute_answer q in
  Parallel.set_jobs saved;
  Alcotest.(check string) "byte-identical at --jobs 1 and 2" one two;
  (* warm tier returns exactly the cached bytes *)
  Serve.cache_response q one;
  (match Serve.warm_answer q with
  | Some body -> Alcotest.(check string) "warm answer is byte-identical" one body
  | None -> Alcotest.fail "cached response not found in warm tier");
  Alcotest.(check string) "answer() serves the warm bytes" one (Serve.answer q)

let test_answer_matches_campaign_stream () =
  (* The serve answer must be byte-comparable with what a collect campaign
     would record for batch 0 of the same task at the same seed. *)
  let q = parse_query "{\"kind\":\"threshold\",\"shots\":256,\"seed\":5}" in
  let task =
    Surface_circuit.collect_task (Surface_circuit.default ~distance:3)
  in
  let expect =
    Collect.Task.sample task
      (Collect.batch_rng ~seed:5 ~id:(Collect.Task.id task) ~index:0)
      256
  in
  let body = Obs.Json.parse (Serve.compute_answer q) in
  Alcotest.(check int) "errors equal the campaign batch" expect
    (Obs.Json.to_int (Option.get (Obs.Json.member "errors" body)));
  Alcotest.(check string) "task id matches the campaign task"
    (Collect.Task.id task)
    (match Obs.Json.member "task" body with
    | Some (Obs.Json.String s) -> s
    | _ -> "")

(* ------------------------------------------------- live daemon tests *)

let with_tmp_dir f =
  let dir = Filename.temp_file "hetarch_serve" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  let rec rm path =
    if Sys.is_directory path then begin
      Array.iter (fun e -> rm (Filename.concat path e)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path
  in
  Fun.protect ~finally:(fun () -> try rm dir with Sys_error _ -> ()) (fun () -> f dir)

let hetarch_bin =
  Filename.concat
    (Filename.dirname (Filename.dirname Sys.executable_name))
    (Filename.concat "bin" "main.exe")

let spawn_daemon ?(obs_dir = None) ~socket () =
  let argv =
    [| hetarch_bin; "serve"; "--socket"; socket |]
  in
  let argv =
    match obs_dir with
    | None -> argv
    | Some d -> Array.append argv [| "--obs-dir"; d |]
  in
  let devnull = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0o644 in
  let pid =
    Fun.protect
      ~finally:(fun () -> Unix.close devnull)
      (fun () ->
        Unix.create_process hetarch_bin argv Unix.stdin devnull devnull)
  in
  (* wait until the daemon answers rather than sleeping *)
  let pong =
    Serve.request ~retry_for:10. (Serve.Unix_path socket) "{\"kind\":\"ping\"}"
  in
  Alcotest.(check bool) "daemon answers ping" true
    (match Obs.Json.member "ok" (Obs.Json.parse pong) with
    | Some (Obs.Json.Bool true) -> true
    | _ -> false);
  pid

let connect_unix socket =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX socket);
  fd

let send_all fd s =
  let b = Bytes.of_string s in
  let n = Bytes.length b in
  let off = ref 0 in
  while !off < n do
    off := !off + Unix.write fd b !off (n - !off)
  done

let recv_line fd =
  let buf = Buffer.create 256 in
  let chunk = Bytes.create 1024 in
  let rec go () =
    match Unix.read fd chunk 0 (Bytes.length chunk) with
    | 0 -> Alcotest.fail "connection closed before a response line"
    | n -> (
        Buffer.add_subbytes buf chunk 0 n;
        let s = Buffer.contents buf in
        match String.index_opt s '\n' with
        | Some i -> String.sub s 0 i
        | None -> go ())
  in
  go ()

let test_split_reads_and_pipelining () =
  with_tmp_dir (fun dir ->
      let socket = Filename.concat dir "serve.sock" in
      let pid = spawn_daemon ~socket () in
      Fun.protect
        ~finally:(fun () ->
          (try Unix.kill pid Sys.sigterm with Unix.Unix_error _ -> ());
          ignore (Unix.waitpid [] pid))
        (fun () ->
          (* one request delivered byte-dribbled across many writes *)
          let fd = connect_unix socket in
          let line = "{\"kind\":\"threshold\",\"shots\":64,\"seed\":3}\n" in
          String.iter
            (fun ch ->
              send_all fd (String.make 1 ch);
              if ch = ',' then ignore (Unix.select [] [] [] 0.01))
            line;
          let split_resp = recv_line fd in
          Unix.close fd;
          (* the same request in one piece, plus pipelined control traffic
             on a single connection *)
          let fd = connect_unix socket in
          send_all fd (line ^ "{\"kind\":\"ping\"}\n");
          let whole_resp = recv_line fd in
          let pong = recv_line fd in
          Unix.close fd;
          Alcotest.(check string)
            "split delivery and whole delivery answer byte-identically"
            whole_resp split_resp;
          Alcotest.(check bool) "pipelined ping answered" true
            (match Obs.Json.member "ok" (Obs.Json.parse pong) with
            | Some (Obs.Json.Bool true) -> true
            | _ -> false);
          (* an over-long line without a newline is answered 413 and the
             connection closed — the daemon neither crashes nor hangs *)
          let fd = connect_unix socket in
          send_all fd (String.make (Serve.max_request_bytes + 1024) 'j');
          let resp = recv_line fd in
          (match Obs.Json.member "error" (Obs.Json.parse resp) with
          | Some e ->
              Alcotest.(check int) "oversized stream -> 413" 413
                (Obs.Json.to_int (Option.get (Obs.Json.member "code" e)))
          | None -> Alcotest.fail "expected an error response");
          Unix.close fd;
          (* daemon survives all of the above *)
          let pong =
            Serve.request (Serve.Unix_path socket) "{\"kind\":\"ping\"}"
          in
          Alcotest.(check bool) "daemon still alive" true
            (String.length pong > 0)))

let count_final_records path =
  Obs.fold_jsonl path
    (fun acc j ->
      match Obs.Json.member "final" j with
      | Some (Obs.Json.Bool true) -> acc + 1
      | _ -> acc)
    0

let test_sigterm_finalizes_once () =
  with_tmp_dir (fun dir ->
      let socket = Filename.concat dir "serve.sock" in
      let obs = Filename.concat dir "obs" in
      let pid = spawn_daemon ~obs_dir:(Some obs) ~socket () in
      Unix.kill pid Sys.sigterm;
      (match Unix.waitpid [] pid with
      | _, Unix.WEXITED 0 -> ()
      | _, Unix.WEXITED c -> Alcotest.failf "daemon exited %d on SIGTERM" c
      | _ -> Alcotest.fail "daemon killed by signal instead of exiting");
      Alcotest.(check bool) "socket file removed" false (Sys.file_exists socket);
      (* the registry holds exactly one snapshot for the run *)
      let index = Filename.concat obs "index.jsonl" in
      let entries = Obs.fold_jsonl index (fun n _ -> n + 1) 0 in
      Alcotest.(check int) "one registry entry" 1 entries;
      (* and the telemetry stream closed with exactly one final record *)
      let tdir = Filename.concat obs "telemetry" in
      let streams = Sys.readdir tdir in
      Alcotest.(check int) "one telemetry stream" 1 (Array.length streams);
      Alcotest.(check int) "exactly one final telemetry record" 1
        (count_final_records (Filename.concat tdir streams.(0))))

let () =
  Alcotest.run "serve"
    [ ( "codec",
        [ Alcotest.test_case "structured errors" `Quick test_codec_errors;
          Alcotest.test_case "pinned request-hash vectors" `Quick
            test_pinned_hashes;
          Alcotest.test_case "normalization" `Quick test_normalization ] );
      ( "answers",
        [ Alcotest.test_case "byte identity across --jobs and tiers" `Quick
            test_answer_bytes_jobs_invariant;
          Alcotest.test_case "matches campaign batch stream" `Quick
            test_answer_matches_campaign_stream ] );
      ( "daemon",
        [ Alcotest.test_case "split reads, pipelining, oversized" `Quick
            test_split_reads_and_pipelining;
          Alcotest.test_case "SIGTERM finalizes exactly once" `Quick
            test_sigterm_finalizes_once ] ) ]
