(* Tests for the util substrate: RNG, stats, heap, union-find, bitvec,
   table rendering. *)

let float_eq ?(eps = 1e-9) a b = Float.abs (a -. b) <= eps

(* ------------------------------------------------------------------ Rng *)

let test_rng_determinism () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_rng_seed_sensitivity () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Rng.bits64 a = Rng.bits64 b then incr same
  done;
  Alcotest.(check bool) "different seeds differ" true (!same < 4)

let test_rng_uniform_range () =
  let r = Rng.create 7 in
  for _ = 1 to 10_000 do
    let x = Rng.uniform r in
    Alcotest.(check bool) "in [0,1)" true (x >= 0. && x < 1.)
  done

let test_rng_int_range () =
  let r = Rng.create 9 in
  let counts = Array.make 10 0 in
  for _ = 1 to 50_000 do
    let v = Rng.int r 10 in
    counts.(v) <- counts.(v) + 1
  done;
  Array.iteri
    (fun i c ->
      Alcotest.(check bool)
        (Printf.sprintf "bucket %d roughly uniform" i)
        true
        (c > 4_000 && c < 6_000))
    counts

let test_rng_int_invalid () =
  let r = Rng.create 3 in
  Alcotest.check_raises "non-positive bound" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int r 0))

let test_rng_split_independent () =
  let parent = Rng.create 11 in
  let child = Rng.split parent in
  let matches = ref 0 in
  for _ = 1 to 64 do
    if Rng.bits64 parent = Rng.bits64 child then incr matches
  done;
  Alcotest.(check bool) "split streams independent" true (!matches < 4)

let test_rng_copy () =
  let a = Rng.create 5 in
  ignore (Rng.bits64 a);
  let b = Rng.copy a in
  Alcotest.(check int64) "copy continues identically" (Rng.bits64 a) (Rng.bits64 b)

let test_rng_exponential_mean () =
  let r = Rng.create 13 in
  let n = 100_000 in
  let acc = ref 0. in
  for _ = 1 to n do
    acc := !acc +. Rng.exponential r 2.0
  done;
  let mean = !acc /. float_of_int n in
  Alcotest.(check bool) "Exp(2) mean ~ 0.5" true (Float.abs (mean -. 0.5) < 0.01)

let test_rng_poisson_mean () =
  let r = Rng.create 17 in
  let n = 20_000 in
  let acc = ref 0 in
  for _ = 1 to n do
    acc := !acc + Rng.poisson r 4.0
  done;
  let mean = float_of_int !acc /. float_of_int n in
  Alcotest.(check bool) "Poisson(4) mean ~ 4" true (Float.abs (mean -. 4.0) < 0.1)

let test_rng_poisson_large_lambda () =
  let r = Rng.create 23 in
  let n = 5_000 in
  let acc = ref 0 in
  for _ = 1 to n do
    acc := !acc + Rng.poisson r 1000.
  done;
  let mean = float_of_int !acc /. float_of_int n in
  Alcotest.(check bool) "Poisson(1000) mean within 2%" true (Float.abs (mean -. 1000.) < 20.)

let test_rng_bernoulli () =
  let r = Rng.create 29 in
  let hits = ref 0 in
  let n = 50_000 in
  for _ = 1 to n do
    if Rng.bernoulli r 0.3 then incr hits
  done;
  let p = float_of_int !hits /. float_of_int n in
  Alcotest.(check bool) "p=0.3" true (Float.abs (p -. 0.3) < 0.01)

let test_rng_categorical () =
  let r = Rng.create 31 in
  let w = [| 1.; 2.; 7. |] in
  let counts = Array.make 3 0 in
  let n = 50_000 in
  for _ = 1 to n do
    let i = Rng.categorical r w in
    counts.(i) <- counts.(i) + 1
  done;
  let frac i = float_of_int counts.(i) /. float_of_int n in
  Alcotest.(check bool) "w0" true (Float.abs (frac 0 -. 0.1) < 0.01);
  Alcotest.(check bool) "w1" true (Float.abs (frac 1 -. 0.2) < 0.015);
  Alcotest.(check bool) "w2" true (Float.abs (frac 2 -. 0.7) < 0.015)

let test_rng_shuffle_permutation () =
  let r = Rng.create 37 in
  let a = Array.init 50 Fun.id in
  Rng.shuffle r a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is a permutation" (Array.init 50 Fun.id) sorted

let test_rng_gaussian_moments () =
  let r = Rng.create 41 in
  let n = 100_000 in
  let acc = ref 0. and acc2 = ref 0. in
  for _ = 1 to n do
    let x = Rng.gaussian r in
    acc := !acc +. x;
    acc2 := !acc2 +. (x *. x)
  done;
  let mean = !acc /. float_of_int n in
  let var = (!acc2 /. float_of_int n) -. (mean *. mean) in
  Alcotest.(check bool) "mean ~ 0" true (Float.abs mean < 0.02);
  Alcotest.(check bool) "var ~ 1" true (Float.abs (var -. 1.) < 0.03)

(* ---------------------------------------------------------------- Stats *)

let test_stats_mean_var () =
  let xs = [| 1.; 2.; 3.; 4.; 5. |] in
  Alcotest.(check bool) "mean" true (float_eq (Stats.mean xs) 3.);
  Alcotest.(check bool) "variance" true (float_eq (Stats.variance xs) 2.5);
  Alcotest.(check bool) "stddev" true (float_eq (Stats.stddev xs) (sqrt 2.5))

let test_stats_empty () =
  Alcotest.(check bool) "mean empty" true (float_eq (Stats.mean [||]) 0.);
  Alcotest.(check bool) "var single" true (float_eq (Stats.variance [| 3. |]) 0.)

let test_stats_wilson () =
  let lo, hi = Stats.wilson_interval ~successes:50 ~trials:100 ~z:1.96 in
  Alcotest.(check bool) "contains p-hat" true (lo < 0.5 && hi > 0.5);
  Alcotest.(check bool) "reasonable width" true (hi -. lo > 0.1 && hi -. lo < 0.3);
  let lo0, hi0 = Stats.wilson_interval ~successes:0 ~trials:100 ~z:1.96 in
  Alcotest.(check bool) "zero successes lower bound" true (float_eq lo0 0.);
  Alcotest.(check bool) "zero successes upper bound positive" true (hi0 > 0.)

let test_stats_percentile () =
  let xs = [| 5.; 1.; 3.; 2.; 4. |] in
  Alcotest.(check bool) "p0" true (float_eq (Stats.percentile xs 0.) 1.);
  Alcotest.(check bool) "p50" true (float_eq (Stats.percentile xs 50.) 3.);
  Alcotest.(check bool) "p100" true (float_eq (Stats.percentile xs 100.) 5.)

let test_stats_histogram () =
  let xs = [| 0.1; 0.2; 0.5; 0.9; -1.; 2. |] in
  let h = Stats.histogram ~lo:0. ~hi:1. ~bins:2 xs in
  Alcotest.(check (array int)) "clamped histogram" [| 3; 3 |] h

let test_stats_running () =
  let r = Stats.running_create () in
  List.iter (Stats.running_add r) [ 1.; 2.; 3.; 4.; 5. ];
  Alcotest.(check int) "count" 5 (Stats.running_count r);
  Alcotest.(check bool) "mean" true (float_eq (Stats.running_mean r) 3.);
  Alcotest.(check bool) "variance" true (float_eq (Stats.running_variance r) 2.5)

(* ----------------------------------------------------------------- Heap *)

let test_heap_ordering () =
  let h = Heap.create () in
  List.iter (fun p -> Heap.push h p (int_of_float p)) [ 5.; 1.; 4.; 2.; 3. ];
  let order = ref [] in
  let rec drain () =
    match Heap.pop h with
    | None -> ()
    | Some (_, v) ->
        order := v :: !order;
        drain ()
  in
  drain ();
  Alcotest.(check (list int)) "sorted ascending" [ 1; 2; 3; 4; 5 ] (List.rev !order)

let test_heap_peek_empty () =
  let h : int Heap.t = Heap.create () in
  Alcotest.(check bool) "empty" true (Heap.is_empty h);
  Alcotest.(check bool) "peek none" true (Heap.peek h = None);
  Alcotest.(check bool) "pop none" true (Heap.pop h = None)

let test_heap_random_agrees_with_sort () =
  let r = Rng.create 53 in
  let h = Heap.create () in
  let prios = Array.init 500 (fun _ -> Rng.uniform r) in
  Array.iteri (fun i p -> Heap.push h p i) prios;
  let sorted = Array.copy prios in
  Array.sort compare sorted;
  Array.iter
    (fun expected ->
      match Heap.pop h with
      | None -> Alcotest.fail "heap drained early"
      | Some (p, _) -> Alcotest.(check bool) "min order" true (float_eq p expected))
    sorted

let test_heap_clear () =
  let h = Heap.create () in
  Heap.push h 1. 1;
  Heap.clear h;
  Alcotest.(check bool) "cleared" true (Heap.is_empty h)

(* ----------------------------------------------------------- Union_find *)

let test_uf_basic () =
  let uf = Union_find.create 6 in
  ignore (Union_find.union uf 0 1);
  ignore (Union_find.union uf 2 3);
  Alcotest.(check bool) "0~1" true (Union_find.same uf 0 1);
  Alcotest.(check bool) "0!~2" false (Union_find.same uf 0 2);
  ignore (Union_find.union uf 1 3);
  Alcotest.(check bool) "0~3 after merge" true (Union_find.same uf 0 3);
  Alcotest.(check int) "sizes" 4 (Union_find.size uf 0);
  Alcotest.(check int) "set count" 3 (Union_find.count_sets uf)

let test_uf_self_union () =
  let uf = Union_find.create 3 in
  ignore (Union_find.union uf 1 1);
  Alcotest.(check int) "unchanged" 3 (Union_find.count_sets uf)

(* --------------------------------------------------------------- Bitvec *)

let test_bitvec_set_get () =
  let b = Bitvec.create 100 in
  Bitvec.set b 0 true;
  Bitvec.set b 63 true;
  Bitvec.set b 64 true;
  Bitvec.set b 99 true;
  Alcotest.(check bool) "bit 0" true (Bitvec.get b 0);
  Alcotest.(check bool) "bit 63 (word boundary)" true (Bitvec.get b 63);
  Alcotest.(check bool) "bit 64" true (Bitvec.get b 64);
  Alcotest.(check bool) "bit 99" true (Bitvec.get b 99);
  Alcotest.(check bool) "bit 50 clear" false (Bitvec.get b 50);
  Alcotest.(check int) "popcount" 4 (Bitvec.popcount b)

let test_bitvec_xor () =
  let a = Bitvec.create 70 and b = Bitvec.create 70 in
  Bitvec.set a 5 true;
  Bitvec.set a 65 true;
  Bitvec.set b 5 true;
  Bitvec.set b 30 true;
  Bitvec.xor_into ~dst:a b;
  Alcotest.(check bool) "5 cancels" false (Bitvec.get a 5);
  Alcotest.(check bool) "30 appears" true (Bitvec.get a 30);
  Alcotest.(check bool) "65 stays" true (Bitvec.get a 65);
  Alcotest.(check int) "popcount 2" 2 (Bitvec.popcount a)

let test_bitvec_and_popcount () =
  let a = Bitvec.create 128 and b = Bitvec.create 128 in
  List.iter (fun i -> Bitvec.set a i true) [ 1; 2; 3; 100 ];
  List.iter (fun i -> Bitvec.set b i true) [ 2; 3; 4; 100 ];
  Alcotest.(check int) "overlap" 3 (Bitvec.and_popcount a b)

let test_bitvec_iter_set () =
  let b = Bitvec.create 80 in
  List.iter (fun i -> Bitvec.set b i true) [ 3; 62; 63; 79 ];
  let seen = ref [] in
  Bitvec.iter_set b (fun i -> seen := i :: !seen);
  Alcotest.(check (list int)) "indices in order" [ 3; 62; 63; 79 ] (List.rev !seen)

let test_bitvec_flip_clear () =
  let b = Bitvec.create 10 in
  Bitvec.flip b 4;
  Alcotest.(check bool) "flip on" true (Bitvec.get b 4);
  Bitvec.flip b 4;
  Alcotest.(check bool) "flip off" false (Bitvec.get b 4);
  Bitvec.set b 1 true;
  Bitvec.clear b;
  Alcotest.(check bool) "cleared" true (Bitvec.is_zero b)

let test_bitvec_bounds () =
  let b = Bitvec.create 10 in
  Alcotest.check_raises "oob get" (Invalid_argument "Bitvec: index out of bounds")
    (fun () -> ignore (Bitvec.get b 10))

let test_bitvec_word_kernels () =
  let n = 130 in
  let a = Bitvec.create n and b = Bitvec.create n and dst = Bitvec.create n in
  List.iter (fun i -> Bitvec.set a i true) [ 0; 62; 63; 100 ];
  List.iter (fun i -> Bitvec.set b i true) [ 0; 63; 101; 129 ];
  Bitvec.xor_words ~dst a b;
  List.iter
    (fun (i, want) ->
      Alcotest.(check bool) (Printf.sprintf "xor_words bit %d" i) want (Bitvec.get dst i))
    [ (0, false); (62, true); (63, false); (100, true); (101, true); (129, true) ];
  Bitvec.or_into ~dst a;
  Alcotest.(check bool) "or_into bit 0" true (Bitvec.get dst 0);
  Bitvec.andnot_into ~dst b;
  Alcotest.(check bool) "andnot clears 129" false (Bitvec.get dst 129);
  Alcotest.(check bool) "andnot keeps 62" true (Bitvec.get dst 62);
  Bitvec.and_into ~dst a;
  Bitvec.andnot_into ~dst a;
  Alcotest.(check bool) "x land (lnot x) = 0" true (Bitvec.is_zero dst)

let test_bitvec_set_all () =
  (* 70 bits spans a partial top word; popcount must stay exact. *)
  let b = Bitvec.create 70 in
  Bitvec.set_all b;
  Alcotest.(check int) "popcount = n" 70 (Bitvec.popcount b);
  Alcotest.(check bool) "last bit" true (Bitvec.get b 69)

let test_bitvec_random_into_stats () =
  let rng = Rng.create 99 in
  let n = 20_000 in
  let b = Bitvec.create n in
  List.iter
    (fun p ->
      Bitvec.random_into rng b ~p;
      let density = float_of_int (Bitvec.popcount b) /. float_of_int n in
      Alcotest.(check bool)
        (Printf.sprintf "density ~ %g (got %g)" p density)
        true
        (Float.abs (density -. p) < 0.02))
    [ 0.; 0.01; 0.1; 0.5; 0.9; 0.99; 1. ]

let test_bitvec_random_into_invariant () =
  (* Whole-word fills must not leak bits past n: popcount of the complement
     path and equality semantics rely on zeroed padding. *)
  let rng = Rng.create 4 in
  let b = Bitvec.create 65 in
  for _ = 1 to 50 do
    Bitvec.random_into rng b ~p:0.5;
    Alcotest.(check bool) "popcount <= n" true (Bitvec.popcount b <= 65);
    Bitvec.random_into rng b ~p:0.97;
    Alcotest.(check bool) "dense popcount <= n" true (Bitvec.popcount b <= 65)
  done

(* ------------------------------------------------------------- Parallel *)

let test_parallel_run_order () =
  let tasks = Array.init 37 (fun i () -> i * i) in
  let expect = Array.init 37 (fun i -> i * i) in
  Alcotest.(check (array int)) "jobs=1" expect (Parallel.run ~jobs:1 tasks);
  Alcotest.(check (array int)) "jobs=4" expect (Parallel.run ~jobs:4 tasks)

let test_parallel_exception () =
  Alcotest.check_raises "task failure propagates" (Failure "boom") (fun () ->
      ignore
        (Parallel.run ~jobs:3
           (Array.init 8 (fun i () -> if i = 5 then failwith "boom" else i))))

let test_parallel_monte_carlo_deterministic () =
  (* The tentpole contract: same seed => identical result at any job count,
     including a non-multiple-of-chunk shot total. *)
  let f rng nshots =
    let acc = ref 0 in
    for _ = 1 to nshots do
      if Rng.bernoulli rng 0.3 then incr acc
    done;
    !acc
  in
  let count jobs =
    Parallel.monte_carlo_count ~jobs ~rng:(Rng.create 42) ~shots:1000 f
  in
  let c1 = count 1 in
  Alcotest.(check int) "jobs=2 identical" c1 (count 2);
  Alcotest.(check int) "jobs=4 identical" c1 (count 4);
  Alcotest.(check bool) "plausible count" true (c1 > 200 && c1 < 400)

let test_parallel_monte_carlo_covers_all_shots () =
  let shots = 1000 in
  let seen =
    Parallel.monte_carlo ~jobs:3 ~rng:(Rng.create 1) ~shots ~init:0 ~merge:( + )
      (fun _rng nshots -> nshots)
  in
  Alcotest.(check int) "chunk sizes sum to shots" shots seen

let test_parallel_map_list () =
  Alcotest.(check (list int)) "order preserved" [ 2; 4; 6; 8 ]
    (Parallel.map_list ~jobs:2 (fun x -> 2 * x) [ 1; 2; 3; 4 ])

let test_parallel_set_jobs () =
  let saved = Parallel.jobs () in
  Parallel.set_jobs 3;
  Alcotest.(check int) "set_jobs visible" 3 (Parallel.jobs ());
  Parallel.set_jobs saved;
  Alcotest.check_raises "jobs < 1 rejected"
    (Invalid_argument "Parallel.set_jobs: jobs must be >= 1") (fun () ->
      Parallel.set_jobs 0)

(* -------------------------------------------------------------- Tableio *)

let test_table_render () =
  let s = Tableio.render ~header:[ "a"; "bb" ] [ [ "1"; "2" ]; [ "10"; "20" ] ] in
  let lines = String.split_on_char '\n' s in
  Alcotest.(check int) "4 lines" 4 (List.length lines);
  List.iter
    (fun l ->
      Alcotest.(check int) "equal widths" (String.length (List.hd lines)) (String.length l))
    lines

let test_table_pads_short_rows () =
  let s = Tableio.render ~header:[ "a"; "b"; "c" ] [ [ "1" ] ] in
  Alcotest.(check bool) "renders" true (String.length s > 0)

let contains_substring haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec scan i = i + nl <= hl && (String.sub haystack i nl = needle || scan (i + 1)) in
  scan 0

let test_csv_quoting () =
  let s = Tableio.csv ~header:[ "x" ] [ [ "a,b" ]; [ "say \"hi\"" ] ] in
  Alcotest.(check bool) "comma field quoted" true (contains_substring s "\"a,b\"");
  Alcotest.(check bool) "quote doubled" true (contains_substring s "\"say \"\"hi\"\"\"")

(* ----------------------------------------------------------------- Plot *)

let test_spark () =
  Alcotest.(check string) "empty" "" (Plot.spark []);
  let s = Plot.spark [ 0.; 1.; 2.; 3. ] in
  Alcotest.(check bool) "renders 4 glyphs" true (String.length s > 0);
  (* constant series renders without dividing by zero *)
  Alcotest.(check bool) "constant ok" true (String.length (Plot.spark [ 5.; 5. ]) > 0)

let test_plot_lines_basic () =
  let s =
    Plot.lines ~width:30 ~height:8
      ~series:[ ("a", [ (0., 0.); (1., 1.); (2., 4.) ]); ("b", [ (0., 4.); (2., 0.) ]) ]
      ()
  in
  Alcotest.(check bool) "contains legend a" true (String.length s > 0);
  let has c = String.contains s c in
  Alcotest.(check bool) "glyph *" true (has '*');
  Alcotest.(check bool) "glyph +" true (has '+')

let test_plot_lines_empty_and_nonfinite () =
  Alcotest.(check string) "no data" "(no data)" (Plot.lines ~series:[ ("x", []) ] ());
  let s = Plot.lines ~series:[ ("x", [ (0., Float.nan); (1., 2.) ]) ] () in
  Alcotest.(check bool) "nan skipped" true (String.length s > 0)

let test_plot_logy_drops_nonpositive () =
  let s = Plot.lines ~logy:true ~series:[ ("x", [ (0., 0.); (1., 10.); (2., 100.) ]) ] () in
  Alcotest.(check bool) "renders" true (String.length s > 0)

(* qcheck properties *)

let prop_heap_sorted =
  QCheck.Test.make ~name:"heap pops in priority order" ~count:200
    QCheck.(list (float_bound_inclusive 1000.))
    (fun prios ->
      let h = Heap.create () in
      List.iteri (fun i p -> Heap.push h p i) prios;
      let rec drain last =
        match Heap.pop h with
        | None -> true
        | Some (p, _) -> p >= last && drain p
      in
      drain neg_infinity)

let prop_bitvec_xor_involution =
  QCheck.Test.make ~name:"xor twice is identity" ~count:200
    QCheck.(pair (int_bound 200) (list (int_bound 200)))
    (fun (n, idxs) ->
      let n = n + 1 in
      let a = Bitvec.create n and b = Bitvec.create n in
      List.iter (fun i -> Bitvec.set b (i mod n) true) idxs;
      let before = Bitvec.to_string a in
      Bitvec.xor_into ~dst:a b;
      Bitvec.xor_into ~dst:a b;
      String.equal before (Bitvec.to_string a))

let prop_uf_transitive =
  QCheck.Test.make ~name:"union-find transitivity" ~count:100
    QCheck.(list (pair (int_bound 30) (int_bound 30)))
    (fun pairs ->
      let uf = Union_find.create 31 in
      List.iter (fun (a, b) -> ignore (Union_find.union uf a b)) pairs;
      List.for_all
        (fun (a, b) ->
          Union_find.same uf a b)
        pairs)

(* --------------------------------------------------------- content hash *)

let test_content_hash_pinned () =
  (* Pin concrete values: the hash feeds persistent store keys and the
     collect ledger's task identities, so any change to the absorption or
     finalization breaks every store and ledger on disk.  These must never
     change (see Content_hash's interface). *)
  Alcotest.(check string) "empty string" "c3ef85611eb0dfce"
    (Content_hash.hash_hex "");
  Alcotest.(check string) "abc" "36b4ab7a96d69856" (Content_hash.hash_hex "abc");
  Alcotest.(check string) "components pinned" "071b41bec1a39260"
    (Content_hash.of_components [ "alpha"; "beta"; "gamma" ])

let test_content_hash_canonical_injective () =
  (* Length-prefixing means concatenation ambiguities hash differently. *)
  Alcotest.(check bool) "ab+c vs a+bc" false
    (Content_hash.of_components [ "ab"; "c" ]
    = Content_hash.of_components [ "a"; "bc" ]);
  Alcotest.(check bool) "split vs joined" false
    (Content_hash.of_components [ "ab" ] = Content_hash.of_components [ "a"; "b" ]);
  Alcotest.(check bool) "order matters" false
    (Content_hash.of_components [ "a"; "b" ] = Content_hash.of_components [ "b"; "a" ])

let prop_stats_running_matches_batch =
  QCheck.Test.make ~name:"running stats match batch stats" ~count:100
    QCheck.(list_of_size (Gen.int_range 2 100) (float_bound_inclusive 100.))
    (fun xs ->
      let arr = Array.of_list xs in
      let r = Stats.running_create () in
      Array.iter (Stats.running_add r) arr;
      Float.abs (Stats.running_mean r -. Stats.mean arr) < 1e-6
      && Float.abs (Stats.running_variance r -. Stats.variance arr) < 1e-6)

let () =
  let qc = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "util"
    [ ( "rng",
        [ Alcotest.test_case "determinism" `Quick test_rng_determinism;
          Alcotest.test_case "seed sensitivity" `Quick test_rng_seed_sensitivity;
          Alcotest.test_case "uniform range" `Quick test_rng_uniform_range;
          Alcotest.test_case "int range" `Quick test_rng_int_range;
          Alcotest.test_case "int invalid" `Quick test_rng_int_invalid;
          Alcotest.test_case "split independence" `Quick test_rng_split_independent;
          Alcotest.test_case "copy" `Quick test_rng_copy;
          Alcotest.test_case "exponential mean" `Quick test_rng_exponential_mean;
          Alcotest.test_case "poisson mean" `Quick test_rng_poisson_mean;
          Alcotest.test_case "poisson large lambda" `Quick test_rng_poisson_large_lambda;
          Alcotest.test_case "bernoulli" `Quick test_rng_bernoulli;
          Alcotest.test_case "categorical" `Quick test_rng_categorical;
          Alcotest.test_case "shuffle permutation" `Quick test_rng_shuffle_permutation;
          Alcotest.test_case "gaussian moments" `Quick test_rng_gaussian_moments ] );
      ( "stats",
        [ Alcotest.test_case "mean/var" `Quick test_stats_mean_var;
          Alcotest.test_case "empty" `Quick test_stats_empty;
          Alcotest.test_case "wilson" `Quick test_stats_wilson;
          Alcotest.test_case "percentile" `Quick test_stats_percentile;
          Alcotest.test_case "histogram" `Quick test_stats_histogram;
          Alcotest.test_case "running" `Quick test_stats_running ] );
      ( "heap",
        [ Alcotest.test_case "ordering" `Quick test_heap_ordering;
          Alcotest.test_case "peek/pop empty" `Quick test_heap_peek_empty;
          Alcotest.test_case "random vs sort" `Quick test_heap_random_agrees_with_sort;
          Alcotest.test_case "clear" `Quick test_heap_clear ] );
      ( "union_find",
        [ Alcotest.test_case "basic" `Quick test_uf_basic;
          Alcotest.test_case "self union" `Quick test_uf_self_union ] );
      ( "bitvec",
        [ Alcotest.test_case "set/get" `Quick test_bitvec_set_get;
          Alcotest.test_case "xor" `Quick test_bitvec_xor;
          Alcotest.test_case "and popcount" `Quick test_bitvec_and_popcount;
          Alcotest.test_case "iter_set" `Quick test_bitvec_iter_set;
          Alcotest.test_case "flip/clear" `Quick test_bitvec_flip_clear;
          Alcotest.test_case "bounds" `Quick test_bitvec_bounds;
          Alcotest.test_case "word kernels" `Quick test_bitvec_word_kernels;
          Alcotest.test_case "set_all" `Quick test_bitvec_set_all;
          Alcotest.test_case "random_into stats" `Quick test_bitvec_random_into_stats;
          Alcotest.test_case "random_into invariant" `Quick
            test_bitvec_random_into_invariant ] );
      ( "parallel",
        [ Alcotest.test_case "run order" `Quick test_parallel_run_order;
          Alcotest.test_case "exception" `Quick test_parallel_exception;
          Alcotest.test_case "monte carlo deterministic" `Quick
            test_parallel_monte_carlo_deterministic;
          Alcotest.test_case "covers all shots" `Quick
            test_parallel_monte_carlo_covers_all_shots;
          Alcotest.test_case "map_list" `Quick test_parallel_map_list;
          Alcotest.test_case "set_jobs" `Quick test_parallel_set_jobs ] );
      ( "tableio",
        [ Alcotest.test_case "render" `Quick test_table_render;
          Alcotest.test_case "short rows" `Quick test_table_pads_short_rows;
          Alcotest.test_case "csv quoting" `Quick test_csv_quoting ] );
      ( "plot",
        [ Alcotest.test_case "spark" `Quick test_spark;
          Alcotest.test_case "lines" `Quick test_plot_lines_basic;
          Alcotest.test_case "empty/nan" `Quick test_plot_lines_empty_and_nonfinite;
          Alcotest.test_case "logy" `Quick test_plot_logy_drops_nonpositive ] );
      ( "content_hash",
        [ Alcotest.test_case "pinned values" `Quick test_content_hash_pinned;
          Alcotest.test_case "canonical injective" `Quick
            test_content_hash_canonical_injective ] );
      ( "properties",
        qc
          [ prop_heap_sorted;
            prop_bitvec_xor_involution;
            prop_uf_transitive;
            prop_stats_running_matches_batch ] ) ]
