(* Cross-validation of the bit-parallel batch sampler (Frame_batch) against
   the scalar reference sampler (Frame.sample_shot), plus the Parallel
   determinism contract end to end on real surface-code circuits.

   The two samplers consume different random streams, so shot-for-shot
   comparison is only possible on noiseless circuits (where both must
   produce all-zero frames); on noisy circuits we compare estimated flip
   RATES at fixed seeds within Monte-Carlo tolerance. *)

let scalar_flip_counts c rng ~shots =
  let nobs = Array.length c.Circuit.observables in
  let counts = Array.make nobs 0 in
  for _ = 1 to shots do
    let shot = Frame.sample_shot c rng in
    for i = 0 to nobs - 1 do
      if Bitvec.get shot.Frame.observables i then counts.(i) <- counts.(i) + 1
    done
  done;
  counts

(* ------------------------------------------------------------ noiseless *)

let test_noiseless_exact () =
  (* Without noise the error frame stays zero through any Clifford circuit:
     every shot of both samplers must report zero detector and observable
     flips, bit for bit. *)
  let b = Circuit.builder 4 in
  Circuit.add b (Circuit.H 0);
  Circuit.add b (Circuit.CX (0, 1));
  Circuit.add b (Circuit.CZ (1, 2));
  Circuit.add b (Circuit.S 2);
  Circuit.add b (Circuit.SWAP (2, 3));
  ignore (Circuit.measure b 1);
  ignore (Circuit.measure b 3);
  Circuit.add_detector b [ 0 ];
  Circuit.add_detector b [ 0; 1 ];
  Circuit.add_observable b [ 1 ];
  let c = Circuit.finish b in
  let rng = Rng.create 5 in
  let batch = Frame_batch.sample c rng ~nshots:200 in
  Array.iteri
    (fun i row ->
      Alcotest.(check int) (Printf.sprintf "detector %d clean" i) 0 (Bitvec.popcount row))
    batch.Frame_batch.detectors;
  Array.iteri
    (fun i row ->
      Alcotest.(check int) (Printf.sprintf "observable %d clean" i) 0 (Bitvec.popcount row))
    batch.Frame_batch.observables;
  let srng = Rng.create 5 in
  for _ = 1 to 50 do
    let shot = Frame.sample_shot c srng in
    Alcotest.(check bool) "scalar detectors clean" true
      (Bitvec.is_zero shot.Frame.detectors);
    Alcotest.(check bool) "scalar observables clean" true
      (Bitvec.is_zero shot.Frame.observables)
  done

let test_shot_extraction_matches_rows () =
  (* Transposing shot s out of the batch must agree with the batch rows. *)
  let b = Circuit.builder 2 in
  Circuit.add b (Circuit.Noise1 { px = 0.3; py = 0.1; pz = 0.2; q = 0 });
  Circuit.add b (Circuit.CX (0, 1));
  ignore (Circuit.measure b 0);
  ignore (Circuit.measure b 1);
  Circuit.add_detector b [ 0 ];
  Circuit.add_detector b [ 1 ];
  Circuit.add_observable b [ 0; 1 ];
  let c = Circuit.finish b in
  let batch = Frame_batch.sample c (Rng.create 11) ~nshots:100 in
  for s = 0 to 99 do
    let dets, obs = Frame_batch.shot batch s in
    for i = 0 to 1 do
      Alcotest.(check bool)
        (Printf.sprintf "detector %d shot %d" i s)
        (Bitvec.get batch.Frame_batch.detectors.(i) s)
        (Bitvec.get dets i)
    done;
    Alcotest.(check bool)
      (Printf.sprintf "observable shot %d" s)
      (Bitvec.get batch.Frame_batch.observables.(0) s)
      (Bitvec.get obs 0)
  done

(* --------------------------------------------------- noise distribution *)

let binomial_tolerance ~p ~n =
  (* 5 sigma of a Bernoulli(p) sample mean, floored for tiny p. *)
  max 0.01 (5. *. sqrt (p *. (1. -. p) /. float_of_int n))

let test_noise1_marginals () =
  (* A Z-basis measurement flips when the frame has an X component: the
     disjoint-mask construction must give flip probability px + py. *)
  List.iter
    (fun (px, py, pz) ->
      let b = Circuit.builder 1 in
      Circuit.add b (Circuit.Noise1 { px; py; pz; q = 0 });
      ignore (Circuit.measure b 0);
      Circuit.add_observable b [ 0 ];
      let c = Circuit.finish b in
      let shots = 40_000 in
      let counts = Frame_batch.sample_flip_counts ~jobs:1 c (Rng.create 17) ~shots in
      let rate = float_of_int counts.(0) /. float_of_int shots in
      let expect = px +. py in
      Alcotest.(check bool)
        (Printf.sprintf "noise1 (%g,%g,%g): flip rate %g ~ %g" px py pz rate expect)
        true
        (Float.abs (rate -. expect) < binomial_tolerance ~p:expect ~n:shots))
    [ (0.05, 0., 0.); (0., 0.05, 0.); (0., 0., 0.3); (0.02, 0.03, 0.1);
      (0.3, 0.3, 0.3); (0.5, 0.25, 0.25) ]

let test_depol2_marginal () =
  (* Two-qubit depolarizing: each qubit's measurement flips with probability
     p * 8/15 (8 of the 15 non-identity Paulis have an X component there). *)
  let p = 0.3 in
  let b = Circuit.builder 2 in
  Circuit.add b (Circuit.Depol2 { p; a = 0; b = 1 });
  ignore (Circuit.measure b 0);
  ignore (Circuit.measure b 1);
  Circuit.add_observable b [ 0 ];
  Circuit.add_observable b [ 1 ];
  let c = Circuit.finish b in
  let shots = 40_000 in
  let counts = Frame_batch.sample_flip_counts ~jobs:1 c (Rng.create 23) ~shots in
  let expect = p *. 8. /. 15. in
  Array.iteri
    (fun i count ->
      let rate = float_of_int count /. float_of_int shots in
      Alcotest.(check bool)
        (Printf.sprintf "depol2 qubit %d flip rate %g ~ %g" i rate expect)
        true
        (Float.abs (rate -. expect) < binomial_tolerance ~p:expect ~n:shots))
    counts

(* ------------------------------------------- surface-code cross checks *)

let test_surface_flip_rates_agree distance () =
  let exp = Surface_circuit.build (Surface_circuit.default ~distance) in
  let c = exp.Surface_circuit.circuit in
  let shots = 3000 in
  let scalar = scalar_flip_counts c (Rng.create 31) ~shots in
  let batch = Frame_batch.sample_flip_counts ~jobs:1 c (Rng.create 31) ~shots in
  Array.iteri
    (fun i s ->
      let ps = float_of_int s /. float_of_int shots in
      let pb = float_of_int batch.(i) /. float_of_int shots in
      let tol = 2. *. binomial_tolerance ~p:(max ps pb) ~n:shots in
      Alcotest.(check bool)
        (Printf.sprintf "d=%d observable %d: scalar %g vs batch %g" distance i ps pb)
        true
        (Float.abs (ps -. pb) < tol))
    scalar

let test_surface_logical_rate_agrees () =
  (* End to end with decoding: the batch path of Frame.logical_error_rate
     must land near a scalar-sampled estimate on the d=3 circuit. *)
  let exp = Surface_circuit.build (Surface_circuit.default ~distance:3) in
  let c = exp.Surface_circuit.circuit in
  let decode dets =
    let out = Bitvec.create 1 in
    Bitvec.set out 0 (Decoder_uf.decode exp.Surface_circuit.graph dets);
    out
  in
  let shots = 2000 in
  let scalar_errors = ref 0 in
  let srng = Rng.create 37 in
  for _ = 1 to shots do
    let shot = Frame.sample_shot c srng in
    if not (Bitvec.equal (decode shot.Frame.detectors) shot.Frame.observables) then
      incr scalar_errors
  done;
  let ps = float_of_int !scalar_errors /. float_of_int shots in
  let pb = Frame.logical_error_rate ~jobs:1 c (Rng.create 37) ~shots ~decode in
  let tol = 2. *. binomial_tolerance ~p:(max ps pb) ~n:shots in
  Alcotest.(check bool)
    (Printf.sprintf "logical rate scalar %g vs batch %g" ps pb)
    true
    (Float.abs (ps -. pb) < tol)

(* ----------------------------------------------------------- determinism *)

let test_jobs_determinism () =
  (* Same seed, different job counts: identical counts, bit for bit. *)
  let exp = Surface_circuit.build (Surface_circuit.default ~distance:3) in
  let c = exp.Surface_circuit.circuit in
  let counts jobs = Frame_batch.sample_flip_counts ~jobs c (Rng.create 41) ~shots:1500 in
  let c1 = counts 1 in
  Alcotest.(check (array int)) "flip counts jobs=1 vs jobs=4" c1 (counts 4);
  let decode dets =
    let out = Bitvec.create 1 in
    Bitvec.set out 0 (Decoder_uf.decode exp.Surface_circuit.graph dets);
    out
  in
  let errors jobs =
    Frame.logical_error_count ~jobs c (Rng.create 41) ~shots:1500 ~decode
  in
  let e1 = errors 1 in
  Alcotest.(check int) "error count jobs=1 vs jobs=4" e1 (errors 4);
  Alcotest.(check int) "repeat run identical" e1 (errors 1)

let test_uec_jobs_determinism () =
  let code = Codes.steane in
  let prof = Uec.profile (Uec.Het { ts = 10e-3 }) code in
  let rate jobs = Uec.logical_error_rate ~jobs prof ~rounds:3 ~shots:800 (Rng.create 43) in
  Alcotest.(check (float 0.)) "uec rate jobs=1 vs jobs=4" (rate 1) (rate 4)

let test_threshold_jobs_determinism () =
  let code = Codes.steane in
  let decoder = Decoder_lookup.create code in
  let rate jobs =
    Threshold.logical_rate ~jobs code decoder ~p:0.05 ~shots:4000 (Rng.create 47)
  in
  Alcotest.(check (float 0.)) "threshold rate jobs=1 vs jobs=4" (rate 1) (rate 4)

let test_threshold_mask_matches_lists () =
  (* The mask-based decode fast path must agree with the historical
     list-based path on every error pattern of the Steane code. *)
  let decoder = Decoder_lookup.create Codes.steane in
  for mask = 0 to (1 lsl 7) - 1 do
    let qubits =
      List.filter (fun q -> (mask lsr q) land 1 = 1) [ 0; 1; 2; 3; 4; 5; 6 ]
    in
    Alcotest.(check bool)
      (Printf.sprintf "x mask %d" mask)
      (Decoder_lookup.logical_x_error_after_correction decoder ~actual:qubits)
      (Decoder_lookup.logical_x_flip_mask decoder ~actual:mask);
    Alcotest.(check bool)
      (Printf.sprintf "z mask %d" mask)
      (Decoder_lookup.logical_z_error_after_correction decoder ~actual:qubits)
      (Decoder_lookup.logical_z_flip_mask decoder ~actual:mask)
  done

let () =
  Alcotest.run "frame_batch"
    [ ( "noiseless",
        [ Alcotest.test_case "exact agreement" `Quick test_noiseless_exact;
          Alcotest.test_case "shot extraction" `Quick test_shot_extraction_matches_rows ] );
      ( "noise",
        [ Alcotest.test_case "noise1 marginals" `Quick test_noise1_marginals;
          Alcotest.test_case "depol2 marginal" `Quick test_depol2_marginal ] );
      ( "surface",
        [ Alcotest.test_case "d=3 flip rates" `Quick (test_surface_flip_rates_agree 3);
          Alcotest.test_case "d=5 flip rates" `Slow (test_surface_flip_rates_agree 5);
          Alcotest.test_case "d=3 logical rate" `Quick test_surface_logical_rate_agrees ] );
      ( "determinism",
        [ Alcotest.test_case "frame jobs=1 vs 4" `Quick test_jobs_determinism;
          Alcotest.test_case "uec jobs=1 vs 4" `Quick test_uec_jobs_determinism;
          Alcotest.test_case "threshold jobs=1 vs 4" `Quick test_threshold_jobs_determinism;
          Alcotest.test_case "mask decode = list decode" `Quick
            test_threshold_mask_matches_lists ] ) ]
