(* Wiring between Characterize's memo hook and the two-tier Cache/Store:
   this is where the paper's "characterize once, reuse everywhere" claim
   becomes a cross-process artifact.  The ambient store is installed either
   by --cache-dir (bin) or Sweep's ~store parameter; with no store the memo
   still deduplicates within the process through the shared memory cache. *)

(* Value codec: duration and error as raw IEEE-754 bits, then the channel's
   own versioned encoding.  Bit-exact round trip, so a warm run is
   byte-identical to a cold one. *)
let codec : Characterize.characterized Cache.codec =
  { encode =
      (fun c ->
        let b = Buffer.create 256 in
        Buffer.add_int64_le b
          (Int64.bits_of_float c.Characterize.perf.Characterize.duration);
        Buffer.add_int64_le b
          (Int64.bits_of_float c.Characterize.perf.Characterize.error);
        Buffer.add_string b (Channel.to_bytes c.Characterize.channel);
        Buffer.contents b);
    decode =
      (fun s ->
        if String.length s < 16 then None
        else
          let duration = Int64.float_of_bits (String.get_int64_le s 0) in
          let error = Int64.float_of_bits (String.get_int64_le s 8) in
          Option.map
            (fun channel ->
              { Characterize.perf = { Characterize.duration; error }; channel })
            (Channel.of_bytes (String.sub s 16 (String.length s - 16)))) }

(* One process-wide memory tier for cell characterizations, fronting
   whatever store is currently installed. *)
let cache : Characterize.characterized Cache.t = Cache.create ()

let current : Store.t option Atomic.t = Atomic.make None

let set_dir = function
  | None -> Atomic.set current None
  | Some dir -> Atomic.set current (Some (Store.open_dir dir))

let store () = Atomic.get current

let with_store s f =
  let prev = Atomic.get current in
  Atomic.set current (Some s);
  Fun.protect ~finally:(fun () -> Atomic.set current prev) f

(* The store is re-read per memoization so worker domains spawned mid-sweep
   see the sweep's store; Cache/Store are mutex-guarded and atomic-rename
   safe, so any --jobs is fine. *)
let memo () =
  { Characterize.memoize =
      (fun ~kind ~fields ~dim f ->
        let key = Store.key ~kind ~fields in
        let disk = Option.map (fun s -> (s, codec)) (Atomic.get current) in
        Cache.find_or_compute ?disk cache ~key ~dim f) }

let stats () = Cache.stats cache
