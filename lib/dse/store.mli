(** Persistent content-addressed store for standard-cell characterizations.

    The HetArch methodology characterizes each cell once by density-matrix
    simulation and reuses the resulting channel everywhere; {!Cache} makes
    the reuse process-wide, and this store makes it survive process
    restarts, so a warm second sweep (or CI run, or resumed campaign) skips
    device-level simulation entirely.

    {b Key discipline}: a key is the 64-bit content hash (16 hex digits) of
    the length-prefixed canonical encoding of the full characterization
    input — device parameters, cell topology, noise/timing settings — plus
    the {!version_tag} of the characterization code, so position in a sweep
    never matters and stale entries from older code are unreachable rather
    than silently wrong.

    {b Crash/corruption semantics}: records are framed with a magic, a
    format version, a payload length, and a 64-bit checksum trailer.  A
    missing, truncated, corrupt, or version-mismatched entry is reported as
    a miss, never an error.  Writes go to a unique temp file and are
    atomically renamed into place, so concurrent writers (any [--jobs], or
    several processes sharing one cache dir) are safe: readers only ever
    see absent or complete records, and racing writers produce identical
    bytes because values are pure functions of their key. *)

type t

type stats = { hits : int; misses : int; corrupt : int; writes : int }

val open_dir : string -> t
(** Open (creating if needed, like [mkdir -p]) a store rooted at the given
    directory.  Raises [Invalid_argument] if the path exists but is not a
    directory. *)

val dir : t -> string

val version_tag : string
(** Code-version tag mixed into every key; bump when the meaning of a
    characterization changes so old entries become unreachable. *)

val key : kind:string -> fields:(string * string) list -> string
(** Content hash of [version_tag], [kind], and the fields sorted by key,
    each component length-prefixed (injective encoding).  Field order is
    irrelevant; every parameter that influences the value must be a field. *)

val find : t -> string -> string option
(** Verified payload for a key, or [None] on a miss — including the
    degraded corrupt/version-mismatch cases, which additionally bump the
    [corrupt] statistic and the [dse.store_corrupt_total] counter. *)

val put : t -> string -> string -> unit
(** Write a payload under a key: temp file + atomic rename.  I/O errors are
    swallowed (the store is an accelerator, not a source of truth); a
    failed put simply leaves the entry absent. *)

val entry_path : t -> string -> string
(** Filesystem path an entry lives at (exposed for tests and the CI
    corruption smoke, which truncates an entry in place). *)

val stats : t -> stats
(** Per-store counters; process-wide totals are exported as the
    [dse.store_*_total] observability counters. *)
