(** Memoized standard-cell characterization with simulation-cost accounting.

    The HetArch methodology characterizes each cell once by density-matrix
    simulation and reuses the resulting channel everywhere; this cache
    implements the reuse and tracks how much device-level simulation was
    avoided, reproducing the paper's >= 10^4 burden-reduction estimate. *)

type 'v t

val create : unit -> 'v t

val find_or_compute : 'v t -> key:string -> dim:int -> (unit -> 'v) -> 'v
(** [find_or_compute t ~key ~dim f] returns the cached value for [key] or
    computes it with [f].  [dim] is the Hilbert-space dimension a device-
    level simulation of this characterization needs; its cube is the cost
    unit accounted (dense density-matrix update cost). *)

val hits : 'v t -> int
val misses : 'v t -> int

val reset : 'v t -> unit
(** Drop every cached entry and zero the hit/miss/cost statistics, so a
    multi-phase sweep can report per-phase cache effectiveness instead of
    only cumulative totals.  The process-wide [dse.cache_*] gauges are
    cumulative and unaffected. *)

val stats : 'v t -> string
(** One-line summary: hits, misses, hit rate, cost paid/avoided. *)

val cost_paid : 'v t -> float
(** Total dim^3 cost actually simulated (misses only). *)

val cost_avoided : 'v t -> float
(** dim^3 cost that cache hits would otherwise have re-simulated. *)

val burden_reduction : naive_dim:int -> 'v t -> float
(** The paper's headline accounting: cost of one naive device-level
    simulation of the whole module (dimension [naive_dim]) divided by the
    hierarchical cost actually paid. *)
