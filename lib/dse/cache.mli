(** Memoized standard-cell characterization with simulation-cost accounting.

    The HetArch methodology characterizes each cell once by density-matrix
    simulation and reuses the resulting channel everywhere; this cache
    implements the reuse and tracks how much device-level simulation was
    avoided, reproducing the paper's >= 10^4 burden-reduction estimate.

    The cache is two-tiered: an in-process memory table, optionally backed
    by a persistent content-addressed {!Store} so the reuse survives process
    restarts.  Hits are split by tier in both the per-instance statistics
    and the process-wide [dse.cache_*] gauges: [hits] is the memory tier,
    [disk_hits] the persistent tier. *)

type 'v t

(** Serialization for the persistent tier.  [decode] must return [None] on
    malformed bytes (it is fed store payloads that already passed the
    checksum, but version skew within a valid record is still possible);
    a failed decode degrades to a miss.  For warm runs to be byte-identical
    to cold ones, [decode (encode v)] must reconstruct [v] bit-exactly. *)
type 'v codec = { encode : 'v -> string; decode : string -> 'v option }

val create : unit -> 'v t

val find_or_compute :
  ?disk:Store.t * 'v codec -> 'v t -> key:string -> dim:int -> (unit -> 'v) -> 'v
(** [find_or_compute t ~key ~dim f] returns the cached value for [key] or
    computes it with [f].  Tier order: memory, then (when [disk] is given)
    the persistent store — a disk hit is promoted into the memory table —
    then [f], whose result is written back to both tiers (temp file +
    atomic rename on the store side).  [dim] is the Hilbert-space dimension
    a device-level simulation of this characterization needs; its cube is
    the cost unit accounted (dense density-matrix update cost). *)

val hits : 'v t -> int
(** Memory-tier hits. *)

val disk_hits : 'v t -> int
(** Persistent-tier hits (entries deserialized from a {!Store}). *)

val misses : 'v t -> int
(** Values actually computed by [f]. *)

val reset : 'v t -> unit
(** Drop every cached entry and zero the hit/miss/cost statistics, so a
    multi-phase sweep can report per-phase cache effectiveness instead of
    only cumulative totals.  The process-wide [dse.cache_*] gauges are
    cumulative and unaffected; the persistent store is untouched. *)

val stats : 'v t -> string
(** One-line summary: per-tier hits, misses, hit rate, cost paid/avoided. *)

val cost_paid : 'v t -> float
(** Total dim^3 cost actually simulated (misses only). *)

val cost_avoided : 'v t -> float
(** dim^3 cost that cache hits — memory or disk — would otherwise have
    re-simulated.  Disk hits in a fresh process measure the cross-restart
    burden reduction the persistent store buys. *)

val burden_reduction : naive_dim:int -> 'v t -> float
(** The paper's headline accounting: cost of one naive device-level
    simulation of the whole module (dimension [naive_dim]) divided by the
    hierarchical cost actually paid. *)
