(* Persistent content-addressed characterization store.

   The paper's >= 10^4 simulation-burden reduction comes from characterizing
   each standard cell *once* by density-matrix simulation and reusing the
   resulting channel everywhere.  This store makes that reuse a cross-process
   artifact: keys are 64-bit content hashes over the full characterization
   input (device parameters, cell topology, noise settings, plus a code
   version tag), values are opaque payloads — serialized channels — wrapped
   in a versioned, length-prefixed record with a checksum trailer.

   Robustness contract: a corrupt, truncated, or version-mismatched entry is
   a MISS, never an error; the caller recomputes and overwrites.  Writers
   are crash- and concurrency-safe by construction: every put writes a
   unique temp file in the entry's directory and atomically renames it into
   place, so readers only ever observe absent or complete records, and the
   last of two racing writers wins with identical bytes (values are pure
   functions of their key). *)

(* On-disk record framing: magic, format version, payload length, payload,
   then a 64-bit content-hash checksum of the payload as the trailer. *)
let magic = "HETSTORE"
let format_version = 1

(* Code-version tag mixed into every key: bump when the meaning of a
   characterization changes (new noise model, different op semantics), so
   stale entries from older code become unreachable rather than wrong. *)
let version_tag = "hetarch-char/1"

type t = { dir : string; lock : Mutex.t; mutable stats : stats }

and stats = { hits : int; misses : int; corrupt : int; writes : int }

let zero_stats = { hits = 0; misses = 0; corrupt = 0; writes = 0 }

(* Process-wide counters aggregate over every store instance. *)
let c_hits = Obs.Counter.create "dse.store_hits_total"
let c_misses = Obs.Counter.create "dse.store_misses_total"
let c_corrupt = Obs.Counter.create "dse.store_corrupt_total"
let c_writes = Obs.Counter.create "dse.store_writes_total"

let rec mkdir_p dir =
  if dir <> "" && dir <> "/" && dir <> "." && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let open_dir dir =
  mkdir_p dir;
  if not (Sys.is_directory dir) then
    invalid_arg (Printf.sprintf "Store.open_dir: %s is not a directory" dir);
  { dir; lock = Mutex.create (); stats = zero_stats }

let dir t = t.dir

let key ~kind ~fields =
  if kind = "" then invalid_arg "Store.key: empty kind";
  List.iter
    (fun (k, _) -> if k = "" then invalid_arg "Store.key: empty field key")
    fields;
  Content_hash.of_components
    (version_tag :: kind
    :: List.concat_map
         (fun (k, v) -> [ k; v ])
         (List.sort (fun (a, _) (b, _) -> compare a b) fields))

(* Two-level fan-out by key prefix keeps directory listings short even for
   large sweeps; the key is normally the full 16-hex-digit content hash,
   but any non-empty string shards safely. *)
let entry_path t k =
  if k = "" then invalid_arg "Store.entry_path: empty key";
  let shard = String.sub k 0 (min 2 (String.length k)) in
  Filename.concat (Filename.concat t.dir shard) (k ^ ".chan")

let bump t f =
  Mutex.protect t.lock (fun () -> t.stats <- f t.stats)

let stats t = Mutex.protect t.lock (fun () -> t.stats)

(* Validate the whole record; any structural problem is reported as either
   a plain miss (file absent) or a corrupt entry (present but unreadable).
   header = magic + u32 version + u32 payload length; trailer = u64
   content hash of the payload. *)
let header_len = String.length magic + 8

let decode_record contents =
  let len = String.length contents in
  if len < header_len + 8 then None
  else if String.sub contents 0 (String.length magic) <> magic then None
  else
    let version = Int32.to_int (String.get_int32_le contents (String.length magic)) in
    let payload_len = Int32.to_int (String.get_int32_le contents (String.length magic + 4)) in
    if version <> format_version then None
    else if payload_len < 0 || len <> header_len + payload_len + 8 then None
    else
      let payload = String.sub contents header_len payload_len in
      let checksum = String.get_int64_le contents (header_len + payload_len) in
      if Int64.equal checksum (Content_hash.hash64 payload) then Some payload else None

let encode_record payload =
  let b = Buffer.create (header_len + String.length payload + 8) in
  Buffer.add_string b magic;
  Buffer.add_int32_le b (Int32.of_int format_version);
  Buffer.add_int32_le b (Int32.of_int (String.length payload));
  Buffer.add_string b payload;
  Buffer.add_int64_le b (Content_hash.hash64 payload);
  Buffer.contents b

let find t k =
  let path = entry_path t k in
  match In_channel.with_open_bin path In_channel.input_all with
  | exception Sys_error _ ->
      bump t (fun s -> { s with misses = s.misses + 1 });
      Obs.Counter.incr c_misses;
      None
  | contents -> (
      match decode_record contents with
      | Some payload ->
          bump t (fun s -> { s with hits = s.hits + 1 });
          Obs.Counter.incr c_hits;
          Some payload
      | None ->
          (* Present but unreadable: degrade to a miss so the caller
             recomputes (and put overwrites the bad entry). *)
          bump t (fun s -> { s with corrupt = s.corrupt + 1; misses = s.misses + 1 });
          Obs.Counter.incr c_corrupt;
          Obs.Counter.incr c_misses;
          None)

let tmp_counter = Atomic.make 0

let put t k payload =
  let path = entry_path t k in
  mkdir_p (Filename.dirname path);
  (* Unique temp name per (process, domain, put) in the same directory, so
     the rename is atomic and concurrent writers never collide. *)
  let tmp =
    Printf.sprintf "%s.tmp.%d.%d.%d" path (Unix.getpid ())
      ((Domain.self () :> int))
      (Atomic.fetch_and_add tmp_counter 1)
  in
  let ok =
    try
      Out_channel.with_open_bin tmp (fun oc ->
          Out_channel.output_string oc (encode_record payload));
      Sys.rename tmp path;
      true
    with Sys_error _ ->
      (try Sys.remove tmp with Sys_error _ -> ());
      false
  in
  if ok then begin
    bump t (fun s -> { s with writes = s.writes + 1 });
    Obs.Counter.incr c_writes
  end
