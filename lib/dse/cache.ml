type 'v t = {
  table : (string, 'v) Hashtbl.t;
  lock : Mutex.t;
  mutable hits : int;
  mutable misses : int;
  mutable paid : float;
  mutable avoided : float;
}

(* Process-wide gauges aggregate over every cache instance; the per-instance
   accessors below stay the source of truth for a single cache. *)
let g_hits = Obs.Gauge.create "dse.cache_hits"
let g_misses = Obs.Gauge.create "dse.cache_misses"
let g_paid = Obs.Gauge.create "dse.cache_cost_paid"
let g_avoided = Obs.Gauge.create "dse.cache_cost_avoided"

let create () =
  { table = Hashtbl.create 64;
    lock = Mutex.create ();
    hits = 0;
    misses = 0;
    paid = 0.;
    avoided = 0. }

let cube dim = float_of_int dim ** 3.

(* Table and stats are mutex-guarded so sweep points can share a cache
   across domains.  [f] runs outside the lock — it may be expensive — so two
   domains racing on the same key may both compute; the first insert wins
   and the computation is assumed deterministic per key. *)
let find_or_compute t ~key ~dim f =
  let cached =
    Mutex.protect t.lock (fun () ->
        match Hashtbl.find_opt t.table key with
        | Some v ->
            t.hits <- t.hits + 1;
            t.avoided <- t.avoided +. cube dim;
            Some v
        | None ->
            t.misses <- t.misses + 1;
            t.paid <- t.paid +. cube dim;
            None)
  in
  match cached with
  | Some v ->
      Obs.Gauge.add g_hits 1.;
      Obs.Gauge.add g_avoided (cube dim);
      v
  | None ->
      Obs.Gauge.add g_misses 1.;
      Obs.Gauge.add g_paid (cube dim);
      let v = f () in
      Mutex.protect t.lock (fun () ->
          if not (Hashtbl.mem t.table key) then Hashtbl.add t.table key v);
      v

let hits t = Mutex.protect t.lock (fun () -> t.hits)
let misses t = Mutex.protect t.lock (fun () -> t.misses)
let cost_paid t = Mutex.protect t.lock (fun () -> t.paid)
let cost_avoided t = Mutex.protect t.lock (fun () -> t.avoided)

let reset t =
  Mutex.protect t.lock (fun () ->
      Hashtbl.reset t.table;
      t.hits <- 0;
      t.misses <- 0;
      t.paid <- 0.;
      t.avoided <- 0.)

let stats t =
  let hits, misses, paid, avoided =
    Mutex.protect t.lock (fun () -> (t.hits, t.misses, t.paid, t.avoided))
  in
  let total = hits + misses in
  let rate =
    if total = 0 then 0. else 100. *. float_of_int hits /. float_of_int total
  in
  Printf.sprintf
    "cache: %d hits / %d misses (%.1f%% hit rate), cost paid %.3g, avoided %.3g"
    hits misses rate paid avoided

let burden_reduction ~naive_dim t =
  let paid = cost_paid t in
  if paid <= 0. then infinity else cube naive_dim /. paid
