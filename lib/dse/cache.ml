type 'v t = {
  table : (string, 'v) Hashtbl.t;
  mutable hits : int;
  mutable misses : int;
  mutable paid : float;
  mutable avoided : float;
}

(* Process-wide gauges aggregate over every cache instance; the per-instance
   accessors below stay the source of truth for a single cache. *)
let g_hits = Obs.Gauge.create "dse.cache_hits"
let g_misses = Obs.Gauge.create "dse.cache_misses"
let g_paid = Obs.Gauge.create "dse.cache_cost_paid"
let g_avoided = Obs.Gauge.create "dse.cache_cost_avoided"

let create () = { table = Hashtbl.create 64; hits = 0; misses = 0; paid = 0.; avoided = 0. }

let cube dim = float_of_int dim ** 3.

let find_or_compute t ~key ~dim f =
  match Hashtbl.find_opt t.table key with
  | Some v ->
      t.hits <- t.hits + 1;
      t.avoided <- t.avoided +. cube dim;
      Obs.Gauge.add g_hits 1.;
      Obs.Gauge.add g_avoided (cube dim);
      v
  | None ->
      t.misses <- t.misses + 1;
      t.paid <- t.paid +. cube dim;
      Obs.Gauge.add g_misses 1.;
      Obs.Gauge.add g_paid (cube dim);
      let v = f () in
      Hashtbl.add t.table key v;
      v

let hits t = t.hits
let misses t = t.misses
let cost_paid t = t.paid
let cost_avoided t = t.avoided

let reset t =
  Hashtbl.reset t.table;
  t.hits <- 0;
  t.misses <- 0;
  t.paid <- 0.;
  t.avoided <- 0.

let stats t =
  let total = t.hits + t.misses in
  let rate =
    if total = 0 then 0. else 100. *. float_of_int t.hits /. float_of_int total
  in
  Printf.sprintf
    "cache: %d hits / %d misses (%.1f%% hit rate), cost paid %.3g, avoided %.3g"
    t.hits t.misses rate t.paid t.avoided

let burden_reduction ~naive_dim t =
  if t.paid <= 0. then infinity else cube naive_dim /. t.paid
