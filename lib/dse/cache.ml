type 'v t = {
  table : (string, 'v) Hashtbl.t;
  lock : Mutex.t;
  mutable hits : int;  (* memory tier *)
  mutable disk_hits : int;  (* persistent tier *)
  mutable misses : int;  (* computed *)
  mutable paid : float;
  mutable avoided : float;
}

type 'v codec = { encode : 'v -> string; decode : string -> 'v option }

(* Process-wide gauges aggregate over every cache instance; the per-instance
   accessors below stay the source of truth for a single cache.  Hits are
   split by tier: dse.cache_hits counts memory hits, dse.cache_disk_hits
   counts hits served from a persistent store — the cross-process reuse the
   paper's burden accounting is about. *)
let g_hits = Obs.Gauge.create "dse.cache_hits"
let g_disk_hits = Obs.Gauge.create "dse.cache_disk_hits"
let g_misses = Obs.Gauge.create "dse.cache_misses"
let g_paid = Obs.Gauge.create "dse.cache_cost_paid"
let g_avoided = Obs.Gauge.create "dse.cache_cost_avoided"

let create () =
  { table = Hashtbl.create 64;
    lock = Mutex.create ();
    hits = 0;
    disk_hits = 0;
    misses = 0;
    paid = 0.;
    avoided = 0. }

let cube dim = float_of_int dim ** 3.

(* Table and stats are mutex-guarded so sweep points can share a cache
   across domains.  The expensive paths — computing [f] and the store I/O —
   run outside the lock, so two domains racing on the same key may both
   compute (or both read the store); the first memory insert wins and the
   computation is assumed deterministic per key, so either result is the
   same value.  Tier order: memory, then the persistent store (a disk hit
   is promoted into memory), then compute-and-write-back. *)
let find_or_compute ?disk t ~key ~dim f =
  let mem_cached =
    Mutex.protect t.lock (fun () ->
        match Hashtbl.find_opt t.table key with
        | Some v ->
            t.hits <- t.hits + 1;
            t.avoided <- t.avoided +. cube dim;
            Some v
        | None -> None)
  in
  match mem_cached with
  | Some v ->
      Obs.Gauge.add g_hits 1.;
      Obs.Gauge.add g_avoided (cube dim);
      v
  | None -> (
      let from_disk =
        match disk with
        | None -> None
        | Some (store, codec) -> Option.bind (Store.find store key) codec.decode
      in
      match from_disk with
      | Some v ->
          Mutex.protect t.lock (fun () ->
              t.disk_hits <- t.disk_hits + 1;
              t.avoided <- t.avoided +. cube dim;
              if not (Hashtbl.mem t.table key) then Hashtbl.add t.table key v);
          Obs.Gauge.add g_disk_hits 1.;
          Obs.Gauge.add g_avoided (cube dim);
          v
      | None ->
          Mutex.protect t.lock (fun () ->
              t.misses <- t.misses + 1;
              t.paid <- t.paid +. cube dim);
          Obs.Gauge.add g_misses 1.;
          Obs.Gauge.add g_paid (cube dim);
          let v = f () in
          Option.iter
            (fun (store, codec) -> Store.put store key (codec.encode v))
            disk;
          Mutex.protect t.lock (fun () ->
              if not (Hashtbl.mem t.table key) then Hashtbl.add t.table key v);
          v)

let hits t = Mutex.protect t.lock (fun () -> t.hits)
let disk_hits t = Mutex.protect t.lock (fun () -> t.disk_hits)
let misses t = Mutex.protect t.lock (fun () -> t.misses)
let cost_paid t = Mutex.protect t.lock (fun () -> t.paid)
let cost_avoided t = Mutex.protect t.lock (fun () -> t.avoided)

let reset t =
  Mutex.protect t.lock (fun () ->
      Hashtbl.reset t.table;
      t.hits <- 0;
      t.disk_hits <- 0;
      t.misses <- 0;
      t.paid <- 0.;
      t.avoided <- 0.)

let stats t =
  let hits, disk_hits, misses, paid, avoided =
    Mutex.protect t.lock (fun () ->
        (t.hits, t.disk_hits, t.misses, t.paid, t.avoided))
  in
  let total = hits + disk_hits + misses in
  let rate =
    if total = 0 then 0.
    else 100. *. float_of_int (hits + disk_hits) /. float_of_int total
  in
  Printf.sprintf
    "cache: %d mem + %d disk hits / %d misses (%.1f%% hit rate), cost paid \
     %.3g, avoided %.3g"
    hits disk_hits misses rate paid avoided

let burden_reduction ~naive_dim t =
  let paid = cost_paid t in
  if paid <= 0. then infinity else cube naive_dim /. paid
