(** Glue between {!Characterize}'s memo hook and the two-tier {!Cache} /
    persistent {!Store}: install a store directory once (CLI [--cache-dir],
    or [~store] on the {!Sweep} combinators) and every cell characterization
    in the process — at any [--jobs] — is served from memory, then disk,
    then density-matrix simulation with write-back.

    Warm-start contract: the value codec round-trips bit-exactly, so
    results are byte-identical with the store cold, warm, half-warm, or
    absent. *)

val codec : Characterize.characterized Cache.codec
(** duration/error as raw float bits + [Channel.to_bytes]. *)

val cache : Characterize.characterized Cache.t
(** The process-wide memory tier (source of the [dse.cache_*] gauges'
    characterization traffic; reset it to measure a phase in isolation). *)

val set_dir : string option -> unit
(** Install (or clear) the ambient persistent store by directory. *)

val store : unit -> Store.t option
(** Currently installed ambient store, if any. *)

val with_store : Store.t -> (unit -> 'a) -> 'a
(** Run with the given store installed, restoring the previous one after —
    the implementation of [Sweep]'s [~store] parameter. *)

val memo : unit -> Characterize.memo
(** Memo hook for [Characterize.characterize_op]: hashes the hook's key
    fields with {!Store.key} and resolves through {!cache} backed by the
    ambient store (consulted per call, so worker domains and mid-sweep
    installs behave). *)

val stats : unit -> string
(** One-line cache summary (per-tier hits, misses, cost paid/avoided). *)
