let module_qubits cells =
  List.fold_left (fun acc c -> acc + Cell.capacity c) 0 cells

let cube x = x *. x *. x

let flat_cost cells = cube (2. ** float_of_int (module_qubits cells))

(* Characterizing a cell only ever simulates its *active* operation subspace
   (moving qubit + reference, gate participants, ancilla); idle storage modes
   factor out of the density matrix exactly. *)
let active_qubits (c : Cell.t) =
  match c.Cell.kind with
  | Cell.Register -> 2  (* moving qubit + Choi reference *)
  | Cell.ParCheck -> 3  (* two data + readout ancilla *)
  | Cell.SeqOp -> 4  (* two data + two Choi references *)
  | Cell.USC | Cell.USC_EXT -> 5  (* active data qubit, ancilla, references *)

(* One characterization per distinct cell kind, process-wide: repeated cells
   hit the cache, which is what turns the summed per-cell cost into the
   paper's reuse accounting (hits/misses and cost paid/avoided are exported
   as the dse.cache_* gauges).  The returned cost per cell is unchanged. *)
let characterization_cache : float Cache.t = Cache.create ()

let hierarchical_cost cells =
  List.fold_left
    (fun acc c ->
      let active = active_qubits c in
      acc
      +. Cache.find_or_compute characterization_cache ~key:(Cell.name c)
           ~dim:(1 lsl active) (fun () -> cube (2. ** float_of_int active)))
    0. cells

let reduction cells = flat_cost cells /. hierarchical_cost cells

let distillation_module () =
  [ Cell.register (); Cell.register (); Cell.parcheck (); Cell.register () ]

let uec_module () = [ Cell.usc () ]

let ct_module () =
  distillation_module () @ [ Cell.seqop (); Cell.seqop () ] @ [ Cell.usc (); Cell.usc () ]
