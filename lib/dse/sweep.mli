(** Parameter-sweep combinators for design-space exploration. *)

val linspace : lo:float -> hi:float -> n:int -> float list
(** [n] evenly spaced points including both endpoints ([n >= 2]). *)

val logspace : lo:float -> hi:float -> n:int -> float list
(** Log-spaced points; [lo], [hi] must be positive. *)

val sweep :
  ?jobs:int -> ?store:Store.t -> 'a list -> f:('a -> 'b) -> ('a * 'b) list
(** Evaluate [f] at every point, fanning points across domains via
    {!Parallel}.  Results are in point order regardless of [jobs]; for
    seed-stable output, [f] must be deterministic per point (derive a fresh
    RNG per point rather than sharing a sequential stream).  Each point is
    timed under a [dse.sweep_point] span carrying the point's index as a
    [point] attribute.

    [store] installs a persistent characterization store for the duration
    of the sweep (see {!Char_store.with_store}): cell characterizations
    inside the points warm-start from disk, and results stay byte-identical
    with the store cold, warm, half-warm, or absent, at any [jobs]. *)

val grid :
  ?jobs:int ->
  ?store:Store.t ->
  'a list ->
  'b list ->
  f:('a -> 'b -> 'c) ->
  ('a * 'b * 'c) list
(** Cartesian product sweep, row-major; parallelised like {!sweep}. *)

val collect :
  ?ledger:string ->
  ?resume:bool ->
  ?progress:bool ->
  ?stop:Collect.stop_rule ->
  ?halt_after:int ->
  ?store:Store.t ->
  seed:int ->
  'a list ->
  task:('a -> Collect.Task.t) ->
  ('a * Collect.stat) list * Collect.outcome
(** Campaign-backed sweep: [task] turns each point into a {!Collect} task and
    the whole sweep runs as one campaign — resumable from [ledger] and
    adaptively stoppable per point.  Returns each point paired with its
    merged stat (in point order) plus the campaign outcome.  Points must map
    to tasks with distinct identities. *)

val collect_grid :
  ?ledger:string ->
  ?resume:bool ->
  ?progress:bool ->
  ?stop:Collect.stop_rule ->
  ?halt_after:int ->
  ?store:Store.t ->
  seed:int ->
  'a list ->
  'b list ->
  task:('a -> 'b -> Collect.Task.t) ->
  (('a * 'b) * Collect.stat) list * Collect.outcome
(** Cartesian-product {!collect}, row-major. *)

val argmin : ('a * float) list -> 'a * float
(** Point with the smallest objective; raises on empty input. *)

val argmax : ('a * float) list -> 'a * float

val pareto : ('a * float * float) list -> ('a * float * float) list
(** Pareto-minimal points of a 2-objective sweep (both minimized), in input
    order. *)
