(** Parameter-sweep combinators for design-space exploration. *)

val linspace : lo:float -> hi:float -> n:int -> float list
(** [n] evenly spaced points including both endpoints ([n >= 2]). *)

val logspace : lo:float -> hi:float -> n:int -> float list
(** Log-spaced points; [lo], [hi] must be positive. *)

val sweep : ?jobs:int -> 'a list -> f:('a -> 'b) -> ('a * 'b) list
(** Evaluate [f] at every point, fanning points across domains via
    {!Parallel}.  Results are in point order regardless of [jobs]; for
    seed-stable output, [f] must be deterministic per point (derive a fresh
    RNG per point rather than sharing a sequential stream). *)

val grid : ?jobs:int -> 'a list -> 'b list -> f:('a -> 'b -> 'c) -> ('a * 'b * 'c) list
(** Cartesian product sweep, row-major; parallelised like {!sweep}. *)

val argmin : ('a * float) list -> 'a * float
(** Point with the smallest objective; raises on empty input. *)

val argmax : ('a * float) list -> 'a * float

val pareto : ('a * float * float) list -> ('a * float * float) list
(** Pareto-minimal points of a 2-objective sweep (both minimized), in input
    order. *)
