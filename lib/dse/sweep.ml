let linspace ~lo ~hi ~n =
  if n < 2 then invalid_arg "Sweep.linspace: need n >= 2";
  List.init n (fun i -> lo +. ((hi -. lo) *. float_of_int i /. float_of_int (n - 1)))

let logspace ~lo ~hi ~n =
  if lo <= 0. || hi <= 0. then invalid_arg "Sweep.logspace: positive bounds required";
  List.map exp (linspace ~lo:(log lo) ~hi:(log hi) ~n)

let points_total = Obs.Counter.create "dse.sweep_points_total"

(* The point index is a span attribute (not part of the name) so profile
   paths aggregate across points while an exported trace still identifies
   which point each span timed — deterministically, since indices come from
   point order, never from domain scheduling. *)
let point_span ~index f x =
  Obs.Counter.incr points_total;
  Obs.Trace.with_span
    ~attrs:[ ("point", string_of_int index) ]
    "dse.sweep_point"
    (fun () -> f x)

let indexed points = List.mapi (fun i x -> (i, x)) points

(* [~store] installs a persistent characterization store for the duration
   of the sweep (restoring the previous one after), so any
   Characterize.characterize_op the points perform — on any worker domain —
   warm-starts from disk instead of re-running density-matrix simulation. *)
let with_store_opt store f =
  match store with None -> f () | Some s -> Char_store.with_store s f

(* Sweep points are independent, so they fan across domains.  Results come
   back in point order regardless of which domain evaluated what; [f] itself
   must be deterministic per point (e.g. take a fresh seed per point, as the
   figure drivers do) for the sweep to be seed-stable at any job count.
   The characterization store never breaks this: its values are bit-exact
   round trips of deterministic computations, so results are byte-identical
   with the store cold, warm, or absent. *)
let sweep ?jobs ?store points ~f =
  with_store_opt store (fun () ->
      Parallel.map_list ?jobs
        (fun (i, x) -> (x, point_span ~index:i f x))
        (indexed points))

let grid ?jobs ?store xs ys ~f =
  with_store_opt store (fun () ->
      Parallel.map_list ?jobs
        (fun (i, (x, y)) -> (x, y, point_span ~index:i (f x) y))
        (indexed (List.concat_map (fun x -> List.map (fun y -> (x, y)) ys) xs)))

(* Campaign-backed sweeps: each point becomes one Collect task, so a long
   sweep inherits the ledger's resume and adaptive stopping.  Points must map
   to distinct tasks (distinct identity fields) or Collect.run rejects the
   campaign; results pair each point with its merged ledger stat, in point
   order. *)
let collect ?ledger ?resume ?progress ?stop ?halt_after ?store ~seed points ~task =
  with_store_opt store (fun () ->
      let tasks = List.map task points in
      let outcome =
        Collect.run ?ledger ?resume ?progress ?stop ?halt_after ~seed tasks
      in
      (* Collect.run returns stats in task (= point) order. *)
      (List.combine points outcome.Collect.stats, outcome))

let collect_grid ?ledger ?resume ?progress ?stop ?halt_after ?store ~seed xs ys
    ~task =
  let points = List.concat_map (fun x -> List.map (fun y -> (x, y)) ys) xs in
  collect ?ledger ?resume ?progress ?stop ?halt_after ?store ~seed points
    ~task:(fun (x, y) -> task x y)

let argmin = function
  | [] -> invalid_arg "Sweep.argmin: empty"
  | hd :: tl ->
      List.fold_left (fun (bx, bv) (x, v) -> if v < bv then (x, v) else (bx, bv)) hd tl

let argmax = function
  | [] -> invalid_arg "Sweep.argmax: empty"
  | hd :: tl ->
      List.fold_left (fun (bx, bv) (x, v) -> if v > bv then (x, v) else (bx, bv)) hd tl

let pareto points =
  let dominated (_, a1, a2) =
    List.exists
      (fun (_, b1, b2) -> b1 <= a1 && b2 <= a2 && (b1 < a1 || b2 < a2))
      points
  in
  List.filter (fun p -> not (dominated p)) points
