type config = {
  ts : float;
  tc : float;
  input_capacity : int;
  output_capacity : int;
  swap_time : float;
  swap_error : float;
  gate_time_2q : float;
  gate_error_2q : float;
  gate_time_1q : float;
  readout_time : float;
  target_fidelity : float;
  source : Ep_source.t;
}

(* §4 settings: all gates coherence-limited (their error is the decoherence
   over their duration — no extra depolarizing), two-qubit gates and SWAPs
   100 ns, single-qubit 40 ns, error-free 1 us readout. *)
let heterogeneous ?(ts = 12.5e-3) ~rate_hz () =
  { ts;
    tc = 0.5e-3;
    input_capacity = 6;
    output_capacity = 3;
    swap_time = 100e-9;
    swap_error = 0.;
    gate_time_2q = 100e-9;
    gate_error_2q = 0.;
    gate_time_1q = 40e-9;
    readout_time = 1e-6;
    target_fidelity = 0.995;
    source = Ep_source.create ~rate_hz () }

let homogeneous ~rate_hz () =
  let het = heterogeneous ~rate_hz () in
  { het with ts = het.tc }

type sample = { time : float; best_output_infidelity : float option }

type result = {
  delivered : int;
  distill_attempts : int;
  distill_successes : int;
  horizon : float;
  trace : sample list;
}

type stored = {
  mutable state : Bell_pair.t;
  mutable since : float;
  rounds : int;  (* how many distillation rounds produced this pair *)
}

type sim = {
  cfg : config;
  rng : Rng.t;
  mutable input : stored list;
  mutable output : stored list;
  mutable parcheck_busy : bool;
  mutable delivered : int;
  mutable attempts : int;
  mutable successes : int;
  mutable trace : sample list;
}

let refresh sim now p =
  let dt = now -. p.since in
  if dt > 0. then begin
    p.state <- Bell_pair.decay p.state ~t1:sim.cfg.ts ~t2:sim.cfg.ts ~dt;
    p.since <- now
  end

let worst pairs =
  match pairs with
  | [] -> None
  | hd :: tl ->
      Some
        (List.fold_left
           (fun acc p ->
             if Bell_pair.fidelity p.state < Bell_pair.fidelity acc.state then p else acc)
           hd tl)

let remove_phys pairs p = List.filter (fun q -> q != p) pairs

(* Swap the two local halves out of storage, rotate, bilateral CNOT, read one
   pair out, move the survivor onward. *)
let op_duration cfg =
  (2. *. cfg.swap_time) +. cfg.gate_time_1q +. cfg.gate_time_2q +. cfg.readout_time

(* Noisy DEJMPS: the pairs sit on compute qubits through the gate phase
   (swap in + rotation + CNOT), taking coherence-limited decay plus any
   configured extra gate/swap depolarizing.  The survivor is swapped onward
   immediately — it waits out the 1 us parity readout in memory, not on
   compute (classical communication is neglected, so keep/discard is applied
   retroactively). *)
let noisy_dejmps cfg a b =
  let gate_phase = cfg.swap_time +. cfg.gate_time_1q +. cfg.gate_time_2q in
  let prep p =
    let p = Bell_pair.decay p ~t1:cfg.tc ~t2:cfg.tc ~dt:gate_phase in
    let p = if cfg.swap_error > 0. then Bell_pair.depolarize p ~p:cfg.swap_error else p in
    if cfg.gate_error_2q > 0. then Bell_pair.depolarize p ~p:cfg.gate_error_2q else p
  in
  let a = prep a and b = prep b in
  let p_succ, out = Bell_pair.dejmps a b in
  let out = Bell_pair.decay out ~t1:cfg.tc ~t2:cfg.tc ~dt:cfg.swap_time in
  let out = if cfg.swap_error > 0. then Bell_pair.depolarize out ~p:cfg.swap_error else out in
  (p_succ, out)

let rec try_start_distill sim des =
  if not sim.parcheck_busy then begin
    let now = Des.now des in
    List.iter (refresh sim now) sim.input;
    (* Priorities 1 and 3: pair only same-round pairs (entanglement
       pumping): re-distilling two distilled pairs catches the phase errors
       their previous round left unchecked, whereas pairing a distilled pair
       with a fresh one re-injects the fresh pair's unchecked errors and
       never converges.  Among same-round pairings (at most C(6,2) = 15),
       take the one whose success branch is best. *)
    let best_pairing =
      let arr = Array.of_list sim.input in
      let best = ref None in
      for i = 0 to Array.length arr - 1 do
        for j = i + 1 to Array.length arr - 1 do
          if arr.(i).rounds = arr.(j).rounds then begin
            let pred = Bell_pair.dejmps_predicted_fidelity arr.(i).state arr.(j).state in
            match !best with
            | Some (p, _, _) when p >= pred -> ()
            | _ -> best := Some (pred, arr.(i), arr.(j))
          end
        done
      done;
      !best
    in
    match best_pairing with
    | Some (pred, a, b) when
        pred > max (Bell_pair.fidelity a.state) (Bell_pair.fidelity b.state) ->
        sim.input <- remove_phys (remove_phys sim.input a) b;
        sim.parcheck_busy <- true;
        sim.attempts <- sim.attempts + 1;
        let sa = a.state and sb = b.state in
        let rounds = max a.rounds b.rounds + 1 in
        Des.schedule des ~delay:(op_duration sim.cfg) (fun des ->
            finish_distill sim des sa sb rounds)
    | _ -> ()
  end

and finish_distill sim des sa sb rounds =
  sim.parcheck_busy <- false;
  let now = Des.now des in
  let p_succ, out = noisy_dejmps sim.cfg sa sb in
  if Rng.bernoulli sim.rng p_succ then begin
    sim.successes <- sim.successes + 1;
    let pair = { state = out; since = now; rounds } in
    if Bell_pair.fidelity out >= sim.cfg.target_fidelity then begin
      (* Priority 2: promote to output memory. *)
      List.iter (refresh sim now) sim.output;
      if List.length sim.output >= sim.cfg.output_capacity then begin
        match worst sim.output with
        | Some w -> sim.output <- remove_phys sim.output w
        | None -> ()
      end;
      sim.output <- pair :: sim.output;
      sim.delivered <- sim.delivered + 1
    end
    else begin
      (* Below target: back to input memory for re-distillation, evicting a
         least-distilled pair when full — the survivor embodies two consumed
         raw pairs and must not be thrown away under arrival pressure. *)
      if List.length sim.input >= sim.cfg.input_capacity then begin
        let min_rounds = List.fold_left (fun acc p -> min acc p.rounds) max_int sim.input in
        let evictable = List.filter (fun p -> p.rounds = min_rounds) sim.input in
        match worst evictable with
        | Some w -> sim.input <- remove_phys sim.input w
        | None -> ()
      end;
      sim.input <- pair :: sim.input
    end
  end;
  try_start_distill sim des

let store_arrival sim des pair =
  let now = Des.now des in
  (* Priority 4: store the incoming pair, evicting the worst stored pair if
     the memory is full and the newcomer is better. *)
  List.iter (refresh sim now) sim.input;
  let fresh = { state = pair; since = now; rounds = 0 } in
  if List.length sim.input < sim.cfg.input_capacity then sim.input <- fresh :: sim.input
  else begin
    (* Evict the globally worst pair when the newcomer beats it: decayed
       intermediates are worth no more than their current fidelity, and
       holding them can deadlock the same-round pairing rule. *)
    match worst sim.input with
    | Some w when Bell_pair.fidelity w.state < Bell_pair.fidelity pair ->
        sim.input <- fresh :: remove_phys sim.input w
    | _ -> ()
  end;
  try_start_distill sim des

let attempts_total = Obs.Counter.create "distill.attempts_total"
let successes_total = Obs.Counter.create "distill.successes_total"
let delivered_total = Obs.Counter.create "distill.delivered_total"

let run_impl ?(trace_dt = 1e-6) cfg rng ~horizon =
  if horizon <= 0. then invalid_arg "Distill_module.run: horizon must be positive";
  let des = Des.create () in
  let sim =
    { cfg; rng; input = []; output = []; parcheck_busy = false; delivered = 0;
      attempts = 0; successes = 0; trace = [] }
  in
  let rec arrival des =
    if Des.now des <= horizon then begin
      store_arrival sim des (Ep_source.sample_pair cfg.source sim.rng);
      Des.schedule des ~delay:(Ep_source.next_gap cfg.source sim.rng) arrival
    end
  in
  let rec observe des =
    let now = Des.now des in
    if now <= horizon then begin
      List.iter (refresh sim now) sim.output;
      let best =
        match sim.output with
        | [] -> None
        | pairs ->
            Some
              (List.fold_left
                 (fun acc p -> min acc (Bell_pair.infidelity p.state))
                 1. pairs)
      in
      sim.trace <- { time = now; best_output_infidelity = best } :: sim.trace;
      Des.schedule des ~delay:trace_dt observe
    end
  in
  Des.schedule des ~delay:(Ep_source.next_gap cfg.source sim.rng) arrival;
  Des.schedule des ~delay:0. observe;
  Des.run_until des horizon;
  Obs.Counter.add attempts_total sim.attempts;
  Obs.Counter.add successes_total sim.successes;
  Obs.Counter.add delivered_total sim.delivered;
  { delivered = sim.delivered;
    distill_attempts = sim.attempts;
    distill_successes = sim.successes;
    horizon;
    trace = List.rev sim.trace }

let run ?trace_dt cfg rng ~horizon =
  Obs.Trace.with_span "distill.run"
    ~attrs:[ ("ts", Printf.sprintf "%g" cfg.ts) ]
    (fun () -> run_impl ?trace_dt cfg rng ~horizon)

let delivered_rate_per_ms (r : result) =
  float_of_int r.delivered /. (r.horizon *. 1e3)

(* Monte-Carlo delivery failures: a shot is one full DES run of [horizon]
   seconds, failing when it delivers fewer than [min_delivered] pairs at
   target fidelity.  Each shot gets its own split RNG stream so the count is
   deterministic at any [jobs] setting (the trace is suppressed — a huge
   trace_dt keeps the observer from firing more than once per run). *)
let failure_count ?jobs cfg ~horizon ~min_delivered ~shots rng =
  if min_delivered < 1 then
    invalid_arg "Distill_module.failure_count: min_delivered must be >= 1";
  Parallel.monte_carlo_count ?jobs ~rng ~shots (fun chunk_rng chunk ->
      let failures = ref 0 in
      for _ = 1 to chunk do
        let r = run_impl ~trace_dt:(2. *. horizon) cfg (Rng.split chunk_rng) ~horizon in
        if r.delivered < min_delivered then incr failures
      done;
      !failures)

let collect_task cfg ~horizon ~min_delivered =
  if horizon <= 0. then
    invalid_arg "Distill_module.collect_task: horizon must be positive";
  if min_delivered < 1 then
    invalid_arg "Distill_module.collect_task: min_delivered must be >= 1";
  Collect.Task.create ~kind:"distill.delivery"
    ~fields:
      [ ("ts", Printf.sprintf "%.17g" cfg.ts);
        ("tc", Printf.sprintf "%.17g" cfg.tc);
        ("input_capacity", string_of_int cfg.input_capacity);
        ("output_capacity", string_of_int cfg.output_capacity);
        ("swap_time", Printf.sprintf "%.17g" cfg.swap_time);
        ("swap_error", Printf.sprintf "%.17g" cfg.swap_error);
        ("gate_time_2q", Printf.sprintf "%.17g" cfg.gate_time_2q);
        ("gate_error_2q", Printf.sprintf "%.17g" cfg.gate_error_2q);
        ("gate_time_1q", Printf.sprintf "%.17g" cfg.gate_time_1q);
        ("readout_time", Printf.sprintf "%.17g" cfg.readout_time);
        ("target_fidelity", Printf.sprintf "%.17g" cfg.target_fidelity);
        ("source_rate_hz", Printf.sprintf "%.17g" cfg.source.Ep_source.rate_hz);
        ("source_infid_lo", Printf.sprintf "%.17g" cfg.source.Ep_source.infidelity_lo);
        ("source_infid_hi", Printf.sprintf "%.17g" cfg.source.Ep_source.infidelity_hi);
        ("horizon", Printf.sprintf "%.17g" horizon);
        ("min_delivered", string_of_int min_delivered) ]
    ~sample:(fun rng shots -> failure_count cfg ~horizon ~min_delivered ~shots rng)
