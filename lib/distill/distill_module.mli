(** The entanglement-distillation module of §4.1 (Figs. 1-4).

    Input memory (Register cells), a ParCheck distillation cell, and an
    output memory, driven by a discrete-event simulation of probabilistic EP
    arrival and the paper's greedy scheduler:

    1. re-distill existing pairs when it would yield improvement,
    2. move distilled pairs to output memory,
    3. distill new pairs if available,
    4. store incoming pairs in memory.

    The heterogeneous module stores idle pairs in multimode-resonator
    registers (coherence Ts); the homogeneous baseline keeps them on compute
    qubits (Ts = Tc). *)

type config = {
  ts : float;  (** storage coherence (T1 = T2), seconds *)
  tc : float;  (** compute coherence, seconds *)
  input_capacity : int;  (** input memory slots (paper: 2 registers x 3 modes) *)
  output_capacity : int;  (** output memory slots (paper: 1 register x 3 modes) *)
  swap_time : float;  (** storage<->compute SWAP duration *)
  swap_error : float;  (** depolarizing strength of that SWAP *)
  gate_time_2q : float;
  gate_error_2q : float;
  gate_time_1q : float;
  readout_time : float;
  target_fidelity : float;
  source : Ep_source.t;
}

val heterogeneous : ?ts:float -> rate_hz:float -> unit -> config
(** Paper defaults: Ts = 12.5 ms, Tc = 0.5 ms, multimode-resonator swaps
    (400 ns, 1e-2), compute gates (100 ns, 1e-3), 1 us readout, target
    fidelity 0.995, capacities 6 / 3. *)

val homogeneous : rate_hz:float -> unit -> config
(** Same module on a sea of compute qubits: Ts = Tc = 0.5 ms and
    compute-grade moves instead of storage swaps. *)

type sample = {
  time : float;
  best_output_infidelity : float option;  (** None while the output is empty *)
}

type result = {
  delivered : int;  (** pairs that entered output memory at target fidelity *)
  distill_attempts : int;
  distill_successes : int;
  horizon : float;
  trace : sample list;  (** Fig-3 time series, oldest first *)
}

val run : ?trace_dt:float -> config -> Rng.t -> horizon:float -> result
(** Simulate for [horizon] seconds.  [trace_dt] (default 1 us) sets the
    sampling period of the Fig-3 trace. *)

val delivered_rate_per_ms : result -> float
(** Fig-4 y-axis: distilled pairs at target fidelity per millisecond. *)

val failure_count :
  ?jobs:int -> config -> horizon:float -> min_delivered:int -> shots:int ->
  Rng.t -> int
(** Monte-Carlo delivery-failure count: each shot simulates the module for
    [horizon] seconds and fails when fewer than [min_delivered] pairs reach
    output memory at target fidelity.  Shots run through {!Parallel} with a
    split RNG stream per shot: seed-deterministic at any [jobs] setting. *)

val collect_task : config -> horizon:float -> min_delivered:int -> Collect.Task.t
(** The delivery experiment as a {!Collect} campaign task (kind
    ["distill.delivery"]), identified by the full module configuration (incl.
    the EP source), [horizon], and [min_delivered]. *)
