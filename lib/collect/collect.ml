(* Sample-collection campaigns (sinter-style).

   A campaign is a set of Monte-Carlo *tasks*, each identified by a content
   hash of its full description — code, distance, rounds, decoder, noise
   model — never by sweep position.  Batches of shots append to a JSONL
   ledger as they complete, so a killed campaign resumes by replaying the
   ledger and sampling only the shortfall; adaptive stopping ends each task
   at max_shots, max_errors, or a target relative Wilson-interval width.

   Determinism contract: batch [i] of a task draws its RNG from
   (campaign seed, task id, i) alone, and samplers chunk shots through
   [Parallel], so every (task, batch) result is bit-identical regardless of
   --jobs, execution order, or how earlier batches were scheduled across
   runs.  A resumed campaign therefore merges to byte-identical statistics
   with an uninterrupted one at the same seed and stopping settings. *)

(* ------------------------------------------------------------ hashing -- *)

(* Stable 64-bit content hash, shared with the DSE characterization store;
   the implementation (and the ledger compatibility it implies) lives in
   Content_hash and is guarded there by pinned-value tests. *)

let hash64 = Content_hash.hash64
let hash_hex = Content_hash.hash_hex

(* -------------------------------------------------------------- tasks -- *)

module Task = struct
  type t = {
    kind : string;
    fields : (string * string) list;
    sample : Rng.t -> int -> int;
  }

  let create ~kind ~fields ~sample =
    if kind = "" then invalid_arg "Collect.Task.create: empty kind";
    List.iter
      (fun (k, _) -> if k = "" then invalid_arg "Collect.Task.create: empty field key")
      fields;
    { kind; fields; sample }

  (* Canonical form: kind then fields sorted by key, every component
     length-prefixed (Content_hash.canonical) so the encoding is injective
     and the hash is independent of the order fields were listed in. *)
  let canonical t =
    Content_hash.canonical
      (t.kind
      :: List.concat_map
           (fun (k, v) -> [ k; v ])
           (List.sort (fun (a, _) (b, _) -> compare a b) t.fields))

  let id t = hash_hex (canonical t)

  let kind t = t.kind
  let fields t = t.fields
  let sample t rng shots = t.sample rng shots

  (* "k=v;k=v" in key order, CSV-safe: delimiter characters inside values
     are replaced, never quoted (the column is for humans and plotting
     scripts; identity lives in the task id). *)
  let params_string t =
    let sanitize s =
      String.map (fun c -> match c with ',' | ';' | '\n' | '\r' | '"' -> '_' | c -> c) s
    in
    List.sort (fun (a, _) (b, _) -> compare a b) t.fields
    |> List.map (fun (k, v) -> sanitize k ^ "=" ^ sanitize v)
    |> String.concat ";"
end

(* ----------------------------------------------------------- sharding -- *)

(* Deterministic task partitioning for multi-process campaigns: a task's
   shard is a pure function of its content hash, so every process of a
   fleet — given the same campaign definition — agrees on the split without
   coordination, and the same property will key per-shard ledger files.
   Shard identity survives task reordering and campaign growth (adding a
   task never moves existing ones), unlike position-based striping. *)

let shard_of ~shards task =
  if shards < 1 then invalid_arg "Collect.shard_of: shards must be >= 1";
  Int64.to_int
    (Int64.rem (Int64.logand (hash64 (Task.canonical task)) Int64.max_int)
       (Int64.of_int shards))

let shard_filter ~shards ~shard tasks =
  if shard < 0 || shard >= shards then
    invalid_arg "Collect.shard_filter: shard out of range";
  List.filter (fun t -> shard_of ~shards t = shard) tasks

(* ------------------------------------------------------------- ledger -- *)

module Ledger = struct
  type record = {
    task_id : string;
    shots : int;
    errors : int;
    seconds : float;
    jobs : int;
    seed : int;
  }

  let record_to_json r =
    Obs.Json.Obj
      [ ("task_id", Obs.Json.String r.task_id);
        ("shots", Obs.Json.Int r.shots);
        ("errors", Obs.Json.Int r.errors);
        ("seconds", Obs.Json.Float r.seconds);
        ("jobs", Obs.Json.Int r.jobs);
        ("seed", Obs.Json.Int r.seed) ]

  let record_of_json j =
    let str k = match Obs.Json.member k j with Some (Obs.Json.String s) -> Some s | _ -> None in
    let int k = match Obs.Json.member k j with Some (Obs.Json.Int i) -> Some i | _ -> None in
    let num k = match Obs.Json.member k j with Some v -> (try Some (Obs.Json.to_float v) with Failure _ -> None) | None -> None in
    match (str "task_id", int "shots", int "errors", num "seconds", int "jobs", int "seed") with
    | Some task_id, Some shots, Some errors, Some seconds, Some jobs, Some seed
      when shots >= 0 && errors >= 0 && errors <= shots ->
        Some { task_id; shots; errors; seconds; jobs; seed }
    | _ -> None

  type writer = { oc : out_channel }

  let open_writer path = { oc = open_out_gen [ Open_append; Open_creat ] 0o644 path }

  (* Crash-safe by construction: one record per line, written and flushed
     atomically enough that a kill leaves at most one truncated final line,
     which replay skips. *)
  let append w r =
    output_string w.oc (Obs.Json.to_string (record_to_json r));
    output_char w.oc '\n';
    flush w.oc

  let close w = close_out w.oc

  type totals = { t_shots : int; t_errors : int; t_seconds : float; t_records : int }

  let no_totals = { t_shots = 0; t_errors = 0; t_seconds = 0.; t_records = 0 }

  let add_totals t (r : record) =
    { t_shots = t.t_shots + r.shots;
      t_errors = t.t_errors + r.errors;
      t_seconds = t.t_seconds +. r.seconds;
      t_records = t.t_records + 1 }

  let fold ~f ~init path =
    if not (Sys.file_exists path) then init
    else
      In_channel.with_open_text path (fun ic ->
          let rec go acc =
            match In_channel.input_line ic with
            | None -> acc
            | Some line ->
                let acc =
                  if String.trim line = "" then acc
                  else
                    match
                      (try record_of_json (Obs.Json.parse line) with Failure _ -> None)
                    with
                    | Some r -> f acc r
                    | None -> acc (* truncated tail of a killed run *)
                in
                go acc
          in
          go init)

  (* Per-task merged totals; partial records for the same task sum. *)
  let replay path : (string, totals) Hashtbl.t =
    let tbl = Hashtbl.create 32 in
    fold path ~init:()
      ~f:(fun () r ->
        let t = Option.value ~default:no_totals (Hashtbl.find_opt tbl r.task_id) in
        Hashtbl.replace tbl r.task_id (add_totals t r));
    tbl
end

(* ----------------------------------------------------------- stopping -- *)

type stop_rule = {
  max_shots : int;  (* per-task ceiling *)
  max_errors : int;  (* stop once this many errors are seen; 0 disables *)
  rel_ci : float;  (* target relative 95% Wilson half-width; 0 disables *)
  min_shots : int;  (* rel_ci is not evaluated below this many shots *)
  batch : int;  (* shots per scheduling batch (one ledger record) *)
}

let default_stop =
  { max_shots = 1_000_000; max_errors = 0; rel_ci = 0.; min_shots = 100; batch = 1024 }

type reason = Max_shots | Max_errors | Rel_ci | Halted

let reason_string = function
  | Max_shots -> "max_shots"
  | Max_errors -> "max_errors"
  | Rel_ci -> "rel_ci"
  | Halted -> "halted"

let wilson_z = 1.96

(* Fixed evaluation order so the reported reason is deterministic. *)
let decide rule ~shots ~errors =
  if shots >= rule.max_shots then Some Max_shots
  else if rule.max_errors > 0 && errors >= rule.max_errors then Some Max_errors
  else if
    rule.rel_ci > 0. && shots >= rule.min_shots
    && Stats.wilson_rel_halfwidth ~successes:errors ~trials:shots ~z:wilson_z
       <= rule.rel_ci
  then Some Rel_ci
  else None

(* ----------------------------------------------------------- progress -- *)

(* One throttled status line on stderr, opt-in and auto-disabled when
   stderr is not a TTY, so redirected runs and CI logs stay clean.  All
   displayed totals read back out of the Obs counters the runner bumps. *)

let c_batches = Obs.Counter.create "collect.batches_total"
let c_shots = Obs.Counter.create "collect.shots_total"
let c_errors = Obs.Counter.create "collect.errors_total"
let c_resumed_shots = Obs.Counter.create "collect.resumed_shots_total"
let g_tasks_done = Obs.Gauge.create "collect.tasks_done"
let h_batch_seconds = Obs.Histogram.create "collect.batch_seconds"

module Progress = struct
  type t = {
    enabled : bool;
    mutable last_ns : int64;
    mutable dirty : bool;  (* a line is on screen *)
  }

  let create ~enabled =
    let enabled = enabled && Unix.isatty Unix.stderr in
    { enabled; last_ns = 0L; dirty = false }

  let si n =
    let f = float_of_int n in
    if f >= 1e9 then Printf.sprintf "%.2fG" (f /. 1e9)
    else if f >= 1e6 then Printf.sprintf "%.2fM" (f /. 1e6)
    else if f >= 1e3 then Printf.sprintf "%.1fk" (f /. 1e3)
    else string_of_int n

  (* Totals, rate and ETA all come from [Obs.Telemetry.campaign_snapshot] —
     the same code path that fills the telemetry JSONL records — so what
     the status line shows is exactly what `hetarch obs tail` reads back. *)
  let tick t ~cur_kind ~cur_shots ~cur_errors =
    if t.enabled then begin
      let now = Obs.now_ns () in
      (* ~5 updates/second: cheap enough to call per batch. *)
      if Int64.sub now t.last_ns >= 200_000_000L then begin
        t.last_ns <- now;
        match Obs.Telemetry.campaign_snapshot () with
        | None -> ()
        | Some c ->
            let eta =
              match c.Obs.Telemetry.c_eta_s with
              | Some e -> Printf.sprintf "eta<=%.0fs" e
              | None -> "eta ?"
            in
            let ci =
              if cur_shots = 0 then "-"
              else begin
                let lo, hi =
                  Stats.wilson_interval ~successes:cur_errors ~trials:cur_shots
                    ~z:wilson_z
                in
                Printf.sprintf "%.3g [%.2g,%.2g]"
                  (float_of_int cur_errors /. float_of_int cur_shots)
                  lo hi
              end
            in
            Printf.eprintf
              "\r\x1b[Kcollect %d/%d tasks  %s shots  %s/s  %s  %s rate %s"
              c.Obs.Telemetry.c_done c.Obs.Telemetry.c_total
              (si c.Obs.Telemetry.c_shots)
              (si (int_of_float c.Obs.Telemetry.c_rate))
              eta cur_kind ci;
            flush stderr;
            t.dirty <- true
      end
    end

  let finish t =
    if t.enabled && t.dirty then begin
      Printf.eprintf "\r\x1b[K";
      flush stderr
    end
end

(* ------------------------------------------------------------ running -- *)

type stat = {
  task : Task.t;
  id : string;
  shots : int;
  errors : int;
  seconds : float;
  resumed_shots : int;
  reason : reason;
}

type outcome = {
  stats : stat list;
  halted : bool;
  new_shots : int;
  wall_seconds : float;
}

(* Batch RNG: a pure function of (campaign seed, task id, batch index) —
   the heart of resume determinism.  63-bit positive so Rng.create's
   splitmix expansion sees the whole hash. *)
let batch_rng ~seed ~id ~index =
  Rng.create
    (Int64.to_int (hash64 (Printf.sprintf "%s/%d/%d" id seed index)) land max_int)

let validate_stop rule =
  if rule.max_shots < 1 then invalid_arg "Collect.run: max_shots must be >= 1";
  if rule.batch < 1 then invalid_arg "Collect.run: batch must be >= 1";
  if rule.max_errors < 0 then invalid_arg "Collect.run: max_errors must be >= 0";
  if rule.min_shots < 1 then invalid_arg "Collect.run: min_shots must be >= 1";
  if not (rule.rel_ci >= 0.) then invalid_arg "Collect.run: rel_ci must be >= 0"

let run ?ledger ?(resume = false) ?(progress = false) ?(stop = default_stop)
    ?halt_after ~seed tasks =
  validate_stop stop;
  (match halt_after with
  | Some h when h < 1 -> invalid_arg "Collect.run: halt_after must be >= 1"
  | _ -> ());
  let tasks = Array.of_list tasks in
  let n = Array.length tasks in
  let ids = Array.map Task.id tasks in
  let seen = Hashtbl.create n in
  Array.iter
    (fun id ->
      if Hashtbl.mem seen id then
        invalid_arg (Printf.sprintf "Collect.run: duplicate task %s" id);
      Hashtbl.add seen id ())
    ids;
  Obs.Trace.with_span "collect.campaign"
    ~attrs:
      (("tasks", string_of_int n)
      :: ("seed", string_of_int seed)
      :: (match Obs.Run.shard () with "" -> [] | s -> [ ("shard", s) ]))
    (fun () ->
      let start_ns = Obs.now_ns () in
      let replayed =
        match ledger with
        | Some path when resume -> Ledger.replay path
        | _ -> Hashtbl.create 0
      in
      let totals i =
        Option.value ~default:Ledger.no_totals (Hashtbl.find_opt replayed ids.(i))
      in
      let shots = Array.init n (fun i -> (totals i).Ledger.t_shots) in
      let errors = Array.init n (fun i -> (totals i).Ledger.t_errors) in
      let seconds = Array.init n (fun i -> (totals i).Ledger.t_seconds) in
      let resumed = Array.copy shots in
      Array.iter (fun s -> Obs.Counter.add c_resumed_shots s) resumed;
      Array.iter (fun s -> Obs.Counter.add c_shots s) resumed;
      Array.iter (fun e -> Obs.Counter.add c_errors e) errors;
      let reason = Array.init n (fun i -> decide stop ~shots:shots.(i) ~errors:errors.(i)) in
      let writer = Option.map Ledger.open_writer ledger in
      let prog = Progress.create ~enabled:progress in
      let appends = ref 0 in
      let halted = ref false in
      let tasks_done () =
        Array.fold_left (fun acc r -> if r <> None then acc + 1 else acc) 0 reason
      in
      (* Per-task progress for telemetry records and the --progress line.
         Called from telemetry ticks, possibly in worker domains mid-batch:
         int array reads are atomic per element, and a slightly stale shot
         count only understates a heartbeat. *)
      Obs.Telemetry.set_campaign
        (Some
           (fun () ->
             List.init n (fun i ->
                 let done_ = reason.(i) <> None in
                 { Obs.Telemetry.tp_id = ids.(i);
                   tp_kind = tasks.(i).Task.kind;
                   tp_shots = shots.(i);
                   tp_errors = errors.(i);
                   tp_resumed = resumed.(i);
                   tp_rel_halfwidth =
                     (if errors.(i) = 0 || shots.(i) = 0 then Float.nan
                      else
                        Stats.wilson_rel_halfwidth ~successes:errors.(i)
                          ~trials:shots.(i) ~z:wilson_z);
                   tp_remaining =
                     (if done_ then 0 else max 0 (stop.max_shots - shots.(i)));
                   tp_done = done_ })));
      Fun.protect
        ~finally:(fun () ->
          Progress.finish prog;
          Option.iter Ledger.close writer)
        (fun () ->
          (* Round-robin passes: one batch per unfinished task per pass, so
             progress (and the ledger) advances evenly across the campaign
             rather than task-by-task. *)
          let any_open = ref (Array.exists (fun r -> r = None) reason) in
          while !any_open && not !halted do
            for i = 0 to n - 1 do
              if reason.(i) = None && not !halted then begin
                (* Batch index from merged shots, so a resumed campaign
                   continues exactly where the ledger left off; ceiling
                   division never re-uses a stream after an odd merge. *)
                let index = (shots.(i) + stop.batch - 1) / stop.batch in
                let size = min stop.batch (stop.max_shots - shots.(i)) in
                let rng = batch_rng ~seed ~id:ids.(i) ~index in
                let t0 = Obs.now_ns () in
                let errs = tasks.(i).Task.sample rng size in
                if errs < 0 || errs > size then
                  invalid_arg
                    (Printf.sprintf "Collect.run: task %s returned %d errors for %d shots"
                       ids.(i) errs size);
                let dt = Int64.to_float (Int64.sub (Obs.now_ns ()) t0) /. 1e9 in
                shots.(i) <- shots.(i) + size;
                errors.(i) <- errors.(i) + errs;
                seconds.(i) <- seconds.(i) +. dt;
                Obs.Counter.incr c_batches;
                Obs.Counter.add c_shots size;
                Obs.Counter.add c_errors errs;
                Obs.Histogram.observe h_batch_seconds dt;
                Option.iter
                  (fun w ->
                    Ledger.append w
                      { Ledger.task_id = ids.(i);
                        shots = size;
                        errors = errs;
                        seconds = dt;
                        jobs = Parallel.jobs ();
                        seed })
                  writer;
                incr appends;
                reason.(i) <- decide stop ~shots:shots.(i) ~errors:errors.(i);
                Obs.Gauge.set g_tasks_done (float_of_int (tasks_done ()));
                (* Batch completion is a telemetry tick point (throttled
                   internally to the configured interval). *)
                Obs.Telemetry.tick ();
                Progress.tick prog ~cur_kind:tasks.(i).Task.kind
                  ~cur_shots:shots.(i) ~cur_errors:errors.(i);
                match halt_after with
                | Some h when !appends >= h -> halted := true
                | _ -> ()
              end
            done;
            any_open := Array.exists (fun r -> r = None) reason
          done;
          let stats =
            List.init n (fun i ->
                { task = tasks.(i);
                  id = ids.(i);
                  shots = shots.(i);
                  errors = errors.(i);
                  seconds = seconds.(i);
                  resumed_shots = resumed.(i);
                  reason = Option.value ~default:Halted reason.(i) })
          in
          let new_shots =
            Array.fold_left ( + ) 0 (Array.mapi (fun i s -> s - resumed.(i)) shots)
          in
          { stats;
            halted = !halted;
            new_shots;
            wall_seconds = Int64.to_float (Int64.sub (Obs.now_ns ()) start_ns) /. 1e9 }))

(* ---------------------------------------------------------------- csv -- *)

(* Merged per-task statistics for plotting.  Deliberately excludes wall
   time: every column is a pure function of (seed, settings), so a resumed
   campaign's CSV is byte-identical to an uninterrupted run's. *)
let csv_header = "task_id,kind,params,shots,errors,rate,wilson_lo,wilson_hi,stop"

let csv stats =
  let b = Buffer.create 256 in
  Buffer.add_string b csv_header;
  Buffer.add_char b '\n';
  List.iter
    (fun st ->
      let rate =
        if st.shots = 0 then 0. else float_of_int st.errors /. float_of_int st.shots
      in
      let lo, hi =
        Stats.wilson_interval ~successes:st.errors ~trials:st.shots ~z:wilson_z
      in
      Printf.bprintf b "%s,%s,%s,%d,%d,%.9g,%.9g,%.9g,%s\n" st.id st.task.Task.kind
        (Task.params_string st.task) st.shots st.errors rate lo hi
        (reason_string st.reason))
    stats;
  Buffer.contents b

let write_csv ~path stats =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc (csv stats))

(* -------------------------------------------------------------- fleet -- *)

(* Coordinator-side shard forking: re-exec this executable once per shard
   with a rewritten argv, handing each child the coordinator's trace
   context so the fleet shares one trace_id and shard spans parent under
   the coordinator's span.  Re-exec — not in-process fork — because the
   observability layer holds process-global state (at_exit finalizers,
   open telemetry sinks, the memoized run id) that a forked image would
   double-fire or double-write. *)

module Fleet = struct
  (* Flags whose value names an output file: each shard writes its own,
     suffixed ".shard<i>", so children never contend for one path. *)
  let path_flags =
    [ "--ledger"; "--csv"; "--trace"; "--telemetry"; "--metrics"; "--snapshot" ]

  let shard_argv ~shard argv =
    let suffix = Printf.sprintf ".shard%d" shard in
    let rec rewrite = function
      | [] -> []
      | flag :: value :: rest when List.mem flag path_flags ->
          flag :: (value ^ suffix) :: rewrite rest
      | arg :: rest -> (
          (* "--flag=value" spelling of the same path flags. *)
          match String.index_opt arg '=' with
          | Some i when List.mem (String.sub arg 0 i) path_flags ->
              (arg ^ suffix) :: rewrite rest
          | _ -> arg :: rewrite rest)
    in
    rewrite (Array.to_list argv) @ [ "--shard"; string_of_int shard ]

  (* The child's environment: drop the coordinator's own run-id pin and
     trace parent (a child inheriting HETARCH_RUN_ID would collide with
     its siblings), then install the coordinator's context as the parent. *)
  let child_env ~trace_parent env =
    let keep e =
      not
        (String.length e >= 15 && String.sub e 0 15 = "HETARCH_RUN_ID="
        || String.length e >= 21 && String.sub e 0 21 = "HETARCH_TRACE_PARENT=")
    in
    Array.append
      (Array.of_list (List.filter keep (Array.to_list env)))
      [| "HETARCH_TRACE_PARENT=" ^ trace_parent |]

  (* Fork every shard, then wait in shard order.  Child stdout goes to
     /dev/null — shards re-run the coordinator's command line, and two
     processes interleaving result tables on one terminal helps nobody;
     stderr (progress, warnings) passes through.  Returns per-shard exit
     codes (128+signal for a signalled child). *)
  let spawn_shards ~shards ~trace_parent argv =
    let devnull = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0o644 in
    Fun.protect
      ~finally:(fun () -> Unix.close devnull)
      (fun () ->
        let env = child_env ~trace_parent (Unix.environment ()) in
        let pids =
          List.init shards (fun shard ->
              let args = Array.of_list (shard_argv ~shard argv) in
              Unix.create_process_env Sys.executable_name args env Unix.stdin
                devnull Unix.stderr)
        in
        List.map
          (fun pid ->
            let _, status = Unix.waitpid [] pid in
            match status with
            | Unix.WEXITED c -> c
            | Unix.WSIGNALED s | Unix.WSTOPPED s -> 128 + s)
          pids)
end
