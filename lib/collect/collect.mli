(** Sample-collection campaigns (sinter-style) for Monte-Carlo sweeps.

    A campaign runs a set of {e tasks} — (sampler, description) pairs —
    under adaptive stopping, appending every completed batch to a JSONL
    ledger.  Statistics are keyed by a content hash of the task description
    (code, distance, rounds, decoder, noise model, ...), so a relaunched
    campaign merges the ledger by {e what was sampled} and only collects
    the remaining shortfall.

    Determinism: batch [i] of a task derives its RNG from the campaign
    seed, the task id, and [i] alone, and samplers chunk their shots
    through {!Parallel} — so merged statistics are bit-identical at any
    [--jobs] setting, and a campaign killed partway then resumed produces
    byte-identical merged CSV to an uninterrupted run (same seed and
    stopping settings).  Adaptive stopping is itself deterministic: it is
    evaluated on merged totals after each batch in a fixed round-robin
    order. *)

val hash_hex : string -> string
(** The campaign content hash (hand-rolled 64-bit mix, stable across runs
    and platforms — deliberately not [Hashtbl.hash]), as 16 hex digits. *)

(** A unit of sampling work plus the description that identifies it. *)
module Task : sig
  type t

  val create :
    kind:string ->
    fields:(string * string) list ->
    sample:(Rng.t -> int -> int) ->
    t
  (** [sample rng shots] returns the number of errors observed in [shots]
      fresh shots.  It must be deterministic in [rng] (chunk through
      {!Parallel} for [--jobs] safety) and must not retain state across
      calls: every batch gets an independent stream.  [fields] should
      capture everything that defines the distribution being sampled. *)

  val id : t -> string
  (** 16-hex-digit content hash of [kind] plus the fields sorted by key —
      independent of field order, stable across runs. *)

  val canonical : t -> string
  (** The length-prefixed canonical description string that [id] hashes. *)

  val kind : t -> string
  val fields : t -> (string * string) list

  val sample : t -> Rng.t -> int -> int
  (** Run the task's sampler directly: [sample t rng shots] is the error
      count over [shots] fresh shots.  Exposed for single-task consumers
      (the serve daemon answers one query per request, outside any
      campaign); the determinism contract of [create]'s [sample] applies
      unchanged. *)

  val params_string : t -> string
  (** Sorted ["k=v;k=v"] rendering with CSV delimiters sanitized. *)
end

val batch_rng : seed:int -> id:string -> index:int -> Rng.t
(** The campaign batch RNG: a pure function of (campaign seed, task id,
    batch index) — the heart of resume determinism.  Exposed so other
    entry points (the serve daemon) can reproduce exactly the stream a
    campaign would have used for batch [index] of the task, making their
    answers byte-comparable with campaign ledgers at the same seed. *)

val shard_of : shards:int -> Task.t -> int
(** Deterministic shard assignment for multi-process campaigns: the task's
    content hash modulo [shards].  A pure function of the task description,
    so every process of a fleet agrees on the split without coordination,
    and adding tasks never moves existing ones.  Raises [Invalid_argument]
    when [shards < 1]. *)

val shard_filter : shards:int -> shard:int -> Task.t list -> Task.t list
(** The tasks {!shard_of} assigns to [shard], preserving input order.
    Raises [Invalid_argument] unless [0 <= shard < shards]. *)

(** Append-only JSONL ledger of batch records. *)
module Ledger : sig
  type record = {
    task_id : string;
    shots : int;
    errors : int;
    seconds : float;
    jobs : int;
    seed : int;
  }

  type writer

  val open_writer : string -> writer
  (** Opens (creating if needed) in append mode. *)

  val append : writer -> record -> unit
  (** One record per line, flushed immediately: a killed process leaves at
      most one truncated final line, which {!replay} skips. *)

  val close : writer -> unit

  val record_to_json : record -> Obs.Json.t
  val record_of_json : Obs.Json.t -> record option
  (** [None] on missing fields or inconsistent counts
      (negative, or [errors > shots]). *)

  type totals = { t_shots : int; t_errors : int; t_seconds : float; t_records : int }

  val no_totals : totals
  val add_totals : totals -> record -> totals

  val replay : string -> (string, totals) Hashtbl.t
  (** Merged per-task totals.  A missing file is an empty ledger; blank and
      unparsable lines (the truncated tail of a killed run) are skipped. *)

  val fold : f:('a -> record -> 'a) -> init:'a -> string -> 'a
end

(** Per-task adaptive stopping rule. *)
type stop_rule = {
  max_shots : int;  (** hard per-task shot ceiling *)
  max_errors : int;  (** stop once this many errors are seen; 0 disables *)
  rel_ci : float;
      (** stop when the relative 95% Wilson half-width drops to this; 0
          disables.  Never fires with zero observed errors, so rare-event
          tasks keep sampling to [max_shots]. *)
  min_shots : int;  (** [rel_ci] is not evaluated below this many shots *)
  batch : int;  (** shots per scheduling batch (= one ledger record) *)
}

val wilson_z : float
(** z-score of the stopping rule's (and CSV's) 95% Wilson interval: 1.96. *)

val default_stop : stop_rule
(** 1M max shots, [max_errors] and [rel_ci] disabled, 100 min shots,
    batches of 1024. *)

type reason = Max_shots | Max_errors | Rel_ci | Halted

val reason_string : reason -> string

type stat = {
  task : Task.t;
  id : string;
  shots : int;  (** merged: replayed + newly sampled *)
  errors : int;
  seconds : float;  (** cumulative sampling seconds (ledger + this run) *)
  resumed_shots : int;  (** shots replayed from the ledger *)
  reason : reason;  (** [Halted] when the campaign stopped first *)
}

type outcome = {
  stats : stat list;  (** one per task, in input order *)
  halted : bool;  (** true iff [halt_after] fired before completion *)
  new_shots : int;  (** shots actually sampled by this run *)
  wall_seconds : float;
}

val run :
  ?ledger:string ->
  ?resume:bool ->
  ?progress:bool ->
  ?stop:stop_rule ->
  ?halt_after:int ->
  seed:int ->
  Task.t list ->
  outcome
(** Run the campaign.  [ledger] appends every batch to that path;
    [resume] additionally replays it first and samples only the shortfall.
    [progress] enables a throttled status line on stderr (auto-disabled
    when stderr is not a TTY).  [halt_after] stops the whole campaign
    after that many ledger appends — a deterministic stand-in for
    [kill -9] used by tests and the CI resume smoke.  Raises
    [Invalid_argument] on duplicate task ids, invalid stopping settings,
    or a sampler returning an error count outside [0, shots].

    Worker fan-out comes from the samplers chunking through {!Parallel};
    set the job count globally ([Parallel.set_jobs] / [--jobs]) — results
    are bit-identical at any setting.

    The campaign registers an [Obs.Telemetry] progress provider (per-task
    shots/errors/Wilson half-width and a rate-based ETA) and offers the
    heartbeat a tick after every batch; the provider stays registered after
    the run so a final forced telemetry record reports the completed
    campaign.  The [--progress] line renders the same
    [Obs.Telemetry.campaign_snapshot] the JSONL records carry. *)

val csv_header : string

val csv : stat list -> string
(** Merged per-task statistics, one line per task in input order:
    [task_id,kind,params,shots,errors,rate,wilson_lo,wilson_hi,stop].
    Excludes wall time, so the bytes depend only on (seed, settings) —
    resumed and uninterrupted campaigns render identically. *)

val write_csv : path:string -> stat list -> unit

(** Coordinator-side shard forking for [collect --shards N]: re-exec this
    executable once per shard with a rewritten argv, handing each child
    the coordinator's trace context ([HETARCH_TRACE_PARENT]) so the fleet
    shares one trace_id and shard spans parent under the coordinator's
    span.  Re-exec rather than in-process fork: the observability layer
    holds process-global state ([at_exit] finalizers, open telemetry
    sinks, the memoized run id) a forked image would double-fire. *)
module Fleet : sig
  val path_flags : string list
  (** Flags whose value names an output file; each shard's copy is
      suffixed [".shard<i>"] so children never contend for one path. *)

  val shard_argv : shard:int -> string array -> string list
  (** The child command line: [argv] with every {!path_flags} value (both
      ["--flag value"] and ["--flag=value"] spellings) suffixed, plus
      ["--shard <i>"] appended. *)

  val child_env : trace_parent:string -> string array -> string array
  (** The child environment: the parent's minus any [HETARCH_RUN_ID] and
      [HETARCH_TRACE_PARENT] bindings (a child inheriting the
      coordinator's run-id pin would collide with its siblings), plus
      [HETARCH_TRACE_PARENT=trace_parent]. *)

  val spawn_shards : shards:int -> trace_parent:string -> string array -> int list
  (** Fork all [shards] children, wait for each, and return exit codes in
      shard order (128+signal for a signalled child).  Child stdout goes
      to [/dev/null] — shards re-run the coordinator's command line and
      interleaved result tables help nobody; stderr passes through. *)
end
