type t = { name : string; kraus : Cmat.t list }

let nqubits t =
  match t.kraus with
  | [] -> invalid_arg "Channel.nqubits: empty channel"
  | k :: _ ->
      let d = k.Cmat.rows in
      let n = int_of_float (Float.round (Float.log2 (float_of_int d))) in
      if 1 lsl n <> d then invalid_arg "Channel.nqubits: non-power-of-two dim";
      n

let c re im = { Complex.re; im }
let r x = c x 0.
let z0 = r 0.

let identity n = { name = "id"; kraus = [ Cmat.identity (1 lsl n) ] }

let amplitude_damping gamma =
  if gamma < 0. || gamma > 1. then invalid_arg "Channel.amplitude_damping";
  { name = Printf.sprintf "amp_damp(%g)" gamma;
    kraus =
      [ Cmat.of_lists [ [ r 1.; z0 ]; [ z0; r (sqrt (1. -. gamma)) ] ];
        Cmat.of_lists [ [ z0; r (sqrt gamma) ]; [ z0; z0 ] ] ] }

let phase_damping lambda =
  if lambda < 0. || lambda > 1. then invalid_arg "Channel.phase_damping";
  { name = Printf.sprintf "phase_damp(%g)" lambda;
    kraus =
      [ Cmat.of_lists [ [ r 1.; z0 ]; [ z0; r (sqrt (1. -. lambda)) ] ];
        Cmat.of_lists [ [ z0; z0 ]; [ z0; r (sqrt lambda) ] ] ] }

let pauli1 ~px ~py ~pz =
  let pi = 1. -. px -. py -. pz in
  if pi < -1e-12 || px < 0. || py < 0. || pz < 0. then invalid_arg "Channel.pauli1";
  let pi = max 0. pi in
  { name = Printf.sprintf "pauli(%g,%g,%g)" px py pz;
    kraus =
      [ Cmat.scale_re (sqrt pi) Gate.i2;
        Cmat.scale_re (sqrt px) Gate.x;
        Cmat.scale_re (sqrt py) Gate.y;
        Cmat.scale_re (sqrt pz) Gate.z ] }

let dephasing p = { (pauli1 ~px:0. ~py:0. ~pz:p) with name = Printf.sprintf "dephase(%g)" p }
let bit_flip p = { (pauli1 ~px:p ~py:0. ~pz:0.) with name = Printf.sprintf "bitflip(%g)" p }

let depolarizing1 p =
  { (pauli1 ~px:(p /. 3.) ~py:(p /. 3.) ~pz:(p /. 3.)) with
    name = Printf.sprintf "depol1(%g)" p }

let depolarizing2 p =
  if p < 0. || p > 1. then invalid_arg "Channel.depolarizing2";
  let paulis = [ "II"; "IX"; "IY"; "IZ"; "XI"; "XX"; "XY"; "XZ";
                 "YI"; "YX"; "YY"; "YZ"; "ZI"; "ZX"; "ZY"; "ZZ" ] in
  let kraus =
    List.map
      (fun ps ->
        let weight = if ps = "II" then 1. -. p else p /. 15. in
        Cmat.scale_re (sqrt weight) (Gate.pauli_string ps))
      paulis
  in
  { name = Printf.sprintf "depol2(%g)" p; kraus }

let idle ~t1 ~t2 ~dt =
  if t1 <= 0. || t2 <= 0. || dt < 0. then invalid_arg "Channel.idle: bad times";
  if t2 > 2. *. t1 +. 1e-12 then
    invalid_arg "Channel.idle: unphysical T2 > 2*T1";
  let gamma = 1. -. exp (-.dt /. t1) in
  (* Total off-diagonal decay must be exp(-dt/t2); amplitude damping alone
     gives exp(-dt/(2 t1)), pure dephasing supplies the rest. *)
  let residual = (1. /. t2) -. (1. /. (2. *. t1)) in
  let lambda = 1. -. exp (-2. *. dt *. residual) in
  let lambda = max 0. lambda in
  let a = amplitude_damping gamma and p = phase_damping lambda in
  { name = Printf.sprintf "idle(t1=%g,t2=%g,dt=%g)" t1 t2 dt;
    kraus =
      List.concat_map (fun ka -> List.map (fun kp -> Cmat.mul kp ka) p.kraus) a.kraus }

let compose a b =
  { name = Printf.sprintf "%s;%s" a.name b.name;
    kraus =
      List.concat_map (fun ka -> List.map (fun kb -> Cmat.mul kb ka) b.kraus) a.kraus }

let of_unitary name u =
  if not (Gate.is_unitary u) then invalid_arg "Channel.of_unitary: not unitary";
  { name; kraus = [ u ] }

let is_cptp ?(tol = 1e-9) t =
  match t.kraus with
  | [] -> false
  | k :: _ ->
      let d = k.Cmat.rows in
      let acc =
        List.fold_left
          (fun acc ki -> Cmat.add acc (Cmat.mul (Cmat.adjoint ki) ki))
          (Cmat.create d d) t.kraus
      in
      Cmat.approx_equal ~tol acc (Cmat.identity d)

let apply t ~targets ~nqubits:n rho =
  let k = nqubits t in
  if List.length targets <> k then invalid_arg "Channel.apply: target count mismatch";
  let dim = 1 lsl n in
  List.fold_left
    (fun acc ki ->
      let full = Cmat.embed_unitary ~nqubits:n ~targets ki in
      Cmat.add acc (Cmat.sandwich full rho))
    (Cmat.create dim dim) t.kraus

(* ------------------------------------------------------ serialization -- *)

(* Binary payload for the persistent characterization store: versioned and
   length-prefixed throughout, floats as raw IEEE-754 bits so a
   serialize/deserialize round trip is bit-exact (warm-started sweeps must
   be byte-identical to cold ones).  The integrity checksum lives in the
   store's record framing, not here; [of_bytes] still validates structure
   exhaustively and returns [None] on any malformation, never raising. *)

let codec_version = 1

let max_name_len = 4096
let max_kraus = 4096
let max_dim = 4096

let to_bytes t =
  let b = Buffer.create 256 in
  Buffer.add_uint8 b codec_version;
  Buffer.add_int32_le b (Int32.of_int (String.length t.name));
  Buffer.add_string b t.name;
  Buffer.add_int32_le b (Int32.of_int (List.length t.kraus));
  List.iter
    (fun (k : Cmat.t) ->
      Buffer.add_int32_le b (Int32.of_int k.Cmat.rows);
      Buffer.add_int32_le b (Int32.of_int k.Cmat.cols);
      let n = k.Cmat.rows * k.Cmat.cols in
      for i = 0 to n - 1 do
        Buffer.add_int64_le b (Int64.bits_of_float k.Cmat.re.(i))
      done;
      for i = 0 to n - 1 do
        Buffer.add_int64_le b (Int64.bits_of_float k.Cmat.im.(i))
      done)
    t.kraus;
  Buffer.contents b

let of_bytes s =
  let pos = ref 0 in
  let len = String.length s in
  let exception Bad in
  let need n = if len - !pos < n then raise Bad in
  let u8 () =
    need 1;
    let v = Char.code s.[!pos] in
    incr pos;
    v
  in
  let i32 () =
    need 4;
    let v = Int32.to_int (String.get_int32_le s !pos) in
    pos := !pos + 4;
    v
  in
  let f64 () =
    need 8;
    let v = Int64.float_of_bits (String.get_int64_le s !pos) in
    pos := !pos + 8;
    v
  in
  try
    if u8 () <> codec_version then raise Bad;
    let name_len = i32 () in
    if name_len < 0 || name_len > max_name_len then raise Bad;
    need name_len;
    let name = String.sub s !pos name_len in
    pos := !pos + name_len;
    let nk = i32 () in
    if nk < 0 || nk > max_kraus then raise Bad;
    let kraus =
      List.init nk (fun _ ->
          let rows = i32 () in
          let cols = i32 () in
          if rows < 1 || rows > max_dim || cols < 1 || cols > max_dim then raise Bad;
          let n = rows * cols in
          let re = Array.init n (fun _ -> f64 ()) in
          let im = Array.init n (fun _ -> f64 ()) in
          Cmat.init rows cols (fun i j ->
              { Complex.re = re.((i * cols) + j); im = im.((i * cols) + j) }))
    in
    if !pos <> len then raise Bad;
    Some { name; kraus }
  with Bad -> None

let average_gate_fidelity_vs_identity t =
  match t.kraus with
  | [] -> 0.
  | k :: _ ->
      let d = float_of_int k.Cmat.rows in
      let sum =
        List.fold_left
          (fun acc ki ->
            let tr = Cmat.trace ki in
            acc +. (tr.Complex.re *. tr.Complex.re) +. (tr.Complex.im *. tr.Complex.im))
          0. t.kraus
      in
      ((sum /. d) +. 1.) /. (d +. 1.)
