(** Quantum channels in Kraus form.

    A channel is a list of Kraus operators of common dimension [2^k]; applying
    it to a density matrix gives [sum_i K_i rho K_i†].  Channels built here
    model the noise processes of superconducting devices: amplitude damping
    (T1), pure dephasing (T_phi), and gate depolarizing errors. *)

type t = { name : string; kraus : Cmat.t list }

val nqubits : t -> int
(** Number of qubits the channel acts on. *)

val identity : int -> t

val amplitude_damping : float -> t
(** [amplitude_damping gamma]: relaxation probability [gamma] per application. *)

val phase_damping : float -> t
(** [phase_damping lambda]: pure-dephasing channel. *)

val dephasing : float -> t
(** Z error with probability p. *)

val bit_flip : float -> t
(** X error with probability p. *)

val pauli1 : px:float -> py:float -> pz:float -> t
(** Single-qubit Pauli channel. *)

val depolarizing1 : float -> t
(** Single-qubit depolarizing: each of X,Y,Z with probability p/3. *)

val depolarizing2 : float -> t
(** Two-qubit depolarizing: each of the 15 non-identity Pauli pairs with
    probability p/15. *)

val idle : t1:float -> t2:float -> dt:float -> t
(** Thermal-relaxation idle channel for duration [dt] on a device with the
    given coherence times: amplitude damping [1 - exp(-dt/t1)] composed with
    the pure dephasing required for total coherence decay [exp(-dt/t2)].
    Requires [t2 <= 2 *. t1] (physical constraint); raises otherwise. *)

val compose : t -> t -> t
(** [compose a b] applies [b] after [a] (Kraus products [Kb * Ka]). *)

val of_unitary : string -> Cmat.t -> t

val is_cptp : ?tol:float -> t -> bool
(** Checks the trace-preservation condition [sum K†K = I]. *)

val apply : t -> targets:int list -> nqubits:int -> Cmat.t -> Cmat.t
(** Apply the channel to the given qubits of a [2^nqubits] density matrix. *)

val to_bytes : t -> string
(** Versioned, length-prefixed binary encoding of the channel with raw
    IEEE-754 float bits, so [of_bytes (to_bytes t)] reconstructs every Kraus
    matrix bit-exactly.  This is the value format of the persistent
    characterization store (the store adds its own framing and checksum
    trailer on top). *)

val of_bytes : string -> t option
(** Inverse of {!to_bytes}.  Returns [None] — never raises — on a codec
    version mismatch, truncation, trailing garbage, or any structurally
    invalid field, so store corruption degrades to a cache miss. *)

val average_gate_fidelity_vs_identity : t -> float
(** Average gate fidelity of the channel relative to the identity, computed by
    the entanglement-fidelity formula
    F_avg = (sum_i |Tr K_i|^2 / d + 1) / (d + 1). *)
