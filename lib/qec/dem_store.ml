(* Compiled-DEM persistence: one store record per circuit, holding the merged
   mechanism list and the matching graph's edge array.  Everything decode
   needs is re-derivable from these two; the graph edges are kept in
   construction order so the rebuilt incident lists — and therefore every
   union-find tie-break — match the cold build exactly. *)

let kind = "qec.dem"
let magic = "QECDEM"
let format_version = 1

let hits_total = Obs.Counter.create "qec.dem_store_hits_total"
let misses_total = Obs.Counter.create "qec.dem_store_misses_total"

(* ---------------------------------------------------------- circuit key --- *)

(* Canonical byte encoding of a circuit: every gate with its qubit indices,
   every noise parameter as raw IEEE-754 bits (so 1e-4 and the nearest
   neighboring double never collide), measurement count, detector and
   observable index lists.  Anything that can change the compiled DEM is in
   here; the key is its content hash. *)
let encode_circuit (c : Circuit.t) =
  let b = Buffer.create 4096 in
  let fbits x = Printf.bprintf b ":%Lx" (Int64.bits_of_float x) in
  Printf.bprintf b "q%d;" c.Circuit.nqubits;
  Array.iter
    (fun (g : Circuit.gate) ->
      (match g with
      | Circuit.H q -> Printf.bprintf b "H%d" q
      | Circuit.S q -> Printf.bprintf b "S%d" q
      | Circuit.X q -> Printf.bprintf b "X%d" q
      | Circuit.Y q -> Printf.bprintf b "Y%d" q
      | Circuit.Z q -> Printf.bprintf b "Z%d" q
      | Circuit.CX (a, t) -> Printf.bprintf b "C%d,%d" a t
      | Circuit.CZ (a, t) -> Printf.bprintf b "E%d,%d" a t
      | Circuit.SWAP (a, t) -> Printf.bprintf b "W%d,%d" a t
      | Circuit.M q -> Printf.bprintf b "M%d" q
      | Circuit.R q -> Printf.bprintf b "R%d" q
      | Circuit.Noise1 { px; py; pz; q } ->
          Printf.bprintf b "N%d" q;
          fbits px;
          fbits py;
          fbits pz
      | Circuit.Depol2 { p; a; b = t } ->
          Printf.bprintf b "D%d,%d" a t;
          fbits p);
      Buffer.add_char b ';')
    c.Circuit.ops;
  Printf.bprintf b "m%d;" c.Circuit.nmeas;
  let index_lists tag groups =
    Printf.bprintf b "%s%d;" tag (Array.length groups);
    Array.iter
      (fun ms ->
        Array.iter (fun m -> Printf.bprintf b "%d," m) ms;
        Buffer.add_char b ';')
      groups
  in
  index_lists "d" c.Circuit.detectors;
  index_lists "o" c.Circuit.observables;
  Buffer.contents b

let circuit_key c =
  Store.key ~kind
    ~fields:
      [ ("circuit", Content_hash.hash_hex (encode_circuit c));
        ("format", string_of_int format_version) ]

(* -------------------------------------------------------------- payload --- *)

let encode sampler graph =
  let b = Buffer.create 4096 in
  Buffer.add_string b magic;
  Buffer.add_uint16_le b format_version;
  Buffer.add_int32_le b (Int32.of_int (Dem_sampler.ndet sampler));
  Buffer.add_int32_le b (Int32.of_int (Dem_sampler.nobs sampler));
  let mechs = Dem_sampler.mechanisms sampler in
  Buffer.add_int32_le b (Int32.of_int (Array.length mechs));
  Array.iter
    (fun (m : Dem.mechanism) ->
      Buffer.add_int64_le b (Int64.bits_of_float m.Dem.p);
      Buffer.add_uint16_le b (Array.length m.Dem.detectors);
      Array.iter (fun d -> Buffer.add_int32_le b (Int32.of_int d)) m.Dem.detectors;
      Buffer.add_int64_le b (Int64.of_int m.Dem.obs_mask))
    mechs;
  let edges = Decoder_uf.edge_list graph in
  Buffer.add_int32_le b (Int32.of_int (Decoder_uf.num_nodes graph));
  Buffer.add_int32_le b (Int32.of_int (Array.length edges));
  Array.iter
    (fun (u, v, weight, logical) ->
      Buffer.add_int32_le b (Int32.of_int u);
      Buffer.add_int32_le b (Int32.of_int v);
      Buffer.add_int32_le b (Int32.of_int weight);
      Buffer.add_uint8 b (if logical then 1 else 0))
    edges;
  Buffer.contents b

exception Malformed

let decode s =
  try
    let pos = ref 0 in
    let need n = if !pos + n > String.length s then raise Malformed in
    let u8 () =
      need 1;
      let v = Char.code s.[!pos] in
      incr pos;
      v
    in
    let u16 () =
      need 2;
      let v = String.get_uint16_le s !pos in
      pos := !pos + 2;
      v
    in
    let i32 () =
      need 4;
      let v = Int32.to_int (String.get_int32_le s !pos) in
      pos := !pos + 4;
      v
    in
    let i64 () =
      need 8;
      let v = String.get_int64_le s !pos in
      pos := !pos + 8;
      v
    in
    need (String.length magic);
    if String.sub s 0 (String.length magic) <> magic then raise Malformed;
    pos := String.length magic;
    if u16 () <> format_version then raise Malformed;
    let ndet = i32 () in
    let nobs = i32 () in
    let nmech = i32 () in
    if ndet < 0 || nobs < 0 || nmech < 0 then raise Malformed;
    let mechs = ref [] in
    for _ = 1 to nmech do
      let p = Int64.float_of_bits (i64 ()) in
      let ndets = u16 () in
      let detectors = Array.init ndets (fun _ -> i32 ()) in
      let obs_mask = Int64.to_int (i64 ()) in
      mechs := { Dem.p; detectors; obs_mask } :: !mechs
    done;
    let nodes = i32 () in
    let nedges = i32 () in
    if nodes <= 0 || nedges < 0 then raise Malformed;
    let edges = ref [] in
    for _ = 1 to nedges do
      let u = i32 () in
      let v = i32 () in
      let weight = i32 () in
      let logical = u8 () <> 0 in
      edges := (u, v, weight, logical) :: !edges
    done;
    if !pos <> String.length s then raise Malformed;
    let sampler = Dem_sampler.of_mechanisms ~ndet ~nobs (List.rev !mechs) in
    let graph = Decoder_uf.weighted_graph ~nodes ~edges:(List.rev !edges) in
    Some (sampler, graph)
  with Malformed | Invalid_argument _ -> None

(* ---------------------------------------------------------- store entry --- *)

let find store circuit =
  match Option.bind (Store.find store (circuit_key circuit)) decode with
  | Some pair ->
      Obs.Counter.incr hits_total;
      Some pair
  | None ->
      Obs.Counter.incr misses_total;
      None

let put store circuit sampler graph =
  Store.put store (circuit_key circuit) (encode sampler graph)

let compile_cached circuit build =
  match Char_store.store () with
  | None -> build ()
  | Some store -> (
      match find store circuit with
      | Some pair -> pair
      | None ->
          let sampler, graph = build () in
          put store circuit sampler graph;
          (sampler, graph))
