(** Persistence of compiled detector error models in the content-addressed
    {!Store}.

    [Dem.of_circuit] walks the whole circuit backward and the matching-graph
    build re-derives edge weights from the merged mechanisms; for the d=13
    surface experiments that compile step dwarfs the first sampling batch.
    This module serializes the compiled DEM ({!Dem_sampler.t}) together with
    its matching graph as one versioned record kind (["qec.dem"]) keyed by
    the content hash of the full circuit — every gate, noise parameter,
    detector and observable — so a warm run (same [--cache-dir]) skips both
    [Dem.of_circuit] and graph construction entirely.

    Record discipline matches HETSTORE/v1: a payload-level magic + format
    version inside the store's own framing, bit-exact float encoding
    (IEEE-754 bits, little-endian), and defensive decoding — truncated,
    corrupt, or version-mismatched payloads degrade to a miss and the next
    [put] heals the entry.  Graph edges round-trip in construction order, so
    a deserialized graph decodes bit-identically to the one built cold. *)

val format_version : int
(** Bump when the payload layout or the meaning of a compiled DEM changes;
    old entries then degrade to misses. *)

val circuit_key : Circuit.t -> string
(** Content-hash store key (via {!Store.key}, kind ["qec.dem"]) of the
    canonical circuit encoding.  Pinned-value tests guard its stability. *)

val encode : Dem_sampler.t -> Decoder_uf.graph -> string
(** Versioned binary payload for a compiled DEM + matching graph pair. *)

val decode : string -> (Dem_sampler.t * Decoder_uf.graph) option
(** Inverse of {!encode}; [None] on any malformed payload. *)

val find : Store.t -> Circuit.t -> (Dem_sampler.t * Decoder_uf.graph) option
(** Look up the compiled pair for a circuit. *)

val put : Store.t -> Circuit.t -> Dem_sampler.t -> Decoder_uf.graph -> unit
(** Write the compiled pair under the circuit's key. *)

val compile_cached :
  Circuit.t -> (unit -> Dem_sampler.t * Decoder_uf.graph) ->
  Dem_sampler.t * Decoder_uf.graph
(** [compile_cached circuit build] resolves through the ambient
    characterization store ({!Char_store.store}, installed by
    [--cache-dir]): disk hit when present, otherwise [build ()] with
    write-back.  With no ambient store this is just [build ()]. *)

val hits_total : Obs.Counter.t
val misses_total : Obs.Counter.t
