(** Circuit-level rotated-surface-code memory experiment (paper §4.2.1).

    Builds the full noisy Clifford circuit for a Z-basis memory experiment —
    the heterogeneous ParCheck standard cell tiled across the code — along
    with the matching graph its detectors decode on.  Noise model follows the
    paper: two-qubit depolarizing error on every CX, coherence-limited idling
    on every qubit in every schedule slot (data and ancilla can have
    different T1 = T2 coherence times, the paper's Tcd / Tca), 1 us
    error-free readout during which data qubits idle. *)

type params = {
  distance : int;
  rounds : int;
  t_data : float;  (** data-qubit coherence Tcd (T1 = T2), seconds *)
  t_anc : float;  (** ancilla-qubit coherence Tca, seconds *)
  p2 : float;  (** two-qubit gate depolarizing probability (paper: 1e-2) *)
  t_1q : float;  (** single-qubit gate time (paper: 40 ns) *)
  t_2q : float;  (** two-qubit gate time (paper: 100 ns) *)
  t_meas : float;  (** readout time (paper: 1 us) *)
}

val default : distance:int -> params
(** Paper's §4.2.1 settings: rounds = distance, Tcd = Tca = 0.1 ms, 1% CX
    error, 40 ns / 100 ns / 1 us timings. *)

type experiment = {
  circuit : Circuit.t;
  graph : Decoder_uf.graph;
  sampler : Dem_sampler.t;
  params : params;
  n_qubits : int;
  n_z_stabs : int;
}

val build : params -> experiment
(** Construct the memory-Z experiment.  Detector i of the circuit is node i
    of the matching graph; the single observable is logical Z. *)

val build_varied : sigma:float -> Rng.t -> params -> experiment
(** Like {!build}, but every qubit's coherence time is drawn log-normally
    around its nominal value with log-std [sigma] — fabrication variability
    (§5: device variability as p-cells).  The decoding graph is rebuilt from
    the varied circuit's DEM, so the decoder knows the per-qubit rates. *)

val logical_error_count : ?jobs:int -> experiment -> Rng.t -> shots:int -> int
(** Monte-Carlo logical error count over [shots] experiments on the fused
    pipeline: each chunk draws one DEM-direct batch
    ({!Dem_sampler.sample}) and decodes it through
    {!Decoder_uf.decode_batch_count} on a pooled arena.  Chunking and
    merge order are fixed, so for a given seeded [rng] the count is
    bit-identical at any [jobs]. *)

val logical_error_rate : ?jobs:int -> experiment -> Rng.t -> shots:int -> float
(** Monte-Carlo logical error rate per shot (per [rounds] cycles). *)

val collect_task : params -> Collect.Task.t
(** The memory experiment as a {!Collect} campaign task (kind
    ["qec.surface"]), identified by distance, rounds, decoder, and the full
    timing/noise parameter set.  Circuit and matching graph are built
    lazily on the first sampled batch. *)

val per_cycle_rate : shot_rate:float -> rounds:int -> float
(** Convert a per-shot logical error probability into the per-cycle rate the
    paper plots: 1 - (1 - P)^(1/rounds). *)
