type edge = { u : int; v : int; weight : int; logical : bool }

(* Border lists and the peel adjacency are stored as half-edges: half-edge
   2*eid sits at edges.(eid).u, half-edge 2*eid + 1 at edges.(eid).v, so one
   int array of next-pointers represents every per-vertex list at once with
   O(1) append and concat — the allocation-free replacement for the cons
   lists the original decoder built per shot. *)
type graph = {
  n : int;  (* real nodes; vertex n is the virtual boundary *)
  edges : edge array;
  (* flat copies of the edge fields: the decode loops touch these instead of
     chasing a pointer into the boxed record array per visit *)
  e_u : int array;
  e_v : int array;
  e_full : int array;  (* 2 * weight, the half-step growth target *)
  e_logical : bool array;
  init_head : int array;  (* vertex -> first incident half-edge, -1 end *)
  init_tail : int array;
  init_next : int array;  (* half-edge -> next incident half-edge of its vertex *)
  total_weight : int;
  (* reusable decode arenas: a LIFO stack in a growable array, not a cons
     list, so steady-state take/release allocate nothing (the array only
     grows when more arenas are live at once than ever before) *)
  mutable pool : arena array;
  mutable npool : int;
  pool_lock : Mutex.t;
}

(* Pre-sized scratch for one in-flight decode.  Nothing in here is allocated
   per shot: every mutation is logged in a dirty stack (deduplicated by a
   mark array) and undone after the shot, so reset cost is proportional to
   the work the shot actually did — a quiet syndrome costs O(defects), not
   O(V + E). *)
and arena = {
  (* union-find over nv = n + 1 vertices *)
  parent : int array;
  rank : int array;
  parity : int array;
  bnd : bool array;  (* cluster touches the boundary *)
  defect : bool array;
  (* border lists (live copy of init_head/tail/next) *)
  head : int array;
  tail : int array;
  next : int array;
  growth : int array;  (* per edge, in half-steps *)
  (* dirty logs: what to restore after the shot *)
  dirty_v : int array;
  mutable ndirty_v : int;
  vmark : bool array;
  dirty_h : int array;
  mutable ndirty_h : int;
  hmark : bool array;
  dirty_e : int array;
  mutable ndirty_e : int;
  (* parent-only dirty log: path compression touches many vertices but
     mutates just [parent], so its undo is one write instead of the
     eight-field restore of the full vertex log *)
  dirty_p : int array;
  mutable ndirty_p : int;
  pmark : bool array;
  (* growth-round bookkeeping *)
  defects : int array;
  mutable ndef : int;
  roots : int array;
  seen : int array;  (* epoch stamps: root already collected this round *)
  mutable epoch : int;
  to_merge : int array;
  mutable nmerge : int;
  (* fast-forward scratch: per-edge growth rate this round (1 or 2 live
     half-edges on active borders), epoch-stamped so it never needs reset *)
  rate : int array;
  rate_seen : int array;
  rate_edges : int array;
  mutable nrate : int;
  full : int array;  (* every edge that reached full growth this shot *)
  mutable nfull : int;
  (* peeling *)
  adj_head : int array;  (* vertex -> first full half-edge, -1 end *)
  adj_next : int array;
  visited : bool array;
  parent_v : int array;
  parent_edge : int array;
  order : int array;
  mutable norder : int;
  stack : int array;
  corr : int array;  (* correction edge ids of the last decode *)
  mutable ncorr : int;
  (* batch transposition scratch: per-shot syndromes for one 63-shot block *)
  syn : Bitvec.t array;
}

let boundary = -1

let arenas_total = Obs.Counter.create "qec.uf_arenas_total"
let decode_shots_total = Obs.Counter.create "qec.uf_decode_shots_total"
let batch_seconds = Obs.Histogram.create "qec.uf_decode_batch_seconds"

let weighted_graph ~nodes ~edges =
  if nodes <= 0 then invalid_arg "Decoder_uf.graph: need nodes";
  let edges =
    Array.of_list
      (List.map
         (fun (u, v, weight, logical) ->
           let v = if v = boundary then nodes else v in
           if u < 0 || u >= nodes then invalid_arg "Decoder_uf.graph: bad endpoint";
           if v < 0 || v > nodes then invalid_arg "Decoder_uf.graph: bad endpoint";
           if u = v then invalid_arg "Decoder_uf.graph: self-loop";
           if weight < 1 then invalid_arg "Decoder_uf.graph: weight must be >= 1";
           { u; v; weight; logical })
         edges)
  in
  let nv = nodes + 1 in
  let ne = Array.length edges in
  let init_head = Array.make nv (-1) in
  let init_tail = Array.make nv (-1) in
  let init_next = Array.make (max 1 (2 * ne)) (-1) in
  let append v h =
    if init_head.(v) = -1 then begin
      init_head.(v) <- h;
      init_tail.(v) <- h
    end
    else begin
      init_next.(init_tail.(v)) <- h;
      init_tail.(v) <- h
    end
  in
  Array.iteri
    (fun i e ->
      append e.u (2 * i);
      append e.v ((2 * i) + 1))
    edges;
  let total_weight = Array.fold_left (fun acc e -> acc + e.weight) 1 edges in
  { n = nodes; edges;
    e_u = Array.map (fun e -> e.u) edges;
    e_v = Array.map (fun e -> e.v) edges;
    e_full = Array.map (fun e -> 2 * e.weight) edges;
    e_logical = Array.map (fun e -> e.logical) edges;
    init_head; init_tail; init_next; total_weight;
    pool = [||]; npool = 0; pool_lock = Mutex.create () }

let graph ~nodes ~edges =
  weighted_graph ~nodes ~edges:(List.map (fun (u, v, l) -> (u, v, 1, l)) edges)

let num_nodes g = g.n
let num_edges g = Array.length g.edges

let edge_list g =
  Array.map
    (fun e -> (e.u, (if e.v = g.n then boundary else e.v), e.weight, e.logical))
    g.edges

(* ------------------------------------------------------------- arena --- *)

let create_arena g =
  Obs.Counter.incr arenas_total;
  let nv = g.n + 1 in
  let ne = Array.length g.edges in
  let nh = max 1 (2 * ne) in
  { parent = Array.init nv (fun v -> v);
    rank = Array.make nv 0;
    parity = Array.make nv 0;
    bnd = Array.init nv (fun v -> v = g.n);
    defect = Array.make nv false;
    head = Array.copy g.init_head;
    tail = Array.copy g.init_tail;
    next = Array.copy g.init_next;
    growth = Array.make (max 1 ne) 0;
    dirty_v = Array.make nv 0;
    ndirty_v = 0;
    vmark = Array.make nv false;
    dirty_h = Array.make nh 0;
    ndirty_h = 0;
    hmark = Array.make nh false;
    dirty_e = Array.make (max 1 ne) 0;
    ndirty_e = 0;
    dirty_p = Array.make nv 0;
    ndirty_p = 0;
    pmark = Array.make nv false;
    defects = Array.make (max 1 g.n) 0;
    ndef = 0;
    roots = Array.make (max 1 g.n) 0;
    seen = Array.make nv 0;
    epoch = 0;
    to_merge = Array.make (max 1 ne) 0;
    nmerge = 0;
    rate = Array.make (max 1 ne) 0;
    rate_seen = Array.make (max 1 ne) 0;
    rate_edges = Array.make (max 1 ne) 0;
    nrate = 0;
    full = Array.make (max 1 ne) 0;
    nfull = 0;
    adj_head = Array.make nv (-1);
    adj_next = Array.make nh 0;
    visited = Array.make nv false;
    parent_v = Array.make nv (-1);
    parent_edge = Array.make nv (-1);
    order = Array.make nv 0;
    norder = 0;
    stack = Array.make nv 0;
    corr = Array.make nv 0;
    ncorr = 0;
    syn = Array.init Bitvec.word_size (fun _ -> Bitvec.create (max 1 g.n)) }

(* Direct lock/unlock instead of [Mutex.protect]: the protected regions are
   straight-line array ops that cannot raise, and protect's closure (plus the
   [Some a] it would return) is exactly the kind of steady-state garbage the
   zero-alloc gate exists to forbid. *)
let take_arena g =
  Mutex.lock g.pool_lock;
  if g.npool > 0 then begin
    g.npool <- g.npool - 1;
    let a = g.pool.(g.npool) in
    Mutex.unlock g.pool_lock;
    a
  end
  else begin
    Mutex.unlock g.pool_lock;
    create_arena g
  end

let release_arena g a =
  Mutex.lock g.pool_lock;
  let cap = Array.length g.pool in
  if g.npool = cap then begin
    let bigger = Array.make (max 4 (2 * cap)) a in
    Array.blit g.pool 0 bigger 0 cap;
    g.pool <- bigger
  end;
  g.pool.(g.npool) <- a;
  g.npool <- g.npool + 1;
  Mutex.unlock g.pool_lock

let touch_v a v =
  if not a.vmark.(v) then begin
    a.vmark.(v) <- true;
    a.dirty_v.(a.ndirty_v) <- v;
    a.ndirty_v <- a.ndirty_v + 1
  end

let touch_h a h =
  if not a.hmark.(h) then begin
    a.hmark.(h) <- true;
    a.dirty_h.(a.ndirty_h) <- h;
    a.ndirty_h <- a.ndirty_h + 1
  end

let touch_p a v =
  if not a.pmark.(v) then begin
    a.pmark.(v) <- true;
    a.dirty_p.(a.ndirty_p) <- v;
    a.ndirty_p <- a.ndirty_p + 1
  end

let touch_e a e =
  if a.growth.(e) = 0 then begin
    a.dirty_e.(a.ndirty_e) <- e;
    a.ndirty_e <- a.ndirty_e + 1
  end

(* Undo every mutation of the shot, returning the arena to the pristine
   create_arena state.  Cost is proportional to the dirty logs. *)
let reset_arena g a =
  for i = 0 to a.ndirty_v - 1 do
    let v = a.dirty_v.(i) in
    a.parent.(v) <- v;
    a.rank.(v) <- 0;
    a.parity.(v) <- 0;
    a.bnd.(v) <- v = g.n;
    a.defect.(v) <- false;
    a.head.(v) <- g.init_head.(v);
    a.tail.(v) <- g.init_tail.(v);
    a.vmark.(v) <- false
  done;
  a.ndirty_v <- 0;
  for i = 0 to a.ndirty_h - 1 do
    let h = a.dirty_h.(i) in
    a.next.(h) <- g.init_next.(h);
    a.hmark.(h) <- false
  done;
  a.ndirty_h <- 0;
  for i = 0 to a.ndirty_e - 1 do
    a.growth.(a.dirty_e.(i)) <- 0
  done;
  a.ndirty_e <- 0;
  for i = 0 to a.ndirty_p - 1 do
    let v = a.dirty_p.(i) in
    a.parent.(v) <- v;
    a.pmark.(v) <- false
  done;
  a.ndirty_p <- 0;
  for k = 0 to a.nfull - 1 do
    let eid = a.full.(k) in
    a.adj_head.(g.e_u.(eid)) <- -1;
    a.adj_head.(g.e_v.(eid)) <- -1
  done;
  a.nfull <- 0;
  for i = 0 to a.norder - 1 do
    a.visited.(a.order.(i)) <- false
  done;
  a.norder <- 0;
  a.ndef <- 0

let rec find a v =
  let p = a.parent.(v) in
  if p = v then v
  else begin
    let r = find a p in
    if a.parent.(v) <> r then begin
      touch_p a v;
      a.parent.(v) <- r
    end;
    r
  end

let merge a u v =
  let ru = find a u and rv = find a v in
  if ru <> rv then begin
    touch_v a ru;
    touch_v a rv;
    let r, other = if a.rank.(ru) >= a.rank.(rv) then (ru, rv) else (rv, ru) in
    a.parent.(other) <- r;
    if a.rank.(ru) = a.rank.(rv) then a.rank.(r) <- a.rank.(r) + 1;
    a.parity.(r) <- (a.parity.(ru) + a.parity.(rv)) land 1;
    a.bnd.(r) <- a.bnd.(ru) || a.bnd.(rv);
    (* concat border lists: r's list ++ other's list, O(1) *)
    if a.head.(r) = -1 then begin
      a.head.(r) <- a.head.(other);
      a.tail.(r) <- a.tail.(other)
    end
    else if a.head.(other) <> -1 then begin
      touch_h a a.tail.(r);
      a.next.(a.tail.(r)) <- a.head.(other);
      a.tail.(r) <- a.tail.(other)
    end
  end

(* Iterative spanning-forest DFS over the full edges from [root].  Top-level
   (not a local closure inside [decode_into]) so the per-shot decode loop
   allocates no closure for it — part of the zero-alloc steady-state
   contract. *)
let peel_dfs g a root =
  if not a.visited.(root) then begin
    a.visited.(root) <- true;
    a.parent_v.(root) <- -1;
    a.parent_edge.(root) <- -1;
    let nstack = ref 1 in
    a.stack.(0) <- root;
    while !nstack > 0 do
      decr nstack;
      let v = a.stack.(!nstack) in
      a.order.(a.norder) <- v;
      a.norder <- a.norder + 1;
      let h = ref a.adj_head.(v) in
      while !h <> -1 do
        let eid = !h lsr 1 in
        let w = if !h land 1 = 0 then g.e_v.(eid) else g.e_u.(eid) in
        if not a.visited.(w) then begin
          a.visited.(w) <- true;
          a.parent_v.(w) <- v;
          a.parent_edge.(w) <- eid;
          a.stack.(!nstack) <- w;
          incr nstack
        end;
        h := a.adj_next.(!h)
      done
    done
  end

(* Grow clusters from defects until every cluster has even parity or touches
   the boundary (same half-step growth rule as the original list-based
   implementation), then peel a spanning forest of the full edges. *)
let decode_into g a syndrome ~record =
  a.ndef <- 0;
  for w = 0 to Bitvec.word_count syndrome - 1 do
    let bits = ref (Bitvec.get_word syndrome w) in
    let base = w * Bitvec.word_size in
    while !bits <> 0 do
      let i = base + Bitvec.ctz !bits in
      if i < g.n then begin
        touch_v a i;
        a.defect.(i) <- true;
        a.parity.(i) <- 1;
        a.defects.(a.ndef) <- i;
        a.ndef <- a.ndef + 1
      end;
      bits := !bits land (!bits - 1)
    done
  done;
  a.ncorr <- 0;
  if a.ndef = 0 then false
  else begin
    let guard = ref 0 in
    let progress = ref true in
    while !progress do
      if !guard > 4 * g.total_weight then
        failwith "Decoder_uf: growth failed to converge";
      incr guard;
      (* Collect the active roots (odd parity, no boundary) of this round. *)
      a.epoch <- a.epoch + 1;
      let nroots = ref 0 in
      for i = 0 to a.ndef - 1 do
        let r = find a a.defects.(i) in
        if a.seen.(r) <> a.epoch then begin
          a.seen.(r) <- a.epoch;
          if a.parity.(r) = 1 && not a.bnd.(r) then begin
            a.roots.(!nroots) <- r;
            incr nroots
          end
        end
      done;
      if !nroots = 0 then progress := false
      else begin
        (* Fast-forward: a border edge grows by its number of live half-edges
           on active borders (1 or 2) per unit round, and nothing else changes
           until an edge fulls.  Jump all growth ahead by the largest round
           count that provably fulls no edge, then run one ordinary unit
           round — bit-identical to running every skipped round one by one. *)
        a.nrate <- 0;
        for i = 0 to !nroots - 1 do
          let h = ref a.head.(a.roots.(i)) in
          while !h <> -1 do
            let eid = !h lsr 1 in
            if a.growth.(eid) < g.e_full.(eid) then begin
              if a.rate_seen.(eid) <> a.epoch then begin
                a.rate_seen.(eid) <- a.epoch;
                a.rate.(eid) <- 1;
                a.rate_edges.(a.nrate) <- eid;
                a.nrate <- a.nrate + 1
              end
              else a.rate.(eid) <- 2
            end;
            h := a.next.(!h)
          done
        done;
        let step = ref max_int in
        for i = 0 to a.nrate - 1 do
          let eid = a.rate_edges.(i) in
          let remaining = g.e_full.(eid) - a.growth.(eid) in
          let rounds = (remaining + a.rate.(eid) - 1) / a.rate.(eid) in
          if rounds < !step then step := rounds
        done;
        if !step > 1 && !step < max_int then begin
          let skip = !step - 1 in
          guard := !guard + skip;
          for i = 0 to a.nrate - 1 do
            let eid = a.rate_edges.(i) in
            touch_e a eid;
            a.growth.(eid) <- a.growth.(eid) + (a.rate.(eid) * skip)
          done
        end;
        a.nmerge <- 0;
        for i = 0 to !nroots - 1 do
          (* An earlier merge this round may have absorbed the root. *)
          let r = find a a.roots.(i) in
          if a.parity.(r) = 1 && not a.bnd.(r) then begin
            (* Walk the border, growing every live edge one half-step.  Full
               edges stay in the list as stale entries — the growth check
               skips them, and with fast-forwarded rounds the lists are
               walked too few times for trimming to pay for its relink
               bookkeeping. *)
            let h = ref a.head.(r) in
            while !h <> -1 do
              let eid = !h lsr 1 in
              let full = g.e_full.(eid) in
              if a.growth.(eid) < full then begin
                touch_e a eid;
                a.growth.(eid) <- a.growth.(eid) + 1;
                if a.growth.(eid) >= full then begin
                  a.to_merge.(a.nmerge) <- eid;
                  a.nmerge <- a.nmerge + 1;
                  a.full.(a.nfull) <- eid;
                  a.nfull <- a.nfull + 1
                end
              end;
              h := a.next.(!h)
            done
          end
        done;
        for i = 0 to a.nmerge - 1 do
          let eid = a.to_merge.(i) in
          merge a g.e_u.(eid) g.e_v.(eid)
        done
      end
    done;
    (* Peel: spanning forest over the full edges, boundary-rooted first so
       odd clusters peel into it. *)
    for k = 0 to a.nfull - 1 do
      let eid = a.full.(k) in
      let u = g.e_u.(eid) and v = g.e_v.(eid) in
      a.adj_next.(2 * eid) <- a.adj_head.(u);
      a.adj_head.(u) <- 2 * eid;
      a.adj_next.((2 * eid) + 1) <- a.adj_head.(v);
      a.adj_head.(v) <- (2 * eid) + 1
    done;
    a.norder <- 0;
    peel_dfs g a g.n;
    for i = 0 to a.ndef - 1 do
      peel_dfs g a a.defects.(i)
    done;
    (* Reverse discovery order processes children before parents. *)
    let flip = ref false in
    for i = a.norder - 1 downto 0 do
      let v = a.order.(i) in
      if v <> g.n && a.defect.(v) && a.parent_v.(v) >= 0 then begin
        let eid = a.parent_edge.(v) in
        if g.e_logical.(eid) then flip := not !flip;
        if record then begin
          a.corr.(a.ncorr) <- eid;
          a.ncorr <- a.ncorr + 1
        end;
        a.defect.(v) <- false;
        let p = a.parent_v.(v) in
        if p <> g.n then begin
          touch_v a p;
          a.defect.(p) <- not a.defect.(p)
        end
      end
    done;
    !flip
  end

(* -------------------------------------------------------- entry points --- *)

(* On an exception mid-decode the arena is simply dropped (never returned to
   the pool), so a failed shot can never poison a later one. *)
let decode g syndrome =
  Obs.Counter.incr decode_shots_total;
  let a = take_arena g in
  let flip = decode_into g a syndrome ~record:false in
  reset_arena g a;
  release_arena g a;
  flip

let decode_correction g syndrome =
  let a = take_arena g in
  let (_ : bool) = decode_into g a syndrome ~record:true in
  let corr = List.init a.ncorr (fun i -> a.corr.(i)) in
  reset_arena g a;
  release_arena g a;
  corr

(* Batch decode: word-level transposition of detector bit-plane rows into
   per-shot syndrome words, one 63-shot block at a time.  Each set detector
   bit is scattered with one masked word read per (detector, block); shots
   whose block word stays empty are never materialized at all.

   [decode_batch_into] is the steady-state core: it writes the predicted
   logical-flip row into a caller-owned [out] and — once the arena pool is
   warm — allocates nothing at all.  Local refs compile to mutable stack
   variables, the arena pool is an array stack, and the timing/histogram
   instrumentation (boxed Int64/float) lives only in the [decode_batch]
   wrapper.  The zero-alloc CI gate (bench kernel fig6-decode-d7-batch-steady
   and the test-level twin) pins this property. *)
let decode_batch_into g ~detectors ~nshots ~out =
  if Array.length detectors <> g.n then
    invalid_arg "Decoder_uf.decode_batch: detector row count mismatch";
  (* a for loop, not Array.iter: the iteration closure would be the only
     per-call allocation of this function *)
  for d = 0 to Array.length detectors - 1 do
    if Bitvec.length detectors.(d) <> nshots then
      invalid_arg "Decoder_uf.decode_batch: row length mismatch"
  done;
  if nshots < 1 then invalid_arg "Decoder_uf.decode_batch: nshots must be >= 1";
  if Bitvec.length out <> nshots then
    invalid_arg "Decoder_uf.decode_batch: out length mismatch";
  Obs.Counter.add decode_shots_total nshots;
  let a = take_arena g in
  Bitvec.clear out;
  let nwords = (nshots + Bitvec.word_size - 1) / Bitvec.word_size in
  for w = 0 to nwords - 1 do
    let occupied = ref 0 in
    for d = 0 to g.n - 1 do
      let bits = ref (Bitvec.get_word detectors.(d) w) in
      while !bits <> 0 do
        let low = !bits land - !bits in
        Bitvec.set a.syn.(Bitvec.ctz low) d true;
        occupied := !occupied lor low;
        bits := !bits land (!bits - 1)
      done
    done;
    let m = ref !occupied in
    while !m <> 0 do
      let low = !m land - !m in
      let s = Bitvec.ctz low in
      let flip = decode_into g a a.syn.(s) ~record:false in
      reset_arena g a;
      if flip then Bitvec.set out ((w * Bitvec.word_size) + s) true;
      Bitvec.clear a.syn.(s);
      m := !m land (!m - 1)
    done
  done;
  release_arena g a

let decode_batch g ~detectors ~nshots =
  let start = Obs.now_ns () in
  let out = Bitvec.create nshots in
  decode_batch_into g ~detectors ~nshots ~out;
  Obs.Histogram.observe batch_seconds
    (Int64.to_float (Int64.sub (Obs.now_ns ()) start) *. 1e-9);
  out

let decode_batch_count g ~detectors ~observable ~nshots =
  let predicted = decode_batch g ~detectors ~nshots in
  Bitvec.xor_into ~dst:predicted observable;
  Bitvec.popcount predicted
