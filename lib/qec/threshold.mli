(** Pseudothreshold estimation (paper Table 3).

    A code with a single distance operates "below pseudothreshold" when its
    logical error rate is below the physical error rate of the hardware.  We
    estimate the crossing point of L(p) = p under code-capacity depolarizing
    noise with the code's own lookup decoder. *)

val logical_rate :
  ?jobs:int -> Code.t -> Decoder_lookup.t -> p:float -> shots:int -> Rng.t -> float
(** Monte-Carlo logical error rate under iid single-qubit depolarizing noise
    of strength [p] (each qubit suffers X, Y or Z with probability p/3 each),
    with perfect syndrome extraction and lookup decoding.  A shot errs when
    either the X- or Z-type residual flips the logical qubit.  The shot loop
    is allocation-free (mask-based decoding) and chunked through {!Parallel}:
    seed-deterministic at any [jobs] setting. *)

val pseudothreshold :
  ?lo:float -> ?hi:float -> ?iters:int -> ?shots:int -> Code.t -> Rng.t -> float
(** Bisection solve of L(p) = p.  Defaults: lo = 1e-4, hi = 0.45, 12
    iterations, 20_000 shots per evaluation. *)
