(** Pseudothreshold estimation (paper Table 3).

    A code with a single distance operates "below pseudothreshold" when its
    logical error rate is below the physical error rate of the hardware.  We
    estimate the crossing point of L(p) = p under code-capacity depolarizing
    noise with the code's own lookup decoder. *)

val logical_errors :
  ?jobs:int -> Code.t -> Decoder_lookup.t -> p:float -> shots:int -> Rng.t -> int
(** Monte-Carlo logical error {e count} under iid single-qubit depolarizing
    noise of strength [p] (each qubit suffers X, Y or Z with probability p/3
    each), with perfect syndrome extraction and lookup decoding.  A shot errs
    when either the X- or Z-type residual flips the logical qubit.  Errors
    are drawn batch-natively — per-qubit X/Z bit-plane rows from sparse
    disjoint Bernoulli masks, word-block-transposed into per-shot int masks
    for the decoder's mask-based fast path — and chunked through
    {!Parallel}: seed-deterministic at any [jobs] setting. *)

val logical_rate :
  ?jobs:int -> Code.t -> Decoder_lookup.t -> p:float -> shots:int -> Rng.t -> float
(** [logical_errors] divided by [shots]. *)

val collect_task : Code.t -> p:float -> Collect.Task.t
(** The same estimator packaged as a {!Collect} campaign task (kind
    ["qec.threshold"]), identified by code name, [n], distance, decoder, and
    noise model — resumable and adaptively stoppable.  The lookup decoder is
    built lazily on the first sampled batch. *)

val pseudothreshold :
  ?jobs:int ->
  ?lo:float -> ?hi:float -> ?iters:int -> ?shots:int -> Code.t -> Rng.t -> float
(** Bisection solve of L(p) = p.  Defaults: lo = 1e-4, hi = 0.45, 12
    iterations, 20_000 shots per evaluation.  [jobs] is threaded to every
    {!logical_rate} evaluation; the chunked sampler keeps each evaluation —
    and therefore the bisection trajectory — bit-identical at any job
    count. *)
