let bisection_iters_total = Obs.Counter.create "qec.threshold_bisection_iters_total"
let threshold_shots_total = Obs.Counter.create "qec.threshold_shots_total"

let logical_rate (code : Code.t) decoder ~p ~shots rng =
  if p < 0. || p > 1. then invalid_arg "Threshold.logical_rate: bad p";
  Obs.Counter.add threshold_shots_total shots;
  let errors = ref 0 in
  for _ = 1 to shots do
    let xerr = ref [] and zerr = ref [] in
    for q = 0 to code.Code.n - 1 do
      if Rng.bernoulli rng p then begin
        match Rng.int rng 3 with
        | 0 -> xerr := q :: !xerr
        | 1 -> zerr := q :: !zerr
        | _ ->
            xerr := q :: !xerr;
            zerr := q :: !zerr
      end
    done;
    let x_fail = Decoder_lookup.logical_x_error_after_correction decoder ~actual:!xerr in
    let z_fail = Decoder_lookup.logical_z_error_after_correction decoder ~actual:!zerr in
    if x_fail || z_fail then incr errors
  done;
  float_of_int !errors /. float_of_int shots

let pseudothreshold ?(lo = 1e-4) ?(hi = 0.45) ?(iters = 12) ?(shots = 20_000)
    (code : Code.t) rng =
  Obs.Trace.with_span "qec.pseudothreshold" ~attrs:[ ("code", code.Code.name) ]
    (fun () ->
      let decoder = Decoder_lookup.create code in
      let excess p = logical_rate code decoder ~p ~shots rng -. p in
      let lo = ref lo and hi = ref hi in
      (* L(p) - p is negative below pseudothreshold.  If the code is never
         below threshold the bisection collapses to lo. *)
      if excess !lo > 0. then !lo
      else begin
        for _ = 1 to iters do
          Obs.Counter.incr bisection_iters_total;
          let mid = 0.5 *. (!lo +. !hi) in
          if excess mid < 0. then lo := mid else hi := mid
        done;
        0.5 *. (!lo +. !hi)
      end)
