let bisection_iters_total = Obs.Counter.create "qec.threshold_bisection_iters_total"
let threshold_shots_total = Obs.Counter.create "qec.threshold_shots_total"

let logical_errors ?jobs (code : Code.t) decoder ~p ~shots rng =
  if p < 0. || p > 1. then invalid_arg "Threshold.logical_errors: bad p";
  Obs.Counter.add threshold_shots_total shots;
  let n = code.Code.n in
  let p3 = p /. 3. in
  (* Bit-plane error generation: per qubit one X row and one Z row with
     bit s = shot s.  The categorical (p/3, p/3, p/3) depolarizing channel
     is drawn as three DISJOINT sparse Bernoulli masks by conditional
     thinning (the Frame_batch trick) — X flips on m1|m2, Z on m2|m3 — so
     the RNG cost is O(p * shots) geometric-gap draws instead of one draw
     per (shot, qubit).  Rows are then transposed one 63-shot word block at
     a time into per-shot int masks for the decoder's mask-based fast
     path.  Chunked through Parallel, so the estimate is
     seed-deterministic at any job count. *)
  Parallel.monte_carlo_count ?jobs ~rng ~shots (fun rng nshots ->
      let xrows = Array.init n (fun _ -> Bitvec.create nshots) in
      let zrows = Array.init n (fun _ -> Bitvec.create nshots) in
      let m1 = Bitvec.create nshots in
      let m2 = Bitvec.create nshots in
      let m3 = Bitvec.create nshots in
      let thin1 = if 1. -. p3 <= 0. then 0. else min 1. (p3 /. (1. -. p3)) in
      let thin2 =
        if 1. -. (2. *. p3) <= 0. then 0.
        else min 1. (p3 /. (1. -. (2. *. p3)))
      in
      for q = 0 to n - 1 do
        Bitvec.random_into rng m1 ~p:p3;
        Bitvec.random_into rng m2 ~p:thin1;
        Bitvec.andnot_into ~dst:m2 m1;
        Bitvec.random_into rng m3 ~p:thin2;
        Bitvec.andnot_into ~dst:m3 m1;
        Bitvec.andnot_into ~dst:m3 m2;
        Bitvec.xor_into ~dst:xrows.(q) m1;
        Bitvec.xor_into ~dst:xrows.(q) m2;
        Bitvec.xor_into ~dst:zrows.(q) m2;
        Bitvec.xor_into ~dst:zrows.(q) m3
      done;
      let ws = Bitvec.word_size in
      let xerr = Array.make ws 0 in
      let zerr = Array.make ws 0 in
      let errors = ref 0 in
      for w = 0 to Bitvec.word_count xrows.(0) - 1 do
        Array.fill xerr 0 ws 0;
        Array.fill zerr 0 ws 0;
        for q = 0 to n - 1 do
          let bit = 1 lsl q in
          let scatter word (dst : int array) =
            let word = ref word in
            while !word <> 0 do
              let low = !word land - !word in
              let s = Bitvec.ctz low in
              dst.(s) <- dst.(s) lor bit;
              word := !word land (!word - 1)
            done
          in
          scatter (Bitvec.get_word xrows.(q) w) xerr;
          scatter (Bitvec.get_word zrows.(q) w) zerr
        done;
        let limit = min ws (nshots - (w * ws)) in
        for s = 0 to limit - 1 do
          if
            Decoder_lookup.logical_x_flip_mask decoder ~actual:xerr.(s)
            || Decoder_lookup.logical_z_flip_mask decoder ~actual:zerr.(s)
          then incr errors
        done
      done;
      !errors)

let logical_rate ?jobs code decoder ~p ~shots rng =
  float_of_int (logical_errors ?jobs code decoder ~p ~shots rng)
  /. float_of_int shots

(* Campaign integration: the same sampler as a Collect task, identified by
   code, decoder, and noise model rather than sweep position.  The lookup
   decoder is built on first batch, not at task-definition time — a resumed
   campaign whose task is already converged never pays for it. *)
let collect_task (code : Code.t) ~p =
  if p < 0. || p > 1. then invalid_arg "Threshold.collect_task: bad p";
  let decoder = lazy (Decoder_lookup.create code) in
  Collect.Task.create ~kind:"qec.threshold"
    ~fields:
      [ ("code", code.Code.name);
        ("n", string_of_int code.Code.n);
        ("distance", string_of_int code.Code.distance);
        ("decoder", "lookup");
        ("noise", "code_capacity_depolarizing");
        ("p", Printf.sprintf "%.17g" p) ]
    ~sample:(fun rng shots ->
      logical_errors code (Lazy.force decoder) ~p ~shots rng)

let pseudothreshold ?jobs ?(lo = 1e-4) ?(hi = 0.45) ?(iters = 12)
    ?(shots = 20_000) (code : Code.t) rng =
  Obs.Trace.with_span "qec.pseudothreshold" ~attrs:[ ("code", code.Code.name) ]
    (fun () ->
      let decoder = Decoder_lookup.create code in
      let excess p = logical_rate ?jobs code decoder ~p ~shots rng -. p in
      let lo = ref lo and hi = ref hi in
      (* L(p) - p is negative below pseudothreshold.  If the code is never
         below threshold the bisection collapses to lo. *)
      if excess !lo > 0. then !lo
      else begin
        for _ = 1 to iters do
          Obs.Counter.incr bisection_iters_total;
          let mid = 0.5 *. (!lo +. !hi) in
          if excess mid < 0. then lo := mid else hi := mid
        done;
        0.5 *. (!lo +. !hi)
      end)
