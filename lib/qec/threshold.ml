let bisection_iters_total = Obs.Counter.create "qec.threshold_bisection_iters_total"
let threshold_shots_total = Obs.Counter.create "qec.threshold_shots_total"

let logical_errors ?jobs (code : Code.t) decoder ~p ~shots rng =
  if p < 0. || p > 1. then invalid_arg "Threshold.logical_errors: bad p";
  Obs.Counter.add threshold_shots_total shots;
  let n = code.Code.n in
  (* Errors live in int bitmasks and go through the decoder's mask-based
     fast path: the shot loop allocates nothing.  Chunked through Parallel,
     so the estimate is seed-deterministic at any job count. *)
  Parallel.monte_carlo_count ?jobs ~rng ~shots (fun rng nshots ->
        let errors = ref 0 in
        for _ = 1 to nshots do
          let xerr = ref 0 and zerr = ref 0 in
          for q = 0 to n - 1 do
            if Rng.bernoulli rng p then begin
              let bit = 1 lsl q in
              match Rng.int rng 3 with
              | 0 -> xerr := !xerr lor bit
              | 1 -> zerr := !zerr lor bit
              | _ ->
                  xerr := !xerr lor bit;
                  zerr := !zerr lor bit
            end
          done;
          let x_fail = Decoder_lookup.logical_x_flip_mask decoder ~actual:!xerr in
          let z_fail = Decoder_lookup.logical_z_flip_mask decoder ~actual:!zerr in
          if x_fail || z_fail then incr errors
        done;
        !errors)

let logical_rate ?jobs code decoder ~p ~shots rng =
  float_of_int (logical_errors ?jobs code decoder ~p ~shots rng)
  /. float_of_int shots

(* Campaign integration: the same sampler as a Collect task, identified by
   code, decoder, and noise model rather than sweep position.  The lookup
   decoder is built on first batch, not at task-definition time — a resumed
   campaign whose task is already converged never pays for it. *)
let collect_task (code : Code.t) ~p =
  if p < 0. || p > 1. then invalid_arg "Threshold.collect_task: bad p";
  let decoder = lazy (Decoder_lookup.create code) in
  Collect.Task.create ~kind:"qec.threshold"
    ~fields:
      [ ("code", code.Code.name);
        ("n", string_of_int code.Code.n);
        ("distance", string_of_int code.Code.distance);
        ("decoder", "lookup");
        ("noise", "code_capacity_depolarizing");
        ("p", Printf.sprintf "%.17g" p) ]
    ~sample:(fun rng shots ->
      logical_errors code (Lazy.force decoder) ~p ~shots rng)

let pseudothreshold ?(lo = 1e-4) ?(hi = 0.45) ?(iters = 12) ?(shots = 20_000)
    (code : Code.t) rng =
  Obs.Trace.with_span "qec.pseudothreshold" ~attrs:[ ("code", code.Code.name) ]
    (fun () ->
      let decoder = Decoder_lookup.create code in
      let excess p = logical_rate code decoder ~p ~shots rng -. p in
      let lo = ref lo and hi = ref hi in
      (* L(p) - p is negative below pseudothreshold.  If the code is never
         below threshold the bisection collapses to lo. *)
      if excess !lo > 0. then !lo
      else begin
        for _ = 1 to iters do
          Obs.Counter.incr bisection_iters_total;
          let mid = 0.5 *. (!lo +. !hi) in
          if excess mid < 0. then lo := mid else hi := mid
        done;
        0.5 *. (!lo +. !hi)
      end)
