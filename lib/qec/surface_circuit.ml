type params = {
  distance : int;
  rounds : int;
  t_data : float;
  t_anc : float;
  p2 : float;
  t_1q : float;
  t_2q : float;
  t_meas : float;
}

let default ~distance =
  { distance;
    rounds = distance;
    t_data = 1e-4;
    t_anc = 1e-4;
    p2 = 1e-2;
    t_1q = 40e-9;
    t_2q = 100e-9;
    t_meas = 1e-6 }

type experiment = {
  circuit : Circuit.t;
  graph : Decoder_uf.graph;
  sampler : Dem_sampler.t;
  params : params;
  n_qubits : int;
  n_z_stabs : int;
}

type stab = {
  kind : [ `X | `Z ];
  (* corner data qubits in NW, NE, SW, SE order; None if outside the grid *)
  corners : int option array;
  anc : int;
}

(* Plaquette enumeration mirrors Codes.surface so the stabilizers here match
   the abstract code exactly. *)
let stabs_of_distance d =
  let q r c = (r * d) + c in
  let corner r c = if r >= 0 && r < d && c >= 0 && c < d then Some (q r c) else None in
  let acc = ref [] in
  let next_anc = ref (d * d) in
  for r = -1 to d - 1 do
    for c = -1 to d - 1 do
      let corners = [| corner r c; corner r (c + 1); corner (r + 1) c; corner (r + 1) (c + 1) |] in
      let weight = Array.fold_left (fun n o -> if o = None then n else n + 1) 0 corners in
      let is_x = ((r + c) mod 2 + 2) mod 2 = 0 in
      let top_or_bottom = r = -1 || r = d - 1 in
      let left_or_right = c = -1 || c = d - 1 in
      let keep =
        match weight with
        | 4 -> true
        | 2 ->
            (top_or_bottom && is_x)
            || (left_or_right && (not is_x) && not top_or_bottom)
        | _ -> false
      in
      if keep then begin
        let anc = !next_anc in
        incr next_anc;
        acc := { kind = (if is_x then `X else `Z); corners; anc } :: !acc
      end
    done
  done;
  (List.rev !acc, !next_anc)

let build_with ~coherence p =
  let d = p.distance in
  if d < 2 then invalid_arg "Surface_circuit.build: distance >= 2";
  if p.rounds < 1 then invalid_arg "Surface_circuit.build: rounds >= 1";
  let stabs, n_qubits = stabs_of_distance d in
  let n_data = d * d in
  let zs = List.filter (fun s -> s.kind = `Z) stabs in
  let xs = List.filter (fun s -> s.kind = `X) stabs in
  let n_z = List.length zs in
  let b = Circuit.builder n_qubits in
  (* Gates are coherence-limited (paper §4): every qubit, including gate
     participants, decoheres for the slot duration; CX adds its 1%
     depolarizing on top. *)
  let idle_all ~dt =
    for q = 0 to n_qubits - 1 do
      Circuit.idle_noise b ~t1:(coherence q) ~t2:(coherence q) ~dt q
    done
  in
  (* CX step order: Z stabilizers touch their corners in NW,NE,SW,SE order;
     X stabilizers in NW,SW,NE,SE — the standard zigzag that keeps the two
     interleaved schedules collision-free. *)
  let corner_at s step =
    match s.kind with
    | `Z -> s.corners.(step)
    | `X -> s.corners.([| 0; 2; 1; 3 |].(step))
  in
  let z_meas = Array.make_matrix p.rounds n_z 0 in
  for round = 0 to p.rounds - 1 do
    (* Slot 1: H on X ancillas. *)
    List.iter (fun s -> Circuit.add b (Circuit.H s.anc)) xs;
    idle_all ~dt:p.t_1q;
    (* Slots 2-5: CX layers. *)
    for step = 0 to 3 do
      List.iter
        (fun s ->
          match corner_at s step with
          | None -> ()
          | Some data ->
              (match s.kind with
              | `Z -> Circuit.add b (Circuit.CX (data, s.anc))
              | `X -> Circuit.add b (Circuit.CX (s.anc, data)));
              if p.p2 > 0. then
                Circuit.add b (Circuit.Depol2 { p = p.p2; a = data; b = s.anc }))
        stabs;
      idle_all ~dt:p.t_2q
    done;
    (* Slot 6: H on X ancillas again. *)
    List.iter (fun s -> Circuit.add b (Circuit.H s.anc)) xs;
    idle_all ~dt:p.t_1q;
    (* Slot 7: measure + reset every ancilla (1 us, error-free readout);
       data qubits idle through it. *)
    List.iteri
      (fun i s ->
        let m = Circuit.measure b s.anc in
        Circuit.add b (Circuit.R s.anc);
        z_meas.(round).(i) <- m)
      zs;
    List.iter
      (fun s ->
        let (_ : int) = Circuit.measure b s.anc in
        Circuit.add b (Circuit.R s.anc))
      xs;
    for q = 0 to n_data - 1 do
      Circuit.idle_noise b ~t1:(coherence q) ~t2:(coherence q) ~dt:p.t_meas q
    done
  done;
  (* Z detectors: first round compares against the deterministic |0...0>
     preparation; later rounds compare consecutive ancilla readings. *)
  for round = 0 to p.rounds - 1 do
    List.iteri
      (fun i _ ->
        if round = 0 then Circuit.add_detector b [ z_meas.(0).(i) ]
        else Circuit.add_detector b [ z_meas.(round - 1).(i); z_meas.(round).(i) ])
      zs
  done;
  (* Final transversal data measurement (error-free, as the readout noise is
     already in the idles); detectors close each Z stabilizer. *)
  let data_meas = Array.init n_data (fun q -> Circuit.measure b q) in
  List.iteri
    (fun i s ->
      let supp =
        Array.to_list s.corners
        |> List.filter_map (fun o -> Option.map (fun q -> data_meas.(q)) o)
      in
      Circuit.add_detector b (z_meas.(p.rounds - 1).(i) :: supp))
    zs;
  (* Logical Z = top row. *)
  Circuit.add_observable b (List.init d (fun c -> data_meas.(c)));
  let circuit = Circuit.finish b in
  Circuit.validate circuit;
  (* Compiled DEM + decoding graph straight from the circuit's detector
     error model, so edge weights and logical flags reflect the exact noise
     (including hook errors and mid-cycle mechanisms).  Both are resolved
     through the ambient persistent store when one is installed
     (--cache-dir): a warm run skips Dem.of_circuit and graph construction
     and decodes on a byte-identical deserialized graph. *)
  let sampler, graph =
    Dem_store.compile_cached circuit (fun () ->
        let sampler = Dem_sampler.compile circuit in
        let graph =
          Dem_graph.build
            ~nodes:(Array.length circuit.Circuit.detectors)
            (Array.to_list (Dem_sampler.mechanisms sampler))
        in
        (sampler, graph))
  in
  { circuit; graph; sampler; params = p; n_qubits; n_z_stabs = n_z }

let nominal_coherence p ~n_data q = if q < n_data then p.t_data else p.t_anc

let build p =
  let n_data = p.distance * p.distance in
  build_with ~coherence:(nominal_coherence p ~n_data) p

let build_varied ~sigma rng p =
  if sigma < 0. then invalid_arg "Surface_circuit.build_varied: sigma >= 0";
  let _, n_qubits = stabs_of_distance p.distance in
  let n_data = p.distance * p.distance in
  (* Log-normal with unit mean: exp(sigma g - sigma^2 / 2). *)
  let factors =
    Array.init n_qubits (fun _ ->
        exp ((sigma *. Rng.gaussian rng) -. (sigma *. sigma /. 2.)))
  in
  build_with ~coherence:(fun q -> nominal_coherence p ~n_data q *. factors.(q)) p

let shots_total = Obs.Counter.create "qec.shots_total"

(* Fused estimation: every Monte-Carlo chunk draws one DEM-direct batch
   (skipping circuit re-simulation) and decodes it through the batch
   union-find API on a pooled arena — no per-shot transposition, decode
   allocation, or scalar decode calls anywhere on the hot path.  Chunk
   layout and merge order come from Parallel.monte_carlo, so counts stay
   bit-identical for a given seed at any --jobs. *)
let logical_error_count ?jobs exp rng ~shots =
  if shots <= 0 then
    invalid_arg "Surface_circuit.logical_error_count: shots must be positive";
  Obs.Counter.add shots_total shots;
  Obs.Trace.with_span "qec.logical_error_rate"
    ~attrs:
      [ ("distance", string_of_int exp.params.distance);
        ("shots", string_of_int shots) ]
    (fun () ->
      Parallel.monte_carlo_count ?jobs ~rng ~shots (fun rng nshots ->
          let b = Dem_sampler.sample exp.sampler rng ~nshots in
          Decoder_uf.decode_batch_count exp.graph
            ~detectors:b.Frame_batch.detectors
            ~observable:b.Frame_batch.observables.(0) ~nshots))

let logical_error_rate ?jobs exp rng ~shots =
  float_of_int (logical_error_count ?jobs exp rng ~shots) /. float_of_int shots

(* Campaign integration: identity covers the full noise/coherence model, so
   a DSE grid over (distance, Tcd, Tca, p2) resumes point-by-point from the
   ledger.  Circuit and matching graph are built on the first batch. *)
let collect_task p =
  let exp = lazy (build p) in
  Collect.Task.create ~kind:"qec.surface"
    ~fields:
      [ ("distance", string_of_int p.distance);
        ("rounds", string_of_int p.rounds);
        ("decoder", "uf");
        ("t_data", Printf.sprintf "%.17g" p.t_data);
        ("t_anc", Printf.sprintf "%.17g" p.t_anc);
        ("p2", Printf.sprintf "%.17g" p.p2);
        ("t_1q", Printf.sprintf "%.17g" p.t_1q);
        ("t_2q", Printf.sprintf "%.17g" p.t_2q);
        ("t_meas", Printf.sprintf "%.17g" p.t_meas) ]
    ~sample:(fun rng shots -> logical_error_count (Lazy.force exp) rng ~shots)

let per_cycle_rate ~shot_rate ~rounds =
  if shot_rate >= 1. then 1.
  else 1. -. ((1. -. shot_rate) ** (1. /. float_of_int rounds))
