(** Union-find decoder (Delfosse–Nickerson style) over a matching graph.

    Nodes are detectors; each edge is a possible error mechanism flipping its
    two endpoint detectors (or one detector and the boundary) and carries a
    flag saying whether that error flips the logical observable.  Clusters
    grow from defects in half-edge steps and merge until every cluster has
    even defect parity or touches the boundary; a spanning-forest peeling
    then extracts a correction, whose accumulated logical flags give the
    logical-flip prediction.

    This plays the role of PyMatching in the paper's Stim-based experiments;
    union-find achieves near-matching accuracy at near-linear cost.

    Decoding runs on a reusable arena: pre-sized parent/rank/parity arrays,
    int-array border/adjacency linked lists and peel scratch, with every
    per-shot mutation undone through dirty logs — zero allocation per shot
    and reset cost proportional to the work the shot did.  Arenas are pooled
    per graph behind a mutex, so {!decode} and {!decode_batch} are safe to
    call concurrently from worker domains. *)

type graph

val boundary : int
(** Pseudo-endpoint representing the open boundary (pass as [v]). *)

val graph : nodes:int -> edges:(int * int * bool) list -> graph
(** [graph ~nodes ~edges]: each edge is [(u, v, flips_logical)]; [v] may be
    {!boundary}.  Self-loops and out-of-range endpoints are rejected.  All
    edges have unit weight. *)

val weighted_graph : nodes:int -> edges:(int * int * int * bool) list -> graph
(** [(u, v, weight, flips_logical)]: clusters must grow [weight] half-steps
    from each side before the edge closes, so low-probability mechanisms
    (high weight) are matched across only when nothing cheaper exists.
    Weights must be >= 1. *)

val num_nodes : graph -> int
val num_edges : graph -> int

val edge_list : graph -> (int * int * int * bool) array
(** The edges as given to {!weighted_graph}, in construction order, with the
    virtual boundary endpoint mapped back to {!boundary} — the
    serialization-stable description: feeding it back through
    {!weighted_graph} rebuilds a graph with identical decode behavior. *)

val decode : graph -> Bitvec.t -> bool
(** [decode g syndrome] returns the predicted logical flip for the defect
    pattern [syndrome] (one bit per node).  The syndrome must have even total
    parity or the excess is matched to the boundary. *)

val decode_correction : graph -> Bitvec.t -> int list
(** The chosen correction as edge indices (ordered as given to {!graph});
    exposed for tests. *)

val decode_batch : graph -> detectors:Bitvec.t array -> nshots:int -> Bitvec.t
(** [decode_batch g ~detectors ~nshots] decodes a whole batch: [detectors]
    is one row per graph node with bit [s] = shot [s] (the
    {!Frame_batch.t} / {!Dem_sampler.sample} layout, each row exactly
    [nshots] bits), and the result row has bit [s] set when shot [s] is
    predicted to flip the logical observable.  Rows are transposed into
    per-shot syndromes one 63-shot word block at a time; quiet shots are
    skipped without materializing a syndrome.  Identical predictions to
    per-shot {!decode}. *)

val decode_batch_into :
  graph -> detectors:Bitvec.t array -> nshots:int -> out:Bitvec.t -> unit
(** Steady-state core of {!decode_batch}: writes the prediction row into the
    caller-owned [out] (cleared first; must be exactly [nshots] bits).  Once
    the arena pool is warm this path allocates nothing — no closures, no
    boxed timing values, no fresh result row — which is what the zero-alloc
    bench gate ([max_minor_words_per_run = 0] on the steady-state kernel)
    enforces.  {!decode_batch} is this plus a fresh [out] and batch timing
    instrumentation. *)

val decode_batch_count :
  graph -> detectors:Bitvec.t array -> observable:Bitvec.t -> nshots:int -> int
(** Number of shots whose {!decode_batch} prediction disagrees with the
    sampled observable row — the batch logical-error counter. *)
