type table = {
  corrections : int array;  (* syndrome -> correction bitmask; -1 = unfilled *)
  checks : int array array;  (* stabilizer supports producing the syndrome *)
}

type t = {
  code : Code.t;
  x_table : table;
  z_table : table;
  logical_z_mask : int;  (* support of logical Z_0, for X-residual parity *)
  logical_x_mask : int;  (* support of logical X_0, for Z-residual parity *)
}

let syndrome_key checks err_mask =
  let key = ref 0 in
  Array.iteri
    (fun i s ->
      let c = Array.fold_left (fun acc q -> acc lxor ((err_mask lsr q) land 1)) 0 s in
      if c = 1 then key := !key lor (1 lsl i))
    checks;
  !key

let build_table ~n ~checks =
  let nsyn = 1 lsl Array.length checks in
  let corrections = Array.make nsyn (-1) in
  corrections.(0) <- 0;
  let filled = ref 1 in
  let w = ref 1 in
  while !filled < nsyn && !w <= n do
    (* Gosper enumeration of weight-w masks. *)
    let v = ref ((1 lsl !w) - 1) in
    let limit = 1 lsl n in
    while !v < limit do
      let key = syndrome_key checks !v in
      if corrections.(key) < 0 then begin
        corrections.(key) <- !v;
        incr filled
      end;
      let c = !v land - !v in
      let r = !v + c in
      v := (((r lxor !v) lsr 2) / c) lor r
    done;
    incr w
  done;
  (* Any syndrome still unfilled is unreachable (checks not independent);
     map it to the trivial correction. *)
  Array.iteri (fun i c -> if c < 0 then corrections.(i) <- 0) corrections;
  { corrections; checks }

let support_mask s = Array.fold_left (fun acc q -> acc lor (1 lsl q)) 0 s

let create (code : Code.t) =
  if code.Code.n > 30 then invalid_arg "Decoder_lookup.create: code too large";
  { code;
    x_table = build_table ~n:code.Code.n ~checks:code.Code.z_stabs;
    z_table = build_table ~n:code.Code.n ~checks:code.Code.x_stabs;
    logical_z_mask = support_mask code.Code.logical_z.(0);
    logical_x_mask = support_mask code.Code.logical_x.(0) }

let mask_to_list mask =
  let rec go q acc =
    if 1 lsl q > mask then List.rev acc
    else go (q + 1) (if (mask lsr q) land 1 = 1 then q :: acc else acc)
  in
  go 0 []

let key_of_syndrome syndrome =
  let key = ref 0 in
  Array.iteri (fun i b -> if b <> 0 then key := !key lor (1 lsl i)) syndrome;
  !key

let decode_with table syndrome =
  if Array.length syndrome <> Array.length table.checks then
    invalid_arg "Decoder_lookup: syndrome length mismatch";
  mask_to_list table.corrections.(key_of_syndrome syndrome)

let decode_x t syndrome = decode_with t.x_table syndrome
let decode_z t syndrome = decode_with t.z_table syndrome

let logical_x_error_after_correction t ~actual =
  let syndrome = Code.syndrome_of_x_error t.code actual in
  let correction = decode_x t syndrome in
  Code.x_logical_flipped t.code 0 (actual @ correction)

let logical_z_error_after_correction t ~actual =
  let syndrome = Code.syndrome_of_z_error t.code actual in
  let correction = decode_z t syndrome in
  Code.z_logical_flipped t.code 0 (actual @ correction)

(* Mask-based fast path: the whole decode cycle on int bitmasks, zero
   allocation.  Parity of the concatenated (actual @ correction) support
   equals the parity of the XOR residual — duplicated qubits toggle twice in
   [Code.flipped] and cancel — so these agree exactly with the list
   versions above. *)

let parity_over mask support_mask =
  let c = ref 0 and x = ref (mask land support_mask) in
  while !x <> 0 do
    x := !x land (!x - 1);
    incr c
  done;
  !c land 1 = 1

let x_syndrome_key t ~actual = syndrome_key t.x_table.checks actual
let z_syndrome_key t ~actual = syndrome_key t.z_table.checks actual

let correction_mask table name ~key =
  if key < 0 || key >= Array.length table.corrections then
    invalid_arg (name ^ ": syndrome key out of range");
  table.corrections.(key)

let x_correction_mask t ~key =
  correction_mask t.x_table "Decoder_lookup.x_correction_mask" ~key

let z_correction_mask t ~key =
  correction_mask t.z_table "Decoder_lookup.z_correction_mask" ~key

let logical_x_flip_mask t ~actual =
  let corr = t.x_table.corrections.(syndrome_key t.x_table.checks actual) in
  parity_over (actual lxor corr) t.logical_z_mask

let logical_z_flip_mask t ~actual =
  let corr = t.z_table.corrections.(syndrome_key t.z_table.checks actual) in
  parity_over (actual lxor corr) t.logical_x_mask
