(** Minimum-weight lookup-table decoder for small CSS codes.

    Tables are built by enumerating data-qubit errors in order of increasing
    weight, so each syndrome maps to a minimum-weight correction.  Suitable
    for every non-surface code in the paper (n <= 17) and for SC3/SC4 on the
    universal error-correction module, where checks are serialized and
    decoded one round at a time. *)

type t

val create : Code.t -> t
(** Build both tables (X-error and Z-error decoding).  Cost grows with the
    syndrome space (2^checks); fine for the paper's codes. *)

val decode_x : t -> int array -> int list
(** [decode_x t syndrome] maps a Z-stabilizer syndrome (bit per Z check, as
    from {!Code.syndrome_of_x_error}) to a minimum-weight X correction
    (qubit list). *)

val decode_z : t -> int array -> int list
(** X-stabilizer syndrome to Z correction. *)

val logical_x_error_after_correction : t -> actual:int list -> bool
(** Full decode cycle for an X error: compute its syndrome, decode, apply the
    correction, and report whether the residual flips logical Z_0. *)

val logical_z_error_after_correction : t -> actual:int list -> bool

val x_syndrome_key : t -> actual:int -> int
(** Z-stabilizer syndrome of the X-error bitmask [actual], packed as an int
    key (bit [i] = check [i], the {!decode_x} index order).  Zero
    allocation. *)

val z_syndrome_key : t -> actual:int -> int
(** X-stabilizer syndrome of the Z-error bitmask [actual]. *)

val x_correction_mask : t -> key:int -> int
(** Minimum-weight X correction for a packed syndrome [key], as a qubit
    bitmask — the mask twin of {!decode_x}.  The allocation-free building
    block for batch estimation loops ({!Threshold}, [Uec]). *)

val z_correction_mask : t -> key:int -> int

val logical_x_flip_mask : t -> actual:int -> bool
(** Mask-based fast path of {!logical_x_error_after_correction}: [actual] is
    an int bitmask of errored qubits (bit [q] = qubit [q]).  Zero allocation;
    agrees exactly with the list version.  The Monte-Carlo inner loop of
    {!Threshold.logical_rate}. *)

val logical_z_flip_mask : t -> actual:int -> bool
