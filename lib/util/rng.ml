(* xoshiro256** state held as 32 raw bytes (four native-endian 64-bit
   words) instead of a record with mutable int64 fields: int64 record fields
   are boxed, so every state store would allocate a fresh 3-word block —
   ~15 minor words per draw in the hot sampling loops — whereas the bytes
   get/set primitives compile to raw unboxed loads and stores.  The output
   stream is bit-identical to the record representation; only the allocation
   profile changes. *)
type t = Bytes.t

let get = Bytes.get_int64_ne
let set = Bytes.set_int64_ne

(* splitmix64: seed expander recommended by the xoshiro authors. *)
let splitmix64 state =
  let open Int64 in
  state := add !state 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let create seed =
  let state = ref (Int64.of_int seed) in
  let t = Bytes.create 32 in
  set t 0 (splitmix64 state);
  set t 8 (splitmix64 state);
  set t 16 (splitmix64 state);
  set t 24 (splitmix64 state);
  t

let rotl x k = Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

let bits64 t =
  let open Int64 in
  let s0 = get t 0 and s1 = get t 8 and s2 = get t 16 and s3 = get t 24 in
  let result = mul (rotl (mul s1 5L) 7) 9L in
  let tmp = shift_left s1 17 in
  let s2 = logxor s2 s0 in
  let s3 = logxor s3 s1 in
  let s1 = logxor s1 s2 in
  let s0 = logxor s0 s3 in
  let s2 = logxor s2 tmp in
  let s3 = rotl s3 45 in
  set t 0 s0;
  set t 8 s1;
  set t 16 s2;
  set t 24 s3;
  result

let split t =
  let seed = Int64.to_int (bits64 t) land max_int in
  create seed

let copy t = Bytes.copy t

let int t n =
  if n <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection-free for our purposes: 62 uniform bits mod n has negligible
     bias for n far below 2^62.  The mask keeps the OCaml int non-negative
     after the truncating Int64.to_int. *)
  let v = Int64.to_int (bits64 t) land max_int in
  v mod n

let uniform t =
  (* 53-bit mantissa from the top bits. *)
  let v = Int64.to_int (Int64.shift_right_logical (bits64 t) 11) in
  float_of_int v *. 0x1.0p-53

(* One geometric gap draw for sparse Bernoulli fills: consumes exactly one
   uniform draw and computes floor(log1p(-u) / log1mp), with the xoshiro
   step written out in this body so nothing is boxed — neither the int64
   state words (raw bytes loads/stores), the uniform float, nor the log
   intermediates (log1p is an [@@unboxed] external; the result is an
   immediate int).  This keeps the Dem_sampler event-direct path
   allocation-free per event.  Stream-identical to
   [int_of_float (log1p (-.(uniform t)) /. log1mp)]. *)
let geometric t ~log1mp =
  let open Int64 in
  let s0 = get t 0 and s1 = get t 8 and s2 = get t 16 and s3 = get t 24 in
  let result = mul (rotl (mul s1 5L) 7) 9L in
  let tmp = shift_left s1 17 in
  let s2 = logxor s2 s0 in
  let s3 = logxor s3 s1 in
  let s1 = logxor s1 s2 in
  let s0 = logxor s0 s3 in
  let s2 = logxor s2 tmp in
  let s3 = rotl s3 45 in
  set t 0 s0;
  set t 8 s1;
  set t 16 s2;
  set t 24 s3;
  let u = float_of_int (to_int (shift_right_logical result 11)) *. 0x1.0p-53 in
  int_of_float (log1p (-.u) /. log1mp)

let float t x = uniform t *. x
let bool t = Int64.logand (bits64 t) 1L = 1L
let bernoulli t p = uniform t < p

let exponential t rate =
  if rate <= 0. then invalid_arg "Rng.exponential: rate must be positive";
  -.log (1. -. uniform t) /. rate

let gaussian t =
  let u1 = 1. -. uniform t and u2 = uniform t in
  sqrt (-2. *. log u1) *. cos (2. *. Float.pi *. u2)

let poisson t lambda =
  if lambda < 0. then invalid_arg "Rng.poisson: negative mean";
  if lambda > 500. then
    let x = (lambda +. (sqrt lambda *. gaussian t)) +. 0.5 in
    max 0 (int_of_float x)
  else begin
    (* Inversion by sequential search. *)
    let l = exp (-.lambda) in
    let k = ref 0 and p = ref 1.0 in
    let continue = ref true in
    while !continue do
      p := !p *. uniform t;
      if !p <= l then continue := false else incr k
    done;
    !k
  end

let categorical t w =
  let total = Array.fold_left ( +. ) 0. w in
  if total <= 0. then invalid_arg "Rng.categorical: weights must sum > 0";
  let x = float t total in
  let acc = ref 0. and idx = ref (Array.length w - 1) in
  (try
     Array.iteri
       (fun i wi ->
         acc := !acc +. wi;
         if x < !acc then begin
           idx := i;
           raise Exit
         end)
       w
   with Exit -> ());
  !idx

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let choose t a =
  if Array.length a = 0 then invalid_arg "Rng.choose: empty array";
  a.(int t (Array.length a))
