(** Deterministic multicore executor (Domain pool).

    Fans tasks and chunked Monte-Carlo shot batches across OCaml 5 domains.
    Determinism contract: the work decomposition — chunk layout, the
    per-chunk [Rng.split] streams, and the merge order — depends only on the
    problem size and the master RNG, never on the job count.  A given seed
    therefore produces bit-identical results at any [jobs] setting; jobs
    only decide which domain executes each task.

    Tasks must not share mutable state (beyond domain-safe sinks such as
    [Obs] metrics); decoders and other read-only structures may be shared. *)

val jobs : unit -> int
(** Current global job count.  Initialised from [HETARCH_JOBS] (clamped to
    [1, 64]; malformed values fall back to 1), default 1. *)

val set_jobs : int -> unit
(** Override the global job count (e.g. from a [--jobs] CLI flag). *)

val run : ?jobs:int -> (unit -> 'a) array -> 'a array
(** Execute every thunk, result [i] from task [i] regardless of which domain
    ran it.  [jobs = 1] (the default with no override) runs inline with no
    domain spawns.  The first task exception is re-raised after all domains
    join. *)

val map : ?jobs:int -> ('a -> 'b) -> 'a array -> 'b array
val map_list : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list

val split_rngs : Rng.t -> int -> Rng.t array
(** [split_rngs rng n] takes [n] sequential splits in fixed order. *)

val default_chunk : int
(** Shots per Monte-Carlo chunk (256): one chunk = one RNG split = one unit
    of scheduling. *)

val monte_carlo :
  ?jobs:int ->
  ?chunk:int ->
  rng:Rng.t ->
  shots:int ->
  init:'a ->
  merge:('a -> 'a -> 'a) ->
  (Rng.t -> int -> 'a) ->
  'a
(** [monte_carlo ~rng ~shots ~init ~merge f] splits [shots] into fixed-size
    chunks, runs [f chunk_rng chunk_shots] per chunk (possibly across
    domains), and folds the partial results with [merge] in chunk order.
    [chunk] participates in the determinism contract: changing it changes
    the per-chunk RNG streams. *)

val monte_carlo_count :
  ?jobs:int -> ?chunk:int -> rng:Rng.t -> shots:int -> (Rng.t -> int -> int) -> int
(** [monte_carlo] specialised to summed integer counts. *)

val stats : unit -> int * int
(** [(tasks_run, domains_spawned)] process totals, for observability. *)

val queue_stats : unit -> int * int
(** [(queue_remaining, busy_domains)] instantaneous gauges: tasks submitted
    to in-flight {!run} calls but not yet claimed by a domain, and domains
    currently executing tasks (the submitting domain counts while it works
    its own share).  Telemetry samples these mid-run; both return to zero
    once every [run] exits, including on the exception path. *)

val task_context : (unit -> unit -> unit) ref
(** Upward hook for layers above this library (installed by [Obs]).  Called
    once in the submitting domain per {!run}; the returned closure is called
    once in each worker domain before it claims tasks.  Used to propagate
    the caller's span path so traces nest identically at any job count.
    Default: no-op. *)

val on_task_done : (unit -> unit) ref
(** Upward hook fired after every completed task, in whichever domain ran
    it — the chunk-boundary heartbeat for telemetry.  Implementations must
    be domain-safe and cheap; the default is a no-op. *)
