(** Packed bit vectors over 63-bit words.

    The stabilizer tableau and Pauli-frame simulators store Pauli supports as
    bit vectors; xor-accumulation over whole words is the hot loop. *)

type t

val create : int -> t
(** [create n] is an all-zero vector of [n] bits. *)

val length : t -> int
val get : t -> int -> bool
val set : t -> int -> bool -> unit
val flip : t -> int -> unit
val clear : t -> unit
val copy : t -> t

val set_all : t -> unit
(** Set every bit. *)

val xor_into : dst:t -> t -> unit
(** [xor_into ~dst src] sets [dst <- dst xor src].  Lengths must match. *)

val xor_words : dst:t -> t -> t -> unit
(** [xor_words ~dst a b] sets [dst <- a xor b] word-parallel.  All three
    lengths must match; [dst] may alias [a] or [b]. *)

val or_into : dst:t -> t -> unit
(** [or_into ~dst src] sets [dst <- dst lor src]. *)

val and_into : dst:t -> t -> unit
(** [and_into ~dst src] sets [dst <- dst land src]. *)

val andnot_into : dst:t -> t -> unit
(** [andnot_into ~dst src] sets [dst <- dst land (lnot src)]: clear in [dst]
    every bit set in [src]. *)

val random_into : Rng.t -> t -> p:float -> unit
(** [random_into rng t ~p] overwrites [t] with independent Bernoulli(p) bits.
    Sparse probabilities use geometric gap sampling (expected [p*n + 1] RNG
    draws), [p = 0.5] consumes one raw word per 63 bits, dense [p] samples
    the complement — the batched noise-mask kernel of the bit-parallel
    Pauli-frame sampler. *)

val and_popcount : t -> t -> int
(** Number of positions set in both vectors. *)

val popcount : t -> int
val is_zero : t -> bool
val equal : t -> t -> bool

val iter_set : t -> (int -> unit) -> unit
(** Iterate indices of set bits in increasing order. *)

val word_count : t -> int
(** Number of 63-bit storage words. *)

val get_word : t -> int -> int
(** [get_word t w] is raw word [w] (bits [63w .. 63w+62], bit [b] of the
    word = bit [63w + b] of the vector).  The word-level transposition
    primitive of the batch decoder: one read covers 63 shots of one
    detector row. *)

val word_size : int
(** Bits per storage word (63). *)

val ctz : int -> int
(** Index of the lowest set bit of a nonzero word (0-based).  Raises
    [Invalid_argument] on zero.  Companion to {!get_word} for transposition
    loops that peel set bits with [w land (-w)]. *)

val to_string : t -> string
(** "0110..." rendering, index 0 first. *)
