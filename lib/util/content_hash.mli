(** Stable 64-bit content hashing for cross-process identities.

    Task ids in the collect-campaign ledger and keys in the persistent
    characterization store are content hashes of a canonical description,
    never positional indices — so identity survives process restarts, sweep
    reordering, and OCaml upgrades.  The hash is hand-rolled (rotate-multiply
    absorption with a murmur-style finalizer) precisely because
    [Hashtbl.hash] is unspecified across compiler versions; its value is
    frozen and guarded by pinned-value tests. *)

val hash64 : string -> int64
(** 64-bit content hash of a byte string. *)

val hash_hex : string -> string
(** [hash64] rendered as 16 lowercase hex digits. *)

val canonical : string list -> string
(** Length-prefixed encoding ["<len>:<bytes>..."] of the components, in
    order.  Injective: distinct component lists produce distinct strings, so
    hashing the result never conflates ["ab","c"] with ["a","bc"]. *)

val of_components : string list -> string
(** [hash_hex (canonical components)] — the standard key discipline. *)
