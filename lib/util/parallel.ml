(* Deterministic multicore executor.

   A tiny Domain-pool fan-out for Monte-Carlo shot loops and DSE sweeps.
   The contract that everything downstream relies on: the DECOMPOSITION of
   work (chunk layout, per-chunk RNG streams, merge order) depends only on
   the problem size and the master seed — never on the job count — so a
   given seed produces bit-identical results whether it runs on one domain
   or sixteen.  Parallelism only changes which domain executes each task.

   No external dependencies: OCaml 5 Domain + Atomic from the stdlib. *)

let env_jobs =
  match Sys.getenv_opt "HETARCH_JOBS" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some j when j >= 1 -> min j 64
      | _ -> 1)
  | None -> 1

let current_jobs = Atomic.make env_jobs

let set_jobs j =
  if j < 1 then invalid_arg "Parallel.set_jobs: jobs must be >= 1";
  Atomic.set current_jobs (min j 64)

let jobs () = Atomic.get current_jobs

(* Lightweight self-metrics.  hetarch_util sits below hetarch_obs in the
   dependency order, so these are plain atomics that lib/obs mirrors into
   gauges at report time. *)
let tasks_total = Atomic.make 0
let domains_spawned_total = Atomic.make 0
let stats () = (Atomic.get tasks_total, Atomic.get domains_spawned_total)

(* Live queue/worker gauges for fleet monitoring: [queue_remaining] counts
   submitted-but-unclaimed tasks across every in-flight [run];
   [busy_domains] counts domains currently executing tasks (including the
   submitting domain while it works its own share).  Both are advisory
   instantaneous values — telemetry samples them mid-run via the
   [on_task_done] hook — and both return to zero when every [run] exits,
   including on the exception path. *)
let queue_remaining = Atomic.make 0
let busy_domains = Atomic.make 0
let queue_stats () = (Atomic.get queue_remaining, Atomic.get busy_domains)

(* Upward hooks (installed by lib/obs, which sits above this library).

   [task_context] is called once in the submitting domain per [run]; the
   closure it returns is called once in each worker domain before that
   domain claims its first task.  lib/obs uses it to seed the worker's
   span-path stack with the caller's, so spans recorded inside tasks carry
   the same caller path whether they run inline (jobs = 1) or in a worker
   domain — the determinism the folded-stack profiler depends on.  GC
   allocation counters are domain-local, so a task-body span measures
   exactly the words the task itself allocated (under the inherited caller
   path); nothing of the submitting domain's allocation leaks in, and
   per-path span counts — and, for sequential workloads, minor-word
   totals — stay identical across --jobs settings.

   [on_task_done] fires after every completed task, in whichever domain ran
   it.  lib/obs points it at the telemetry tick, giving long fan-outs a
   live heartbeat at chunk boundaries without any background thread; the
   default is free, and implementations must be domain-safe and cheap. *)
let task_context : (unit -> unit -> unit) ref = ref (fun () () -> ())
let on_task_done : (unit -> unit) ref = ref (fun () -> ())

(* Run every thunk, returning results in task order.  Tasks are claimed from
   a shared atomic cursor, so domains stay busy under uneven task costs; the
   result array is indexed by task id, which makes the output independent of
   the claiming order.  The first exception wins and is re-raised in the
   caller after every domain joins. *)
let run ?jobs:requested tasks =
  let n = Array.length tasks in
  ignore (Atomic.fetch_and_add tasks_total n);
  let j = max 1 (min (match requested with Some j -> j | None -> jobs ()) n) in
  if n = 0 then [||]
  else begin
    ignore (Atomic.fetch_and_add queue_remaining n);
    let claimed = Atomic.make 0 in
    (* Tasks abandoned by an error abort were never individually
       decremented; remove this run's whole unclaimed remainder so the
       gauge returns to its pre-run level on every exit path. *)
    let drain_queue () =
      ignore (Atomic.fetch_and_add queue_remaining (Atomic.get claimed - n))
    in
    let claim () =
      Atomic.incr claimed;
      Atomic.decr queue_remaining
    in
    if j = 1 then begin
      Atomic.incr busy_domains;
      Fun.protect
        ~finally:(fun () ->
          Atomic.decr busy_domains;
          drain_queue ())
        (fun () ->
          Array.map
            (fun f ->
              claim ();
              let v = f () in
              !on_task_done ();
              v)
            tasks)
    end
    else begin
      let results = Array.make n None in
      let error = Atomic.make None in
      let next = Atomic.make 0 in
      let setup = !task_context () in
      let worker () =
        setup ();
        Atomic.incr busy_domains;
        let continue = ref true in
        while !continue do
          let i = Atomic.fetch_and_add next 1 in
          if i >= n || Atomic.get error <> None then continue := false
          else begin
            claim ();
            match tasks.(i) () with
            | v ->
                results.(i) <- Some v;
                !on_task_done ()
            | exception e -> ignore (Atomic.compare_and_set error None (Some e))
          end
        done;
        Atomic.decr busy_domains
      in
      ignore (Atomic.fetch_and_add domains_spawned_total (j - 1));
      let domains = Array.init (j - 1) (fun _ -> Domain.spawn worker) in
      worker ();
      Array.iter Domain.join domains;
      drain_queue ();
      (match Atomic.get error with Some e -> raise e | None -> ());
      Array.map (function Some v -> v | None -> assert false) results
    end
  end

let map ?jobs f xs = run ?jobs (Array.map (fun x () -> f x) xs)

let map_list ?jobs f xs =
  Array.to_list (map ?jobs f (Array.of_list xs))

(* Fixed-order stream splitting: chunk [i] always receives the [i]-th split
   of the master generator, regardless of execution schedule. *)
let split_rngs rng n =
  let out = Array.make (max n 0) rng in
  for i = 0 to n - 1 do
    out.(i) <- Rng.split rng
  done;
  out

let default_chunk = 256

(* Deterministic Monte-Carlo fan-out: [f chunk_rng chunk_shots] produces a
   partial result; partials merge left-to-right in chunk order.  [chunk] is
   part of the determinism contract — changing it changes the RNG streams —
   so callers that need seed-stable output must pin it. *)
let monte_carlo ?jobs ?(chunk = default_chunk) ~rng ~shots ~init ~merge f =
  if chunk < 1 then invalid_arg "Parallel.monte_carlo: chunk must be >= 1";
  if shots < 0 then invalid_arg "Parallel.monte_carlo: shots must be >= 0";
  if shots = 0 then init
  else begin
    let nchunks = (shots + chunk - 1) / chunk in
    let rngs = split_rngs rng nchunks in
    let tasks =
      Array.init nchunks (fun i ->
          let size = if i = nchunks - 1 then shots - ((nchunks - 1) * chunk) else chunk in
          fun () -> f rngs.(i) size)
    in
    Array.fold_left merge init (run ?jobs tasks)
  end

let monte_carlo_count ?jobs ?chunk ~rng ~shots f =
  monte_carlo ?jobs ?chunk ~rng ~shots ~init:0 ~merge:( + ) f
