(** Small statistics helpers used by Monte-Carlo experiment harnesses. *)

val mean : float array -> float
(** Arithmetic mean; 0 on empty input. *)

val variance : float array -> float
(** Unbiased sample variance; 0 with fewer than two samples. *)

val stddev : float array -> float

val stderr_of_mean : float array -> float
(** Standard error of the mean. *)

val wilson_interval : successes:int -> trials:int -> z:float -> float * float
(** Wilson score confidence interval for a binomial proportion.  [z] is the
    normal quantile (1.96 for 95%). *)

val wilson_rel_halfwidth : successes:int -> trials:int -> z:float -> float
(** Half-width of the Wilson interval divided by the point estimate — the
    relative precision of a Monte-Carlo proportion, used by adaptive
    stopping rules.  [infinity] when [successes] or [trials] is zero, so a
    rate with no observed events never counts as converged. *)

val binomial_stderr : successes:int -> trials:int -> float
(** Gaussian-approximation standard error of an estimated proportion. *)

val percentile : float array -> float -> float
(** [percentile xs p] with [p] in [0,100]; linear interpolation; input need
    not be sorted.  Raises [Invalid_argument] on empty input. *)

val histogram : lo:float -> hi:float -> bins:int -> float array -> int array
(** Fixed-width histogram; out-of-range samples clamp to the edge bins. *)

type running
(** Streaming mean/variance accumulator (Welford). *)

val running_create : unit -> running
val running_reset : running -> unit
val running_add : running -> float -> unit
val running_count : running -> int
val running_mean : running -> float

val running_m2 : running -> float
(** Raw sum of squared deviations from the mean (Welford's M2).  Exposed so
    accumulators can be serialized and later pairwise-merged (Chan's
    parallel update) without losing the exact variance state. *)

val running_variance : running -> float
