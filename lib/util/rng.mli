(** Deterministic, splittable pseudo-random number generator.

    The generator is xoshiro256** (Blackman & Vigna).  Every simulation in
    HetArch threads an explicit [Rng.t] so that experiments are reproducible
    from a single seed and independent sub-simulations can be split off
    without correlation. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] builds a generator from a 63-bit seed.  The seed is expanded
    with splitmix64 so nearby seeds give unrelated streams. *)

val split : t -> t
(** [split t] returns a new generator statistically independent of [t],
    advancing [t]. *)

val copy : t -> t
(** Duplicate the current state (same future stream). *)

val bits64 : t -> int64
(** Next raw 64 random bits. *)

val int : t -> int -> int
(** [int t n] is uniform on [0, n-1].  Requires [n > 0]. *)

val float : t -> float -> float
(** [float t x] is uniform on [0, x). *)

val uniform : t -> float
(** Uniform on [0, 1). *)

val geometric : t -> log1mp:float -> int
(** [geometric t ~log1mp] is one sparse-Bernoulli gap draw:
    [int_of_float (log1p (-.(uniform t)) /. log1mp)] where
    [log1mp = log1p (-.p)], consuming exactly one [uniform].  Fused into a
    single allocation-free body (no boxed intermediates) for the
    event-direct sampling hot paths; the stream is identical to computing
    the expression from {!uniform} directly. *)

val bool : t -> bool

val bernoulli : t -> float -> bool
(** [bernoulli t p] is [true] with probability [p]. *)

val exponential : t -> float -> float
(** [exponential t rate] samples Exp(rate); mean [1. /. rate]. *)

val poisson : t -> float -> int
(** [poisson t lambda] samples a Poisson count with mean [lambda].  Uses
    inversion for small lambda and normal approximation above 500. *)

val gaussian : t -> float
(** Standard normal via Box–Muller. *)

val categorical : t -> float array -> int
(** [categorical t w] samples index [i] with probability [w.(i) /. sum w].
    Weights must be non-negative with positive sum. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val choose : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)
