(* Hand-rolled 64-bit content hash (rotate-multiply absorption with a
   murmur-style finalizer — deliberately not Hashtbl.hash, whose value is
   not specified across OCaml versions).  Stable across runs and platforms:
   content-addressed identities (collect-campaign tasks, characterization-
   store keys) must outlive any one process, so this implementation is
   frozen — the pinned-value tests in test_util/test_collect guard it. *)

let rotl x k = Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

let fmix64 h =
  let h = Int64.logxor h (Int64.shift_right_logical h 33) in
  let h = Int64.mul h 0xFF51AFD7ED558CCDL in
  let h = Int64.logxor h (Int64.shift_right_logical h 29) in
  let h = Int64.mul h 0xC4CEB9FE1A85EC53L in
  Int64.logxor h (Int64.shift_right_logical h 32)

let hash64 s =
  let h = ref 0x2545F4914F6CDD1DL in
  String.iteri
    (fun i c ->
      let x = Int64.logxor !h (Int64.of_int ((Char.code c + 1) * (i + 1))) in
      h := Int64.add (Int64.mul (rotl x 23) 0x9E3779B97F4A7C15L) 0x165667B19E3779F9L)
    s;
  fmix64 (Int64.logxor !h (Int64.of_int (String.length s)))

let hash_hex s = Printf.sprintf "%016Lx" (hash64 s)

(* Length-prefixed canonical encoding: every component is written as
   "<len>:<bytes>", which makes the concatenation injective (no delimiter
   collisions) — two component lists collide only if they are equal. *)
let add_component b s =
  Buffer.add_string b (string_of_int (String.length s));
  Buffer.add_char b ':';
  Buffer.add_string b s

let canonical components =
  let b = Buffer.create 64 in
  List.iter (add_component b) components;
  Buffer.contents b

let of_components components = hash_hex (canonical components)
