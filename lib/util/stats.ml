let mean xs =
  let n = Array.length xs in
  if n = 0 then 0. else Array.fold_left ( +. ) 0. xs /. float_of_int n

let variance xs =
  let n = Array.length xs in
  if n < 2 then 0.
  else begin
    let m = mean xs in
    let acc = Array.fold_left (fun a x -> a +. ((x -. m) *. (x -. m))) 0. xs in
    acc /. float_of_int (n - 1)
  end

let stddev xs = sqrt (variance xs)

let stderr_of_mean xs =
  let n = Array.length xs in
  if n = 0 then 0. else stddev xs /. sqrt (float_of_int n)

let wilson_interval ~successes ~trials ~z =
  if trials = 0 then (0., 1.)
  else begin
    let n = float_of_int trials in
    let p = float_of_int successes /. n in
    let z2 = z *. z in
    let denom = 1. +. (z2 /. n) in
    let center = (p +. (z2 /. (2. *. n))) /. denom in
    let half =
      z /. denom *. sqrt ((p *. (1. -. p) /. n) +. (z2 /. (4. *. n *. n)))
    in
    (max 0. (center -. half), min 1. (center +. half))
  end

let wilson_rel_halfwidth ~successes ~trials ~z =
  if trials = 0 || successes = 0 then infinity
  else begin
    let lo, hi = wilson_interval ~successes ~trials ~z in
    let p = float_of_int successes /. float_of_int trials in
    (hi -. lo) /. (2. *. p)
  end

let binomial_stderr ~successes ~trials =
  if trials = 0 then 0.
  else begin
    let n = float_of_int trials in
    let p = float_of_int successes /. n in
    sqrt (p *. (1. -. p) /. n)
  end

let percentile xs p =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Stats.percentile: empty input";
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  let rank = p /. 100. *. float_of_int (n - 1) in
  let lo = int_of_float (Float.floor rank) in
  let hi = min (n - 1) (lo + 1) in
  let frac = rank -. float_of_int lo in
  sorted.(lo) +. (frac *. (sorted.(hi) -. sorted.(lo)))

let histogram ~lo ~hi ~bins xs =
  if bins <= 0 then invalid_arg "Stats.histogram: bins must be positive";
  if hi <= lo then invalid_arg "Stats.histogram: hi must exceed lo";
  let counts = Array.make bins 0 in
  let width = (hi -. lo) /. float_of_int bins in
  Array.iter
    (fun x ->
      let b = int_of_float ((x -. lo) /. width) in
      let b = max 0 (min (bins - 1) b) in
      counts.(b) <- counts.(b) + 1)
    xs;
  counts

type running = { mutable n : int; mutable m : float; mutable m2 : float }

let running_create () = { n = 0; m = 0.; m2 = 0. }

let running_reset r =
  r.n <- 0;
  r.m <- 0.;
  r.m2 <- 0.

let running_add r x =
  r.n <- r.n + 1;
  let delta = x -. r.m in
  r.m <- r.m +. (delta /. float_of_int r.n);
  r.m2 <- r.m2 +. (delta *. (x -. r.m))

let running_count r = r.n
let running_mean r = r.m
let running_m2 r = r.m2
let running_variance r = if r.n < 2 then 0. else r.m2 /. float_of_int (r.n - 1)
