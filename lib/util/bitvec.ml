type t = { bits : int array; n : int }

let wordsize = 63
let words n = (n + wordsize - 1) / wordsize
let create n = { bits = Array.make (max 1 (words n)) 0; n }
let length t = t.n

let check t i =
  if i < 0 || i >= t.n then invalid_arg "Bitvec: index out of bounds"

let get t i =
  check t i;
  t.bits.(i / wordsize) land (1 lsl (i mod wordsize)) <> 0

let set t i b =
  check t i;
  let w = i / wordsize and m = 1 lsl (i mod wordsize) in
  if b then t.bits.(w) <- t.bits.(w) lor m else t.bits.(w) <- t.bits.(w) land lnot m

(* Index of the lowest set bit of a nonzero word: six branch-and-shift steps
   instead of a linear scan, for the hot transposition loops that peel words
   bit by bit with [w land (-w)]. *)
let ctz w =
  if w = 0 then invalid_arg "Bitvec.ctz: zero word";
  let x = ref (w land (-w)) in
  let n = ref 0 in
  if !x land 0xFFFFFFFF = 0 then begin n := !n + 32; x := !x lsr 32 end;
  if !x land 0xFFFF = 0 then begin n := !n + 16; x := !x lsr 16 end;
  if !x land 0xFF = 0 then begin n := !n + 8; x := !x lsr 8 end;
  if !x land 0xF = 0 then begin n := !n + 4; x := !x lsr 4 end;
  if !x land 0x3 = 0 then begin n := !n + 2; x := !x lsr 2 end;
  if !x land 0x1 = 0 then incr n;
  !n

let flip t i =
  check t i;
  let w = i / wordsize in
  t.bits.(w) <- t.bits.(w) lxor (1 lsl (i mod wordsize))

let clear t = Array.fill t.bits 0 (Array.length t.bits) 0
let copy t = { bits = Array.copy t.bits; n = t.n }

(* Mask for the valid bits of the last word, so whole-word fills never set
   bits past [n].  All other kernels preserve the invariant that bits >= n
   are zero, which keeps [popcount]/[equal] exact. *)
let top_mask t =
  let valid = t.n - ((Array.length t.bits - 1) * wordsize) in
  if valid >= wordsize || valid <= 0 then -1 else (1 lsl valid) - 1

let set_all t =
  Array.fill t.bits 0 (Array.length t.bits) (-1);
  let last = Array.length t.bits - 1 in
  t.bits.(last) <- t.bits.(last) land top_mask t

let xor_into ~dst src =
  if dst.n <> src.n then invalid_arg "Bitvec.xor_into: length mismatch";
  for w = 0 to Array.length dst.bits - 1 do
    dst.bits.(w) <- dst.bits.(w) lxor src.bits.(w)
  done

let xor_words ~dst a b =
  if dst.n <> a.n || dst.n <> b.n then invalid_arg "Bitvec.xor_words: length mismatch";
  for w = 0 to Array.length dst.bits - 1 do
    dst.bits.(w) <- a.bits.(w) lxor b.bits.(w)
  done

let or_into ~dst src =
  if dst.n <> src.n then invalid_arg "Bitvec.or_into: length mismatch";
  for w = 0 to Array.length dst.bits - 1 do
    dst.bits.(w) <- dst.bits.(w) lor src.bits.(w)
  done

let and_into ~dst src =
  if dst.n <> src.n then invalid_arg "Bitvec.and_into: length mismatch";
  for w = 0 to Array.length dst.bits - 1 do
    dst.bits.(w) <- dst.bits.(w) land src.bits.(w)
  done

let andnot_into ~dst src =
  if dst.n <> src.n then invalid_arg "Bitvec.andnot_into: length mismatch";
  for w = 0 to Array.length dst.bits - 1 do
    dst.bits.(w) <- dst.bits.(w) land lnot src.bits.(w)
  done

(* Batched Bernoulli fill: every bit independently 1 with probability p.
   Sparse p uses geometric gap sampling (expected p*n + 1 draws instead of n);
   p = 1/2 takes 63 bits straight from one raw word; dense p mirrors the
   sparse path on the complement.  The mid band falls back to per-bit coins,
   which is no worse than a scalar sampler — noise in our workloads is
   either rare (gate/idle errors) or exactly 1/2 (measurement scramble). *)
let random_into rng t ~p =
  if Float.is_nan p || p < 0. || p > 1. then invalid_arg "Bitvec.random_into: bad p";
  let sparse_fill p =
    clear t;
    if p > 0. then begin
      let log1mp = log1p (-.p) in
      let i = ref (-1) in
      let continue = ref true in
      while !continue do
        let gap = Rng.geometric rng ~log1mp in
        i := !i + 1 + gap;
        if !i >= t.n || !i < 0 then continue := false
        else begin
          let w = !i / wordsize in
          t.bits.(w) <- t.bits.(w) lor (1 lsl (!i mod wordsize))
        end
      done
    end
  in
  if p = 0. then clear t
  else if p = 1. then set_all t
  else if p = 0.5 then begin
    for w = 0 to Array.length t.bits - 1 do
      (* Int64.to_int keeps the low 63 bits: one raw draw fills the word. *)
      t.bits.(w) <- Int64.to_int (Rng.bits64 rng)
    done;
    let last = Array.length t.bits - 1 in
    t.bits.(last) <- t.bits.(last) land top_mask t
  end
  else if p <= 0.1 then sparse_fill p
  else if p >= 0.9 then begin
    sparse_fill (1. -. p);
    for w = 0 to Array.length t.bits - 1 do
      t.bits.(w) <- lnot t.bits.(w)
    done;
    let last = Array.length t.bits - 1 in
    t.bits.(last) <- t.bits.(last) land top_mask t
  end
  else begin
    clear t;
    for i = 0 to t.n - 1 do
      if Rng.bernoulli rng p then
        t.bits.(i / wordsize) <- t.bits.(i / wordsize) lor (1 lsl (i mod wordsize))
    done
  end

(* Kernighan popcount: words are sparse in our workloads, and OCaml has no
   portable hardware popcount without C stubs. *)
let popcount_word w =
  let c = ref 0 and x = ref w in
  while !x <> 0 do
    x := !x land (!x - 1);
    incr c
  done;
  !c

let popcount t = Array.fold_left (fun acc w -> acc + popcount_word w) 0 t.bits

let and_popcount a b =
  if a.n <> b.n then invalid_arg "Bitvec.and_popcount: length mismatch";
  let acc = ref 0 in
  for w = 0 to Array.length a.bits - 1 do
    acc := !acc + popcount_word (a.bits.(w) land b.bits.(w))
  done;
  !acc

let is_zero t = Array.for_all (fun w -> w = 0) t.bits

let equal a b =
  a.n = b.n && Array.for_all2 (fun x y -> x = y) a.bits b.bits

let iter_set t f =
  for w = 0 to Array.length t.bits - 1 do
    let word = t.bits.(w) in
    if word <> 0 then
      for b = 0 to wordsize - 1 do
        if word land (1 lsl b) <> 0 then begin
          let i = (w * wordsize) + b in
          if i < t.n then f i
        end
      done
  done

let word_count t = Array.length t.bits
let get_word t w = t.bits.(w)
let word_size = wordsize

let to_string t = String.init t.n (fun i -> if get t i then '1' else '0')
