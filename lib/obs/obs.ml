let now_ns () = Monotonic_clock.now ()

(* ------------------------------------------------------------------ json *)

module Json = struct
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | String of string
    | List of t list
    | Obj of (string * t) list

  let escape s =
    let b = Buffer.create (String.length s + 2) in
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string b "\\\""
        | '\\' -> Buffer.add_string b "\\\\"
        | '\n' -> Buffer.add_string b "\\n"
        | '\r' -> Buffer.add_string b "\\r"
        | '\t' -> Buffer.add_string b "\\t"
        | c when Char.code c < 0x20 ->
            Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char b c)
      s;
    Buffer.contents b

  let fmt_float x =
    if Float.is_integer x && Float.abs x < 1e15 then Printf.sprintf "%.1f" x
    else if Float.is_nan x then "null"
    else if x = Float.infinity then "1e999"
    else if x = Float.neg_infinity then "-1e999"
    else Printf.sprintf "%.17g" x

  let rec emit b = function
    | Null -> Buffer.add_string b "null"
    | Bool v -> Buffer.add_string b (if v then "true" else "false")
    | Int i -> Buffer.add_string b (string_of_int i)
    | Float x -> Buffer.add_string b (fmt_float x)
    | String s ->
        Buffer.add_char b '"';
        Buffer.add_string b (escape s);
        Buffer.add_char b '"'
    | List xs ->
        Buffer.add_char b '[';
        List.iteri
          (fun i x ->
            if i > 0 then Buffer.add_char b ',';
            emit b x)
          xs;
        Buffer.add_char b ']'
    | Obj kvs ->
        Buffer.add_char b '{';
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_char b ',';
            Buffer.add_char b '"';
            Buffer.add_string b (escape k);
            Buffer.add_string b "\":";
            emit b v)
          kvs;
        Buffer.add_char b '}'

  let to_string t =
    let b = Buffer.create 256 in
    emit b t;
    Buffer.contents b

  (* Strict recursive-descent parser over a string cursor. *)
  let parse s =
    let n = String.length s in
    let pos = ref 0 in
    let fail msg = failwith (Printf.sprintf "Obs.Json.parse: %s at %d" msg !pos) in
    let peek () = if !pos < n then Some s.[!pos] else None in
    let skip_ws () =
      while !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
        incr pos
      done
    in
    let expect c =
      if !pos < n && s.[!pos] = c then incr pos
      else fail (Printf.sprintf "expected '%c'" c)
    in
    let literal lit v =
      let l = String.length lit in
      if !pos + l <= n && String.sub s !pos l = lit then begin
        pos := !pos + l;
        v
      end
      else fail (Printf.sprintf "expected %s" lit)
    in
    let parse_string () =
      expect '"';
      let b = Buffer.create 16 in
      let rec go () =
        if !pos >= n then fail "unterminated string";
        match s.[!pos] with
        | '"' -> incr pos
        | '\\' ->
            incr pos;
            if !pos >= n then fail "bad escape";
            (match s.[!pos] with
            | '"' -> Buffer.add_char b '"'
            | '\\' -> Buffer.add_char b '\\'
            | '/' -> Buffer.add_char b '/'
            | 'n' -> Buffer.add_char b '\n'
            | 'r' -> Buffer.add_char b '\r'
            | 't' -> Buffer.add_char b '\t'
            | 'b' -> Buffer.add_char b '\b'
            | 'f' -> Buffer.add_char b '\012'
            | 'u' ->
                (* Four hex digits, validated strictly (int_of_string would
                   also accept underscores and sign characters).  [!pos] is
                   left on the last consumed digit for the caller's [incr]. *)
                let read_hex4 () =
                  if !pos + 4 >= n then fail "bad \\u escape";
                  let v = ref 0 in
                  for k = 1 to 4 do
                    let d =
                      match s.[!pos + k] with
                      | '0' .. '9' as c -> Char.code c - Char.code '0'
                      | 'a' .. 'f' as c -> Char.code c - Char.code 'a' + 10
                      | 'A' .. 'F' as c -> Char.code c - Char.code 'A' + 10
                      | _ -> fail "bad \\u escape"
                    in
                    v := (!v lsl 4) lor d
                  done;
                  pos := !pos + 4;
                  !v
                in
                let code = read_hex4 () in
                (* A high surrogate followed by \uDC00-\uDFFF is one astral
                   code point (JSON's UTF-16 escape convention); a lone
                   surrogate passes through as-is, mirroring the emitter. *)
                let code =
                  if code >= 0xD800 && code <= 0xDBFF
                     && !pos + 2 < n
                     && s.[!pos + 1] = '\\'
                     && s.[!pos + 2] = 'u'
                  then begin
                    let save = !pos in
                    pos := !pos + 2;
                    let low = read_hex4 () in
                    if low >= 0xDC00 && low <= 0xDFFF then
                      0x10000 + ((code - 0xD800) lsl 10) + (low - 0xDC00)
                    else begin
                      pos := save;
                      code
                    end
                  end
                  else code
                in
                if code < 0x80 then Buffer.add_char b (Char.chr code)
                else if code < 0x800 then begin
                  Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
                  Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
                end
                else if code < 0x10000 then begin
                  Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
                  Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                  Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
                end
                else begin
                  Buffer.add_char b (Char.chr (0xF0 lor (code lsr 18)));
                  Buffer.add_char b (Char.chr (0x80 lor ((code lsr 12) land 0x3F)));
                  Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                  Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
                end
            | _ -> fail "bad escape");
            incr pos;
            go ()
        | c ->
            Buffer.add_char b c;
            incr pos;
            go ()
      in
      go ();
      Buffer.contents b
    in
    let parse_number () =
      let start = !pos in
      let is_num_char c =
        match c with
        | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
        | _ -> false
      in
      while !pos < n && is_num_char s.[!pos] do
        incr pos
      done;
      let tok = String.sub s start (!pos - start) in
      match int_of_string_opt tok with
      | Some i -> Int i
      | None -> (
          match float_of_string_opt tok with
          | Some f -> Float f
          | None -> fail (Printf.sprintf "bad number %S" tok))
    in
    let rec parse_value () =
      skip_ws ();
      match peek () with
      | None -> fail "unexpected end of input"
      | Some '"' -> String (parse_string ())
      | Some '{' ->
          incr pos;
          skip_ws ();
          if peek () = Some '}' then begin
            incr pos;
            Obj []
          end
          else begin
            let rec members acc =
              skip_ws ();
              let k = parse_string () in
              skip_ws ();
              expect ':';
              let v = parse_value () in
              skip_ws ();
              match peek () with
              | Some ',' ->
                  incr pos;
                  members ((k, v) :: acc)
              | Some '}' ->
                  incr pos;
                  List.rev ((k, v) :: acc)
              | _ -> fail "expected ',' or '}'"
            in
            Obj (members [])
          end
      | Some '[' ->
          incr pos;
          skip_ws ();
          if peek () = Some ']' then begin
            incr pos;
            List []
          end
          else begin
            let rec elems acc =
              let v = parse_value () in
              skip_ws ();
              match peek () with
              | Some ',' ->
                  incr pos;
                  elems (v :: acc)
              | Some ']' ->
                  incr pos;
                  List.rev (v :: acc)
              | _ -> fail "expected ',' or ']'"
            in
            List (elems [])
          end
      | Some 't' -> literal "true" (Bool true)
      | Some 'f' -> literal "false" (Bool false)
      | Some 'n' -> literal "null" Null
      | Some _ -> parse_number ()
    in
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v

  let member k = function
    | Obj kvs -> List.assoc_opt k kvs
    | _ -> None

  let to_float = function
    | Int i -> float_of_int i
    | Float f -> f
    | _ -> failwith "Obs.Json.to_float: not a number"

  let to_int = function
    | Int i -> i
    | Float f when Float.is_integer f && Float.abs f <= 2. ** 53. ->
        int_of_float f
    | _ -> failwith "Obs.Json.to_int: not an integer"
end

(* Torn-tail-tolerant JSONL fold: blank and unparsable lines — the
   truncated final record a killed writer leaves behind — are skipped,
   mirroring the collect ledger's replay.  Shared by the fleet monitor and
   the offline `obs` readers. *)
let fold_jsonl path f init =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let rec go acc =
        match input_line ic with
        | exception End_of_file -> acc
        | line when String.trim line = "" -> go acc
        | line -> (
            match Json.parse line with
            | j -> go (f acc j)
            | exception Failure _ -> go acc)
      in
      go init)

(* ------------------------------------------------------------------- run *)

(* Process-level run identity.  Every observability artifact a process
   writes — run manifest, telemetry stream, Chrome-trace export, snapshot —
   carries the same 64-bit run-id, so fleet tooling can correlate them
   after the fact.  The id hashes argv, pid, wall-clock and monotonic start
   time; HETARCH_RUN_ID (16 hex digits) overrides it for reproducible
   fixtures.  The shard label is free-form attribution ("shard0/3", a host
   name, ...) set once at startup and stamped into the same artifacts. *)

module Run = struct
  let started_unix = Unix.gettimeofday ()
  let shard_label = ref ""

  let set_shard s = shard_label := s
  let shard () = !shard_label

  let is_hex = function '0' .. '9' | 'a' .. 'f' -> true | _ -> false

  let computed_id =
    lazy
      (match Sys.getenv_opt "HETARCH_RUN_ID" with
      | Some s when String.length s = 16 && String.for_all is_hex s -> s
      | _ ->
          Content_hash.of_components
            ("hetarch-run/1"
            :: string_of_int (Unix.getpid ())
            :: Printf.sprintf "%.17g" started_unix
            :: Int64.to_string (now_ns ())
            :: Array.to_list Sys.argv))

  let id () = Lazy.force computed_id

  let json () =
    Json.Obj [ ("id", Json.String (id ())); ("shard", Json.String (shard ())) ]
end

(* --------------------------------------------------------- trace context *)

(* Distributed trace identity, W3C-traceparent style: a 128-bit
   (trace_id, span_id) pair of 16-hex-digit halves.  A root process mints
   both from its run id; a child process handed "<trace_id>-<span_id>" (via
   the HETARCH_TRACE_PARENT environment variable or the --trace-parent
   flag) keeps the parent's trace_id, records the parent's span_id as
   parent_span_id, and mints only its own span_id — so every process of a
   fleet shares one trace_id and the per-process span ids form a tree.
   The context is stamped into every observability artifact (telemetry
   records, Chrome-trace metadata, run manifests, snapshots), which is what
   lets `obs trace-merge` and `obs monitor` correlate a coordinator with
   the shard children it forked. *)

module Context = struct
  type t = { trace_id : string; span_id : string; parent_span_id : string }

  let env_var = "HETARCH_TRACE_PARENT"

  let is_id s = String.length s = 16 && String.for_all Run.is_hex s

  let mint ~run_id =
    { trace_id = Content_hash.of_components [ "hetarch-trace/1"; run_id ];
      span_id = Content_hash.of_components [ "hetarch-span/1"; run_id ];
      parent_span_id = "" }

  let child parent ~run_id =
    { trace_id = parent.trace_id;
      span_id = Content_hash.of_components [ "hetarch-span/1"; run_id ];
      parent_span_id = parent.span_id }

  let to_string c = c.trace_id ^ "-" ^ c.span_id

  let of_string s =
    if String.length s = 33 && s.[16] = '-' then begin
      let t = String.sub s 0 16 and sp = String.sub s 17 16 in
      if is_id t && is_id sp then
        Some { trace_id = t; span_id = sp; parent_span_id = "" }
      else None
    end
    else None

  let parent_override : string option ref = ref None
  let set_parent s = parent_override := Some s

  let computed =
    lazy
      (let inherited =
         match !parent_override with
         | Some _ as s -> s
         | None -> Sys.getenv_opt env_var
       in
       match inherited with
       | None -> mint ~run_id:(Run.id ())
       | Some s -> (
           match of_string (String.trim s) with
           | Some p -> child p ~run_id:(Run.id ())
           | None ->
               Printf.eprintf
                 "hetarch: ignoring malformed trace parent %S (want <16 \
                  hex>-<16 hex>)\n"
                 s;
               mint ~run_id:(Run.id ())))

  let current () = Lazy.force computed

  let fields () =
    let c = current () in
    [ ("trace_id", Json.String c.trace_id);
      ("span_id", Json.String c.span_id);
      ("parent_span_id", Json.String c.parent_span_id) ]

  (* [Run.json] extended with the trace context — the stamp every document
     embeds under "run". *)
  let stamp () =
    match Run.json () with
    | Json.Obj kvs -> Json.Obj (kvs @ fields ())
    | j -> j
end

(* --------------------------------------------------------------- metrics *)

(* Domain safety: shot loops now fan out across Domains (Parallel), and any
   of them may bump a counter or observe a histogram.  Counters and gauges
   are atomics (lock-free); histograms and the trace ring take a mutex per
   update; every registry serialises interning behind its own mutex so
   concurrent [create] calls from worker domains race neither the Hashtbl
   nor each other's handles. *)

let registered locked registry name make =
  Mutex.protect locked (fun () ->
      match Hashtbl.find_opt registry name with
      | Some t -> t
      | None ->
          let t = make () in
          Hashtbl.add registry name t;
          t)

module Counter = struct
  type t = { name : string; v : int Atomic.t }

  let registry : (string, t) Hashtbl.t = Hashtbl.create 32
  let registry_lock = Mutex.create ()

  let create name =
    registered registry_lock registry name (fun () -> { name; v = Atomic.make 0 })

  let incr t = Atomic.incr t.v
  let add t n = ignore (Atomic.fetch_and_add t.v n)
  let value t = Atomic.get t.v
  let name t = t.name
end

module Gauge = struct
  type t = { name : string; v : float Atomic.t }

  let registry : (string, t) Hashtbl.t = Hashtbl.create 32
  let registry_lock = Mutex.create ()

  let create name =
    registered registry_lock registry name (fun () -> { name; v = Atomic.make 0. })

  let set t x = Atomic.set t.v x

  let rec update t f =
    let old = Atomic.get t.v in
    let next = f old in
    if old <> next && not (Atomic.compare_and_set t.v old next) then update t f

  let add t x = update t (fun v -> v +. x)
  let set_max t x = update t (fun v -> if x > v then x else v)
  let value t = Atomic.get t.v
  let name t = t.name
end

module Histogram = struct
  type t = {
    name : string;
    bounds : float array;  (* strictly increasing upper bounds *)
    counts : int array;  (* same length as bounds *)
    mutable over : int;
    welford : Stats.running;
    mutable lo : float;
    mutable hi : float;
    lock : Mutex.t;  (* guards every mutable field above *)
  }

  (* 1 ns .. 100 s in thirds of a decade: fine enough to rank hot paths,
     coarse enough to stay 34 ints. *)
  let default_buckets =
    Array.init 34 (fun i -> 1e-9 *. (10. ** (float_of_int i /. 3.)))

  let registry : (string, t) Hashtbl.t = Hashtbl.create 32
  let registry_lock = Mutex.create ()

  let create ?(buckets = default_buckets) name =
    registered registry_lock registry name (fun () ->
        if Array.length buckets = 0 then
          invalid_arg "Obs.Histogram.create: empty buckets";
        Array.iteri
          (fun i b ->
            if i > 0 && buckets.(i - 1) >= b then
              invalid_arg "Obs.Histogram.create: buckets must increase")
          buckets;
        { name;
          bounds = Array.copy buckets;
          counts = Array.make (Array.length buckets) 0;
          over = 0;
          welford = Stats.running_create ();
          lo = infinity;
          hi = neg_infinity;
          lock = Mutex.create () })

  let observe t x =
    Mutex.protect t.lock (fun () ->
        Stats.running_add t.welford x;
        if x < t.lo then t.lo <- x;
        if x > t.hi then t.hi <- x;
        (* Binary search for the first bound >= x. *)
        let nb = Array.length t.bounds in
        if x > t.bounds.(nb - 1) then t.over <- t.over + 1
        else begin
          let lo = ref 0 and hi = ref (nb - 1) in
          while !lo < !hi do
            let mid = (!lo + !hi) / 2 in
            if x <= t.bounds.(mid) then hi := mid else lo := mid + 1
          done;
          t.counts.(!lo) <- t.counts.(!lo) + 1
        end)

  (* Bucket-interpolated quantile: walk the cumulative counts to the bucket
     holding rank q*count, then interpolate linearly inside it.  Bucket
     edges are clamped to the observed min/max, so estimates never leave
     the sampled range; the overflow bucket spans (last bound, max]. *)
  let quantile t q =
    if not (q >= 0. && q <= 1.) then invalid_arg "Obs.Histogram.quantile";
    Mutex.protect t.lock (fun () ->
        let total = Stats.running_count t.welford in
        if total = 0 then Float.nan
        else if total = 1 || t.lo = t.hi then
          (* Every observation was the same value: report it exactly rather
             than interpolating between clamped bucket edges, which can
             return a point never observed. *)
          t.lo
        else begin
          let target = q *. float_of_int total in
          let nb = Array.length t.bounds in
          let rec find i cum =
            if i > nb then t.hi
            else begin
              let c = if i = nb then t.over else t.counts.(i) in
              let cum' = cum +. float_of_int c in
              if c > 0 && cum' >= target then begin
                let lo_edge = if i = 0 then t.lo else Float.max t.lo t.bounds.(i - 1) in
                let hi_edge = if i = nb then t.hi else Float.min t.hi t.bounds.(i) in
                let frac = Float.max 0. ((target -. cum) /. float_of_int c) in
                lo_edge +. (frac *. (hi_edge -. lo_edge))
              end
              else find (i + 1) cum'
            end
          in
          Float.min t.hi (Float.max t.lo (find 0 0.))
        end)

  let count t = Stats.running_count t.welford
  let mean t = Stats.running_mean t.welford
  let variance t = Stats.running_variance t.welford
  let min_value t = t.lo
  let max_value t = t.hi
  let bucket_counts t = Array.mapi (fun i b -> (b, t.counts.(i))) t.bounds
  let overflow t = t.over
  let name t = t.name
end

(* --------------------------------------------------------------- tracing *)

module Trace = struct
  type span = {
    name : string;
    start_ns : int64;
    dur_ns : int64;
    depth : int;
    domain : int;  (* recording domain id *)
    path : string;  (* caller path incl. self, ";"-separated *)
    minor_w : int;  (* words allocated on this domain inside the span window *)
    promoted_w : int;
    major_w : int;
    attrs : (string * string) list;
  }

  let t0 = now_ns ()

  (* Wall-clock time at monotonic zero — the clock handshake `obs
     trace-merge` uses to align per-process timelines.  Each process records
     the Unix time corresponding to its trace's ts = 0; the merge shifts
     every process onto the earliest one's axis by the recorded offsets, so
     alignment is deterministic and independent of merge order. *)
  let t0_unix = Unix.gettimeofday ()

  let capacity = ref 65536
  let ring : span option array ref = ref (Array.make !capacity None)
  let next = ref 0 (* total spans ever recorded *)

  (* Aggregate shape shared by the name- and path-keyed tables:
     (count, total_ns, minor_w, promoted_w, major_w). *)
  let totals : (string, int * int64 * int * int * int) Hashtbl.t =
    Hashtbl.create 32

  (* Caller-path-keyed aggregates, the profiler's input.  Unlike the ring,
     these never evict, so self-time trees stay exact over arbitrarily long
     runs. *)
  let path_totals : (string, int * int64 * int * int * int) Hashtbl.t =
    Hashtbl.create 64

  (* One lock for ring + totals + capacity swaps; span recording is far off
     the per-shot hot path (spans wrap whole experiments), so contention is
     negligible.  The enclosing-span path is tracked per domain (innermost
     first); [Parallel.task_context] seeds a worker domain's stack with the
     submitting caller's, so spans recorded inside fanned-out tasks carry
     the same caller path at any job count. *)
  let lock = Mutex.create ()
  let stack_key = Domain.DLS.new_key (fun () -> ref ([] : string list))

  let set_capacity c =
    if c <= 0 then invalid_arg "Obs.Trace.set_capacity";
    Mutex.protect lock (fun () ->
        capacity := c;
        ring := Array.make c None;
        next := 0)

  let bump tbl key s =
    let count, total, mw, pw, jw =
      Option.value ~default:(0, 0L, 0, 0, 0) (Hashtbl.find_opt tbl key)
    in
    Hashtbl.replace tbl key
      ( count + 1,
        Int64.add total s.dur_ns,
        mw + s.minor_w,
        pw + s.promoted_w,
        jw + s.major_w )

  let record s =
    Mutex.protect lock (fun () ->
        !ring.(!next mod !capacity) <- Some s;
        incr next;
        bump totals s.name s;
        bump path_totals s.path s)

  let with_span ?(attrs = []) name f =
    let start = now_ns () in
    let stack = Domain.DLS.get stack_key in
    let parent = !stack in
    let depth = List.length parent in
    stack := name :: parent;
    let path = String.concat ";" (List.rev !stack) in
    (* Allocation window.  GC word counters are domain-local and monotone;
       the entry samples are taken after every piece of span setup (stack
       push, path concat) so only the thunk's own allocation — plus the
       constant cost of the entry samples' own boxes — lands in the window.
       Minor words come from [Gc.minor_words], which reads the young
       pointer directly and is exact mid-collection-interval; on OCaml 5
       [quick_stat]'s minor_words field only refreshes at collection
       boundaries and would report 0 for most spans.  Promoted/major words
       only ever change at collections, so [quick_stat] is fine for them.
       The exit samples are the first thing [finish] does, so exit-side
       bookkeeping (span record, hashtable fold) stays outside. *)
    let gc0 = Gc.quick_stat () in
    let mw0 = Gc.minor_words () in
    let finish () =
      let mw1 = Gc.minor_words () in
      let gc1 = Gc.quick_stat () in
      stack := parent;
      let stop = now_ns () in
      let dw a b = max 0 (int_of_float (a -. b)) in
      record
        { name;
          start_ns = Int64.sub start t0;
          dur_ns = Int64.sub stop start;
          depth;
          domain = (Domain.self () :> int);
          path;
          minor_w = dw mw1 mw0;
          promoted_w = dw gc1.Gc.promoted_words gc0.Gc.promoted_words;
          major_w = dw gc1.Gc.major_words gc0.Gc.major_words;
          attrs }
    in
    match f () with
    | v ->
        finish ();
        v
    | exception e ->
        finish ();
        raise e

  let spans () =
    Mutex.protect lock (fun () ->
        let cap = !capacity in
        let first = max 0 (!next - cap) in
        List.filter_map
          (fun i -> !ring.(i mod cap))
          (List.init (!next - first) (fun k -> first + k)))

  let recorded () = Mutex.protect lock (fun () -> !next)

  let summaries () =
    Mutex.protect lock (fun () ->
        Hashtbl.fold
          (fun name (c, t, mw, pw, jw) acc -> (name, c, t, mw, pw, jw) :: acc)
          totals [])
    |> List.sort compare

  let by_path () =
    Mutex.protect lock (fun () ->
        Hashtbl.fold
          (fun path (c, t, mw, pw, jw) acc -> (path, c, t, mw, pw, jw) :: acc)
          path_totals [])
    |> List.sort compare

  (* Chrome-trace mapping: [tid] is the recording domain, so Perfetto lays
     each domain's spans on its own track instead of interleaving every
     depth-n span from every domain onto one; nesting depth and the caller
     path travel in [args]. *)
  let span_json s =
    Json.Obj
      [ ("name", Json.String s.name);
        ("ph", Json.String "X");
        ("ts", Json.Float (Int64.to_float s.start_ns /. 1e3));
        ("dur", Json.Float (Int64.to_float s.dur_ns /. 1e3));
        ("pid", Json.Int 0);
        ("tid", Json.Int s.domain);
        ( "args",
          Json.Obj
            (("trace_id", Json.String (Context.current ()).Context.trace_id)
            :: ("depth", Json.Int s.depth)
            :: ("path", Json.String s.path)
            :: ("minor_w", Json.Int s.minor_w)
            :: ("promoted_w", Json.Int s.promoted_w)
            :: ("major_w", Json.Int s.major_w)
            :: List.map (fun (k, v) -> (k, Json.String v)) s.attrs) ) ]

  let export ~path =
    let oc = open_out path in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () ->
        (* First line is a Chrome-trace metadata event (ph "M") carrying the
           run identity, trace context, and clock handshake; trace readers
           aggregate "X" events only. *)
        let meta_args =
          match Context.stamp () with
          | Json.Obj kvs -> Json.Obj (kvs @ [ ("ts0_unix", Json.Float t0_unix) ])
          | j -> j
        in
        let meta =
          Json.Obj
            [ ("name", Json.String "hetarch.run");
              ("ph", Json.String "M");
              ("pid", Json.Int 0);
              ("tid", Json.Int 0);
              ("args", meta_args) ]
        in
        output_string oc (Json.to_string meta);
        output_char oc '\n';
        List.iter
          (fun s ->
            output_string oc (Json.to_string (span_json s));
            output_char oc '\n')
          (spans ()))

  let reset () =
    Mutex.protect lock (fun () ->
        Array.fill !ring 0 !capacity None;
        next := 0;
        Hashtbl.reset totals;
        Hashtbl.reset path_totals);
    Domain.DLS.get stack_key := []
end

(* ------------------------------------------------------------- profiling *)

(* Call-tree profiler over the caller-path-keyed span aggregates.  The tree
   is built from [Trace.by_path] (or any (path, count, cum_ns, minor_w,
   promoted_w, major_w) list, e.g. re-aggregated from an exported trace
   file): cumulative time is summed per exact caller path, and self time is
   cumulative minus the cumulative time of direct children — so self times
   telescope: they sum exactly to the root spans' cumulative time.  Minor
   allocation telescopes by the identical rule: [self_w] is a node's
   cumulative minor words minus its direct children's, so an allocation
   flamegraph attributes every word to the innermost span that allocated
   it.  All orderings are lexicographic by path, making every rendering
   deterministic regardless of the completion order spans were recorded in
   (which differs across worker domains). *)

module Profile = struct
  type node = {
    path : string;
    name : string;
    count : int;
    cum_ns : int64;
    self_ns : int64;
    cum_w : int;  (* cumulative minor words under this path *)
    self_w : int;  (* cum_w minus direct children's cum_w, clamped >= 0 *)
    children : node list;
  }

  let of_totals totals =
    (* Split paths into segment lists and build the trie level by level.
       A path can appear without its parent (the parent span still open at
       export time, or evicted from an offline trace's ring): such implicit
       interior nodes get zero count/cum and zero self. *)
    let entries =
      List.map
        (fun (path, c, t, mw, _, _) -> (String.split_on_char ';' path, c, t, mw))
        totals
    in
    let rec build prefix entries =
      (* Group by head segment, preserving nothing but content. *)
      let groups : (string, (string list * int * int64 * int) list ref) Hashtbl.t
          =
        Hashtbl.create 16
      in
      let order = ref [] in
      List.iter
        (fun (segs, c, t, w) ->
          match segs with
          | [] -> ()
          | head :: rest ->
              let cell =
                match Hashtbl.find_opt groups head with
                | Some r -> r
                | None ->
                    let r = ref [] in
                    Hashtbl.add groups head r;
                    order := head :: !order;
                    r
              in
              cell := (rest, c, t, w) :: !cell)
        entries;
      List.sort compare !order
      |> List.map (fun name ->
             let members = !(Hashtbl.find groups name) in
             let path = if prefix = "" then name else prefix ^ ";" ^ name in
             let count, cum, cum_w =
               List.fold_left
                 (fun (c, t, w) (segs, c', t', w') ->
                   if segs = [] then (c + c', Int64.add t t', w + w') else (c, t, w))
                 (0, 0L, 0) members
             in
             let deeper =
               List.filter (fun (segs, _, _, _) -> segs <> []) members
             in
             let children = build path deeper in
             let child_cum =
               List.fold_left (fun acc n -> Int64.add acc n.cum_ns) 0L children
             in
             let child_w =
               List.fold_left (fun acc n -> acc + n.cum_w) 0 children
             in
             (* Negative only for implicit nodes (count 0) or clock jitter;
                clamp so folded weights stay valid.  Allocation can also go
                negative on a real node when children ran on other domains
                (their words were never in the parent domain's window). *)
             let self =
               if count = 0 then 0L
               else if Int64.compare child_cum cum > 0 then 0L
               else Int64.sub cum child_cum
             in
             let self_w = if count = 0 then 0 else max 0 (cum_w - child_w) in
             { path; name; count; cum_ns = cum; self_ns = self; cum_w; self_w;
               children })
    in
    build "" entries

  let tree () = of_totals (Trace.by_path ())

  let rec fold_nodes f acc nodes =
    List.fold_left (fun acc n -> fold_nodes f (f acc n) n.children) acc nodes

  (* Folded-stack text (flamegraph.pl / speedscope "folded" input): one
     [path weight] line per node with a positive weight, sorted by path.
     [`Self_ns] weights are wall-clock and vary run to run; [`Count] weights
     depend only on the span structure, so they are byte-identical across
     --jobs settings — that is what the CI smoke diffs.  [`Self_alloc]
     weights by self minor words: exact (not sampled), so for a workload
     whose spans run sequentially the allocation flamegraph is
     byte-identical across runs and --jobs settings too. *)
  let folded ?(weight = `Self_ns) nodes =
    let b = Buffer.create 256 in
    let lines =
      fold_nodes
        (fun acc n ->
          let w =
            match weight with
            | `Self_ns -> Int64.to_int n.self_ns
            | `Count -> n.count
            | `Self_alloc -> n.self_w
          in
          if w > 0 then (n.path, w) :: acc else acc)
        [] nodes
      |> List.sort compare
    in
    List.iter (fun (path, w) -> Printf.bprintf b "%s %d\n" path w) lines;
    Buffer.contents b

  (* Flattened nodes ranked by the sort key (desc), path as tiebreak. *)
  let top ?(sort = `Self) ?limit nodes =
    let all = fold_nodes (fun acc n -> n :: acc) [] nodes in
    let sorted =
      List.sort
        (fun a b ->
          let c =
            match sort with
            | `Self -> Int64.compare b.self_ns a.self_ns
            | `Cum -> Int64.compare b.cum_ns a.cum_ns
            | `Count -> compare b.count a.count
            | `Alloc -> compare b.self_w a.self_w
          in
          match c with 0 -> compare a.path b.path | c -> c)
        all
    in
    match limit with
    | None -> sorted
    | Some k -> List.filteri (fun i _ -> i < k) sorted

  let top_table ?(sort = `Self) ?(limit = 20) nodes =
    let total_self =
      fold_nodes (fun acc n -> Int64.add acc n.self_ns) 0L nodes
    in
    let b = Buffer.create 256 in
    Printf.bprintf b "%12s %10s %12s %6s %14s  %s\n" "self_ms" "count" "cum_ms"
      "self%" "self_words" "path";
    List.iter
      (fun n ->
        let ms ns = Int64.to_float ns /. 1e6 in
        let pct =
          if Int64.compare total_self 0L > 0 then
            100. *. Int64.to_float n.self_ns /. Int64.to_float total_self
          else 0.
        in
        Printf.bprintf b "%12.3f %10d %12.3f %6.2f %14d  %s\n" (ms n.self_ns)
          n.count (ms n.cum_ns) pct n.self_w n.path)
      (top ~sort ~limit nodes);
    Buffer.contents b
end

(* ------------------------------------------------------------- telemetry *)

(* Append-only JSONL heartbeat (schema hetarch.telemetry/4).  Ticks are
   driven synchronously from Parallel chunk boundaries and Collect batch
   completions — never from a background thread — so enabling telemetry
   cannot change any result.  Each record carries monotonic elapsed time,
   counter deltas since the previous record (from which shots/sec and
   events/sec follow), GC deltas — including the minor-words allocation
   delta and its words/sec rate (v3) — and, when a campaign has registered
   a progress provider, per-task progress with Wilson half-widths and an
   ETA at the current rate.  v4 stamps the trace context into "run", adds
   the throttle interval and live Parallel queue/worker gauges, and marks
   the closing record with ("final", true) so readers can tell a completed
   stream from a stalled one.  The collect --progress line reads the same
   [campaign_snapshot] code path. *)

module Telemetry = struct
  type task_progress = {
    tp_id : string;
    tp_kind : string;
    tp_shots : int;
    tp_errors : int;
    tp_resumed : int;  (* shots replayed from a ledger, not sampled now *)
    tp_rel_halfwidth : float;  (* nan when undefined (no errors yet) *)
    tp_remaining : int;  (* shots to the task's ceiling; 0 once stopped *)
    tp_done : bool;
  }

  type campaign = {
    c_elapsed_s : float;  (* since the provider registered (campaign start) *)
    c_done : int;
    c_total : int;
    c_shots : int;  (* merged, incl. resumed *)
    c_new_shots : int;  (* sampled by this run *)
    c_rate : float;  (* new shots per second *)
    c_remaining : int;
    c_eta_s : float option;  (* None until the rate is measurable *)
    c_tasks : task_progress list;
  }

  let enabled_flag = Atomic.make false
  let lock = Mutex.create ()
  let sink : out_channel option ref = ref None
  let interval_ns = ref 1_000_000_000L
  let t_enable = ref 0L
  let last_ns = ref 0L
  let seq = ref 0
  let prev_counters : (string, int) Hashtbl.t = Hashtbl.create 32
  let prev_gc = ref (0, 0)
  let prev_minor_words = ref 0.
  let provider : (unit -> task_progress list) option ref = ref None
  let provider_t0 = ref 0L

  (* Set by [disable] around its last emit so the closing record carries
     ("final", true) — the monitor's clean "stream complete" signal, as
     opposed to a stream that merely went quiet (stalled). *)
  let finalizing = ref false

  let enabled () = Atomic.get enabled_flag

  let set_campaign p =
    Mutex.protect lock (fun () ->
        provider := p;
        provider_t0 := now_ns ())

  let campaign_snapshot () =
    match !provider with
    | None -> None
    | Some f ->
        let tasks = f () in
        let elapsed =
          Int64.to_float (Int64.sub (now_ns ()) !provider_t0) /. 1e9
        in
        let sum g = List.fold_left (fun a t -> a + g t) 0 tasks in
        let shots = sum (fun t -> t.tp_shots) in
        let new_shots = sum (fun t -> t.tp_shots - t.tp_resumed) in
        let remaining = sum (fun t -> t.tp_remaining) in
        let rate = if elapsed > 0. then float_of_int new_shots /. elapsed else 0. in
        Some
          { c_elapsed_s = elapsed;
            c_done = List.length (List.filter (fun t -> t.tp_done) tasks);
            c_total = List.length tasks;
            c_shots = shots;
            c_new_shots = new_shots;
            c_rate = rate;
            c_remaining = remaining;
            c_eta_s = (if rate > 0. then Some (float_of_int remaining /. rate) else None);
            c_tasks = tasks }

  (* Forget the delta baseline (called by [Obs.reset]): the next record's
     deltas measure from zero instead of going negative against counters
     that were just zeroed. *)
  let reset_baseline () =
    Mutex.protect lock (fun () ->
        Hashtbl.reset prev_counters;
        let st = Gc.quick_stat () in
        prev_gc := (st.Gc.minor_collections, st.Gc.major_collections);
        (* [Gc.minor_words], not [quick_stat]'s field: the latter only
           refreshes at collection boundaries on OCaml 5. *)
        prev_minor_words := Gc.minor_words ())

  let task_json t =
    Json.Obj
      [ ("id", Json.String t.tp_id);
        ("kind", Json.String t.tp_kind);
        ("shots", Json.Int t.tp_shots);
        ("errors", Json.Int t.tp_errors);
        ("rel_halfwidth",
         if Float.is_nan t.tp_rel_halfwidth then Json.Null
         else Json.Float t.tp_rel_halfwidth);
        ("remaining", Json.Int t.tp_remaining);
        ("done", Json.Bool t.tp_done) ]

  (* Must be called with [lock] held. *)
  let emit oc now =
    let elapsed_s = Int64.to_float (Int64.sub now !t_enable) /. 1e9 in
    let dt_s =
      if !seq = 0 then 0.
      else Int64.to_float (Int64.sub now !last_ns) /. 1e9
    in
    let counters =
      Hashtbl.fold
        (fun name c acc -> (name, Counter.value c) :: acc)
        Counter.registry []
      |> List.sort compare
    in
    let deltas =
      List.map
        (fun (name, v) ->
          let prev = Option.value ~default:0 (Hashtbl.find_opt prev_counters name) in
          (* Clamp: a counter reset between ticks must not produce negative
             deltas (reset_baseline handles Obs.reset; the clamp covers any
             other external zeroing). *)
          (name, max 0 (v - prev)))
        counters
    in
    let rates =
      if dt_s > 0. then
        List.filter_map
          (fun (name, d) ->
            if d > 0 then Some (name, Json.Float (float_of_int d /. dt_s))
            else None)
          deltas
      else []
    in
    let st = Gc.quick_stat () in
    let pminor, pmajor = !prev_gc in
    (* Clamped like the counter deltas: an external baseline reset must not
       produce a negative allocation delta. *)
    let minor_words_now = Gc.minor_words () in
    let minor_words_delta =
      max 0 (int_of_float (minor_words_now -. !prev_minor_words))
    in
    let rates =
      if dt_s > 0. && minor_words_delta > 0 then
        ( "gc.minor_words_per_s",
          Json.Float (float_of_int minor_words_delta /. dt_s) )
        :: rates
      else rates
    in
    let campaign =
      match campaign_snapshot () with
      | None -> []
      | Some c ->
          [ ( "campaign",
              Json.Obj
                [ ("tasks_done", Json.Int c.c_done);
                  ("tasks", Json.Int c.c_total);
                  ("shots", Json.Int c.c_shots);
                  ("new_shots", Json.Int c.c_new_shots);
                  ("shots_per_s", Json.Float c.c_rate);
                  ("remaining_shots", Json.Int c.c_remaining);
                  ("eta_s",
                   match c.c_eta_s with Some e -> Json.Float e | None -> Json.Null);
                  ("task_progress", Json.List (List.map task_json c.c_tasks)) ] ) ]
    in
    let queue_depth, busy = Parallel.queue_stats () in
    let doc =
      Json.Obj
        ([ ("schema", Json.String "hetarch.telemetry/4");
           ("run", Context.stamp ());
           ("seq", Json.Int !seq);
           ("elapsed_s", Json.Float elapsed_s);
           ("dt_s", Json.Float dt_s);
           (* The throttle interval travels with every record so readers
              (tail, monitor) can judge staleness without out-of-band
              configuration. *)
           ("interval_s", Json.Float (Int64.to_float !interval_ns /. 1e9));
           ("counters", Json.Obj (List.map (fun (n, v) -> (n, Json.Int v)) counters));
           ("deltas", Json.Obj (List.map (fun (n, d) -> (n, Json.Int d)) deltas));
           ("rates", Json.Obj rates);
           ( "gc",
             Json.Obj
               [ ("minor_delta", Json.Int (max 0 (st.Gc.minor_collections - pminor)));
                 ("major_delta", Json.Int (max 0 (st.Gc.major_collections - pmajor)));
                 ("minor_words_delta", Json.Int minor_words_delta);
                 ("heap_words", Json.Int st.Gc.heap_words);
                 ("top_heap_words", Json.Int st.Gc.top_heap_words) ] );
           ( "parallel",
             Json.Obj
               [ ("queue_depth", Json.Int queue_depth);
                 ("busy_domains", Json.Int busy) ] ) ]
        @ campaign
        @ if !finalizing then [ ("final", Json.Bool true) ] else [])
    in
    output_string oc (Json.to_string doc);
    output_char oc '\n';
    flush oc;
    incr seq;
    last_ns := now;
    prev_gc := (st.Gc.minor_collections, st.Gc.major_collections);
    prev_minor_words := minor_words_now;
    List.iter (fun (name, v) -> Hashtbl.replace prev_counters name v) counters

  let tick ?(force = false) () =
    if Atomic.get enabled_flag then begin
      let now = now_ns () in
      (* Throttle check before taking the lock: the Parallel chunk hook
         costs one atomic load plus one clock read when idle. *)
      if force || Int64.sub now !last_ns >= !interval_ns then
        Mutex.protect lock (fun () ->
            if force || Int64.sub now !last_ns >= !interval_ns then
              match !sink with None -> () | Some oc -> emit oc now)
    end

  let disable () =
    Mutex.protect lock (fun () ->
        (match !sink with
        | Some oc ->
            (* Final record so the file always ends with the run's last
               state, marked ("final", true), then close. *)
            finalizing := true;
            Fun.protect
              ~finally:(fun () -> finalizing := false)
              (fun () -> emit oc (now_ns ()));
            close_out oc
        | None -> ());
        sink := None;
        Atomic.set enabled_flag false)

  (* Registered once, lazily: a run killed between ticks (or leaving via
     [exit] from deep inside a command) still flushes one final forced
     record, so the stream always ends with the run's last state. *)
  let exit_flush_registered = ref false

  let enable ~path ~interval_s =
    if not (interval_s >= 0.) then invalid_arg "Obs.Telemetry.enable: interval";
    (match !sink with Some _ -> disable () | None -> ());
    if not !exit_flush_registered then begin
      exit_flush_registered := true;
      at_exit (fun () -> if Atomic.get enabled_flag then disable ())
    end;
    Mutex.protect lock (fun () ->
        let oc = open_out path in
        sink := Some oc;
        interval_ns := Int64.of_float (interval_s *. 1e9);
        t_enable := now_ns ();
        last_ns := 0L;
        seq := 0;
        Hashtbl.reset prev_counters;
        let st = Gc.quick_stat () in
        prev_gc := (st.Gc.minor_collections, st.Gc.major_collections);
        prev_minor_words := Gc.minor_words ();
        (* Baseline record at enable time: seq 0, dt 0. *)
        emit oc (now_ns ());
        Atomic.set enabled_flag true)
end

(* ------------------------------------------------------------------ diff *)

(* Manifest/bench comparison: extract the time-like metrics of two parsed
   documents and flag relative regressions past a threshold.  Understands
   hetarch.bench/* (kernel ns/run) and hetarch.obs/* run manifests (span
   total_ns and histogram means); CI uses it warn-only as a perf-trend
   report, and scripts can use the exit status as a hard gate. *)

module Diff = struct
  type entry = {
    metric : string;
    a : float;
    b : float;
    pct : float;  (* 100 * (b - a) / a; 0 when both sides are 0 *)
    regression : bool;
  }

  type result = {
    entries : entry list;  (* intersection of both docs, sorted by metric *)
    regressions : entry list;  (* entries past the threshold, worst first *)
    only_a : string list;
    only_b : string list;
    scale : float;  (* divisor applied to current values; 1 unless normalized *)
  }

  let default_threshold_pct = 20.

  let median = function
    | [] -> 1.
    | xs ->
        let arr = Array.of_list xs in
        Array.sort compare arr;
        let n = Array.length arr in
        if n mod 2 = 1 then arr.(n / 2)
        else (arr.((n / 2) - 1) +. arr.(n / 2)) /. 2.

  (* (metric, value) list for one document; higher is always worse. *)
  let metrics_of doc =
    let schema =
      match Json.member "schema" doc with Some (Json.String s) -> s | _ -> ""
    in
    if String.length schema >= 13 && String.sub schema 0 13 = "hetarch.bench" then
      match Json.member "kernels" doc with
      | Some (Json.List ks) ->
          List.filter_map
            (fun k ->
              match (Json.member "name" k, Json.member "ns_per_run" k) with
              | Some (Json.String n), Some v -> (
                  try Some ("kernel:" ^ n, Json.to_float v) with Failure _ -> None)
              | _ -> None)
            ks
      | _ -> []
    else if
      List.exists
        (fun p -> String.length schema >= String.length p && String.sub schema 0 (String.length p) = p)
        [ "hetarch.obs"; "hetarch.snapshot"; "hetarch.fleet" ]
    then begin
      let section name f =
        match Json.member name doc with
        | Some (Json.Obj kvs) -> List.filter_map f kvs
        | _ -> []
      in
      section "spans" (fun (name, v) ->
          match Json.member "total_ns" v with
          | Some t -> (try Some ("span:" ^ name, Json.to_float t) with Failure _ -> None)
          | None -> None)
      (* Minor-word totals per span name (absent in pre-alloc documents):
         exact counts, so the trend watchdog flags allocation regressions
         with the same median + MAD machinery it uses for ns. *)
      @ section "spans" (fun (name, v) ->
            match Json.member "minor_w" v with
            | Some w -> (
                try Some ("alloc:" ^ name, Json.to_float w) with Failure _ -> None)
            | None -> None)
      @ section "histograms" (fun (name, v) ->
            match Json.member "mean" v with
            | Some m -> (
                try
                  let x = Json.to_float m in
                  if Float.is_finite x then Some ("hist:" ^ name ^ ".mean", x)
                  else None
                with Failure _ -> None)
            | None -> None)
    end
    else
      failwith
        "Obs.Diff: unrecognized schema (want hetarch.bench/*, hetarch.obs/*, \
         hetarch.snapshot/* or hetarch.fleet/*)"

  (* [normalize] divides every current value by the median current/baseline
     ratio across the common metrics, cancelling a uniform machine-speed
     difference (CI runners vs the machine that produced the committed
     baseline) while leaving genuine per-metric regressions — which move
     against the median — visible.  [noise_floor_ns] keeps sub-floor
     metrics listed but never flags them: a 50% swing on a 300 ns kernel
     is scheduling noise, not a regression. *)
  let compare_docs ?(threshold_pct = default_threshold_pct)
      ?(noise_floor_ns = 0.) ?(normalize = false) a b =
    let ma = metrics_of a and mb = metrics_of b in
    let tbl = Hashtbl.create 32 in
    List.iter (fun (k, v) -> Hashtbl.replace tbl k v) ma;
    let scale =
      if not normalize then 1.
      else
        let ratios =
          List.filter_map
            (fun (k, vb) ->
              match Hashtbl.find_opt tbl k with
              | Some va when va > 0. && vb > 0. -> Some (vb /. va)
              | _ -> None)
            mb
        in
        let m = median ratios in
        if Float.is_finite m && m > 0. then m else 1.
    in
    let entries =
      List.filter_map
        (fun (k, vb_raw) ->
          match Hashtbl.find_opt tbl k with
          | None -> None
          | Some va ->
              let vb = vb_raw /. scale in
              let pct =
                if va > 0. then 100. *. (vb -. va) /. va
                else if vb > 0. then infinity
                else 0.
              in
              Some
                { metric = k;
                  a = va;
                  b = vb;
                  pct;
                  regression =
                    va > 0. && pct > threshold_pct
                    && Float.max va vb >= noise_floor_ns })
        mb
      |> List.sort (fun x y -> compare x.metric y.metric)
    in
    let names m = List.map fst m in
    let diff_names xs ys = List.filter (fun x -> not (List.mem x ys)) xs in
    { entries;
      regressions =
        List.filter (fun e -> e.regression) entries
        |> List.sort (fun x y -> compare y.pct x.pct);
      only_a = List.sort compare (diff_names (names ma) (names mb));
      only_b = List.sort compare (diff_names (names mb) (names ma));
      scale }
end

(* --------------------------------------------------------------- reports *)

module Report = struct
  let sorted_fold registry f =
    Hashtbl.fold (fun name v acc -> (name, f v) :: acc) registry []
    |> List.sort compare

  (* hetarch_util sits below this library, so the Parallel executor keeps
     plain atomics; snapshot them into gauges whenever a report is cut. *)
  let g_parallel_tasks = Gauge.create "parallel.tasks_total"
  let g_parallel_domains = Gauge.create "parallel.domains_spawned_total"
  let g_parallel_queue = Gauge.create "parallel.queue_depth"
  let g_parallel_busy = Gauge.create "parallel.busy_domains"

  let snapshot_parallel () =
    let tasks, domains = Parallel.stats () in
    Gauge.set g_parallel_tasks (float_of_int tasks);
    Gauge.set g_parallel_domains (float_of_int domains);
    let queue, busy = Parallel.queue_stats () in
    Gauge.set g_parallel_queue (float_of_int queue);
    Gauge.set g_parallel_busy (float_of_int busy)

  (* Free per-run process telemetry: GC counters (Gc.quick_stat reads
     mutator-maintained fields only — no heap traversal), peak heap, and
     wall-clock seconds since the module was initialised. *)
  let process_json () =
    let st = Gc.quick_stat () in
    Json.Obj
      [ ("wall_seconds",
         Json.Float (Int64.to_float (Int64.sub (now_ns ()) Trace.t0) /. 1e9));
        ("minor_collections", Json.Int st.Gc.minor_collections);
        ("major_collections", Json.Int st.Gc.major_collections);
        ("compactions", Json.Int st.Gc.compactions);
        (* [Gc.minor_words], not [quick_stat]'s field, which only refreshes
           at collection boundaries on OCaml 5 — span alloc attribution
           reconciles against this number. *)
        ("minor_words", Json.Float (Gc.minor_words ()));
        ("promoted_words", Json.Float st.Gc.promoted_words);
        ("major_words", Json.Float st.Gc.major_words);
        ("heap_words", Json.Int st.Gc.heap_words);
        ("top_heap_words", Json.Int st.Gc.top_heap_words) ]

  let to_json () =
    snapshot_parallel ();
    (* Sample the process section before assembling the (allocation-heavy)
       metric sections: the manifest's minor_words is what span allocation
       attribution reconciles against, so the report's own assembly cost
       must not land between the last span and the sample. *)
    let process = process_json () in
    let counters =
      sorted_fold Counter.registry (fun c -> Json.Int (Counter.value c))
    in
    let gauges =
      sorted_fold Gauge.registry (fun g -> Json.Float (Gauge.value g))
    in
    let histograms =
      sorted_fold Histogram.registry (fun h ->
          let buckets =
            Histogram.bucket_counts h |> Array.to_list
            |> List.filter (fun (_, c) -> c > 0)
            |> List.map (fun (le, c) ->
                   Json.Obj [ ("le", Json.Float le); ("count", Json.Int c) ])
          in
          Json.Obj
            [ ("count", Json.Int (Histogram.count h));
              ("mean", Json.Float (Histogram.mean h));
              ("variance", Json.Float (Histogram.variance h));
              ("min", Json.Float (Histogram.min_value h));
              ("max", Json.Float (Histogram.max_value h));
              ("p50", Json.Float (Histogram.quantile h 0.5));
              ("p90", Json.Float (Histogram.quantile h 0.9));
              ("p99", Json.Float (Histogram.quantile h 0.99));
              ("overflow", Json.Int (Histogram.overflow h));
              ("buckets", Json.List buckets) ])
    in
    (* Span duration quantiles come from the retained ring (the per-name
       totals keep no distribution), so they describe the most recent
       [capacity] spans when the ring has evicted. *)
    let ring_durs : (string, float list) Hashtbl.t = Hashtbl.create 32 in
    List.iter
      (fun (s : Trace.span) ->
        let durs = Option.value ~default:[] (Hashtbl.find_opt ring_durs s.Trace.name) in
        Hashtbl.replace ring_durs s.Trace.name (Int64.to_float s.Trace.dur_ns :: durs))
      (Trace.spans ());
    let spans =
      List.map
        (fun (name, count, total_ns, minor_w, promoted_w, major_w) ->
          let quantiles =
            match Hashtbl.find_opt ring_durs name with
            | None | Some [] -> []
            | Some durs ->
                let xs = Array.of_list durs in
                [ ("p50_ns", Json.Float (Stats.percentile xs 50.));
                  ("p90_ns", Json.Float (Stats.percentile xs 90.));
                  ("p99_ns", Json.Float (Stats.percentile xs 99.)) ]
          in
          ( name,
            Json.Obj
              ([ ("count", Json.Int count);
                 ("total_ns", Json.Int (Int64.to_int total_ns));
                 ("minor_w", Json.Int minor_w);
                 ("promoted_w", Json.Int promoted_w);
                 ("major_w", Json.Int major_w) ]
              @ quantiles) ))
        (Trace.summaries ())
    in
    Json.Obj
      [ ("schema", Json.String "hetarch.obs/5");
        ("run", Context.stamp ());
        ("process", process);
        ("counters", Json.Obj counters);
        ("gauges", Json.Obj gauges);
        ("histograms", Json.Obj histograms);
        ("spans", Json.Obj spans) ]

  let write ~path =
    let oc = open_out path in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () ->
        output_string oc (Json.to_string (to_json ()));
        output_char oc '\n')
end

(* ------------------------------------------------------------- snapshots *)

(* Complete, versioned serialization of one process's obs state — the unit
   of fleet-scale aggregation.  Unlike the Report manifest (a human-facing
   summary with lossy derived quantities), a snapshot carries the *raw*
   mergeable state: integer bucket counts, Welford (n, mean, m2) triples,
   and per-caller-path span aggregates (from which the profile trie is
   reconstructed exactly).  Serialization is canonical — sections sorted by
   name, floats via the round-tripping emitter — so parse ∘ serialize is the
   identity on bytes and the content hash is well-defined. *)

module Snapshot = struct
  let schema = "hetarch.snapshot/3"

  (* One version back still parses: v2 (no trace context — context fields
     default to "") and v1 (additionally no per-span allocation aggregates —
     alloc fields default to zero) both load, so registries recorded before
     the bumps stay readable; serialization always emits v3. *)
  let schema_v2 = "hetarch.snapshot/2"
  let schema_v1 = "hetarch.snapshot/1"

  type hist = {
    h_bounds : float array;
    h_counts : int array;
    h_overflow : int;
    h_count : int;
    h_mean : float;
    h_m2 : float;  (* Welford sum of squared deviations *)
    h_min : float;
    h_max : float;
  }

  type process = {
    p_minor_collections : int;
    p_major_collections : int;
    p_compactions : int;
    p_minor_words : float;
    p_promoted_words : float;
    p_major_words : float;
    p_heap_words : int;
    p_top_heap_words : int;
  }

  type t = {
    run_id : string;
    shard : string;
    trace_id : string;
    span_id : string;
    parent_span_id : string;  (* "" for a root (unparented) run *)
    argv : string list;
    started_unix : float;
    wall_seconds : float;
    jobs : int;
    counters : (string * int) list;  (* sorted by name *)
    gauges : (string * float) list;
    histograms : (string * hist) list;
    (* (name, count, total_ns, minor_w, promoted_w, major_w) *)
    spans : (string * int * int64 * int * int * int) list;
    (* profile trie, keyed by path; same aggregate shape *)
    paths : (string * int * int64 * int * int * int) list;
    process : process;
  }

  let capture () =
    Report.snapshot_parallel ();
    let histograms =
      Report.sorted_fold Histogram.registry (fun h ->
          Mutex.protect h.Histogram.lock (fun () ->
              { h_bounds = Array.copy h.Histogram.bounds;
                h_counts = Array.copy h.Histogram.counts;
                h_overflow = h.Histogram.over;
                h_count = Stats.running_count h.Histogram.welford;
                h_mean = Stats.running_mean h.Histogram.welford;
                h_m2 = Stats.running_m2 h.Histogram.welford;
                h_min = h.Histogram.lo;
                h_max = h.Histogram.hi }))
    in
    let st = Gc.quick_stat () in
    let ctx = Context.current () in
    { run_id = Run.id ();
      shard = Run.shard ();
      trace_id = ctx.Context.trace_id;
      span_id = ctx.Context.span_id;
      parent_span_id = ctx.Context.parent_span_id;
      argv = Array.to_list Sys.argv;
      started_unix = Run.started_unix;
      wall_seconds = Int64.to_float (Int64.sub (now_ns ()) Trace.t0) /. 1e9;
      jobs = Parallel.jobs ();
      counters = Report.sorted_fold Counter.registry Counter.value;
      gauges = Report.sorted_fold Gauge.registry Gauge.value;
      histograms;
      spans = Trace.summaries ();
      paths = Trace.by_path ();
      process =
        { p_minor_collections = st.Gc.minor_collections;
          p_major_collections = st.Gc.major_collections;
          p_compactions = st.Gc.compactions;
          (* exact mid-interval, unlike [quick_stat]'s field on OCaml 5 *)
          p_minor_words = Gc.minor_words ();
          p_promoted_words = st.Gc.promoted_words;
          p_major_words = st.Gc.major_words;
          p_heap_words = st.Gc.heap_words;
          p_top_heap_words = st.Gc.top_heap_words } }

  let hist_json h =
    Json.Obj
      [ ("bounds", Json.List (Array.to_list (Array.map (fun b -> Json.Float b) h.h_bounds)));
        ("counts", Json.List (Array.to_list (Array.map (fun c -> Json.Int c) h.h_counts)));
        ("overflow", Json.Int h.h_overflow);
        ("count", Json.Int h.h_count);
        ("mean", Json.Float h.h_mean);
        ("m2", Json.Float h.h_m2);
        ("min", Json.Float h.h_min);
        ("max", Json.Float h.h_max) ]

  let agg_json (name, count, total_ns, minor_w, promoted_w, major_w) =
    ( name,
      Json.Obj
        [ ("count", Json.Int count);
          ("total_ns", Json.Int (Int64.to_int total_ns));
          ("minor_w", Json.Int minor_w);
          ("promoted_w", Json.Int promoted_w);
          ("major_w", Json.Int major_w) ] )

  let process_json p =
    Json.Obj
      [ ("minor_collections", Json.Int p.p_minor_collections);
        ("major_collections", Json.Int p.p_major_collections);
        ("compactions", Json.Int p.p_compactions);
        ("minor_words", Json.Float p.p_minor_words);
        ("promoted_words", Json.Float p.p_promoted_words);
        ("major_words", Json.Float p.p_major_words);
        ("heap_words", Json.Int p.p_heap_words);
        ("top_heap_words", Json.Int p.p_top_heap_words) ]

  (* Every field except the content hash itself; the hash is computed over
     this serialization, so any bit of state change changes the hash. *)
  let body t =
    [ ("schema", Json.String schema);
      ( "run",
        Json.Obj
          [ ("id", Json.String t.run_id);
            ("shard", Json.String t.shard);
            ("trace_id", Json.String t.trace_id);
            ("span_id", Json.String t.span_id);
            ("parent_span_id", Json.String t.parent_span_id);
            ("argv", Json.List (List.map (fun a -> Json.String a) t.argv));
            ("started_unix", Json.Float t.started_unix);
            ("wall_seconds", Json.Float t.wall_seconds);
            ("jobs", Json.Int t.jobs) ] );
      ("counters", Json.Obj (List.map (fun (n, v) -> (n, Json.Int v)) t.counters));
      ("gauges", Json.Obj (List.map (fun (n, v) -> (n, Json.Float v)) t.gauges));
      ("histograms", Json.Obj (List.map (fun (n, h) -> (n, hist_json h)) t.histograms));
      ("spans", Json.Obj (List.map agg_json t.spans));
      ("paths", Json.Obj (List.map agg_json t.paths));
      ("process", process_json t.process) ]

  let content_hash t =
    Content_hash.of_components [ schema; Json.to_string (Json.Obj (body t)) ]

  let to_json t =
    Json.Obj (body t @ [ ("content_hash", Json.String (content_hash t)) ])

  let of_json doc =
    let fail fmt = Printf.ksprintf (fun m -> failwith ("Obs.Snapshot.of_json: " ^ m)) fmt in
    (match Json.member "schema" doc with
    | Some (Json.String s) when s = schema || s = schema_v2 || s = schema_v1 -> ()
    | Some (Json.String s) -> fail "schema %s (want %s)" s schema
    | _ -> fail "missing schema");
    let section name =
      match Json.member name doc with
      | Some (Json.Obj kvs) -> kvs
      | _ -> fail "missing %s section" name
    in
    let str name j =
      match Json.member name j with
      | Some (Json.String s) -> s
      | _ -> fail "missing string %s" name
    in
    let int_ name j =
      match Json.member name j with
      | Some (Json.Int i) -> i
      | _ -> fail "missing integer %s" name
    in
    let float_ name j =
      match Json.member name j with
      | Some v -> ( try Json.to_float v with Failure _ -> fail "non-numeric %s" name)
      | None -> fail "missing number %s" name
    in
    let run = Json.Obj (section "run") in
    let hist_of j =
      let arr name f =
        match Json.member name j with
        | Some (Json.List xs) -> Array.of_list (List.map f xs)
        | _ -> fail "missing array %s" name
      in
      { h_bounds = arr "bounds" Json.to_float;
        h_counts = arr "counts" (function Json.Int i -> i | _ -> fail "non-integer bucket count");
        h_overflow = int_ "overflow" j;
        h_count = int_ "count" j;
        h_mean = float_ "mean" j;
        h_m2 = float_ "m2" j;
        h_min = float_ "min" j;
        h_max = float_ "max" j }
    in
    (* Alloc fields are absent in v1 documents; default to zero.  Trace
       context fields are absent in v1/v2; default to "". *)
    let opt_int name j =
      match Json.member name j with Some (Json.Int i) -> i | _ -> 0
    in
    let opt_str name j =
      match Json.member name j with Some (Json.String s) -> s | _ -> ""
    in
    let agg_of (name, j) =
      ( name,
        int_ "count" j,
        Int64.of_int (int_ "total_ns" j),
        opt_int "minor_w" j,
        opt_int "promoted_w" j,
        opt_int "major_w" j )
    in
    let p = Json.Obj (section "process") in
    { run_id = str "id" run;
      shard = str "shard" run;
      trace_id = opt_str "trace_id" run;
      span_id = opt_str "span_id" run;
      parent_span_id = opt_str "parent_span_id" run;
      argv =
        (match Json.member "argv" run with
        | Some (Json.List xs) ->
            List.map (function Json.String s -> s | _ -> fail "non-string argv entry") xs
        | _ -> fail "missing argv");
      started_unix = float_ "started_unix" run;
      wall_seconds = float_ "wall_seconds" run;
      jobs = int_ "jobs" run;
      counters =
        List.sort compare
          (List.map
             (fun (n, v) -> match v with Json.Int i -> (n, i) | _ -> fail "non-integer counter %s" n)
             (section "counters"));
      gauges =
        List.sort compare
          (List.map
             (fun (n, v) -> (n, (try Json.to_float v with Failure _ -> fail "non-numeric gauge %s" n)))
             (section "gauges"));
      histograms = List.sort compare (List.map (fun (n, v) -> (n, hist_of v)) (section "histograms"));
      spans = List.sort compare (List.map agg_of (section "spans"));
      paths = List.sort compare (List.map agg_of (section "paths"));
      process =
        { p_minor_collections = int_ "minor_collections" p;
          p_major_collections = int_ "major_collections" p;
          p_compactions = int_ "compactions" p;
          p_minor_words = float_ "minor_words" p;
          p_promoted_words = float_ "promoted_words" p;
          p_major_words = float_ "major_words" p;
          p_heap_words = int_ "heap_words" p;
          p_top_heap_words = int_ "top_heap_words" p } }

  (* Atomic write: temp file in the destination directory, then rename — a
     concurrent reader (or a kill mid-write) never sees a torn snapshot. *)
  let write ~path t =
    let tmp = Printf.sprintf "%s.tmp.%d" path (Unix.getpid ()) in
    let oc = open_out tmp in
    (try
       output_string oc (Json.to_string (to_json t));
       output_char oc '\n';
       close_out oc
     with e ->
       close_out_noerr oc;
       (try Sys.remove tmp with Sys_error _ -> ());
       raise e);
    Sys.rename tmp path

  let load path =
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> of_json (Json.parse (really_input_string ic (in_channel_length ic))))
end

(* ----------------------------------------------------------------- merge *)

(* Order-insensitive union of snapshots into one fleet view.  The merged
   document embeds its full source snapshots and recomputes every aggregate
   by folding over them in a canonical order (run-id, then content hash,
   duplicates removed) — so merging A∪B and B∪A, or (A∪B)∪C and A∪(B∪C),
   produces byte-identical output even though float addition itself is not
   associative.  Histograms bucket-merge and combine their Welford states
   with Chan's parallel update; gauges cannot be meaningfully summed across
   processes, so they carry per-source values plus min/max/sum. *)

module Merge = struct
  let schema = "hetarch.fleet/3"

  (* One version back still flattens: v2 (no trace context) and v1 fleet
     documents (sources are v1 snapshots) both load. *)
  let schema_v2 = "hetarch.fleet/2"
  let schema_v1 = "hetarch.fleet/1"

  type t = { keyed : (string * Snapshot.t) list }  (* (content_hash, snapshot) *)

  let canonicalize keyed =
    let seen = Hashtbl.create 8 in
    List.filter
      (fun (h, _) ->
        if Hashtbl.mem seen h then false
        else begin
          Hashtbl.add seen h ();
          true
        end)
      keyed
    |> List.sort (fun (ha, a) (hb, b) ->
           match compare a.Snapshot.run_id b.Snapshot.run_id with
           | 0 -> compare ha hb
           | c -> c)

  let of_snapshots snaps =
    { keyed = canonicalize (List.map (fun s -> (Snapshot.content_hash s, s)) snaps) }

  let union a b = { keyed = canonicalize (a.keyed @ b.keyed) }
  let sources t = List.map snd t.keyed

  let names proj ss = List.sort_uniq compare (List.concat_map proj ss)

  let merged_counters ss =
    List.map
      (fun k ->
        ( k,
          List.fold_left
            (fun acc (s : Snapshot.t) ->
              acc + Option.value ~default:0 (List.assoc_opt k s.counters))
            0 ss ))
      (names (fun (s : Snapshot.t) -> List.map fst s.counters) ss)

  let merged_gauges ss =
    List.map
      (fun k ->
        let per_source =
          List.filter_map
            (fun (s : Snapshot.t) ->
              Option.map (fun v -> (s.run_id, s.shard, v)) (List.assoc_opt k s.gauges))
            ss
        in
        let sum = List.fold_left (fun acc (_, _, v) -> acc +. v) 0. per_source in
        let mn = List.fold_left (fun acc (_, _, v) -> Float.min acc v) infinity per_source in
        let mx = List.fold_left (fun acc (_, _, v) -> Float.max acc v) neg_infinity per_source in
        ( k,
          Json.Obj
            [ ("n", Json.Int (List.length per_source));
              ("sum", Json.Float sum);
              ("min", Json.Float mn);
              ("max", Json.Float mx);
              ( "by_source",
                Json.List
                  (List.map
                     (fun (run, shard, v) ->
                       Json.Obj
                         [ ("run", Json.String run);
                           ("shard", Json.String shard);
                           ("value", Json.Float v) ])
                     per_source) ) ] ))
      (names (fun (s : Snapshot.t) -> List.map fst s.gauges) ss)

  let merge_hist name (a : Snapshot.hist) (b : Snapshot.hist) =
    if a.h_bounds <> b.h_bounds then
      failwith
        (Printf.sprintf "Obs.Merge: histogram %s bucket bounds differ across snapshots" name);
    let n = a.h_count + b.h_count in
    let mean, m2 =
      if a.h_count = 0 then (b.h_mean, b.h_m2)
      else if b.h_count = 0 then (a.h_mean, a.h_m2)
      else begin
        (* Chan's pairwise Welford merge: exact combination of two
           (n, mean, m2) accumulators without revisiting samples. *)
        let fa = float_of_int a.h_count
        and fb = float_of_int b.h_count
        and fn = float_of_int n in
        let delta = b.h_mean -. a.h_mean in
        ( a.h_mean +. (delta *. fb /. fn),
          a.h_m2 +. b.h_m2 +. (delta *. delta *. fa *. fb /. fn) )
      end
    in
    { Snapshot.h_bounds = a.h_bounds;
      h_counts = Array.mapi (fun i c -> c + b.h_counts.(i)) a.h_counts;
      h_overflow = a.h_overflow + b.h_overflow;
      h_count = n;
      h_mean = mean;
      h_m2 = m2;
      h_min = Float.min a.h_min b.h_min;
      h_max = Float.max a.h_max b.h_max }

  let merged_histograms ss =
    List.map
      (fun k ->
        let hs =
          List.filter_map (fun (s : Snapshot.t) -> List.assoc_opt k s.histograms) ss
        in
        match hs with
        | [] -> assert false
        | first :: rest -> (k, List.fold_left (merge_hist k) first rest))
      (names (fun (s : Snapshot.t) -> List.map fst s.histograms) ss)

  (* Spans and paths share the (name, count, total_ns, minor_w, promoted_w,
     major_w) aggregate shape; merging path aggregates is exactly grafting
     profile tries by path, and the alloc fields fold under the same
     commutative/associative/idempotent laws as count and total_ns. *)
  let merged_aggs proj ss =
    List.map
      (fun k ->
        let c, tns, mw, pw, jw =
          List.fold_left
            (fun (c, tns, mw, pw, jw) s ->
              match List.find_opt (fun (n, _, _, _, _, _) -> n = k) (proj s) with
              | Some (_, c', t', mw', pw', jw') ->
                  (c + c', Int64.add tns t', mw + mw', pw + pw', jw + jw')
              | None -> (c, tns, mw, pw, jw))
            (0, 0L, 0, 0, 0) ss
        in
        (k, c, tns, mw, pw, jw))
      (names (fun s -> List.map (fun (n, _, _, _, _, _) -> n) (proj s)) ss)

  let merged_process ss =
    let sum f = List.fold_left (fun acc s -> acc + f s) 0 ss in
    let sumf f = List.fold_left (fun acc s -> acc +. f s) 0. ss in
    { Snapshot.p_minor_collections = sum (fun (s : Snapshot.t) -> s.process.p_minor_collections);
      p_major_collections = sum (fun (s : Snapshot.t) -> s.process.p_major_collections);
      p_compactions = sum (fun (s : Snapshot.t) -> s.process.p_compactions);
      p_minor_words = sumf (fun (s : Snapshot.t) -> s.process.p_minor_words);
      p_promoted_words = sumf (fun (s : Snapshot.t) -> s.process.p_promoted_words);
      p_major_words = sumf (fun (s : Snapshot.t) -> s.process.p_major_words);
      p_heap_words = sum (fun (s : Snapshot.t) -> s.process.p_heap_words);
      p_top_heap_words =
        List.fold_left (fun acc (s : Snapshot.t) -> max acc s.process.p_top_heap_words) 0 ss }

  let to_json t =
    let ss = sources t in
    let runs = List.length ss in
    let window =
      if runs = 0 then Json.Obj []
      else begin
        let started =
          List.fold_left (fun acc (s : Snapshot.t) -> Float.min acc s.started_unix) infinity ss
        in
        let ended =
          List.fold_left
            (fun acc (s : Snapshot.t) -> Float.max acc (s.started_unix +. s.wall_seconds))
            neg_infinity ss
        in
        Json.Obj
          [ ("started_unix", Json.Float started);
            ("ended_unix", Json.Float ended);
            ("wall_span_seconds", Json.Float (ended -. started));
            ( "total_wall_seconds",
              Json.Float
                (List.fold_left (fun acc (s : Snapshot.t) -> acc +. s.wall_seconds) 0. ss) ) ]
      end
    in
    let attribution =
      Json.List
        (List.map
           (fun (h, (s : Snapshot.t)) ->
             Json.Obj
               [ ("run", Json.String s.run_id);
                 ("shard", Json.String s.shard);
                 ("trace_id", Json.String s.trace_id);
                 ("content_hash", Json.String h);
                 ("started_unix", Json.Float s.started_unix);
                 ("wall_seconds", Json.Float s.wall_seconds);
                 ("jobs", Json.Int s.jobs) ])
           t.keyed)
    in
    let body =
      [ ("schema", Json.String schema);
        ("runs", Json.Int runs);
        ("window", window);
        ("attribution", attribution);
        ("counters", Json.Obj (List.map (fun (n, v) -> (n, Json.Int v)) (merged_counters ss)));
        ("gauges", Json.Obj (merged_gauges ss));
        ( "histograms",
          Json.Obj
            (List.map (fun (n, h) -> (n, Snapshot.hist_json h)) (merged_histograms ss)) );
        ( "spans",
          Json.Obj
            (List.map Snapshot.agg_json (merged_aggs (fun (s : Snapshot.t) -> s.spans) ss)) );
        ( "paths",
          Json.Obj
            (List.map Snapshot.agg_json (merged_aggs (fun (s : Snapshot.t) -> s.paths) ss)) );
        ("process", Snapshot.process_json (merged_process ss));
        ("sources", Json.List (List.map Snapshot.to_json ss)) ]
    in
    Json.Obj
      (body
      @ [ ( "content_hash",
            Json.String (Content_hash.of_components [ schema; Json.to_string (Json.Obj body) ]) )
        ])

  (* Accepts a single snapshot or a fleet document; a fleet input is
     flattened back to its sources, so merging merged documents is exact. *)
  let of_json doc =
    match Json.member "schema" doc with
    | Some (Json.String s) when s = schema || s = schema_v2 || s = schema_v1 -> (
        match Json.member "sources" doc with
        | Some (Json.List ss) -> of_snapshots (List.map Snapshot.of_json ss)
        | _ -> failwith "Obs.Merge.of_json: fleet document without sources")
    | Some (Json.String s)
      when s = Snapshot.schema || s = Snapshot.schema_v2 || s = Snapshot.schema_v1 ->
        of_snapshots [ Snapshot.of_json doc ]
    | _ ->
        failwith
          (Printf.sprintf "Obs.Merge.of_json: unrecognized schema (want %s or %s)"
             Snapshot.schema schema)
end

(* -------------------------------------------------------------- registry *)

(* Append-only run registry: HETARCH_OBS_DIR (or an explicit [set_dir])
   names a directory holding one snapshot file per run plus an index.jsonl
   with one line per recorded run.  Appends are single flushed lines, so
   concurrent shard processes interleave whole records; replay skips a torn
   tail exactly like the collect ledger does. *)

module Registry = struct
  type entry = {
    e_run_id : string;
    e_shard : string;
    e_trace : string;  (* trace_id; "" for entries recorded before v3 *)
    e_cmd : string;  (* leading non-flag argv words, e.g. "collect uec" *)
    e_file : string;  (* snapshot file name, relative to <dir>/snapshots *)
    e_hash : string;  (* snapshot content hash *)
    e_unix : float;  (* run start, unix seconds *)
  }

  let override : string option ref = ref None
  let set_dir d = override := d

  let dir () =
    match !override with Some _ as d -> d | None -> Sys.getenv_opt "HETARCH_OBS_DIR"

  let resolve = function Some d -> Some d | None -> dir ()

  let rec mkdir_p path =
    if path = "" || path = "." || path = "/" || Sys.file_exists path then ()
    else begin
      mkdir_p (Filename.dirname path);
      try Unix.mkdir path 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
    end

  let snapshots_dir d = Filename.concat d "snapshots"
  let index_path d = Filename.concat d "index.jsonl"

  let cmd_of_argv = function
    | [] -> "?"
    | exe :: rest -> (
        let rec leading acc = function
          | a :: tl when a <> "" && a.[0] <> '-' -> leading (a :: acc) tl
          | _ -> List.rev acc
        in
        match leading [] rest with
        | [] -> Filename.basename exe
        | words -> String.concat " " words)

  let entry_to_json e =
    Json.Obj
      [ ("run_id", Json.String e.e_run_id);
        ("shard", Json.String e.e_shard);
        ("trace_id", Json.String e.e_trace);
        ("cmd", Json.String e.e_cmd);
        ("file", Json.String e.e_file);
        ("hash", Json.String e.e_hash);
        ("unix", Json.Float e.e_unix) ]

  let entry_of_json j =
    let str k = match Json.member k j with Some (Json.String s) -> Some s | _ -> None in
    let num k =
      match Json.member k j with
      | Some v -> ( try Some (Json.to_float v) with Failure _ -> None)
      | None -> None
    in
    match (str "run_id", str "shard", str "cmd", str "file", str "hash", num "unix") with
    | Some e_run_id, Some e_shard, Some e_cmd, Some e_file, Some e_hash, Some e_unix ->
        (* trace_id is absent from pre-v3 index lines; default "". *)
        let e_trace = Option.value ~default:"" (str "trace_id") in
        Some { e_run_id; e_shard; e_trace; e_cmd; e_file; e_hash; e_unix }
    | _ -> None

  let record ?dir snap =
    match resolve dir with
    | None -> None
    | Some d ->
        mkdir_p (snapshots_dir d);
        let file = snap.Snapshot.run_id ^ ".json" in
        Snapshot.write ~path:(Filename.concat (snapshots_dir d) file) snap;
        let e =
          { e_run_id = snap.Snapshot.run_id;
            e_shard = snap.Snapshot.shard;
            e_trace = snap.Snapshot.trace_id;
            e_cmd = cmd_of_argv snap.Snapshot.argv;
            e_file = file;
            e_hash = Snapshot.content_hash snap;
            e_unix = snap.Snapshot.started_unix }
        in
        let oc = open_out_gen [ Open_append; Open_creat ] 0o644 (index_path d) in
        Fun.protect
          ~finally:(fun () -> close_out oc)
          (fun () ->
            output_string oc (Json.to_string (entry_to_json e));
            output_char oc '\n');
        Some e

  (* Index order = append order; blank and unparsable lines (torn tail of a
     killed process) are skipped, mirroring Collect.Ledger.fold. *)
  let entries ?dir () =
    match resolve dir with
    | None -> []
    | Some d ->
        let path = index_path d in
        if not (Sys.file_exists path) then []
        else
          In_channel.with_open_text path (fun ic ->
              let rec go acc =
                match In_channel.input_line ic with
                | None -> List.rev acc
                | Some line ->
                    let acc =
                      if String.trim line = "" then acc
                      else
                        match
                          (try entry_of_json (Json.parse line) with Failure _ -> None)
                        with
                        | Some e -> e :: acc
                        | None -> acc
                    in
                    go acc
              in
              go [])

  let load ?dir e =
    match resolve dir with
    | None -> failwith "Obs.Registry.load: no registry directory (set HETARCH_OBS_DIR)"
    | Some d -> Snapshot.load (Filename.concat (snapshots_dir d) e.e_file)

  (* Latest entry whose run id starts with [prefix]; ambiguous prefixes
     (matching several distinct run ids) raise rather than guessing. *)
  let find ?dir prefix =
    let matches =
      List.filter
        (fun e ->
          String.length e.e_run_id >= String.length prefix
          && String.sub e.e_run_id 0 (String.length prefix) = prefix)
        (entries ?dir ())
    in
    let ids = List.sort_uniq compare (List.map (fun e -> e.e_run_id) matches) in
    match (ids, List.rev matches) with
    | [], _ | _, [] -> None
    | [ _ ], latest :: _ -> Some latest
    | _ :: _ :: _, _ ->
        failwith
          (Printf.sprintf "Obs.Registry.find: run id prefix %s is ambiguous (%s)" prefix
             (String.concat ", " ids))

  (* Live telemetry streams live next to the snapshots: one
     <run_id>.jsonl per process under <dir>/telemetry.  The monitor scans
     this directory; a run whose id has reached index.jsonl is finished. *)
  let telemetry_dir d = Filename.concat d "telemetry"

  let telemetry_sink ?dir run_id =
    match resolve dir with
    | None -> None
    | Some d ->
        let td = telemetry_dir d in
        mkdir_p td;
        Some (Filename.concat td (run_id ^ ".jsonl"))

  let snapshot_exists ?dir e =
    match resolve dir with
    | None -> false
    | Some d -> Sys.file_exists (Filename.concat (snapshots_dir d) e.e_file)

  (* Compact the index down to entries whose snapshot file still exists
     (hand-deleted snapshots leave dangling lines behind).  The rewrite is
     atomic — temp file then rename — so a concurrent reader never sees a
     half-written index.  Returns (kept, dropped). *)
  let prune ?dir () =
    match resolve dir with
    | None -> (0, 0)
    | Some d ->
        let all = entries ~dir:d () in
        let kept, dropped =
          List.partition (fun e -> snapshot_exists ~dir:d e) all
        in
        if dropped <> [] then begin
          let path = index_path d in
          let tmp = Printf.sprintf "%s.tmp.%d" path (Unix.getpid ()) in
          let oc = open_out tmp in
          (try
             List.iter
               (fun e ->
                 output_string oc (Json.to_string (entry_to_json e));
                 output_char oc '\n')
               kept;
             close_out oc
           with e ->
             close_out_noerr oc;
             (try Sys.remove tmp with Sys_error _ -> ());
             raise e);
          Sys.rename tmp path
        end;
        (List.length kept, List.length dropped)
end

(* ----------------------------------------------------------------- trend *)

(* Registry-backed regression watchdog: instead of one committed baseline,
   judge the current run against the median of the last K runs with a
   median-absolute-deviation noise band.  The MAD is a robust spread
   estimate — one historic outlier cannot widen or shift the gate the way
   it would a mean/stddev band — and 1.4826·MAD estimates sigma for
   normally-distributed noise.  A floor of min_pct% of the median keeps
   near-deterministic metrics (MAD ≈ 0) from flagging on harmless jitter,
   and nothing is flagged with fewer than two history points. *)

module Trend = struct
  type verdict = {
    v_metric : string;
    v_current : float;
    v_median : float;
    v_mad : float;
    v_limit : float;  (* regression boundary; infinity with thin history *)
    v_samples : int;  (* history points that carried this metric *)
    v_regression : bool;
  }

  let default_nmad = 5.
  let default_min_pct = 10.

  let median = function
    | [] -> 0.
    | xs ->
        let arr = Array.of_list xs in
        Array.sort compare arr;
        let n = Array.length arr in
        if n mod 2 = 1 then arr.(n / 2) else (arr.((n / 2) - 1) +. arr.(n / 2)) /. 2.

  let judge ?(nmad = default_nmad) ?(min_pct = default_min_pct) ?(noise_floor_ns = 0.)
      ~history current =
    List.map
      (fun (metric, cur) ->
        let vals = List.filter_map (List.assoc_opt metric) history in
        let samples = List.length vals in
        if samples < 2 then
          { v_metric = metric;
            v_current = cur;
            v_median = (match vals with [ v ] -> v | _ -> cur);
            v_mad = 0.;
            v_limit = infinity;
            v_samples = samples;
            v_regression = false }
        else begin
          let med = median vals in
          let mad = median (List.map (fun v -> Float.abs (v -. med)) vals) in
          let limit = med +. Float.max (nmad *. 1.4826 *. mad) (min_pct /. 100. *. med) in
          { v_metric = metric;
            v_current = cur;
            v_median = med;
            v_mad = mad;
            v_limit = limit;
            v_samples = samples;
            v_regression = cur > limit && Float.max cur med >= noise_floor_ns }
        end)
      current
    |> List.sort (fun a b -> compare a.v_metric b.v_metric)
end

(* --------------------------------------------------------- fleet monitor *)

(* Live fleet view over the registry's telemetry directory: one row per
   <run_id>.jsonl stream, summarizing the stream's last record.  Reads are
   torn-tail-tolerant (a stream being appended to mid-record simply yields
   its previous record), and classification needs no cooperation from the
   writer beyond the v4 telemetry fields: a stream is Done when its last
   record carries ("final", true) or its run has reached index.jsonl,
   Stalled when the file has not been touched for stall_factor × the
   stream's own declared throttle interval, and Live otherwise. *)

module Monitor = struct
  type status = Live | Stalled | Done

  type row = {
    m_file : string;  (* telemetry stream path *)
    m_run_id : string;
    m_shard : string;
    m_trace_id : string;
    m_parent_span_id : string;
    m_seq : int;
    m_elapsed_s : float;
    m_interval_s : float;  (* writer's declared throttle interval *)
    m_age_s : float;  (* now - file mtime *)
    m_final : bool;
    m_registered : bool;  (* run id present in index.jsonl *)
    m_shots : int;
    m_rate : float;  (* campaign shots/s; 0 when no campaign section *)
    m_rel_halfwidth : float;  (* worst unfinished task; nan when none *)
    m_eta_s : float option;
    m_tasks_done : int;
    m_tasks : int;
    m_alloc_w_per_s : float;  (* minor words/s over the last tick *)
    m_queue_depth : int;
    m_busy_domains : int;
    m_status : status;
  }

  let default_stall_factor = 5.

  (* Sub-second throttle intervals would make any scheduling hiccup read as
     a stall; clamp the staleness window to at least one second. *)
  let stall_threshold ~stall_factor ~interval_s =
    stall_factor *. Float.max interval_s 1.0

  let status_string = function
    | Live -> "live"
    | Stalled -> "stalled"
    | Done -> "done"

  let mem_float name j ~default =
    match Json.member name j with
    | Some v -> ( try Json.to_float v with Failure _ -> default)
    | None -> default

  let mem_int name j ~default =
    match Json.member name j with Some (Json.Int i) -> i | _ -> default

  let mem_str name j ~default =
    match Json.member name j with Some (Json.String s) -> s | _ -> default

  let row_of_stream ~registered ~stall_factor ~now_unix path last =
    let run = Option.value ~default:(Json.Obj []) (Json.member "run" last) in
    let gc = Option.value ~default:(Json.Obj []) (Json.member "gc" last) in
    let par = Option.value ~default:(Json.Obj []) (Json.member "parallel" last) in
    let interval_s = mem_float "interval_s" last ~default:1.0 in
    let dt_s = mem_float "dt_s" last ~default:0.0 in
    let final = match Json.member "final" last with Some (Json.Bool b) -> b | _ -> false in
    let age_s = Float.max 0. (now_unix -. (Unix.stat path).Unix.st_mtime) in
    let shots, rate, eta_s, tasks_done, tasks, worst =
      match Json.member "campaign" last with
      | None -> (0, 0., None, 0, 0, nan)
      | Some c ->
          let eta =
            match Json.member "eta_s" c with
            | Some Json.Null | None -> None
            | Some v -> ( try Some (Json.to_float v) with Failure _ -> None)
          in
          (* Worst (largest) relative half-width over unfinished tasks —
             the fleet's convergence laggard.  Folded through options so a
             nan never poisons the comparison. *)
          let worst =
            match Json.member "task_progress" c with
            | Some (Json.List ts) ->
                List.fold_left
                  (fun acc t ->
                    let done_ =
                      match Json.member "done" t with Some (Json.Bool b) -> b | _ -> false
                    in
                    let hw =
                      match Json.member "rel_halfwidth" t with
                      | Some (Json.Float f) -> Some f
                      | Some (Json.Int i) -> Some (float_of_int i)
                      | _ -> None
                    in
                    match (done_, hw, acc) with
                    | true, _, _ | _, None, _ -> acc
                    | false, Some h, None -> Some h
                    | false, Some h, Some a -> Some (Float.max h a))
                  None ts
                |> Option.value ~default:nan
            | _ -> nan
          in
          ( mem_int "shots" c ~default:0,
            mem_float "shots_per_s" c ~default:0.,
            eta,
            mem_int "tasks_done" c ~default:0,
            mem_int "tasks" c ~default:0,
            worst )
    in
    let minor_delta = mem_int "minor_words_delta" gc ~default:0 in
    let status =
      if final || registered then Done
      else if age_s > stall_threshold ~stall_factor ~interval_s then Stalled
      else Live
    in
    { m_file = path;
      m_run_id = mem_str "id" run ~default:"?";
      m_shard = mem_str "shard" run ~default:"";
      m_trace_id = mem_str "trace_id" run ~default:"";
      m_parent_span_id = mem_str "parent_span_id" run ~default:"";
      m_seq = mem_int "seq" last ~default:0;
      m_elapsed_s = mem_float "elapsed_s" last ~default:0.;
      m_interval_s = interval_s;
      m_age_s = age_s;
      m_final = final;
      m_registered = registered;
      m_shots = shots;
      m_rate = rate;
      m_rel_halfwidth = worst;
      m_eta_s = eta_s;
      m_tasks_done = tasks_done;
      m_tasks = tasks;
      m_alloc_w_per_s = (if dt_s > 0. then float_of_int minor_delta /. dt_s else 0.);
      m_queue_depth = mem_int "queue_depth" par ~default:0;
      m_busy_domains = mem_int "busy_domains" par ~default:0;
      m_status = status }

  (* One row per stream under <dir>/telemetry, sorted (shard, run_id) so
     coordinator/shard families group together.  Streams with no complete
     record yet are skipped — they will appear on the next scan. *)
  let scan ?(stall_factor = default_stall_factor) ?now_unix ~dir () =
    let now_unix = match now_unix with Some t -> t | None -> Unix.gettimeofday () in
    let td = Registry.telemetry_dir dir in
    if not (Sys.file_exists td && Sys.is_directory td) then []
    else begin
      let registered =
        List.fold_left
          (fun acc (e : Registry.entry) -> e.Registry.e_run_id :: acc)
          [] (Registry.entries ~dir ())
      in
      Sys.readdir td |> Array.to_list |> List.sort compare
      |> List.filter_map (fun f ->
             if not (Filename.check_suffix f ".jsonl") then None
             else begin
               let path = Filename.concat td f in
               let last =
                 match fold_jsonl path (fun _ j -> Some j) None with
                 | last -> last
                 | exception Sys_error _ -> None
               in
               Option.map
                 (fun last ->
                   let run_id = Filename.chop_suffix f ".jsonl" in
                   row_of_stream
                     ~registered:(List.mem run_id registered)
                     ~stall_factor ~now_unix path last)
                 last
             end)
      |> List.sort (fun a b ->
             match compare a.m_shard b.m_shard with
             | 0 -> compare a.m_run_id b.m_run_id
             | c -> c)
    end

  let row_json r =
    Json.Obj
      [ ("schema", Json.String "hetarch.monitor/1");
        ("run", Json.String r.m_run_id);
        ("shard", Json.String r.m_shard);
        ("trace_id", Json.String r.m_trace_id);
        ("parent_span_id", Json.String r.m_parent_span_id);
        ("status", Json.String (status_string r.m_status));
        ("stalled", Json.Bool (r.m_status = Stalled));
        ("final", Json.Bool r.m_final);
        ("registered", Json.Bool r.m_registered);
        ("seq", Json.Int r.m_seq);
        ("elapsed_s", Json.Float r.m_elapsed_s);
        ("age_s", Json.Float r.m_age_s);
        ("interval_s", Json.Float r.m_interval_s);
        ("shots", Json.Int r.m_shots);
        ("shots_per_s", Json.Float r.m_rate);
        ("rel_halfwidth",
         if Float.is_nan r.m_rel_halfwidth then Json.Null
         else Json.Float r.m_rel_halfwidth);
        ("eta_s", match r.m_eta_s with Some e -> Json.Float e | None -> Json.Null);
        ("tasks_done", Json.Int r.m_tasks_done);
        ("tasks", Json.Int r.m_tasks);
        ("minor_words_per_s", Json.Float r.m_alloc_w_per_s);
        ("queue_depth", Json.Int r.m_queue_depth);
        ("busy_domains", Json.Int r.m_busy_domains);
        ("file", Json.String r.m_file) ]
end

(* ----------------------------------------------------------- trace merge *)

(* Cross-process union of Chrome-trace JSONL files into one timeline.
   Each input's ph:"M" "hetarch.run" metadata event carries ts0_unix — the
   wall-clock instant of that process's monotonic zero — so per-process
   clocks align by shifting every event onto the earliest process's axis:
   shifted_ts = ts + (ts0_unix - min ts0_unix) × 1e6 µs.  The minimum is
   order-independent, sources are deduplicated by content hash and sorted
   canonically (run id, then hash), and each source gets pid = its
   canonical index + 1 — so the merged bytes are identical for any input
   ordering and merging a merge's inputs again changes nothing. *)

module Trace_merge = struct
  type source = {
    s_run_id : string;
    s_shard : string;
    s_trace_id : string;
    s_span_id : string;
    s_parent_span_id : string;
    s_ts0_unix : float;
    s_meta_args : (string * Json.t) list;
    s_events : Json.t list;  (* non-metadata events, file order *)
    s_hash : string;  (* content hash of the raw input text *)
  }

  type stats = {
    sources : int;
    events : int;
    orphans : string list;  (* parent span ids with no source in the merge *)
  }

  let mem_str name j ~default =
    match Json.member name j with Some (Json.String s) -> s | _ -> default

  let parse_source text =
    let lines = String.split_on_char '\n' text in
    let meta, events =
      List.fold_left
        (fun (meta, events) line ->
          if String.trim line = "" then (meta, events)
          else
            match Json.parse line with
            | exception Failure _ -> (meta, events)  (* torn tail *)
            | j ->
                let is_meta =
                  mem_str "ph" j ~default:"" = "M"
                  && mem_str "name" j ~default:"" = "hetarch.run"
                in
                if is_meta && meta = None then (Some j, events)
                else (meta, j :: events))
        (None, []) lines
    in
    match meta with
    | None -> failwith "Obs.Trace_merge: input has no hetarch.run metadata event"
    | Some m ->
        let args = Option.value ~default:(Json.Obj []) (Json.member "args" m) in
        let meta_kvs = match args with Json.Obj kvs -> kvs | _ -> [] in
        { s_run_id = mem_str "id" args ~default:"?";
          s_shard = mem_str "shard" args ~default:"";
          s_trace_id = mem_str "trace_id" args ~default:"";
          s_span_id = mem_str "span_id" args ~default:"";
          s_parent_span_id = mem_str "parent_span_id" args ~default:"";
          s_ts0_unix =
            (match Json.member "ts0_unix" args with
            | Some v -> ( try Json.to_float v with Failure _ -> 0.)
            | None -> 0.);
          s_meta_args = meta_kvs;
          s_events = List.rev events;
          s_hash = Content_hash.hash_hex text }

  let set_field key value kvs =
    if List.mem_assoc key kvs then
      List.map (fun (k, v) -> if k = key then (k, value) else (k, v)) kvs
    else kvs @ [ (key, value) ]

  let merge texts =
    let srcs = List.map parse_source texts in
    (* Canonical source order, duplicates (by raw content) removed. *)
    let seen = Hashtbl.create 8 in
    let srcs =
      List.filter
        (fun s ->
          if Hashtbl.mem seen s.s_hash then false
          else begin
            Hashtbl.add seen s.s_hash ();
            true
          end)
        srcs
      |> List.sort (fun a b ->
             match compare a.s_run_id b.s_run_id with
             | 0 -> compare a.s_hash b.s_hash
             | c -> c)
    in
    let zero =
      List.fold_left (fun acc s -> Float.min acc s.s_ts0_unix) infinity srcs
    in
    let span_ids = List.map (fun s -> s.s_span_id) srcs in
    let orphans =
      List.filter_map
        (fun s ->
          if s.s_parent_span_id <> "" && not (List.mem s.s_parent_span_id span_ids)
          then Some s.s_parent_span_id
          else None)
        srcs
      |> List.sort_uniq compare
    in
    let nevents = List.fold_left (fun acc s -> acc + List.length s.s_events) 0 srcs in
    let buf = Buffer.create 65536 in
    let emit j =
      Buffer.add_string buf (Json.to_string j);
      Buffer.add_char buf '\n'
    in
    emit
      (Json.Obj
         [ ("name", Json.String "hetarch.trace_merge");
           ("ph", Json.String "M");
           ("pid", Json.Int 0);
           ("tid", Json.Int 0);
           ( "args",
             Json.Obj
               [ ("schema", Json.String "hetarch.tracemerge/1");
                 ("sources", Json.Int (List.length srcs));
                 ("ts0_unix", Json.Float (if srcs = [] then 0. else zero)) ] ) ]);
    List.iteri
      (fun i s ->
        let pid = i + 1 in
        let offset_us = (s.s_ts0_unix -. zero) *. 1e6 in
        emit
          (Json.Obj
             [ ("name", Json.String "hetarch.run");
               ("ph", Json.String "M");
               ("pid", Json.Int pid);
               ("tid", Json.Int 0);
               ( "args",
                 Json.Obj
                   (s.s_meta_args @ [ ("clock_offset_us", Json.Float offset_us) ]) ) ]);
        List.iter
          (fun ev ->
            match ev with
            | Json.Obj kvs ->
                let kvs = set_field "pid" (Json.Int pid) kvs in
                let kvs =
                  match Json.member "ts" ev with
                  | Some v -> (
                      match Json.to_float v with
                      | ts -> set_field "ts" (Json.Float (ts +. offset_us)) kvs
                      | exception Failure _ -> kvs)
                  | None -> kvs
                in
                emit (Json.Obj kvs)
            | j -> emit j)
          s.s_events)
      srcs;
    ( Buffer.contents buf,
      { sources = List.length srcs; events = nevents; orphans } )
end

(* Zero values in place rather than dropping registrations: modules hold
   metric handles created at init, and those must stay live in the
   registry across resets. *)
let reset () =
  Hashtbl.iter (fun _ (c : Counter.t) -> Atomic.set c.Counter.v 0) Counter.registry;
  Hashtbl.iter (fun _ (g : Gauge.t) -> Atomic.set g.Gauge.v 0.) Gauge.registry;
  Hashtbl.iter
    (fun _ (h : Histogram.t) ->
      Mutex.protect h.Histogram.lock (fun () ->
          Array.fill h.Histogram.counts 0 (Array.length h.Histogram.counts) 0;
          h.Histogram.over <- 0;
          h.Histogram.lo <- infinity;
          h.Histogram.hi <- neg_infinity;
          Stats.running_reset h.Histogram.welford))
    Histogram.registry;
  Trace.reset ();
  Telemetry.reset_baseline ()

(* Hook the deterministic executor (which sits below this library in the
   dependency order and therefore cannot call it directly):
   - workers inherit the submitting caller's span path, so profile trees
     and folded stacks are identical at any --jobs setting.  Allocation
     attribution inherits for free: GC word counters are domain-local and
     each span's alloc window is a delta of its own domain's counters, so
     a task span on a worker domain measures exactly the task body's
     allocation and books it under the submitting caller's path — the
     worker's alloc baseline is the span entry sample itself, taken after
     the inherited path is installed;
   - every completed task offers the telemetry heartbeat a (throttled,
     domain-safe) chance to tick, so long fan-outs stream progress without
     a background thread. *)
let () =
  Parallel.task_context :=
    (fun () ->
      (* Force the trace context in the submitting domain before any fan
         out: [Context.computed] is a lazy, and concurrent first forces
         from worker domains racing each other would be unsafe. *)
      ignore (Context.current ());
      let inherited = !(Domain.DLS.get Trace.stack_key) in
      fun () -> Domain.DLS.get Trace.stack_key := inherited);
  Parallel.on_task_done := (fun () -> Telemetry.tick ())
