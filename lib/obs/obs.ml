let now_ns () = Monotonic_clock.now ()

(* ------------------------------------------------------------------ json *)

module Json = struct
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | String of string
    | List of t list
    | Obj of (string * t) list

  let escape s =
    let b = Buffer.create (String.length s + 2) in
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string b "\\\""
        | '\\' -> Buffer.add_string b "\\\\"
        | '\n' -> Buffer.add_string b "\\n"
        | '\r' -> Buffer.add_string b "\\r"
        | '\t' -> Buffer.add_string b "\\t"
        | c when Char.code c < 0x20 ->
            Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char b c)
      s;
    Buffer.contents b

  let fmt_float x =
    if Float.is_integer x && Float.abs x < 1e15 then Printf.sprintf "%.1f" x
    else if Float.is_nan x then "null"
    else if x = Float.infinity then "1e999"
    else if x = Float.neg_infinity then "-1e999"
    else Printf.sprintf "%.17g" x

  let rec emit b = function
    | Null -> Buffer.add_string b "null"
    | Bool v -> Buffer.add_string b (if v then "true" else "false")
    | Int i -> Buffer.add_string b (string_of_int i)
    | Float x -> Buffer.add_string b (fmt_float x)
    | String s ->
        Buffer.add_char b '"';
        Buffer.add_string b (escape s);
        Buffer.add_char b '"'
    | List xs ->
        Buffer.add_char b '[';
        List.iteri
          (fun i x ->
            if i > 0 then Buffer.add_char b ',';
            emit b x)
          xs;
        Buffer.add_char b ']'
    | Obj kvs ->
        Buffer.add_char b '{';
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_char b ',';
            Buffer.add_char b '"';
            Buffer.add_string b (escape k);
            Buffer.add_string b "\":";
            emit b v)
          kvs;
        Buffer.add_char b '}'

  let to_string t =
    let b = Buffer.create 256 in
    emit b t;
    Buffer.contents b

  (* Strict recursive-descent parser over a string cursor. *)
  let parse s =
    let n = String.length s in
    let pos = ref 0 in
    let fail msg = failwith (Printf.sprintf "Obs.Json.parse: %s at %d" msg !pos) in
    let peek () = if !pos < n then Some s.[!pos] else None in
    let skip_ws () =
      while !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
        incr pos
      done
    in
    let expect c =
      if !pos < n && s.[!pos] = c then incr pos
      else fail (Printf.sprintf "expected '%c'" c)
    in
    let literal lit v =
      let l = String.length lit in
      if !pos + l <= n && String.sub s !pos l = lit then begin
        pos := !pos + l;
        v
      end
      else fail (Printf.sprintf "expected %s" lit)
    in
    let parse_string () =
      expect '"';
      let b = Buffer.create 16 in
      let rec go () =
        if !pos >= n then fail "unterminated string";
        match s.[!pos] with
        | '"' -> incr pos
        | '\\' ->
            incr pos;
            if !pos >= n then fail "bad escape";
            (match s.[!pos] with
            | '"' -> Buffer.add_char b '"'
            | '\\' -> Buffer.add_char b '\\'
            | '/' -> Buffer.add_char b '/'
            | 'n' -> Buffer.add_char b '\n'
            | 'r' -> Buffer.add_char b '\r'
            | 't' -> Buffer.add_char b '\t'
            | 'b' -> Buffer.add_char b '\b'
            | 'f' -> Buffer.add_char b '\012'
            | 'u' ->
                (* Four hex digits, validated strictly (int_of_string would
                   also accept underscores and sign characters).  [!pos] is
                   left on the last consumed digit for the caller's [incr]. *)
                let read_hex4 () =
                  if !pos + 4 >= n then fail "bad \\u escape";
                  let v = ref 0 in
                  for k = 1 to 4 do
                    let d =
                      match s.[!pos + k] with
                      | '0' .. '9' as c -> Char.code c - Char.code '0'
                      | 'a' .. 'f' as c -> Char.code c - Char.code 'a' + 10
                      | 'A' .. 'F' as c -> Char.code c - Char.code 'A' + 10
                      | _ -> fail "bad \\u escape"
                    in
                    v := (!v lsl 4) lor d
                  done;
                  pos := !pos + 4;
                  !v
                in
                let code = read_hex4 () in
                (* A high surrogate followed by \uDC00-\uDFFF is one astral
                   code point (JSON's UTF-16 escape convention); a lone
                   surrogate passes through as-is, mirroring the emitter. *)
                let code =
                  if code >= 0xD800 && code <= 0xDBFF
                     && !pos + 2 < n
                     && s.[!pos + 1] = '\\'
                     && s.[!pos + 2] = 'u'
                  then begin
                    let save = !pos in
                    pos := !pos + 2;
                    let low = read_hex4 () in
                    if low >= 0xDC00 && low <= 0xDFFF then
                      0x10000 + ((code - 0xD800) lsl 10) + (low - 0xDC00)
                    else begin
                      pos := save;
                      code
                    end
                  end
                  else code
                in
                if code < 0x80 then Buffer.add_char b (Char.chr code)
                else if code < 0x800 then begin
                  Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
                  Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
                end
                else if code < 0x10000 then begin
                  Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
                  Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                  Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
                end
                else begin
                  Buffer.add_char b (Char.chr (0xF0 lor (code lsr 18)));
                  Buffer.add_char b (Char.chr (0x80 lor ((code lsr 12) land 0x3F)));
                  Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                  Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
                end
            | _ -> fail "bad escape");
            incr pos;
            go ()
        | c ->
            Buffer.add_char b c;
            incr pos;
            go ()
      in
      go ();
      Buffer.contents b
    in
    let parse_number () =
      let start = !pos in
      let is_num_char c =
        match c with
        | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
        | _ -> false
      in
      while !pos < n && is_num_char s.[!pos] do
        incr pos
      done;
      let tok = String.sub s start (!pos - start) in
      match int_of_string_opt tok with
      | Some i -> Int i
      | None -> (
          match float_of_string_opt tok with
          | Some f -> Float f
          | None -> fail (Printf.sprintf "bad number %S" tok))
    in
    let rec parse_value () =
      skip_ws ();
      match peek () with
      | None -> fail "unexpected end of input"
      | Some '"' -> String (parse_string ())
      | Some '{' ->
          incr pos;
          skip_ws ();
          if peek () = Some '}' then begin
            incr pos;
            Obj []
          end
          else begin
            let rec members acc =
              skip_ws ();
              let k = parse_string () in
              skip_ws ();
              expect ':';
              let v = parse_value () in
              skip_ws ();
              match peek () with
              | Some ',' ->
                  incr pos;
                  members ((k, v) :: acc)
              | Some '}' ->
                  incr pos;
                  List.rev ((k, v) :: acc)
              | _ -> fail "expected ',' or '}'"
            in
            Obj (members [])
          end
      | Some '[' ->
          incr pos;
          skip_ws ();
          if peek () = Some ']' then begin
            incr pos;
            List []
          end
          else begin
            let rec elems acc =
              let v = parse_value () in
              skip_ws ();
              match peek () with
              | Some ',' ->
                  incr pos;
                  elems (v :: acc)
              | Some ']' ->
                  incr pos;
                  List.rev (v :: acc)
              | _ -> fail "expected ',' or ']'"
            in
            List (elems [])
          end
      | Some 't' -> literal "true" (Bool true)
      | Some 'f' -> literal "false" (Bool false)
      | Some 'n' -> literal "null" Null
      | Some _ -> parse_number ()
    in
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v

  let member k = function
    | Obj kvs -> List.assoc_opt k kvs
    | _ -> None

  let to_float = function
    | Int i -> float_of_int i
    | Float f -> f
    | _ -> failwith "Obs.Json.to_float: not a number"
end

(* --------------------------------------------------------------- metrics *)

(* Domain safety: shot loops now fan out across Domains (Parallel), and any
   of them may bump a counter or observe a histogram.  Counters and gauges
   are atomics (lock-free); histograms and the trace ring take a mutex per
   update; every registry serialises interning behind its own mutex so
   concurrent [create] calls from worker domains race neither the Hashtbl
   nor each other's handles. *)

let registered locked registry name make =
  Mutex.protect locked (fun () ->
      match Hashtbl.find_opt registry name with
      | Some t -> t
      | None ->
          let t = make () in
          Hashtbl.add registry name t;
          t)

module Counter = struct
  type t = { name : string; v : int Atomic.t }

  let registry : (string, t) Hashtbl.t = Hashtbl.create 32
  let registry_lock = Mutex.create ()

  let create name =
    registered registry_lock registry name (fun () -> { name; v = Atomic.make 0 })

  let incr t = Atomic.incr t.v
  let add t n = ignore (Atomic.fetch_and_add t.v n)
  let value t = Atomic.get t.v
  let name t = t.name
end

module Gauge = struct
  type t = { name : string; v : float Atomic.t }

  let registry : (string, t) Hashtbl.t = Hashtbl.create 32
  let registry_lock = Mutex.create ()

  let create name =
    registered registry_lock registry name (fun () -> { name; v = Atomic.make 0. })

  let set t x = Atomic.set t.v x

  let rec update t f =
    let old = Atomic.get t.v in
    let next = f old in
    if old <> next && not (Atomic.compare_and_set t.v old next) then update t f

  let add t x = update t (fun v -> v +. x)
  let set_max t x = update t (fun v -> if x > v then x else v)
  let value t = Atomic.get t.v
  let name t = t.name
end

module Histogram = struct
  type t = {
    name : string;
    bounds : float array;  (* strictly increasing upper bounds *)
    counts : int array;  (* same length as bounds *)
    mutable over : int;
    welford : Stats.running;
    mutable lo : float;
    mutable hi : float;
    lock : Mutex.t;  (* guards every mutable field above *)
  }

  (* 1 ns .. 100 s in thirds of a decade: fine enough to rank hot paths,
     coarse enough to stay 34 ints. *)
  let default_buckets =
    Array.init 34 (fun i -> 1e-9 *. (10. ** (float_of_int i /. 3.)))

  let registry : (string, t) Hashtbl.t = Hashtbl.create 32
  let registry_lock = Mutex.create ()

  let create ?(buckets = default_buckets) name =
    registered registry_lock registry name (fun () ->
        if Array.length buckets = 0 then
          invalid_arg "Obs.Histogram.create: empty buckets";
        Array.iteri
          (fun i b ->
            if i > 0 && buckets.(i - 1) >= b then
              invalid_arg "Obs.Histogram.create: buckets must increase")
          buckets;
        { name;
          bounds = Array.copy buckets;
          counts = Array.make (Array.length buckets) 0;
          over = 0;
          welford = Stats.running_create ();
          lo = infinity;
          hi = neg_infinity;
          lock = Mutex.create () })

  let observe t x =
    Mutex.protect t.lock (fun () ->
        Stats.running_add t.welford x;
        if x < t.lo then t.lo <- x;
        if x > t.hi then t.hi <- x;
        (* Binary search for the first bound >= x. *)
        let nb = Array.length t.bounds in
        if x > t.bounds.(nb - 1) then t.over <- t.over + 1
        else begin
          let lo = ref 0 and hi = ref (nb - 1) in
          while !lo < !hi do
            let mid = (!lo + !hi) / 2 in
            if x <= t.bounds.(mid) then hi := mid else lo := mid + 1
          done;
          t.counts.(!lo) <- t.counts.(!lo) + 1
        end)

  (* Bucket-interpolated quantile: walk the cumulative counts to the bucket
     holding rank q*count, then interpolate linearly inside it.  Bucket
     edges are clamped to the observed min/max, so estimates never leave
     the sampled range; the overflow bucket spans (last bound, max]. *)
  let quantile t q =
    if not (q >= 0. && q <= 1.) then invalid_arg "Obs.Histogram.quantile";
    Mutex.protect t.lock (fun () ->
        let total = Stats.running_count t.welford in
        if total = 0 then Float.nan
        else begin
          let target = q *. float_of_int total in
          let nb = Array.length t.bounds in
          let rec find i cum =
            if i > nb then t.hi
            else begin
              let c = if i = nb then t.over else t.counts.(i) in
              let cum' = cum +. float_of_int c in
              if c > 0 && cum' >= target then begin
                let lo_edge = if i = 0 then t.lo else Float.max t.lo t.bounds.(i - 1) in
                let hi_edge = if i = nb then t.hi else Float.min t.hi t.bounds.(i) in
                let frac = Float.max 0. ((target -. cum) /. float_of_int c) in
                lo_edge +. (frac *. (hi_edge -. lo_edge))
              end
              else find (i + 1) cum'
            end
          in
          Float.min t.hi (Float.max t.lo (find 0 0.))
        end)

  let count t = Stats.running_count t.welford
  let mean t = Stats.running_mean t.welford
  let variance t = Stats.running_variance t.welford
  let min_value t = t.lo
  let max_value t = t.hi
  let bucket_counts t = Array.mapi (fun i b -> (b, t.counts.(i))) t.bounds
  let overflow t = t.over
  let name t = t.name
end

(* --------------------------------------------------------------- tracing *)

module Trace = struct
  type span = {
    name : string;
    start_ns : int64;
    dur_ns : int64;
    depth : int;
    attrs : (string * string) list;
  }

  let t0 = now_ns ()
  let capacity = ref 65536
  let ring : span option array ref = ref (Array.make !capacity None)
  let next = ref 0 (* total spans ever recorded *)
  let totals : (string, int * int64) Hashtbl.t = Hashtbl.create 32

  (* One lock for ring + totals + capacity swaps; span recording is far off
     the per-shot hot path (spans wrap whole experiments), so contention is
     negligible.  Depth is tracked per domain: a worker domain's spans nest
     from depth 0 rather than inheriting an unrelated caller's depth. *)
  let lock = Mutex.create ()
  let depth_key = Domain.DLS.new_key (fun () -> ref 0)

  let set_capacity c =
    if c <= 0 then invalid_arg "Obs.Trace.set_capacity";
    Mutex.protect lock (fun () ->
        capacity := c;
        ring := Array.make c None;
        next := 0)

  let record s =
    Mutex.protect lock (fun () ->
        !ring.(!next mod !capacity) <- Some s;
        incr next;
        let count, total =
          Option.value ~default:(0, 0L) (Hashtbl.find_opt totals s.name)
        in
        Hashtbl.replace totals s.name (count + 1, Int64.add total s.dur_ns))

  let with_span ?(attrs = []) name f =
    let start = now_ns () in
    let cur_depth = Domain.DLS.get depth_key in
    let depth = !cur_depth in
    incr cur_depth;
    let finish () =
      decr cur_depth;
      let stop = now_ns () in
      record
        { name;
          start_ns = Int64.sub start t0;
          dur_ns = Int64.sub stop start;
          depth;
          attrs }
    in
    match f () with
    | v ->
        finish ();
        v
    | exception e ->
        finish ();
        raise e

  let spans () =
    Mutex.protect lock (fun () ->
        let cap = !capacity in
        let first = max 0 (!next - cap) in
        List.filter_map
          (fun i -> !ring.(i mod cap))
          (List.init (!next - first) (fun k -> first + k)))

  let recorded () = Mutex.protect lock (fun () -> !next)

  let summaries () =
    Mutex.protect lock (fun () ->
        Hashtbl.fold (fun name (c, t) acc -> (name, c, t) :: acc) totals [])
    |> List.sort compare

  let span_json s =
    Json.Obj
      [ ("name", Json.String s.name);
        ("ph", Json.String "X");
        ("ts", Json.Float (Int64.to_float s.start_ns /. 1e3));
        ("dur", Json.Float (Int64.to_float s.dur_ns /. 1e3));
        ("pid", Json.Int 0);
        ("tid", Json.Int s.depth);
        ("args", Json.Obj (List.map (fun (k, v) -> (k, Json.String v)) s.attrs)) ]

  let export ~path =
    let oc = open_out path in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () ->
        List.iter
          (fun s ->
            output_string oc (Json.to_string (span_json s));
            output_char oc '\n')
          (spans ()))

  let reset () =
    Mutex.protect lock (fun () ->
        Array.fill !ring 0 !capacity None;
        next := 0;
        Hashtbl.reset totals);
    Domain.DLS.get depth_key := 0
end

(* --------------------------------------------------------------- reports *)

module Report = struct
  let sorted_fold registry f =
    Hashtbl.fold (fun name v acc -> (name, f v) :: acc) registry []
    |> List.sort compare

  (* hetarch_util sits below this library, so the Parallel executor keeps
     plain atomics; snapshot them into gauges whenever a report is cut. *)
  let g_parallel_tasks = Gauge.create "parallel.tasks_total"
  let g_parallel_domains = Gauge.create "parallel.domains_spawned_total"

  let snapshot_parallel () =
    let tasks, domains = Parallel.stats () in
    Gauge.set g_parallel_tasks (float_of_int tasks);
    Gauge.set g_parallel_domains (float_of_int domains)

  (* Free per-run process telemetry: GC counters (Gc.quick_stat reads
     mutator-maintained fields only — no heap traversal), peak heap, and
     wall-clock seconds since the module was initialised. *)
  let process_json () =
    let st = Gc.quick_stat () in
    Json.Obj
      [ ("wall_seconds",
         Json.Float (Int64.to_float (Int64.sub (now_ns ()) Trace.t0) /. 1e9));
        ("minor_collections", Json.Int st.Gc.minor_collections);
        ("major_collections", Json.Int st.Gc.major_collections);
        ("compactions", Json.Int st.Gc.compactions);
        ("minor_words", Json.Float st.Gc.minor_words);
        ("promoted_words", Json.Float st.Gc.promoted_words);
        ("major_words", Json.Float st.Gc.major_words);
        ("heap_words", Json.Int st.Gc.heap_words);
        ("top_heap_words", Json.Int st.Gc.top_heap_words) ]

  let to_json () =
    snapshot_parallel ();
    let counters =
      sorted_fold Counter.registry (fun c -> Json.Int (Counter.value c))
    in
    let gauges =
      sorted_fold Gauge.registry (fun g -> Json.Float (Gauge.value g))
    in
    let histograms =
      sorted_fold Histogram.registry (fun h ->
          let buckets =
            Histogram.bucket_counts h |> Array.to_list
            |> List.filter (fun (_, c) -> c > 0)
            |> List.map (fun (le, c) ->
                   Json.Obj [ ("le", Json.Float le); ("count", Json.Int c) ])
          in
          Json.Obj
            [ ("count", Json.Int (Histogram.count h));
              ("mean", Json.Float (Histogram.mean h));
              ("variance", Json.Float (Histogram.variance h));
              ("min", Json.Float (Histogram.min_value h));
              ("max", Json.Float (Histogram.max_value h));
              ("p50", Json.Float (Histogram.quantile h 0.5));
              ("p90", Json.Float (Histogram.quantile h 0.9));
              ("p99", Json.Float (Histogram.quantile h 0.99));
              ("overflow", Json.Int (Histogram.overflow h));
              ("buckets", Json.List buckets) ])
    in
    (* Span duration quantiles come from the retained ring (the per-name
       totals keep no distribution), so they describe the most recent
       [capacity] spans when the ring has evicted. *)
    let ring_durs : (string, float list) Hashtbl.t = Hashtbl.create 32 in
    List.iter
      (fun (s : Trace.span) ->
        let durs = Option.value ~default:[] (Hashtbl.find_opt ring_durs s.Trace.name) in
        Hashtbl.replace ring_durs s.Trace.name (Int64.to_float s.Trace.dur_ns :: durs))
      (Trace.spans ());
    let spans =
      List.map
        (fun (name, count, total_ns) ->
          let quantiles =
            match Hashtbl.find_opt ring_durs name with
            | None | Some [] -> []
            | Some durs ->
                let xs = Array.of_list durs in
                [ ("p50_ns", Json.Float (Stats.percentile xs 50.));
                  ("p90_ns", Json.Float (Stats.percentile xs 90.));
                  ("p99_ns", Json.Float (Stats.percentile xs 99.)) ]
          in
          ( name,
            Json.Obj
              ([ ("count", Json.Int count);
                 ("total_ns", Json.Int (Int64.to_int total_ns)) ]
              @ quantiles) ))
        (Trace.summaries ())
    in
    Json.Obj
      [ ("schema", Json.String "hetarch.obs/2");
        ("process", process_json ());
        ("counters", Json.Obj counters);
        ("gauges", Json.Obj gauges);
        ("histograms", Json.Obj histograms);
        ("spans", Json.Obj spans) ]

  let write ~path =
    let oc = open_out path in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () ->
        output_string oc (Json.to_string (to_json ()));
        output_char oc '\n')
end

(* Zero values in place rather than dropping registrations: modules hold
   metric handles created at init, and those must stay live in the
   registry across resets. *)
let reset () =
  Hashtbl.iter (fun _ (c : Counter.t) -> Atomic.set c.Counter.v 0) Counter.registry;
  Hashtbl.iter (fun _ (g : Gauge.t) -> Atomic.set g.Gauge.v 0.) Gauge.registry;
  Hashtbl.iter
    (fun _ (h : Histogram.t) ->
      Mutex.protect h.Histogram.lock (fun () ->
          Array.fill h.Histogram.counts 0 (Array.length h.Histogram.counts) 0;
          h.Histogram.over <- 0;
          h.Histogram.lo <- infinity;
          h.Histogram.hi <- neg_infinity;
          Stats.running_reset h.Histogram.welford))
    Histogram.registry;
  Trace.reset ()
